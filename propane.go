// Package propane is a Go implementation of the error-propagation
// analysis framework of Hiller, Jhumka and Suri, "An Approach for
// Analysing the Propagation of Data Errors in Software" (DSN 2001),
// named after the authors' PROPANE tool (Propagation ANalysis
// Environment).
//
// The package is a facade over the implementation packages:
//
//   - the software system model (modules, ports, signals);
//   - error permeability (Eq. 1) and the derived measures: relative
//     permeability (Eq. 2), non-weighted relative permeability
//     (Eq. 3), error exposure (Eqs. 4–5) and signal error exposure
//     (Eq. 6);
//   - permeability graphs, backtrack trees (Output Error Tracing) and
//     trace trees (Input Error Tracing), and ranked propagation paths;
//   - the EDM/ERM placement advisor of the paper's Section 5;
//   - a SWIFI fault-injection campaign engine with Golden Run
//     Comparison, and the paper's target system (an aircraft
//     arrestment controller) as a fully simulated case study.
//
// Quick start:
//
//	sys := propane.ExampleSystem()            // Fig. 2 of the paper
//	m := propane.NewMatrix(sys)
//	_ = m.SetBySignal("B", "a1", "b2", 0.6)   // assign permeabilities
//	tree, _ := propane.BacktrackTree(m, "sysout")
//	for _, p := range tree.RankedPaths() {
//	    fmt.Println(p, p.Weight())
//	}
//
// or run the full fault-injection reproduction:
//
//	res, _ := propane.RunCampaign(propane.ReducedCampaign())
//	fmt.Println(propane.Table1(res))
package propane

import (
	"propane/internal/campaign"
	"propane/internal/core"
	"propane/internal/expfile"
	"propane/internal/model"
	"propane/internal/report"
)

// Re-exported core types. The aliases give importers nameable handles
// to the framework types without reaching into internal packages.
type (
	// System is an immutable, validated software system topology.
	System = model.System
	// Builder constructs a System.
	Builder = model.Builder
	// Matrix holds one error permeability value per input/output pair.
	Matrix = core.Matrix
	// Pair identifies one input/output pair of one module.
	Pair = core.Pair
	// Graph is the permeability graph.
	Graph = core.Graph
	// Tree is a backtrack or trace tree.
	Tree = core.Tree
	// Path is one root-to-leaf propagation path.
	Path = core.Path
	// Advice is the EDM/ERM placement recommendation.
	Advice = core.Advice
	// CampaignConfig parameterises a fault-injection campaign.
	CampaignConfig = campaign.Config
	// CampaignResult is the outcome of a campaign.
	CampaignResult = campaign.Result
)

// NewSystem returns a Builder for a system with the given name.
func NewSystem(name string) *Builder { return model.NewBuilder(name) }

// ExampleSystem returns the paper's Fig. 2 five-module example.
func ExampleSystem() *System { return model.PaperExampleSystem() }

// NewMatrix returns a zero-filled permeability matrix for a system.
func NewMatrix(sys *System) *Matrix { return core.NewMatrix(sys) }

// NewGraph builds the permeability graph for a matrix.
func NewGraph(m *Matrix) (*Graph, error) { return core.NewGraph(m) }

// BacktrackTree builds the backtrack tree of a system output (Output
// Error Tracing, Section 4.2 steps A1–A4).
func BacktrackTree(m *Matrix, output string) (*Tree, error) {
	return core.BacktrackTree(m, output)
}

// TraceTree builds the trace tree of a system input (Input Error
// Tracing, Section 4.2 steps B1–B4).
func TraceTree(m *Matrix, input string) (*Tree, error) {
	return core.TraceTree(m, input)
}

// Advise runs the Section 5 EDM/ERM placement analysis.
func Advise(m *Matrix) (*Advice, error) { return core.Advise(m) }

// PathSensitivities ranks every pair by how strongly the output's
// aggregate path weight reacts to its permeability — the hardening
// priority list.
func PathSensitivities(m *Matrix, output string) ([]core.PairSensitivity, error) {
	return core.PathSensitivities(m, output)
}

// OutputErrorProfile computes the adjusted path probabilities P' of
// Section 4.2 under the given per-input error-occurrence
// probabilities, and their sum as a comparative exposure index.
func OutputErrorProfile(m *Matrix, output string, prob map[string]float64) (float64, []core.WeightedPath, error) {
	return core.OutputErrorProfile(m, output, prob)
}

// InputCriticality ranks the system inputs by total path weight toward
// the output.
func InputCriticality(m *Matrix, output string) ([]core.RankedSignal, error) {
	return core.InputCriticality(m, output)
}

// Collapse merges a group of modules into one composite module with
// derived permeabilities (the Section 3 hierarchy view).
func Collapse(m *Matrix, group []string, newName string) (*Matrix, error) {
	return core.Collapse(m, group, newName)
}

// PaperCampaign returns the paper's full campaign configuration
// (4000 injections per input signal; 52 000 runs).
func PaperCampaign() CampaignConfig { return campaign.PaperConfig() }

// ReducedCampaign returns a scaled-down campaign that runs in seconds
// and preserves the qualitative structure of the results.
func ReducedCampaign() CampaignConfig { return campaign.ReducedConfig() }

// RunCampaign executes a fault-injection campaign against the
// configured target system and estimates its permeability matrix.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return campaign.Run(cfg)
}

// ParseExperiment decodes a JSON experiment-description file (the
// PROPANE-style campaign driver format) into a campaign configuration.
func ParseExperiment(data []byte) (CampaignConfig, error) {
	return expfile.Parse(data)
}

// Table1 renders the per-pair permeability estimates (paper Table 1).
func Table1(res *CampaignResult) string { return report.Table1(res) }

// Table2 renders the module measures (paper Table 2).
func Table2(m *Matrix) (string, error) { return report.Table2(m) }

// Table3 renders the signal error exposures (paper Table 3).
func Table3(m *Matrix) (string, error) { return report.Table3(m) }

// Table4 renders the ranked propagation paths of a system output
// (paper Table 4).
func Table4(m *Matrix, output string, nonZeroOnly bool) (string, error) {
	return report.Table4(m, output, nonZeroOnly)
}
