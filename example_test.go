package propane_test

import (
	"fmt"
	"log"

	"propane"
)

// exampleFilledMatrix builds the documentation matrix used by the
// Example functions.
func exampleFilledMatrix() *propane.Matrix {
	m := propane.NewMatrix(propane.ExampleSystem())
	for _, set := range []struct {
		mod, in, out string
		v            float64
	}{
		{"A", "extA", "a1", 0.8},
		{"B", "a1", "bfb", 0.5}, {"B", "a1", "b2", 0.6},
		{"B", "bfb", "bfb", 0.9}, {"B", "bfb", "b2", 0.3},
		{"C", "extC", "c1", 0.7}, {"D", "c1", "d1", 0.4},
		{"E", "b2", "sysout", 0.9}, {"E", "d1", "sysout", 0.5}, {"E", "extE", "sysout", 0.2},
	} {
		if err := m.SetBySignal(set.mod, set.in, set.out, set.v); err != nil {
			log.Fatal(err)
		}
	}
	return m
}

// ExampleNewSystem shows how to declare a topology and read its
// inferred boundary.
func ExampleNewSystem() {
	sys, err := propane.NewSystem("demo").
		AddModule("SENSE", []string{"raw"}, []string{"clean"}).
		AddModule("ACT", []string{"clean"}, []string{"drive"}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inputs: ", sys.SystemInputs())
	fmt.Println("outputs:", sys.SystemOutputs())
	fmt.Println("pairs:  ", sys.TotalPairs())
	// Output:
	// inputs:  [raw]
	// outputs: [drive]
	// pairs:   2
}

// ExampleBacktrackTree ranks the propagation paths of a system output
// by weight (Output Error Tracing, paper Section 4.2).
func ExampleBacktrackTree() {
	m := exampleFilledMatrix()
	tree, err := propane.BacktrackTree(m, "sysout")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range tree.RankedPaths()[:3] {
		fmt.Printf("%.3f  %s\n", p.Weight(), p)
	}
	// Output:
	// 0.432  sysout <- b2 <- a1 <- extA
	// 0.243  sysout <- b2 <- bfb <- bfb (feedback)
	// 0.200  sysout <- extE
}

// ExampleTraceTree follows errors on a system input forward (Input
// Error Tracing).
func ExampleTraceTree() {
	m := exampleFilledMatrix()
	tree, err := propane.TraceTree(m, "extC")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range tree.Paths() {
		fmt.Printf("%.3f  %s\n", p.Weight(), p)
	}
	// Output:
	// 0.140  extC <- c1 <- d1 <- sysout
}

// ExampleAdvise derives the Section 5 EDM/ERM placement guidance.
func ExampleAdvise() {
	m := exampleFilledMatrix()
	adv, err := propane.Advise(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best EDM module:", adv.EDMModules[0].Module)
	fmt.Println("best ERM module:", adv.ERMModules[0].Module)
	fmt.Println("barriers:       ", adv.BarrierModules)
	// Output:
	// best EDM module: B
	// best ERM module: B
	// barriers:        [A C E]
}

// ExampleCollapse folds a subsystem into one composite module with
// derived permeabilities (the Section 3 hierarchy view).
func ExampleCollapse() {
	m := exampleFilledMatrix()
	collapsed, err := propane.Collapse(m, []string{"C", "D"}, "CD")
	if err != nil {
		log.Fatal(err)
	}
	v, err := collapsed.Value("CD", 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P^CD(extC -> d1) = %.2f\n", v)
	// Output:
	// P^CD(extC -> d1) = 0.28
}

// ExampleMatrix_RelativePermeability computes Eq. 2 and Eq. 3 for one
// module.
func ExampleMatrix_RelativePermeability() {
	m := exampleFilledMatrix()
	rel, err := m.RelativePermeability("B")
	if err != nil {
		log.Fatal(err)
	}
	nw, err := m.NonWeightedRelativePermeability("B")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P^B = %.3f  P̄^B = %.3f\n", rel, nw)
	// Output:
	// P^B = 0.575  P̄^B = 2.300
}

// ExamplePathSensitivities ranks the pairs whose hardening would
// shrink the output's exposure fastest.
func ExamplePathSensitivities() {
	m := exampleFilledMatrix()
	sens, err := propane.PathSensitivities(m, "sysout")
	if err != nil {
		log.Fatal(err)
	}
	top := sens[0]
	fmt.Printf("harden %s first (sensitivity %.3f over %d paths)\n",
		top.Pair, top.Sensitivity, top.PathCount)
	// Output:
	// harden P^B_{2,2} first (sensitivity 1.170 over 2 paths)
}
