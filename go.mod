module propane

go 1.22
