// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus ablation and micro benchmarks. Each
// table/figure benchmark regenerates the full artefact per iteration;
// run with -v (or see cmd/propane and EXPERIMENTS.md) for the rendered
// rows. The campaign-backed benchmarks use a small injection grid per
// iteration so `go test -bench=.` completes quickly; the full paper
// campaign is exercised by BenchmarkPaperScaleCampaign, which is
// skipped unless -timeout allows (it runs ~52 000 simulations) and is
// guarded behind the PROPANE_PAPER_BENCH environment variable.
package propane_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"propane/internal/arrestor"
	"propane/internal/autobrake"
	"propane/internal/campaign"
	"propane/internal/core"
	"propane/internal/distrib"
	"propane/internal/edm"
	"propane/internal/hostile"
	"propane/internal/inject"
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/report"
	"propane/internal/runner"
	"propane/internal/service"
	"propane/internal/sim"
	"propane/internal/store"
	"propane/internal/synth"
	"propane/internal/target"
	"propane/internal/trace"
)

// benchCampaign is the small campaign used by campaign-backed
// benchmarks: 1 test case, 2 instants, 2 bits over all 13 inputs = 52
// simulation runs per iteration.
func benchCampaign() campaign.Config {
	cases, err := physics.Grid(1, 1, 14000, 14000, 60, 60)
	if err != nil {
		panic(err)
	}
	return campaign.Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1500, 3500},
		Bits:           []uint{3, 12},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

var (
	benchOnce sync.Once
	benchRes  *campaign.Result
)

// benchResult provides a measured matrix for the pure-analysis
// benchmarks without re-running the campaign per iteration.
func benchResult(b *testing.B) *campaign.Result {
	b.Helper()
	benchOnce.Do(func() {
		res, err := campaign.Run(benchCampaign())
		if err != nil {
			panic(err)
		}
		benchRes = res
	})
	return benchRes
}

// BenchmarkTable1PairPermeabilities regenerates Table 1: a full
// injection campaign plus the rendered per-pair permeability table.
func BenchmarkTable1PairPermeabilities(b *testing.B) {
	var table string
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(benchCampaign())
		if err != nil {
			b.Fatal(err)
		}
		table = report.Table1(res)
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// BenchmarkTable2ModuleMeasures regenerates Table 2 from the measured
// matrix: Eqs. 2-5 for every module.
func BenchmarkTable2ModuleMeasures(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var table string
	for i := 0; i < b.N; i++ {
		t2, err := report.Table2(res.Matrix)
		if err != nil {
			b.Fatal(err)
		}
		table = t2
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// BenchmarkTable3SignalExposures regenerates Table 3: signal error
// exposure (Eq. 6) over the backtrack forest.
func BenchmarkTable3SignalExposures(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var table string
	for i := 0; i < b.N; i++ {
		t3, err := report.Table3(res.Matrix)
		if err != nil {
			b.Fatal(err)
		}
		table = t3
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// BenchmarkTable4PropagationPaths regenerates Table 4: the ranked
// non-zero propagation paths of the TOC2 backtrack tree.
func BenchmarkTable4PropagationPaths(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var table string
	for i := 0; i < b.N; i++ {
		t4, err := report.Table4(res.Matrix, arrestor.SigTOC2, true)
		if err != nil {
			b.Fatal(err)
		}
		table = t4
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// exampleBenchMatrix builds the Fig. 2 example matrix used by the
// figure benchmarks of the analytic example.
func exampleBenchMatrix() *core.Matrix {
	m := core.NewMatrix(model.PaperExampleSystem())
	vals := []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"A", 1, 1, 0.8},
		{"B", 1, 1, 0.5}, {"B", 1, 2, 0.6}, {"B", 2, 1, 0.9}, {"B", 2, 2, 0.3},
		{"C", 1, 1, 0.7}, {"D", 1, 1, 0.4},
		{"E", 1, 1, 0.9}, {"E", 2, 1, 0.5}, {"E", 3, 1, 0.2},
	}
	for _, a := range vals {
		if err := m.Set(a.mod, a.in, a.out, a.v); err != nil {
			panic(err)
		}
	}
	return m
}

// BenchmarkFig4BacktrackTreeExample regenerates Fig. 4: the backtrack
// tree of the example system's output, rendered as DOT.
func BenchmarkFig4BacktrackTreeExample(b *testing.B) {
	m := exampleBenchMatrix()
	b.ResetTimer()
	var dot string
	for i := 0; i < b.N; i++ {
		tree, err := core.BacktrackTree(m, "sysout")
		if err != nil {
			b.Fatal(err)
		}
		dot = report.TreeDOT(tree, "fig4")
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkFig5TraceTreeExample regenerates Fig. 5: the trace tree of
// the example system's input extA.
func BenchmarkFig5TraceTreeExample(b *testing.B) {
	m := exampleBenchMatrix()
	b.ResetTimer()
	var dot string
	for i := 0; i < b.N; i++ {
		tree, err := core.TraceTree(m, "extA")
		if err != nil {
			b.Fatal(err)
		}
		dot = report.TreeDOT(tree, "fig5")
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkFig8TopologyGraph regenerates Fig. 8: the target system's
// module/signal topology.
func BenchmarkFig8TopologyGraph(b *testing.B) {
	var dot string
	for i := 0; i < b.N; i++ {
		dot = report.TopologyDOT(arrestor.Topology())
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkFig9PermeabilityGraph regenerates Fig. 9: the permeability
// graph of the target system with measured arc weights.
func BenchmarkFig9PermeabilityGraph(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var dot string
	for i := 0; i < b.N; i++ {
		g, err := core.NewGraph(res.Matrix)
		if err != nil {
			b.Fatal(err)
		}
		dot = report.PermeabilityGraphDOT(g)
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkFig10BacktrackTreeTOC2 regenerates Fig. 10: the 22-path
// backtrack tree of the system output TOC2.
func BenchmarkFig10BacktrackTreeTOC2(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var dot string
	for i := 0; i < b.N; i++ {
		tree, err := core.BacktrackTree(res.Matrix, arrestor.SigTOC2)
		if err != nil {
			b.Fatal(err)
		}
		if tree.Root.CountLeaves() != 22 {
			b.Fatalf("TOC2 tree has %d paths, want 22", tree.Root.CountLeaves())
		}
		dot = report.TreeDOT(tree, "fig10")
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkFig11TraceTreeADC regenerates Fig. 11: the trace tree of
// system input ADC.
func BenchmarkFig11TraceTreeADC(b *testing.B) {
	benchTraceTree(b, arrestor.SigADC)
}

// BenchmarkFig12TraceTreePACNT regenerates Fig. 12: the trace tree of
// system input PACNT (the trees for TIC1 and TCNT are isomorphic, as
// the paper notes).
func BenchmarkFig12TraceTreePACNT(b *testing.B) {
	benchTraceTree(b, arrestor.SigPACNT)
}

func benchTraceTree(b *testing.B, input string) {
	b.Helper()
	res := benchResult(b)
	b.ResetTimer()
	var dot string
	for i := 0; i < b.N; i++ {
		tree, err := core.TraceTree(res.Matrix, input)
		if err != nil {
			b.Fatal(err)
		}
		dot = report.TreeDOT(tree, "trace-"+input)
	}
	b.StopTimer()
	b.Log("\n" + dot)
}

// BenchmarkAblationErrorModel regenerates the Section 6 error-model
// sensitivity study: one campaign under an alternative error model.
func BenchmarkAblationErrorModel(b *testing.B) {
	cfg := benchCampaign()
	cfg.Bits = nil
	cfg.Models = []inject.ErrorModel{
		inject.StuckAt{Bit: 3, One: true},
		inject.Offset{Delta: 512},
	}
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWorkloadSensitivity regenerates the future-work
// workload study: one campaign on a shifted workload grid.
func BenchmarkAblationWorkloadSensitivity(b *testing.B) {
	cfg := benchCampaign()
	cases, err := physics.Grid(1, 1, 19000, 19000, 75, 75)
	if err != nil {
		b.Fatal(err)
	}
	cfg.TestCases = cases
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniformPropagation regenerates the Section 2 check: the
// per-location propagation fractions.
func BenchmarkUniformPropagation(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var table string
	for i := 0; i < b.N; i++ {
		table = report.UniformPropagationTable(res)
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// BenchmarkOB3PlacementEvaluation regenerates the OB3 study: campaign
// plus EDM coverage evaluation for three placements.
func BenchmarkOB3PlacementEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := edm.Evaluate(benchCampaign(), []edm.Placement{
			{Signal: arrestor.SigInValue, Efficiency: 1.0},
			{Signal: arrestor.SigSetValue, Efficiency: 0.7},
			{Signal: arrestor.SigOutValue, Efficiency: 0.7},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationTick measures the raw simulation throughput: one
// full kernel tick of the arrestment system (glue, physics, six
// modules).
func BenchmarkSimulationTick(b *testing.B) {
	inst, err := arrestor.NewInstance(arrestor.DefaultConfig(), physics.TestCase{MassKg: 14000, VelocityMS: 60}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Kernel().Tick()
	}
}

// BenchmarkSingleInjectionRun measures one complete injection run:
// instance construction, 6 s of simulated time and streaming GRC.
// Pruning is pinned off: a one-run campaign would pay the golden
// read-log capture with nothing to amortize it over, and the point of
// this benchmark is the marginal cost of executing a run in full.
func BenchmarkSingleInjectionRun(b *testing.B) {
	cfg := benchCampaign()
	cfg.Bits = []uint{7}
	cfg.Times = []sim.Millis{2500}
	cfg.OnlyModule = arrestor.ModVReg
	cfg.Prune = campaign.PruneOff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBacktrackForest measures the pure tree-construction cost on
// the target topology.
func BenchmarkBacktrackForest(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BacktrackForest(res.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignalExposureComputation measures Eq. 6 over the full
// backtrack forest.
func BenchmarkSignalExposureComputation(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SignalExposures(res.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDualNodeCampaign regenerates the distributed (master/slave)
// extension study: a campaign over the 31-pair two-node topology.
func BenchmarkDualNodeCampaign(b *testing.B) {
	cfg := benchCampaign()
	cfg.Dual = true
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) != 31 {
			b.Fatalf("dual pairs = %d, want 31", len(res.Pairs))
		}
	}
}

// BenchmarkSensitivityAnalysis measures the hardening-priority
// computation over the target topology.
func BenchmarkSensitivityAnalysis(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PathSensitivities(res.Matrix, arrestor.SigTOC2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollapseHierarchy measures the Section 3 hierarchy
// operation: collapsing the sensor chain into one composite module.
func BenchmarkCollapseHierarchy(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Collapse(res.Matrix, []string{arrestor.ModVReg, arrestor.ModPresA}, "ACT"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutobrakeCampaign regenerates the second-target study: a
// campaign over the wheel-slip brake controller (14 pairs).
func BenchmarkAutobrakeCampaign(b *testing.B) {
	cases, err := autobrake.Grid(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := campaign.Config{
		Custom:         autobrake.Target(autobrake.DefaultConfig()),
		TestCases:      cases,
		Times:          []sim.Millis{800, 2000},
		Bits:           []uint{3, 12},
		HorizonMs:      3500,
		DirectWindowMs: 300,
	}
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) != 14 {
			b.Fatalf("autobrake pairs = %d, want 14", len(res.Pairs))
		}
	}
}

// BenchmarkCrossValidation regenerates the prediction-vs-measurement
// table: compositional end-to-end prediction against the campaign's
// direct propagation fractions.
func BenchmarkCrossValidation(b *testing.B) {
	res := benchResult(b)
	b.ResetTimer()
	var table string
	for i := 0; i < b.N; i++ {
		t, err := report.ValidationTable(res)
		if err != nil {
			b.Fatal(err)
		}
		table = t
	}
	b.StopTimer()
	b.Log("\n" + table)
}

// BenchmarkPaperScaleCampaign runs the paper's full campaign (52 000
// injection runs). Guarded behind PROPANE_PAPER_BENCH=1 because it
// takes on the order of a minute of CPU time per iteration.
func BenchmarkPaperScaleCampaign(b *testing.B) {
	if os.Getenv("PROPANE_PAPER_BENCH") == "" {
		b.Skip("set PROPANE_PAPER_BENCH=1 to run the full 52 000-run campaign")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(campaign.PaperConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignAdaptive is the adaptive counterpart of
// BenchmarkPaperScaleCampaign: the same paper-scale instance under
// sequential CI-driven sampling (ε = 0.05). The ns/op ratio between
// the two is the headline saving of the adaptive scheduler; the
// scheduled-runs metric records how many of the ~52 000 fixed-matrix
// runs the stopping rule actually asked for.
func BenchmarkCampaignAdaptive(b *testing.B) {
	if os.Getenv("PROPANE_PAPER_BENCH") == "" {
		b.Skip("set PROPANE_PAPER_BENCH=1 to run the adaptive paper-scale campaign")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := campaign.PaperConfig()
		cfg.Adaptive = campaign.AdaptiveForce
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Adaptive == nil {
			b.Fatal("adaptive campaign returned no AdaptiveStats")
		}
		b.ReportMetric(float64(res.Adaptive.Scheduled), "scheduled-runs")
	}
}

// BenchmarkAblationFaultDuration regenerates the transient-vs-
// persistent study: one campaign with 200-ms persistent faults.
func BenchmarkAblationFaultDuration(b *testing.B) {
	cfg := benchCampaign()
	cfg.Bits = nil
	cfg.Models = []inject.ErrorModel{inject.Replace{Value: 0xFF00}}
	cfg.FaultDurationMs = 200
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationComparisonTolerance regenerates the tolerant-GRC
// study: one campaign with a 512-unit tolerance band on every signal.
func BenchmarkAblationComparisonTolerance(b *testing.B) {
	cfg := benchCampaign()
	cfg.Tolerances = trace.Tolerances{}
	for _, sig := range arrestor.Topology().Signals() {
		cfg.Tolerances[sig] = 512
	}
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryStudy regenerates the OB5 recovery experiment: one
// baseline campaign plus one campaign with an idealised ERM on
// OutValue.
func BenchmarkRecoveryStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := edm.RecoveryStudy(benchCampaign(), []string{arrestor.SigOutValue})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 1 {
			b.Fatal("unexpected recovery result count")
		}
	}
}

// BenchmarkEDMOptimize regenerates the [18] combination-selection
// study.
func BenchmarkEDMOptimize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := edm.Optimize(benchCampaign(), []edm.Candidate{
			{Signal: arrestor.SigSetValue, Efficiency: 0.7, Cost: 1},
			{Signal: arrestor.SigOutValue, Efficiency: 0.7, Cost: 1},
			{Signal: arrestor.SigInValue, Efficiency: 1.0, Cost: 1},
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostileCampaign measures the supervised execution layer
// against the adversarial target: 40 runs per iteration of which 4
// crash (target panic → recover → classify) and 4 trip the watchdog
// (budget exhaustion → hang). This is the cost of supervising targets
// that do not politely return.
func BenchmarkHostileCampaign(b *testing.B) {
	cases, err := physics.Grid(1, 2, 12000, 12000, 50, 70)
	if err != nil {
		b.Fatal(err)
	}
	cfg := campaign.Config{
		Custom:    hostile.Target(),
		TestCases: cases,
		Times:     []sim.Millis{50, 150},
		Bits:      []uint{3, 15},
		HorizonMs: 300,
		Budget:    hostile.RunBudget(300),
	}
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Crashes == 0 || res.Hangs == 0 {
			b.Fatalf("hostile campaign saw %d crashes / %d hangs, want both non-zero", res.Crashes, res.Hangs)
		}
	}
}

// BenchmarkCampaignFullReplay pins the pre-checkpoint execution model
// as the baseline: every injection run replays the target from t=0,
// re-simulating the identical pre-injection prefix for all 16 bit
// positions of every (case, instant) pair.
func BenchmarkCampaignFullReplay(b *testing.B) {
	cfg := benchCampaign()
	cfg.Checkpoints = campaign.CheckpointOff
	cfg.Prune = campaign.PruneOff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignCheckpointed is the same campaign with checkpoint
// fast-forward forced on: one extra uninjected pass per test case
// captures a snapshot at each injection instant, and every run sharing
// that (case, instant) restores it instead of re-simulating the
// prefix. Compare against BenchmarkCampaignFullReplay.
func BenchmarkCampaignCheckpointed(b *testing.B) {
	cfg := benchCampaign()
	cfg.Checkpoints = campaign.CheckpointForce
	cfg.Prune = campaign.PruneOff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignPruned stacks equivalence pruning on top of the
// checkpointed execution model: unfired traps resolve from the golden
// read log without simulating, no-op corruptions short-circuit at
// classification time, repeated injection states serve from the memo
// cache, and executing runs exit early once their state reconverges
// with the golden trajectory. Compare against the two benchmarks
// above for the isolated contribution of each layer.
func BenchmarkCampaignPruned(b *testing.B) {
	cfg := benchCampaign()
	cfg.Checkpoints = campaign.CheckpointForce
	cfg.Prune = campaign.PruneForce
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Pruning.Total() == 0 {
			b.Fatal("pruned campaign resolved nothing without execution")
		}
	}
}

// BenchmarkCheckpointCaptureRestore measures the snapshot primitive
// itself: one Capture plus one Restore of a mid-flight arrestment
// instance. This bounds the per-run cost the fast-forward path pays
// instead of re-simulating the prefix.
func BenchmarkCheckpointCaptureRestore(b *testing.B) {
	inst, err := arrestor.NewInstance(arrestor.DefaultConfig(), physics.TestCase{MassKg: 14000, VelocityMS: 60}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for inst.Kernel().Now() < 2500 {
		inst.Kernel().Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := inst.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupervisedInjectionRun guards the supervision overhead on
// the happy path: the exact workload of BenchmarkSingleInjectionRun
// but with the watchdog armed and the quarantine policy installed.
// The budget accounting is one int64 increment per task step and the
// crash guard is a recover on an unexercised path, so the delta
// against the unsupervised baseline should be noise.
func BenchmarkSupervisedInjectionRun(b *testing.B) {
	cfg := benchCampaign()
	cfg.Bits = []uint{7}
	cfg.Times = []sim.Millis{2500}
	cfg.OnlyModule = arrestor.ModVReg
	cfg.Prune = campaign.PruneOff
	cfg.Budget = sim.Budget{Steps: int64(cfg.HorizonMs)*64 + 1024}
	cfg.OnJobError = campaign.QuarantinePolicy(3, nil)
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Crashes+res.Hangs+len(res.Quarantined) != 0 {
			b.Fatalf("benign campaign tripped supervision: %d crashes, %d hangs, %d quarantined",
				res.Crashes, res.Hangs, len(res.Quarantined))
		}
	}
}

// benchDistributed runs one complete distributed campaign through the
// loopback harness: coordinator, ephemeral HTTP listener, `workers`
// in-process worker agents, assembly. The measured time is the full
// wall clock from planning to assembled matrix, so it is directly
// comparable to a single-node campaign.Run of the same instance.
//
// The unit count is fixed at 4 for every fleet size so the workload is
// identical across the workers=N variants and the numbers measure pure
// scale-out: adding workers to the same campaign must never make it
// slower. (Earlier revisions used 2*workers units, which doubled the
// per-unit fixed work — golden passes, scratch setup — along with the
// fleet and muddied exactly that comparison.)
func benchDistributed(b *testing.B, instance string, tier runner.Tier, workers int) {
	benchDistributedMode(b, instance, tier, workers, campaign.AdaptiveOff)
}

// benchDistributedMode is benchDistributed with an explicit adaptive
// mode, shared by the fixed-matrix and sequential-sampling variants.
func benchDistributedMode(b *testing.B, instance string, tier runner.Tier, workers int, mode campaign.AdaptiveMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "propane-distrib-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, err = distrib.Loopback(distrib.Config{
			Instance: instance,
			Tier:     tier,
			Dir:      dir,
			Units:    4,
			Adaptive: mode,
		}, workers, distrib.WorkerOptions{Workers: 1})
		b.StopTimer()
		rmErr := os.RemoveAll(dir)
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
		if rmErr != nil {
			b.Fatal(rmErr)
		}
	}
}

// BenchmarkDistributedLoopbackQuick measures the distributed path on
// the quick-tier reduced campaign for 1-, 2- and 4-worker loopback
// fleets. Against BenchmarkTable1PairPermeabilities-style single-node
// numbers this exposes the fixed coordination overhead (per-unit
// golden runs, HTTP round-trips, journal assembly).
func BenchmarkDistributedLoopbackQuick(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDistributed(b, "reduced", runner.TierQuick, workers)
		})
	}
}

// TestDistributedScalingSmoke is the CI guard on distributed
// scale-out: the quick-tier loopback campaign at 1, 2 and 4 workers,
// best of three runs each. The fleet sizes are interleaved within
// each rep so slow machine-level drift (VM CPU frequency, background
// load) hits every fleet size equally instead of biasing whichever
// batch ran last. On a multi-core runner the assertion is the strict
// one the protocol is built for: workers=4 must beat workers=1 —
// simulation genuinely parallelizes, so losing means the coordinator
// is back on the hot path. A single-CPU machine serializes the
// simulation work regardless of fleet size, so there the check
// degrades to overhead parity: workers=4 may not be more than 25%
// slower than workers=1. Gated behind PROPANE_SCALING_SMOKE=1 so
// plain `go test ./...` stays fast.
func TestDistributedScalingSmoke(t *testing.T) {
	if os.Getenv("PROPANE_SCALING_SMOKE") == "" {
		t.Skip("set PROPANE_SCALING_SMOKE=1 to run the distributed scaling smoke test")
	}
	best := map[int]time.Duration{}
	for rep := 0; rep < 3; rep++ {
		for _, workers := range []int{1, 2, 4} {
			dir, err := os.MkdirTemp("", "propane-scaling-smoke-*")
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			_, err = distrib.Loopback(distrib.Config{
				Instance: "reduced",
				Tier:     runner.TierQuick,
				Dir:      dir,
				Units:    4,
			}, workers, distrib.WorkerOptions{Workers: 1})
			elapsed := time.Since(start)
			os.RemoveAll(dir)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if cur, ok := best[workers]; !ok || elapsed < cur {
				best[workers] = elapsed
			}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		t.Logf("workers=%d best-of-3 wall clock: %v", workers, best[workers])
	}
	if runtime.NumCPU() > 1 {
		if best[4] >= best[1] {
			t.Fatalf("adding workers made the campaign slower: workers=4 best %v >= workers=1 best %v",
				best[4], best[1])
		}
		return
	}
	t.Logf("single CPU: no parallel speedup is possible, checking overhead parity only")
	if best[4] > best[1]*5/4 {
		t.Fatalf("distributed overhead grows with fleet size: workers=4 best %v > 1.25 * workers=1 best %v",
			best[4], best[1])
	}
}

// BenchmarkDistributedPaperCampaign runs the paper's full campaign
// through coordinator + N loopback workers — the scale-out yardstick
// against BenchmarkPaperScaleCampaign. Guarded behind
// PROPANE_PAPER_BENCH=1 like its single-node counterpart.
func BenchmarkDistributedPaperCampaign(b *testing.B) {
	if os.Getenv("PROPANE_PAPER_BENCH") == "" {
		b.Skip("set PROPANE_PAPER_BENCH=1 to run the full paper campaign through the distributed path")
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDistributed(b, "paper", runner.TierFull, workers)
		})
	}
}

// BenchmarkDistributedPaperCampaignAdaptive runs the paper campaign
// adaptively through coordinator + N loopback workers: the stopping
// decisions stay with the coordinator's sequential scheduler, the
// fleet only executes leased job lists. Compare against
// BenchmarkCampaignAdaptive (single node) and the fixed-matrix
// BenchmarkDistributedPaperCampaign.
func BenchmarkDistributedPaperCampaignAdaptive(b *testing.B) {
	if os.Getenv("PROPANE_PAPER_BENCH") == "" {
		b.Skip("set PROPANE_PAPER_BENCH=1 to run the adaptive paper campaign through the distributed path")
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDistributedMode(b, "paper", runner.TierFull, workers, campaign.AdaptiveForce)
		})
	}
}

// TestAdaptiveDistributedScalingSmoke is the adaptive twin of
// TestDistributedScalingSmoke: carve-on-demand must parallelize too.
// On a multi-core runner a 4-worker adaptive fleet must strictly beat
// a 1-worker one — if it doesn't, the claim frontier is serializing
// the fleet (e.g. checkpoints opening too little work per lease). On
// a single CPU the check degrades to overhead parity like the
// fixed-matrix smoke. Gated behind PROPANE_SCALING_SMOKE=1.
func TestAdaptiveDistributedScalingSmoke(t *testing.T) {
	if os.Getenv("PROPANE_SCALING_SMOKE") == "" {
		t.Skip("set PROPANE_SCALING_SMOKE=1 to run the adaptive distributed scaling smoke test")
	}
	best := map[int]time.Duration{}
	for rep := 0; rep < 3; rep++ {
		for _, workers := range []int{1, 4} {
			dir, err := os.MkdirTemp("", "propane-adaptive-scaling-*")
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			_, err = distrib.Loopback(distrib.Config{
				Instance: "reduced",
				Tier:     runner.TierFull,
				Dir:      dir,
				Adaptive: campaign.AdaptiveForce,
			}, workers, distrib.WorkerOptions{Workers: 1})
			elapsed := time.Since(start)
			os.RemoveAll(dir)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if cur, ok := best[workers]; !ok || elapsed < cur {
				best[workers] = elapsed
			}
		}
	}
	for _, workers := range []int{1, 4} {
		t.Logf("adaptive workers=%d best-of-3 wall clock: %v", workers, best[workers])
	}
	if runtime.NumCPU() > 1 {
		if best[4] >= best[1] {
			t.Fatalf("adding workers made the adaptive campaign slower: workers=4 best %v >= workers=1 best %v",
				best[4], best[1])
		}
		return
	}
	t.Logf("single CPU: no parallel speedup is possible, checking overhead parity only")
	if best[4] > best[1]*5/4 {
		t.Fatalf("adaptive distributed overhead grows with fleet size: workers=4 best %v > 1.25 * workers=1 best %v",
			best[4], best[1])
	}
}

// synthBenchTarget compiles examples/synth/arrestor.yaml once per
// process for the DSL-vs-handwritten pair below.
var (
	synthBenchOnce sync.Once
	synthBenchTgt  *target.Target
)

func synthBenchCampaign(b *testing.B) campaign.Config {
	b.Helper()
	synthBenchOnce.Do(func() {
		data, err := os.ReadFile(filepath.Join("examples", "synth", "arrestor.yaml"))
		if err != nil {
			panic(err)
		}
		spec, err := synth.Parse(data)
		if err != nil {
			panic(err)
		}
		compiled, err := synth.Compile(spec)
		if err != nil {
			panic(err)
		}
		synthBenchTgt = compiled.Target
	})
	cfg := benchCampaign()
	cfg.Arrestor = arrestor.Config{}
	cfg.Custom = synthBenchTgt
	return cfg
}

// BenchmarkArrestorCampaignHandwritten is the baseline of the DSL
// overhead pair: the 52-run bench campaign through the hand-written
// arrestor modules.
func BenchmarkArrestorCampaignHandwritten(b *testing.B) {
	cfg := benchCampaign()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrestorCampaignDSL runs the identical campaign through
// the DSL-compiled target (examples/synth/arrestor.yaml). The two
// produce bit-identical matrices (internal/synth's equivalence
// tests), so the delta against the handwritten baseline is pure
// generic-dispatch overhead: port-buffer latching plus one interface
// call per module step.
func BenchmarkArrestorCampaignDSL(b *testing.B) {
	cfg := synthBenchCampaign(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthCompile measures the document pipeline alone: parse
// (YAML subset decoder), validation and compilation to a registered
// target, without running anything.
func BenchmarkSynthCompile(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("examples", "synth", "arrestor.yaml"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := synth.Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := synth.Compile(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchService drives the multi-tenant service path end to end per
// iteration: boot a service over a fresh directory, run a shared
// 3-worker in-process fleet against its HTTP API, submit `campaigns`
// quick-tier campaigns from distinct tenants, and wait for every one
// to assemble. With warm=true the workers' persistent memo store is
// pre-populated by an untimed campaign first, so the timed iterations
// measure the cross-campaign memo economy (the cold/warm delta is
// what the store buys).
func benchService(b *testing.B, campaigns int, warm bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := service.Open(service.Options{Dir: filepath.Join(dir, "svc"), Units: 4, Store: st})
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := svc.Server()
		go srv.Serve(l)
		url := "http://" + l.Addr().String()

		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_ = distrib.RunWorkerContext(ctx, url, distrib.WorkerOptions{
					Name: fmt.Sprintf("bench-w%d", w), Dir: filepath.Join(dir, "scratch"),
					Workers: 1, Memo: st, PollInterval: 10 * time.Millisecond,
				})
			}(w)
		}
		submitAndWait := func(n int) {
			ids := make([]string, 0, n)
			for c := 0; c < n; c++ {
				info, serr := svc.Submit(fmt.Sprintf("tenant-%d", c), service.SubmitRequest{Instance: "reduced", Tier: "quick"})
				if serr != nil {
					b.Fatal(serr)
				}
				ids = append(ids, info.ID)
			}
			for _, id := range ids {
				for {
					ci, ok := svc.Campaign(id)
					if ok && ci.State == service.StateDone {
						break
					}
					if ok && ci.State == service.StateFailed {
						b.Fatalf("campaign %s failed: %s", id, ci.Error)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}
		if warm {
			submitAndWait(1)
		}
		b.StartTimer()
		submitAndWait(campaigns)
		b.StopTimer()
		cancel()
		wg.Wait()
		srv.Close()
		svc.Close()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkServiceMultiCampaign measures campaign-as-a-service
// throughput: N concurrent quick-tier campaigns from distinct tenants
// over one shared 3-worker fleet, cold (empty memo store) and warm
// (store pre-populated by an identical campaign, so the fleet serves
// runs from the persistent memo instead of re-executing).
func BenchmarkServiceMultiCampaign(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("campaigns=%d/store=cold", n), func(b *testing.B) { benchService(b, n, false) })
		b.Run(fmt.Sprintf("campaigns=%d/store=warm", n), func(b *testing.B) { benchService(b, n, true) })
	}
}
