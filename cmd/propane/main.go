// Command propane runs the paper's fault-injection campaign against
// the simulated aircraft-arrestment system, estimates the error
// permeability matrix, and regenerates the paper's tables and figures.
//
// Usage:
//
//	propane [-scale tiny|reduced|paper] [-workers N] [-table all|1|2|3|4]
//	        [-uniform] [-advice] [-dot DIR] [-artifacts DIR [-resume]]
//	        [-run-budget N] [-max-retries N] [-quarantine-after N]
//	        [-prune auto|off] [-cpuprofile F] [-memprofile F]
//	        [-synth FILE [-synth-tier quick|full]]
//
// -scale selects the campaign size (tiny runs in well under a second,
// paper executes the full 52 000-run campaign). -dot writes Graphviz
// renderings of Figs. 8–12 into DIR. -artifacts routes the campaign
// through the journaled runner (internal/runner), so a long campaign
// killed mid-flight resumes with -resume instead of starting over.
// -synth compiles a declarative topology document (YAML/JSON, see
// examples/synth/) and runs the full analysis pipeline — permeability
// tables, placement advice, sensitivity — against the compiled
// target; it overrides -scale, -config and -dual.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/core"
	"propane/internal/expfile"
	"propane/internal/physics"
	"propane/internal/profiling"
	"propane/internal/report"
	"propane/internal/runner"
	"propane/internal/sim"
	"propane/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "propane:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("propane", flag.ContinueOnError)
	scale := fs.String("scale", "reduced", "campaign scale: tiny, reduced or paper")
	workers := fs.Int("workers", 0, "concurrent injection runs (<= 0 means GOMAXPROCS)")
	table := fs.String("table", "all", "which table to print: all, 1, 2, 3 or 4")
	uniform := fs.Bool("uniform", false, "print the uniform-propagation check")
	advice := fs.Bool("advice", false, "print the Section 5 EDM/ERM placement advice")
	latency := fs.Bool("latency", false, "print per-pair propagation latency and error classification")
	sensitivity := fs.Bool("sensitivity", false, "print the hardening-priority (sensitivity) table per system output")
	criticality := fs.Bool("criticality", false, "print the input-criticality table per system output")
	dual := fs.Bool("dual", false, "analyse the master/slave two-node configuration instead of the paper's single node")
	validate := fs.Bool("validate", false, "print the compositional-prediction cross-validation table")
	trees := fs.Bool("trees", false, "print ASCII backtrack and trace trees (Figs. 10-12)")
	reportPath := fs.String("report", "", "write the complete Markdown report to this file")
	configPath := fs.String("config", "", "experiment description file (JSON); overrides -scale and -dual")
	synthPath := fs.String("synth", "", "declarative topology document (YAML/JSON) to compile and campaign; overrides -scale, -config and -dual")
	synthTier := fs.String("synth-tier", "quick", "campaign tier of the -synth document to run")
	dotDir := fs.String("dot", "", "write Graphviz figures (Figs. 8-12) into this directory")
	artifacts := fs.String("artifacts", "", "journal the campaign into this artifact directory (resumable)")
	resume := fs.Bool("resume", false, "resume a killed campaign from the -artifacts journal")
	runBudget := fs.Int64("run-budget", 0, "per-run step budget: terminate and classify a run as hung after this many work units (0 = unlimited)")
	maxRetries := fs.Int("max-retries", 0, "retries for transient journal/artifact I/O failures with -artifacts (0 = default 3, negative disables)")
	quarantineAfter := fs.Int("quarantine-after", 0, "quarantine a job after this many consecutive worker crashes (0 = default 3, negative disables → abort)")
	pruneFlag := fs.String("prune", "auto", "equivalence pruning: auto (short-circuit provably equivalent runs) or off")
	adaptiveFlag := fs.String("adaptive", "off", "sequential CI-driven sampling: off (full matrix), auto, or force")
	ciEpsilon := fs.Float64("ci-epsilon", 0, "adaptive stopping half-width ε in (0, 0.5); 0 keeps the 0.05 default")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file when the campaign finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	var cfg campaign.Config
	if *synthPath != "" {
		data, err := os.ReadFile(*synthPath)
		if err != nil {
			return err
		}
		spec, err := synth.Parse(data)
		if err != nil {
			return err
		}
		compiled, err := synth.Compile(spec)
		if err != nil {
			return err
		}
		cfg, err = compiled.Config(*synthTier)
		if err != nil {
			return err
		}
	} else if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		cfg, err = expfile.Parse(data)
		if err != nil {
			return err
		}
	} else {
		var err error
		cfg, err = configForScale(*scale)
		if err != nil {
			return err
		}
		cfg.Dual = *dual
	}
	cfg.Workers = *workers
	prune, err := parsePrune(*pruneFlag)
	if err != nil {
		return err
	}
	cfg.Prune = prune
	adaptive, err := campaign.ParseAdaptiveMode(*adaptiveFlag)
	if err != nil {
		return fmt.Errorf("-adaptive: %w", err)
	}
	if *ciEpsilon < 0 || *ciEpsilon >= 0.5 {
		return fmt.Errorf("-ci-epsilon %v outside [0, 0.5)", *ciEpsilon)
	}
	if adaptive != campaign.AdaptiveOff {
		cfg.Adaptive = adaptive
	}
	if *ciEpsilon > 0 {
		cfg.CIEpsilon = *ciEpsilon
	}

	errsPerPoint := len(cfg.Bits) + len(cfg.Models)
	fmt.Printf("running campaign: %d test cases × %d instants × %d errors per input signal...\n",
		len(cfg.TestCases), len(cfg.Times), errsPerPoint)
	lastDecile := -1
	cfg.Progress = func(done, total int) {
		if total < 10000 {
			return // quiet for short campaigns
		}
		if decile := done * 10 / total; decile > lastDecile {
			lastDecile = decile
			fmt.Printf("  %d%% (%d/%d runs)\n", decile*10, done, total)
		}
	}
	var res *campaign.Result
	if *artifacts != "" {
		name := "propane-" + *scale
		if *configPath != "" {
			name = "propane-config"
		}
		if *synthPath != "" {
			name = "propane-synth"
		}
		rr, err := runner.Run(cfg, runner.Options{
			Name: name, Dir: *artifacts, Resume: *resume,
			LogInterval:     10 * time.Second,
			Logf:            func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
			RunBudgetSteps:  *runBudget,
			MaxRetries:      *maxRetries,
			QuarantineAfter: *quarantineAfter,
			Prune:           prune,
		})
		if err != nil {
			return err
		}
		res = rr.Result
		fmt.Printf("artifacts journaled in %s\n", rr.Dir)
	} else {
		if *resume {
			return fmt.Errorf("-resume needs -artifacts (there is no journal to resume from)")
		}
		// The direct path gets the same supervision as the journaled
		// one: watchdog budget plus retry/quarantine of worker faults.
		if *runBudget > 0 {
			cfg.Budget.Steps = *runBudget
		}
		if cfg.OnJobError == nil && *quarantineAfter >= 0 {
			after := *quarantineAfter
			if after == 0 {
				after = 3
			}
			cfg.OnJobError = campaign.QuarantinePolicy(after, func(format string, a ...any) {
				fmt.Printf(format+"\n", a...)
			})
		}
		var err error
		res, err = campaign.Run(cfg)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d injection runs completed (%d traps never fired)\n", res.Runs, res.Unfired)
	if res.Crashes+res.Hangs+len(res.Quarantined) > 0 {
		fmt.Printf("supervised failure modes: %d crashes, %d hangs, %d quarantined jobs (excluded from all estimates)\n",
			res.Crashes, res.Hangs, len(res.Quarantined))
	}
	if total := res.Pruning.Total(); total > res.Pruning.Executed {
		fmt.Printf("equivalence pruning: %d/%d runs resolved without full simulation (%d noop, %d unfired, %d memoized, %d converged)\n",
			total-res.Pruning.Executed, total, res.Pruning.NoOp, res.Pruning.Unfired,
			res.Pruning.Memoized, res.Pruning.Converged)
	}
	fmt.Println()

	if err := printTables(res, *table); err != nil {
		return err
	}
	if *uniform {
		fmt.Println(report.UniformPropagationTable(res))
	}
	if *advice {
		out, err := report.AdviceReport(res.Matrix)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *latency {
		fmt.Println(report.LatencyTable(res))
	}
	if *sensitivity {
		for _, out := range res.Topology.SystemOutputs() {
			s, err := report.SensitivityTable(res.Matrix, out)
			if err != nil {
				return err
			}
			fmt.Println(s)
		}
	}
	if *criticality {
		for _, out := range res.Topology.SystemOutputs() {
			s, err := report.CriticalityTable(res.Matrix, out)
			if err != nil {
				return err
			}
			fmt.Println(s)
		}
	}
	if *validate {
		s, err := report.ValidationTable(res)
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	if *trees {
		for _, out := range res.Topology.SystemOutputs() {
			tree, err := core.BacktrackTree(res.Matrix, out)
			if err != nil {
				return err
			}
			fmt.Println(report.TreeText(tree))
		}
		for _, in := range res.Topology.SystemInputs() {
			tree, err := core.TraceTree(res.Matrix, in)
			if err != nil {
				return err
			}
			fmt.Println(report.TreeText(tree))
		}
	}
	if *dotDir != "" {
		if err := writeFigures(res.Matrix, *dotDir); err != nil {
			return err
		}
		fmt.Printf("figures written to %s\n", *dotDir)
	}
	if *reportPath != "" {
		md, err := report.Markdown(res, report.MarkdownOptions{
			Latency:     *latency,
			Sensitivity: *sensitivity,
			Criticality: *criticality,
			Validation:  *validate,
			Uniform:     *uniform,
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
	return nil
}

func parsePrune(s string) (campaign.PruneMode, error) {
	switch s {
	case "auto", "":
		return campaign.PruneAuto, nil
	case "off":
		return campaign.PruneOff, nil
	}
	return campaign.PruneAuto, fmt.Errorf("unknown -prune mode %q (want auto or off)", s)
}

func configForScale(scale string) (campaign.Config, error) {
	switch scale {
	case "paper":
		return campaign.PaperConfig(), nil
	case "reduced":
		return campaign.ReducedConfig(), nil
	case "tiny":
		cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
		if err != nil {
			return campaign.Config{}, err
		}
		return campaign.Config{
			Arrestor:       arrestor.DefaultConfig(),
			TestCases:      cases,
			Times:          []sim.Millis{1500, 3500},
			Bits:           []uint{2, 14},
			HorizonMs:      6000,
			DirectWindowMs: 500,
		}, nil
	default:
		return campaign.Config{}, fmt.Errorf("unknown scale %q (want tiny, reduced or paper)", scale)
	}
}

func printTables(res *campaign.Result, which string) error {
	want := func(t string) bool { return which == "all" || which == t }
	if want("1") {
		fmt.Println(report.Table1(res))
	}
	if want("2") {
		out, err := report.Table2(res.Matrix)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("3") {
		out, err := report.Table3(res.Matrix)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("4") {
		for _, sysOut := range res.Topology.SystemOutputs() {
			out, err := report.Table4(res.Matrix, sysOut, true)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	switch which {
	case "all", "1", "2", "3", "4":
		return nil
	default:
		return fmt.Errorf("unknown table %q (want all, 1, 2, 3 or 4)", which)
	}
}

func writeFigures(m *core.Matrix, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g, err := core.NewGraph(m)
	if err != nil {
		return err
	}
	files := map[string]string{
		"fig08_topology.dot":           report.TopologyDOT(m.System()),
		"fig09_permeability_graph.dot": report.PermeabilityGraphDOT(g),
	}
	for _, output := range m.System().SystemOutputs() {
		bt, err := core.BacktrackTree(m, output)
		if err != nil {
			return err
		}
		name := "fig10_backtrack_" + output + ".dot"
		files[name] = report.TreeDOT(bt, "backtrack-"+output)
	}
	// Figs. 11 and 12 are the trace trees of ADC and PACNT; the
	// remaining inputs get their trees too (the paper omits TIC1 and
	// TCNT as "very similar" to PACNT).
	figName := map[string]string{
		arrestor.SigADC:   "fig11_trace_ADC.dot",
		arrestor.SigPACNT: "fig12_trace_PACNT.dot",
	}
	for _, input := range m.System().SystemInputs() {
		tt, err := core.TraceTree(m, input)
		if err != nil {
			return err
		}
		name, ok := figName[input]
		if !ok {
			name = "figxx_trace_" + input + ".dot"
		}
		files[name] = report.TreeDOT(tt, "trace-"+input)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	// Also export the raw matrix for permtool-style post-processing.
	return os.WriteFile(filepath.Join(dir, "matrix.csv"), []byte(report.MatrixCSV(m)), 0o644)
}
