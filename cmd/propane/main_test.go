package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinyEndToEnd(t *testing.T) {
	dotDir := t.TempDir()
	reportPath := filepath.Join(dotDir, "report.md")
	err := run([]string{
		"-scale", "tiny", "-table", "2", "-uniform", "-advice",
		"-latency", "-sensitivity", "-criticality", "-validate", "-trees",
		"-dot", dotDir, "-report", reportPath,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if md, err := os.ReadFile(reportPath); err != nil || len(md) == 0 {
		t.Errorf("markdown report missing: %v", err)
	}
	// The figure set and matrix export must exist.
	for _, name := range []string{
		"fig08_topology.dot", "fig09_permeability_graph.dot",
		"fig10_backtrack_TOC2.dot", "fig11_trace_ADC.dot",
		"fig12_trace_PACNT.dot", "matrix.csv",
	} {
		if _, err := os.Stat(filepath.Join(dotDir, name)); err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
		}
	}
}

func TestRunConfigFile(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "exp.json")
	doc := `{
		"target": "autobrake",
		"grid": {"masses": 1, "velocities": 1},
		"times_ms": [800],
		"bits": [14],
		"horizon_ms": 3000,
		"direct_window_ms": 300
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfgPath, "-table", "4"}); err != nil {
		t.Fatalf("run with config: %v", err)
	}
}

func TestRunSynthDocument(t *testing.T) {
	doc := filepath.Join("..", "..", "examples", "synth", "hostile.yaml")
	reportPath := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-synth", doc, "-table", "1", "-report", reportPath}); err != nil {
		t.Fatalf("run with -synth: %v", err)
	}
	if md, err := os.ReadFile(reportPath); err != nil || len(md) == 0 {
		t.Errorf("markdown report missing: %v", err)
	}
	// An undeclared tier in the document is a flag error, not a panic.
	if err := run([]string{"-synth", doc, "-synth-tier", "nightly"}); err == nil {
		t.Error("undeclared -synth-tier accepted")
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-scale", "warp9"},
		{"-scale", "tiny", "-table", "9"},
		{"-config", "/no/such/file.json"},
		{"-synth", "/no/such/topology.yaml"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scale", "tiny", "-table", "1", "-artifacts", dir}); err != nil {
		t.Fatalf("run with -artifacts: %v", err)
	}
	for _, name := range []string{"config.json", "journal.jsonl", "metrics.json", "failures.md", "report.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	// The journal makes the campaign resumable; a second run without
	// -resume must refuse, with -resume it replays.
	if err := run([]string{"-scale", "tiny", "-table", "1", "-artifacts", dir}); err == nil {
		t.Error("re-run without -resume accepted an existing journal")
	}
	if err := run([]string{"-scale", "tiny", "-table", "1", "-artifacts", dir, "-resume"}); err != nil {
		t.Errorf("resume of complete campaign: %v", err)
	}
	// -resume without -artifacts has no journal to resume from.
	if err := run([]string{"-scale", "tiny", "-resume"}); err == nil {
		t.Error("-resume without -artifacts accepted")
	}
}

func TestConfigForScale(t *testing.T) {
	for _, scale := range []string{"tiny", "reduced", "paper"} {
		cfg, err := configForScale(scale)
		if err != nil {
			t.Errorf("configForScale(%s): %v", scale, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scale %s invalid: %v", scale, err)
		}
	}
	if _, err := configForScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}
