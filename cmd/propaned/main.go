// Command propaned is the distributed campaign coordinator: it
// decomposes a registry instance into lease-bounded work units,
// serves them over HTTP to campaignrunner -worker agents, journals
// the records they stream back, and — once every unit is complete —
// assembles the final report, bit-identical to a single-node run.
//
// Usage:
//
//	propaned -instance paper -tier full -dir artifacts/paper -listen :8080
//	propaned -instance paper -dir artifacts/paper -resume
//	propaned -instance reduced -dir D -loopback 3
//	propaned -instance reduced -dir D -loopback 3 -chaos seed=7,rate=0.2
//
// Workers join with
//
//	campaignrunner -worker http://coordinator:8080 -dir scratch
//
// and may come and go freely: a worker silent past the lease TTL is
// presumed dead and its unit is reassigned, fast-forwarded past
// every record already received. Workers journal their records
// locally and normally complete a unit with a digest alone; the
// coordinator pulls the full record set lazily — on digest mismatch,
// when the final report needs it, or always under -pull. Killing and
// restarting propaned itself with -resume restores its state from
// the journals under -dir. The HTTP API also serves /status and
// /metrics JSON for dashboards.
//
// -loopback N skips the network fleet entirely and runs N worker
// agents in-process against an ephemeral listener — a self-contained
// (and offline) way to exercise the full distributed path on one
// machine. Adding -chaos (e.g. -chaos seed=7,rate=0.2) wraps every
// loopback worker's HTTP client in the internal/chaos fault injector:
// seeded drops, duplicated deliveries, truncations, corruptions, 5xx
// and delays on every RPC, against which the campaign must still
// assemble bit-identically — the fabric's own SWIFI smoke test.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"propane/internal/chaos"
	"propane/internal/distrib"
	"propane/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "propaned:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("propaned", flag.ContinueOnError)
	instance := fs.String("instance", "", "campaign instance to coordinate (see campaignrunner -list)")
	tier := fs.String("tier", "quick", "campaign intensity: quick or full")
	dir := fs.String("dir", "", "coordinator artifact directory (shard journals, assignment journal, final report)")
	units := fs.Int("units", 0, "initial carve granularity: the first work units are sized as if the campaign split this many ways (0 = default 8); later units are cost-sized on demand")
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve the coordinator API on")
	lease := fs.Duration("lease", 0, "lease TTL: a worker silent this long is presumed dead and its unit reassigned (0 = default 30s)")
	resume := fs.Bool("resume", false, "restore coordinator state from the journals under -dir")
	pull := fs.Bool("pull", false, "always pull full record sets from workers instead of accepting digest-only completion")
	loopback := fs.Int("loopback", 0, "run this many in-process workers on an ephemeral listener instead of serving a network fleet")
	workers := fs.Int("workers", 0, "local campaign parallelism per loopback worker (<= 0 means GOMAXPROCS)")
	runBudget := fs.Int64("run-budget", 0, "per-run step budget, applied fleet-wide via the config digest (0 = instance default)")
	chaosSpec := fs.String("chaos", "", "inject seeded faults into the loopback workers' RPCs, e.g. seed=7,rate=0.2 (see internal/chaos; -loopback mode only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instance == "" {
		return fmt.Errorf("no -instance given (use campaignrunner -list to see the registry)")
	}
	var cs *chaos.Spec
	if *chaosSpec != "" {
		if *loopback <= 0 {
			return fmt.Errorf("-chaos only applies to -loopback mode (network workers carry their own -chaos flag)")
		}
		spec, cerr := chaos.ParseSpec(*chaosSpec)
		if cerr != nil {
			return cerr
		}
		cs = &spec
	}

	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	cc := distrib.Config{
		Instance:       *instance,
		Tier:           runner.Tier(*tier),
		Dir:            *dir,
		Units:          *units,
		LeaseTTL:       *lease,
		Resume:         *resume,
		Pull:           *pull,
		RunBudgetSteps: *runBudget,
		Logf:           logf,
	}

	var rr *runner.RunResult
	var err error
	if *loopback > 0 {
		rr, err = distrib.Loopback(cc, *loopback, distrib.WorkerOptions{
			Workers: *workers,
			Chaos:   cs,
			Logf:    logf,
		})
	} else {
		var coord *distrib.Coordinator
		coord, err = distrib.NewCoordinator(cc)
		if err != nil {
			return err
		}
		var l net.Listener
		l, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		info := coord.Info()
		logf("propaned: coordinating %s/%s — %d runs, carved into work units on demand — on http://%s (workers: campaignrunner -worker http://%s -dir scratch)",
			info.Name, info.Tier, info.TotalRuns, l.Addr(), l.Addr())
		rr, err = coord.Serve(l)
	}
	if err != nil {
		return err
	}

	m := rr.Metrics
	fmt.Fprintf(out, "campaign %s/%s assembled: %d runs, %d traps unfired\n",
		m.Instance, m.Tier, m.ReplayedRuns+m.ExecutedRuns, m.Unfired)
	fmt.Fprintf(out, "%d system failures in %d equivalence classes\n", m.SystemFailures, m.UniqueFailures)
	if m.Crashes+m.Hangs+m.Quarantined > 0 {
		fmt.Fprintf(out, "supervised failure modes: %d crashes, %d hangs, %d quarantined jobs (excluded from all estimates)\n",
			m.Crashes, m.Hangs, m.Quarantined)
	}
	fmt.Fprintf(out, "artifacts in %s\n", rr.Dir)
	return nil
}
