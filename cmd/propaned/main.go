// Command propaned is the distributed campaign coordinator: it
// decomposes a registry instance into lease-bounded work units,
// serves them over HTTP to campaignrunner -worker agents, journals
// the records they stream back, and — once every unit is complete —
// assembles the final report, bit-identical to a single-node run.
//
// Usage:
//
//	propaned -instance paper -tier full -dir artifacts/paper -listen :8080
//	propaned -instance paper -dir artifacts/paper -resume
//	propaned -instance reduced -dir D -loopback 3
//	propaned -instance reduced -dir D -loopback 3 -chaos seed=7,rate=0.2
//
// Workers join with
//
//	campaignrunner -worker http://coordinator:8080 -dir scratch
//
// and may come and go freely: a worker silent past the lease TTL is
// presumed dead and its unit is reassigned, fast-forwarded past
// every record already received. Workers journal their records
// locally and normally complete a unit with a digest alone; the
// coordinator pulls the full record set lazily — on digest mismatch,
// when the final report needs it, or always under -pull. Killing and
// restarting propaned itself with -resume restores its state from
// the journals under -dir. The HTTP API also serves /status and
// /metrics JSON for dashboards.
//
// -loopback N skips the network fleet entirely and runs N worker
// agents in-process against an ephemeral listener — a self-contained
// (and offline) way to exercise the full distributed path on one
// machine. Adding -chaos (e.g. -chaos seed=7,rate=0.2) wraps every
// loopback worker's HTTP client in the internal/chaos fault injector:
// seeded drops, duplicated deliveries, truncations, corruptions, 5xx
// and delays on every RPC, against which the campaign must still
// assemble bit-identically — the fabric's own SWIFI smoke test.
//
// # Service mode
//
// With -serve, propaned becomes a long-lived multi-tenant campaign
// service instead of a single-campaign coordinator:
//
//	propaned -serve -dir /var/propane -listen :8080
//	propaned -serve -dir /var/propane -resume
//	propaned -serve -dir D -instance reduced -loopback 3
//
// Tenants submit campaigns over HTTP (POST /v1/campaigns with an
// instance name or an inline topology document, identified by an
// X-Propane-Tenant header), stream progress from GET
// /v1/campaigns/{id}/events, and fetch the assembled report from
// /v1/campaigns/{id}/report. Admission control enforces per-tenant
// quotas (-quota-queued, -quota-active, -quota-jobs) and global queue
// depth thresholds, answering 429 with a Retry-After hint when a
// submission must back off. One shared worker fleet serves every
// active campaign: leases carry a campaign ID and are granted
// weighted-fair across tenants. Completed reports and the workers'
// cross-campaign memo entries live in a content-addressed store under
// -store-dir, garbage-collected every -gc-interval. The queue,
// assignments and store index are journaled: -serve -resume after a
// kill recovers every queued and in-flight campaign bit-identically.
//
// In service mode -instance is a convenience wrapper: the campaign is
// submitted in-process and its events tailed until done (add
// -loopback N for a self-contained in-process fleet); without
// -instance the service runs until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/distrib"
	"propane/internal/runner"
	"propane/internal/service"
	"propane/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "propaned:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("propaned", flag.ContinueOnError)
	instance := fs.String("instance", "", "campaign instance to coordinate (see campaignrunner -list)")
	tier := fs.String("tier", "quick", "campaign intensity: quick or full")
	dir := fs.String("dir", "", "coordinator artifact directory (shard journals, assignment journal, final report)")
	units := fs.Int("units", 0, "initial carve granularity: the first work units are sized as if the campaign split this many ways (0 = default 8); later units are cost-sized on demand")
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve the coordinator API on")
	lease := fs.Duration("lease", 0, "lease TTL: a worker silent this long is presumed dead and its unit reassigned (0 = default 30s)")
	resume := fs.Bool("resume", false, "restore state from the journals under -dir (the coordinator's, or in -serve mode the whole service's queue and in-flight campaigns)")
	pull := fs.Bool("pull", false, "always pull full record sets from workers instead of accepting digest-only completion")
	loopback := fs.Int("loopback", 0, "run this many in-process workers on an ephemeral listener instead of serving a network fleet")
	workers := fs.Int("workers", 0, "local campaign parallelism per loopback worker (<= 0 means GOMAXPROCS)")
	runBudget := fs.Int64("run-budget", 0, "per-run step budget, applied fleet-wide via the config digest (0 = instance default)")
	adaptiveFlag := fs.String("adaptive", "off", "sequential CI-driven sampling, applied fleet-wide via the config digest: off (full matrix), auto, or force")
	ciEpsilon := fs.Float64("ci-epsilon", 0, "adaptive stopping half-width ε in (0, 0.5); 0 keeps the 0.05 default")
	chaosSpec := fs.String("chaos", "", "inject seeded faults into the loopback workers' RPCs, e.g. seed=7,rate=0.2 (see internal/chaos; -loopback mode only)")
	serve := fs.Bool("serve", false, "run as a long-lived multi-tenant campaign service (POST /v1/campaigns) instead of coordinating one campaign")
	storeDir := fs.String("store-dir", "", "content-addressed result store directory for -serve mode (default <dir>/store)")
	gcInterval := fs.Duration("gc-interval", 15*time.Minute, "store garbage-collection interval in -serve mode (0 disables)")
	quotaQueued := fs.Int("quota-queued", 0, "per-tenant cap on queued campaigns in -serve mode (0 = default 8)")
	quotaActive := fs.Int("quota-active", 0, "per-tenant cap on concurrently active campaigns in -serve mode (0 = default 2)")
	quotaJobs := fs.Int("quota-jobs", 0, "per-tenant cap on total injection jobs in flight in -serve mode (0 = default 500000)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instance == "" && !*serve {
		return fmt.Errorf("no -instance given (use campaignrunner -list to see the registry, or -serve for service mode)")
	}
	var cs *chaos.Spec
	if *chaosSpec != "" {
		if *loopback <= 0 {
			return fmt.Errorf("-chaos only applies to -loopback mode (network workers carry their own -chaos flag)")
		}
		spec, cerr := chaos.ParseSpec(*chaosSpec)
		if cerr != nil {
			return cerr
		}
		cs = &spec
	}

	adaptive, err := campaign.ParseAdaptiveMode(*adaptiveFlag)
	if err != nil {
		return fmt.Errorf("-adaptive: %w", err)
	}
	if *ciEpsilon < 0 || *ciEpsilon >= 0.5 {
		return fmt.Errorf("-ci-epsilon %v outside [0, 0.5)", *ciEpsilon)
	}

	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	if *serve {
		return runServe(out, logf, serveConfig{
			dir: *dir, storeDir: *storeDir, listen: *listen,
			instance: *instance, tier: *tier, runBudget: *runBudget,
			adaptive: adaptive.String(), ciEpsilon: *ciEpsilon,
			units: *units, lease: *lease, resume: *resume, pull: *pull,
			loopback: *loopback, workers: *workers, chaos: cs,
			gcInterval:  *gcInterval,
			quotaQueued: *quotaQueued, quotaActive: *quotaActive, quotaJobs: *quotaJobs,
		})
	}
	cc := distrib.Config{
		Instance:       *instance,
		Tier:           runner.Tier(*tier),
		Dir:            *dir,
		Units:          *units,
		LeaseTTL:       *lease,
		Resume:         *resume,
		Pull:           *pull,
		RunBudgetSteps: *runBudget,
		Adaptive:       adaptive,
		CIEpsilon:      *ciEpsilon,
		Logf:           logf,
	}

	var rr *runner.RunResult
	if *loopback > 0 {
		rr, err = distrib.Loopback(cc, *loopback, distrib.WorkerOptions{
			Workers: *workers,
			Chaos:   cs,
			Logf:    logf,
		})
	} else {
		var coord *distrib.Coordinator
		coord, err = distrib.NewCoordinator(cc)
		if err != nil {
			return err
		}
		var l net.Listener
		l, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		info := coord.Info()
		logf("propaned: coordinating %s/%s — %d runs, carved into work units on demand — on http://%s (workers: campaignrunner -worker http://%s -dir scratch)",
			info.Name, info.Tier, info.TotalRuns, l.Addr(), l.Addr())
		rr, err = coord.Serve(l)
	}
	if err != nil {
		return err
	}

	m := rr.Metrics
	fmt.Fprintf(out, "campaign %s/%s assembled: %d runs, %d traps unfired\n",
		m.Instance, m.Tier, m.ReplayedRuns+m.ExecutedRuns, m.Unfired)
	fmt.Fprintf(out, "%d system failures in %d equivalence classes\n", m.SystemFailures, m.UniqueFailures)
	if m.Crashes+m.Hangs+m.Quarantined > 0 {
		fmt.Fprintf(out, "supervised failure modes: %d crashes, %d hangs, %d quarantined jobs (excluded from all estimates)\n",
			m.Crashes, m.Hangs, m.Quarantined)
	}
	fmt.Fprintf(out, "artifacts in %s\n", rr.Dir)
	return nil
}

type serveConfig struct {
	dir, storeDir, listen    string
	instance, tier           string
	runBudget                int64
	adaptive                 string
	ciEpsilon                float64
	units                    int
	lease                    time.Duration
	resume, pull             bool
	loopback, workers        int
	chaos                    *chaos.Spec
	gcInterval               time.Duration
	quotaQueued, quotaActive int
	quotaJobs                int
}

// runServe hosts the multi-tenant campaign service: store, admission
// queue, shared-fleet scheduler and HTTP API. With an instance it
// doubles as a submit-and-tail client for its own service; without
// one it serves until interrupted.
func runServe(out io.Writer, logf func(string, ...any), sc serveConfig) error {
	if sc.dir == "" {
		return fmt.Errorf("-serve needs -dir as the service root")
	}
	if sc.storeDir == "" {
		sc.storeDir = filepath.Join(sc.dir, "store")
	}
	st, err := store.Open(sc.storeDir, store.Options{Logf: logf})
	if err != nil {
		return err
	}
	defer st.Close()

	svc, err := service.Open(service.Options{
		Dir:        sc.dir,
		Store:      st,
		Quotas:     service.Quotas{MaxQueued: sc.quotaQueued, MaxActive: sc.quotaActive, MaxJobs: sc.quotaJobs},
		Units:      sc.units,
		LeaseTTL:   sc.lease,
		Pull:       sc.pull,
		Resume:     sc.resume,
		GCInterval: sc.gcInterval,
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	l, err := net.Listen("tcp", sc.listen)
	if err != nil {
		return err
	}
	srv := svc.Server()
	go srv.Serve(l)
	defer srv.Close()
	url := "http://" + l.Addr().String()
	logf("propaned: serving campaigns on %s (submit: curl -XPOST %s/v1/campaigns -H 'X-Propane-Tenant: you' -d '{\"instance\":\"reduced\",\"tier\":\"quick\"}')", url, url)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An in-process fleet makes the service self-contained; workers
	// share the service's store as their cross-campaign memo backend.
	if sc.loopback > 0 {
		var wg sync.WaitGroup
		for i := 0; i < sc.loopback; i++ {
			name := fmt.Sprintf("loopback-w%d", i+1)
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				wo := distrib.WorkerOptions{
					Name: name, Dir: filepath.Join(sc.dir, "worker-scratch"),
					Workers: sc.workers, Chaos: sc.chaos, Memo: st, Logf: logf,
				}
				if werr := distrib.RunWorkerContext(ctx, url, wo); werr != nil && ctx.Err() == nil {
					logf("propaned: worker %s exited: %v", name, werr)
				}
			}(name)
		}
		defer func() { stop(); wg.Wait() }()
	}

	if sc.instance == "" {
		<-ctx.Done()
		logf("propaned: interrupted; draining")
		return nil
	}

	// Submit-and-tail: the legacy single-campaign UX on top of the
	// service path.
	info, err := svc.Submit("", service.SubmitRequest{
		Instance: sc.instance, Tier: sc.tier, RunBudgetSteps: sc.runBudget,
		Adaptive: sc.adaptive, CIEpsilon: sc.ciEpsilon,
	})
	if err != nil {
		return err
	}
	logf("propaned: submitted %s (%s/%s, %d jobs); tailing", info.ID, info.Instance, info.Tier, info.Jobs)
	last := info.State
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted while campaign %s was %s", info.ID, last)
		case <-time.After(200 * time.Millisecond):
		}
		ci, ok := svc.Campaign(info.ID)
		if !ok {
			return fmt.Errorf("campaign %s vanished", info.ID)
		}
		if ci.State != last {
			logf("propaned: campaign %s is %s", ci.ID, ci.State)
			last = ci.State
		}
		if ci.State == service.StateFailed {
			return fmt.Errorf("campaign %s failed: %s", ci.ID, ci.Error)
		}
		if ci.State == service.StateDone {
			break
		}
	}
	rr, ok := svc.Result(info.ID)
	if !ok {
		return fmt.Errorf("campaign %s finished without a result", info.ID)
	}
	m := rr.Metrics
	fmt.Fprintf(out, "campaign %s/%s assembled: %d runs, %d traps unfired\n",
		m.Instance, m.Tier, m.ReplayedRuns+m.ExecutedRuns, m.Unfired)
	fmt.Fprintf(out, "%d system failures in %d equivalence classes\n", m.SystemFailures, m.UniqueFailures)
	fmt.Fprintf(out, "artifacts in %s; report ref campaign/%s/report.md in %s\n", rr.Dir, info.ID, sc.storeDir)
	return nil
}
