package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoopbackCampaign drives the full distributed path through the
// CLI: coordinator plus two in-process workers over real HTTP, then
// assembly into the standard artifact set.
func TestLoopbackCampaign(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	args := []string{"-instance", "reduced", "-dir", dir, "-units", "4", "-loopback", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	for _, name := range []string{"config.json", "metrics.json", "failures.md", "report.md", "assignments.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	if !strings.Contains(out.String(), "campaign reduced/quick assembled") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}

func TestNoInstance(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("propaned ran without -instance")
	}
}
