// Command arrestor runs the simulated aircraft-arrestment system
// standalone for one test case and prints the arrestment trajectory:
// aircraft velocity and position, pulse count, checkpoint index,
// pressure set point and applied pressure over time.
//
// Usage:
//
//	arrestor [-mass KG] [-velocity MS] [-horizon MS] [-every MS]
package main

import (
	"flag"
	"fmt"
	"os"

	"propane/internal/arrestor"
	"propane/internal/physics"
	"propane/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "arrestor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("arrestor", flag.ContinueOnError)
	mass := fs.Float64("mass", 14000, "aircraft mass in kg (paper range 8000-20000)")
	velocity := fs.Float64("velocity", 60, "engagement velocity in m/s (paper range 40-80)")
	horizon := fs.Int64("horizon", 6000, "simulation horizon in ms")
	every := fs.Int64("every", 250, "print interval in ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *every <= 0 || *horizon <= 0 {
		return fmt.Errorf("horizon and print interval must be positive")
	}

	tc := physics.TestCase{MassKg: *mass, VelocityMS: *velocity}
	inst, err := arrestor.NewInstance(arrestor.DefaultConfig(), tc, nil)
	if err != nil {
		return err
	}

	signals := make(map[string]*sim.Signal)
	for _, name := range []string{
		arrestor.SigPulscnt, arrestor.SigI, arrestor.SigSetValue,
		arrestor.SigInValue, arrestor.SigOutValue, arrestor.SigTOC2,
		arrestor.SigSlowSpeed, arrestor.SigStopped,
	} {
		s, err := inst.Bus().Lookup(name)
		if err != nil {
			return err
		}
		signals[name] = s
	}

	fmt.Printf("arrestment of %v\n", tc)
	fmt.Printf("%8s %8s %8s %8s %3s %9s %9s %7s %5s %5s\n",
		"t[ms]", "v[m/s]", "x[m]", "pulscnt", "i", "SetValue", "TOC2", "p[frac]", "slow", "stop")
	printRow := func(now sim.Millis) {
		fmt.Printf("%8d %8.2f %8.1f %8d %3d %9d %9d %7.3f %5v %5v\n",
			now,
			inst.World().VelocityMS(),
			inst.World().PositionM(),
			signals[arrestor.SigPulscnt].Read(),
			signals[arrestor.SigI].Read(),
			signals[arrestor.SigSetValue].Read(),
			signals[arrestor.SigTOC2].Read(),
			inst.World().PressureFrac(),
			signals[arrestor.SigSlowSpeed].ReadBool(),
			signals[arrestor.SigStopped].ReadBool(),
		)
	}
	inst.Kernel().AddPostHook(func(now sim.Millis) {
		if (int64(now)+1)%*every == 0 {
			printRow(now + 1)
		}
	})
	inst.Run(sim.Millis(*horizon))
	fmt.Printf("\nfinal: v=%.2f m/s after %.1f m (hardware pulses: %d)\n",
		inst.World().VelocityMS(), inst.World().PositionM(), inst.World().PulseCount())
	return nil
}
