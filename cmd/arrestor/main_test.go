package main

import "testing"

func TestRunTrajectory(t *testing.T) {
	if err := run([]string{"-mass", "12000", "-velocity", "55", "-horizon", "1000", "-every", "250"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	tests := [][]string{
		{"-every", "0"},
		{"-horizon", "-5"},
		{"-mass", "0"},
		{"-velocity", "-1"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
