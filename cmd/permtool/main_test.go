package main

import (
	"os"
	"path/filepath"
	"testing"

	"propane/internal/model"
	"propane/internal/report"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatalf("run -example: %v", err)
	}
	if err := run([]string{"-example", "-dot"}); err != nil {
		t.Fatalf("run -example -dot: %v", err)
	}
	if err := run([]string{"-example", "-output", "sysout"}); err != nil {
		t.Fatalf("run -example -output: %v", err)
	}
}

func TestRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	sys := model.PaperExampleSystem()
	topoJSON, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	topoPath := filepath.Join(dir, "sys.json")
	if err := os.WriteFile(topoPath, topoJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	// Use the MatrixCSV format produced by the report package.
	m := exampleMatrix()
	csvPath := filepath.Join(dir, "perms.csv")
	if err := os.WriteFile(csvPath, []byte(report.MatrixCSV(m)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", topoPath, "-matrix", csvPath}); err != nil {
		t.Fatalf("run from files: %v", err)
	}
	// Minimal module,in,out,value rows also parse.
	minPath := filepath.Join(dir, "min.csv")
	if err := os.WriteFile(minPath, []byte("A,1,1,0.5\nB,1,2,0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", topoPath, "-matrix", minPath}); err != nil {
		t.Fatalf("run with minimal csv: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	sys := model.PaperExampleSystem()
	topoJSON, _ := sys.MarshalJSON()
	topoPath := filepath.Join(dir, "sys.json")
	if err := os.WriteFile(topoPath, topoJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	badCSV := filepath.Join(dir, "bad.csv")

	cases := map[string][]string{
		"no mode":        {},
		"missing matrix": {"-topology", topoPath},
		"bad topo path":  {"-topology", "/no/such.json", "-matrix", badCSV},
		"bad output":     {"-example", "-output", "nope"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}

	for name, contents := range map[string]string{
		"short row": "A,1\n",
		"bad in":    "A,x,1,0.5\n",
		"bad out":   "A,1,x,0.5\n",
		"bad value": "A,1,1,zz\n",
		"bad pair":  "A,9,9,0.5\n",
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(badCSV, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := run([]string{"-topology", topoPath, "-matrix", badCSV}); err == nil {
				t.Error("run accepted malformed csv")
			}
		})
	}
}

func TestRunFMECAAndProfile(t *testing.T) {
	if err := run([]string{"-example", "-fmeca", "-prob", "extA=0.1,extC=0.02,extE=0.5"}); err != nil {
		t.Fatalf("run -fmeca -prob: %v", err)
	}
	for _, bad := range []string{"extA", "extA=x", "ghost=0.1", "extA=1.5"} {
		if err := run([]string{"-example", "-prob", bad}); err == nil {
			t.Errorf("run with -prob %q succeeded, want error", bad)
		}
	}
}
