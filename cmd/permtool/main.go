// Command permtool applies the error-permeability analysis framework
// to an arbitrary system, without fault injection: it reads a topology
// (JSON, as produced by the model package) and a permeability matrix
// (CSV: module,in,out[,...],value) and prints the module measures,
// signal exposures, ranked propagation paths, placement advice, and
// optional Graphviz renderings.
//
// Usage:
//
//	permtool -topology sys.json -matrix perms.csv [-output SIGNAL] [-dot]
//	permtool -example [-dot]
//
// -example analyses the paper's Fig. 2 five-module system with the
// documentation's sample permeability values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"propane/internal/core"
	"propane/internal/model"
	"propane/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "permtool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("permtool", flag.ContinueOnError)
	topoPath := fs.String("topology", "", "path to the system topology JSON")
	matrixPath := fs.String("matrix", "", "path to the permeability CSV (module,in,out[,...],value)")
	output := fs.String("output", "", "system output to analyse (default: every system output)")
	example := fs.Bool("example", false, "analyse the built-in Fig. 2 example system")
	dot := fs.Bool("dot", false, "print Graphviz renderings of the graph and trees")
	fmeca := fs.Bool("fmeca", false, "print the FMECA-complement worksheet")
	prob := fs.String("prob", "", "per-input error probabilities for the P' profile, e.g. \"extA=0.1,extC=0.02\"")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *core.Matrix
	switch {
	case *example:
		m = exampleMatrix()
	case *topoPath != "" && *matrixPath != "":
		var err error
		m, err = loadMatrix(*topoPath, *matrixPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -example or both -topology and -matrix")
	}

	sys := m.System()
	outputs := sys.SystemOutputs()
	if *output != "" {
		if !sys.IsSystemOutput(*output) {
			return fmt.Errorf("%q is not a system output of %s (outputs: %v)", *output, sys.Name(), outputs)
		}
		outputs = []string{*output}
	}

	t2, err := report.Table2(m)
	if err != nil {
		return err
	}
	fmt.Println(t2)
	t3, err := report.Table3(m)
	if err != nil {
		return err
	}
	fmt.Println(t3)
	for _, out := range outputs {
		t4, err := report.Table4(m, out, false)
		if err != nil {
			return err
		}
		fmt.Println(t4)
	}
	advice, err := report.AdviceReport(m)
	if err != nil {
		return err
	}
	fmt.Println(advice)

	if *fmeca {
		sheet, err := report.FMECATable(m)
		if err != nil {
			return err
		}
		fmt.Println(sheet)
	}
	if *prob != "" {
		probs, err := parseProbs(*prob)
		if err != nil {
			return err
		}
		for _, out := range outputs {
			table, err := report.ProfileTable(m, out, probs)
			if err != nil {
				return err
			}
			fmt.Println(table)
		}
	}

	if *dot {
		g, err := core.NewGraph(m)
		if err != nil {
			return err
		}
		fmt.Println(report.TopologyDOT(sys))
		fmt.Println(report.PermeabilityGraphDOT(g))
		for _, out := range outputs {
			tree, err := core.BacktrackTree(m, out)
			if err != nil {
				return err
			}
			fmt.Println(report.TreeDOT(tree, "backtrack-"+out))
		}
	}
	return nil
}

// parseProbs decodes "sig=0.1,sig2=0.02" into a probability map.
func parseProbs(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("malformed probability %q (want signal=value)", part)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("probability %q: %w", part, err)
		}
		out[strings.TrimSpace(name)] = p
	}
	return out, nil
}

// loadMatrix reads the topology JSON and the permeability CSV.
func loadMatrix(topoPath, matrixPath string) (*core.Matrix, error) {
	topoData, err := os.ReadFile(topoPath)
	if err != nil {
		return nil, err
	}
	sys, err := model.DecodeSystem(topoData)
	if err != nil {
		return nil, err
	}
	m := core.NewMatrix(sys)

	csvData, err := os.ReadFile(matrixPath)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	for lineNo, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || (lineNo == 0 && strings.HasPrefix(line, "module,")) {
			continue // header or blank
		}
		fields := strings.Split(line, ",")
		if len(fields) < 4 {
			return nil, fmt.Errorf("%s:%d: need at least module,in,out,value", matrixPath, lineNo+1)
		}
		in, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: input index: %w", matrixPath, lineNo+1, err)
		}
		out, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: output index: %w", matrixPath, lineNo+1, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[len(fields)-1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: value: %w", matrixPath, lineNo+1, err)
		}
		if err := m.Set(strings.TrimSpace(fields[0]), in, out, v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", matrixPath, lineNo+1, err)
		}
	}
	return m, nil
}

// exampleMatrix builds the Fig. 2 example with the documented sample
// values.
func exampleMatrix() *core.Matrix {
	m := core.NewMatrix(model.PaperExampleSystem())
	assign := []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"A", 1, 1, 0.8},
		{"B", 1, 1, 0.5}, {"B", 1, 2, 0.6}, {"B", 2, 1, 0.9}, {"B", 2, 2, 0.3},
		{"C", 1, 1, 0.7},
		{"D", 1, 1, 0.4},
		{"E", 1, 1, 0.9}, {"E", 2, 1, 0.5}, {"E", 3, 1, 0.2},
	}
	for _, a := range assign {
		if err := m.Set(a.mod, a.in, a.out, a.v); err != nil {
			panic("permtool: example matrix invalid: " + err.Error())
		}
	}
	return m
}
