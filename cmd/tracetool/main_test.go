package main

import (
	"path/filepath"
	"testing"
)

func TestRecordInfoDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.ptrc")
	other := filepath.Join(dir, "other.ptrc")

	if err := run([]string{"record", "-out", golden, "-horizon", "1000"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run([]string{"info", "-in", golden}); err != nil {
		t.Fatalf("info: %v", err)
	}
	// Identical parameters produce an identical trace: diff is clean.
	if err := run([]string{"record", "-out", other, "-horizon", "1000"}); err != nil {
		t.Fatalf("record 2: %v", err)
	}
	if err := run([]string{"diff", "-golden", golden, "-run", other}); err != nil {
		t.Fatalf("diff identical: %v", err)
	}
	// A different test case deviates but still diffs cleanly.
	if err := run([]string{"record", "-out", other, "-horizon", "1000", "-mass", "9000"}); err != nil {
		t.Fatalf("record 3: %v", err)
	}
	if err := run([]string{"diff", "-golden", golden, "-run", other}); err != nil {
		t.Fatalf("diff deviating: %v", err)
	}
	// Dual-configuration recording works too.
	dualPath := filepath.Join(dir, "dual.ptrc")
	if err := run([]string{"record", "-out", dualPath, "-horizon", "500", "-dual"}); err != nil {
		t.Fatalf("record dual: %v", err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	tests := [][]string{
		nil,
		{"fly"},
		{"record"}, // missing -out
		{"record", "-out", "/x", "-horizon", "0"},
		{"info"}, // missing -in
		{"info", "-in", "/no/such.ptrc"},
		{"diff"}, // missing both
		{"diff", "-golden", "/no/a", "-run", "/no/b"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
