// Command tracetool records and compares PROPANE-style trace files,
// supporting the offline half of the Golden Run Comparison workflow:
//
//	tracetool record -out golden.ptrc [-mass KG] [-velocity MS] [-horizon MS] [-dual]
//	tracetool info   -in golden.ptrc
//	tracetool diff   -golden golden.ptrc -run run.ptrc
//
// `record` runs the arrestment system without injections and persists
// every signal trace; `diff` performs a full Golden Run Comparison
// between two trace files, reporting first/last deviation, deviation
// count and the transient/permanent classification per signal.
package main

import (
	"flag"
	"fmt"
	"os"

	"propane/internal/arrestor"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracetool record|info|diff [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "info":
		return info(args[1:])
	case "diff":
		return diff(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want record, info or diff)", args[0])
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "", "output trace file (required)")
	mass := fs.Float64("mass", 14000, "aircraft mass in kg")
	velocity := fs.Float64("velocity", 60, "engagement velocity in m/s")
	horizon := fs.Int64("horizon", 6000, "simulation horizon in ms")
	dual := fs.Bool("dual", false, "record the master/slave configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	if *horizon <= 0 {
		return fmt.Errorf("record: horizon must be positive")
	}

	tc := physics.TestCase{MassKg: *mass, VelocityMS: *velocity}
	var (
		inst *arrestor.Instance
		err  error
	)
	if *dual {
		inst, err = arrestor.NewDualInstance(arrestor.DefaultDualConfig(), tc, nil)
	} else {
		inst, err = arrestor.NewInstance(arrestor.DefaultConfig(), tc, nil)
	}
	if err != nil {
		return err
	}
	rec, err := trace.NewRecorder(inst.Bus())
	if err != nil {
		return err
	}
	inst.Kernel().AddPostHook(rec.Hook())
	inst.Run(sim.Millis(*horizon))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := rec.Trace().WriteTo(f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d signals × %d samples (%d bytes) to %s\n",
		len(rec.Trace().Signals()), rec.Trace().Len(), n, *out)
	return nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadTrace(f)
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -in is required")
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d signals × %d samples\n", *in, len(tr.Signals()), tr.Len())
	for _, sig := range tr.Signals() {
		samples, err := tr.Samples(sig)
		if err != nil {
			return err
		}
		lo, hi := samples[0], samples[0]
		for _, v := range samples {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		last := samples[len(samples)-1]
		fmt.Printf("  %-14s min=%5d max=%5d final=%5d\n", sig, lo, hi, last)
	}
	return nil
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	goldenPath := fs.String("golden", "", "golden trace file (required)")
	runPath := fs.String("run", "", "run trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *goldenPath == "" || *runPath == "" {
		return fmt.Errorf("diff: -golden and -run are required")
	}
	golden, err := loadTrace(*goldenPath)
	if err != nil {
		return err
	}
	runTr, err := loadTrace(*runPath)
	if err != nil {
		return err
	}
	diffs, err := trace.Compare(golden, runTr)
	if err != nil {
		return err
	}
	deviated := 0
	for _, sig := range golden.Signals() {
		d := diffs[sig]
		if !d.Differs() {
			continue
		}
		deviated++
		fmt.Printf("%-14s first=%5d ms last=%5d ms count=%6d density=%.2f class=%s\n",
			sig, d.First, d.Last, d.Count, d.Density(), d.Classify(golden.Len()))
	}
	if deviated == 0 {
		fmt.Println("traces are identical")
	} else {
		fmt.Printf("%d of %d signals deviated\n", deviated, len(golden.Signals()))
	}
	return nil
}
