// Command campaignrunner orchestrates journaled, resumable SWIFI
// campaigns from the named-instance registry (internal/runner).
//
// Usage:
//
//	campaignrunner -list
//	campaignrunner -instance paper -tier quick -dir artifacts/paper-quick
//	campaignrunner -instance paper -dir D -resume
//	campaignrunner -instance paper -dir D -shard 0 -shards 4
//	campaignrunner -instance paper -dir D -assemble
//	campaignrunner -worker http://coordinator:8080 -dir scratch
//	campaignrunner -worker http://coordinator:8080 -dir scratch -chaos seed=7,rate=0.2
//	campaignrunner -synth examples/synth/arrestor.yaml -instance synth-arrestor -tier quick -dir D
//	campaignrunner -fuzz-topologies 200
//
// Every run writes an artifact set under -dir: config.json (the
// digestable config snapshot), journal.jsonl (one line per completed
// injection run), metrics.json, failures.md and — for unsharded or
// assembled runs — report.md. A run killed mid-campaign is resumed
// with -resume; completed jobs replay from the journal and only the
// remainder executes, converging to the bit-identical permeability
// matrix. For sharded execution, start one process per shard with
// the same -dir and -shards, then merge with -assemble.
//
// Runs execute supervised: -run-budget bounds each run's
// deterministic work units (an exceeded budget classifies the run as
// a hang), target panics are classified as crashes, transient
// journal/artifact I/O failures retry with backoff (-max-retries),
// and a job that repeatedly crashes its worker is quarantined after
// -quarantine-after consecutive failures instead of wedging the
// campaign.
//
// With -synth, declarative topology documents (YAML/JSON, see
// examples/synth/) are compiled and registered as additional named
// instances before any other mode runs, so they list, run, resume,
// shard and assemble exactly like the built-in ones. With
// -fuzz-topologies N, the process instead generates N random valid
// topologies and runs each one's quick campaign twice, failing on
// any engine panic, campaign error or non-determinism.
//
// With -worker, the process joins the fleet of a distributed
// coordinator (command propaned) instead of running a campaign of
// its own: it leases work units, executes them through the same
// supervised local path under -dir (the scratch root), and streams
// the journal records back until the coordinator reports the
// campaign complete. -chaos wraps the worker's HTTP client in the
// internal/chaos fault injector (seeded drops, duplicates,
// truncations, corruptions, 5xx and delays) — the fabric's own SWIFI
// harness; the campaign must still assemble bit-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/distrib"
	"propane/internal/profiling"
	"propane/internal/runner"
	"propane/internal/store"
	"propane/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaignrunner:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("campaignrunner", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the registered campaign instances and exit")
	instance := fs.String("instance", "", "campaign instance to run (see -list)")
	tier := fs.String("tier", "quick", "campaign intensity: quick or full")
	dir := fs.String("dir", "", "artifact directory (journal, metrics, report)")
	resume := fs.Bool("resume", false, "resume a killed campaign from its journal")
	shard := fs.Int("shard", 0, "this process's shard index, in [0,shards)")
	shards := fs.Int("shards", 0, "split the injection space over this many shards (0 = unsharded)")
	assemble := fs.Bool("assemble", false, "merge the shard journals under -dir into the final report")
	workers := fs.Int("workers", 0, "concurrent injection runs (<= 0 means GOMAXPROCS)")
	progress := fs.Duration("progress", 10*time.Second, "progress-line interval (0 disables)")
	runBudget := fs.Int64("run-budget", 0, "per-run step budget: terminate and classify a run as hung after this many work units (0 = instance default)")
	maxRetries := fs.Int("max-retries", 0, "retries for transient journal/artifact I/O failures (0 = default 3, negative disables)")
	quarantineAfter := fs.Int("quarantine-after", 0, "quarantine a job after this many consecutive worker crashes (0 = default 3, negative disables → abort)")
	pruneFlag := fs.String("prune", "auto", "equivalence pruning: auto (short-circuit provably equivalent runs) or off")
	adaptiveFlag := fs.String("adaptive", "off", "sequential CI-driven sampling: off (full matrix), auto, or force")
	ciEpsilon := fs.Float64("ci-epsilon", 0, "adaptive stopping half-width ε in (0, 0.5); 0 keeps the 0.05 default")
	synthFiles := fs.String("synth", "", "comma-separated declarative topology documents to compile and register as instances")
	fuzzTopologies := fs.Int("fuzz-topologies", 0, "generate and campaign this many random topologies, then exit")
	workerURL := fs.String("worker", "", "join a distributed coordinator's fleet at this URL (see propaned); -dir becomes the local scratch root")
	workerName := fs.String("worker-name", "", "fleet identity for -worker mode (default hostname-pid; keep it stable across restarts to resume local work)")
	chaosSpec := fs.String("chaos", "", "inject seeded faults into this worker's coordinator RPCs, e.g. seed=7,rate=0.2 (see internal/chaos; -worker mode only)")
	storeDir := fs.String("store-dir", "", "persistent memo store: identical injection runs across campaigns are served from this directory instead of re-executing (-worker mode only)")
	jsonRecords := fs.Bool("json-records", false, "upload records as JSON even when the coordinator offers the binary batch framing (-worker mode only)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file when the campaign finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if *synthFiles != "" {
		for _, path := range strings.Split(*synthFiles, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			def, serr := runner.RegisterSynthFile(path)
			if serr != nil {
				return serr
			}
			fmt.Fprintf(out, "registered instance %q from %s\n", def.Name, path)
		}
	}
	if *fuzzTopologies > 0 {
		return runTopologyFuzz(*fuzzTopologies, out)
	}

	if *list {
		fmt.Fprintln(out, "registered campaign instances (tiers: quick, full):")
		for _, def := range runner.Instances() {
			fmt.Fprintf(out, "  %-14s %s\n", def.Name, def.Description)
		}
		return nil
	}
	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	var prune campaign.PruneMode
	switch *pruneFlag {
	case "auto", "":
		prune = campaign.PruneAuto
	case "off":
		prune = campaign.PruneOff
	default:
		return fmt.Errorf("unknown -prune mode %q (want auto or off)", *pruneFlag)
	}
	adaptive, err := campaign.ParseAdaptiveMode(*adaptiveFlag)
	if err != nil {
		return fmt.Errorf("-adaptive: %w", err)
	}
	if *ciEpsilon < 0 || *ciEpsilon >= 0.5 {
		return fmt.Errorf("-ci-epsilon %v outside [0, 0.5)", *ciEpsilon)
	}
	if *workerURL != "" {
		if *dir == "" {
			return fmt.Errorf("-worker needs -dir as the local scratch root")
		}
		var cs *chaos.Spec
		if *chaosSpec != "" {
			spec, cerr := chaos.ParseSpec(*chaosSpec)
			if cerr != nil {
				return cerr
			}
			cs = &spec
		}
		// A signal aborts backoff waits and poll sleeps immediately
		// instead of letting a mid-retry worker linger.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		encoding := ""
		if *jsonRecords {
			encoding = "json"
		}
		var memo runner.MemoStore
		if *storeDir != "" {
			st, serr := store.Open(*storeDir, store.Options{Logf: logf})
			if serr != nil {
				return serr
			}
			defer st.Close()
			memo = st
		}
		werr := distrib.RunWorkerContext(ctx, *workerURL, distrib.WorkerOptions{
			Name:        *workerName,
			Dir:         *dir,
			Workers:     *workers,
			Chaos:       cs,
			Encoding:    encoding,
			Memo:        memo,
			LogInterval: *progress,
			Logf:        logf,
		})
		if werr != nil && ctx.Err() != nil {
			return fmt.Errorf("worker interrupted: %w", werr)
		}
		return werr
	}
	if *chaosSpec != "" {
		return fmt.Errorf("-chaos only applies to -worker mode (or propaned -loopback)")
	}
	if *jsonRecords {
		return fmt.Errorf("-json-records only applies to -worker mode")
	}
	if *storeDir != "" {
		return fmt.Errorf("-store-dir only applies to -worker mode")
	}
	if *instance == "" {
		return fmt.Errorf("no -instance given (use -list to see the registry)")
	}
	opts := runner.Options{
		Dir:             *dir,
		Shard:           *shard,
		Shards:          *shards,
		Resume:          *resume,
		Workers:         *workers,
		LogInterval:     *progress,
		Logf:            logf,
		RunBudgetSteps:  *runBudget,
		MaxRetries:      *maxRetries,
		QuarantineAfter: *quarantineAfter,
		Prune:           prune,
		Adaptive:        adaptive,
		CIEpsilon:       *ciEpsilon,
	}

	var rr *runner.RunResult
	if *assemble {
		def, lerr := runner.Lookup(*instance)
		if lerr != nil {
			return lerr
		}
		cfg, cerr := def.Config(runner.Tier(*tier))
		if cerr != nil {
			return cerr
		}
		opts.Name = *instance
		opts.Tier = runner.Tier(*tier)
		rr, err = runner.Assemble(cfg, opts)
	} else {
		rr, err = runner.RunInstance(*instance, runner.Tier(*tier), opts)
	}
	if err != nil {
		return err
	}

	m := rr.Metrics
	fmt.Fprintf(out, "campaign %s/%s: %d runs (%d replayed, %d executed), %d traps unfired\n",
		m.Instance, m.Tier, m.ReplayedRuns+m.ExecutedRuns, m.ReplayedRuns, m.ExecutedRuns, m.Unfired)
	fmt.Fprintf(out, "%d system failures in %d equivalence classes\n", m.SystemFailures, m.UniqueFailures)
	if m.Crashes+m.Hangs+m.Quarantined > 0 {
		fmt.Fprintf(out, "supervised failure modes: %d crashes, %d hangs, %d quarantined jobs (excluded from all estimates)\n",
			m.Crashes, m.Hangs, m.Quarantined)
	}
	if m.PrunedRuns+m.MemoizedRuns+m.ConvergedRuns > 0 {
		fmt.Fprintf(out, "equivalence pruning: %d pruned, %d memoized, %d converged (outcomes retained in all estimates)\n",
			m.PrunedRuns, m.MemoizedRuns, m.ConvergedRuns)
	}
	if m.ExecutedRuns > 0 {
		fmt.Fprintf(out, "%.0f runs/s over %d workers (%.0f%% utilisation)\n",
			m.RunsPerSecond, m.Workers, 100*m.WorkerUtilization)
	}
	if m.Shards > 1 {
		fmt.Fprintf(out, "shard %d/%d journaled under %s; run -assemble when all shards finish\n",
			m.Shard+1, m.Shards, rr.Dir)
	} else {
		fmt.Fprintf(out, "artifacts in %s\n", rr.Dir)
	}
	return nil
}

// runTopologyFuzz sweeps seeds 1..n through the topology generator:
// each spec must validate, compile and produce a deterministic quick
// campaign. Crashing or hanging modules are legitimate outcomes; an
// engine panic or campaign error fails the sweep.
func runTopologyFuzz(n int, out io.Writer) error {
	for seed := int64(1); seed <= int64(n); seed++ {
		spec := synth.GenerateTopology(seed)
		if err := synth.CheckTopology(spec); err != nil {
			return fmt.Errorf("topology fuzz: seed %d: %w", seed, err)
		}
		if seed%50 == 0 || seed == int64(n) {
			fmt.Fprintf(out, "topology fuzz: %d/%d topologies survived\n", seed, n)
		}
	}
	fmt.Fprintf(out, "topology fuzz: %d topologies, zero engine panics\n", n)
	return nil
}
