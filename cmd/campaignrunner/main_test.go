package main

import (
	"net"
	"net/http"

	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"propane/internal/distrib"
	"propane/internal/runner"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"paper", "reduced", "dual", "autobrake", "error-models", "tolerance"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list misses instance %s:\n%s", name, out.String())
		}
	}
}

func TestRunReducedQuick(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-instance", "reduced", "-dir", dir, "-progress", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"config.json", "journal.jsonl", "metrics.json", "failures.md", "report.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	if !strings.Contains(out.String(), "campaign reduced/quick") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	// Re-running without -resume must refuse; with -resume it is a
	// no-op replay.
	if err := run([]string{"-instance", "reduced", "-dir", dir}, &out); err == nil {
		t.Error("re-run without -resume accepted an existing journal")
	}
	out.Reset()
	if err := run([]string{"-instance", "reduced", "-dir", dir, "-resume", "-progress", "0"}, &out); err != nil {
		t.Fatalf("resume of a complete campaign: %v", err)
	}
	if !strings.Contains(out.String(), "0 executed") {
		t.Errorf("complete campaign re-executed runs:\n%s", out.String())
	}
}

func TestRunShardsAndAssemble(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	for s := 0; s < 2; s++ {
		args := []string{"-instance", "reduced", "-dir", dir,
			"-shard", strconv.Itoa(s), "-shards", "2", "-progress", "0"}
		if err := run(args, &out); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	if !strings.Contains(out.String(), "-assemble") {
		t.Errorf("sharded run did not point at -assemble:\n%s", out.String())
	}
	if err := run([]string{"-instance", "reduced", "-dir", dir, "-assemble"}, &out); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "report.md")); err != nil {
		t.Errorf("assemble did not write report.md: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	tests := [][]string{
		{}, // no instance
		{"-instance", "warpdrive", "-dir", t.TempDir()},
		{"-instance", "reduced"}, // no dir
		{"-instance", "reduced", "-tier", "nightly", "-dir", t.TempDir()},
		{"-instance", "reduced", "-dir", t.TempDir(), "-assemble"}, // no journals
	}
	for _, args := range tests {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted invalid arguments", args)
		}
	}
}

func TestRunHostileQuickReportsSupervisedModes(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	args := []string{"-instance", "hostile", "-dir", dir, "-progress", "0",
		"-run-budget", "0", "-max-retries", "3", "-quarantine-after", "3"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "supervised failure modes:") {
		t.Errorf("summary misses the supervised failure modes:\n%s", out.String())
	}
	if strings.Contains(out.String(), "0 crashes, 0 hangs") {
		t.Errorf("hostile campaign reported no crashes/hangs:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "failures.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crash", "hang"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("failures.md misses %q", want)
		}
	}
}

// TestRunWorkerMode joins a live coordinator as a fleet worker and
// processes the whole campaign through the CLI entry point.
func TestRunWorkerMode(t *testing.T) {
	dir := t.TempDir()
	coord, err := distrib.NewCoordinator(distrib.Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      filepath.Join(dir, "coord"),
		Units:    2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(l)
	defer srv.Close()

	var out strings.Builder
	args := []string{"-worker", "http://" + l.Addr().String(),
		"-dir", filepath.Join(dir, "scratch"), "-worker-name", "cli-w1", "-progress", "0"}
	if err := run(args, &out); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("worker exited but the campaign is not complete")
	}
	if _, err := coord.Assemble(); err != nil {
		t.Fatal(err)
	}

	// -worker without a scratch root must refuse.
	if err := run([]string{"-worker", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("-worker without -dir accepted")
	}
}

// TestRunSynthInstance compiles a declarative topology document from
// the CLI, registers it, and journals its quick campaign exactly like
// a built-in instance.
func TestRunSynthInstance(t *testing.T) {
	dir := t.TempDir()
	synthFile := filepath.Join("..", "..", "examples", "synth", "hostile.yaml")
	var out strings.Builder
	args := []string{"-synth", synthFile, "-instance", "synth-hostile",
		"-dir", dir, "-progress", "0"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { runner.Unregister("synth-hostile") })
	if !strings.Contains(out.String(), `registered instance "synth-hostile"`) {
		t.Errorf("registration line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "campaign synth-hostile/quick") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "supervised failure modes:") {
		t.Errorf("compiled mines/tarpits produced no supervised modes:\n%s", out.String())
	}
	for _, name := range []string{"config.json", "journal.jsonl", "metrics.json", "report.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}

// TestRunSynthErrors: a missing or invalid document fails the run up
// front, before any campaign work.
func TestRunSynthErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-synth", filepath.Join(t.TempDir(), "nope.yaml"), "-list"}, &out); err == nil {
		t.Error("missing -synth file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-synth", bad, "-list"}, &out); err == nil {
		t.Error("invalid -synth file accepted")
	}
}

// TestRunFuzzTopologies drives the generator sweep through the CLI.
func TestRunFuzzTopologies(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fuzz-topologies", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "5 topologies, zero engine panics") {
		t.Errorf("fuzz summary missing:\n%s", out.String())
	}
}
