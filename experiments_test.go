// Experiment-level tests: each test pins one artefact of the paper's
// evaluation (Tables 1-4, Figs. 9-12, observations OB1-OB6, and the
// Section 2/6 side claims) at reduced campaign scale. EXPERIMENTS.md
// records the corresponding full-scale numbers.
package propane_test

import (
	"strings"
	"sync"
	"testing"

	"propane"
	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/core"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/stats"
	"propane/internal/trace"
)

var (
	expOnce sync.Once
	expRes  *campaign.Result
	expErr  error
)

// experimentResult runs one reduced campaign shared by all experiment
// tests.
func experimentResult(t *testing.T) *campaign.Result {
	t.Helper()
	expOnce.Do(func() {
		expRes, expErr = campaign.Run(campaign.ReducedConfig())
	})
	if expErr != nil {
		t.Fatalf("campaign: %v", expErr)
	}
	return expRes
}

// TestExperimentTable1 pins the shape of Table 1: 25 pairs, all
// estimates in [0,1], with the paper's exact zeros and ones.
func TestExperimentTable1(t *testing.T) {
	res := experimentResult(t)
	if len(res.Pairs) != 25 {
		t.Fatalf("pairs = %d, want 25", len(res.Pairs))
	}
	for _, ps := range res.Pairs {
		if ps.Estimate < 0 || ps.Estimate > 1 {
			t.Errorf("%v estimate %v out of range", ps.Pair, ps.Estimate)
		}
	}
	mustGet := func(mod, in, out string) float64 {
		t.Helper()
		ps, err := res.PairBySignal(mod, in, out)
		if err != nil {
			t.Fatal(err)
		}
		return ps.Estimate
	}
	// Paper Table 1 anchors: the slot feedback is fully permeable and
	// the i->i feedback is (near) fully permeable; the clock counter is
	// independent of the slot input.
	if got := mustGet(arrestor.ModClock, arrestor.SigMsSlotNbr, arrestor.SigMsSlotNbr); got != 1.0 {
		t.Errorf("ms_slot_nbr feedback permeability = %v, want 1.0", got)
	}
	if got := mustGet(arrestor.ModClock, arrestor.SigMsSlotNbr, arrestor.SigMscnt); got != 0.0 {
		t.Errorf("ms_slot_nbr->mscnt = %v, want 0.0", got)
	}
	if got := mustGet(arrestor.ModCalc, arrestor.SigI, arrestor.SigI); got < 0.5 {
		t.Errorf("i->i = %v, want high (paper: 1.000)", got)
	}
}

// TestExperimentTable2 pins Table 2 and observation OB1: CALC and
// V_REG carry the highest non-weighted exposure; DIST_S and PRES_S
// have none.
func TestExperimentTable2(t *testing.T) {
	res := experimentResult(t)
	measures, err := res.Matrix.AllModuleMeasures()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]core.ModuleMeasures{}
	for _, mm := range measures {
		byName[mm.Module] = mm
	}
	// OB1: modules receiving only system inputs have no exposure.
	for _, mod := range []string{arrestor.ModDistS, arrestor.ModPresS} {
		if byName[mod].HasExposure {
			t.Errorf("%s has exposure values, want none (OB1)", mod)
		}
	}
	// OB1: CALC and V_REG have the highest non-weighted exposure.
	type scored struct {
		name string
		x    float64
	}
	var exposures []scored
	for _, mm := range measures {
		if mm.HasExposure {
			exposures = append(exposures, scored{mm.Module, mm.NonWeightedExposure})
		}
	}
	top2 := map[string]bool{}
	for i := 0; i < 2 && i < len(exposures); i++ {
		best := 0
		for j := range exposures {
			if exposures[j].x > exposures[best].x {
				best = j
			}
		}
		top2[exposures[best].name] = true
		exposures[best].x = -1
	}
	if !top2[arrestor.ModCalc] || !top2[arrestor.ModVReg] {
		t.Errorf("top-2 exposure modules = %v, want CALC and V_REG (OB1)", top2)
	}
	// CALC has the highest relative permeability among multi-pair
	// modules of the processing chain (OB5 premise) and PRES_S the
	// lowest overall.
	if byName[arrestor.ModPresS].NonWeighted > 0.5 {
		t.Errorf("PRES_S P̄ = %v, want near zero (paper: 0.000)", byName[arrestor.ModPresS].NonWeighted)
	}
}

// TestExperimentTable3 pins Table 3: SetValue has the highest signal
// exposure among internal signals; InValue is near the bottom (OB3);
// stopped has zero exposure.
func TestExperimentTable3(t *testing.T) {
	res := experimentResult(t)
	exposures, err := core.SignalExposures(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	x := map[string]float64{}
	for _, se := range exposures {
		x[se.Signal] = se.Exposure
	}
	if x[arrestor.SigSetValue] <= x[arrestor.SigInValue] {
		t.Errorf("X^SetValue=%v <= X^InValue=%v; paper has SetValue top, InValue near zero",
			x[arrestor.SigSetValue], x[arrestor.SigInValue])
	}
	if x[arrestor.SigStopped] != 0 {
		t.Errorf("X^stopped = %v, want 0 (OB2)", x[arrestor.SigStopped])
	}
	for _, in := range []string{arrestor.SigPACNT, arrestor.SigTIC1, arrestor.SigTCNT, arrestor.SigADC} {
		if x[in] != 0 {
			t.Errorf("system input %s has exposure %v, want 0", in, x[in])
		}
	}
}

// TestExperimentTable4 pins Table 4 and Fig. 10: the backtrack tree of
// TOC2 has exactly 22 root-to-leaf paths (paper Section 8), the
// non-zero subset is non-empty, and SetValue and OutValue appear on
// every non-zero path that does not enter through ADC (OB5 states they
// are part of all paths of the paper's Table 4).
func TestExperimentTable4(t *testing.T) {
	res := experimentResult(t)
	tree, err := core.BacktrackTree(res.Matrix, arrestor.SigTOC2)
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.Paths()
	if len(paths) != 22 {
		t.Fatalf("TOC2 backtrack tree has %d paths, want 22 (paper Section 8)", len(paths))
	}
	nz := tree.NonZeroPaths()
	if len(nz) == 0 || len(nz) > 22 {
		t.Fatalf("non-zero paths = %d, want in 1..22 (paper: 13)", len(nz))
	}
	for _, p := range nz {
		s := p.String()
		if !strings.Contains(s, arrestor.SigOutValue) {
			t.Errorf("non-zero path %q misses OutValue (OB5)", s)
		}
		if !strings.Contains(s, arrestor.SigInValue) && !strings.Contains(s, arrestor.SigSetValue) {
			t.Errorf("non-zero path %q misses both SetValue and InValue", s)
		}
	}
	// Ranking is by decreasing weight.
	ranked := tree.RankedPaths()
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Weight() < ranked[i].Weight() {
			t.Errorf("ranked paths out of order at %d", i)
		}
	}
}

// TestExperimentOB2 pins observation OB2: every permeability into the
// stopped output is zero.
func TestExperimentOB2(t *testing.T) {
	res := experimentResult(t)
	for _, ps := range res.Pairs {
		if ps.OutputSignal == arrestor.SigStopped && ps.Estimate != 0 {
			t.Errorf("%v = %v, want 0 (OB2)", ps.Pair, ps.Estimate)
		}
	}
}

// TestExperimentOB4OB5 pins the placement conclusions: the advisor
// selects SetValue and OutValue among the top EDM signals and CALC as
// the top ERM module.
func TestExperimentOB4OB5(t *testing.T) {
	res := experimentResult(t)
	adv, err := core.Advise(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.EDMSignals) < 2 {
		t.Fatalf("too few EDM signal candidates: %v", adv.EDMSignals)
	}
	top3 := map[string]bool{}
	for i := 0; i < 3 && i < len(adv.EDMSignals); i++ {
		top3[adv.EDMSignals[i].Signal] = true
	}
	if !top3[arrestor.SigSetValue] {
		t.Errorf("SetValue not in top-3 EDM signals: %v", adv.EDMSignals[:3])
	}
	if len(adv.ERMModules) == 0 || adv.ERMModules[0].Module != arrestor.ModCalc {
		t.Errorf("top ERM module = %v, want CALC (OB5)", adv.ERMModules)
	}
	// OB6: the barrier modules are exactly those reading sensors.
	want := []string{arrestor.ModDistS, arrestor.ModPresS}
	if len(adv.BarrierModules) != len(want) ||
		adv.BarrierModules[0] != want[0] || adv.BarrierModules[1] != want[1] {
		t.Errorf("barrier modules = %v, want %v (OB6)", adv.BarrierModules, want)
	}
}

// TestExperimentUniformPropagation pins the Section 2 claim: our
// findings do not corroborate uniform propagation.
func TestExperimentUniformPropagation(t *testing.T) {
	res := experimentResult(t)
	nonUniform := res.NonUniformLocations(0.05, 0.95)
	if len(nonUniform) < 3 {
		t.Errorf("only %d locations propagate non-uniformly; expected several", len(nonUniform))
	}
}

// ablationConfig is a minimal campaign for the Section 6/9 ablations.
func ablationConfig() campaign.Config {
	cases, err := physics.Grid(2, 1, 9000, 19000, 65, 65)
	if err != nil {
		panic(err)
	}
	return campaign.Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1200, 3200},
		Bits:           []uint{1, 9, 13},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

func moduleRanking(t *testing.T, res *campaign.Result) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, name := range res.Topology.ModuleNames() {
		v, err := res.Matrix.NonWeightedRelativePermeability(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = v
	}
	return out
}

// TestAblationErrorModel checks the paper's Section 6 claim that the
// relative order of modules is maintained across error models: the
// module ranking under bit-flips correlates with the ranking under
// stuck-at and offset errors.
func TestAblationErrorModel(t *testing.T) {
	base, err := campaign.Run(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	alt := ablationConfig()
	alt.Bits = nil
	alt.Models = []inject.ErrorModel{
		inject.StuckAt{Bit: 1, One: true},
		inject.StuckAt{Bit: 13, One: true},
		inject.Offset{Delta: 777},
	}
	altRes, err := campaign.Run(alt)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := stats.KendallTau(moduleRanking(t, base), moduleRanking(t, altRes))
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.4 {
		t.Errorf("module ranking correlation across error models tau = %v, want >= 0.4", tau)
	}
}

// TestAblationWorkload probes the paper's future-work question (the
// effect of workload on permeability estimates): two disjoint workload
// grids must still produce correlated module rankings.
func TestAblationWorkload(t *testing.T) {
	light := ablationConfig()
	lightCases, err := physics.Grid(1, 2, 8500, 8500, 45, 75)
	if err != nil {
		t.Fatal(err)
	}
	light.TestCases = lightCases
	heavy := ablationConfig()
	heavyCases, err := physics.Grid(1, 2, 19500, 19500, 45, 75)
	if err != nil {
		t.Fatal(err)
	}
	heavy.TestCases = heavyCases

	lr, err := campaign.Run(light)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := campaign.Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := stats.KendallTau(moduleRanking(t, lr), moduleRanking(t, hr))
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.4 {
		t.Errorf("module ranking correlation across workloads tau = %v, want >= 0.4", tau)
	}
}

// TestPublicFacade exercises the quickstart flow through the public
// package surface only.
func TestPublicFacade(t *testing.T) {
	sys := propane.ExampleSystem()
	m := propane.NewMatrix(sys)
	if err := m.SetBySignal("B", "a1", "b2", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.SetBySignal("E", "b2", "sysout", 0.9); err != nil {
		t.Fatal(err)
	}
	tree, err := propane.BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Root.CountLeaves(); got != 5 {
		t.Errorf("example backtrack tree has %d paths, want 5", got)
	}
	tt, err := propane.TraceTree(m, "extA")
	if err != nil {
		t.Fatal(err)
	}
	if tt.Root.Signal != "extA" {
		t.Errorf("trace tree root = %s", tt.Root.Signal)
	}
	g, err := propane.NewGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Arcs()) == 0 {
		t.Error("graph has no arcs")
	}
	adv, err := propane.Advise(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.ERMModules) == 0 {
		t.Error("no ERM module candidates")
	}
	t2, err := propane.Table2(m)
	if err != nil || !strings.Contains(t2, "Table 2") {
		t.Errorf("Table2 via facade: %v", err)
	}
	t3, err := propane.Table3(m)
	if err != nil || !strings.Contains(t3, "Table 3") {
		t.Errorf("Table3 via facade: %v", err)
	}
	t4, err := propane.Table4(m, "sysout", false)
	if err != nil || !strings.Contains(t4, "Table 4") {
		t.Errorf("Table4 via facade: %v", err)
	}
	if propane.PaperCampaign().HorizonMs != 6000 {
		t.Error("paper campaign horizon unexpected")
	}
}

// TestFacadeCampaign runs a tiny campaign through the facade.
func TestFacadeCampaign(t *testing.T) {
	cfg := propane.ReducedCampaign()
	cfg.OnlyModule = arrestor.ModPresA
	cfg.Bits = cfg.Bits[:1]
	cfg.Times = cfg.Times[:1]
	cfg.TestCases = cfg.TestCases[:1]
	res, err := propane.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Errorf("Runs = %d, want 1", res.Runs)
	}
	if out := propane.Table1(res); !strings.Contains(out, "P^PRES_A_{1,1}") {
		t.Error("Table1 via facade missing PRES_A pair")
	}
}

// TestAblationComparisonTolerance probes what a real test rig's
// tolerant Golden Run Comparison would measure: with a tolerance band
// on every signal, each pair's permeability estimate can only stay or
// drop relative to the paper's exact comparison, and small-magnitude
// deviations vanish first.
func TestAblationComparisonTolerance(t *testing.T) {
	exact := ablationConfig()
	exactRes, err := campaign.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	tolerant := ablationConfig()
	tolerant.Tolerances = trace.Tolerances{}
	for _, sig := range arrestorSignals() {
		tolerant.Tolerances[sig] = 512
	}
	tolRes, err := campaign.Run(tolerant)
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for i, ps := range exactRes.Pairs {
		tp := tolRes.Pairs[i]
		if tp.Pair != ps.Pair {
			t.Fatalf("pair order mismatch: %v vs %v", tp.Pair, ps.Pair)
		}
		if tp.Estimate > ps.Estimate+1e-9 {
			t.Errorf("%v: tolerant estimate %v exceeds exact %v", ps.Pair, tp.Estimate, ps.Estimate)
		}
		if tp.Estimate < ps.Estimate {
			dropped = true
		}
	}
	if !dropped {
		t.Error("512-unit tolerance changed no estimate; ablation vacuous")
	}
}

// arrestorSignals lists every signal of the single-node topology.
func arrestorSignals() []string {
	return arrestor.Topology().Signals()
}

// TestAblationFaultDuration probes the transient-vs-persistent fault
// dimension: PRES_S's median filter absorbs most transient sensor
// corruptions, but a stuck A/D register outlasting three sampling
// periods defeats it — the ADC -> InValue permeability must rise
// sharply under persistent faults.
func TestAblationFaultDuration(t *testing.T) {
	base := ablationConfig()
	base.Bits = nil
	// A saturated A/D reading: always far from the true pressure, and
	// idempotent, so it models a stuck register cleanly under
	// persistence.
	base.Models = []inject.ErrorModel{inject.Replace{Value: 0xFF00}}
	base.OnlyModule = arrestor.ModPresS

	transientRes, err := campaign.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	persistent := base
	persistent.FaultDurationMs = 200 // outlasts several 7-ms samples
	persistentRes, err := campaign.Run(persistent)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transientRes.PairBySignal(arrestor.ModPresS, arrestor.SigADC, arrestor.SigInValue)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := persistentRes.PairBySignal(arrestor.ModPresS, arrestor.SigADC, arrestor.SigInValue)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Estimate <= tr.Estimate {
		t.Errorf("persistent stuck-at permeability %v <= transient %v; median filter should only stop transients",
			pr.Estimate, tr.Estimate)
	}
	if pr.Estimate < 0.9 {
		t.Errorf("persistent stuck-at ADC->InValue = %v, want near 1 (filter defeated)", pr.Estimate)
	}
}

// TestFacadeAnalyses exercises the newer facade entry points.
func TestFacadeAnalyses(t *testing.T) {
	sys := propane.ExampleSystem()
	m := propane.NewMatrix(sys)
	for _, set := range []struct {
		mod, in, out string
		v            float64
	}{
		{"A", "extA", "a1", 0.8}, {"B", "a1", "b2", 0.6},
		{"C", "extC", "c1", 0.7}, {"D", "c1", "d1", 0.4},
		{"E", "b2", "sysout", 0.9}, {"E", "d1", "sysout", 0.5}, {"E", "extE", "sysout", 0.2},
	} {
		if err := m.SetBySignal(set.mod, set.in, set.out, set.v); err != nil {
			t.Fatal(err)
		}
	}
	sens, err := propane.PathSensitivities(m, "sysout")
	if err != nil || len(sens) != 10 {
		t.Errorf("PathSensitivities: %d, %v", len(sens), err)
	}
	total, paths, err := propane.OutputErrorProfile(m, "sysout", map[string]float64{"extA": 0.5})
	if err != nil || total <= 0 || len(paths) == 0 {
		t.Errorf("OutputErrorProfile: %v, %d, %v", total, len(paths), err)
	}
	crit, err := propane.InputCriticality(m, "sysout")
	if err != nil || len(crit) != 3 {
		t.Errorf("InputCriticality: %v, %v", crit, err)
	}
	collapsed, err := propane.Collapse(m, []string{"C", "D"}, "CD")
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if collapsed.System().TotalPairs() >= m.System().TotalPairs() {
		t.Error("collapse did not reduce pair count")
	}
	cfg, err := propane.ParseExperiment([]byte(`{
		"grid": {"masses": 1, "velocities": 1},
		"times_ms": [1000], "bits": [0],
		"horizon_ms": 6000, "direct_window_ms": 500
	}`))
	if err != nil || len(cfg.TestCases) != 1 {
		t.Errorf("ParseExperiment: %+v, %v", cfg.TestCases, err)
	}
	if _, err := propane.ParseExperiment([]byte(`{`)); err == nil {
		t.Error("ParseExperiment accepted garbage")
	}
}
