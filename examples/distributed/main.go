// The distributed example runs the analysis of the paper's *real*
// deployment (Section 7.1) — a master node computing the pressure set
// point and a slave node receiving it over a parity-protected link —
// on propane's distributed execution subsystem (internal/distrib): an
// HTTP coordinator decomposes the campaign into lease-bounded work
// units and a three-agent worker fleet executes them, streaming
// journal records back until the result assembles bit-identically to
// a single-node run. The fleet here is the in-process loopback
// harness, so the example runs offline on one machine while
// exercising the exact wire protocol a multi-machine fleet uses.
//
// The assembled matrix then demonstrates:
//
//   - propagation analysis on a genuinely distributed topology with
//     two system outputs (TOC2 on the master, TOC2_B on the slave);
//   - how a validated communication link acts as an error-containment
//     barrier: the frame->SetValue_B permeability is exactly zero, so
//     master-side errors reach the slave's drum only before the link
//     encoder, never through a corrupted frame;
//   - cross-node backtrack analysis: the slave output's tree crosses
//     the link back into the master's CALC chain.
package main

import (
	"fmt"
	"log"
	"os"

	"propane"
	"propane/internal/arrestor"
	"propane/internal/core"
	"propane/internal/distrib"
	"propane/internal/report"
	"propane/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distributed: ")

	dir, err := os.MkdirTemp("", "propane-distributed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Coordinator plus three workers, all in-process over loopback
	// HTTP. The campaign is the two-node master/slave instance from
	// the registry, split into six work units so the fleet has slack
	// to rebalance.
	fmt.Println("running the master/slave campaign on a coordinator + 3-worker loopback fleet...")
	rr, err := distrib.Loopback(distrib.Config{
		Instance: "dual",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    6,
	}, 3, distrib.WorkerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := rr.Result
	fmt.Printf("%d injection runs over %d input/output pairs, assembled from %d work units\n\n",
		res.Runs, len(res.Pairs), 6)

	// The containment barrier: the parity check drops every corrupted
	// frame.
	rx, err := res.PairBySignal(arrestor.ModComRX, arrestor.SigTxFrame, arrestor.SigSetValueB)
	if err != nil {
		log.Fatal(err)
	}
	tx, err := res.PairBySignal(arrestor.ModComTX, arrestor.SigSetValue, arrestor.SigTxFrame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link encoder   P^COM_TX(SetValue -> TXFRAME)   = %.3f\n", tx.Estimate)
	fmt.Printf("link barrier   P^COM_RX(TXFRAME -> SetValue_B) = %.3f  <- parity containment\n\n", rx.Estimate)

	// Module measures across both nodes.
	t2, err := propane.Table2(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)

	// Each system output gets its own backtrack analysis; the slave's
	// tree crosses the link into the master.
	for _, output := range res.Topology.SystemOutputs() {
		t4, err := propane.Table4(res.Matrix, output, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t4)
	}

	// Where should the slave's drum be hardened first? The sensitivity
	// ranking answers per output.
	sens, err := report.SensitivityTable(res.Matrix, arrestor.SigTOC2B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sens)

	// Collapsing the whole master node shows the hierarchy feature of
	// Section 3: the slave sees the master as one component with
	// derived permeabilities.
	master := []string{
		arrestor.ModClock, arrestor.ModDistS, arrestor.ModPresS,
		arrestor.ModCalc, arrestor.ModVReg, arrestor.ModPresA, arrestor.ModComTX,
	}
	collapsed, err := core.Collapse(res.Matrix, master, "MASTER")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("master node collapsed into one composite module:")
	t2c, err := propane.Table2(collapsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2c)
}
