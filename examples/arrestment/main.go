// The arrestment example reproduces the paper's experimental study end
// to end at reduced scale: it runs a SWIFI bit-flip campaign against
// the simulated aircraft-arrestment controller, estimates the error
// permeability of all 25 input/output pairs via Golden Run Comparison,
// and derives the module and signal measures (Tables 1-3), the ranked
// propagation paths to TOC2 (Table 4), and the structural observations
// OB1/OB2.
//
// Pass -paper to run the full 52 000-run campaign of the paper
// (16 bits × 10 instants × 25 test cases per input signal).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"propane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arrestment: ")
	paperScale := flag.Bool("paper", false, "run the full paper-scale campaign")
	flag.Parse()

	cfg := propane.ReducedCampaign()
	if *paperScale {
		cfg = propane.PaperCampaign()
	}
	perInput := len(cfg.Bits) * len(cfg.Times) * len(cfg.TestCases)
	fmt.Printf("campaign: %d test cases, %d injection instants, %d bits -> %d injections per input signal\n",
		len(cfg.TestCases), len(cfg.Times), len(cfg.Bits), perInput)

	start := time.Now()
	res, err := propane.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d injection runs in %v\n\n", res.Runs, time.Since(start).Round(time.Millisecond))

	// Table 1: the estimated permeability of every input/output pair.
	fmt.Println(propane.Table1(res))

	// Table 2: module measures. Note OB1 — DIST_S and PRES_S have no
	// exposure values because they only receive system inputs.
	t2, err := propane.Table2(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)

	// Table 3: signal exposures — SetValue ranks highest, InValue is
	// near the bottom (the OB3 cost-effectiveness point).
	t3, err := propane.Table3(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)

	// Table 4: the non-zero propagation paths to the system output.
	t4, err := propane.Table4(res.Matrix, "TOC2", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t4)

	// OB2: every permeability into the stopped output is zero — the
	// persistence requirement of the stop detector filters transients.
	stopped := 0.0
	for _, ps := range res.Pairs {
		if ps.OutputSignal == "stopped" {
			stopped += ps.Estimate
		}
	}
	fmt.Printf("OB2 check: sum of permeabilities into 'stopped' = %.3f (paper: 0.000)\n", stopped)

	// The uniform-propagation hypothesis of [12] is refuted by any
	// location with a propagation fraction strictly between 0 and 1.
	nonUniform := res.NonUniformLocations(0.05, 0.95)
	fmt.Printf("uniform-propagation check: %d of %d locations propagate non-uniformly\n",
		len(nonUniform), len(res.Locations))
	for _, loc := range nonUniform {
		fmt.Printf("  %-8s %-12s fraction=%.3f\n", loc.Module, loc.Signal, loc.Fraction)
	}
}
