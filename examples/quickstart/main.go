// The quickstart example walks through the analytic half of the
// framework on the paper's own Fig. 2 example system: build a
// topology, assign error permeability values, compute every measure,
// build the backtrack tree of Fig. 4 and the trace tree of Fig. 5,
// and rank the propagation paths.
package main

import (
	"fmt"
	"log"

	"propane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Build the system of Fig. 2: five modules A..E, external
	//    input at A, C and E, system output at E, and a local feedback
	//    loop inside B. (propane.ExampleSystem() returns the same
	//    topology ready-made.)
	sys, err := propane.NewSystem("fig2").
		AddModule("A", []string{"extA"}, []string{"a1"}).
		AddModule("B", []string{"a1", "bfb"}, []string{"bfb", "b2"}).
		AddModule("C", []string{"extC"}, []string{"c1"}).
		AddModule("D", []string{"c1"}, []string{"d1"}).
		AddModule("E", []string{"b2", "d1", "extE"}, []string{"sysout"}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system %s: inputs %v, outputs %v, %d I/O pairs\n\n",
		sys.Name(), sys.SystemInputs(), sys.SystemOutputs(), sys.TotalPairs())

	// 2. Assign error permeability values (Eq. 1). In a real study
	//    these come from fault injection (see the arrestment example);
	//    here they are picked by hand.
	m := propane.NewMatrix(sys)
	for _, p := range []struct {
		mod, in, out string
		v            float64
	}{
		{"A", "extA", "a1", 0.8},
		{"B", "a1", "bfb", 0.5}, {"B", "a1", "b2", 0.6},
		{"B", "bfb", "bfb", 0.9}, {"B", "bfb", "b2", 0.3},
		{"C", "extC", "c1", 0.7},
		{"D", "c1", "d1", 0.4},
		{"E", "b2", "sysout", 0.9}, {"E", "d1", "sysout", 0.5}, {"E", "extE", "sysout", 0.2},
	} {
		if err := m.SetBySignal(p.mod, p.in, p.out, p.v); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Module measures (Eqs. 2-5) — the paper's Table 2.
	t2, err := propane.Table2(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)

	// 4. Signal error exposures (Eq. 6) — the paper's Table 3.
	t3, err := propane.Table3(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)

	// 5. The backtrack tree of the system output (Fig. 4) and its
	//    ranked propagation paths (Table 4). Note the feedback leaf:
	//    the loop inside B is followed exactly once.
	t4, err := propane.Table4(m, "sysout", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t4)

	// 6. Input error tracing (Fig. 5): where do errors on extA go?
	tree, err := propane.TraceTree(m, "extA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace tree for system input extA:")
	for _, p := range tree.RankedPaths() {
		fmt.Printf("  w=%.3f  %s\n", p.Weight(), p)
	}
	fmt.Println()

	// 7. Placement advice (Section 5).
	adv, err := propane.Advise(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adv.Summary())
	fmt.Println()

	// 8. Adjusted probabilities P' (Section 4.2): weight the paths by
	//    assumed error rates on the external sources.
	total, weighted, err := propane.OutputErrorProfile(m, "sysout", map[string]float64{
		"extA": 0.10, "extC": 0.02, "extE": 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjusted exposure index of sysout: %.4f\n", total)
	for _, wp := range weighted {
		fmt.Printf("  P'=%.4f  %s\n", wp.Adjusted, wp.Path)
	}
	fmt.Println()

	// 9. Which external source threatens the output most?
	crit, err := propane.InputCriticality(m, "sysout")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input criticality (unit error probability):")
	for _, r := range crit {
		fmt.Printf("  %-6s %.3f\n", r.Signal, r.Score)
	}
}
