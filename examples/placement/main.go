// The placement example reproduces the paper's observations OB3-OB6:
// it runs a fault-injection campaign, derives the Section 5 placement
// advice from the estimated permeability matrix, and then *evaluates*
// competing EDM placements against the same campaign — demonstrating
// that a mechanism with a lower detection probability at a
// high-exposure signal (SetValue) covers far more system failures
// than a perfect mechanism at a low-exposure signal (InValue).
package main

import (
	"fmt"
	"log"

	"propane"
	"propane/internal/arrestor"
	"propane/internal/core"
	"propane/internal/edm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("placement: ")

	cfg := propane.ReducedCampaign()

	// Evaluate three candidate EDM placements over the campaign:
	//   - a perfect detector on InValue (what OB3 warns against),
	//   - a mediocre detector on SetValue (what OB3 recommends),
	//   - a mediocre detector on OutValue.
	placements := []edm.Placement{
		{Signal: arrestor.SigInValue, Efficiency: 1.00},
		{Signal: arrestor.SigSetValue, Efficiency: 0.70},
		{Signal: arrestor.SigOutValue, Efficiency: 0.70},
	}
	report, err := edm.Evaluate(cfg, placements)
	if err != nil {
		log.Fatal(err)
	}
	res := report.CampaignResult

	// First: what does the analysis framework recommend?
	adv, err := propane.Advise(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 5 placement advice derived from the measured matrix:")
	fmt.Print(adv.Summary())
	fmt.Println()

	// Then: measured detection coverage of the candidate placements.
	fmt.Println("measured EDM coverage over the campaign (OB3):")
	fmt.Printf("  %-28s %9s %9s %9s %9s\n", "placement", "failures", "exposed", "detected", "coverage")
	for _, c := range report.Coverages {
		fmt.Printf("  %-28s %9d %9d %9d %8.1f%%\n",
			c.Placement, c.SystemFailures, c.Exposed, c.Detected, 100*c.FailureCoverage())
	}
	fmt.Println()
	fmt.Println("OB3: the weaker detector at the high-exposure signal wins; detection")
	fmt.Println("capability matters less than being where errors actually pass.")
	fmt.Println()

	// OB5: recovery potential per signal — the fraction of system
	// failures in which the signal carried the error before the
	// output failed. SetValue and OutValue lie on every path.
	fmt.Println("ERM potential per signal (OB5):")
	for _, e := range report.ERM {
		fmt.Printf("  %-12s %6.1f%%  (%d of %d failures)\n",
			e.Signal, 100*e.Potential, e.Deviated, e.Failures)
	}
	fmt.Println()

	// OB6: modules receiving system inputs form barriers against
	// external errors.
	fmt.Printf("OB6: barrier modules (receive external data sources): %v\n", adv.BarrierModules)
	fmt.Println()

	// Combination selection (the related-work [18] idea): pick the
	// best set of three mechanisms by joint coverage per unit cost —
	// overlapping mechanisms are penalised automatically.
	picks, err := edm.Optimize(propane.ReducedCampaign(), []edm.Candidate{
		{Signal: arrestor.SigSetValue, Efficiency: 0.70, Cost: 1},
		{Signal: arrestor.SigOutValue, Efficiency: 0.70, Cost: 1},
		{Signal: arrestor.SigInValue, Efficiency: 1.00, Cost: 1},
		{Signal: arrestor.SigPulscnt, Efficiency: 0.80, Cost: 1},
		{Signal: arrestor.SigI, Efficiency: 0.90, Cost: 2},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimised EDM combination (greedy joint coverage per cost, cf. [18]):")
	fmt.Print(edm.FormatSelections(picks))
	fmt.Println()

	// OB5, measured: deploy an idealised recovery mechanism per signal
	// and count the system failures it actually averts.
	recovery, err := edm.RecoveryStudy(propane.ReducedCampaign(), []string{
		arrestor.SigOutValue, arrestor.SigSetValue, arrestor.SigInValue,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured ERM effect (idealised recovery, one-tick latency):")
	fmt.Print(edm.FormatRecovery(recovery))
	fmt.Println()

	// What would a containment wrapper around CALC buy (Section 4.1,
	// [17])? Halve all of CALC's permeabilities and compare the total
	// propagation weight toward the system output.
	effects, err := core.EvaluateWrapper(res.Matrix, arrestor.ModCalc, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range effects {
		fmt.Printf("wrapper(%s, ×%.1f): Σ path weight toward %s drops %.3f -> %.3f (-%.1f%%)\n",
			e.Module, e.Factor, e.Output, e.Before, e.After, 100*e.Reduction())
	}
}
