// The automotive example applies the framework to the second built-in
// target: an anti-lock wheel-slip brake controller — exactly the
// "consumer-based cost-sensitive systems, such as cars" the paper's
// introduction motivates as the domain where propagation analysis
// guides scarce dependability resources. It runs a bit-flip campaign
// over panic-stop scenarios, derives the measures, and lets the
// placement advisor pick EDM/ERM locations for the controller.
package main

import (
	"fmt"
	"log"

	"propane"
	"propane/internal/autobrake"
	"propane/internal/campaign"
	"propane/internal/report"
	"propane/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("automotive: ")

	cases, err := autobrake.Grid(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := campaign.Config{
		Custom:         autobrake.Target(autobrake.DefaultConfig()),
		TestCases:      cases,
		Times:          []sim.Millis{500, 1000, 1500, 2000, 2500},
		Bits:           []uint{0, 3, 6, 9, 12, 15},
		HorizonMs:      3500,
		DirectWindowMs: 300,
	}
	fmt.Printf("panic-stop campaign: %d cases × %d instants × %d bits per input signal\n",
		len(cfg.TestCases), len(cfg.Times), len(cfg.Bits))
	res, err := campaign.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d injection runs over the %d pairs of the wheel-slip controller\n\n",
		res.Runs, len(res.Pairs))

	fmt.Println(report.Table1(res))
	t2, err := propane.Table2(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)
	t3, err := propane.Table3(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)
	t4, err := propane.Table4(res.Matrix, autobrake.SigPWM, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t4)

	adv, err := propane.Advise(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adv.Summary())

	// Hardening priorities: which pair should the team reduce first?
	sens, err := report.SensitivityTable(res.Matrix, autobrake.SigPWM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(sens)
}
