#!/usr/bin/env bash
# scripts/bench.sh TAG [extra go-test args...]
#
# Runs the benchmark suite with -benchmem and writes the results as
# BENCH_<TAG>.json at the repository root, so the performance
# trajectory of the project is recorded in version control and can be
# diffed across PRs (e.g. BENCH_seed.json vs BENCH_pr3.json).
#
# Three passes run:
#   1. the regular suite (paper-scale campaigns skipped) at
#      PROPANE_BENCHTIME per benchmark (default 200ms) for stable
#      per-op numbers;
#   2. BenchmarkPaperScaleCampaign alone, one iteration
#      (-benchtime=1x) with PROPANE_PAPER_BENCH=1 — the wall-clock
#      yardstick of the checkpoint fast-forward work;
#   3. BenchmarkDistributedPaperCampaign (coordinator + 1/2/4
#      loopback workers over real HTTP), one iteration each — the
#      scale-out yardstick against pass 2's single-node number;
#   4. the adaptive pair: BenchmarkCampaignAdaptive (paper campaign
#      under sequential CI-driven sampling; the ratio against pass 2
#      is the adaptive scheduler's headline saving) and
#      BenchmarkDistributedPaperCampaignAdaptive (the same through
#      coordinator + 1/4 loopback workers with carve-on-demand).
# Passes 2-4 are skipped when PROPANE_SKIP_PAPER_BENCH=1.
#
# Pass 1 includes the DSL-vs-handwritten arrestor pair
# (BenchmarkArrestorCampaignHandwritten vs BenchmarkArrestorCampaignDSL,
# identical 52-run campaigns; the delta is the declarative target's
# generic dispatch overhead), BenchmarkSynthCompile (the document
# parse+compile pipeline alone), and BenchmarkServiceMultiCampaign
# (1 and 2 concurrent campaigns through the multi-tenant service over
# a shared 3-worker fleet, cold vs warm persistent memo store — the
# cold/warm delta is what the cross-campaign store buys).
#
# The JSON schema is one object:
#   {"tag": ..., "go": ..., "goos": ..., "goarch": ..., "cpu": ...,
#    "benchmarks": [{"name", "runs", "ns_op", "b_op", "allocs_op"}]}
#
# After writing BENCH_<TAG>.json, the run is diffed against the
# committed BENCH_seed.json and BENCH_pr4.json baselines (when
# present): one line per shared benchmark with the old and new ns/op
# and the speedup ratio (old/new, so >1.00x means this run is faster).
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: scripts/bench.sh TAG [extra go-test args...]" >&2
    exit 2
fi

TAG="$1"
shift
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/BENCH_${TAG}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

BENCHTIME="${PROPANE_BENCHTIME:-200ms}"

cd "$ROOT"
echo "bench.sh: regular suite (-benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" "$@" . | tee -a "$RAW" >&2

if [ "${PROPANE_SKIP_PAPER_BENCH:-0}" != "1" ]; then
    echo "bench.sh: paper-scale campaign (-benchtime=1x)..." >&2
    PROPANE_PAPER_BENCH=1 go test -run '^$' -bench 'BenchmarkPaperScaleCampaign$' \
        -benchmem -benchtime=1x -timeout 60m "$@" . | tee -a "$RAW" >&2

    echo "bench.sh: distributed paper campaign, 1/2/4 loopback workers (-benchtime=1x)..." >&2
    PROPANE_PAPER_BENCH=1 go test -run '^$' -bench 'BenchmarkDistributedPaperCampaign$' \
        -benchmem -benchtime=1x -timeout 60m "$@" . | tee -a "$RAW" >&2

    echo "bench.sh: adaptive paper campaign, single node + 1/4 loopback workers (-benchtime=1x)..." >&2
    PROPANE_PAPER_BENCH=1 go test -run '^$' \
        -bench 'BenchmarkCampaignAdaptive$|BenchmarkDistributedPaperCampaignAdaptive' \
        -benchmem -benchtime=1x -timeout 60m "$@" . | tee -a "$RAW" >&2
fi

awk -v tag="$TAG" '
    /^goos: /   { goos = $2 }
    /^goarch: / { goarch = $2 }
    /^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
    /^Benchmark/ && / ns\/op/ {
        name = $1
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
        runs = $2
        ns = ""; b = "0"; allocs = "0"
        for (i = 3; i < NF; i++) {
            if ($(i + 1) == "ns/op") ns = $i
            if ($(i + 1) == "B/op") b = $i
            if ($(i + 1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (n > 0) rows = rows ",\n"
        rows = rows sprintf("    {\"name\": \"%s\", \"runs\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}",
                            name, runs, ns, b, allocs)
        n++
    }
    END {
        printf "{\n"
        printf "  \"tag\": \"%s\",\n", tag
        printf "  \"goos\": \"%s\",\n", goos
        printf "  \"goarch\": \"%s\",\n", goarch
        printf "  \"cpu\": \"%s\",\n", cpu
        printf "  \"benchmarks\": [\n%s\n  ]\n", rows
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "bench.sh: wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2

# diff_against BASELINE.json — per-benchmark ns/op comparison against a
# committed baseline. Relies on the one-benchmark-per-line layout this
# script itself emits, so it needs no JSON tooling.
diff_against() {
    local base="$1"
    [ -f "$base" ] || return 0
    echo "" >&2
    echo "bench.sh: $(basename "$OUT") vs $(basename "$base") (ratio = old/new, >1.00x is faster):" >&2
    printf '  %-50s %15s %15s %9s\n' "benchmark" "old ns/op" "new ns/op" "speedup" >&2
    awk -v newf="$OUT" -v oldf="$base" '
        function load(f, arr,   line, name, ns) {
            while ((getline line < f) > 0) {
                if (line !~ /"name"/) continue
                match(line, /"name": "[^"]*"/)
                name = substr(line, RSTART + 9, RLENGTH - 10)
                match(line, /"ns_op": [0-9.e+]+/)
                ns = substr(line, RSTART + 9, RLENGTH - 9)
                arr[name] = ns + 0
            }
            close(f)
        }
        BEGIN {
            load(oldf, old); load(newf, new)
            for (name in new)
                if (name in old && old[name] > 0)
                    printf "  %-50s %15.0f %15.0f %8.2fx\n", name, old[name], new[name], old[name] / new[name]
        }
    ' | sort >&2
}

diff_against "$ROOT/BENCH_seed.json"
diff_against "$ROOT/BENCH_pr4.json"
