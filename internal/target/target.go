// Package target defines the abstraction between the campaign engine
// and the simulated systems it injects faults into. A target packages
// a static module/signal topology (the paper's software decomposition,
// Section 3) together with a constructor for fresh, fully wired
// simulation instances; the campaign engine builds one instance per
// golden run and per injection run, so runs stay independent and
// deterministic. internal/arrestor (the paper's aircraft-arrestment
// system) and internal/autobrake (the wheel-slip controller) both
// provide targets.
package target

import (
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
)

// Instance is the wired-up view of one target simulation that
// instrumentation attaches to: trace recorders and comparators read
// the bus, monitors and recovery hooks register with the kernel.
type Instance interface {
	// Bus returns the signal bus carrying every topology signal.
	Bus() *sim.Bus
	// Kernel returns the scheduling kernel driving the modules.
	Kernel() *sim.Kernel
}

// RunnableInstance is an Instance that can be driven to a horizon.
type RunnableInstance interface {
	Instance
	// Run advances the simulation to the horizon in milliseconds.
	Run(horizon sim.Millis)
}

// Checkpointable is a RunnableInstance whose complete dynamic state —
// kernel time, step-budget accounting, bus signals, and all hidden
// module/glue/plant state — can be captured at a tick boundary and
// restored into a fresh, identically constructed instance. The
// campaign engine uses it to fast-forward injection runs: restore a
// snapshot taken just before the injection instant and simulate only
// the suffix. Targets that cannot guarantee a complete capture simply
// do not implement the interface and the engine falls back to full
// replay from t=0.
type Checkpointable interface {
	RunnableInstance
	// Checkpoint captures the full dynamic state. Call it only at a
	// tick boundary (between Run calls).
	Checkpoint() (*sim.Snapshot, error)
	// Restore overwrites the full dynamic state from a snapshot
	// captured on an identically constructed instance.
	Restore(snap *sim.Snapshot) error
}

// Target is a named target system: its topology and an instance
// constructor. Both fields must be non-nil.
type Target struct {
	// Name identifies the target (e.g. "autobrake").
	Name string
	// Topology returns the target's module/signal decomposition.
	Topology func() *model.System
	// New builds a fresh instance for one test case. hook, if
	// non-nil, is invoked on every instrumented module input read —
	// the injection/logging trap; pass nil for uninstrumented runs.
	New func(tc physics.TestCase, hook sim.ReadHook) (RunnableInstance, error)
}
