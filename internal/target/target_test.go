package target_test

import (
	"testing"

	"propane/internal/arrestor"
	"propane/internal/autobrake"
	"propane/internal/physics"
	"propane/internal/target"
)

// Both built-in targets must satisfy RunnableInstance so the campaign
// engine can drive them interchangeably.
var (
	_ target.RunnableInstance = (*arrestor.Instance)(nil)
	_ target.RunnableInstance = (*autobrake.Instance)(nil)
)

func TestAutobrakeTargetRuns(t *testing.T) {
	tgt := autobrake.Target(autobrake.DefaultConfig())
	if tgt.Name == "" || tgt.Topology == nil || tgt.New == nil {
		t.Fatalf("incomplete target: %+v", tgt)
	}
	inst, err := tgt.New(physics.TestCase{MassKg: 1500, VelocityMS: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(10)
	if got := len(inst.Bus().Names()); got == 0 {
		t.Error("instance bus has no signals")
	}
}
