// Package expfile parses experiment-description files — PROPANE is
// driven by experiment descriptions, and this package provides the
// equivalent for our campaign engine: a JSON document describing the
// target, the workload grid, the injection instants and the error
// models, decoded into a ready-to-run campaign.Config.
//
// Example:
//
//	{
//	  "target": "arrestor",
//	  "grid": {"masses": 5, "velocities": 5},
//	  "times_ms": [500, 1000, 1500],
//	  "bits": [0, 5, 10, 15],
//	  "horizon_ms": 6000,
//	  "direct_window_ms": 500
//	}
//
// Targets: "arrestor" (the paper's single-node system),
// "arrestor-dual" (the master/slave configuration) and "autobrake"
// (the wheel-slip controller). Error models: either "bits" (bit-flip
// positions) or "models" entries of the form "bitflip:N",
// "stuckat0:N", "stuckat1:N", "replace:V" and "offset:D".
package expfile

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"propane/internal/arrestor"
	"propane/internal/autobrake"
	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/trace"
)

// document is the on-disk schema.
type document struct {
	Target string `json:"target"`
	Grid   *struct {
		Masses     int      `json:"masses"`
		Velocities int      `json:"velocities"`
		MassLo     *float64 `json:"mass_lo,omitempty"`
		MassHi     *float64 `json:"mass_hi,omitempty"`
		VelLo      *float64 `json:"vel_lo,omitempty"`
		VelHi      *float64 `json:"vel_hi,omitempty"`
	} `json:"grid,omitempty"`
	Cases []struct {
		MassKg     float64 `json:"mass_kg"`
		VelocityMS float64 `json:"velocity_ms"`
	} `json:"cases,omitempty"`
	TimesMs        []int64           `json:"times_ms"`
	Bits           []uint            `json:"bits,omitempty"`
	Models         []string          `json:"models,omitempty"`
	HorizonMs      int64             `json:"horizon_ms"`
	DirectWindowMs int64             `json:"direct_window_ms"`
	Workers        int               `json:"workers,omitempty"`
	OnlyModule     string            `json:"only_module,omitempty"`
	FaultDuration  int64             `json:"fault_duration_ms,omitempty"`
	Tolerances     map[string]uint16 `json:"tolerances,omitempty"`
}

// Parse decodes an experiment description into a campaign
// configuration; the result is validated.
func Parse(data []byte) (campaign.Config, error) {
	var doc document
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return campaign.Config{}, fmt.Errorf("expfile: %w", err)
	}

	cfg := campaign.Config{
		Arrestor:        arrestor.DefaultConfig(),
		HorizonMs:       sim.Millis(doc.HorizonMs),
		DirectWindowMs:  sim.Millis(doc.DirectWindowMs),
		Workers:         doc.Workers,
		OnlyModule:      doc.OnlyModule,
		FaultDurationMs: sim.Millis(doc.FaultDuration),
	}
	if len(doc.Tolerances) > 0 {
		cfg.Tolerances = trace.Tolerances(doc.Tolerances)
	}

	defaultGrid := func() (lo, hi, vlo, vhi float64) { return 8000, 20000, 40, 80 }
	switch doc.Target {
	case "", "arrestor":
	case "arrestor-dual":
		cfg.Dual = true
	case "autobrake":
		cfg.Custom = autobrake.Target(autobrake.DefaultConfig())
		defaultGrid = func() (lo, hi, vlo, vhi float64) { return 900, 2100, 18, 38 }
	default:
		return campaign.Config{}, fmt.Errorf("expfile: unknown target %q", doc.Target)
	}

	switch {
	case len(doc.Cases) > 0:
		for _, c := range doc.Cases {
			cfg.TestCases = append(cfg.TestCases, physics.TestCase{MassKg: c.MassKg, VelocityMS: c.VelocityMS})
		}
	case doc.Grid != nil:
		lo, hi, vlo, vhi := defaultGrid()
		if doc.Grid.MassLo != nil {
			lo = *doc.Grid.MassLo
		}
		if doc.Grid.MassHi != nil {
			hi = *doc.Grid.MassHi
		}
		if doc.Grid.VelLo != nil {
			vlo = *doc.Grid.VelLo
		}
		if doc.Grid.VelHi != nil {
			vhi = *doc.Grid.VelHi
		}
		cases, err := physics.Grid(doc.Grid.Masses, doc.Grid.Velocities, lo, hi, vlo, vhi)
		if err != nil {
			return campaign.Config{}, fmt.Errorf("expfile: %w", err)
		}
		cfg.TestCases = cases
	default:
		return campaign.Config{}, errors.New("expfile: need either grid or cases")
	}

	for _, t := range doc.TimesMs {
		cfg.Times = append(cfg.Times, sim.Millis(t))
	}
	cfg.Bits = doc.Bits
	for _, spec := range doc.Models {
		m, err := parseModel(spec)
		if err != nil {
			return campaign.Config{}, err
		}
		cfg.Models = append(cfg.Models, m)
	}

	if err := cfg.Validate(); err != nil {
		return campaign.Config{}, err
	}
	return cfg, nil
}

// parseModel decodes "bitflip:N", "stuckat0:N", "stuckat1:N",
// "replace:V" and "offset:D" specifications — the shared syntax of
// inject.ParseSpec, which campaign journals reuse.
func parseModel(spec string) (inject.ErrorModel, error) {
	m, err := inject.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("expfile: %w", err)
	}
	return m, nil
}
