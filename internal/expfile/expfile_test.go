package expfile

import (
	"testing"

	"propane/internal/inject"
)

func TestParseGridArrestor(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"target": "arrestor",
		"grid": {"masses": 2, "velocities": 3},
		"times_ms": [500, 1500],
		"bits": [0, 15],
		"horizon_ms": 6000,
		"direct_window_ms": 500,
		"workers": 2
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.TestCases) != 6 {
		t.Errorf("cases = %d, want 6", len(cfg.TestCases))
	}
	if cfg.TestCases[0].MassKg != 8000 || cfg.TestCases[0].VelocityMS != 40 {
		t.Errorf("default grid bounds wrong: %v", cfg.TestCases[0])
	}
	if len(cfg.Times) != 2 || cfg.Times[1] != 1500 {
		t.Errorf("times = %v", cfg.Times)
	}
	if cfg.Dual || cfg.Custom != nil {
		t.Error("plain arrestor config got dual/custom target")
	}
	if cfg.Workers != 2 || cfg.HorizonMs != 6000 || cfg.DirectWindowMs != 500 {
		t.Errorf("scalars wrong: %+v", cfg)
	}
}

func TestParseExplicitCasesAndDual(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"target": "arrestor-dual",
		"cases": [{"mass_kg": 9000, "velocity_ms": 55}],
		"times_ms": [1000],
		"bits": [3],
		"horizon_ms": 4000,
		"direct_window_ms": 300
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !cfg.Dual {
		t.Error("dual target not selected")
	}
	if len(cfg.TestCases) != 1 || cfg.TestCases[0].MassKg != 9000 {
		t.Errorf("cases = %v", cfg.TestCases)
	}
}

func TestParseAutobrakeWithModels(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"target": "autobrake",
		"grid": {"masses": 1, "velocities": 2},
		"times_ms": [800],
		"models": ["bitflip:3", "stuckat1:7", "stuckat0:2", "replace:65535", "offset:-12"],
		"horizon_ms": 3500,
		"direct_window_ms": 300
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Custom == nil || cfg.Custom.Name != "autobrake" {
		t.Error("autobrake target not selected")
	}
	// Autobrake grid defaults (900-2100 kg, 18-38 m/s).
	if cfg.TestCases[0].MassKg != 900 || cfg.TestCases[0].VelocityMS != 18 {
		t.Errorf("autobrake grid defaults wrong: %v", cfg.TestCases[0])
	}
	if len(cfg.Models) != 5 {
		t.Fatalf("models = %d, want 5", len(cfg.Models))
	}
	if _, ok := cfg.Models[0].(inject.BitFlip); !ok {
		t.Errorf("model 0 = %T, want BitFlip", cfg.Models[0])
	}
	if sa, ok := cfg.Models[1].(inject.StuckAt); !ok || !sa.One || sa.Bit != 7 {
		t.Errorf("model 1 = %#v, want stuckat1:7", cfg.Models[1])
	}
	if off, ok := cfg.Models[4].(inject.Offset); !ok || off.Delta != -12 {
		t.Errorf("model 4 = %#v, want offset:-12", cfg.Models[4])
	}
}

func TestParseGridOverrides(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"grid": {"masses": 2, "velocities": 2, "mass_lo": 10000, "mass_hi": 12000, "vel_lo": 50, "vel_hi": 70},
		"times_ms": [1000],
		"bits": [1],
		"horizon_ms": 6000,
		"direct_window_ms": 500
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.TestCases[0].MassKg != 10000 || cfg.TestCases[len(cfg.TestCases)-1].VelocityMS != 70 {
		t.Errorf("grid overrides ignored: %v", cfg.TestCases)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"invalid json", `{`},
		{"unknown field", `{"bogus": 1, "grid": {"masses":1,"velocities":1}, "times_ms":[1], "bits":[0], "horizon_ms": 100, "direct_window_ms": 10}`},
		{"unknown target", `{"target":"toaster","grid":{"masses":1,"velocities":1},"times_ms":[1],"bits":[0],"horizon_ms":100,"direct_window_ms":10}`},
		{"no workload", `{"times_ms":[1],"bits":[0],"horizon_ms":100,"direct_window_ms":10}`},
		{"no errors", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"horizon_ms":100,"direct_window_ms":10}`},
		{"bad grid", `{"grid":{"masses":0,"velocities":1},"times_ms":[1],"bits":[0],"horizon_ms":100,"direct_window_ms":10}`},
		{"time beyond horizon", `{"grid":{"masses":1,"velocities":1},"times_ms":[200],"bits":[0],"horizon_ms":100,"direct_window_ms":10}`},
		{"malformed model", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["bitflip"],"horizon_ms":100,"direct_window_ms":10}`},
		{"bad model arg", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["bitflip:xx"],"horizon_ms":100,"direct_window_ms":10}`},
		{"bit out of range", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["bitflip:16"],"horizon_ms":100,"direct_window_ms":10}`},
		{"stuck bit range", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["stuckat1:16"],"horizon_ms":100,"direct_window_ms":10}`},
		{"replace range", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["replace:70000"],"horizon_ms":100,"direct_window_ms":10}`},
		{"unknown model kind", `{"grid":{"masses":1,"velocities":1},"times_ms":[1],"models":["zap:1"],"horizon_ms":100,"direct_window_ms":10}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.doc)); err == nil {
				t.Error("Parse accepted invalid document")
			}
		})
	}
}

func TestParseFaultDurationAndTolerances(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"grid": {"masses": 1, "velocities": 1},
		"times_ms": [1000],
		"models": ["replace:65280"],
		"horizon_ms": 6000,
		"direct_window_ms": 500,
		"fault_duration_ms": 200,
		"tolerances": {"SetValue": 64, "OutValue": 128}
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.FaultDurationMs != 200 {
		t.Errorf("FaultDurationMs = %d, want 200", cfg.FaultDurationMs)
	}
	if cfg.Tolerances["SetValue"] != 64 || cfg.Tolerances["OutValue"] != 128 {
		t.Errorf("Tolerances = %v", cfg.Tolerances)
	}
	if _, err := Parse([]byte(`{
		"grid": {"masses": 1, "velocities": 1},
		"times_ms": [1000], "bits": [0],
		"horizon_ms": 6000, "direct_window_ms": 500,
		"fault_duration_ms": -1
	}`)); err == nil {
		t.Error("negative fault duration accepted")
	}
}
