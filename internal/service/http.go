package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"propane/internal/distrib"
	"propane/internal/runner"
)

// Service API paths (the worker protocol paths are distrib's).
const (
	PathCampaigns = "/v1/campaigns"
	PathStatus    = "/status"
	PathMetrics   = "/metrics"
)

// maxSubmitBody bounds a submission (the inline topology document is
// the only big part; real documents are kilobytes).
const maxSubmitBody = 4 << 20

// Event is one /events frame: the campaign's state, the live fleet
// metrics while it executes, and the final assembled metrics once
// done.
type Event struct {
	Campaign CampaignInfo     `json:"campaign"`
	Metrics  *distrib.Metrics `json:"metrics,omitempty"`
	Final    *runner.Metrics  `json:"final,omitempty"`
}

// TenantStatus is one tenant's footprint in Status.
type TenantStatus struct {
	Queued       int   `json:"queued"`
	Active       int   `json:"active"`
	JobsInFlight int   `json:"jobs_in_flight"`
	Weight       int   `json:"weight"`
	GrantedJobs  int64 `json:"granted_jobs"`
}

// Status is the service-level /status document.
type Status struct {
	QueueDepth int                     `json:"queue_depth"`
	Active     int                     `json:"active"`
	Done       int                     `json:"done"`
	Failed     int                     `json:"failed"`
	Crashed    bool                    `json:"crashed,omitempty"`
	Campaigns  []CampaignInfo          `json:"campaigns"`
	Tenants    map[string]TenantStatus `json:"tenants"`
}

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// gate answers 503 for a crashed service (the chaos "dead process"
// state) and reports whether the request may proceed.
func (s *Service) gate(w http.ResponseWriter) bool {
	s.mu.Lock()
	dead := s.crashed
	s.mu.Unlock()
	if dead {
		httpError(w, http.StatusServiceUnavailable, "service_crashed",
			"service crashed at a chaos crash point; awaiting resume")
		return false
	}
	return true
}

// readBody reads a bounded body and verifies its content digest when
// the worker client attached one (wire-damage rejection, mirroring
// the coordinator's own POST hardening).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, distrib.CodeBodyDigest, "reading request body: %v", err)
		return nil, false
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "", "request body exceeds %d bytes", limit)
		return nil, false
	}
	if want := r.Header.Get(distrib.HeaderBodyDigest); want != "" {
		sum := sha256.Sum256(body)
		if got := hex.EncodeToString(sum[:]); got != want {
			httpError(w, http.StatusBadRequest, distrib.CodeBodyDigest,
				"request body digest %s does not match header %s — body damaged in flight", got, want)
			return nil, false
		}
	}
	return body, true
}

// Handler returns the service's HTTP API: the tenant-facing campaign
// endpoints plus the fleet-facing worker protocol.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathCampaigns, func(w http.ResponseWriter, r *http.Request) {
		if !s.gate(w) {
			return
		}
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			writeJSON(w, s.Campaigns())
		default:
			httpError(w, http.StatusMethodNotAllowed, "", "POST or GET only")
		}
	})
	mux.HandleFunc(PathCampaigns+"/", s.handleCampaignSubtree)
	mux.HandleFunc(distrib.PathLease, s.handleLease)
	mux.HandleFunc(distrib.PathRecords, s.forward)
	mux.HandleFunc(distrib.PathHeartbeat, s.forward)
	mux.HandleFunc(distrib.PathComplete, s.forward)
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	})
	mux.HandleFunc(PathMetrics, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Metrics())
	})
	return mux
}

// Server wraps the API in the fabric's hardened HTTP server. The
// /events stream bypasses the handler deadline — it is the one
// legitimately long-lived response — while every other endpoint keeps
// the coordinator-grade timeout.
func (s *Service) Server() *http.Server {
	h := s.Handler()
	srv := distrib.NewServer(h)
	wrapped := srv.Handler
	srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, PathCampaigns+"/") && strings.HasSuffix(r.URL.Path, "/events") {
			h.ServeHTTP(w, r)
			return
		}
		wrapped.ServeHTTP(w, r)
	})
	return srv
}

// handleSubmit admits one campaign submission.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxSubmitBody)
	if !ok {
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "", "decoding submission: %v", err)
		return
	}
	info, err := s.Submit(r.Header.Get(distrib.HeaderTenant), req)
	if err != nil {
		var aerr *AdmissionError
		if errors.As(err, &aerr) {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(aerr.RetryAfter.Seconds())))
			httpError(w, http.StatusTooManyRequests, aerr.Code, "%s", aerr.Reason)
			return
		}
		httpError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(info)
}

// handleCampaignSubtree routes /v1/campaigns/{id}[/events|/report].
func (s *Service) handleCampaignSubtree(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, PathCampaigns+"/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, http.StatusNotFound, "", "no campaign id in path")
		return
	}
	switch sub {
	case "":
		ev, ok := s.snapshotEvent(id)
		if !ok {
			httpError(w, http.StatusNotFound, "", "unknown campaign %q", id)
			return
		}
		writeJSON(w, ev)
	case "events":
		s.handleEvents(w, r, id)
	case "report":
		s.handleReport(w, id)
	default:
		httpError(w, http.StatusNotFound, "", "unknown campaign endpoint %q", sub)
	}
}

// snapshotEvent assembles one event frame for a campaign: live
// coordinator metrics while it executes, final assembled metrics once
// done. Coordinator calls happen outside the service lock.
func (s *Service) snapshotEvent(id string) (Event, bool) {
	s.mu.Lock()
	cs := s.campaigns[id]
	if cs == nil {
		s.mu.Unlock()
		return Event{}, false
	}
	ev := Event{Campaign: cs.CampaignInfo}
	coord := cs.coord
	if cs.result != nil {
		final := cs.result.Metrics
		ev.Final = &final
	}
	s.mu.Unlock()
	if coord != nil {
		m := coord.Metrics()
		ev.Metrics = &m
	}
	return ev, true
}

// terminal reports a state no further event will change.
func terminal(state string) bool { return state == StateDone || state == StateFailed }

// handleEvents streams a campaign's progress as server-sent events:
// an "event: metrics" frame every EventInterval while the campaign is
// live, closing with a single "event: done" frame carrying the final
// state. ?once=1 answers one frame and returns — a cheap long-poll
// for clients without SSE plumbing.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	once := r.URL.Query().Get("once") != ""
	ev, ok := s.snapshotEvent(id)
	if !ok {
		httpError(w, http.StatusNotFound, "", "unknown campaign %q", id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	write := func(name string, ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		name := "metrics"
		if terminal(ev.Campaign.State) {
			name = "done"
		}
		if !write(name, ev) || once || name == "done" {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-time.After(s.opts.EventInterval):
		}
		if ev, ok = s.snapshotEvent(id); !ok {
			return
		}
	}
}

// handleReport serves a completed campaign's assembled report — from
// the content-addressed store when one is attached (surviving the
// campaign directory), falling back to the coordinator's artifact.
func (s *Service) handleReport(w http.ResponseWriter, id string) {
	info, ok := s.Campaign(id)
	if !ok {
		httpError(w, http.StatusNotFound, "", "unknown campaign %q", id)
		return
	}
	if info.State != StateDone {
		httpError(w, http.StatusConflict, "", "campaign %s is %s — no report yet", id, info.State)
		return
	}
	if s.opts.Store != nil {
		if dig, ok := s.opts.Store.Ref("campaign/" + id + "/report.md"); ok {
			if data, err := s.opts.Store.GetBlob(dig); err == nil {
				w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
				_, _ = w.Write(data)
				return
			}
		}
	}
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, "campaigns", id, "coord", "report.md"))
	if err != nil {
		httpError(w, http.StatusNotFound, "", "report unavailable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	_, _ = w.Write(data)
}

// handleLease is the shared fleet's lease endpoint: it interleaves
// every active campaign's frontier, granting from the tenant with the
// lowest fair-share deficit whose coordinator has (or can carve) a
// pending unit. With nothing grantable anywhere it long-polls until a
// campaign activates, a unit returns to some pool, the next lease
// expiry, or the poll deadline — the same event-driven contract a
// single coordinator gives its workers, lifted fleet-wide.
func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "", "POST only")
		return
	}
	if !s.gate(w) {
		return
	}
	body, ok := readBody(w, r, 1<<20)
	if !ok {
		return
	}
	var req distrib.LeaseRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "", "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "", "lease request names no worker")
		return
	}
	deadline := time.Now().Add(leaseWaitMax)
	for {
		s.mu.Lock()
		if s.crashed {
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "service_crashed",
				"service crashed at a chaos crash point; awaiting resume")
			return
		}
		if s.closed {
			s.mu.Unlock()
			writeJSON(w, distrib.LeaseResponse{Status: distrib.StatusDone, Binary: true})
			return
		}
		cands := s.leaseCandidatesLocked()
		wake := s.leaseWake
		s.mu.Unlock()

		for _, cs := range cands {
			lr, ok := cs.coord.TryLease(req.Worker)
			if !ok {
				continue
			}
			granted := int64(lr.Unit.Jobs() - len(lr.Unit.DoneJobs))
			s.mu.Lock()
			cs.granted += granted
			s.tenantGranted[cs.Tenant] += granted
			s.mu.Unlock()
			writeJSON(w, lr)
			return
		}

		wait := time.Until(deadline)
		for _, cs := range cands {
			if next, ok := cs.coord.NextExpiry(); ok {
				if d := time.Until(next) + 10*time.Millisecond; d < wait {
					wait = d
				}
			}
		}
		if wait <= 0 {
			writeJSON(w, distrib.LeaseResponse{Status: distrib.StatusWait, RetryMs: leaseRetryMs, Binary: true})
			return
		}
		t := time.NewTimer(wait)
		select {
		case <-wake:
		case <-t.C:
		case <-s.done:
		case <-r.Context().Done():
			t.Stop()
			return
		}
		t.Stop()
	}
}

// forward routes a unit-scoped worker RPC (/v1/records,
// /v1/heartbeat, /v1/complete) to the owning campaign's coordinator
// by the X-Propane-Campaign header, body untouched — the coordinator's
// own digest verification and idempotency replay see exactly what the
// worker sent. A request without the header (a legacy single-campaign
// worker) routes to the unique active campaign when there is exactly
// one; anything unresolvable answers 409, which the worker treats as
// a revoked lease and abandons cleanly.
func (s *Service) forward(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	id := r.Header.Get(distrib.HeaderCampaign)
	s.mu.Lock()
	var cs *campaignState
	if id != "" {
		cs = s.campaigns[id]
	} else {
		for _, c := range s.campaigns {
			if c.State == StateActive {
				if cs != nil {
					cs = nil // ambiguous: two active campaigns, no header
					break
				}
				cs = c
			}
		}
	}
	var h http.Handler
	if cs != nil && cs.handler != nil {
		h = cs.handler
	}
	s.mu.Unlock()
	if h == nil {
		httpError(w, http.StatusConflict, "", "no campaign for this request (campaign header %q)", id)
		return
	}
	h.ServeHTTP(w, r)
}

// Status snapshots the service.
func (s *Service) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		QueueDepth: len(s.queue),
		Crashed:    s.crashed,
		Tenants:    make(map[string]TenantStatus),
	}
	for _, id := range s.order {
		cs := s.campaigns[id]
		st.Campaigns = append(st.Campaigns, cs.CampaignInfo)
		t := st.Tenants[cs.Tenant]
		switch cs.State {
		case StateQueued:
			t.Queued++
			t.JobsInFlight += cs.Jobs
		case StateActivating, StateActive:
			st.Active++
			t.Active++
			t.JobsInFlight += cs.Jobs
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
		st.Tenants[cs.Tenant] = t
	}
	for tenant, t := range st.Tenants {
		w := s.opts.TenantWeights[tenant]
		if w <= 0 {
			w = 1
		}
		t.Weight = w
		t.GrantedJobs = s.tenantGranted[tenant]
		st.Tenants[tenant] = t
	}
	return st
}

// Metrics snapshots every campaign that has (or had) a coordinator.
func (s *Service) Metrics() map[string]distrib.Metrics {
	s.mu.Lock()
	coords := make(map[string]*distrib.Coordinator)
	for id, cs := range s.campaigns {
		if cs.coord != nil {
			coords[id] = cs.coord
		}
	}
	s.mu.Unlock()
	out := make(map[string]distrib.Metrics, len(coords))
	for id, coord := range coords {
		out[id] = coord.Metrics()
	}
	return out
}
