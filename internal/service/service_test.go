package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/distrib"
	"propane/internal/report"
	"propane/internal/runner"
	"propane/internal/store"
)

// fingerprint reduces a result to the bit-identity criterion: the
// permeability matrix CSV and the raw run counts.
func fingerprint(rr *runner.RunResult) (string, int, int) {
	return report.MatrixCSV(rr.Result.Matrix), rr.Result.Runs, rr.Result.Unfired
}

var (
	baselineOnce    sync.Once
	baselineMatrix  string
	baselineRuns    int
	baselineUnfired int
	baselineErr     error
)

// baseline is the single-node reference run every service campaign
// must reproduce bit-identically.
func baseline(t *testing.T) (string, int, int) {
	t.Helper()
	baselineOnce.Do(func() {
		dir, err := os.MkdirTemp("", "propane-direct-*")
		if err != nil {
			baselineErr = err
			return
		}
		defer os.RemoveAll(dir)
		rr, err := runner.RunInstance("reduced", runner.TierQuick, runner.Options{Dir: dir})
		if err != nil {
			baselineErr = err
			return
		}
		baselineMatrix, baselineRuns, baselineUnfired = fingerprint(rr)
	})
	if baselineErr != nil {
		t.Fatal(baselineErr)
	}
	return baselineMatrix, baselineRuns, baselineUnfired
}

func assertMatchesBaseline(t *testing.T, label string, rr *runner.RunResult) {
	t.Helper()
	wantM, wantR, wantU := baseline(t)
	gotM, gotR, gotU := fingerprint(rr)
	if gotR != wantR || gotU != wantU {
		t.Errorf("%s: assembled counts = (%d runs, %d unfired), direct = (%d, %d)", label, gotR, gotU, wantR, wantU)
	}
	if gotM != wantM {
		t.Errorf("%s: assembled permeability matrix differs from the direct run", label)
	}
}

// startService opens a service and serves its API on an ephemeral
// listener, returning the service and its base URL.
func startService(t *testing.T, opts Options) (*Service, string, func()) {
	t.Helper()
	opts.EventInterval = 50 * time.Millisecond
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	svc, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := svc.Server()
	go srv.Serve(l)
	stop := func() {
		_ = srv.Close()
		_ = svc.Close()
	}
	return svc, "http://" + l.Addr().String(), stop
}

// startFleet points n workers at the service; the returned stop
// cancels and joins them.
func startFleet(t *testing.T, url string, n int, wo distrib.WorkerOptions) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		o := wo
		o.Name = fmt.Sprintf("%s-w%d", wo.Name, i+1)
		wg.Add(1)
		go func(o distrib.WorkerOptions) {
			defer wg.Done()
			if err := distrib.RunWorkerContext(ctx, url, o); err != nil && ctx.Err() == nil {
				t.Logf("worker %s exited: %v", o.Name, err)
			}
		}(o)
	}
	return func() { cancel(); wg.Wait() }
}

// submitHTTP posts one submission over the real API.
func submitHTTP(t *testing.T, url, tenant string, req SubmitRequest) (*http.Response, CampaignInfo) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+PathCampaigns, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set(distrib.HeaderTenant, tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info CampaignInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return resp, info
}

// waitState polls until the campaign reaches a wanted state (or any
// terminal one), failing on timeout.
func waitState(t *testing.T, svc *Service, id, want string, timeout time.Duration) CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info, ok := svc.Campaign(id)
		if ok && info.State == want {
			return info
		}
		if ok && terminal(info.State) && info.State != want {
			t.Fatalf("campaign %s reached %q (error %q) while waiting for %q", id, info.State, info.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q waiting for %q", id, info.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTwoTenantsSharedFleet is the tentpole guarantee: two campaigns
// from different tenants multiplexed over ONE worker fleet both
// assemble bit-identically to a single-node run, and the fair-share
// ledger shows both tenants got work through.
func TestTwoTenantsSharedFleet(t *testing.T) {
	svc, url, stop := startService(t, Options{
		Dir:      t.TempDir(),
		Units:    4,
		LeaseTTL: 5 * time.Second,
	})
	defer stop()

	resp, a := submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit a: %d", resp.StatusCode)
	}
	resp, b := submitHTTP(t, url, "tenant-b", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit b: %d", resp.StatusCode)
	}

	fleetStop := startFleet(t, url, 3, distrib.WorkerOptions{
		Name: "fleet", Dir: t.TempDir(), BatchSize: 16,
		PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleetStop()

	waitState(t, svc, a.ID, StateDone, 120*time.Second)
	waitState(t, svc, b.ID, StateDone, 120*time.Second)

	rra, ok := svc.Result(a.ID)
	if !ok {
		t.Fatalf("no result for %s", a.ID)
	}
	rrb, ok := svc.Result(b.ID)
	if !ok {
		t.Fatalf("no result for %s", b.ID)
	}
	assertMatchesBaseline(t, a.ID, rra)
	assertMatchesBaseline(t, b.ID, rrb)

	st := svc.Status()
	if st.Done != 2 {
		t.Errorf("status done = %d, want 2", st.Done)
	}
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		if st.Tenants[tenant].GrantedJobs == 0 {
			t.Errorf("tenant %s was granted no jobs — fleet not shared", tenant)
		}
	}

	// The report endpoint serves the assembled markdown.
	rresp, err := http.Get(url + PathCampaigns + "/" + a.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d", rresp.StatusCode)
	}
	data := make([]byte, 64)
	n, _ := rresp.Body.Read(data)
	if !strings.Contains(string(data[:n]), "#") {
		t.Errorf("report does not look like markdown: %q", data[:n])
	}
}

// TestEventsStream reads the SSE stream end to end: metrics frames
// while the campaign runs, one done frame carrying the final
// assembled metrics.
func TestEventsStream(t *testing.T) {
	svc, url, stop := startService(t, Options{Dir: t.TempDir(), Units: 2, LeaseTTL: 5 * time.Second})
	defer stop()
	resp, a := submitHTTP(t, url, "", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	fleetStop := startFleet(t, url, 2, distrib.WorkerOptions{
		Name: "sse", Dir: t.TempDir(), PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleetStop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url+PathCampaigns+"/"+a.ID+"/events", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	var frames int
	var last Event
	var lastName string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			lastName = strings.TrimPrefix(line, "event: ")
			continue
		}
		if strings.HasPrefix(line, "data: ") {
			frames++
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("frame %d does not parse: %v", frames, err)
			}
			if lastName == "done" {
				break
			}
		}
	}
	if lastName != "done" {
		t.Fatalf("stream ended after %d frames without a done event (scan err %v)", frames, sc.Err())
	}
	if last.Campaign.State != StateDone {
		t.Errorf("done frame state = %q", last.Campaign.State)
	}
	if last.Final == nil || last.Final.ReplayedRuns+last.Final.ExecutedRuns == 0 {
		t.Errorf("done frame carries no final metrics: %+v", last.Final)
	}

	waitState(t, svc, a.ID, StateDone, time.Minute)
}

// TestAdmissionControl drives the write controller through every
// rejection: per-tenant queue quota, per-tenant jobs quota, the delay
// threshold's growing backoff, and the stop threshold — each a 429
// with Retry-After.
func TestAdmissionControl(t *testing.T) {
	svc, url, stop := startService(t, Options{
		Dir:            t.TempDir(),
		Quotas:         Quotas{MaxQueued: 1, MaxActive: 1, MaxJobs: 1 << 30},
		MaxActiveTotal: 1,
		DelayThreshold: 2,
		StopThreshold:  3,
		LeaseTTL:       5 * time.Second,
	})
	defer stop()

	// c1 activates (no workers: it just sits active, pinning the
	// fleet-wide slot), c2 queues behind it.
	resp, c1 := submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("c1: %d", resp.StatusCode)
	}
	waitState(t, svc, c1.ID, StateActive, time.Minute)
	resp, _ = submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("c2: %d", resp.StatusCode)
	}

	// Tenant-a now holds its 1-campaign queue quota.
	resp, _ = submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	// Another tenant pushes depth to the delay threshold: admission
	// keeps answering 429, with backoff hints.
	resp, _ = submitHTTP(t, url, "tenant-b", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("b1: %d", resp.StatusCode)
	}
	resp, _ = submitHTTP(t, url, "tenant-c", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("delay-threshold submit: %d, want 429", resp.StatusCode)
	}

	// Jobs quota: a tenant whose plan would exceed its in-flight job
	// budget is refused outright.
	aerr := func() *AdmissionError {
		_, err := svc.Submit("tenant-tiny", SubmitRequest{Instance: "reduced", Tier: "quick"})
		var ae *AdmissionError
		if err == nil {
			t.Fatal("submit passed a saturated queue")
		}
		if ok := errors.As(err, &ae); !ok {
			t.Fatalf("expected AdmissionError, got %v", err)
		}
		return ae
	}()
	if aerr.RetryAfter <= 0 {
		t.Errorf("admission error carries no backoff: %+v", aerr)
	}

	// Direct jobs-quota check (bypasses the depth thresholds by using
	// a fresh service).
	svc2, err := Open(Options{Dir: t.TempDir(), Quotas: Quotas{MaxJobs: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	_, err = svc2.Submit("t", SubmitRequest{Instance: "reduced", Tier: "quick"})
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Code != "tenant_jobs_quota" {
		t.Fatalf("jobs quota: got %v", err)
	}

	// Bad submissions are 400s, not 429s.
	resp, _ = submitHTTP(t, url, "", SubmitRequest{Instance: "no-such-instance"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown instance: %d, want 400", resp.StatusCode)
	}
	resp, _ = submitHTTP(t, url, "", SubmitRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty submission: %d, want 400", resp.StatusCode)
	}
}

// TestStoreMemoReuseAcrossCampaigns: a second submission of an
// identical campaign is served largely from the persistent memo
// store the first one populated — visible as store_memo_runs in the
// /events stream — and still assembles bit-identically.
func TestStoreMemoReuseAcrossCampaigns(t *testing.T) {
	workerStore, err := store.Open(t.TempDir(), store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer workerStore.Close()

	svc, url, stop := startService(t, Options{Dir: t.TempDir(), Units: 2, LeaseTTL: 5 * time.Second})
	defer stop()
	fleet1 := startFleet(t, url, 2, distrib.WorkerOptions{
		Name: "memo1", Dir: t.TempDir(), Memo: workerStore,
		PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})

	resp, first := submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	waitState(t, svc, first.ID, StateDone, 120*time.Second)
	fleet1()

	// A BRAND NEW fleet (fresh scratch, so nothing replays from local
	// unit journals) serves the second, identical campaign: every
	// reused run must come from the shared persistent store.
	fleet2 := startFleet(t, url, 2, distrib.WorkerOptions{
		Name: "memo2", Dir: t.TempDir(), Memo: workerStore,
		PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleet2()

	resp, second := submitHTTP(t, url, "tenant-b", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second: %d", resp.StatusCode)
	}
	waitState(t, svc, second.ID, StateDone, 120*time.Second)

	rr1, _ := svc.Result(first.ID)
	rr2, _ := svc.Result(second.ID)
	assertMatchesBaseline(t, first.ID, rr1)
	assertMatchesBaseline(t, second.ID, rr2)

	// The second campaign's fleet metrics must show persistent-store
	// memo hits, via the public events endpoint.
	eresp, err := http.Get(url + PathCampaigns + "/" + second.ID + "/events?once=1")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var ev Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ev.Metrics == nil || ev.Metrics.StoreMemoRuns == 0 {
		t.Fatalf("second campaign shows no store memo hits: %+v", ev.Metrics)
	}
	if st := workerStore.Stats(); st.Hits == 0 {
		t.Errorf("worker store recorded no hits: %+v", st)
	}
}

// TestSynthDocumentSubmission submits an inline topology document:
// the service registers it under a content-derived name, ships the
// document to workers inside each work unit, and the campaign
// completes. A byte-identical resubmission resolves to the same
// instance.
func TestSynthDocumentSubmission(t *testing.T) {
	doc, err := os.ReadFile("../../examples/synth/arrestor.yaml")
	if err != nil {
		t.Skipf("no example document: %v", err)
	}
	svc, url, stop := startService(t, Options{Dir: t.TempDir(), Units: 2, LeaseTTL: 5 * time.Second})
	defer stop()
	fleetStop := startFleet(t, url, 2, distrib.WorkerOptions{
		Name: "doc", Dir: t.TempDir(), PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleetStop()

	resp, a := submitHTTP(t, url, "tenant-a", SubmitRequest{Document: string(doc), Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("document submit: %d", resp.StatusCode)
	}
	if !strings.HasPrefix(a.Instance, "synth-doc-") {
		t.Fatalf("document registered as %q, want a content-derived synth-doc name", a.Instance)
	}
	waitState(t, svc, a.ID, StateDone, 180*time.Second)

	resp, b := submitHTTP(t, url, "tenant-b", SubmitRequest{Document: string(doc), Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d", resp.StatusCode)
	}
	if b.Instance != a.Instance {
		t.Errorf("byte-identical documents resolved to %q and %q", a.Instance, b.Instance)
	}
	waitState(t, svc, b.ID, StateDone, 180*time.Second)
}

// TestCrashResumeSoak is the service-level chaos drill: the service
// crashes at pre-enqueue-ack with a submission journaled but
// unacknowledged; the resumed service owns that campaign and runs it;
// a coordinator crash (pre-lease-grant) strands one campaign
// mid-flight; a second resume converges everything — every campaign
// bit-identical — while a worker-side store crash (mid-store-put)
// degrades the memo path without touching correctness.
func TestCrashResumeSoak(t *testing.T) {
	dir := t.TempDir()
	cps := chaos.NewCrashpoints(nil)
	scratch := t.TempDir()
	storeDir := t.TempDir()

	// Incarnation 1: first submission acknowledged, second journaled
	// but the ack dies at the crash point.
	cps.Arm(CrashPreEnqueueAck, 2)
	svc1, url1, stop1 := startService(t, Options{Dir: dir, Units: 4, LeaseTTL: 3 * time.Second, Crash: cps})
	resp, c1 := submitHTTP(t, url1, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("c1 (%s): %d", c1.ID, resp.StatusCode)
	}
	body, _ := json.Marshal(SubmitRequest{Instance: "reduced", Tier: "quick"})
	hreq, _ := http.NewRequest(http.MethodPost, url1+PathCampaigns, bytes.NewReader(body))
	hreq.Header.Set(distrib.HeaderTenant, "tenant-b")
	if bresp, err := http.DefaultClient.Do(hreq); err == nil {
		bresp.Body.Close()
		t.Fatalf("second submit was acknowledged (%d) despite the armed crash point", bresp.StatusCode)
	}
	if fired := cps.Fired(); len(fired) != 1 || fired[0] != CrashPreEnqueueAck {
		t.Fatalf("crash point did not fire: %v", fired)
	}
	// The dead service answers 503 on campaign endpoints and flags
	// itself in /status (which stays observable for operators).
	if gresp, err := http.Get(url1 + PathCampaigns); err == nil {
		if gresp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("crashed service answered %d on %s", gresp.StatusCode, PathCampaigns)
		}
		gresp.Body.Close()
	}
	if gresp, err := http.Get(url1 + PathStatus); err == nil {
		var st Status
		if jerr := json.NewDecoder(gresp.Body).Decode(&st); jerr != nil || !st.Crashed {
			t.Fatalf("crashed service /status = %+v (err %v)", st, jerr)
		}
		gresp.Body.Close()
	}
	_ = svc1 // closed via stop1
	stop1()

	// Incarnation 2: resume recovers BOTH campaigns (the second was
	// durable before the ack died). A coordinator crash point strands
	// whichever campaign grants the 6th lease; a store crash point
	// degrades the workers' memo persistence mid-campaign.
	cps.Arm(distrib.CrashPreLeaseGrant, 6)
	cps.Arm(store.CrashMidStorePut, 10)
	ws, err := store.Open(storeDir, store.Options{Crash: cps, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	svc2, url2, stop2 := startService(t, Options{Dir: dir, Resume: true, Units: 4, LeaseTTL: 3 * time.Second, Crash: cps})
	if got := len(svc2.Campaigns()); got != 2 {
		t.Fatalf("resumed service sees %d campaigns, want 2 (unacked submission lost?)", got)
	}
	fleet2 := startFleet(t, url2, 3, distrib.WorkerOptions{
		Name: "soak2", Dir: scratch, Memo: ws,
		PollInterval: 50 * time.Millisecond, MaxErrors: 4, Logf: t.Logf,
	})

	// Wait until one campaign finishes, or both stall on the crashed
	// coordinator; the armed grant crash leaves at most one stranded.
	deadline := time.Now().Add(120 * time.Second)
	for {
		done := 0
		for _, ci := range svc2.Campaigns() {
			if ci.State == StateDone {
				done++
			}
		}
		crashed := false
		for _, l := range cps.Fired() {
			if l == distrib.CrashPreLeaseGrant {
				crashed = true
			}
		}
		if done == 2 || (done >= 1 && crashed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("soak stalled: campaigns %+v, fired %v", svc2.Campaigns(), cps.Fired())
		}
		time.Sleep(50 * time.Millisecond)
	}
	fleet2()
	ws.Close()
	stop2()

	// Incarnation 3: resume again; whatever was stranded re-queues
	// and a fresh fleet (and a reopened store) finishes it.
	ws3, err := store.Open(storeDir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer ws3.Close()
	svc3, url3, stop3 := startService(t, Options{Dir: dir, Resume: true, Units: 4, LeaseTTL: 3 * time.Second})
	defer stop3()
	fleet3 := startFleet(t, url3, 3, distrib.WorkerOptions{
		Name: "soak3", Dir: scratch, Memo: ws3,
		PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleet3()

	var ids []string
	for _, ci := range svc3.Campaigns() {
		ids = append(ids, ci.ID)
	}
	for _, id := range ids {
		waitState(t, svc3, id, StateDone, 180*time.Second)
		rr, ok := svc3.Result(id)
		if !ok {
			// Completed in incarnation 2; assembled artifacts live on
			// disk — re-assembly is not retried for already-done
			// campaigns, which keep their journaled state.
			continue
		}
		assertMatchesBaseline(t, id, rr)
	}
	if st := svc3.Status(); st.Done != 2 {
		t.Errorf("final state: %+v", st)
	}
}

// TestAdaptiveSubmission submits an adaptive campaign over the API:
// the adaptive spec survives the journal, reaches the coordinator,
// and the assembled result is bit-identical to a single-node adaptive
// run. A bad mode is the submitter's error (400), not a queue entry.
func TestAdaptiveSubmission(t *testing.T) {
	svc, url, stop := startService(t, Options{
		Dir:      t.TempDir(),
		LeaseTTL: 5 * time.Second,
	})
	defer stop()

	resp, _ := submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick", Adaptive: "sometimes"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad adaptive mode: %d, want 400", resp.StatusCode)
	}

	resp, a := submitHTTP(t, url, "tenant-a", SubmitRequest{Instance: "reduced", Tier: "quick", Adaptive: "force"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if a.Adaptive != "force" {
		t.Errorf("campaign info advertises adaptive %q, want force", a.Adaptive)
	}

	fleetStop := startFleet(t, url, 2, distrib.WorkerOptions{
		Name: "afleet", Dir: t.TempDir(), BatchSize: 8,
		PollInterval: 50 * time.Millisecond, Logf: t.Logf,
	})
	defer fleetStop()
	waitState(t, svc, a.ID, StateDone, 120*time.Second)

	rr, ok := svc.Result(a.ID)
	if !ok {
		t.Fatalf("no result for %s", a.ID)
	}
	if rr.Result.Adaptive == nil {
		t.Fatal("service adaptive campaign carries no AdaptiveStats")
	}

	dir, err := os.MkdirTemp("", "propane-adaptive-svc-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	direct, err := runner.RunInstance("reduced", runner.TierQuick, runner.Options{
		Dir: dir, Adaptive: campaign.AdaptiveForce,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantM, wantR, wantU := fingerprint(direct)
	gotM, gotR, gotU := fingerprint(rr)
	if gotR != wantR || gotU != wantU {
		t.Errorf("adaptive counts = (%d runs, %d unfired), single-node = (%d, %d)", gotR, gotU, wantR, wantU)
	}
	if gotM != wantM {
		t.Error("service adaptive matrix differs from the single-node adaptive run")
	}
}
