// Package service hosts many campaigns as one long-lived multi-tenant
// process: propaned -serve. Submissions — a registry instance name or
// an inline declarative topology document — pass write-controller
// admission (per-tenant quotas, delay/stop thresholds on queue depth,
// 429 + Retry-After on rejection), queue durably, and execute as
// internal/distrib campaigns multiplexed over ONE shared worker
// fleet: the service's /v1/lease interleaves the active campaigns'
// frontiers weighted-fair by tenant, and unit-scoped worker RPCs
// route to the owning campaign's coordinator by the X-Propane-Campaign
// header — bodies untouched, so digests and idempotency keys survive
// the indirection. Every accepted submission, activation and terminal
// transition appends to service.jsonl; a killed service restarted
// with -resume recovers all in-flight campaigns bit-identically from
// that journal plus each coordinator's own journals. An optional
// content-addressed store (internal/store) persists memo entries and
// assembled reports across campaigns, tenants and process lifetimes.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/distrib"
	"propane/internal/runner"
	"propane/internal/store"
)

// CrashPreEnqueueAck is the service's chaos crash point: it fires
// after a submission is journaled but before the client hears the
// 202. The resumed service owns a campaign its submitter never got an
// acknowledgement for — the classic at-least-once window.
const CrashPreEnqueueAck = "pre-enqueue-ack"

const (
	journalName = "service.jsonl"
	// leaseWaitMax bounds the service's fleet-wide lease long-poll,
	// mirroring the coordinator's own (it must stay under the worker
	// client's 30 s timeout and the server's handler deadline).
	leaseWaitMax = 10 * time.Second
	leaseRetryMs = 1
)

// Campaign states.
const (
	StateQueued     = "queued"
	StateActivating = "activating"
	StateActive     = "active"
	StateDone       = "done"
	StateFailed     = "failed"
)

// Quotas bounds one tenant's load, enforced at admission (queue
// depth, jobs) and by the activation pump (concurrency).
type Quotas struct {
	// MaxQueued is the most campaigns a tenant may have waiting in the
	// queue. <= 0 selects 8.
	MaxQueued int
	// MaxActive is the most campaigns of one tenant executing
	// concurrently; further ones queue behind them. <= 0 selects 2.
	MaxActive int
	// MaxJobs caps a tenant's total injection runs in flight — the sum
	// of plan×cases over its queued and active campaigns. Computed
	// from the campaign plan alone (no golden runs), so admission
	// stays cheap. <= 0 selects 500000.
	MaxJobs int
}

func (q *Quotas) normalise() {
	if q.MaxQueued <= 0 {
		q.MaxQueued = 8
	}
	if q.MaxActive <= 0 {
		q.MaxActive = 2
	}
	if q.MaxJobs <= 0 {
		q.MaxJobs = 500000
	}
}

// Options parameterises the service.
type Options struct {
	// Dir is the service root: service.jsonl plus one
	// campaigns/<id>/ subtree per campaign (saved topology document,
	// coordinator journals, assembled artifacts). Required.
	Dir string
	// Store, when non-nil, persists assembled reports (content
	// addressed, named by ref) and is the service's half of the
	// cross-campaign memo economy — workers carry their own store.
	// The service never fails when the store degrades; it only loses
	// persistence.
	Store *store.Store
	// Quotas applies to every tenant.
	Quotas Quotas
	// TenantWeights biases the fair-share lease scheduler (deficit =
	// granted jobs / weight; lowest deficit leases next). Absent or
	// <= 0 means weight 1.
	TenantWeights map[string]int
	// MaxActiveTotal bounds concurrently executing campaigns across
	// all tenants. <= 0 selects 4.
	MaxActiveTotal int
	// DelayThreshold and StopThreshold are the write-controller marks
	// on total queue depth: at DelayThreshold admission starts
	// answering 429 with a Retry-After that grows with the backlog
	// (backpressure), at StopThreshold it rejects outright with the
	// maximum Retry-After. <= 0 select 16 and 64.
	DelayThreshold int
	StopThreshold  int
	// Units, LeaseTTL, Pull and RunBudget pass through to each
	// campaign's coordinator (see distrib.Config).
	Units    int
	LeaseTTL time.Duration
	Pull     bool
	// Resume restores service state from service.jsonl and each
	// in-flight campaign's journals instead of refusing a non-empty
	// directory.
	Resume bool
	// GCInterval runs Store.GC this often (0 disables; ignored
	// without a Store).
	GCInterval time.Duration
	// EventInterval paces the /events SSE stream. <= 0 selects 1 s.
	EventInterval time.Duration
	// Crash arms chaos crash points: CrashPreEnqueueAck here, the
	// coordinator labels in every campaign it activates, and
	// store.CrashMidStorePut if the caller passed the same registry to
	// the store.
	Crash *chaos.Crashpoints
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)
}

func (o *Options) normalise() error {
	if o.Dir == "" {
		return errors.New("service: no directory")
	}
	o.Quotas.normalise()
	if o.MaxActiveTotal <= 0 {
		o.MaxActiveTotal = 4
	}
	if o.DelayThreshold <= 0 {
		o.DelayThreshold = 16
	}
	if o.StopThreshold <= 0 {
		o.StopThreshold = 64
	}
	if o.StopThreshold < o.DelayThreshold {
		o.StopThreshold = o.DelayThreshold
	}
	if o.EventInterval <= 0 {
		o.EventInterval = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// SubmitRequest is the body of POST /v1/campaigns. Exactly one of
// Instance (a registry name) or Document (an inline declarative
// topology, YAML or JSON) selects the target; the submitting tenant
// rides in the X-Propane-Tenant header.
type SubmitRequest struct {
	Instance string `json:"instance,omitempty"`
	Document string `json:"document,omitempty"`
	Tier     string `json:"tier,omitempty"`
	// RunBudgetSteps arms the per-run watchdog fleet-wide (0 keeps
	// the instance default).
	RunBudgetSteps int64 `json:"run_budget_steps,omitempty"`
	// Adaptive selects sequential CI-driven sampling: "off" (or
	// absent), "auto", "force". CIEpsilon is the stopping half-width ε
	// (0 keeps the 0.05 default).
	Adaptive  string  `json:"adaptive,omitempty"`
	CIEpsilon float64 `json:"ci_epsilon,omitempty"`
}

// CampaignInfo is one campaign's public state.
type CampaignInfo struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Instance string `json:"instance"`
	Tier     string `json:"tier"`
	State    string `json:"state"`
	// Jobs is the campaign's total injection-run count (plan×cases) —
	// the unit of the tenant jobs quota and of fair-share accounting.
	Jobs           int     `json:"jobs"`
	RunBudgetSteps int64   `json:"run_budget_steps,omitempty"`
	Adaptive       string  `json:"adaptive,omitempty"`
	CIEpsilon      float64 `json:"ci_epsilon,omitempty"`
	SubmittedMs    int64   `json:"submitted_ms,omitempty"`
	StartedMs      int64   `json:"started_ms,omitempty"`
	DoneMs         int64   `json:"done_ms,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// AdmissionError is a 429 with backoff guidance — the write
// controller refusing work it cannot absorb yet.
type AdmissionError struct {
	Code       string
	RetryAfter time.Duration
	Reason     string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.Reason, e.RetryAfter)
}

// journalEvent is one line of service.jsonl.
type journalEvent struct {
	Op        string  `json:"op"` // submit | activate | done | fail
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant,omitempty"`
	Instance  string  `json:"instance,omitempty"`
	Tier      string  `json:"tier,omitempty"`
	RunBudget int64   `json:"run_budget,omitempty"`
	Adaptive  string  `json:"adaptive,omitempty"`
	CIEpsilon float64 `json:"ci_epsilon,omitempty"`
	// Doc is the saved topology document's path relative to Dir —
	// the journal stays relocatable.
	Doc    string `json:"doc,omitempty"`
	Jobs   int    `json:"jobs,omitempty"`
	Error  string `json:"error,omitempty"`
	TimeMs int64  `json:"time_ms,omitempty"`
}

// campaignState is one campaign's full in-memory state.
type campaignState struct {
	CampaignInfo
	docPath  string // absolute path of the saved document, "" for registry instances
	document string // document content, loaded lazily on activation
	// resumeCoord marks a campaign that was active when the service
	// died: its coordinator is recreated with Resume.
	resumeCoord bool
	coord       *distrib.Coordinator
	handler     http.Handler
	result      *runner.RunResult
	granted     int64 // jobs granted to the fleet (fair-share bookkeeping)
}

// Service is the multi-tenant campaign host.
type Service struct {
	opts Options
	logf func(format string, args ...any)

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // every campaign, submit order
	queue     []string // queued campaigns, activation order
	seq       int
	journal   *os.File
	// tenantGranted is the fair-share ledger: jobs granted to the
	// fleet per tenant, divided by the tenant's weight to pick the
	// next campaign to lease from.
	tenantGranted map[string]int64
	// leaseWake is closed (and replaced) whenever lease-relevant state
	// changes — a campaign activates, completes, or a coordinator
	// returns a unit to its pool — releasing parked fleet long-polls.
	leaseWake chan struct{}
	pumpCh    chan struct{}
	crashed   bool
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Open starts a service over dir, resuming from its journal when
// opts.Resume is set (and refusing a non-empty journal otherwise).
func Open(opts Options) (*Service, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		opts:          opts,
		logf:          opts.Logf,
		campaigns:     make(map[string]*campaignState),
		tenantGranted: make(map[string]int64),
		leaseWake:     make(chan struct{}),
		pumpCh:        make(chan struct{}, 1),
		done:          make(chan struct{}),
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	s.journal = f
	s.wg.Add(1)
	go s.pump()
	if opts.Store != nil && opts.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	s.kickPump()
	return s, nil
}

func (s *Service) journalPath() string { return filepath.Join(s.opts.Dir, journalName) }

// replayJournal rebuilds campaigns, queue and sequence from
// service.jsonl. Undecodable lines (the torn tail of a killed append)
// are skipped; everything before them replays.
func (s *Service) replayJournal() error {
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: reading journal: %w", err)
	}
	if len(data) > 0 && !s.opts.Resume {
		return fmt.Errorf("service: %s already holds campaign state — pass Resume to recover it", s.journalPath())
	}
	var wasActive []string // activation order
	for _, line := range splitLines(data) {
		var ev journalEvent
		if json.Unmarshal(line, &ev) != nil {
			continue // torn tail
		}
		switch ev.Op {
		case "submit":
			cs := &campaignState{CampaignInfo: CampaignInfo{
				ID:             ev.ID,
				Tenant:         ev.Tenant,
				Instance:       ev.Instance,
				Tier:           ev.Tier,
				State:          StateQueued,
				Jobs:           ev.Jobs,
				RunBudgetSteps: ev.RunBudget,
				Adaptive:       ev.Adaptive,
				CIEpsilon:      ev.CIEpsilon,
				SubmittedMs:    ev.TimeMs,
			}}
			if ev.Doc != "" {
				cs.docPath = filepath.Join(s.opts.Dir, ev.Doc)
			}
			s.campaigns[ev.ID] = cs
			s.order = append(s.order, ev.ID)
			var n int
			if _, err := fmt.Sscanf(ev.ID, "c%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
		case "activate":
			if cs := s.campaigns[ev.ID]; cs != nil {
				cs.State = StateActive
				cs.StartedMs = ev.TimeMs
				wasActive = append(wasActive, ev.ID)
			}
		case "done", "fail":
			if cs := s.campaigns[ev.ID]; cs != nil {
				if ev.Op == "done" {
					cs.State = StateDone
				} else {
					cs.State = StateFailed
					cs.Error = ev.Error
				}
				cs.DoneMs = ev.TimeMs
			}
		}
	}
	// In-flight campaigns re-queue: the ones that were executing
	// first (their coordinators resume their journals), then the
	// still-queued in submit order.
	for _, id := range wasActive {
		if cs := s.campaigns[id]; cs != nil && cs.State == StateActive {
			cs.State = StateQueued
			cs.resumeCoord = true
			s.queue = append(s.queue, id)
		}
	}
	for _, id := range s.order {
		if cs := s.campaigns[id]; cs.State == StateQueued && !cs.resumeCoord {
			s.queue = append(s.queue, id)
		}
	}
	if len(s.campaigns) > 0 {
		s.logf("service: resumed %d campaigns (%d re-queued) from %s",
			len(s.campaigns), len(s.queue), s.journalPath())
	}
	return nil
}

// splitLines splits newline-terminated lines, final unterminated
// fragment included (the torn tail a decoder then rejects).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := 0
		for i < len(data) && data[i] != '\n' {
			i++
		}
		if i > 0 {
			lines = append(lines, data[:i])
		}
		if i == len(data) {
			break
		}
		data = data[i+1:]
	}
	return lines
}

// appendJournalLocked journals one event. The journal is the resume
// source of truth; an append failure degrades durability, not
// service (it is logged, and the in-memory state keeps serving).
func (s *Service) appendJournalLocked(ev journalEvent) {
	ev.TimeMs = time.Now().UnixMilli()
	line, err := json.Marshal(ev)
	if err == nil {
		_, err = s.journal.Write(append(line, '\n'))
	}
	if err != nil {
		s.logf("service: journal append failed: %v", err)
	}
}

// crashHitLocked checks an armed service crash point; on fire the
// service flips dead (every request answers 503 until a resumed
// process takes over) and the in-flight handler aborts reply-less.
func (s *Service) crashHitLocked(label string) {
	if s.opts.Crash.Hit(label) {
		s.crashed = true
		s.logf("service: chaos crash point %q fired — service dead until resumed", label)
		panic(http.ErrAbortHandler)
	}
}

// kickLease releases every parked fleet lease long-poll.
func (s *Service) kickLease() {
	s.mu.Lock()
	close(s.leaseWake)
	s.leaseWake = make(chan struct{})
	s.mu.Unlock()
}

// kickPump nudges the activation pump (non-blocking).
func (s *Service) kickPump() {
	select {
	case s.pumpCh <- struct{}{}:
	default:
	}
}

// sha12 is the content-derived instance-name suffix for submitted
// documents: byte-identical documents collapse to one instance, one
// config digest, one persistent-memo scope.
func sha12(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:12]
}

// resolveSubmit turns a submission into a registered instance name
// plus its job count. Document submissions register under
// synth-doc-<sha12 of content>; re-registration of the same content
// is a no-op.
func resolveSubmit(req *SubmitRequest) (jobs int, err error) {
	if (req.Instance == "") == (req.Document == "") {
		return 0, errors.New("exactly one of instance or document must be given")
	}
	if req.Tier == "" {
		req.Tier = string(runner.TierQuick)
	}
	mode, err := campaign.ParseAdaptiveMode(req.Adaptive)
	if err != nil {
		return 0, err
	}
	req.Adaptive = mode.String()
	if req.Adaptive == "off" {
		req.Adaptive = "" // canonical: absent means the fixed matrix
	}
	if req.CIEpsilon < 0 || req.CIEpsilon >= 0.5 {
		return 0, fmt.Errorf("ci_epsilon %v outside [0, 0.5)", req.CIEpsilon)
	}
	if req.Document != "" {
		req.Instance = "synth-doc-" + sha12([]byte(req.Document))
		if _, lerr := runner.Lookup(req.Instance); lerr != nil {
			def, derr := runner.LoadSynthBytes([]byte(req.Document), req.Instance)
			if derr != nil {
				return 0, fmt.Errorf("compiling document: %w", derr)
			}
			// A concurrent submission of the same content may have won
			// the registration race; the content is identical either way.
			_ = runner.Register(def)
		}
	}
	def, err := runner.Lookup(req.Instance)
	if err != nil {
		return 0, err
	}
	cfg, err := def.Config(runner.Tier(req.Tier))
	if err != nil {
		return 0, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return 0, err
	}
	return len(plan) * len(cfg.TestCases), nil
}

// Submit admits one campaign: quota and write-controller checks,
// durable enqueue, 202-equivalent CampaignInfo back. A rejection is
// an *AdmissionError (HTTP 429 + Retry-After); other errors are the
// submitter's (HTTP 400).
func (s *Service) Submit(tenant string, req SubmitRequest) (CampaignInfo, error) {
	if tenant == "" {
		tenant = "default"
	}
	jobs, err := resolveSubmit(&req)
	if err != nil {
		return CampaignInfo{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CampaignInfo{}, errors.New("service is shutting down")
	}
	if aerr := s.admitLocked(tenant, jobs); aerr != nil {
		return CampaignInfo{}, aerr
	}
	s.seq++
	id := fmt.Sprintf("c%04d", s.seq)
	cs := &campaignState{CampaignInfo: CampaignInfo{
		ID:             id,
		Tenant:         tenant,
		Instance:       req.Instance,
		Tier:           req.Tier,
		State:          StateQueued,
		Jobs:           jobs,
		RunBudgetSteps: req.RunBudgetSteps,
		Adaptive:       req.Adaptive,
		CIEpsilon:      req.CIEpsilon,
		SubmittedMs:    time.Now().UnixMilli(),
	}}
	ev := journalEvent{
		Op:        "submit",
		ID:        id,
		Tenant:    tenant,
		Instance:  req.Instance,
		Tier:      req.Tier,
		RunBudget: req.RunBudgetSteps,
		Adaptive:  req.Adaptive,
		CIEpsilon: req.CIEpsilon,
		Jobs:      jobs,
	}
	if req.Document != "" {
		rel := filepath.Join("campaigns", id, "topology.yaml")
		path := filepath.Join(s.opts.Dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return CampaignInfo{}, fmt.Errorf("saving document: %w", err)
		}
		if err := os.WriteFile(path, []byte(req.Document), 0o644); err != nil {
			return CampaignInfo{}, fmt.Errorf("saving document: %w", err)
		}
		cs.docPath = path
		cs.document = req.Document
		ev.Doc = rel
	}
	s.campaigns[id] = cs
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.appendJournalLocked(ev)
	// The submission is durable; the ack is not yet sent. A crash
	// pinned here leaves a campaign the resumed service will run but
	// the submitter never heard of — at-least-once admission.
	s.crashHitLocked(CrashPreEnqueueAck)
	s.logf("service: %s queued %s (%s/%s, %d jobs, queue depth %d)",
		tenant, id, cs.Instance, cs.Tier, jobs, len(s.queue))
	s.kickPump()
	return cs.CampaignInfo, nil
}

// tenantUsageLocked sums one tenant's live footprint.
func (s *Service) tenantUsageLocked(tenant string) (queued, active, jobs int) {
	for _, cs := range s.campaigns {
		if cs.Tenant != tenant {
			continue
		}
		switch cs.State {
		case StateQueued:
			queued++
			jobs += cs.Jobs
		case StateActivating, StateActive:
			active++
			jobs += cs.Jobs
		}
	}
	return queued, active, jobs
}

// admitLocked is the write controller: the delay threshold starts
// pushing back with growing Retry-After hints, the stop threshold
// (and the per-tenant quotas) reject outright. Modeled on storage
// engines' write controllers — the queue is the L0, submissions are
// writes, and the service sheds load before the backlog drowns it.
func (s *Service) admitLocked(tenant string, jobs int) *AdmissionError {
	depth := len(s.queue)
	if depth >= s.opts.StopThreshold {
		return &AdmissionError{
			Code:       "queue_stopped",
			RetryAfter: 30 * time.Second,
			Reason:     fmt.Sprintf("queue depth %d at stop threshold %d", depth, s.opts.StopThreshold),
		}
	}
	queued, _, inFlight := s.tenantUsageLocked(tenant)
	if queued >= s.opts.Quotas.MaxQueued {
		return &AdmissionError{
			Code:       "tenant_queue_quota",
			RetryAfter: 10 * time.Second,
			Reason:     fmt.Sprintf("tenant %s has %d campaigns queued (quota %d)", tenant, queued, s.opts.Quotas.MaxQueued),
		}
	}
	if inFlight+jobs > s.opts.Quotas.MaxJobs {
		return &AdmissionError{
			Code:       "tenant_jobs_quota",
			RetryAfter: 15 * time.Second,
			Reason: fmt.Sprintf("tenant %s would hold %d jobs in flight (quota %d)",
				tenant, inFlight+jobs, s.opts.Quotas.MaxJobs),
		}
	}
	if depth >= s.opts.DelayThreshold {
		after := time.Duration(1+depth-s.opts.DelayThreshold) * time.Second
		if after > 30*time.Second {
			after = 30 * time.Second
		}
		return &AdmissionError{
			Code:       "queue_delayed",
			RetryAfter: after,
			Reason:     fmt.Sprintf("queue depth %d past delay threshold %d", depth, s.opts.DelayThreshold),
		}
	}
	return nil
}

// pump is the activation loop: whenever nudged, it activates queued
// campaigns while fleet-wide and per-tenant concurrency allow,
// skipping (not blocking behind) tenants at their active quota.
func (s *Service) pump() {
	defer s.wg.Done()
	for {
		select {
		case <-s.pumpCh:
		case <-s.done:
			return
		}
		for {
			cs := s.nextActivatable()
			if cs == nil {
				break
			}
			s.activate(cs)
		}
	}
}

// nextActivatable claims the first queued campaign whose tenant has
// active capacity, flipping it to activating, or nil when the fleet
// is saturated or the queue yields nothing.
func (s *Service) nextActivatable() *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.crashed {
		return nil
	}
	activeTotal := 0
	activeByTenant := make(map[string]int)
	for _, cs := range s.campaigns {
		if cs.State == StateActivating || cs.State == StateActive {
			activeTotal++
			activeByTenant[cs.Tenant]++
		}
	}
	if activeTotal >= s.opts.MaxActiveTotal {
		return nil
	}
	for i, id := range s.queue {
		cs := s.campaigns[id]
		if cs == nil || cs.State != StateQueued {
			continue
		}
		if activeByTenant[cs.Tenant] >= s.opts.Quotas.MaxActive {
			continue
		}
		s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
		cs.State = StateActivating
		return cs
	}
	return nil
}

// activate builds the campaign's coordinator (planning golden runs —
// deliberately outside the service lock) and opens it for leasing.
func (s *Service) activate(cs *campaignState) {
	fail := func(err error) {
		s.logf("service: activating %s failed: %v", cs.ID, err)
		s.mu.Lock()
		cs.State = StateFailed
		cs.Error = err.Error()
		cs.DoneMs = time.Now().UnixMilli()
		s.appendJournalLocked(journalEvent{Op: "fail", ID: cs.ID, Error: cs.Error})
		s.mu.Unlock()
		s.kickPump()
		s.kickLease()
	}
	if cs.docPath != "" && cs.document == "" {
		data, err := os.ReadFile(cs.docPath)
		if err != nil {
			fail(fmt.Errorf("reloading document: %w", err))
			return
		}
		cs.document = string(data)
	}
	if cs.document != "" {
		if _, err := runner.Lookup(cs.Instance); err != nil {
			def, derr := runner.LoadSynthBytes([]byte(cs.document), cs.Instance)
			if derr != nil {
				fail(fmt.Errorf("compiling document: %w", derr))
				return
			}
			_ = runner.Register(def)
		}
	}
	// Adaptive re-parses from the journaled string; it was validated
	// at submission, so a failure here means a hand-edited journal.
	mode, err := campaign.ParseAdaptiveMode(cs.Adaptive)
	if err != nil {
		fail(err)
		return
	}
	coord, err := distrib.NewCoordinator(distrib.Config{
		Instance:       cs.Instance,
		Tier:           runner.Tier(cs.Tier),
		Dir:            filepath.Join(s.opts.Dir, "campaigns", cs.ID, "coord"),
		Units:          s.opts.Units,
		LeaseTTL:       s.opts.LeaseTTL,
		Resume:         cs.resumeCoord,
		Pull:           s.opts.Pull,
		RunBudgetSteps: cs.RunBudgetSteps,
		Adaptive:       mode,
		CIEpsilon:      cs.CIEpsilon,
		Crash:          s.opts.Crash,
		Campaign:       cs.ID,
		Document:       cs.document,
		OnWake:         s.kickLeaseAsync,
		Logf: func(format string, args ...any) {
			s.logf("["+cs.ID+"] "+format, args...)
		},
	})
	if err != nil {
		fail(err)
		return
	}
	s.mu.Lock()
	cs.coord = coord
	cs.handler = coord.Handler()
	cs.State = StateActive
	cs.StartedMs = time.Now().UnixMilli()
	s.appendJournalLocked(journalEvent{Op: "activate", ID: cs.ID})
	s.mu.Unlock()
	s.logf("service: %s active (%s/%s, %d jobs, tenant %s)",
		cs.ID, cs.Instance, cs.Tier, cs.Jobs, cs.Tenant)
	s.wg.Add(1)
	go s.monitor(cs)
	s.kickLease()
}

// kickLeaseAsync is the coordinator OnWake hook. It runs with the
// coordinator's lock held, so the service-lock work hops to a
// goroutine — the lock order stays coordinator→service nowhere and
// service→coordinator nowhere.
func (s *Service) kickLeaseAsync() { go s.kickLease() }

// monitor waits out one active campaign, assembles its result,
// persists the report and journals the terminal transition.
func (s *Service) monitor(cs *campaignState) {
	defer s.wg.Done()
	select {
	case <-cs.coord.Done():
	case <-s.done:
		return
	}
	rr, err := cs.coord.Assemble()
	s.mu.Lock()
	cs.DoneMs = time.Now().UnixMilli()
	if err != nil {
		cs.State = StateFailed
		cs.Error = err.Error()
		s.appendJournalLocked(journalEvent{Op: "fail", ID: cs.ID, Error: cs.Error})
	} else {
		cs.State = StateDone
		cs.result = rr
		s.appendJournalLocked(journalEvent{Op: "done", ID: cs.ID})
	}
	s.mu.Unlock()
	if err != nil {
		s.logf("service: %s failed assembling: %v", cs.ID, err)
	} else {
		s.logf("service: %s done (%d runs, %d unique failures)",
			cs.ID, rr.Metrics.ReplayedRuns+rr.Metrics.ExecutedRuns, rr.Metrics.UniqueFailures)
		s.persistReport(cs)
	}
	s.kickPump()
	s.kickLease()
}

// persistReport content-addresses the assembled report into the
// store under campaign/<id>/report.md — shared, deduplicated (two
// bit-identical campaign outcomes store one blob), surviving the
// process.
func (s *Service) persistReport(cs *campaignState) {
	if s.opts.Store == nil {
		return
	}
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, "campaigns", cs.ID, "coord", "report.md"))
	if err != nil {
		s.logf("service: %s: reading report for the store: %v", cs.ID, err)
		return
	}
	dig, err := s.opts.Store.PutBlob(data)
	if err != nil {
		s.logf("service: %s: storing report: %v", cs.ID, err)
		return
	}
	if err := s.opts.Store.SetRef("campaign/"+cs.ID+"/report.md", dig); err != nil {
		s.logf("service: %s: storing report ref: %v", cs.ID, err)
	}
}

// gcLoop periodically compacts the store: LRU memo eviction, journal
// snapshotting, orphan blob sweeping.
func (s *Service) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if st, err := s.opts.Store.GC(); err != nil {
				s.logf("service: store gc: %v", err)
			} else {
				s.logf("service: store gc: %d entries kept, %d evicted, %d blobs swept",
					st.Entries, st.EvictedEntries, st.SweptBlobs)
			}
		}
	}
}

// Campaign returns one campaign's info.
func (s *Service) Campaign(id string) (CampaignInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.campaigns[id]
	if cs == nil {
		return CampaignInfo{}, false
	}
	return cs.CampaignInfo, true
}

// Campaigns lists every campaign in submit order.
func (s *Service) Campaigns() []CampaignInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id].CampaignInfo)
	}
	return out
}

// Result returns a completed campaign's assembled result.
func (s *Service) Result(id string) (*runner.RunResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.campaigns[id]
	if cs == nil || cs.result == nil {
		return nil, false
	}
	return cs.result, true
}

// deficitLocked is the fair-share key: jobs granted per unit of
// weight. The tenant with the lowest deficit leases next.
func (s *Service) deficitLocked(tenant string) float64 {
	w := s.opts.TenantWeights[tenant]
	if w <= 0 {
		w = 1
	}
	return float64(s.tenantGranted[tenant]) / float64(w)
}

// leaseCandidatesLocked snapshots the active campaigns ordered by
// tenant deficit (stable, so one tenant's campaigns keep submit
// order).
func (s *Service) leaseCandidatesLocked() []*campaignState {
	var cands []*campaignState
	for _, id := range s.order {
		cs := s.campaigns[id]
		if cs.State == StateActive && cs.coord != nil {
			cands = append(cands, cs)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return s.deficitLocked(cands[i].Tenant) < s.deficitLocked(cands[j].Tenant)
	})
	return cands
}

// Close stops the pump, the GC loop and every campaign monitor,
// closes the coordinators' files (their journals stay resumable) and
// the service journal. Parked worker long-polls answer StatusDone so
// an in-process fleet drains.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.kickLease()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, cs := range s.campaigns {
		if cs.coord != nil && (cs.State == StateActive || cs.State == StateActivating) {
			errs = append(errs, cs.coord.Close())
		}
	}
	if s.journal != nil {
		errs = append(errs, s.journal.Close())
		s.journal = nil
	}
	return errors.Join(errs...)
}
