// Package stats provides the small statistical helpers used by the
// fault-injection campaign and the ablation experiments: means,
// standard deviations, Wilson confidence intervals for estimated
// probabilities (permeability values are proportions n_err/n_inj), and
// rank-agreement via Kendall's tau (used to check the paper's Section
// 6 claim that module orderings are maintained across error models).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n-1 denominator) of
// xs. A single sample has zero deviation.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Low, High float64
}

// WilsonInterval returns the Wilson score interval for a proportion
// with successes out of trials at the given z value (1.96 for 95%).
// It is well-behaved for proportions near 0 and 1, which permeability
// estimates frequently are (many pairs are exactly 0.000 or 1.000).
func WilsonInterval(successes, trials int, z float64) (Interval, error) {
	if trials <= 0 {
		return Interval{}, errors.New("stats: trials must be positive")
	}
	if successes < 0 || successes > trials {
		return Interval{}, errors.New("stats: successes out of range")
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	centre := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	low := (centre - margin) / denom
	high := (centre + margin) / denom
	if low < 0 {
		low = 0
	}
	if high > 1 {
		high = 1
	}
	return Interval{Low: low, High: high}, nil
}

// RankOf returns, for each name, its 1-based rank when scores are
// ordered descending. Equal scores share the smallest rank of the tie
// group ("competition" ranking: 1, 2, 2, 4).
func RankOf(scores map[string]float64) map[string]int {
	type kv struct {
		name  string
		score float64
	}
	list := make([]kv, 0, len(scores))
	for n, s := range scores {
		list = append(list, kv{n, s})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].score != list[b].score {
			return list[a].score > list[b].score
		}
		return list[a].name < list[b].name
	})
	ranks := make(map[string]int, len(list))
	for i, e := range list {
		rank := i + 1
		if i > 0 && e.score == list[i-1].score {
			rank = ranks[list[i-1].name]
		}
		ranks[e.name] = rank
	}
	return ranks
}

// KendallTau computes Kendall's rank-correlation coefficient (tau-a)
// between two score maps over the same key set. It returns an error if
// the key sets differ or have fewer than two elements. tau = 1 means
// identical ordering, -1 fully reversed.
func KendallTau(a, b map[string]float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: score maps have different sizes")
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; !ok {
			return 0, errors.New("stats: score maps have different keys")
		}
		keys = append(keys, k)
	}
	if len(keys) < 2 {
		return 0, errors.New("stats: need at least two keys")
	}
	sort.Strings(keys)
	concordant, discordant := 0, 0
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			da := a[keys[i]] - a[keys[j]]
			db := b[keys[i]] - b[keys[j]]
			prod := da * db
			switch {
			case prod > 0:
				concordant++
			case prod < 0:
				discordant++
			}
		}
	}
	pairs := len(keys) * (len(keys) - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using the
// nearest-rank method on a sorted copy. p=0 is the minimum, p=1 the
// maximum.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: percentile must be in [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], nil
}

// MinMax returns the smallest and largest value of xs.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}
