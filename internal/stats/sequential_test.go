package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInvNorm(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.95996},
		{0.995, 2.57583},
		{0.999, 3.09023},
		{0.025, -1.95996},
	}
	for _, tt := range tests {
		got, err := InvNorm(tt.p)
		if err != nil {
			t.Fatalf("InvNorm(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("InvNorm(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := InvNorm(bad); err == nil {
			t.Errorf("InvNorm(%v) succeeded", bad)
		}
	}
}

func TestBonferroniZ(t *testing.T) {
	// Marginal: m=1 at alpha=0.05 is the familiar 1.96.
	z, err := BonferroniZ(0.05, 1)
	if err != nil || math.Abs(z-1.95996) > 1e-4 {
		t.Errorf("BonferroniZ(0.05, 1) = %v, %v; want ~1.96", z, err)
	}
	// The paper's 25 simultaneous pairs: 1 - 0.05/50 = 0.999 quantile.
	z25, err := BonferroniZ(0.05, 25)
	if err != nil || math.Abs(z25-3.09023) > 1e-4 {
		t.Errorf("BonferroniZ(0.05, 25) = %v, %v; want ~3.090", z25, err)
	}
	if z25 <= z {
		t.Error("correction for more comparisons must widen z")
	}
	if _, err := BonferroniZ(0, 5); err == nil {
		t.Error("BonferroniZ(alpha=0) succeeded")
	}
	if _, err := BonferroniZ(0.05, 0); err == nil {
		t.Error("BonferroniZ(m=0) succeeded")
	}
}

func TestClopperPearsonKnownValues(t *testing.T) {
	// Canonical textbook value: 8/10 at 95% is approx [0.444, 0.975].
	iv, err := ClopperPearsonInterval(8, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Low-0.4439) > 0.002 || math.Abs(iv.High-0.9748) > 0.002 {
		t.Errorf("CP(8/10) = %+v, want ~[0.444, 0.975]", iv)
	}
	// The "rule of three": 0/n at 95% has upper bound 1-(α/2)^(1/n),
	// approx 3/n for large n.
	zero, err := ClopperPearsonInterval(0, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.025, 1.0/100)
	if zero.Low != 0 || math.Abs(zero.High-want) > 1e-6 {
		t.Errorf("CP(0/100) = %+v, want [0, %v]", zero, want)
	}
	if _, err := ClopperPearsonInterval(1, 0, 0.05); err == nil {
		t.Error("CP with zero trials succeeded")
	}
	if _, err := ClopperPearsonInterval(5, 4, 0.05); err == nil {
		t.Error("CP with successes > trials succeeded")
	}
	if _, err := ClopperPearsonInterval(2, 4, 0); err == nil {
		t.Error("CP with alpha=0 succeeded")
	}
}

// TestClopperPearsonDegenerate: the edge cases the campaign hits
// constantly — pairs with permeability exactly 0 or exactly 1.
func TestClopperPearsonDegenerate(t *testing.T) {
	for _, n := range []int{1, 5, 50, 4000} {
		zero, err := ClopperPearsonInterval(0, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if zero.Low != 0 {
			t.Errorf("CP(0/%d).Low = %v, want exactly 0", n, zero.Low)
		}
		if zero.High <= 0 || zero.High > 1 {
			t.Errorf("CP(0/%d).High = %v out of (0,1]", n, zero.High)
		}
		full, err := ClopperPearsonInterval(n, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if full.High != 1 {
			t.Errorf("CP(%d/%d).High = %v, want exactly 1", n, n, full.High)
		}
		if full.Low >= 1 || full.Low < 0 {
			t.Errorf("CP(%d/%d).Low = %v out of [0,1)", n, n, full.Low)
		}
		// Degeneracy is symmetric: CP(0/n) mirrors CP(n/n).
		if math.Abs((1-full.Low)-zero.High) > 1e-9 {
			t.Errorf("CP(0/%d)/CP(%d/%d) not symmetric: %v vs %v",
				n, n, n, zero.High, 1-full.Low)
		}
	}
}

// TestClopperPearsonContainsEstimate: the exact interval always
// contains the point estimate and stays inside [0,1].
func TestClopperPearsonContainsEstimate(t *testing.T) {
	prop := func(s, n uint8) bool {
		trials := int(n%60) + 1
		successes := int(s) % (trials + 1)
		iv, err := ClopperPearsonInterval(successes, trials, 0.05)
		if err != nil {
			return false
		}
		p := float64(successes) / float64(trials)
		return iv.Low-1e-12 <= p && p <= iv.High+1e-12 &&
			iv.Low >= 0 && iv.High <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestIntervalCoverage simulates Bernoulli streams and checks that
// both interval families achieve (at least close to) nominal
// coverage. Clopper-Pearson is exact, so its empirical coverage must
// be >= nominal up to simulation noise; Wilson is approximate and is
// allowed a small deficit.
func TestIntervalCoverage(t *testing.T) {
	const (
		reps  = 400
		alpha = 0.05
	)
	rng := rand.New(rand.NewSource(20010701)) // DSN 2001 publication week
	for _, p := range []float64{0.02, 0.1, 0.35, 0.5, 0.8, 0.97} {
		for _, n := range []int{25, 100, 400} {
			wilsonHits, cpHits := 0, 0
			for r := 0; r < reps; r++ {
				successes := 0
				for i := 0; i < n; i++ {
					if rng.Float64() < p {
						successes++
					}
				}
				w, err := WilsonInterval(successes, n, 1.959964)
				if err != nil {
					t.Fatal(err)
				}
				if w.Low <= p && p <= w.High {
					wilsonHits++
				}
				cp, err := ClopperPearsonInterval(successes, n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				if cp.Low <= p && p <= cp.High {
					cpHits++
				}
			}
			// Simulation noise over 400 reps at 95% nominal:
			// sd ~ 1.1%, so 92% is a ~3 sd floor for the exact CP
			// interval. Wilson's true coverage oscillates around
			// nominal and genuinely dips below 95% at some (p, n),
			// so its floor is looser — the conservative stopping
			// rule unions it with CP precisely for this reason.
			if cov := float64(cpHits) / reps; cov < 0.92 {
				t.Errorf("CP coverage at p=%v n=%d: %v < 0.92", p, n, cov)
			}
			if cov := float64(wilsonHits) / reps; cov < 0.88 {
				t.Errorf("Wilson coverage at p=%v n=%d: %v < 0.88", p, n, cov)
			}
		}
	}
}

// TestIntervalMonotonicNarrowing: at a fixed observed proportion, both
// interval families narrow monotonically as the sample grows — the
// property the sequential stopping rule relies on to terminate.
func TestIntervalMonotonicNarrowing(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1} {
		prevWilson, prevCP := math.Inf(1), math.Inf(1)
		for _, n := range []int{8, 16, 32, 64, 128, 256, 1024, 4096} {
			k := int(math.Round(frac * float64(n)))
			w, err := WilsonInterval(k, n, 3.09)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := ClopperPearsonInterval(k, n, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			if hw := w.HalfWidth(); hw >= prevWilson {
				t.Errorf("Wilson half-width not narrowing at frac=%v n=%d: %v >= %v",
					frac, n, hw, prevWilson)
			} else {
				prevWilson = hw
			}
			if hw := cp.HalfWidth(); hw >= prevCP {
				t.Errorf("CP half-width not narrowing at frac=%v n=%d: %v >= %v",
					frac, n, hw, prevCP)
			} else {
				prevCP = hw
			}
		}
		if prevWilson > 0.05 || prevCP > 0.05 {
			t.Errorf("frac=%v: 4096 samples leave half-widths %v/%v > ε=0.05",
				frac, prevWilson, prevCP)
		}
	}
}

// TestStoppingInterval: the stopping interval is the union of Wilson
// and Clopper-Pearson, hence conservative with respect to both, and
// it closes below ε=0.05 within the sample counts the adaptive
// campaign budgets for.
func TestStoppingInterval(t *testing.T) {
	alpha := 0.05 / 25 // the paper's Bonferroni share per pair
	for _, tc := range []struct{ k, n int }{
		{0, 300}, {300, 300}, {7, 900}, {500, 1000}, {999, 1000},
	} {
		iv, err := StoppingInterval(tc.k, tc.n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		z, _ := InvNorm(1 - alpha/2)
		w, _ := WilsonInterval(tc.k, tc.n, z)
		cp, _ := ClopperPearsonInterval(tc.k, tc.n, alpha)
		if iv.Low > w.Low || iv.Low > cp.Low || iv.High < w.High || iv.High < cp.High {
			t.Errorf("stopping interval %+v for %d/%d does not contain Wilson %+v and CP %+v",
				iv, tc.k, tc.n, w, cp)
		}
	}
	// A degenerate pair (0 errors) closes after a few hundred fired
	// samples even at the corrected level — the core of the adaptive
	// speedup for the many all-zero pairs.
	iv, err := StoppingInterval(0, 300, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth() > 0.05 {
		t.Errorf("degenerate pair still open after 300 samples: half-width %v", iv.HalfWidth())
	}
	// A worst-case p=0.5 pair needs more, but still closes within the
	// full fixed-matrix budget of 4000.
	iv, err = StoppingInterval(2000, 4000, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth() > 0.05 {
		t.Errorf("worst-case pair open after 4000 samples: half-width %v", iv.HalfWidth())
	}
	if _, err := StoppingInterval(1, 0, alpha); err == nil {
		t.Error("StoppingInterval with zero trials succeeded")
	}
}

func TestIntervalUnion(t *testing.T) {
	a := Interval{Low: 0.2, High: 0.6}
	b := Interval{Low: 0.1, High: 0.5}
	got := a.Union(b)
	if got.Low != 0.1 || got.High != 0.6 {
		t.Errorf("Union = %+v, want [0.1, 0.6]", got)
	}
	if hw := got.HalfWidth(); math.Abs(hw-0.25) > 1e-12 {
		t.Errorf("HalfWidth = %v, want 0.25", hw)
	}
}
