// Sequential estimation support: exact (Clopper-Pearson) binomial
// intervals, the inverse normal CDF needed for multiple-testing
// corrected z values, and the conservative stopping interval used by
// the adaptive campaign scheduler (internal/campaign, adaptive mode).
//
// The adaptive scheduler stops sampling a (module, signal) pair when
// its permeability estimate is pinned to a chosen precision ε. Because
// many pairs are tested simultaneously, the per-pair confidence level
// is Bonferroni-corrected: at family level α and m pairs each pair is
// estimated at level 1-α/m, so the probability that *any* reported
// interval misses its true permeability stays below α regardless of
// how many pairs the campaign tracks. The stopping interval itself is
// the union of the Wilson score interval and the Clopper-Pearson
// exact interval — Wilson is tight in the middle of [0,1], CP is
// trustworthy at the degenerate edges where permeabilities live, and
// taking the wider of the two at every boundary makes the stopping
// rule conservative with respect to both.
package stats

import (
	"errors"
	"math"
)

// InvNorm returns the inverse of the standard normal CDF: the z value
// with P(Z <= z) = p. It is used to derive Bonferroni-corrected
// critical values (z = InvNorm(1 - α/(2m)) for m simultaneous
// two-sided intervals at family level α).
func InvNorm(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, errors.New("stats: InvNorm needs p in (0,1)")
	}
	return math.Sqrt2 * math.Erfinv(2*p-1), nil
}

// BonferroniZ returns the two-sided critical z value for one of m
// simultaneous intervals at family confidence level 1-alpha:
// InvNorm(1 - alpha/(2m)). With alpha=0.05 and m=25 (the paper's
// pair count) this is ~3.09 instead of the marginal 1.96.
func BonferroniZ(alpha float64, m int) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, errors.New("stats: alpha must be in (0,1)")
	}
	if m < 1 {
		return 0, errors.New("stats: need at least one comparison")
	}
	return InvNorm(1 - alpha/(2*float64(m)))
}

// ClopperPearsonInterval returns the exact (Clopper-Pearson) two-sided
// confidence interval for a binomial proportion with successes out of
// trials at confidence level 1-alpha. Unlike Wilson it guarantees
// coverage >= nominal for every true p and every n, at the cost of
// being wider; the campaign's stopping rule uses both.
func ClopperPearsonInterval(successes, trials int, alpha float64) (Interval, error) {
	if trials <= 0 {
		return Interval{}, errors.New("stats: trials must be positive")
	}
	if successes < 0 || successes > trials {
		return Interval{}, errors.New("stats: successes out of range")
	}
	if alpha <= 0 || alpha >= 1 {
		return Interval{}, errors.New("stats: alpha must be in (0,1)")
	}
	k, n := float64(successes), float64(trials)
	iv := Interval{Low: 0, High: 1}
	// Lower bound: the p with P(X >= k | p) = alpha/2, i.e. the
	// alpha/2 quantile of Beta(k, n-k+1); 0 when k = 0.
	if successes > 0 {
		iv.Low = betaQuantile(alpha/2, k, n-k+1)
	}
	// Upper bound: the p with P(X <= k | p) = alpha/2, i.e. the
	// 1-alpha/2 quantile of Beta(k+1, n-k); 1 when k = n.
	if successes < trials {
		iv.High = betaQuantile(1-alpha/2, k+1, n-k)
	}
	return iv, nil
}

// HalfWidth returns half the interval's span — the "±" the interval
// asserts around its midpoint. The sequential stopping rule compares
// this against ε.
func (iv Interval) HalfWidth() float64 {
	return (iv.High - iv.Low) / 2
}

// Union returns the smallest interval containing both iv and other.
func (iv Interval) Union(other Interval) Interval {
	out := iv
	if other.Low < out.Low {
		out.Low = other.Low
	}
	if other.High > out.High {
		out.High = other.High
	}
	return out
}

// StoppingInterval returns the conservative interval the sequential
// scheduler uses: the union of the Wilson score interval and the
// Clopper-Pearson exact interval, both at per-pair confidence level
// 1-alpha (callers pass an already-corrected alpha, e.g. family
// alpha / m). Sampling for a pair may stop once
// StoppingInterval(...).HalfWidth() <= ε.
func StoppingInterval(successes, trials int, alpha float64) (Interval, error) {
	z, err := InvNorm(1 - alpha/2)
	if err != nil {
		return Interval{}, err
	}
	w, err := WilsonInterval(successes, trials, z)
	if err != nil {
		return Interval{}, err
	}
	cp, err := ClopperPearsonInterval(successes, trials, alpha)
	if err != nil {
		return Interval{}, err
	}
	return w.Union(cp), nil
}

// betaQuantile inverts the regularized incomplete beta function
// I_x(a, b) = p by bisection. I_x is monotone increasing in x, so 200
// halvings pin the quantile far below any tolerance the campaign
// cares about. a, b >= 1 in both Clopper-Pearson uses, so there are
// no integrable singularities to dodge.
func betaQuantile(p, a, b float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-15 {
			break
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) via the standard continued-fraction expansion (evaluated
// with the modified Lentz method), switching to the symmetric form
// I_x(a,b) = 1 - I_{1-x}(b,a) where the fraction converges faster.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	front := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm, m2 := float64(m), float64(2*m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
