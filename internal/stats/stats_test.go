package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		got, err := Mean(tt.xs)
		if err != nil || got != tt.want {
			t.Errorf("Mean(%v) = %v, %v; want %v", tt.xs, got, err, tt.want)
		}
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) succeeded")
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	one, err := StdDev([]float64{42})
	if err != nil || one != 0 {
		t.Errorf("StdDev(single) = %v, %v; want 0", one, err)
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) succeeded")
	}
}

func TestWilsonInterval(t *testing.T) {
	iv, err := WilsonInterval(8, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	// Known Wilson 95% interval for 8/10: approx [0.490, 0.943].
	if math.Abs(iv.Low-0.490) > 0.01 || math.Abs(iv.High-0.943) > 0.01 {
		t.Errorf("Wilson(8/10) = %+v, want ~[0.490, 0.943]", iv)
	}
	// Degenerate proportions stay in [0,1] and are non-trivial.
	zero, err := WilsonInterval(0, 20, 1.96)
	if err != nil || zero.Low != 0 || zero.High <= 0 || zero.High > 0.2 {
		t.Errorf("Wilson(0/20) = %+v, %v", zero, err)
	}
	full, err := WilsonInterval(20, 20, 1.96)
	if err != nil || full.High < 0.999 || full.Low >= 1 || full.Low < 0.8 {
		t.Errorf("Wilson(20/20) = %+v, %v", full, err)
	}
	if _, err := WilsonInterval(1, 0, 1.96); err == nil {
		t.Error("WilsonInterval with zero trials succeeded")
	}
	if _, err := WilsonInterval(5, 4, 1.96); err == nil {
		t.Error("WilsonInterval with successes > trials succeeded")
	}
	if _, err := WilsonInterval(-1, 4, 1.96); err == nil {
		t.Error("WilsonInterval with negative successes succeeded")
	}
}

// TestWilsonCoversPointEstimate: the interval always contains p̂.
func TestWilsonCoversPointEstimate(t *testing.T) {
	prop := func(s, n uint8) bool {
		trials := int(n%50) + 1
		successes := int(s) % (trials + 1)
		iv, err := WilsonInterval(successes, trials, 1.96)
		if err != nil {
			return false
		}
		p := float64(successes) / float64(trials)
		return iv.Low <= p+1e-12 && p <= iv.High+1e-12 && iv.Low >= 0 && iv.High <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRankOf(t *testing.T) {
	ranks := RankOf(map[string]float64{"a": 3, "b": 1, "c": 3, "d": 0.5})
	want := map[string]int{"a": 1, "c": 1, "b": 3, "d": 4}
	for k, w := range want {
		if ranks[k] != w {
			t.Errorf("rank[%s] = %d, want %d", k, ranks[k], w)
		}
	}
}

func TestKendallTau(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2, "z": 3}
	same := map[string]float64{"x": 10, "y": 20, "z": 30}
	rev := map[string]float64{"x": 3, "y": 2, "z": 1}
	tau, err := KendallTau(a, same)
	if err != nil || tau != 1 {
		t.Errorf("tau(same order) = %v, %v; want 1", tau, err)
	}
	tau, err = KendallTau(a, rev)
	if err != nil || tau != -1 {
		t.Errorf("tau(reversed) = %v, %v; want -1", tau, err)
	}
	if _, err := KendallTau(a, map[string]float64{"x": 1}); err == nil {
		t.Error("KendallTau with size mismatch succeeded")
	}
	if _, err := KendallTau(a, map[string]float64{"x": 1, "y": 2, "w": 3}); err == nil {
		t.Error("KendallTau with key mismatch succeeded")
	}
	if _, err := KendallTau(map[string]float64{"x": 1}, map[string]float64{"x": 2}); err == nil {
		t.Error("KendallTau with one key succeeded")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v, %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) succeeded")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.9, 5}, {1, 5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil || got != tt.want {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tt.p, got, err, tt.want)
		}
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("Percentile(nil) succeeded")
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Error("Percentile(1.5) succeeded")
	}
	// The input is not mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}
