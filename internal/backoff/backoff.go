// Package backoff is the one retry policy shared by every layer that
// talks to something unreliable: the distributed worker's coordinator
// round-trips, the coordinator's own transient I/O, and the runner's
// journal/artifact writes. Delays use full jitter — each wait is
// drawn uniformly from [0, min(Cap, Base<<attempt)] — so a fleet of
// workers whose coordinator just restarted spreads its retries out
// instead of arriving as a synchronized thundering herd, and every
// wait is context-aware so shutdown and test teardown never sit out a
// backoff ladder.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Defaults applied by Policy methods when a field is zero.
const (
	DefaultBase     = 100 * time.Millisecond
	DefaultCap      = 2 * time.Second
	DefaultAttempts = 10
)

// Policy describes a capped exponential backoff with full jitter. The
// zero value is usable and selects the defaults above.
type Policy struct {
	// Base is the ceiling of the first delay; each attempt doubles it
	// up to Cap.
	Base time.Duration
	// Cap bounds every delay.
	Cap time.Duration
	// Attempts is the maximum number of times Do invokes the
	// operation (so Attempts-1 retries).
	Attempts int
	// Int63n draws a uniform random int in [0, n). Nil uses the
	// shared seeded math/rand source; tests inject a deterministic
	// one.
	Int63n func(n int64) int64
	// Sleep waits between attempts. Nil uses a timer that aborts when
	// ctx is done; tests inject a recorder.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every scheduled retry before
	// its delay elapses — for logging which operation is limping.
	OnRetry func(attempt int, delay time.Duration, err error)
}

func (p Policy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return DefaultBase
}

func (p Policy) cap() time.Duration {
	if p.Cap > 0 {
		return p.Cap
	}
	return DefaultCap
}

func (p Policy) attempts() int {
	if p.Attempts > 0 {
		return p.Attempts
	}
	return DefaultAttempts
}

// Delay returns the full-jitter delay for the given zero-based
// attempt: uniform in [0, min(Cap, Base<<attempt)].
func (p Policy) Delay(attempt int) time.Duration {
	ceiling := p.base()
	for i := 0; i < attempt && ceiling < p.cap(); i++ {
		ceiling *= 2
	}
	if ceiling > p.cap() {
		ceiling = p.cap()
	}
	draw := p.Int63n
	if draw == nil {
		draw = rand.Int63n
	}
	return time.Duration(draw(int64(ceiling) + 1))
}

// sleepCtx is the default context-aware sleeper.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op up to Attempts times. A nil error returns immediately;
// an error for which retryable returns false returns immediately
// (retryable nil means every error is retryable); otherwise Do sleeps
// a jittered delay and tries again. A done context aborts the wait
// and returns the last operation error (the context error when op
// never ran).
func (p Policy) Do(ctx context.Context, retryable func(error) bool, op func() error) error {
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return err
		}
		if err = op(); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if attempt == p.attempts()-1 {
			break
		}
		delay := p.Delay(attempt)
		if p.OnRetry != nil {
			p.OnRetry(attempt, delay, err)
		}
		if sleep(ctx, delay) != nil {
			return err
		}
	}
	return err
}
