package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fixedDraw always returns max-1, making Delay return the full
// ceiling so ladders are assertable.
func fixedDraw(n int64) int64 { return n - 1 }

func TestDelayLadderIsCappedFullJitter(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Int63n: fixedDraw}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) ceiling = %v, want %v", attempt, got, w)
		}
	}
	// The draw is uniform over the ceiling: a zero draw is a zero
	// delay.
	p.Int63n = func(int64) int64 { return 0 }
	if got := p.Delay(5); got != 0 {
		t.Errorf("Delay with zero draw = %v, want 0", got)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		Attempts: 5,
		Int63n:   fixedDraw,
		Sleep:    func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	calls := 0
	err := p.Do(context.Background(), nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Errorf("calls = %d (want 3), sleeps = %d (want 2)", calls, len(slept))
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(context.Background(), func(err error) bool { return !errors.Is(err, fatal) }, func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Errorf("err = %v, calls = %d; want the fatal error after 1 call", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	transient := errors.New("still down")
	calls, retries := 0, 0
	p := Policy{
		Attempts: 4,
		Int63n:   fixedDraw,
		Sleep:    func(context.Context, time.Duration) error { return nil },
		OnRetry:  func(int, time.Duration, error) { retries++ },
	}
	err := p.Do(context.Background(), nil, func() error { calls++; return transient })
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want the last transient failure", err)
	}
	if calls != 4 || retries != 3 {
		t.Errorf("calls = %d (want 4), retries observed = %d (want 3)", calls, retries)
	}
}

func TestDoAbortsPromptlyOnContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("down")
	calls := 0
	p := Policy{Attempts: 100, Base: time.Hour, Cap: time.Hour, Int63n: fixedDraw}
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, nil, func() error { calls++; return transient })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do took %v to abort — the backoff wait ignored the context", elapsed)
	}
	if !errors.Is(err, transient) {
		t.Errorf("err = %v, want the last operation error", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (context cancelled during the first wait)", calls)
	}
}

func TestDoCancelledBeforeFirstCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Policy{}.Do(ctx, nil, func() error { t.Fatal("op ran on a dead context"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
