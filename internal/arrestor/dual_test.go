package arrestor

import (
	"reflect"
	"testing"
	"testing/quick"

	"propane/internal/physics"
	"propane/internal/sim"
)

func TestDualTopology(t *testing.T) {
	sys := DualTopology()
	if got, want := sys.TotalPairs(), 31; got != want {
		t.Errorf("TotalPairs() = %d, want %d", got, want)
	}
	wantIn := []string{SigADC, SigADCB, SigPACNT, SigTCNT, SigTIC1}
	if got := sys.SystemInputs(); !reflect.DeepEqual(got, wantIn) {
		t.Errorf("SystemInputs() = %v, want %v", got, wantIn)
	}
	wantOut := []string{SigTOC2, SigTOC2B}
	if got := sys.SystemOutputs(); !reflect.DeepEqual(got, wantOut) {
		t.Errorf("SystemOutputs() = %v, want %v", got, wantOut)
	}
	// SetValue fans out to both V_REG and COM_TX.
	recv := sys.Receivers(SigSetValue)
	if len(recv) != 2 {
		t.Errorf("Receivers(SetValue) = %v, want V_REG and COM_TX", recv)
	}
}

func TestParity15(t *testing.T) {
	tests := []struct {
		v    uint16
		want uint16
	}{
		{0x0000, 0},
		{0x0002, 1},
		{0x0006, 0},
		{0xFFFE, 1}, // 15 one-bits above bit 0
		{0x8000, 1},
		{0x8002, 0},
	}
	for _, tt := range tests {
		if got := parity15(tt.v); got != tt.want {
			t.Errorf("parity15(%#x) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

// TestParityDetectsEverySingleFlip: the property behind the COM_RX
// containment barrier — flipping any single bit of a well-formed frame
// breaks the parity relation.
func TestParityDetectsEverySingleFlip(t *testing.T) {
	prop := func(v uint16, bit uint8) bool {
		payload := v & 0xFFFE
		frame := payload | parity15(payload)
		corrupted := frame ^ (1 << (bit % 16))
		return parity15(corrupted&0xFFFE) != corrupted&1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestComLinkEndToEnd(t *testing.T) {
	bus := sim.NewBus()
	setValue := bus.Register(SigSetValue)
	frame := bus.Register(SigTxFrame)
	setValueB := bus.Register(SigSetValueB)
	tx := &comTX{moduleBase: moduleBase{name: ModComTX}, in: setValue, out: frame}
	rx := &comRX{moduleBase: moduleBase{name: ModComRX}, in: frame, out: setValueB}

	setValue.Write(12346)
	tx.Step(0)
	rx.Step(0)
	// The low bit carries parity: payload is the value with bit 0
	// cleared.
	if got := setValueB.Read(); got != 12346 {
		t.Errorf("received %d, want 12346", got)
	}
	// Corrupt the frame: the receiver holds the last good value.
	if err := frame.FlipBit(9); err != nil {
		t.Fatal(err)
	}
	rx.Step(1)
	if got := setValueB.Read(); got != 12346 {
		t.Errorf("after corrupted frame: %d, want held 12346", got)
	}
	// Next good frame resumes tracking.
	setValue.Write(20000)
	tx.Step(2)
	rx.Step(2)
	if got := setValueB.Read(); got != 20000 {
		t.Errorf("after recovery: %d, want 20000", got)
	}
}

func TestDualConfigValidation(t *testing.T) {
	if err := DefaultDualConfig().Validate(); err != nil {
		t.Fatalf("DefaultDualConfig invalid: %v", err)
	}
	c := DefaultDualConfig()
	c.Physics.NumBrakes = 1
	if err := c.Validate(); err == nil {
		t.Error("dual config with one brake accepted")
	}
	c = DefaultDualConfig()
	c.SlotVRegB = NumSlots
	if err := c.Validate(); err == nil {
		t.Error("dual config with out-of-range slot accepted")
	}
	c = DefaultDualConfig()
	c.MaxSlew = 0
	if err := c.Validate(); err == nil {
		t.Error("dual config with invalid base accepted")
	}
	if _, err := NewDualInstance(c, physics.TestCase{MassKg: 10000, VelocityMS: 50}, nil); err == nil {
		t.Error("NewDualInstance accepted invalid config")
	}
}

func TestDualClosedLoop(t *testing.T) {
	inst, err := NewDualInstance(DefaultDualConfig(), physics.TestCase{MassKg: 14000, VelocityMS: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(6000)
	bus := inst.Bus()
	read := func(name string) uint16 {
		s, err := bus.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		return s.Read()
	}
	// Both nodes drive their valves.
	if read(SigTOC2) == 0 || read(SigTOC2B) == 0 {
		t.Errorf("TOC2=%d TOC2_B=%d, want both engaged", read(SigTOC2), read(SigTOC2B))
	}
	// The slave follows the master's set point (modulo the parity
	// quantisation of the low bit and the one-cycle link delay).
	sv, svB := read(SigSetValue), read(SigSetValueB)
	diff := int32(sv) - int32(svB)
	if diff < 0 {
		diff = -diff
	}
	if diff > 4096 {
		t.Errorf("slave set point %d far from master %d", svB, sv)
	}
	// Both brake circuits pressurised.
	p0, err := inst.World().BrakePressureFrac(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := inst.World().BrakePressureFrac(1)
	if err != nil {
		t.Fatal(err)
	}
	if p0 <= 0 || p1 <= 0 {
		t.Errorf("brake pressures %v/%v, want both positive", p0, p1)
	}
	// The aircraft decelerated.
	if inst.World().VelocityMS() >= 60 {
		t.Error("dual-node system did not decelerate the aircraft")
	}
}

func TestDualDeterminism(t *testing.T) {
	run := func() map[string]uint16 {
		inst, err := NewDualInstance(DefaultDualConfig(), physics.TestCase{MassKg: 9000, VelocityMS: 45}, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(1500)
		return inst.Bus().Snapshot()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("dual runs diverged")
	}
}

func TestBrakeAccessorErrors(t *testing.T) {
	w, err := physics.NewWorld(physics.DefaultConfig(), physics.TestCase{MassKg: 10000, VelocityMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumBrakes() != 1 {
		t.Errorf("NumBrakes = %d, want 1", w.NumBrakes())
	}
	if err := w.SetBrakeCommand(1, 0.5); err == nil {
		t.Error("SetBrakeCommand(1) on single-brake world succeeded")
	}
	if _, err := w.BrakePressureFrac(-1); err == nil {
		t.Error("BrakePressureFrac(-1) succeeded")
	}
}
