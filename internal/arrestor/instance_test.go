package arrestor

import (
	"reflect"
	"testing"

	"propane/internal/physics"
	"propane/internal/sim"
)

func TestTopologyMatchesPaper(t *testing.T) {
	sys := Topology()
	if got, want := sys.TotalPairs(), 25; got != want {
		t.Errorf("TotalPairs() = %d, want %d (Section 8)", got, want)
	}
	if got, want := sys.SystemInputs(), []string{SigADC, SigPACNT, SigTCNT, SigTIC1}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemInputs() = %v, want %v", got, want)
	}
	if got, want := sys.SystemOutputs(), []string{SigTOC2}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemOutputs() = %v, want %v", got, want)
	}
	// The two module-local feedback loops: ms_slot_nbr in CLOCK and i
	// in CALC.
	for _, mod := range []string{ModClock, ModCalc} {
		if !sys.HasLocalFeedback(mod) {
			t.Errorf("HasLocalFeedback(%s) = false, want true", mod)
		}
	}
	for _, mod := range []string{ModDistS, ModPresS, ModVReg, ModPresA} {
		if sys.HasLocalFeedback(mod) {
			t.Errorf("HasLocalFeedback(%s) = true, want false", mod)
		}
	}
	// Paper numbering spot checks: PACNT is input 1 of DIST_S, mscnt
	// is input 2 of CALC, SetValue is output 2 of CALC.
	ds, err := sys.Module(ModDistS)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.InputIndex(SigPACNT); got != 1 {
		t.Errorf("PACNT input index = %d, want 1", got)
	}
	calcMod, err := sys.Module(ModCalc)
	if err != nil {
		t.Fatal(err)
	}
	if got := calcMod.InputIndex(SigMscnt); got != 2 {
		t.Errorf("mscnt input index = %d, want 2", got)
	}
	if got := calcMod.OutputIndex(SigSetValue); got != 2 {
		t.Errorf("SetValue output index = %d, want 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero ticks":         func(c *Config) { c.TCNTTicksPerMs = 0 },
		"zero slow gap":      func(c *Config) { c.SlowGapTicks = 0 },
		"zero persistence":   func(c *Config) { c.StopPersistMs = 0 },
		"non-increasing cps": func(c *Config) { c.CheckpointPulses[2] = c.CheckpointPulses[1] },
		"zero window":        func(c *Config) { c.WindowMs = 0 },
		"zero vref":          func(c *Config) { c.VRefPulses = 0 },
		"zero slew":          func(c *Config) { c.MaxSlew = 0 },
		"slot out of range":  func(c *Config) { c.SlotVReg = NumSlots },
		"negative slot":      func(c *Config) { c.SlotPresS = -1 },
		"duplicate slots":    func(c *Config) { c.SlotPresA = c.SlotVReg },
		"bad physics":        func(c *Config) { c.Physics.ValveTauS = 0 },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			c := DefaultConfig()
			mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() accepted invalid config")
			}
		})
	}
}

func TestNewInstanceRejectsInvalid(t *testing.T) {
	bad := DefaultConfig()
	bad.MaxSlew = 0
	if _, err := NewInstance(bad, physics.TestCase{MassKg: 10000, VelocityMS: 50}, nil); err == nil {
		t.Error("NewInstance accepted invalid config")
	}
	if _, err := NewInstance(DefaultConfig(), physics.TestCase{}, nil); err == nil {
		t.Error("NewInstance accepted invalid test case")
	}
}

func TestInstanceDeterminism(t *testing.T) {
	run := func() map[string]uint16 {
		inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 14000, VelocityMS: 60}, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(2000)
		return inst.Bus().Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestClosedLoopArrestment(t *testing.T) {
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 11000, VelocityMS: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v0 := inst.World().VelocityMS()
	inst.Run(6000)

	if got := inst.World().VelocityMS(); got >= v0/2 {
		t.Errorf("velocity after 6 s = %v, want < half of %v", got, v0)
	}
	bus := inst.Bus()
	mustRead := func(name string) uint16 {
		s, err := bus.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		return s.Read()
	}
	// Software counted the pulses the drum produced.
	if got, want := uint64(mustRead(SigPulscnt)), inst.World().PulseCount(); got != want {
		t.Errorf("pulscnt = %d, want %d (hardware count)", got, want)
	}
	// The controller engaged the brake.
	if mustRead(SigTOC2) == 0 {
		t.Error("TOC2 = 0 after 6 s, want brake engaged")
	}
	if inst.World().PressureFrac() <= 0 {
		t.Error("pressure never rose")
	}
	// Checkpoint index advanced but stayed in range.
	if i := mustRead(SigI); i == 0 || i > NumCheckpoints {
		t.Errorf("checkpoint i = %d, want in 1..%d", i, NumCheckpoints)
	}
	// mscnt tracks simulated time.
	if got := mustRead(SigMscnt); got != 6000 {
		t.Errorf("mscnt = %d, want 6000", got)
	}
}

// TestStoppedNeverLatchesInWindow verifies the workload property that
// underpins OB2: in every paper test case the aircraft is still moving
// at the 6-s analysis horizon, so stopped is never asserted in any
// golden run.
func TestStoppedNeverLatchesInWindow(t *testing.T) {
	for _, tc := range physics.PaperGrid() {
		inst, err := NewInstance(DefaultConfig(), tc, nil)
		if err != nil {
			t.Fatal(err)
		}
		stoppedSig, err := inst.Bus().Lookup(SigStopped)
		if err != nil {
			t.Fatal(err)
		}
		tripped := false
		inst.Kernel().AddPostHook(func(sim.Millis) {
			if stoppedSig.ReadBool() {
				tripped = true
			}
		})
		inst.Run(6000)
		if tripped {
			t.Errorf("%v: stopped asserted within the 6-s window", tc)
		}
		if inst.World().Stopped() {
			t.Errorf("%v: aircraft physically stopped within 6 s", tc)
		}
	}
}

// TestHeavierIsSlower: across the workload grid, at equal engagement
// velocity a heavier aircraft retains more speed at the horizon.
func TestHeavierIsSlower(t *testing.T) {
	vAt6 := func(mass float64) float64 {
		inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: mass, VelocityMS: 70}, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(6000)
		return inst.World().VelocityMS()
	}
	light, heavy := vAt6(8000), vAt6(20000)
	if light >= heavy {
		t.Errorf("light aircraft retained %v m/s, heavy %v; want light < heavy", light, heavy)
	}
}

func TestInstanceReadHookSeesAllModules(t *testing.T) {
	seen := map[string]bool{}
	hook := func(module, _ string, _ *sim.Signal, _ sim.Millis) { seen[module] = true }
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 10000, VelocityMS: 50}, hook)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(20) // enough ticks to cover all 7 slots
	for _, mod := range []string{ModClock, ModDistS, ModPresS, ModCalc, ModVReg, ModPresA} {
		if !seen[mod] {
			t.Errorf("module %s never performed an instrumented read", mod)
		}
	}
}

// TestLongRunWrapSafety runs past the 16-bit millisecond-counter wrap
// (65.536 s): the software's wrap-safe counter arithmetic must keep
// the system stable and deterministic across the wrap.
func TestLongRunWrapSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("70 s of simulated time")
	}
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 20000, VelocityMS: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(70000)
	mscnt, err := inst.Bus().Lookup(SigMscnt)
	if err != nil {
		t.Fatal(err)
	}
	// 70000 mod 65536 = 4464: the counter wrapped exactly once.
	if got := mscnt.Read(); got != 70000-65536 {
		t.Errorf("mscnt after wrap = %d, want %d", got, 70000-65536)
	}
	// The checkpoint index stayed in range and the aircraft stopped.
	iSig, err := inst.Bus().Lookup(SigI)
	if err != nil {
		t.Fatal(err)
	}
	if i := iSig.Read(); i > NumCheckpoints {
		t.Errorf("checkpoint index %d escaped range across the wrap", i)
	}
	if !inst.World().Stopped() {
		t.Errorf("aircraft still moving after 70 s: %v m/s", inst.World().VelocityMS())
	}
}
