package arrestor

import (
	"propane/internal/sim"
)

// moduleBase provides instrumented input reads: every read of an input
// signal passes through the injection/logging hook, mirroring the
// high-level software traps PROPANE inserts at module boundaries.
type moduleBase struct {
	name   string
	onRead sim.ReadHook
}

func (m *moduleBase) read(s *sim.Signal, now sim.Millis) uint16 {
	if m.onRead != nil {
		m.onRead(m.name, s.Name(), s, now)
	}
	return s.Read()
}

func (m *moduleBase) readBool(s *sim.Signal, now sim.Millis) bool {
	return m.read(s, now) != 0
}

// Name implements sim.Task.
func (m *moduleBase) Name() string { return m.name }

// clock is the CLOCK module: provides the millisecond clock mscnt
// (from an internal counter) and the execution slot number
// ms_slot_nbr, which it derives from its own previous output — the
// module-local feedback loop of the permeability graph. Period 1 ms.
type clock struct {
	moduleBase
	slotIn     *sim.Signal // ms_slot_nbr, input 1 (feedback)
	mscntOut   *sim.Signal // output 1
	slotOut    *sim.Signal // output 2 (same signal as slotIn)
	mscnt      uint16      // internal state: millisecond counter
	slotPeriod uint16
}

// Step implements sim.Task.
func (c *clock) Step(now sim.Millis) {
	slot := c.read(c.slotIn, now)
	slot = (slot + 1) % c.slotPeriod
	c.mscnt++
	c.mscntOut.Write(c.mscnt)
	c.slotOut.Write(slot)
}

// distS is the DIST_S module: reads PACNT, TIC1 and TCNT from the
// rotation sensor and counter hardware, and provides the total pulse
// count pulscnt plus the booleans slow_speed and stopped. Period 1 ms.
//
// pulscnt accumulates wrap-safe PACNT deltas. slow_speed is asserted
// when the gap between now (TCNT) and the last pulse capture (TIC1)
// exceeds the configured threshold. stopped latches only after a full
// StopPersistMs without a single pulse — a persistence requirement
// that transient input errors cannot satisfy, which is why all
// permeabilities into stopped are zero (paper OB2: "although injected
// errors can alter the perceived velocity, it is hard to make it
// zero").
type distS struct {
	moduleBase
	pacntIn, tic1In, tcntIn         *sim.Signal
	pulscntOut, slowOut, stoppedOut *sim.Signal

	slowGapTicks  uint16
	stopPersistMs uint16

	initialized bool
	lastPACNT   uint16
	pulscnt     uint16
	noPulseMs   uint16
	stopped     bool
}

// Step implements sim.Task.
func (d *distS) Step(now sim.Millis) {
	pacnt := d.read(d.pacntIn, now)
	tic1 := d.read(d.tic1In, now)
	tcnt := d.read(d.tcntIn, now)

	if !d.initialized {
		d.lastPACNT = pacnt
		d.initialized = true
	}
	delta := pacnt - d.lastPACNT // uint16 arithmetic: wrap-safe
	d.lastPACNT = pacnt
	d.pulscnt += delta

	gap := tcnt - tic1 // ticks since the last captured pulse
	slow := gap > d.slowGapTicks

	if delta == 0 {
		if d.noPulseMs < ^uint16(0) {
			d.noPulseMs++
		}
	} else {
		d.noPulseMs = 0
	}
	if d.noPulseMs >= d.stopPersistMs {
		d.stopped = true
	}

	d.pulscntOut.Write(d.pulscnt)
	d.slowOut.WriteBool(slow)
	d.stoppedOut.WriteBool(d.stopped)
}

// presS is the PRES_S module: reads the applied pressure via the A/D
// converter and provides the validated value InValue. Period 7 ms.
//
// The A/D result is 8-bit left-justified (low byte zero), so InValue
// is in 0–255 engineering units; sensor conditioning is a median-of-3
// filter across invocations. Quantisation absorbs errors in the low
// byte entirely and the median rejects most single-sample transients,
// which is what drives the near-zero ADC→InValue permeability the
// paper measures for this module (Table 2: PRES_S row 0.000).
type presS struct {
	moduleBase
	adcIn      *sim.Signal
	inValueOut *sim.Signal

	hist [3]uint16
	n    int
}

// Step implements sim.Task.
func (p *presS) Step(now sim.Millis) {
	raw := p.read(p.adcIn, now) >> 8 // 8-bit left-justified result
	if p.n < len(p.hist) {
		p.hist[p.n] = raw
		p.n++
	} else {
		p.hist[0], p.hist[1], p.hist[2] = p.hist[1], p.hist[2], raw
	}
	p.inValueOut.Write(p.median())
}

func (p *presS) median() uint16 {
	switch p.n {
	case 0:
		return 0
	case 1:
		return p.hist[0]
	case 2:
		// With two samples, take the newer (filter still priming).
		return p.hist[1]
	}
	a, b, c := p.hist[0], p.hist[1], p.hist[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// calc is the CALC module: uses mscnt, pulscnt, slow_speed and stopped
// to calculate the pressure set point SetValue at six predefined
// checkpoints along the runway, detected by comparing pulscnt with the
// predefined checkpoint pulse counts. The current checkpoint is stored
// in i, which the module reads back on the next invocation — the
// second module-local feedback loop. Background task: runs every tick
// when the slotted modules are dormant.
type calc struct {
	moduleBase
	pulscntIn, mscntIn, slowIn, stoppedIn, iIn *sim.Signal
	iOut, setValueOut                          *sim.Signal

	checkpoints [NumCheckpoints]uint16
	profile     [NumCheckpoints + 1]uint16
	windowMs    uint16
	vRefPulses  uint16
	slowTarget  uint16

	lastMs, lastPc uint16
	windowPulses   uint16
}

// Step implements sim.Task.
func (c *calc) Step(now sim.Millis) {
	pc := c.read(c.pulscntIn, now)          // input 1
	ms := c.read(c.mscntIn, now)            // input 2
	slow := c.readBool(c.slowIn, now)       // input 3
	stopped := c.readBool(c.stoppedIn, now) // input 4
	i := c.read(c.iIn, now)                 // input 5 (feedback)

	if i > NumCheckpoints {
		i = NumCheckpoints // defensive clamp of the checkpoint index
	}
	for i < NumCheckpoints && pc >= c.checkpoints[i] {
		i++
	}

	// Speed estimate: pulses accumulated over the last full window.
	if ms-c.lastMs >= c.windowMs {
		c.windowPulses = pc - c.lastPc
		c.lastMs = ms
		c.lastPc = pc
	}

	target := uint32(c.profile[i]) * uint32(c.windowPulses) / uint32(c.vRefPulses)
	if target > 65535 {
		target = 65535
	}
	if slow {
		target = uint32(c.slowTarget)
	}
	if stopped {
		target = 0
	}

	c.iOut.Write(i)
	c.setValueOut.Write(uint16(target))
}

// vReg is the V_REG module: the pressure regulator. It combines the
// set point SetValue with the measured pressure InValue into the valve
// command OutValue using feedforward plus an integral trim. Period
// 7 ms.
type vReg struct {
	moduleBase
	setValueIn, inValueIn *sim.Signal
	outValueOut           *sim.Signal

	integ int32
}

const (
	vregIntegShift = 4     // integral gain: err/16 per sample
	vregIntegLimit = 16384 // anti-windup clamp
	vregTrimShift  = 2     // trim contribution: integ/4
)

// Step implements sim.Task.
func (v *vReg) Step(now sim.Millis) {
	sv := int32(v.read(v.setValueIn, now))
	iv := int32(v.read(v.inValueIn, now)) << 8 // InValue is 8-bit units

	err := sv - iv
	v.integ += err >> vregIntegShift
	if v.integ > vregIntegLimit {
		v.integ = vregIntegLimit
	}
	if v.integ < -vregIntegLimit {
		v.integ = -vregIntegLimit
	}

	out := sv + v.integ>>vregTrimShift
	if out < 0 {
		out = 0
	}
	if out > 65535 {
		out = 65535
	}
	v.outValueOut.Write(uint16(out))
}

// presA is the PRES_A module: the pressure actuator driver. It moves
// the output-compare register TOC2 toward OutValue with a bounded slew
// rate (valve protection). Period 7 ms.
type presA struct {
	moduleBase
	outValueIn *sim.Signal
	toc2Out    *sim.Signal

	maxSlew uint16
	current uint16 // internal state mirroring TOC2
}

// Step implements sim.Task.
func (p *presA) Step(now sim.Millis) {
	target := p.read(p.outValueIn, now)
	switch {
	case target > p.current:
		step := target - p.current
		if step > p.maxSlew {
			step = p.maxSlew
		}
		p.current += step
	case target < p.current:
		step := p.current - target
		if step > p.maxSlew {
			step = p.maxSlew
		}
		p.current -= step
	}
	p.toc2Out.Write(p.current)
}
