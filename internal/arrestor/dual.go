package arrestor

import (
	"fmt"

	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
)

// The dual-node configuration reconstructs the *real* deployment the
// paper describes in Section 7.1: "In the real system, there are two
// nodes; a master node calculating the desired pressure to be applied,
// and a slave node receiving the desired pressure from the master.
// Each node controls one of the rotating drums." The paper's
// experiments removed the slave; this package provides both, so the
// framework can be exercised on a genuinely distributed topology with
// two system outputs.
//
// The master runs CLOCK, DIST_S, CALC and its own pressure chain
// (PRES_S, V_REG, PRES_A -> TOC2). COM_TX transmits the pressure set
// point to the slave over a parity-protected 16-bit link frame;
// COM_RX validates the parity and publishes SetValue_B. The slave runs
// its own pressure chain (PRES_S_B, V_REG_B, PRES_A_B -> TOC2_B)
// against the second drum's brake circuit.

// Additional module names of the dual-node configuration.
const (
	ModComTX  = "COM_TX"
	ModComRX  = "COM_RX"
	ModPresSB = "PRES_S_B"
	ModVRegB  = "V_REG_B"
	ModPresAB = "PRES_A_B"
)

// Additional signal names of the dual-node configuration.
const (
	// SigTxFrame is the parity-protected link frame carrying the set
	// point from master to slave.
	SigTxFrame = "TXFRAME"
	// SigSetValueB is the validated set point on the slave node.
	SigSetValueB = "SetValue_B"
	// SigADCB is the slave's A/D conversion of its applied pressure
	// (system input).
	SigADCB = "ADC_B"
	// SigInValueB is the slave's validated pressure value.
	SigInValueB = "InValue_B"
	// SigOutValueB is the slave regulator's output.
	SigOutValueB = "OutValue_B"
	// SigTOC2B is the slave's output-compare register (system output).
	SigTOC2B = "TOC2_B"
)

// DualTopology returns the master/slave system model: 11 modules, 31
// input/output pairs, system inputs PACNT, TIC1, TCNT, ADC and ADC_B,
// and system outputs TOC2 and TOC2_B.
func DualTopology() *model.System {
	sys, err := model.NewBuilder("arrestor-dual").
		AddModule(ModClock,
			[]string{SigMsSlotNbr},
			[]string{SigMscnt, SigMsSlotNbr}).
		AddModule(ModDistS,
			[]string{SigPACNT, SigTIC1, SigTCNT},
			[]string{SigPulscnt, SigSlowSpeed, SigStopped}).
		AddModule(ModPresS,
			[]string{SigADC},
			[]string{SigInValue}).
		AddModule(ModCalc,
			[]string{SigPulscnt, SigMscnt, SigSlowSpeed, SigStopped, SigI},
			[]string{SigI, SigSetValue}).
		AddModule(ModVReg,
			[]string{SigSetValue, SigInValue},
			[]string{SigOutValue}).
		AddModule(ModPresA,
			[]string{SigOutValue},
			[]string{SigTOC2}).
		AddModule(ModComTX,
			[]string{SigSetValue},
			[]string{SigTxFrame}).
		AddModule(ModComRX,
			[]string{SigTxFrame},
			[]string{SigSetValueB}).
		AddModule(ModPresSB,
			[]string{SigADCB},
			[]string{SigInValueB}).
		AddModule(ModVRegB,
			[]string{SigSetValueB, SigInValueB},
			[]string{SigOutValueB}).
		AddModule(ModPresAB,
			[]string{SigOutValueB},
			[]string{SigTOC2B}).
		Build()
	if err != nil {
		panic("arrestor: dual topology invalid: " + err.Error())
	}
	return sys
}

// parity15 returns the even-parity bit over bits 1..15 of v.
func parity15(v uint16) uint16 {
	v >>= 1
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// comTX is the COM_TX module: it encodes the pressure set point into
// the link frame, carrying the 15 high bits of the value with an even
// parity bit in bit 0. Period 7 ms (one frame per slot cycle).
type comTX struct {
	moduleBase
	in  *sim.Signal
	out *sim.Signal
}

// Step implements sim.Task.
func (c *comTX) Step(now sim.Millis) {
	v := c.read(c.in, now) & 0xFFFE
	c.out.Write(v | parity15(v))
}

// comRX is the COM_RX module: it validates the link frame's parity and
// publishes the carried set point; frames failing the check are
// dropped and the last good value is held. The parity check makes the
// link an error-containment barrier: any single bit-flip in the frame
// is detected, so the frame->SetValue_B permeability is exactly zero —
// the "wrapper" style containment of the paper's Section 4.1 ([17]).
type comRX struct {
	moduleBase
	in  *sim.Signal
	out *sim.Signal

	lastGood uint16
}

// Step implements sim.Task.
func (c *comRX) Step(now sim.Millis) {
	f := c.read(c.in, now)
	if parity15(f&0xFFFE) == f&1 {
		c.lastGood = f & 0xFFFE
	}
	c.out.Write(c.lastGood)
}

// DualConfig extends Config with the slave-node slot assignments.
type DualConfig struct {
	Config
	// SlotComTX, SlotComRX, SlotPresSB, SlotVRegB and SlotPresAB
	// assign the additional 7-ms-period modules to execution slots.
	SlotComTX, SlotComRX, SlotPresSB, SlotVRegB, SlotPresAB int
}

// DefaultDualConfig returns the dual-node parameter set: the master
// modules keep their single-node slots, the communication and slave
// modules fill the remaining slots, and the physics gains a second
// brake circuit.
func DefaultDualConfig() DualConfig {
	return DualFrom(DefaultConfig())
}

// DualFrom wraps a single-node configuration into the dual-node
// parameter set with the default slave slot assignments, forcing the
// second brake circuit.
func DualFrom(cfg Config) DualConfig {
	cfg.Physics.NumBrakes = 2
	return DualConfig{
		Config:     cfg,
		SlotComTX:  0,
		SlotComRX:  2,
		SlotPresSB: 2,
		SlotVRegB:  4,
		SlotPresAB: 6,
	}
}

// Validate reports configuration errors.
func (c DualConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Physics.NumBrakes != 2 {
		return fmt.Errorf("arrestor: dual config needs 2 brakes, has %d", c.Physics.NumBrakes)
	}
	for _, s := range []struct {
		name string
		slot int
	}{
		{ModComTX, c.SlotComTX}, {ModComRX, c.SlotComRX},
		{ModPresSB, c.SlotPresSB}, {ModVRegB, c.SlotVRegB}, {ModPresAB, c.SlotPresAB},
	} {
		if s.slot < 0 || s.slot >= NumSlots {
			return fmt.Errorf("arrestor: slot %d for %s out of range [0,%d)", s.slot, s.name, NumSlots)
		}
	}
	return nil
}

// NewDualInstance builds a master/slave instance for one test case.
func NewDualInstance(cfg DualConfig, tc physics.TestCase, onRead sim.ReadHook) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inst, err := NewInstance(cfg.Config, tc, onRead)
	if err != nil {
		return nil, err
	}
	bus := inst.Bus()
	kernel := inst.Kernel()

	// Additional signals of the slave node and link.
	txFrame := bus.Register(SigTxFrame)
	setValueB := bus.Register(SigSetValueB)
	adcB := bus.Register(SigADCB)
	inValueB := bus.Register(SigInValueB)
	outValueB := bus.Register(SigOutValueB)
	toc2B := bus.Register(SigTOC2B)

	setValue, err := bus.Lookup(SigSetValue)
	if err != nil {
		return nil, err
	}

	// Slave-side hardware glue: refresh ADC_B from brake circuit 1 and
	// apply TOC2_B to it. Registered after the master glue pre-hook.
	world := inst.World()
	kernel.AddPreHook(func(sim.Millis) {
		if err := world.SetBrakeCommand(1, float64(toc2B.Read())/65535); err != nil {
			return
		}
		p, err := world.BrakePressureFrac(1)
		if err != nil {
			return
		}
		sample := uint16(p*255 + 0.5)
		if sample > 255 {
			sample = 255
		}
		adcB.Write(sample << 8)
	})

	tx := &comTX{
		moduleBase: moduleBase{name: ModComTX, onRead: onRead},
		in:         setValue,
		out:        txFrame,
	}
	rx := &comRX{
		moduleBase: moduleBase{name: ModComRX, onRead: onRead},
		in:         txFrame,
		out:        setValueB,
	}
	psB := &presS{
		moduleBase: moduleBase{name: ModPresSB, onRead: onRead},
		adcIn:      adcB,
		inValueOut: inValueB,
	}
	vrB := &vReg{
		moduleBase:  moduleBase{name: ModVRegB, onRead: onRead},
		setValueIn:  setValueB,
		inValueIn:   inValueB,
		outValueOut: outValueB,
	}
	paB := &presA{
		moduleBase: moduleBase{name: ModPresAB, onRead: onRead},
		outValueIn: outValueB,
		toc2Out:    toc2B,
		maxSlew:    cfg.MaxSlew,
	}

	for _, sched := range []struct {
		slot int
		task sim.Task
	}{
		{cfg.SlotComTX, tx}, {cfg.SlotComRX, rx},
		{cfg.SlotPresSB, psB}, {cfg.SlotVRegB, vrB}, {cfg.SlotPresAB, paB},
	} {
		if err := kernel.AddSlotted(sched.slot, sched.task); err != nil {
			return nil, fmt.Errorf("arrestor: scheduling %s: %w", sched.task.Name(), err)
		}
	}
	// Slave-side hidden state; tx and the slave glue pre-hook are
	// stateless (pure functions of their inputs).
	inst.stateful = append(inst.stateful, rx, psB, vrB, paB)
	return inst, nil
}
