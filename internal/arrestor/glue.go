package arrestor

import (
	"propane/internal/physics"
	"propane/internal/sim"
)

// glue is the hardware-simulation layer the paper describes in Section
// 7.1: "Glue software was developed to simulate registers for
// A/D-conversion, timers, counter registers etc., accessed by the
// application." It runs as the kernel's first pre-hook, before any
// software module, refreshing the input registers from the physical
// world and applying the software's TOC2 command to the valve.
type glue struct {
	world *physics.World

	pacnt, tic1, tcnt, adc, toc2 *sim.Signal

	ticksPerMs uint16
	tcntVal    uint16
	pacntVal   uint16
}

// preTick advances the world one millisecond and refreshes the
// hardware registers.
func (g *glue) preTick(now sim.Millis) {
	// Valve command: TOC2 as written by PRES_A on its last invocation.
	g.world.SetCommand(float64(g.toc2.Read()) / 65535)

	pulses := g.world.Step(0.001)

	// Free-running 16-bit timer counter: wraps naturally.
	g.tcntVal += g.ticksPerMs
	g.tcnt.Write(g.tcntVal)

	// Pulse accumulator and input capture: on pulses, bump the
	// accumulator and latch the capture register to "now".
	if pulses > 0 {
		g.pacntVal += uint16(pulses)
		g.pacnt.Write(g.pacntVal)
		g.tic1.Write(g.tcntVal)
	}

	// A/D conversion of applied pressure: 8-bit result left-justified
	// in the 16-bit register, as on common 8-bit MCUs.
	sample := uint16(g.world.PressureFrac()*255 + 0.5)
	if sample > 255 {
		sample = 255
	}
	g.adc.Write(sample << 8)
}
