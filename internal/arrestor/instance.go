package arrestor

import (
	"fmt"

	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
)

// Instance is one fully wired simulation of the target system: the
// signal bus, the slot-based kernel with all six modules scheduled,
// the hardware glue and the physical world. Each golden run and each
// injection run uses a fresh Instance, so runs are fully independent
// and deterministic.
type Instance struct {
	cfg    Config
	kernel *sim.Kernel
	bus    *sim.Bus
	world  *physics.World

	snap     *sim.Snapshotter
	stateful []model.Stateful
}

// NewInstance builds an instance for one test case. onRead, if
// non-nil, is invoked on every module input read (the injection/
// logging trap); pass nil for an uninstrumented run.
func NewInstance(cfg Config, tc physics.TestCase, onRead sim.ReadHook) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	world, err := physics.NewWorld(cfg.Physics, tc)
	if err != nil {
		return nil, err
	}
	kernel, err := sim.NewKernel(NumSlots)
	if err != nil {
		return nil, err
	}
	bus := sim.NewBus()

	// Register every signal of the topology.
	sigs := make(map[string]*sim.Signal)
	for _, name := range []string{
		SigMscnt, SigMsSlotNbr, SigPACNT, SigTIC1, SigTCNT,
		SigPulscnt, SigSlowSpeed, SigStopped, SigI, SigSetValue,
		SigADC, SigInValue, SigOutValue, SigTOC2,
	} {
		sigs[name] = bus.Register(name)
	}

	// Hardware glue: refreshes input registers before the software.
	g := &glue{
		world:      world,
		pacnt:      sigs[SigPACNT],
		tic1:       sigs[SigTIC1],
		tcnt:       sigs[SigTCNT],
		adc:        sigs[SigADC],
		toc2:       sigs[SigTOC2],
		ticksPerMs: cfg.TCNTTicksPerMs,
	}
	kernel.AddPreHook(g.preTick)

	// The scheduler reads the current slot from ms_slot_nbr, as the
	// paper states, so clock errors genuinely disturb the schedule.
	kernel.UseSlotSignal(sigs[SigMsSlotNbr])

	ck := &clock{
		moduleBase: moduleBase{name: ModClock, onRead: onRead},
		slotIn:     sigs[SigMsSlotNbr],
		mscntOut:   sigs[SigMscnt],
		slotOut:    sigs[SigMsSlotNbr],
		slotPeriod: NumSlots,
	}
	ds := &distS{
		moduleBase:    moduleBase{name: ModDistS, onRead: onRead},
		pacntIn:       sigs[SigPACNT],
		tic1In:        sigs[SigTIC1],
		tcntIn:        sigs[SigTCNT],
		pulscntOut:    sigs[SigPulscnt],
		slowOut:       sigs[SigSlowSpeed],
		stoppedOut:    sigs[SigStopped],
		slowGapTicks:  cfg.SlowGapTicks,
		stopPersistMs: cfg.StopPersistMs,
	}
	ps := &presS{
		moduleBase: moduleBase{name: ModPresS, onRead: onRead},
		adcIn:      sigs[SigADC],
		inValueOut: sigs[SigInValue],
	}
	cl := &calc{
		moduleBase:  moduleBase{name: ModCalc, onRead: onRead},
		pulscntIn:   sigs[SigPulscnt],
		mscntIn:     sigs[SigMscnt],
		slowIn:      sigs[SigSlowSpeed],
		stoppedIn:   sigs[SigStopped],
		iIn:         sigs[SigI],
		iOut:        sigs[SigI],
		setValueOut: sigs[SigSetValue],
		checkpoints: cfg.CheckpointPulses,
		profile:     cfg.Profile,
		windowMs:    cfg.WindowMs,
		vRefPulses:  cfg.VRefPulses,
		slowTarget:  cfg.SlowTarget,
	}
	vr := &vReg{
		moduleBase:  moduleBase{name: ModVReg, onRead: onRead},
		setValueIn:  sigs[SigSetValue],
		inValueIn:   sigs[SigInValue],
		outValueOut: sigs[SigOutValue],
	}
	pa := &presA{
		moduleBase: moduleBase{name: ModPresA, onRead: onRead},
		outValueIn: sigs[SigOutValue],
		toc2Out:    sigs[SigTOC2],
		maxSlew:    cfg.MaxSlew,
	}

	// Schedule: CLOCK and DIST_S every millisecond; the sampling and
	// actuation modules in their 7-ms slots; CALC as background task.
	kernel.AddEveryTick(ck)
	kernel.AddEveryTick(ds)
	if err := kernel.AddSlotted(cfg.SlotPresS, ps); err != nil {
		return nil, fmt.Errorf("arrestor: scheduling PRES_S: %w", err)
	}
	if err := kernel.AddSlotted(cfg.SlotVReg, vr); err != nil {
		return nil, fmt.Errorf("arrestor: scheduling V_REG: %w", err)
	}
	if err := kernel.AddSlotted(cfg.SlotPresA, pa); err != nil {
		return nil, fmt.Errorf("arrestor: scheduling PRES_A: %w", err)
	}
	kernel.AddBackground(cl)

	in := &Instance{cfg: cfg, kernel: kernel, bus: bus, world: world}
	in.snap = sim.NewSnapshotter(kernel, bus)
	// Every component carrying hidden state, in a fixed order the
	// restore side relies on. NewDualInstance appends the slave's.
	in.stateful = []model.Stateful{world, g, ck, ds, ps, cl, vr, pa}
	return in, nil
}

// Kernel returns the instance's kernel (for adding trace hooks and
// running the simulation).
func (in *Instance) Kernel() *sim.Kernel { return in.kernel }

// Bus returns the instance's signal bus.
func (in *Instance) Bus() *sim.Bus { return in.bus }

// World returns the physical world.
func (in *Instance) World() *physics.World { return in.world }

// Run advances the simulation to the given horizon in milliseconds.
func (in *Instance) Run(horizon sim.Millis) {
	in.kernel.Run(horizon, nil)
}

// Checkpoint captures the instance's full dynamic state at a tick
// boundary (target.Checkpointable).
func (in *Instance) Checkpoint() (*sim.Snapshot, error) {
	snap := in.snap.Capture()
	snap.Hidden = model.CaptureStates(in.stateful)
	return snap, nil
}

// Restore overwrites the instance's full dynamic state from a
// snapshot captured on an identically constructed instance
// (target.Checkpointable).
func (in *Instance) Restore(snap *sim.Snapshot) error {
	if err := in.snap.Restore(snap); err != nil {
		return err
	}
	return model.RestoreStates(in.stateful, snap.Hidden)
}
