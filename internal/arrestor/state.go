package arrestor

import "propane/internal/model"

// This file gives every stateful component of the arrestment software
// a State/Restore pair (model.Stateful), which is what lets an
// Instance be checkpointed and cloned for the campaign engine's
// fast-forward path. Components whose behaviour is a pure function of
// their inputs and the current tick (comTX, the slave glue pre-hook)
// carry no hidden state and are deliberately absent.

type glueState struct {
	tcntVal  uint16
	pacntVal uint16
}

// State implements model.Stateful.
func (g *glue) State() any { return glueState{g.tcntVal, g.pacntVal} }

// Restore implements model.Stateful.
func (g *glue) Restore(state any) error {
	s := glueState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	g.tcntVal, g.pacntVal = s.tcntVal, s.pacntVal
	return nil
}

type clockState struct{ mscnt uint16 }

// State implements model.Stateful.
func (c *clock) State() any { return clockState{c.mscnt} }

// Restore implements model.Stateful.
func (c *clock) Restore(state any) error {
	s := clockState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	c.mscnt = s.mscnt
	return nil
}

type distSState struct {
	initialized bool
	lastPACNT   uint16
	pulscnt     uint16
	noPulseMs   uint16
	stopped     bool
}

// State implements model.Stateful.
func (d *distS) State() any {
	return distSState{d.initialized, d.lastPACNT, d.pulscnt, d.noPulseMs, d.stopped}
}

// Restore implements model.Stateful.
func (d *distS) Restore(state any) error {
	s := distSState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	d.initialized, d.lastPACNT, d.pulscnt = s.initialized, s.lastPACNT, s.pulscnt
	d.noPulseMs, d.stopped = s.noPulseMs, s.stopped
	return nil
}

type presSState struct {
	hist [3]uint16
	n    int
}

// State implements model.Stateful.
func (p *presS) State() any { return presSState{p.hist, p.n} }

// Restore implements model.Stateful.
func (p *presS) Restore(state any) error {
	s := presSState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	p.hist, p.n = s.hist, s.n
	return nil
}

type calcState struct {
	lastMs       uint16
	lastPc       uint16
	windowPulses uint16
}

// State implements model.Stateful.
func (c *calc) State() any { return calcState{c.lastMs, c.lastPc, c.windowPulses} }

// Restore implements model.Stateful.
func (c *calc) Restore(state any) error {
	s := calcState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	c.lastMs, c.lastPc, c.windowPulses = s.lastMs, s.lastPc, s.windowPulses
	return nil
}

type vRegState struct{ integ int32 }

// State implements model.Stateful.
func (v *vReg) State() any { return vRegState{v.integ} }

// Restore implements model.Stateful.
func (v *vReg) Restore(state any) error {
	s := vRegState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	v.integ = s.integ
	return nil
}

type presAState struct{ current uint16 }

// State implements model.Stateful.
func (p *presA) State() any { return presAState{p.current} }

// Restore implements model.Stateful.
func (p *presA) Restore(state any) error {
	s := presAState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	p.current = s.current
	return nil
}

type comRXState struct{ lastGood uint16 }

// State implements model.Stateful.
func (c *comRX) State() any { return comRXState{c.lastGood} }

// Restore implements model.Stateful.
func (c *comRX) Restore(state any) error {
	s := comRXState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	c.lastGood = s.lastGood
	return nil
}
