package arrestor

import (
	"testing"

	"propane/internal/sim"
)

func TestClockSlotWrapsAndMscntCounts(t *testing.T) {
	bus := sim.NewBus()
	c := &clock{
		moduleBase: moduleBase{name: ModClock},
		slotIn:     bus.Register(SigMsSlotNbr),
		mscntOut:   bus.Register(SigMscnt),
		slotOut:    bus.Register(SigMsSlotNbr),
		slotPeriod: NumSlots,
	}
	for i := 0; i < 15; i++ {
		c.Step(sim.Millis(i))
	}
	if got := c.mscntOut.Read(); got != 15 {
		t.Errorf("mscnt after 15 steps = %d, want 15", got)
	}
	// Slot sequence 1,2,...,6,0,1,... after 15 steps: 15 mod 7 = 1.
	if got := c.slotOut.Read(); got != 1 {
		t.Errorf("ms_slot_nbr after 15 steps = %d, want 1", got)
	}
}

func TestClockSlotFeedbackPermanentShift(t *testing.T) {
	bus := sim.NewBus()
	slot := bus.Register(SigMsSlotNbr)
	c := &clock{
		moduleBase: moduleBase{name: ModClock},
		slotIn:     slot,
		mscntOut:   bus.Register(SigMscnt),
		slotOut:    slot,
		slotPeriod: NumSlots,
	}
	c.Step(0)
	c.Step(1) // slot now 2
	// Corrupt the feedback signal: a bit-flip giving a large value.
	if err := slot.FlipBit(12); err != nil {
		t.Fatal(err)
	}
	c.Step(2)
	// (2+4096+1) mod 7 = 4099 mod 7 = 4; the shift persists forever —
	// the ms_slot_nbr -> ms_slot_nbr permeability of 1.0.
	if got := slot.Read(); got != 4099%7 {
		t.Errorf("slot after corrupted feedback = %d, want %d", got, 4099%7)
	}
	// mscnt is untouched by the corrupted slot input (permeability 0).
	if got := c.mscntOut.Read(); got != 3 {
		t.Errorf("mscnt = %d, want 3", got)
	}
}

// newDistS wires a DIST_S over a fresh bus for direct unit testing.
func newDistS() (*distS, *sim.Bus) {
	bus := sim.NewBus()
	cfg := DefaultConfig()
	return &distS{
		moduleBase:    moduleBase{name: ModDistS},
		pacntIn:       bus.Register(SigPACNT),
		tic1In:        bus.Register(SigTIC1),
		tcntIn:        bus.Register(SigTCNT),
		pulscntOut:    bus.Register(SigPulscnt),
		slowOut:       bus.Register(SigSlowSpeed),
		stoppedOut:    bus.Register(SigStopped),
		slowGapTicks:  cfg.SlowGapTicks,
		stopPersistMs: cfg.StopPersistMs,
	}, bus
}

func TestDistSPulseAccumulation(t *testing.T) {
	d, _ := newDistS()
	d.pacntIn.Write(10)
	d.Step(0) // first step initialises lastPACNT: no delta counted
	if got := d.pulscntOut.Read(); got != 0 {
		t.Errorf("pulscnt after init = %d, want 0", got)
	}
	d.pacntIn.Write(13)
	d.Step(1)
	if got := d.pulscntOut.Read(); got != 3 {
		t.Errorf("pulscnt = %d, want 3", got)
	}
}

func TestDistSPACNTWrapSafety(t *testing.T) {
	d, _ := newDistS()
	d.pacntIn.Write(0xFFFE)
	d.Step(0)
	d.pacntIn.Write(0x0002) // wraps past 65535: delta = 4
	d.Step(1)
	if got := d.pulscntOut.Read(); got != 4 {
		t.Errorf("pulscnt across PACNT wrap = %d, want 4", got)
	}
}

func TestDistSSlowSpeedFromPulseGap(t *testing.T) {
	d, _ := newDistS()
	cfg := DefaultConfig()
	d.tic1In.Write(1000)
	d.tcntIn.Write(1000 + cfg.SlowGapTicks) // exactly at threshold: not slow
	d.Step(0)
	if d.slowOut.ReadBool() {
		t.Error("slow_speed at exact threshold, want false")
	}
	d.tcntIn.Write(1000 + cfg.SlowGapTicks + 1)
	d.Step(1)
	if !d.slowOut.ReadBool() {
		t.Error("slow_speed above threshold = false, want true")
	}
	// A fresh pulse (TIC1 close to TCNT) clears it.
	d.tic1In.Write(1000 + cfg.SlowGapTicks)
	d.Step(2)
	if d.slowOut.ReadBool() {
		t.Error("slow_speed after fresh pulse = true, want false")
	}
}

func TestDistSStoppedRequiresPersistence(t *testing.T) {
	d, _ := newDistS()
	cfg := DefaultConfig()
	d.pacntIn.Write(5)
	d.Step(0) // init
	d.pacntIn.Write(6)
	d.Step(1) // a pulse: persistence counter reset
	// Silence for StopPersistMs-1 cycles: not yet stopped.
	for i := 0; i < int(cfg.StopPersistMs)-1; i++ {
		d.Step(sim.Millis(2 + i))
	}
	if d.stoppedOut.ReadBool() {
		t.Fatal("stopped latched one cycle early")
	}
	d.Step(sim.Millis(2 + cfg.StopPersistMs))
	if !d.stoppedOut.ReadBool() {
		t.Fatal("stopped not latched after full persistence window")
	}
	// Latched: even new pulses do not clear it.
	d.pacntIn.Write(9)
	d.Step(sim.Millis(3 + cfg.StopPersistMs))
	if !d.stoppedOut.ReadBool() {
		t.Error("stopped un-latched by new pulses")
	}
}

func TestDistSStoppedImmuneToTransients(t *testing.T) {
	// A single transient PACNT corruption resets the persistence
	// counter but can never assert stopped — the OB2 mechanism.
	d, _ := newDistS()
	for i := 0; i < 150; i++ {
		d.Step(sim.Millis(i)) // silence accumulating
	}
	d.pacntIn.Write(0x4000) // transient corruption: huge delta
	d.Step(150)
	d.pacntIn.Write(0) // producer refreshes the true value
	for i := 151; i < 199; i++ {
		d.Step(sim.Millis(i))
	}
	if d.stoppedOut.ReadBool() {
		t.Error("transient corruption asserted stopped")
	}
}

func newPresS() *presS {
	bus := sim.NewBus()
	return &presS{
		moduleBase: moduleBase{name: ModPresS},
		adcIn:      bus.Register(SigADC),
		inValueOut: bus.Register(SigInValue),
	}
}

func TestPresSQuantisesLeftJustifiedADC(t *testing.T) {
	p := newPresS()
	p.adcIn.Write(0x7F00)
	p.Step(0)
	if got := p.inValueOut.Read(); got != 0x7F {
		t.Errorf("InValue = %#x, want 0x7F", got)
	}
	// Low-byte corruption is absorbed entirely by the quantisation.
	p.adcIn.Write(0x7F3C)
	p.Step(7)
	if got := p.inValueOut.Read(); got != 0x7F {
		t.Errorf("InValue with corrupted low byte = %#x, want 0x7F", got)
	}
}

func TestPresSMedianRejectsSingleSpike(t *testing.T) {
	p := newPresS()
	feed := func(v uint16) uint16 {
		p.adcIn.Write(v << 8)
		p.Step(0)
		return p.inValueOut.Read()
	}
	feed(10)
	feed(10)
	feed(10)
	if got := feed(250); got != 10 { // upward spike rejected
		t.Errorf("median after upward spike = %d, want 10", got)
	}
	if got := feed(10); got != 10 {
		t.Errorf("median recovering = %d, want 10", got)
	}
	if got := feed(10); got != 10 {
		t.Errorf("median recovered = %d, want 10", got)
	}
}

func TestPresSMedianTracksSlowRamp(t *testing.T) {
	p := newPresS()
	var got []uint16
	for v := uint16(0); v < 10; v++ {
		p.adcIn.Write(v << 8)
		p.Step(0)
		got = append(got, p.inValueOut.Read())
	}
	// After priming, median of {v-2, v-1, v} = v-1: one-sample lag.
	for i := 3; i < len(got); i++ {
		if got[i] != uint16(i-1) {
			t.Errorf("sample %d = %d, want %d (one-sample lag)", i, got[i], i-1)
		}
	}
}

func newCalc() *calc {
	bus := sim.NewBus()
	cfg := DefaultConfig()
	iSig := bus.Register(SigI)
	return &calc{
		moduleBase:  moduleBase{name: ModCalc},
		pulscntIn:   bus.Register(SigPulscnt),
		mscntIn:     bus.Register(SigMscnt),
		slowIn:      bus.Register(SigSlowSpeed),
		stoppedIn:   bus.Register(SigStopped),
		iIn:         iSig,
		iOut:        iSig,
		setValueOut: bus.Register(SigSetValue),
		checkpoints: cfg.CheckpointPulses,
		profile:     cfg.Profile,
		windowMs:    cfg.WindowMs,
		vRefPulses:  cfg.VRefPulses,
		slowTarget:  cfg.SlowTarget,
	}
}

func TestCalcCheckpointAdvance(t *testing.T) {
	c := newCalc()
	cfg := DefaultConfig()
	c.Step(0)
	if got := c.iOut.Read(); got != 0 {
		t.Fatalf("initial checkpoint = %d, want 0", got)
	}
	// Crossing the first two thresholds at once advances i by two.
	c.pulscntIn.Write(cfg.CheckpointPulses[1])
	c.Step(1)
	if got := c.iOut.Read(); got != 2 {
		t.Errorf("checkpoint after crossing two thresholds = %d, want 2", got)
	}
	// i never retreats even if pulscnt drops (corruption downstream).
	c.pulscntIn.Write(0)
	c.Step(2)
	if got := c.iOut.Read(); got != 2 {
		t.Errorf("checkpoint after pulscnt drop = %d, want 2 (monotone)", got)
	}
}

func TestCalcClampsCorruptedCheckpoint(t *testing.T) {
	c := newCalc()
	c.iIn.Write(0x2000) // corrupted feedback
	c.Step(0)
	if got := c.iOut.Read(); got != NumCheckpoints {
		t.Errorf("corrupted i clamped to %d, want %d", got, NumCheckpoints)
	}
}

func TestCalcSpeedScaledSetValue(t *testing.T) {
	c := newCalc()
	cfg := DefaultConfig()
	// Push the first checkpoint out of the way so the pulse counts
	// used here exercise only the speed scaling, not the checkpoint
	// advance (covered by TestCalcCheckpointAdvance).
	c.checkpoints[0] = 60000
	// Prime a speed window: vRefPulses pulses over one window.
	c.mscntIn.Write(0)
	c.pulscntIn.Write(0)
	c.Step(0)
	c.mscntIn.Write(cfg.WindowMs)
	c.pulscntIn.Write(cfg.VRefPulses)
	c.Step(1)
	// At reference speed and checkpoint 0, SetValue = Profile[0].
	if got := c.setValueOut.Read(); got != cfg.Profile[0] {
		t.Errorf("SetValue at reference speed = %d, want %d", got, cfg.Profile[0])
	}
	// Double speed doubles the set point.
	c.mscntIn.Write(2 * cfg.WindowMs)
	c.pulscntIn.Write(3 * cfg.VRefPulses)
	c.Step(2)
	if got := c.setValueOut.Read(); got != 2*cfg.Profile[0] {
		t.Errorf("SetValue at double speed = %d, want %d", got, 2*cfg.Profile[0])
	}
}

func TestCalcOverrides(t *testing.T) {
	c := newCalc()
	cfg := DefaultConfig()
	c.mscntIn.Write(0)
	c.Step(0)
	c.mscntIn.Write(cfg.WindowMs)
	c.pulscntIn.Write(cfg.VRefPulses)
	c.slowIn.Write(1)
	c.Step(1)
	if got := c.setValueOut.Read(); got != cfg.SlowTarget {
		t.Errorf("SetValue under slow_speed = %d, want %d", got, cfg.SlowTarget)
	}
	c.stoppedIn.Write(1)
	c.Step(2)
	if got := c.setValueOut.Read(); got != 0 {
		t.Errorf("SetValue under stopped = %d, want 0", got)
	}
}

func newVReg() *vReg {
	bus := sim.NewBus()
	return &vReg{
		moduleBase:  moduleBase{name: ModVReg},
		setValueIn:  bus.Register(SigSetValue),
		inValueIn:   bus.Register(SigInValue),
		outValueOut: bus.Register(SigOutValue),
	}
}

func TestVRegFeedforwardAndTrim(t *testing.T) {
	v := newVReg()
	v.setValueIn.Write(20000)
	v.inValueIn.Write(20000 >> 8) // measured equals set point
	v.Step(0)
	out := v.outValueOut.Read()
	// err = 20000 - (78<<8) = 32; integ = 2; out = 20000 + 0.
	if out < 19900 || out > 20100 {
		t.Errorf("OutValue at steady state = %d, want ~20000", out)
	}
	// With measured below set point, the trim pushes output above it.
	v2 := newVReg()
	v2.setValueIn.Write(20000)
	v2.inValueIn.Write(0)
	for i := 0; i < 50; i++ {
		v2.Step(sim.Millis(i))
	}
	if got := v2.outValueOut.Read(); got <= 20000 {
		t.Errorf("OutValue with low pressure = %d, want > 20000", got)
	}
}

func TestVRegClampsAndAntiWindup(t *testing.T) {
	v := newVReg()
	v.setValueIn.Write(65535)
	v.inValueIn.Write(0)
	for i := 0; i < 1000; i++ {
		v.Step(sim.Millis(i))
	}
	if got := v.outValueOut.Read(); got != 65535 {
		t.Errorf("OutValue = %d, want saturated 65535", got)
	}
	if v.integ > vregIntegLimit || v.integ < -vregIntegLimit {
		t.Errorf("integ = %d escaped anti-windup clamp", v.integ)
	}
	// Reverse saturation.
	v.setValueIn.Write(0)
	v.inValueIn.Write(255)
	for i := 0; i < 1000; i++ {
		v.Step(sim.Millis(i))
	}
	if got := v.outValueOut.Read(); got != 0 {
		t.Errorf("OutValue = %d, want clamped 0", got)
	}
}

func newPresA() *presA {
	bus := sim.NewBus()
	return &presA{
		moduleBase: moduleBase{name: ModPresA},
		outValueIn: bus.Register(SigOutValue),
		toc2Out:    bus.Register(SigTOC2),
		maxSlew:    DefaultConfig().MaxSlew,
	}
}

func TestPresASlewLimiting(t *testing.T) {
	p := newPresA()
	slew := DefaultConfig().MaxSlew
	p.outValueIn.Write(65535)
	p.Step(0)
	if got := p.toc2Out.Read(); got != slew {
		t.Errorf("TOC2 after one step = %d, want %d (slew limit)", got, slew)
	}
	p.Step(1)
	if got := p.toc2Out.Read(); got != 2*slew {
		t.Errorf("TOC2 after two steps = %d, want %d", got, 2*slew)
	}
	// Downward slew, small target reached exactly.
	p.outValueIn.Write(2*slew - 5)
	p.Step(2)
	if got := p.toc2Out.Read(); got != 2*slew-5 {
		t.Errorf("TOC2 small downward step = %d, want %d", got, 2*slew-5)
	}
}

func TestPresASlewMasksTransientsDuringRamp(t *testing.T) {
	// During a large ramp, a corrupted target in the same direction and
	// beyond the slew window produces the same TOC2 step — the masking
	// that keeps OutValue->TOC2 permeability below 1.
	p1, p2 := newPresA(), newPresA()
	p1.outValueIn.Write(60000)
	p1.Step(0)
	p2.outValueIn.Write(65535) // "corrupted" but far beyond slew reach
	p2.Step(0)
	if p1.toc2Out.Read() != p2.toc2Out.Read() {
		t.Errorf("slew-limited outputs differ: %d vs %d", p1.toc2Out.Read(), p2.toc2Out.Read())
	}
}

func TestReadHookInvocation(t *testing.T) {
	bus := sim.NewBus()
	type readKey struct{ module, signal string }
	counts := map[readKey]int{}
	hook := func(module, signal string, _ *sim.Signal, _ sim.Millis) {
		counts[readKey{module, signal}]++
	}
	d := &distS{
		moduleBase:    moduleBase{name: ModDistS, onRead: hook},
		pacntIn:       bus.Register(SigPACNT),
		tic1In:        bus.Register(SigTIC1),
		tcntIn:        bus.Register(SigTCNT),
		pulscntOut:    bus.Register(SigPulscnt),
		slowOut:       bus.Register(SigSlowSpeed),
		stoppedOut:    bus.Register(SigStopped),
		slowGapTicks:  1,
		stopPersistMs: 1,
	}
	d.Step(0)
	d.Step(1)
	for _, sig := range []string{SigPACNT, SigTIC1, SigTCNT} {
		if got := counts[readKey{ModDistS, sig}]; got != 2 {
			t.Errorf("reads of %s = %d, want 2", sig, got)
		}
	}
}
