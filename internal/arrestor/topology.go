// Package arrestor implements the paper's target system (Section 7.1):
// the software of an embedded control system used for arresting
// aircraft on short runways and aircraft carriers, reconstructed from
// the module and signal inventory of Fig. 8. Six modules — CLOCK,
// DIST_S, PRES_S, CALC, V_REG and PRES_A — run on a slot-based,
// non-preemptive scheduler and communicate over named 16-bit signals.
// Hardware (pulse accumulator, input capture, free-running timer, A/D
// converter, output compare) is simulated by glue code, exactly as the
// paper's desktop port does.
package arrestor

import "propane/internal/model"

// Module names of the target system.
const (
	ModClock = "CLOCK"
	ModDistS = "DIST_S"
	ModPresS = "PRES_S"
	ModCalc  = "CALC"
	ModVReg  = "V_REG"
	ModPresA = "PRES_A"
)

// Signal names of the target system (Fig. 8).
const (
	// SigMscnt is the millisecond clock provided by CLOCK.
	SigMscnt = "mscnt"
	// SigMsSlotNbr tells the module scheduler the current execution
	// slot; produced by CLOCK and fed back to it.
	SigMsSlotNbr = "ms_slot_nbr"
	// SigPACNT is the hardware pulse accumulator (system input).
	SigPACNT = "PACNT"
	// SigTIC1 is the hardware input-capture register latched at the
	// last tooth-wheel pulse (system input).
	SigTIC1 = "TIC1"
	// SigTCNT is the hardware free-running timer counter (system
	// input).
	SigTCNT = "TCNT"
	// SigPulscnt is the total pulse count provided by DIST_S.
	SigPulscnt = "pulscnt"
	// SigSlowSpeed is true when the drum velocity is below threshold.
	SigSlowSpeed = "slow_speed"
	// SigStopped is true when the drum has stopped.
	SigStopped = "stopped"
	// SigI is the current checkpoint index, produced by CALC and fed
	// back to it.
	SigI = "i"
	// SigSetValue is the pressure set point computed by CALC.
	SigSetValue = "SetValue"
	// SigADC is the A/D conversion of the applied pressure (system
	// input).
	SigADC = "ADC"
	// SigInValue is the validated applied-pressure value from PRES_S.
	SigInValue = "InValue"
	// SigOutValue is the regulator output from V_REG.
	SigOutValue = "OutValue"
	// SigTOC2 is the hardware output-compare register driving the
	// pressure valves (system output).
	SigTOC2 = "TOC2"
)

// Topology returns the software system model of Fig. 8: six modules,
// 25 input/output pairs, system inputs PACNT, TIC1, TCNT and ADC, and
// system output TOC2. Input and output port numbering follows the
// paper (e.g. PACNT is input 1 of DIST_S; SetValue is output 2 of
// CALC; mscnt is input 2 of CALC, so P^CALC_{2,1} is the permeability
// from mscnt to i).
func Topology() *model.System {
	sys, err := model.NewBuilder("arrestor").
		AddModule(ModClock,
			[]string{SigMsSlotNbr},
			[]string{SigMscnt, SigMsSlotNbr}).
		AddModule(ModDistS,
			[]string{SigPACNT, SigTIC1, SigTCNT},
			[]string{SigPulscnt, SigSlowSpeed, SigStopped}).
		AddModule(ModPresS,
			[]string{SigADC},
			[]string{SigInValue}).
		AddModule(ModCalc,
			[]string{SigPulscnt, SigMscnt, SigSlowSpeed, SigStopped, SigI},
			[]string{SigI, SigSetValue}).
		AddModule(ModVReg,
			[]string{SigSetValue, SigInValue},
			[]string{SigOutValue}).
		AddModule(ModPresA,
			[]string{SigOutValue},
			[]string{SigTOC2}).
		Build()
	if err != nil {
		// The topology is a package constant; failure to build it is a
		// programming error.
		panic("arrestor: topology invalid: " + err.Error())
	}
	return sys
}
