package arrestor

import (
	"errors"
	"fmt"

	"propane/internal/physics"
)

// NumCheckpoints is the number of predefined checkpoints along the
// runway at which CALC updates the pressure set point (Section 7.1).
const NumCheckpoints = 6

// NumSlots is the number of 1-ms execution slots of the scheduler
// ("the system operates in seven 1-ms-slots").
const NumSlots = 7

// Config holds the software and gear parameters of the target system.
type Config struct {
	// Physics configures the environment simulator.
	Physics physics.Config

	// TCNTTicksPerMs is the free-running timer rate (ticks per
	// millisecond). 250 gives a 4-µs tick and a 262-ms wrap period.
	TCNTTicksPerMs uint16
	// SlowGapTicks is the TCNT−TIC1 pulse gap above which DIST_S
	// asserts slow_speed.
	SlowGapTicks uint16
	// StopPersistMs is how many consecutive milliseconds without a
	// single tooth-wheel pulse DIST_S requires before latching
	// stopped. The persistence requirement is what makes the stopped
	// output non-permeable to transient input errors (paper OB2).
	StopPersistMs uint16

	// CheckpointPulses are the pulscnt thresholds of the six runway
	// checkpoints, strictly increasing.
	CheckpointPulses [NumCheckpoints]uint16
	// Profile is the base pressure set point per checkpoint segment
	// (segment 0 is before the first checkpoint) at the reference
	// speed, in SetValue units (full scale 65535).
	Profile [NumCheckpoints + 1]uint16
	// WindowMs is the mscnt window over which CALC estimates the drum
	// speed from pulscnt deltas.
	WindowMs uint16
	// VRefPulses is the pulse count per window at the reference speed;
	// the profile is scaled by measured/reference.
	VRefPulses uint16
	// SlowTarget is the set point used while slow_speed is asserted.
	SlowTarget uint16

	// MaxSlew is PRES_A's maximum TOC2 change per invocation (valve
	// protection).
	MaxSlew uint16

	// SlotPresS, SlotVReg and SlotPresA assign the 7-ms-period modules
	// to execution slots (0-based, distinct).
	SlotPresS, SlotVReg, SlotPresA int
}

// DefaultConfig returns the parameter set used for the paper
// reproduction: checkpoints at 20/60/110/170/230/290 m with 8
// pulses/m, a rising pressure profile, 60 m/s reference speed, 2 m/s
// slow-speed threshold and 200 ms stop persistence.
func DefaultConfig() Config {
	return Config{
		Physics:        physics.DefaultConfig(),
		TCNTTicksPerMs: 250,
		SlowGapTicks:   15625, // 62.5 ms: one pulse interval at 2 m/s
		StopPersistMs:  200,
		CheckpointPulses: [NumCheckpoints]uint16{
			160, 480, 880, 1360, 1840, 2320, // metres×8: 20,60,110,170,230,290
		},
		Profile: [NumCheckpoints + 1]uint16{
			9830, 22937, 36044, 45874, 52428, 55705, 58981, // 15..90% of full scale
		},
		WindowMs:   128,
		VRefPulses: 61, // 60 m/s · 8 pulses/m · 0.128 s
		SlowTarget: 4000,
		MaxSlew:    2048,
		SlotPresS:  1,
		SlotVReg:   3,
		SlotPresA:  5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Physics.Validate(); err != nil {
		return err
	}
	if c.TCNTTicksPerMs == 0 {
		return errors.New("arrestor: TCNTTicksPerMs must be positive")
	}
	if c.SlowGapTicks == 0 {
		return errors.New("arrestor: SlowGapTicks must be positive")
	}
	if c.StopPersistMs == 0 {
		return errors.New("arrestor: StopPersistMs must be positive")
	}
	for i := 1; i < NumCheckpoints; i++ {
		if c.CheckpointPulses[i] <= c.CheckpointPulses[i-1] {
			return fmt.Errorf("arrestor: checkpoint pulses must be strictly increasing (index %d)", i)
		}
	}
	if c.WindowMs == 0 {
		return errors.New("arrestor: WindowMs must be positive")
	}
	if c.VRefPulses == 0 {
		return errors.New("arrestor: VRefPulses must be positive")
	}
	if c.MaxSlew == 0 {
		return errors.New("arrestor: MaxSlew must be positive")
	}
	slots := map[int]string{}
	for _, s := range []struct {
		name string
		slot int
	}{
		{ModPresS, c.SlotPresS}, {ModVReg, c.SlotVReg}, {ModPresA, c.SlotPresA},
	} {
		if s.slot < 0 || s.slot >= NumSlots {
			return fmt.Errorf("arrestor: slot %d for %s out of range [0,%d)", s.slot, s.name, NumSlots)
		}
		if other, dup := slots[s.slot]; dup {
			return fmt.Errorf("arrestor: %s and %s share slot %d", other, s.name, s.slot)
		}
		slots[s.slot] = s.name
	}
	return nil
}
