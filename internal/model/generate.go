package model

import (
	"errors"
	"fmt"
	"math/rand"
)

// GenOptions configures RandomSystem.
type GenOptions struct {
	// Modules is the number of modules to generate (>= 1).
	Modules int
	// MaxPorts bounds the number of inputs and outputs per module
	// (>= 1).
	MaxPorts int
	// FeedbackProb is the probability that a module receives one of
	// its own outputs as an additional input (a local feedback loop,
	// like CLOCK's ms_slot_nbr or CALC's i).
	FeedbackProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// RandomSystem generates a valid random topology for property-based
// testing of the analysis algorithms: modules are arranged in a
// processing order, every input is either a fresh external signal, an
// output of an earlier module, or (with FeedbackProb) a local
// feedback; the final module's outputs are left unconsumed so the
// system always has at least one system input and one system output.
func RandomSystem(opt GenOptions) (*System, error) {
	if opt.Modules < 1 {
		return nil, errors.New("model: Modules must be >= 1")
	}
	if opt.MaxPorts < 1 {
		return nil, errors.New("model: MaxPorts must be >= 1")
	}
	if opt.FeedbackProb < 0 || opt.FeedbackProb > 1 {
		return nil, errors.New("model: FeedbackProb must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	b := NewBuilder(fmt.Sprintf("random-%d", opt.Seed))
	var upstream []string // outputs of already-generated modules
	extCount, sigCount := 0, 0

	for m := 0; m < opt.Modules; m++ {
		name := fmt.Sprintf("M%02d", m)

		nOut := 1 + rng.Intn(opt.MaxPorts)
		outputs := make([]string, 0, nOut)
		for k := 0; k < nOut; k++ {
			outputs = append(outputs, fmt.Sprintf("s%03d", sigCount))
			sigCount++
		}

		nIn := 1 + rng.Intn(opt.MaxPorts)
		inputs := make([]string, 0, nIn+1)
		used := make(map[string]bool)
		for i := 0; i < nIn; i++ {
			// Prefer wiring to an upstream output; fall back to a
			// fresh external input (always for the first module).
			if len(upstream) > 0 && rng.Float64() < 0.7 {
				cand := upstream[rng.Intn(len(upstream))]
				if !used[cand] {
					used[cand] = true
					inputs = append(inputs, cand)
					continue
				}
			}
			ext := fmt.Sprintf("ext%02d", extCount)
			extCount++
			inputs = append(inputs, ext)
		}
		// Local feedback consumes only a second-or-later output, so
		// every module's first output stays available downstream and
		// the final module always exports at least one system output.
		if len(outputs) > 1 && rng.Float64() < opt.FeedbackProb {
			fb := outputs[1+rng.Intn(len(outputs)-1)]
			if !used[fb] {
				inputs = append(inputs, fb)
			}
		}

		b.AddModule(name, inputs, outputs)

		// Only earlier outputs that are still unconsumed may be used
		// downstream (one driver, any number of receivers is fine —
		// but keeping each signal single-consumer here simplifies the
		// generator; multi-receiver topologies are covered by the
		// hand-written fixtures).
		remaining := upstream[:0]
		for _, s := range upstream {
			if !used[s] {
				remaining = append(remaining, s)
			}
		}
		upstream = append(remaining, outputs...)
	}
	return b.Build()
}
