package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalidTopology is the sentinel every Build validation failure
// wraps: callers (the campaign assembler, the declarative compiler,
// decoders) can branch on errors.Is(err, ErrInvalidTopology) without
// string-matching the accumulated detail.
var ErrInvalidTopology = errors.New("model: invalid topology")

// Builder constructs and validates a System. The zero value is not
// usable; create one with NewBuilder.
type Builder struct {
	name    string
	modules []*Module
	declOut []string
	errs    []error
}

// NewBuilder returns a Builder for a system with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddModule adds a module with the given input and output signal
// names; port indices are assigned 1..m and 1..n in argument order.
// Errors (duplicate module names, duplicate signals on one side of a
// module) are accumulated and reported by Build.
func (b *Builder) AddModule(name string, inputs, outputs []string) *Builder {
	if strings.TrimSpace(name) == "" {
		b.errs = append(b.errs, errors.New("model: module name must not be empty"))
		return b
	}
	for _, m := range b.modules {
		if m.Name == name {
			b.errs = append(b.errs, fmt.Errorf("model: duplicate module %q", name))
			return b
		}
	}
	mod := &Module{Name: name}
	seenIn := make(map[string]bool, len(inputs))
	for i, sig := range inputs {
		if sig == "" {
			b.errs = append(b.errs, fmt.Errorf("model: module %s input %d has empty signal name", name, i+1))
			continue
		}
		if seenIn[sig] {
			b.errs = append(b.errs, fmt.Errorf("model: module %s lists input signal %q twice", name, sig))
			continue
		}
		seenIn[sig] = true
		mod.Inputs = append(mod.Inputs, Port{Index: len(mod.Inputs) + 1, Signal: sig})
	}
	seenOut := make(map[string]bool, len(outputs))
	for k, sig := range outputs {
		if sig == "" {
			b.errs = append(b.errs, fmt.Errorf("model: module %s output %d has empty signal name", name, k+1))
			continue
		}
		if seenOut[sig] {
			b.errs = append(b.errs, fmt.Errorf("model: module %s lists output signal %q twice", name, sig))
			continue
		}
		seenOut[sig] = true
		mod.Outputs = append(mod.Outputs, Port{Index: len(mod.Outputs) + 1, Signal: sig})
	}
	b.modules = append(b.modules, mod)
	return b
}

// DeclareSystemOutput marks a signal as a system output even if some
// module consumes it (a tap on an internal signal). Signals driven by
// a module and consumed by no module are inferred as system outputs
// automatically and need no declaration.
func (b *Builder) DeclareSystemOutput(signal string) *Builder {
	b.declOut = append(b.declOut, signal)
	return b
}

// Build validates the topology and returns the immutable System.
// Validation enforces:
//   - at least one module;
//   - every signal has at most one driving output;
//   - every declared system output exists and is driven by a module;
//   - the system has at least one system input and one system output.
func (b *Builder) Build() (*System, error) {
	errs := make([]error, len(b.errs))
	copy(errs, b.errs)
	if len(b.modules) == 0 {
		errs = append(errs, fmt.Errorf("model: system %s has no modules", b.name))
	}

	drivers := make(map[string]Endpoint)
	receivers := make(map[string][]Endpoint)
	for _, m := range b.modules {
		for _, out := range m.Outputs {
			if prev, dup := drivers[out.Signal]; dup {
				errs = append(errs, fmt.Errorf(
					"model: signal %q driven by both %s output %d and %s output %d",
					out.Signal, prev.Module, prev.Index, m.Name, out.Index))
				continue
			}
			drivers[out.Signal] = Endpoint{Module: m.Name, Index: out.Index}
		}
	}
	for _, m := range b.modules {
		for _, in := range m.Inputs {
			receivers[in.Signal] = append(receivers[in.Signal], Endpoint{Module: m.Name, Index: in.Index})
		}
	}

	var inputs []string
	for sig := range receivers {
		if _, driven := drivers[sig]; !driven {
			inputs = append(inputs, sig)
		}
	}
	sort.Strings(inputs)

	outSet := make(map[string]bool)
	for sig := range drivers {
		if len(receivers[sig]) == 0 {
			outSet[sig] = true
		}
	}
	for _, sig := range b.declOut {
		if _, driven := drivers[sig]; !driven {
			errs = append(errs, fmt.Errorf("model: declared system output %q is not driven by any module", sig))
			continue
		}
		outSet[sig] = true
	}
	outputs := make([]string, 0, len(outSet))
	for sig := range outSet {
		outputs = append(outputs, sig)
	}
	sort.Strings(outputs)

	if len(errs) == 0 {
		if len(inputs) == 0 {
			errs = append(errs, fmt.Errorf("model: system %s has no system inputs", b.name))
		}
		if len(outputs) == 0 {
			errs = append(errs, fmt.Errorf("model: system %s has no system outputs", b.name))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("%w: %w", ErrInvalidTopology, errors.Join(errs...))
	}

	byName := make(map[string]*Module, len(b.modules))
	mods := make([]*Module, len(b.modules))
	for i, m := range b.modules {
		cp := &Module{Name: m.Name}
		cp.Inputs = append(cp.Inputs, m.Inputs...)
		cp.Outputs = append(cp.Outputs, m.Outputs...)
		mods[i] = cp
		byName[m.Name] = cp
	}
	return &System{
		name:      b.name,
		modules:   mods,
		byName:    byName,
		drivers:   drivers,
		receivers: receivers,
		inputs:    inputs,
		outputs:   outputs,
	}, nil
}
