package model

import "fmt"

// Stateful is implemented by simulation components (modules, hardware
// glue, plant models) that carry hidden state outside the signal bus.
// It is the per-component half of the checkpoint fast-forward
// machinery: an instance collects its Stateful components in a fixed
// registration order, captures them alongside a sim.Snapshot, and
// restores them into a freshly constructed clone.
type Stateful interface {
	// State returns an opaque value capturing all hidden state. The
	// value must be an independent copy: mutating the component after
	// State must not affect it (deep-copy any slices or maps).
	State() any
	// Restore overwrites the component's hidden state from a value
	// previously returned by State on an identically constructed
	// component. It returns an error if the value is not of the
	// expected type.
	Restore(state any) error
}

// CaptureStates captures every component's hidden state in order.
func CaptureStates(components []Stateful) []any {
	states := make([]any, len(components))
	for i, c := range components {
		states[i] = c.State()
	}
	return states
}

// RestoreAs implements the common body of a Stateful.Restore method:
// it type-asserts state to T (the type the matching State method
// returned) and copies it over dst.
func RestoreAs[T any](dst *T, state any) error {
	s, ok := state.(T)
	if !ok {
		var want T
		return fmt.Errorf("model: state is %T, want %T", state, want)
	}
	*dst = s
	return nil
}

// RestoreStates restores every component's hidden state in order. The
// state slice must come from CaptureStates over an identically
// registered component list.
func RestoreStates(components []Stateful, states []any) error {
	if len(states) != len(components) {
		return fmt.Errorf("model: %d states for %d stateful components — not the same topology",
			len(states), len(components))
	}
	for i, c := range components {
		if err := c.Restore(states[i]); err != nil {
			return fmt.Errorf("model: restoring component %d: %w", i, err)
		}
	}
	return nil
}
