package model

import (
	"encoding/json"
	"fmt"
)

// systemJSON is the on-disk schema for a System topology. Ports are
// serialised as ordered signal-name lists; indices are implicit.
type systemJSON struct {
	Name          string       `json:"name"`
	Modules       []moduleJSON `json:"modules"`
	SystemOutputs []string     `json:"system_outputs,omitempty"`
}

type moduleJSON struct {
	Name    string   `json:"name"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
}

// MarshalJSON encodes the system topology. Only declared-or-inferred
// system outputs that are also consumed internally need to be listed
// explicitly; for simplicity every system output is recorded.
func (s *System) MarshalJSON() ([]byte, error) {
	js := systemJSON{Name: s.name, SystemOutputs: s.SystemOutputs()}
	for _, m := range s.modules {
		mj := moduleJSON{Name: m.Name}
		for _, p := range m.Inputs {
			mj.Inputs = append(mj.Inputs, p.Signal)
		}
		for _, p := range m.Outputs {
			mj.Outputs = append(mj.Outputs, p.Signal)
		}
		js.Modules = append(js.Modules, mj)
	}
	return json.Marshal(js)
}

// DecodeSystem parses a JSON topology produced by MarshalJSON (or
// written by hand) and validates it with the standard Builder rules.
func DecodeSystem(data []byte) (*System, error) {
	var js systemJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("model: decoding system: %w", err)
	}
	b := NewBuilder(js.Name)
	for _, mj := range js.Modules {
		b.AddModule(mj.Name, mj.Inputs, mj.Outputs)
	}
	for _, out := range js.SystemOutputs {
		b.DeclareSystemOutput(out)
	}
	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("model: decoding system %q: %w", js.Name, err)
	}
	return sys, nil
}
