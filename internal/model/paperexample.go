package model

// PaperExampleSystem builds the five-module example system of the
// paper's Fig. 2 (modules A through E). The concrete wiring follows
// the propagation-path example of Section 4.2: module A feeds module
// B, module B has a local feedback loop (its output 1 drives its own
// input 2) and drives module E through its output 2, and modules C and
// D form a second chain into E. External input enters at A, C and E;
// the single system output is produced by E.
//
// Signal map:
//
//	extA -> A -> a1 -> B(in 1)
//	B out 1 = bfb -> B(in 2)   (local feedback)
//	B out 2 = b2  -> E(in 1)
//	extC -> C -> c1 -> D -> d1 -> E(in 2)
//	extE -> E(in 3)
//	E out 1 = sysout           (system output)
func PaperExampleSystem() *System {
	sys, err := NewBuilder("fig2-example").
		AddModule("A", []string{"extA"}, []string{"a1"}).
		AddModule("B", []string{"a1", "bfb"}, []string{"bfb", "b2"}).
		AddModule("C", []string{"extC"}, []string{"c1"}).
		AddModule("D", []string{"c1"}, []string{"d1"}).
		AddModule("E", []string{"b2", "d1", "extE"}, []string{"sysout"}).
		Build()
	if err != nil {
		// The topology above is a compile-time constant of this
		// package; failure to build it is a programming error.
		panic("model: paper example system is invalid: " + err.Error())
	}
	return sys
}
