package model

import (
	"errors"
	"reflect"
	"testing"
)

func buildExample(t *testing.T) *System {
	t.Helper()
	return PaperExampleSystem()
}

func TestPaperExampleSystemTopology(t *testing.T) {
	sys := buildExample(t)

	if got, want := sys.Name(), "fig2-example"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	if got, want := sys.ModuleNames(), []string{"A", "B", "C", "D", "E"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ModuleNames() = %v, want %v", got, want)
	}
	if got, want := sys.SystemInputs(), []string{"extA", "extC", "extE"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemInputs() = %v, want %v", got, want)
	}
	if got, want := sys.SystemOutputs(), []string{"sysout"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemOutputs() = %v, want %v", got, want)
	}
	if got, want := sys.TotalPairs(), 10; got != want {
		t.Errorf("TotalPairs() = %d, want %d", got, want)
	}
}

func TestDriverAndReceivers(t *testing.T) {
	sys := buildExample(t)

	tests := []struct {
		signal     string
		wantDriver Endpoint
		wantDriven bool
	}{
		{"a1", Endpoint{Module: "A", Index: 1}, true},
		{"bfb", Endpoint{Module: "B", Index: 1}, true},
		{"b2", Endpoint{Module: "B", Index: 2}, true},
		{"c1", Endpoint{Module: "C", Index: 1}, true},
		{"d1", Endpoint{Module: "D", Index: 1}, true},
		{"sysout", Endpoint{Module: "E", Index: 1}, true},
		{"extA", Endpoint{}, false},
		{"nonexistent", Endpoint{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.signal, func(t *testing.T) {
			d, ok := sys.Driver(tt.signal)
			if ok != tt.wantDriven {
				t.Fatalf("Driver(%q) ok = %v, want %v", tt.signal, ok, tt.wantDriven)
			}
			if ok && d != tt.wantDriver {
				t.Errorf("Driver(%q) = %+v, want %+v", tt.signal, d, tt.wantDriver)
			}
		})
	}

	recv := sys.Receivers("a1")
	want := []Endpoint{{Module: "B", Index: 1}}
	if !reflect.DeepEqual(recv, want) {
		t.Errorf("Receivers(a1) = %v, want %v", recv, want)
	}
	if got := sys.Receivers("sysout"); len(got) != 0 {
		t.Errorf("Receivers(sysout) = %v, want empty", got)
	}
}

func TestSystemInputOutputClassification(t *testing.T) {
	sys := buildExample(t)

	for _, in := range []string{"extA", "extC", "extE"} {
		if !sys.IsSystemInput(in) {
			t.Errorf("IsSystemInput(%q) = false, want true", in)
		}
		if sys.IsSystemOutput(in) {
			t.Errorf("IsSystemOutput(%q) = true, want false", in)
		}
	}
	if !sys.IsSystemOutput("sysout") {
		t.Error("IsSystemOutput(sysout) = false, want true")
	}
	for _, internal := range []string{"a1", "bfb", "b2", "c1", "d1"} {
		if sys.IsSystemInput(internal) || sys.IsSystemOutput(internal) {
			t.Errorf("signal %q misclassified as system input/output", internal)
		}
	}
}

func TestHasLocalFeedback(t *testing.T) {
	sys := buildExample(t)
	tests := []struct {
		module string
		want   bool
	}{
		{"A", false}, {"B", true}, {"C", false}, {"D", false}, {"E", false},
		{"no-such-module", false},
	}
	for _, tt := range tests {
		if got := sys.HasLocalFeedback(tt.module); got != tt.want {
			t.Errorf("HasLocalFeedback(%q) = %v, want %v", tt.module, got, tt.want)
		}
	}
}

func TestModulePortLookups(t *testing.T) {
	sys := buildExample(t)
	b, err := sys.Module("B")
	if err != nil {
		t.Fatalf("Module(B): %v", err)
	}
	if got, want := b.NumInputs(), 2; got != want {
		t.Errorf("NumInputs = %d, want %d", got, want)
	}
	if got, want := b.NumOutputs(), 2; got != want {
		t.Errorf("NumOutputs = %d, want %d", got, want)
	}
	if got, want := b.NumPairs(), 4; got != want {
		t.Errorf("NumPairs = %d, want %d", got, want)
	}
	if got, want := b.InputIndex("bfb"), 2; got != want {
		t.Errorf("InputIndex(bfb) = %d, want %d", got, want)
	}
	if got := b.InputIndex("no-such-signal"); got != 0 {
		t.Errorf("InputIndex(no-such-signal) = %d, want 0", got)
	}
	if got, want := b.OutputIndex("b2"), 2; got != want {
		t.Errorf("OutputIndex(b2) = %d, want %d", got, want)
	}
	sig, err := b.InputSignal(1)
	if err != nil || sig != "a1" {
		t.Errorf("InputSignal(1) = %q, %v; want a1, nil", sig, err)
	}
	if _, err := b.InputSignal(3); err == nil {
		t.Error("InputSignal(3) succeeded, want error")
	}
	if _, err := b.OutputSignal(0); err == nil {
		t.Error("OutputSignal(0) succeeded, want error")
	}
	if _, err := sys.Module("Z"); err == nil {
		t.Error("Module(Z) succeeded, want error")
	}
}

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*System, error)
	}{
		{
			name: "no modules",
			build: func() (*System, error) {
				return NewBuilder("empty").Build()
			},
		},
		{
			name: "duplicate module name",
			build: func() (*System, error) {
				return NewBuilder("dup").
					AddModule("M", []string{"x"}, []string{"y"}).
					AddModule("M", []string{"y"}, []string{"z"}).
					Build()
			},
		},
		{
			name: "two drivers for one signal",
			build: func() (*System, error) {
				return NewBuilder("multidriver").
					AddModule("M1", []string{"x"}, []string{"s"}).
					AddModule("M2", []string{"x"}, []string{"s"}).
					Build()
			},
		},
		{
			name: "duplicate input signal on one module",
			build: func() (*System, error) {
				return NewBuilder("dupin").
					AddModule("M", []string{"x", "x"}, []string{"y"}).
					Build()
			},
		},
		{
			name: "duplicate output signal on one module",
			build: func() (*System, error) {
				return NewBuilder("dupout").
					AddModule("M", []string{"x"}, []string{"y", "y"}).
					Build()
			},
		},
		{
			name: "empty module name",
			build: func() (*System, error) {
				return NewBuilder("noname").
					AddModule("  ", []string{"x"}, []string{"y"}).
					Build()
			},
		},
		{
			name: "empty signal name",
			build: func() (*System, error) {
				return NewBuilder("nosig").
					AddModule("M", []string{""}, []string{"y"}).
					Build()
			},
		},
		{
			name: "declared output not driven",
			build: func() (*System, error) {
				return NewBuilder("badout").
					AddModule("M", []string{"x"}, []string{"y"}).
					DeclareSystemOutput("nope").
					Build()
			},
		},
		{
			name: "no system inputs",
			build: func() (*System, error) {
				return NewBuilder("closed").
					AddModule("M", []string{"loop"}, []string{"loop", "out"}).
					Build()
			},
		},
		{
			name: "no system outputs",
			build: func() (*System, error) {
				return NewBuilder("sink").
					AddModule("M", []string{"x", "y"}, []string{"y"}).
					Build()
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Build() panicked: %v (invalid topologies must return errors)", r)
				}
			}()
			_, err := tt.build()
			if err == nil {
				t.Fatal("Build() succeeded, want error")
			}
			if !errors.Is(err, ErrInvalidTopology) {
				t.Errorf("Build() error %v does not wrap ErrInvalidTopology", err)
			}
		})
	}
}

func TestDeclareSystemOutputTap(t *testing.T) {
	// An internal signal consumed by a module can still be declared as
	// a system output (a tap).
	sys, err := NewBuilder("tap").
		AddModule("P", []string{"in"}, []string{"mid"}).
		AddModule("Q", []string{"mid"}, []string{"out"}).
		DeclareSystemOutput("mid").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got, want := sys.SystemOutputs(), []string{"mid", "out"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemOutputs() = %v, want %v", got, want)
	}
	if !sys.IsSystemOutput("mid") {
		t.Error("IsSystemOutput(mid) = false, want true")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sys := buildExample(t)
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	got, err := DecodeSystem(data)
	if err != nil {
		t.Fatalf("DecodeSystem: %v", err)
	}
	if !reflect.DeepEqual(got.ModuleNames(), sys.ModuleNames()) {
		t.Errorf("round-trip module names = %v, want %v", got.ModuleNames(), sys.ModuleNames())
	}
	if !reflect.DeepEqual(got.SystemInputs(), sys.SystemInputs()) {
		t.Errorf("round-trip inputs = %v, want %v", got.SystemInputs(), sys.SystemInputs())
	}
	if !reflect.DeepEqual(got.SystemOutputs(), sys.SystemOutputs()) {
		t.Errorf("round-trip outputs = %v, want %v", got.SystemOutputs(), sys.SystemOutputs())
	}
	if got.TotalPairs() != sys.TotalPairs() {
		t.Errorf("round-trip pairs = %d, want %d", got.TotalPairs(), sys.TotalPairs())
	}
	for _, sig := range sys.Signals() {
		gd, gok := got.Driver(sig)
		wd, wok := sys.Driver(sig)
		if gok != wok || gd != wd {
			t.Errorf("round-trip Driver(%q) = %+v/%v, want %+v/%v", sig, gd, gok, wd, wok)
		}
	}
}

func TestDecodeSystemErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"invalid json", `{`},
		{"invalid topology", `{"name":"x","modules":[{"name":"M","inputs":["a"],"outputs":["a"]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DecodeSystem([]byte(tt.data))
			if err == nil {
				t.Error("DecodeSystem succeeded, want error")
			}
			if tt.name == "invalid topology" && !errors.Is(err, ErrInvalidTopology) {
				t.Errorf("DecodeSystem error %v does not wrap ErrInvalidTopology", err)
			}
		})
	}
}

func TestModulesReturnsCopy(t *testing.T) {
	sys := buildExample(t)
	mods := sys.Modules()
	mods[0] = nil
	if sys.Modules()[0] == nil {
		t.Error("mutating Modules() result affected the system")
	}
	recv := sys.Receivers("a1")
	if len(recv) > 0 {
		recv[0] = Endpoint{Module: "hacked", Index: 99}
		if sys.Receivers("a1")[0].Module == "hacked" {
			t.Error("mutating Receivers() result affected the system")
		}
	}
}

func TestSignals(t *testing.T) {
	sys := buildExample(t)
	want := []string{"a1", "b2", "bfb", "c1", "d1", "extA", "extC", "extE", "sysout"}
	if got := sys.Signals(); !reflect.DeepEqual(got, want) {
		t.Errorf("Signals() = %v, want %v", got, want)
	}
}
