package model

import "testing"

func TestRandomSystemValidity(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sys, err := RandomSystem(GenOptions{
			Modules:      1 + int(seed%8),
			MaxPorts:     1 + int(seed%4),
			FeedbackProb: float64(seed%5) / 5,
			Seed:         seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sys.ModuleNames()) != 1+int(seed%8) {
			t.Errorf("seed %d: %d modules, want %d", seed, len(sys.ModuleNames()), 1+seed%8)
		}
		if len(sys.SystemInputs()) == 0 {
			t.Errorf("seed %d: no system inputs", seed)
		}
		if len(sys.SystemOutputs()) == 0 {
			t.Errorf("seed %d: no system outputs", seed)
		}
		// Every input signal is driven by at most one output (Builder
		// guarantees this; re-check through the public API).
		for _, sig := range sys.Signals() {
			if _, driven := sys.Driver(sig); !driven && !sys.IsSystemInput(sig) && !sys.IsSystemOutput(sig) {
				t.Errorf("seed %d: signal %s neither driven nor classified", seed, sig)
			}
		}
	}
}

func TestRandomSystemDeterminism(t *testing.T) {
	opt := GenOptions{Modules: 6, MaxPorts: 3, FeedbackProb: 0.5, Seed: 42}
	a, err := RandomSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("same seed produced different systems")
	}
}

func TestRandomSystemValidation(t *testing.T) {
	bad := []GenOptions{
		{Modules: 0, MaxPorts: 1},
		{Modules: 1, MaxPorts: 0},
		{Modules: 1, MaxPorts: 1, FeedbackProb: -0.1},
		{Modules: 1, MaxPorts: 1, FeedbackProb: 1.1},
	}
	for i, opt := range bad {
		if _, err := RandomSystem(opt); err == nil {
			t.Errorf("options %d accepted: %+v", i, opt)
		}
	}
}
