// Package model implements the software system model of Hiller, Jhumka
// and Suri (DSN 2001), Section 3: modular software viewed as black-box
// modules with numbered input and output ports, inter-linked by named
// signals, much like hardware components on a circuit board.
//
// A signal is driven by at most one module output; signals with no
// driver are system inputs (they originate externally, e.g. from a
// hardware register), and signals consumed by no module input are
// system outputs (their destination is external, e.g. a hardware
// register written by the software).
package model

import (
	"fmt"
	"sort"
)

// Port is one numbered input or output of a module. Indices are
// 1-based, following the paper's numbering convention (e.g. PACNT is
// input #1 of DIST_S, SetValue is output #2 of CALC).
type Port struct {
	// Index is the 1-based port number within its direction.
	Index int
	// Signal is the name of the signal carried by this port.
	Signal string
}

// Module is a generalised black-box with multiple inputs and outputs
// (paper Fig. 1). At the lowest level it may be a procedure or a
// function, but also a basic block or code fragment.
type Module struct {
	// Name uniquely identifies the module within its system.
	Name string
	// Inputs are the input ports in index order (1..m).
	Inputs []Port
	// Outputs are the output ports in index order (1..n).
	Outputs []Port
}

// NumInputs returns m, the number of input signals of the module.
func (m *Module) NumInputs() int { return len(m.Inputs) }

// NumOutputs returns n, the number of output signals of the module.
func (m *Module) NumOutputs() int { return len(m.Outputs) }

// NumPairs returns m*n, the number of input/output pairs, which is
// also the number of error permeability values the module carries and
// the upper bound of its non-weighted relative permeability (Eq. 3).
func (m *Module) NumPairs() int { return len(m.Inputs) * len(m.Outputs) }

// InputIndex returns the 1-based index of the input port carrying the
// named signal, or 0 if the module has no such input.
func (m *Module) InputIndex(signal string) int {
	for _, p := range m.Inputs {
		if p.Signal == signal {
			return p.Index
		}
	}
	return 0
}

// OutputIndex returns the 1-based index of the output port carrying
// the named signal, or 0 if the module has no such output.
func (m *Module) OutputIndex(signal string) int {
	for _, p := range m.Outputs {
		if p.Signal == signal {
			return p.Index
		}
	}
	return 0
}

// InputSignal returns the signal name on input port i (1-based).
func (m *Module) InputSignal(i int) (string, error) {
	if i < 1 || i > len(m.Inputs) {
		return "", fmt.Errorf("model: module %s has no input %d (has %d)", m.Name, i, len(m.Inputs))
	}
	return m.Inputs[i-1].Signal, nil
}

// OutputSignal returns the signal name on output port k (1-based).
func (m *Module) OutputSignal(k int) (string, error) {
	if k < 1 || k > len(m.Outputs) {
		return "", fmt.Errorf("model: module %s has no output %d (has %d)", m.Name, k, len(m.Outputs))
	}
	return m.Outputs[k-1].Signal, nil
}

// Endpoint identifies one port of one module, e.g. "input 2 of CALC".
type Endpoint struct {
	Module string
	Index  int // 1-based port index
}

// System is a set of inter-linked modules delivering a function
// (paper Fig. 2). Construct one with a Builder; a System returned by
// Builder.Build is immutable and fully validated.
type System struct {
	name    string
	modules []*Module

	byName    map[string]*Module
	drivers   map[string]Endpoint   // signal -> unique driving output
	receivers map[string][]Endpoint // signal -> consuming inputs, in module order
	inputs    []string              // system input signals, sorted
	outputs   []string              // system output signals, sorted
}

// Name returns the system's name.
func (s *System) Name() string { return s.name }

// Modules returns the modules in the order they were added. The
// returned slice is a copy; callers may not mutate system topology.
func (s *System) Modules() []*Module {
	out := make([]*Module, len(s.modules))
	copy(out, s.modules)
	return out
}

// ModuleNames returns the module names in insertion order.
func (s *System) ModuleNames() []string {
	names := make([]string, len(s.modules))
	for i, m := range s.modules {
		names[i] = m.Name
	}
	return names
}

// Module returns the named module, or an error if it does not exist.
func (s *System) Module(name string) (*Module, error) {
	m, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("model: system %s has no module %q", s.name, name)
	}
	return m, nil
}

// Driver returns the module output that drives the named signal. ok is
// false when the signal is a system input (driven externally).
func (s *System) Driver(signal string) (Endpoint, bool) {
	e, ok := s.drivers[signal]
	return e, ok
}

// Receivers returns the module inputs consuming the named signal, in
// module insertion order. The result is empty for system outputs.
func (s *System) Receivers(signal string) []Endpoint {
	rs := s.receivers[signal]
	out := make([]Endpoint, len(rs))
	copy(out, rs)
	return out
}

// SystemInputs returns the signals that enter the system from external
// sources (no module drives them), sorted by name.
func (s *System) SystemInputs() []string {
	out := make([]string, len(s.inputs))
	copy(out, s.inputs)
	return out
}

// SystemOutputs returns the signals produced by the system for
// external consumption (no module input consumes them), sorted by
// name.
func (s *System) SystemOutputs() []string {
	out := make([]string, len(s.outputs))
	copy(out, s.outputs)
	return out
}

// IsSystemInput reports whether the signal enters the system from an
// external source.
func (s *System) IsSystemInput(signal string) bool {
	_, driven := s.drivers[signal]
	_, known := s.receivers[signal]
	return !driven && known
}

// IsSystemOutput reports whether the signal leaves the system (is
// driven by a module but consumed by none, or explicitly declared).
func (s *System) IsSystemOutput(signal string) bool {
	for _, o := range s.outputs {
		if o == signal {
			return true
		}
	}
	return false
}

// Signals returns every signal name known to the system, sorted.
func (s *System) Signals() []string {
	set := make(map[string]struct{})
	for sig := range s.drivers {
		set[sig] = struct{}{}
	}
	for sig := range s.receivers {
		set[sig] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for sig := range set {
		out = append(out, sig)
	}
	sort.Strings(out)
	return out
}

// HasLocalFeedback reports whether the named module drives one of its
// own inputs (paper Section 4.2: "an output of a module is connected
// to an input of the same module").
func (s *System) HasLocalFeedback(module string) bool {
	m, ok := s.byName[module]
	if !ok {
		return false
	}
	for _, in := range m.Inputs {
		if d, driven := s.drivers[in.Signal]; driven && d.Module == module {
			return true
		}
	}
	return false
}

// TotalPairs returns the total number of input/output pairs across all
// modules (25 for the paper's target system).
func (s *System) TotalPairs() int {
	total := 0
	for _, m := range s.modules {
		total += m.NumPairs()
	}
	return total
}
