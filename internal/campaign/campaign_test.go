package campaign

import (
	"sync"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/sim"
)

// tinyConfig is the smallest campaign that still exercises every
// module input: 2 bits × 2 instants × 2 test cases = 8 injections per
// input signal, 104 runs.
func tinyConfig() Config {
	cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
	if err != nil {
		panic(err)
	}
	return Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1500, 3500},
		Bits:           []uint{2, 14},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

// tinyResult runs the tiny campaign once and caches it for all tests.
var (
	tinyOnce sync.Once
	tinyRes  *Result
	tinyErr  error
)

func tinyRun(t *testing.T) *Result {
	t.Helper()
	tinyOnce.Do(func() {
		tinyRes, tinyErr = Run(tinyConfig())
	})
	if tinyErr != nil {
		t.Fatalf("Run: %v", tinyErr)
	}
	return tinyRes
}

func TestRunCounts(t *testing.T) {
	res := tinyRun(t)
	// 13 input ports × 2 bits × 2 times × 2 cases.
	if got, want := res.Runs, 13*2*2*2; got != want {
		t.Errorf("Runs = %d, want %d", got, want)
	}
	if res.Unfired != 0 {
		t.Errorf("Unfired = %d, want 0 (every module reads every input each period)", res.Unfired)
	}
	if got := len(res.Pairs); got != 25 {
		t.Errorf("pairs = %d, want 25", got)
	}
	for _, ps := range res.Pairs {
		if ps.Injections != 8 {
			t.Errorf("pair %v injections = %d, want 8", ps.Pair, ps.Injections)
		}
		if ps.Estimate < 0 || ps.Estimate > 1 {
			t.Errorf("pair %v estimate %v out of range", ps.Pair, ps.Estimate)
		}
		if ps.CI.Low > ps.Estimate || ps.CI.High < ps.Estimate {
			t.Errorf("pair %v CI %v does not cover estimate %v", ps.Pair, ps.CI, ps.Estimate)
		}
	}
}

// TestPaperShapeProperties checks the structural results the paper
// reports for the target system (Section 8 and Tables 1–2), at tiny
// campaign scale.
func TestPaperShapeProperties(t *testing.T) {
	res := tinyRun(t)
	get := func(mod, in, out string) float64 {
		t.Helper()
		ps, err := res.PairBySignal(mod, in, out)
		if err != nil {
			t.Fatal(err)
		}
		return ps.Estimate
	}

	// CLOCK: the slot feedback is fully permeable, the ms counter is
	// independent of it (Table 2: P^CLOCK = 0.500, P̄ = 1.000).
	if got := get(arrestor.ModClock, arrestor.SigMsSlotNbr, arrestor.SigMsSlotNbr); got != 1 {
		t.Errorf("ms_slot_nbr->ms_slot_nbr = %v, want 1.0", got)
	}
	if got := get(arrestor.ModClock, arrestor.SigMsSlotNbr, arrestor.SigMscnt); got != 0 {
		t.Errorf("ms_slot_nbr->mscnt = %v, want 0.0", got)
	}

	// OB2: every permeability into stopped is zero.
	for _, in := range []string{arrestor.SigPACNT, arrestor.SigTIC1, arrestor.SigTCNT} {
		if got := get(arrestor.ModDistS, in, arrestor.SigStopped); got != 0 {
			t.Errorf("%s->stopped = %v, want 0.0 (OB2)", in, got)
		}
	}

	// The pulse count is fully driven by PACNT and independent of the
	// timer registers' direct data flow.
	if got := get(arrestor.ModDistS, arrestor.SigPACNT, arrestor.SigPulscnt); got != 1 {
		t.Errorf("PACNT->pulscnt = %v, want 1.0", got)
	}

	// The checkpoint feedback loop in CALC is highly permeable.
	if got := get(arrestor.ModCalc, arrestor.SigI, arrestor.SigI); got < 0.5 {
		t.Errorf("i->i = %v, want >= 0.5", got)
	}

	// The regulator chain is highly permeable (paper: 0.884/0.920/0.860).
	if got := get(arrestor.ModVReg, arrestor.SigSetValue, arrestor.SigOutValue); got < 0.7 {
		t.Errorf("SetValue->OutValue = %v, want >= 0.7", got)
	}
	if got := get(arrestor.ModVReg, arrestor.SigInValue, arrestor.SigOutValue); got < 0.7 {
		t.Errorf("InValue->OutValue = %v, want >= 0.7", got)
	}
	if got := get(arrestor.ModPresA, arrestor.SigOutValue, arrestor.SigTOC2); got < 0.5 {
		t.Errorf("OutValue->TOC2 = %v, want >= 0.5", got)
	}

	// PRES_S is the least permeable module (paper: 0.000; our median
	// filter leaves a small residue during pressure ramps).
	presS := get(arrestor.ModPresS, arrestor.SigADC, arrestor.SigInValue)
	if presS > 0.5 {
		t.Errorf("ADC->InValue = %v, want < 0.5 (filtered sensor)", presS)
	}
}

func TestMatrixMatchesPairStats(t *testing.T) {
	res := tinyRun(t)
	for _, ps := range res.Pairs {
		v, err := res.Matrix.Value(ps.Pair.Module, ps.Pair.In, ps.Pair.Out)
		if err != nil {
			t.Fatalf("Matrix.Value(%v): %v", ps.Pair, err)
		}
		if v != ps.Estimate {
			t.Errorf("matrix %v = %v, pair stats say %v", ps.Pair, v, ps.Estimate)
		}
	}
}

// TestNonUniformPropagation: the paper's Section 2 disputes the
// uniform-propagation claim of [12]; our campaign must exhibit
// locations whose propagation fraction is strictly between 0 and 1.
func TestNonUniformPropagation(t *testing.T) {
	res := tinyRun(t)
	nonUniform := res.NonUniformLocations(0.05, 0.95)
	if len(nonUniform) == 0 {
		t.Error("no non-uniform locations found; uniform propagation would be corroborated")
	}
	for _, loc := range nonUniform {
		if loc.Fraction <= 0.05 || loc.Fraction >= 0.95 {
			t.Errorf("location %s/%s fraction %v outside requested band", loc.Module, loc.Signal, loc.Fraction)
		}
	}
}

func TestPairBySignalErrors(t *testing.T) {
	res := tinyRun(t)
	if _, err := res.PairBySignal("NOPE", "a", "b"); err == nil {
		t.Error("PairBySignal(NOPE) succeeded")
	}
}

func TestOnlyModuleFilter(t *testing.T) {
	cfg := tinyConfig()
	cfg.OnlyModule = arrestor.ModVReg
	cfg.Times = cfg.Times[:1]
	cfg.Bits = cfg.Bits[:1]
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// V_REG has two inputs: 2 × 1 bit × 1 time × 2 cases = 4 runs.
	if got := res.Runs; got != 4 {
		t.Errorf("Runs = %d, want 4", got)
	}
	for _, ps := range res.Pairs {
		if ps.Pair.Module != arrestor.ModVReg && ps.Injections != 0 {
			t.Errorf("module %s received injections despite filter", ps.Pair.Module)
		}
	}
	cfg.OnlyModule = "NO_SUCH_MODULE"
	if _, err := Run(cfg); err == nil {
		t.Error("Run with unknown OnlyModule succeeded")
	}
}

func TestErrorModelCampaign(t *testing.T) {
	cfg := tinyConfig()
	cfg.Bits = nil
	cfg.Models = []inject.ErrorModel{inject.Replace{Value: 0xFFFF}}
	cfg.OnlyModule = arrestor.ModVReg
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ps, err := res.PairBySignal(arrestor.ModVReg, arrestor.SigSetValue, arrestor.SigOutValue)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Estimate == 0 {
		t.Error("replacing SetValue with 0xFFFF never propagated to OutValue")
	}
}

func TestConfigValidateCampaign(t *testing.T) {
	valid := tinyConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("tiny config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"no cases":        func(c *Config) { c.TestCases = nil },
		"no times":        func(c *Config) { c.Times = nil },
		"no errors":       func(c *Config) { c.Bits = nil; c.Models = nil },
		"zero horizon":    func(c *Config) { c.HorizonMs = 0 },
		"time >= horizon": func(c *Config) { c.Times = []sim.Millis{6000} },
		"negative time":   func(c *Config) { c.Times = []sim.Millis{-1} },
		"bad checkpoints": func(c *Config) { c.Checkpoints = CheckpointMode(99) },
		"neg window":      func(c *Config) { c.DirectWindowMs = -1 },
		"bad arrestor":    func(c *Config) { c.Arrestor.MaxSlew = 0 },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			c := tinyConfig()
			mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() accepted invalid config")
			}
			if _, err := Run(c); err == nil {
				t.Error("Run() accepted invalid config")
			}
		})
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	if len(cfg.TestCases) != 25 {
		t.Errorf("test cases = %d, want 25", len(cfg.TestCases))
	}
	if len(cfg.Times) != 10 || len(cfg.Bits) != 16 {
		t.Errorf("times/bits = %d/%d, want 10/16", len(cfg.Times), len(cfg.Bits))
	}
	// 16 bits × 10 instants × 25 cases = 4000 injections per input
	// signal, the paper's number.
	if n := len(cfg.Bits) * len(cfg.Times) * len(cfg.TestCases); n != 4000 {
		t.Errorf("injections per input = %d, want 4000", n)
	}
	if err := ReducedConfig().Validate(); err != nil {
		t.Errorf("ReducedConfig invalid: %v", err)
	}
}

// TestDeterministicCampaign: two identical campaigns produce identical
// estimates despite concurrent execution.
func TestDeterministicCampaign(t *testing.T) {
	cfg := tinyConfig()
	cfg.OnlyModule = arrestor.ModDistS
	cfg.Workers = 4
	run := func() map[string]float64 {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64)
		for _, ps := range res.Pairs {
			out[ps.Pair.String()] = ps.Estimate
		}
		return out
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("pair %s: %v vs %v across runs", k, v, b[k])
		}
	}
}

func TestLatencyPercentileAccessor(t *testing.T) {
	res := tinyRun(t)
	for i := range res.Pairs {
		ps := &res.Pairs[i]
		p50, ok := ps.LatencyPercentile(0.5)
		if ps.Errors == 0 {
			if ok {
				t.Errorf("%v: percentile available with zero errors", ps.Pair)
			}
			continue
		}
		if !ok {
			t.Errorf("%v: percentile unavailable with %d errors", ps.Pair, ps.Errors)
			continue
		}
		p95, _ := ps.LatencyPercentile(0.95)
		if p50 < 0 || p95 < p50 {
			t.Errorf("%v: percentiles inconsistent p50=%v p95=%v", ps.Pair, p50, p95)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := tinyConfig()
	cfg.OnlyModule = "PRES_A"
	var calls []int
	var total int
	cfg.Progress = func(done, tot int) {
		calls = append(calls, done)
		total = tot
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.Runs {
		t.Errorf("progress called %d times, want %d", len(calls), res.Runs)
	}
	if total != res.Runs {
		t.Errorf("progress total = %d, want %d", total, res.Runs)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("progress call %d reported done=%d", i, d)
			break
		}
	}
}

func TestPersistentFaultCampaign(t *testing.T) {
	cfg := tinyConfig()
	cfg.OnlyModule = "PRES_S"
	cfg.Bits = nil
	cfg.Models = []inject.ErrorModel{inject.Replace{Value: 0xFF00}}
	cfg.FaultDurationMs = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := res.PairBySignal("PRES_S", "ADC", "InValue")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Estimate < 0.9 {
		t.Errorf("persistent saturated ADC -> InValue = %v, want near 1", ps.Estimate)
	}
	bad := cfg
	bad.FaultDurationMs = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative fault duration accepted")
	}
}
