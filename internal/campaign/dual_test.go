package campaign

import (
	"sync"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/core"
	"propane/internal/physics"
	"propane/internal/sim"
)

func dualConfig() Config {
	cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
	if err != nil {
		panic(err)
	}
	return Config{
		Arrestor:       arrestor.DefaultConfig(),
		Dual:           true,
		TestCases:      cases,
		Times:          []sim.Millis{1500, 3500},
		Bits:           []uint{2, 14},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

var (
	dualOnce sync.Once
	dualRes  *Result
	dualErr  error
)

func dualRun(t *testing.T) *Result {
	t.Helper()
	dualOnce.Do(func() {
		dualRes, dualErr = Run(dualConfig())
	})
	if dualErr != nil {
		t.Fatalf("dual campaign: %v", dualErr)
	}
	return dualRes
}

func TestDualCampaignCounts(t *testing.T) {
	res := dualRun(t)
	// 19 input ports × 2 bits × 2 times × 2 cases.
	if got, want := res.Runs, 19*2*2*2; got != want {
		t.Errorf("Runs = %d, want %d", got, want)
	}
	if len(res.Pairs) != 31 {
		t.Errorf("pairs = %d, want 31", len(res.Pairs))
	}
	if res.Unfired != 0 {
		t.Errorf("Unfired = %d, want 0", res.Unfired)
	}
}

// TestDualLinkBarrier pins the containment property of the
// parity-protected link: single bit-flips in the frame never permeate
// to the slave's set point.
func TestDualLinkBarrier(t *testing.T) {
	res := dualRun(t)
	ps, err := res.PairBySignal(arrestor.ModComRX, arrestor.SigTxFrame, arrestor.SigSetValueB)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Estimate != 0 {
		t.Errorf("TXFRAME->SetValue_B permeability = %v, want 0 (parity barrier)", ps.Estimate)
	}
	// The transmitter, in contrast, is highly permeable.
	tx, err := res.PairBySignal(arrestor.ModComTX, arrestor.SigSetValue, arrestor.SigTxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Estimate < 0.5 {
		t.Errorf("SetValue->TXFRAME permeability = %v, want high", tx.Estimate)
	}
}

// TestDualBacktrackForest: the dual system has two system outputs and
// therefore two backtrack trees; the slave tree crosses the link.
func TestDualBacktrackForest(t *testing.T) {
	res := dualRun(t)
	forest, err := core.BacktrackForest(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 2 {
		t.Fatalf("forest size = %d, want 2", len(forest))
	}
	slave, ok := forest[arrestor.SigTOC2B]
	if !ok {
		t.Fatal("no backtrack tree for TOC2_B")
	}
	// The slave's tree passes through SetValue_B, TXFRAME and SetValue
	// back into the master.
	sawFrame := false
	slave.Root.Walk(func(n *core.Node) {
		if n.Signal == arrestor.SigTxFrame {
			sawFrame = true
		}
	})
	if !sawFrame {
		t.Error("slave backtrack tree does not cross the link frame")
	}
	// The master's tree is the familiar 22-path structure.
	if got := forest[arrestor.SigTOC2].Root.CountLeaves(); got != 22 {
		t.Errorf("master tree paths = %d, want 22", got)
	}
}

// TestDualModuleMeasures: the slave's exposure stems entirely from the
// link; with the parity barrier at zero permeability, V_REG_B's
// measured exposure through SetValue_B is the barrier's zero plus the
// slave sensor chain.
func TestDualModuleMeasures(t *testing.T) {
	res := dualRun(t)
	measures, err := res.Matrix.AllModuleMeasures()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]core.ModuleMeasures{}
	for _, mm := range measures {
		byName[mm.Module] = mm
	}
	if len(measures) != 11 {
		t.Fatalf("modules = %d, want 11", len(measures))
	}
	// COM_RX is exposed (it receives the frame from COM_TX).
	if !byName[arrestor.ModComRX].HasExposure {
		t.Error("COM_RX has no exposure, want some")
	}
	// PRES_S_B receives only the system input ADC_B: no exposure (OB1
	// again, on the slave).
	if byName[arrestor.ModPresSB].HasExposure {
		t.Error("PRES_S_B has exposure, want none")
	}
}

// TestLatencyAndClassification: counted errors carry latency and a
// transient/permanent split that adds up.
func TestLatencyAndClassification(t *testing.T) {
	res := dualRun(t)
	for _, ps := range res.Pairs {
		if ps.Transients+ps.Permanents != ps.Errors {
			t.Errorf("%v: transients %d + permanents %d != errors %d",
				ps.Pair, ps.Transients, ps.Permanents, ps.Errors)
		}
		if ps.MeanLatencyMs < 0 {
			t.Errorf("%v: negative latency %v", ps.Pair, ps.MeanLatencyMs)
		}
		if ps.Errors > 0 && ps.MeanLatencyMs > 500 {
			t.Errorf("%v: latency %v exceeds the direct window", ps.Pair, ps.MeanLatencyMs)
		}
	}
	// The CLOCK feedback corrupts permanently (the slot shift never
	// heals).
	ps, err := res.PairBySignal(arrestor.ModClock, arrestor.SigMsSlotNbr, arrestor.SigMsSlotNbr)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Permanents != ps.Errors || ps.Transients != 0 {
		t.Errorf("slot feedback classification T/P = %d/%d, want all permanent", ps.Transients, ps.Permanents)
	}
}
