// Package campaign orchestrates the fault-injection experiments of the
// paper's Sections 6 and 7: for every test case a Golden Run is
// recorded; then, for every (module, input signal, injection time,
// error) combination, an injection run executes with a one-shot trap
// armed, its signal traces are compared against the Golden Run on the
// fly, and the per-pair error counts yield the permeability estimates
// P^M_{i,k} = n_err / n_inj.
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"propane/internal/arrestor"
	"propane/internal/core"
	"propane/internal/estimate"
	"propane/internal/inject"
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/stats"
	"propane/internal/target"
	"propane/internal/trace"
)

// Config parameterises one campaign.
type Config struct {
	// Arrestor configures the target system and its environment.
	Arrestor arrestor.Config
	// Dual selects the master/slave two-node configuration of the real
	// deployment (Section 7.1) instead of the paper's single-node
	// setup: 11 modules, 31 pairs, two system outputs. The slave slots
	// are the arrestor package defaults and the second brake circuit
	// is added automatically.
	Dual bool
	// Custom, when non-nil, replaces the built-in arrestment targets
	// entirely (Dual and Arrestor are then ignored).
	Custom *Target
	// TestCases is the workload grid (the paper uses physics.PaperGrid).
	TestCases []physics.TestCase
	// Times are the injection instants.
	Times []sim.Millis
	// Bits are the bit positions flipped (the paper's error model).
	// Ignored when Models is non-empty.
	Bits []uint
	// Models, when non-empty, replaces the bit-flip model with an
	// arbitrary error-model list (used by the error-model ablation).
	Models []inject.ErrorModel
	// HorizonMs is the length of every run and of the Golden Run
	// Comparison window.
	HorizonMs sim.Millis
	// DirectWindowMs implements the paper's Section 7.3 rule "we only
	// took into account the direct errors on the outputs": an output
	// deviation counts toward n_err only if its first difference
	// appears within this many milliseconds of the trap firing.
	// Deviations appearing later stem from errors that left through
	// another output (or the environment) and came back. 0 disables
	// the window and counts every deviation.
	DirectWindowMs sim.Millis
	// Workers bounds the number of concurrent injection runs;
	// Workers <= 0 selects GOMAXPROCS.
	Workers int
	// Checkpoints selects the fast-forward strategy (see
	// CheckpointMode): the default CheckpointAuto snapshots the
	// simulation state at each injection instant and starts injection
	// runs there instead of replaying from t=0, whenever the target
	// supports it and no Instrument hook is configured. Results are
	// bit-identical either way.
	Checkpoints CheckpointMode
	// Prune selects equivalence pruning and run-result memoization
	// (see PruneMode): the default PruneAuto short-circuits injections
	// the golden run's read log proves unfired or no-op, serves
	// repeated experiments from a bounded result cache, and stops
	// executing runs whose state has reconverged to the golden run's at
	// a checkpoint instant. Results are bit-identical either way;
	// synthesized records carry RunRecord.Pruned.
	Prune PruneMode
	// Memo, when non-nil, plugs a second-level memo store behind the
	// in-process result cache: memoizable experiments missing the local
	// cache are looked up there before executing, and executed results
	// are offered back. A persistent backend lets identical experiments
	// be reused across campaigns and processes — the caller must scope
	// the backend to one campaign config digest (see
	// runner.Options.Memo). Only consulted when pruning is enabled;
	// hits are labeled PrunedMemoStore.
	Memo MemoBackend
	// Adaptive selects sequential, confidence-interval-driven sampling
	// of the injection space instead of the fixed bits × instants ×
	// cases enumeration (see AdaptiveMode and adaptive.go). The default
	// AdaptiveOff executes the full matrix, bit-identical to campaigns
	// recorded before adaptive mode existed. Adaptive campaigns ignore
	// Skip — the scheduler owns the job set; resume is driven by Replay,
	// whose records mark their samples settled before dispatch starts.
	Adaptive AdaptiveMode
	// CIEpsilon is the adaptive stopping half-width ε: sampling at a
	// location stops once every pair's conservative confidence interval
	// (and the location's system-propagation interval) has half-width
	// ≤ ε. 0 selects the 0.05 default. Only consulted when adaptive
	// sampling is in effect.
	CIEpsilon float64
	// OnlyModule, when non-empty, restricts injections to the inputs
	// of one module (useful for focused studies).
	OnlyModule string
	// Tolerances loosens the Golden Run Comparison per signal: a
	// deviation within the band counts as equal. The zero value is the
	// paper's exact comparison, which its Section 7.3 argues is valid
	// only because everything runs in simulated time; the tolerance
	// ablation probes what a real test rig's comparison would measure.
	Tolerances trace.Tolerances
	// FaultDurationMs switches from the paper's transient one-shot
	// errors (the zero value) to persistent faults: the error model is
	// re-applied on every matching read for this many milliseconds
	// after the injection instant. Pair with idempotent models
	// (stuck-at, replace) — a repeated bit-flip toggles.
	FaultDurationMs sim.Millis
	// Observer, when non-nil, receives the per-run detail of every
	// injection run. It is called serially from the aggregation loop,
	// so it needs no synchronisation of its own. The EDM placement
	// evaluation (internal/edm) is built on it.
	Observer func(RunRecord)
	// Progress, when non-nil, is called serially from the aggregation
	// loop after every completed injection run with the number done
	// and the total planned.
	Progress func(done, total int)
	// Instrument, when non-nil, is invoked for every injection run
	// after the instance is built and before it executes, so runtime
	// monitors (executable assertions) and runtime mechanisms
	// (recovery hooks) can be attached; caseIdx identifies the
	// workload point so per-case reference data (golden traces) can be
	// selected. It runs on worker goroutines; the value it returns is
	// handed back — unsynchronised state must live there — via
	// RunRecord.Attachment on the serial Observer path.
	Instrument func(inst Instance, caseIdx int) (any, error)
	// Skip, when non-nil, is consulted for every planned (injection,
	// test case) job before it is dispatched; returning true excludes
	// the job from execution. The orchestration layer
	// (internal/runner) uses it for deterministic sharding of the
	// injection space and for resuming a journaled campaign without
	// re-executing completed runs. Skipped jobs contribute nothing to
	// the aggregates — pair them with Replay to keep results whole.
	Skip func(inj inject.Injection, caseIdx int) bool
	// Replay seeds the aggregates with previously recorded runs —
	// typically journal entries from an interrupted campaign — before
	// any new injection run executes. Replayed records are not passed
	// to Observer or Progress again; aggregation is order-independent,
	// so a replayed-then-resumed campaign converges to the same Result
	// as an uninterrupted one. A record's Diffs only needs to carry
	// the deviating signals: a missing entry counts as "no deviation".
	Replay []RunRecord
	// Budget is the per-run watchdog applied to every simulation
	// kernel (golden and injection runs alike): a run exceeding its
	// step or wall budget terminates deterministically and is
	// classified OutcomeHang instead of stalling the campaign. The
	// zero value disables supervision — required for targets whose
	// injected errors can cause non-termination.
	Budget sim.Budget
	// OnJobError, when non-nil, decides what happens when an injection
	// job fails with an infrastructure error — instance construction,
	// instrumentation, or a panic outside the supervised target
	// execution (a worker crash). attempt counts the job's consecutive
	// failed executions, starting at 1. Returning RetryJob re-executes
	// the job; QuarantineJob settles it as OutcomeQuarantined (poison
	// job: reported, journaled via Observer, excluded from n_inj) and
	// moves on; AbortOnError — and a nil OnJobError — fails the whole
	// campaign, the pre-supervision behaviour. Target panics raised
	// during the run itself never reach this hook; they are classified
	// OutcomeCrash.
	OnJobError func(inj inject.Injection, caseIdx, attempt int, err error) JobErrorAction
	// Abort, when non-nil, is polled between job dispatches; once it
	// returns true no further jobs start. In-flight runs complete and
	// reach Observer, then Run returns the partial result without
	// error. The distributed execution layer (internal/distrib) uses
	// it to stop a worker whose lease has been reassigned. It is
	// called from the dispatch goroutine, concurrently with Observer —
	// implementations must be safe for that (e.g. an atomic flag).
	Abort func() bool

	// defect records a construction-time failure of a preset
	// constructor (e.g. ReducedConfig); Validate surfaces it joined to
	// ErrInvalidConfig instead of the constructor panicking.
	defect error
	// memoBound overrides the result cache's entry bound (tests only;
	// 0 selects defaultMemoBound).
	memoBound int
}

// JobErrorAction is OnJobError's verdict on a failed injection job.
type JobErrorAction int

const (
	// AbortOnError fails the campaign with the job's error (the zero
	// value, matching the unsupervised default).
	AbortOnError JobErrorAction = iota
	// RetryJob re-executes the failed job immediately.
	RetryJob
	// QuarantineJob gives up on the job, records it as
	// OutcomeQuarantined and continues the campaign without it.
	QuarantineJob
)

// QuarantinePolicy returns an OnJobError that retries a failing job
// until it has failed after consecutive times, then quarantines it —
// the supervisor policy of internal/runner, exposed for direct
// campaign users. logf (nil to discard) receives one line per retry
// and quarantine decision.
func QuarantinePolicy(after int, logf func(format string, args ...any)) func(inject.Injection, int, int, error) JobErrorAction {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return func(inj inject.Injection, caseIdx, attempt int, err error) JobErrorAction {
		if attempt < after {
			logf("campaign: retrying %v case %d after failure %d/%d: %v", inj, caseIdx, attempt, after, err)
			return RetryJob
		}
		logf("campaign: quarantining %v case %d after %d consecutive failures: %v", inj, caseIdx, attempt, err)
		return QuarantineJob
	}
}

// Outcome classifies one injection run — the paper's PROPANE tool
// records the same taxonomy (Section 4): an injected error may leave
// the target's data flow undisturbed (ok), deviate it (deviation),
// crash the target (crash) or drive it into non-termination (hang).
// Quarantined marks a poison job the supervisor gave up executing.
type Outcome string

const (
	// OutcomeOK: the run completed and no monitored signal deviated
	// from the Golden Run.
	OutcomeOK Outcome = "ok"
	// OutcomeDeviation: the run completed and at least one monitored
	// signal deviated.
	OutcomeDeviation Outcome = "deviation"
	// OutcomeCrash: target code panicked during the run; the panic
	// value is preserved in RunRecord.Detail.
	OutcomeCrash Outcome = "crash"
	// OutcomeHang: the run exceeded its Config.Budget and was
	// terminated by the watchdog.
	OutcomeHang Outcome = "hang"
	// OutcomeQuarantined: the job repeatedly crashed the worker and
	// was abandoned under the OnJobError policy; RunRecord.Detail
	// holds the last error and RunRecord.Attempts the failure count.
	OutcomeQuarantined Outcome = "quarantined"
)

// Instance, RunnableInstance and Target re-export the target
// abstraction (see internal/target); *arrestor.Instance satisfies
// RunnableInstance, and internal/autobrake provides a second target.
type (
	Instance         = target.Instance
	RunnableInstance = target.RunnableInstance
	Target           = target.Target
)

// RunRecord is the per-run detail passed to Config.Observer.
type RunRecord struct {
	Injection inject.Injection
	CaseIndex int
	Fired     bool
	FiredAt   sim.Millis
	// Diffs holds the Golden Run Comparison result for the deviating
	// signals; a signal without an entry matched the golden run
	// everywhere. (Replay accepts either this sparse form or a full
	// per-signal map.)
	Diffs map[string]trace.Diff
	// SystemFailure is true when any system output deviated; FailureAt
	// is the earliest first-difference over the system outputs (-1
	// when none deviated).
	SystemFailure bool
	FailureAt     sim.Millis
	// Attachment is whatever Config.Instrument returned for this run.
	Attachment any
	// Outcome classifies the run. The zero value ("") appears only on
	// records replayed from pre-supervision journals and is treated as
	// ok-or-deviation, derived from Diffs.
	Outcome Outcome
	// Detail carries the crash panic value or the quarantine reason.
	Detail string
	// Attempts is the consecutive-failure count behind a quarantined
	// record (0 otherwise).
	Attempts int
	// Pruned labels how a pruned run's outcome was obtained (one of
	// the Pruned* constants); empty for a fully executed run. The
	// outcome itself is bit-identical either way, so the label is
	// documentation, never part of record identity.
	Pruned string
	// Round is the adaptive sampling batch this run settled in
	// (1-based; 0 for full-matrix campaigns). Like Pruned it documents
	// how the run was scheduled and is never part of record identity.
	Round int
}

// PaperConfig returns the paper's full campaign: 25 test cases, 16
// bits, 10 instants from 0.5 s to 5.0 s — 16·10·25 = 4000 injections
// per input signal, 52 000 runs in total over the 13 input ports.
func PaperConfig() Config {
	return Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      physics.PaperGrid(),
		Times:          inject.PaperTimes(),
		Bits:           inject.AllBits(),
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

// ReducedConfig returns a scaled-down campaign (4 bits × 3 instants ×
// 4 test cases = 48 injections per input signal) that preserves the
// qualitative structure of the results while running in seconds. It
// is used by the test suite and the examples.
func ReducedConfig() Config {
	cases, err := physics.Grid(2, 2, 8000, 20000, 40, 80)
	if err != nil {
		// A library must not panic on a bad preset: defer the failure
		// to Validate, where it surfaces joined to ErrInvalidConfig.
		return Config{defect: fmt.Errorf("campaign: reduced grid invalid: %w", err)}
	}
	return Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1000, 2500, 4000},
		Bits:           []uint{0, 5, 10, 15},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

// ErrInvalidConfig is wrapped by every error Validate returns, so
// orchestration layers (internal/runner) can distinguish
// configuration mistakes from execution failures with errors.Is.
var ErrInvalidConfig = errors.New("campaign: invalid configuration")

// configError preserves the specific validation message while
// matching ErrInvalidConfig (and, for wrapped target errors, the
// underlying cause) under errors.Is/As.
type configError struct{ err error }

func (e *configError) Error() string   { return e.err.Error() }
func (e *configError) Unwrap() []error { return []error{e.err, ErrInvalidConfig} }

func invalidf(format string, args ...any) error {
	return &configError{err: fmt.Errorf(format, args...)}
}

// Validate reports configuration errors. Every returned error wraps
// ErrInvalidConfig.
func (c Config) Validate() error {
	if c.defect != nil {
		return &configError{err: c.defect}
	}
	if c.Custom != nil {
		if c.Custom.Topology == nil || c.Custom.New == nil {
			return invalidf("campaign: custom target needs Topology and New")
		}
	} else if err := c.Arrestor.Validate(); err != nil {
		return &configError{err: err}
	}
	if len(c.TestCases) == 0 {
		return invalidf("campaign: no test cases")
	}
	if len(c.Times) == 0 {
		return invalidf("campaign: no injection times")
	}
	if len(c.Bits) == 0 && len(c.Models) == 0 {
		return invalidf("campaign: no bits and no error models")
	}
	if c.HorizonMs <= 0 {
		return invalidf("campaign: horizon must be positive")
	}
	for _, at := range c.Times {
		if at < 0 || at >= c.HorizonMs {
			return invalidf("campaign: injection time %d outside [0,%d)", at, c.HorizonMs)
		}
	}
	switch c.Checkpoints {
	case CheckpointAuto, CheckpointOff, CheckpointForce:
	default:
		return invalidf("campaign: unknown checkpoint mode %d", c.Checkpoints)
	}
	switch c.Prune {
	case PruneAuto, PruneOff, PruneForce:
	default:
		return invalidf("campaign: unknown prune mode %d", c.Prune)
	}
	switch c.Adaptive {
	case AdaptiveOff, AdaptiveAuto, AdaptiveForce:
	default:
		return invalidf("campaign: unknown adaptive mode %d", c.Adaptive)
	}
	if c.CIEpsilon < 0 || c.CIEpsilon >= 0.5 {
		return invalidf("campaign: CI epsilon %v outside [0, 0.5)", c.CIEpsilon)
	}
	if c.DirectWindowMs < 0 {
		return invalidf("campaign: negative direct window")
	}
	if c.FaultDurationMs < 0 {
		return invalidf("campaign: negative fault duration")
	}
	if c.Budget.Steps < 0 || c.Budget.Wall < 0 {
		return invalidf("campaign: negative run budget")
	}
	return nil
}

// PairStats holds the raw counts and the estimate for one
// input/output pair (one cell of the paper's Table 1).
type PairStats struct {
	Pair         core.Pair
	InputSignal  string
	OutputSignal string
	// Injections is n_inj: runs in which the trap fired on this input.
	Injections int
	// Errors is n_err: runs in which this output's trace deviated from
	// the Golden Run.
	Errors int
	// Estimate is n_err / n_inj (0 when nothing fired).
	Estimate float64
	// CI is the 95% Wilson interval of the estimate.
	CI stats.Interval
	// MeanLatencyMs is the mean propagation latency over the counted
	// error runs: the delay from the trap firing to the first
	// deviation of this output. Zero when no errors were counted.
	MeanLatencyMs float64
	// Transients and Permanents classify the counted error runs by
	// whether the output re-converged to the Golden Run within the
	// window (transient) or was still deviating at its end
	// (permanent). Transients + Permanents == Errors.
	Transients, Permanents int
	// Crashes and Hangs count runs injecting at this pair's input that
	// crashed or hung the target instead of completing. They are NOT
	// part of the Injections denominator: a crashed or hung run tells
	// us nothing about whether the error would have permeated, so
	// counting it would silently dilute the estimate.
	Crashes, Hangs int

	latencySum int64
	latencies  []float64
}

// LatencyPercentile returns the p-quantile (0..1) of the propagation
// latencies over the counted error runs; ok is false when no errors
// were counted.
func (ps *PairStats) LatencyPercentile(p float64) (float64, bool) {
	v, err := stats.Percentile(ps.latencies, p)
	if err != nil {
		return 0, false
	}
	return v, true
}

// LocationPropagation summarises, for one injection location (module
// input), how often injected errors propagated all the way to a system
// output — the quantity behind the uniform-propagation hypothesis of
// [12] that the paper's Section 2 disputes. Under that hypothesis the
// fraction would be close to 0 or 1 at every location.
type LocationPropagation struct {
	Module     string
	Signal     string
	Injections int
	Propagated int
	Fraction   float64
	// Crashes, Hangs and Quarantined count the supervised failure
	// modes of runs injecting at this location, excluded from the
	// Injections denominator.
	Crashes, Hangs, Quarantined int
}

// Result is the outcome of a campaign.
type Result struct {
	// Topology is the analysed system.
	Topology *model.System
	// Matrix holds the estimated permeability values (Table 1), ready
	// for the core analyses (Tables 2–4, trees, placement).
	Matrix *core.Matrix
	// Pairs holds raw statistics per input/output pair, in topology
	// order.
	Pairs []PairStats
	// Locations holds the per-location system-output propagation
	// fractions, in topology order.
	Locations []LocationPropagation
	// Runs is the number of settled injection jobs (completed runs
	// plus quarantined ones); Unfired counts completed runs whose trap
	// never fired (the module never read the input after the arm
	// time).
	Runs, Unfired int
	// Crashes and Hangs count runs terminated by a target panic or by
	// the watchdog; Quarantined lists the poison jobs the supervisor
	// abandoned. All three are excluded from every permeability
	// denominator, so a partial campaign stays honest about what it
	// measured.
	Crashes, Hangs int
	Quarantined    []QuarantinedJob
	// Pruning documents how the settled runs' outcomes were obtained
	// (executed vs pruned/memoized). It never affects the estimates —
	// pruned runs keep their synthesized outcomes in every denominator.
	Pruning PruneStats
	// Predictions is the analytical permeability forecast
	// (internal/estimate) computed from the topology and the golden
	// runs' signal activity — the prediction the report cross-validates
	// against the measured estimates. Always populated by Run.
	Predictions *estimate.Prediction
	// Adaptive documents the sequential sampler's spending; nil for
	// full-matrix campaigns.
	Adaptive *AdaptiveStats
}

// QuarantinedJob describes one poison job: an injection job abandoned
// after repeatedly crashing its worker.
type QuarantinedJob struct {
	Injection inject.Injection
	CaseIndex int
	// Attempts is how many consecutive executions failed before the
	// job was quarantined.
	Attempts int
	// Reason is the last failure's error text.
	Reason string
}

// runOutcome is one injection run's contribution to the aggregates.
type runOutcome struct {
	injection   inject.Injection
	caseIdx     int
	fired       bool
	firedAt     sim.Millis
	outputFirst map[string]sim.Millis // first diff per output signal, -1 if none
	systemDiff  bool
	failureAt   sim.Millis
	diffs       map[string]trace.Diff // full detail for the observer
	attachment  any                   // Instrument's per-run state
	outcome     Outcome
	detail      string // panic value (crash) or last error (quarantined)
	attempts    int    // consecutive failures behind a quarantine
	pruned      string // Pruned* label, "" for a fully executed run
}

// Plan returns the campaign's deterministic injection plan — the
// exact enumeration Run executes, in the same order. The executed job
// list is the cross product plan × TestCases, ordered plan-index
// major, case-index minor; deterministic sharding and journal resume
// (internal/runner) rely on this enumeration being stable across
// processes for a given Config.
func (c Config) Plan() ([]inject.Injection, error) {
	sys := c.topology()
	var plan []inject.Injection
	if len(c.Models) > 0 {
		plan = inject.ModelPlan(sys, c.Times, c.Models)
	} else {
		plan = inject.BitFlipPlan(sys, c.Times, c.Bits)
	}
	if c.OnlyModule != "" {
		var filtered []inject.Injection
		for _, inj := range plan {
			if inj.Module == c.OnlyModule {
				filtered = append(filtered, inj)
			}
		}
		plan = filtered
		if len(plan) == 0 {
			return nil, fmt.Errorf("campaign: module %q has no injectable inputs", c.OnlyModule)
		}
	}
	return plan, nil
}

// Run executes the campaign and aggregates the permeability matrix.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := cfg.topology()

	goldens, preds, err := goldenRuns(cfg)
	if err != nil {
		return nil, err
	}

	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}

	type job struct {
		inj     inject.Injection
		caseIdx int
	}
	// The analytical forecast is cheap (pure topology arithmetic plus
	// one pass over the golden traces) and always attached to the
	// result; adaptive campaigns additionally use it to importance-order
	// their sampling.
	pred := estimate.Predict(sys, estimate.Options{Activity: goldenActivity(goldens)})
	adaptive := cfg.adaptiveEnabled()
	// Materialise the job list up front (applying Skip) so that, when
	// checkpointing is active, jobs can be grouped by (test case,
	// injection instant): every group shares one cached snapshot, so
	// the grouping turns the cache's lazy build passes into long runs
	// of hits. Aggregation is order-independent and journal records
	// identify jobs by content, so the ordering is free to choose.
	// Adaptive campaigns skip the list: the scheduler owns dispatch.
	var jobList []job
	if !adaptive {
		for _, inj := range plan {
			for ci := range cfg.TestCases {
				if cfg.Skip != nil && cfg.Skip(inj, ci) {
					continue
				}
				jobList = append(jobList, job{inj: inj, caseIdx: ci})
			}
		}
	}
	var ckpts *checkpointCache
	if (adaptive || len(jobList) > 0) && cfg.checkpointsEnabled() {
		ckpts = newCheckpointCache(cfg)
		sort.SliceStable(jobList, func(i, j int) bool {
			if jobList[i].caseIdx != jobList[j].caseIdx {
				return jobList[i].caseIdx < jobList[j].caseIdx
			}
			return jobList[i].inj.At < jobList[j].inj.At
		})
	}
	var pr *pruner
	if (adaptive || len(jobList) > 0) && preds != nil && cfg.pruningEnabled() {
		pr = newPruner(cfg, preds)
	}
	var sched *adaptiveScheduler
	if adaptive {
		sched, err = newAdaptiveScheduler(cfg, plan, preds, pred)
		if err != nil {
			return nil, err
		}
		// Seed the scheduler with the replayed records before dispatch
		// starts: their samples are settled, so resume never re-executes
		// them and every stopping decision replays bit-identically.
		for _, rec := range cfg.Replay {
			out, err := recordOutcome(sys, rec)
			if err != nil {
				return nil, err
			}
			if _, err := sched.observe(out); err != nil {
				return nil, fmt.Errorf("campaign: replaying into adaptive schedule: %w", err)
			}
		}
	}

	jobs := make(chan job)
	outcomes := make(chan runOutcome)

	// First error wins; done stops the feeder so workers can drain.
	done := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < workerCount(cfg.Workers); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := superviseJob(cfg, sys, goldens[j.caseIdx], j.caseIdx, j.inj, ckpts, pr)
				if err != nil {
					fail(err)
					continue // keep draining jobs so the feeder never blocks
				}
				outcomes <- out
			}
		}()
	}
	go func() {
		defer close(jobs)
		if sched != nil {
			for {
				if cfg.Abort != nil && cfg.Abort() {
					return
				}
				sj, ok := sched.next(done)
				if !ok {
					return
				}
				select {
				case jobs <- job{inj: plan[sj.planIdx], caseIdx: sj.caseIdx}:
				case <-done:
					return
				}
			}
		}
		for _, j := range jobList {
			if cfg.Abort != nil && cfg.Abort() {
				return
			}
			select {
			case jobs <- j:
			case <-done:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	totalRuns := len(plan) * len(cfg.TestCases)
	if sched != nil {
		// The fireable population bounds an adaptive campaign from
		// above; the stopping rule usually closes far earlier.
		totalRuns = sched.population
	}
	res := newResult(sys, cfg.DirectWindowMs, int(cfg.HorizonMs))
	for _, rec := range cfg.Replay {
		if err := res.absorbRecord(sys, rec); err != nil {
			fail(err)
			break
		}
	}
	for out := range outcomes {
		round := 0
		if sched != nil {
			r, oerr := sched.observe(out)
			if oerr != nil {
				fail(oerr)
			} else {
				round = r
			}
		}
		res.absorb(sys, out)
		if cfg.Progress != nil {
			cfg.Progress(res.Runs, totalRuns)
		}
		if cfg.Observer != nil {
			cfg.Observer(RunRecord{
				Injection:     out.injection,
				CaseIndex:     out.caseIdx,
				Fired:         out.fired,
				FiredAt:       out.firedAt,
				Diffs:         out.diffs,
				SystemFailure: out.systemDiff,
				FailureAt:     out.failureAt,
				Attachment:    out.attachment,
				Outcome:       out.outcome,
				Detail:        out.detail,
				Attempts:      out.attempts,
				Pruned:        out.pruned,
				Round:         round,
			})
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := res.finalise(sys); err != nil {
		return nil, err
	}
	res.Predictions = pred
	if sched != nil {
		st := sched.stats()
		res.Adaptive = &st
	}
	return res.Result, nil
}

// System returns the module/signal topology of the selected target —
// the model injections are planned over and results are keyed by.
func (c Config) System() *model.System { return c.topology() }

// topology returns the system model of the selected target.
func (c Config) topology() *model.System {
	switch {
	case c.Custom != nil:
		return c.Custom.Topology()
	case c.Dual:
		return arrestor.DualTopology()
	default:
		return arrestor.Topology()
	}
}

// NewInstance builds a fresh target instance of the selected
// configuration — the same constructor the campaign uses internally,
// exposed so callers (e.g. internal/edm's assertion study) can run
// matching golden simulations.
func (c Config) NewInstance(tc physics.TestCase, hook sim.ReadHook) (RunnableInstance, error) {
	switch {
	case c.Custom != nil:
		return c.Custom.New(tc, hook)
	case c.Dual:
		return arrestor.NewDualInstance(arrestor.DualFrom(c.Arrestor), tc, hook)
	default:
		return arrestor.NewInstance(c.Arrestor, tc, hook)
	}
}

// workerCount resolves Config.Workers: values <= 0 select GOMAXPROCS.
func workerCount(configured int) int {
	if configured <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}

// goldenRuns records one Golden Run per test case, fanned out over
// the same worker-pool pattern Run uses for injection jobs (each run
// is fully independent and deterministic, so the resulting traces are
// identical to a serial recording). When the campaign prunes, each
// golden run additionally captures the instrumented-read log and
// distills it into the per-case firing predictions; the returned
// predictions are nil otherwise.
func goldenRuns(cfg Config) ([]*trace.Trace, []casePredictions, error) {
	capture := cfg.pruningEnabled() || cfg.adaptiveEnabled()
	goldens := make([]*trace.Trace, len(cfg.TestCases))
	var preds []casePredictions
	if capture {
		preds = make([]casePredictions, len(cfg.TestCases))
	}
	errs := make([]error, len(cfg.TestCases))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workerCount(cfg.Workers); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var p casePredictions
				goldens[i], p, errs[i] = goldenRun(cfg, i, capture)
				if capture {
					preds[i] = p
				}
			}
		}()
	}
	for i := range cfg.TestCases {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return goldens, preds, nil
}

// goldenRun records the Golden Run of one test case, optionally
// logging every instrumented read for the pruning predictions. The
// read hook only observes, so the recorded trace is bit-identical
// with and without it.
func goldenRun(cfg Config, i int, capture bool) (*trace.Trace, casePredictions, error) {
	var lg *readLog
	var hook sim.ReadHook
	if capture {
		lg = newReadLog()
		hook = lg.hook()
	}
	inst, err := cfg.NewInstance(cfg.TestCases[i], hook)
	if err != nil {
		return nil, casePredictions{}, fmt.Errorf("campaign: golden run %d: %w", i, err)
	}
	rec, err := trace.NewRecorderCap(inst.Bus(), int(cfg.HorizonMs))
	if err != nil {
		return nil, casePredictions{}, fmt.Errorf("campaign: golden run %d: %w", i, err)
	}
	inst.Kernel().AddPostHook(rec.Hook())
	inst.Kernel().SetBudget(cfg.Budget)
	// A golden run is uninjected: a crash or hang here is a broken
	// target or an undersized budget, not a result.
	if crashed, pv := runGuarded(inst, cfg.HorizonMs); crashed {
		return nil, casePredictions{}, fmt.Errorf("campaign: golden run %d crashed: %v", i, pv)
	}
	if inst.Kernel().Exhausted() {
		return nil, casePredictions{}, fmt.Errorf("campaign: golden run %d exceeded the run budget (%d steps used) — raise Config.Budget or fix the target", i, inst.Kernel().BudgetUsed())
	}
	var preds casePredictions
	if capture {
		// Distill immediately so the raw event slices (potentially a
		// couple of MB per case) are garbage-collected here.
		preds = lg.distill(cfg.Times, cfg.FaultDurationMs)
	}
	return rec.Trace(), preds, nil
}

// superviseJob drives one injection job to a settled outcome under
// the fault-isolation policy: worker panics become errors, errors
// consult Config.OnJobError, and a quarantined job yields an
// OutcomeQuarantined record instead of failing the campaign.
func superviseJob(cfg Config, sys *model.System, golden *trace.Trace, caseIdx int, inj inject.Injection, ckpts *checkpointCache, pr *pruner) (runOutcome, error) {
	attempt := 0
	for {
		out, err := supervisedRun(cfg, sys, golden, caseIdx, inj, ckpts, pr)
		if err == nil {
			return out, nil
		}
		attempt++
		action := AbortOnError
		if cfg.OnJobError != nil {
			action = cfg.OnJobError(inj, caseIdx, attempt, err)
		}
		switch action {
		case RetryJob:
			continue
		case QuarantineJob:
			return runOutcome{
				injection: inj,
				caseIdx:   caseIdx,
				outcome:   OutcomeQuarantined,
				detail:    err.Error(),
				attempts:  attempt,
				failureAt: -1,
			}, nil
		default:
			return runOutcome{}, err
		}
	}
}

// supervisedRun executes one injection run with worker-level fault
// isolation: a panic outside the guarded target execution (instance
// construction, instrumentation, comparison setup) is converted into
// an error so the retry/quarantine policy can handle it.
func supervisedRun(cfg Config, sys *model.System, golden *trace.Trace, caseIdx int, inj inject.Injection, ckpts *checkpointCache, pr *pruner) (out runOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: worker panic on %v case %d: %v", inj, caseIdx, r)
		}
	}()
	return injectionRun(cfg, sys, golden, caseIdx, inj, ckpts, pr)
}

// runGuarded drives the instance to the horizon, converting a panic
// raised by target code into a crash classification. Budget
// exhaustion is recovered inside the kernel itself and reported via
// Kernel.Exhausted, so the two failure modes stay distinguishable.
func runGuarded(inst RunnableInstance, horizon sim.Millis) (crashed bool, panicVal any) {
	defer func() {
		if r := recover(); r != nil {
			crashed, panicVal = true, r
		}
	}()
	inst.Run(horizon)
	return false, nil
}

// injectionRun executes one injection run against one test case and
// returns its outcome. With a checkpoint cache available it restores
// the (case, instant) snapshot and simulates only [At, horizon);
// otherwise it replays from t=0. The two paths are bit-identical: a
// trap has no effect before its arm time, so the skipped prefix is
// exactly the uninjected prefix the snapshot captured. With a pruner
// available the job may be settled without simulating at all (see
// prune.go), and an executing transient run is probed at later
// checkpoint instants for reconvergence to the golden state.
func injectionRun(cfg Config, sys *model.System, golden *trace.Trace, caseIdx int, inj inject.Injection, ckpts *checkpointCache, pr *pruner) (runOutcome, error) {
	// armedTrap unifies the transient (paper) and persistent traps.
	type armedTrap interface {
		Hook() sim.ReadHook
		Fired() (sim.Millis, bool)
	}
	var trap armedTrap
	if cfg.FaultDurationMs > 0 {
		trap = inject.NewPersistentTrap(inj, cfg.FaultDurationMs)
	} else {
		trap = inject.NewTrap(inj)
	}
	var snap *sim.Snapshot
	if ckpts != nil {
		var err error
		snap, err = ckpts.get(caseIdx, inj.At)
		if err != nil {
			// Cache failures flow through the same retry/quarantine
			// policy as any other job infrastructure error.
			return runOutcome{}, err
		}
	}
	var mk *MemoKey
	if pr != nil {
		out, pruned, key, err := pr.classify(sys, caseIdx, inj, snap)
		if err != nil {
			return runOutcome{}, err
		}
		if pruned {
			return out, nil
		}
		mk = key
	}
	inst, err := cfg.NewInstance(cfg.TestCases[caseIdx], trap.Hook())
	if err != nil {
		return runOutcome{}, fmt.Errorf("campaign: injection %v case %d: %w", inj, caseIdx, err)
	}
	cmp, err := trace.AcquireStreamComparator(golden, inst.Bus())
	if err != nil {
		return runOutcome{}, fmt.Errorf("campaign: injection %v case %d: %w", inj, caseIdx, err)
	}
	cmp.SetTolerances(cfg.Tolerances)
	inst.Kernel().AddPostHook(cmp.Hook())
	var attachment any
	if cfg.Instrument != nil {
		attachment, err = cfg.Instrument(inst, caseIdx)
		if err != nil {
			return runOutcome{}, fmt.Errorf("campaign: instrumenting %v case %d: %w", inj, caseIdx, err)
		}
	}
	// SetBudget resets the step accounting; Restore then rewinds it to
	// the snapshot's value, so a fast-forwarded run exhausts its budget
	// at exactly the tick a full replay would.
	inst.Kernel().SetBudget(cfg.Budget)
	if snap != nil {
		ck, ok := inst.(target.Checkpointable)
		if !ok {
			return runOutcome{}, fmt.Errorf("campaign: injection %v case %d: instance lost checkpoint support", inj, caseIdx)
		}
		if err := ck.Restore(snap); err != nil {
			return runOutcome{}, fmt.Errorf("campaign: restoring checkpoint for %v case %d: %w", inj, caseIdx, err)
		}
		// The skipped prefix matched the golden run by construction;
		// comparison starts at the checkpoint tick.
		if err := cmp.SeekTo(int(snap.Now)); err != nil {
			return runOutcome{}, fmt.Errorf("campaign: seeking comparator for %v case %d: %w", inj, caseIdx, err)
		}
	}
	crashed, panicVal, converged := executeToHorizon(cfg, inst, trap.Fired, caseIdx, inj.At, ckpts, pr)

	firedAt, fired := trap.Fired()
	out := runOutcome{
		injection:  inj,
		caseIdx:    caseIdx,
		fired:      fired,
		firedAt:    firedAt,
		diffs:      cmp.DeviatingDiffs(), // partial up to the crash/hang point — still recorded
		attachment: attachment,
	}
	out.failureAt = -1
	// DeviatingDiffs copied the results out and the instance (with the
	// comparator's stale post-hook) is discarded with this run, so the
	// comparator can be recycled.
	trace.ReleaseStreamComparator(cmp)
	if converged {
		out.pruned = PrunedConverged
	}
	switch {
	case inst.Kernel().Exhausted():
		out.outcome = OutcomeHang
	case crashed:
		out.outcome = OutcomeCrash
		out.detail = fmt.Sprintf("%v", panicVal)
	default:
		if err := finishOutcome(sys, &out); err != nil {
			return runOutcome{}, err
		}
	}
	if pr != nil {
		pr.store(mk, out)
	}
	return out, nil
}

// executeToHorizon drives an injection run to the horizon. When the
// campaign prunes, a transient run on a checkpointable target is
// instead driven in segments to each later checkpoint instant: once
// the trap has fired and the instance's state equals the golden
// snapshot there, the remaining suffix is by determinism the golden
// run's — its diffs are final and it can neither crash (the suffix is
// golden) nor hang (the golden run finished within budget, and the
// step accounting matched when a step budget is armed) — so the run
// stops early, reported as converged.
func executeToHorizon(cfg Config, inst RunnableInstance, fired func() (sim.Millis, bool), caseIdx int, at sim.Millis, ckpts *checkpointCache, pr *pruner) (crashed bool, panicVal any, converged bool) {
	ck, checkpointable := inst.(target.Checkpointable)
	if pr == nil || ckpts == nil || !checkpointable || cfg.FaultDurationMs > 0 {
		crashed, panicVal = runGuarded(inst, cfg.HorizonMs)
		return crashed, panicVal, false
	}
	for _, ct := range ckpts.instants() {
		if ct <= at {
			continue
		}
		if crashed, panicVal = runGuarded(inst, ct); crashed || inst.Kernel().Exhausted() {
			return crashed, panicVal, false
		}
		if _, hasFired := fired(); !hasFired {
			continue
		}
		g, err := ckpts.get(caseIdx, ct)
		if err != nil || g == nil {
			// Probing is opportunistic: without a golden snapshot here,
			// just keep simulating.
			continue
		}
		cur, err := ck.Checkpoint()
		if err != nil {
			continue
		}
		if snapshotsEqual(cur, g, cfg.Budget.Steps > 0) {
			return false, nil, true
		}
	}
	crashed, panicVal = runGuarded(inst, cfg.HorizonMs)
	return crashed, panicVal, false
}

// finishOutcome derives the epilogue of a completed (neither crashed
// nor hung) run from its diffs: the per-output first deviations, the
// ok/deviation outcome, and the system-failure classification.
// out.failureAt must be initialised to -1. out.diffs is sparse — it
// carries deviating signals only, so a missing entry means "matched
// the golden run everywhere". Shared between executed and memoized
// runs so synthesized records are derived by the exact same code.
func finishOutcome(sys *model.System, out *runOutcome) error {
	diffs := out.diffs
	mod, err := sys.Module(out.injection.Module)
	if err != nil {
		return err
	}
	for _, o := range mod.Outputs {
		if d, ok := diffs[o.Signal]; ok {
			if out.outputFirst == nil {
				out.outputFirst = make(map[string]sim.Millis, len(mod.Outputs))
			}
			out.outputFirst[o.Signal] = d.First
		}
	}
	out.outcome = OutcomeOK
	if len(diffs) > 0 {
		out.outcome = OutcomeDeviation
	}
	for _, so := range sys.SystemOutputs() {
		if d, ok := diffs[so]; ok {
			out.systemDiff = true
			if out.failureAt < 0 || d.First < out.failureAt {
				out.failureAt = d.First
			}
		}
	}
	return nil
}

// aggregator accumulates outcomes into the final Result.
type aggregator struct {
	*Result
	pairIdx      map[core.Pair]int
	locIdx       map[[2]string]int
	directWindow sim.Millis
	horizonLen   int
}

func newResult(sys *model.System, directWindow sim.Millis, horizonLen int) *aggregator {
	agg := &aggregator{
		Result:       &Result{Topology: sys, Matrix: core.NewMatrix(sys)},
		pairIdx:      make(map[core.Pair]int),
		locIdx:       make(map[[2]string]int),
		directWindow: directWindow,
		horizonLen:   horizonLen,
	}
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			key := [2]string{mod.Name, in.Signal}
			agg.locIdx[key] = len(agg.Locations)
			agg.Locations = append(agg.Locations, LocationPropagation{
				Module: mod.Name, Signal: in.Signal,
			})
			for _, o := range mod.Outputs {
				p := core.Pair{Module: mod.Name, In: in.Index, Out: o.Index}
				agg.pairIdx[p] = len(agg.Pairs)
				agg.Pairs = append(agg.Pairs, PairStats{
					Pair:         p,
					InputSignal:  in.Signal,
					OutputSignal: o.Signal,
				})
			}
		}
	}
	return agg
}

// absorbRecord folds a previously recorded run (Config.Replay, e.g.
// replayed from a journal) into the aggregates, reconstructing the
// per-output first deviations from the record's diffs. A record's
// Diffs may carry only the deviating signals: a missing or
// non-deviating entry counts as "no deviation", exactly as in a live
// run.
func (agg *aggregator) absorbRecord(sys *model.System, rec RunRecord) error {
	out, err := recordOutcome(sys, rec)
	if err != nil {
		return err
	}
	agg.absorb(sys, out)
	return nil
}

// recordOutcome reconstructs a run's aggregate contribution from its
// record — the inverse of the RunRecord construction in Run, shared by
// replay aggregation and the adaptive scheduler so both fold journaled
// and live runs through identical logic.
func recordOutcome(sys *model.System, rec RunRecord) (runOutcome, error) {
	out := runOutcome{
		injection:   rec.Injection,
		caseIdx:     rec.CaseIndex,
		fired:       rec.Fired,
		firedAt:     rec.FiredAt,
		outputFirst: make(map[string]sim.Millis),
		systemDiff:  rec.SystemFailure,
		failureAt:   rec.FailureAt,
		diffs:       rec.Diffs,
		attachment:  rec.Attachment,
		outcome:     rec.Outcome,
		detail:      rec.Detail,
		attempts:    rec.Attempts,
		pruned:      rec.Pruned,
	}
	// Pre-supervision journals carry no outcome field: every record
	// in them is a completed run, so derive ok/deviation from the
	// recorded diffs.
	if out.outcome == "" {
		out.outcome = OutcomeOK
		for _, d := range rec.Diffs {
			if d.Differs() {
				out.outcome = OutcomeDeviation
				break
			}
		}
	}
	if rec.Fired && out.outcome != OutcomeQuarantined {
		mod, err := sys.Module(rec.Injection.Module)
		if err != nil {
			return runOutcome{}, fmt.Errorf("campaign: replaying %v: %w", rec.Injection, err)
		}
		for _, o := range mod.Outputs {
			if d, ok := rec.Diffs[o.Signal]; ok && d.Differs() {
				out.outputFirst[o.Signal] = d.First
			}
		}
	}
	return out, nil
}

func (agg *aggregator) absorb(sys *model.System, out runOutcome) {
	agg.Runs++
	agg.countPrune(out)
	switch out.outcome {
	case OutcomeQuarantined:
		agg.Quarantined = append(agg.Quarantined, QuarantinedJob{
			Injection: out.injection,
			CaseIndex: out.caseIdx,
			Attempts:  out.attempts,
			Reason:    out.detail,
		})
		if li, ok := agg.locIdx[[2]string{out.injection.Module, out.injection.Signal}]; ok {
			agg.Locations[li].Quarantined++
		}
		return
	case OutcomeCrash, OutcomeHang:
		// The injection location is known even when the trap state is
		// unreliable (the run died); attribute the failure mode there
		// and keep it out of every n_inj denominator.
		if out.outcome == OutcomeCrash {
			agg.Crashes++
		} else {
			agg.Hangs++
		}
		mod, err := sys.Module(out.injection.Module)
		if err != nil {
			return
		}
		li, ok := agg.locIdx[[2]string{out.injection.Module, out.injection.Signal}]
		if !ok {
			return
		}
		if out.outcome == OutcomeCrash {
			agg.Locations[li].Crashes++
		} else {
			agg.Locations[li].Hangs++
		}
		inIdx := mod.InputIndex(out.injection.Signal)
		for _, o := range mod.Outputs {
			p := core.Pair{Module: mod.Name, In: inIdx, Out: o.Index}
			ps := &agg.Pairs[agg.pairIdx[p]]
			if out.outcome == OutcomeCrash {
				ps.Crashes++
			} else {
				ps.Hangs++
			}
		}
		return
	}
	if !out.fired {
		agg.Unfired++
		return
	}
	mod, err := sys.Module(out.injection.Module)
	if err != nil {
		return
	}
	inIdx := mod.InputIndex(out.injection.Signal)
	loc := &agg.Locations[agg.locIdx[[2]string{out.injection.Module, out.injection.Signal}]]
	loc.Injections++
	if out.systemDiff {
		loc.Propagated++
	}
	for _, o := range mod.Outputs {
		p := core.Pair{Module: mod.Name, In: inIdx, Out: o.Index}
		ps := &agg.Pairs[agg.pairIdx[p]]
		ps.Injections++
		first, ok := out.outputFirst[o.Signal]
		if !ok || first < 0 {
			continue
		}
		if agg.directWindow == 0 || first <= out.firedAt+agg.directWindow {
			ps.Errors++
			ps.latencySum += int64(first - out.firedAt)
			ps.latencies = append(ps.latencies, float64(first-out.firedAt))
			switch out.diffs[o.Signal].Classify(agg.horizonLen) {
			case trace.ClassPermanent:
				ps.Permanents++
			default:
				ps.Transients++
			}
		}
	}
}

// countPrune folds one settled run into the pruning-effectiveness
// counters. Quarantined jobs are excluded: they were neither executed
// nor pruned, and they are already surfaced separately.
func (agg *aggregator) countPrune(out runOutcome) {
	if out.outcome == OutcomeQuarantined {
		return
	}
	st := &agg.Pruning
	loc := out.injection.Signal + "@" + out.injection.Module
	if st.PerSignal == nil {
		st.PerSignal = make(map[string]PruneSignalCounts)
	}
	sc := st.PerSignal[loc]
	switch out.pruned {
	case PrunedNoOp:
		st.NoOp++
		sc.NoOp++
	case PrunedUnfired:
		st.Unfired++
		sc.Unfired++
	case PrunedMemoized:
		st.Memoized++
		sc.Memoized++
	case PrunedMemoStore:
		st.Store++
		sc.Store++
	case PrunedConverged:
		st.Converged++
		sc.Converged++
	default:
		st.Executed++
		sc.Executed++
	}
	st.PerSignal[loc] = sc
}

func (agg *aggregator) finalise(sys *model.System) error {
	for i := range agg.Pairs {
		ps := &agg.Pairs[i]
		if ps.Injections > 0 {
			ps.Estimate = float64(ps.Errors) / float64(ps.Injections)
			if ci, err := stats.WilsonInterval(ps.Errors, ps.Injections, 1.96); err == nil {
				ps.CI = ci
			}
		}
		if ps.Errors > 0 {
			ps.MeanLatencyMs = float64(ps.latencySum) / float64(ps.Errors)
		}
		// Setting a measured estimate can only fail on programming
		// errors (pair enumerated from the topology itself); surface
		// them as errors rather than panicking out of the library.
		if err := agg.Matrix.Set(ps.Pair.Module, ps.Pair.In, ps.Pair.Out, ps.Estimate); err != nil {
			return &configError{err: fmt.Errorf("campaign: internal pair bookkeeping broken: %w", err)}
		}
	}
	for i := range agg.Locations {
		loc := &agg.Locations[i]
		if loc.Injections > 0 {
			loc.Fraction = float64(loc.Propagated) / float64(loc.Injections)
		}
	}
	// The quarantine list accretes in worker-completion order; sort it
	// so resumed and uninterrupted campaigns render identically.
	sort.Slice(agg.Quarantined, func(i, j int) bool {
		qi, qj := agg.Quarantined[i], agg.Quarantined[j]
		if si, sj := qi.Injection.String(), qj.Injection.String(); si != sj {
			return si < sj
		}
		return qi.CaseIndex < qj.CaseIndex
	})
	_ = sys
	return nil
}

// NonUniformLocations returns the injection locations whose
// system-output propagation fraction is strictly between lo and hi —
// direct counterexamples to uniform propagation ("for location l
// either all data errors would propagate to the system output or none
// of them would", Section 2).
func (r *Result) NonUniformLocations(lo, hi float64) []LocationPropagation {
	var out []LocationPropagation
	for _, loc := range r.Locations {
		if loc.Injections > 0 && loc.Fraction > lo && loc.Fraction < hi {
			out = append(out, loc)
		}
	}
	return out
}

// PairBySignal returns the statistics for the pair identified by
// module and signal names.
func (r *Result) PairBySignal(module, inSignal, outSignal string) (PairStats, error) {
	for _, ps := range r.Pairs {
		if ps.Pair.Module == module && ps.InputSignal == inSignal && ps.OutputSignal == outSignal {
			return ps, nil
		}
	}
	return PairStats{}, fmt.Errorf("campaign: no pair %s:%s->%s", module, inSignal, outSignal)
}
