package campaign

import (
	"fmt"
	"sort"
	"sync"

	"propane/internal/sim"
	"propane/internal/target"
)

// Checkpoint fast-forward. A campaign's injection runs are dominated
// by redundant simulation: all 16 bit positions (and every error
// model) injected at the same (test case, instant) re-execute an
// identical pre-injection prefix from t=0, and that prefix is by
// construction bit-identical to the uninjected golden run — a trap
// has no effect before its arm time. When the target implements
// target.Checkpointable, the campaign therefore records one snapshot
// per (test case, injection instant) from a single extra uninjected
// pass per case, and every injection run restores the snapshot for
// its instant and simulates only [At, horizon). The stream comparator
// is seeked to the checkpoint tick, so results — diffs, outcomes,
// latencies, hang trip points — are bit-identical to a full replay.

// CheckpointMode selects whether injection runs fast-forward from
// per-(test case, injection instant) snapshots instead of replaying
// from t=0.
type CheckpointMode int

const (
	// CheckpointAuto (the default) fast-forwards when the target
	// supports it and no Instrument hook is configured. Instrument
	// attachments (runtime monitors, recovery mechanisms) observe the
	// run from tick 0, so fast-forwarding past the prefix could change
	// what they see; auto mode conservatively falls back to full
	// replay for them.
	CheckpointAuto CheckpointMode = iota
	// CheckpointOff always replays from t=0.
	CheckpointOff
	// CheckpointForce fast-forwards even with an Instrument hook
	// configured — for instrumentation that only wraps per-run
	// bookkeeping (e.g. internal/runner's timing wrapper) and does not
	// observe simulation state before the injection instant. Targets
	// that are not checkpointable still fall back to full replay.
	CheckpointForce
)

// defaultCheckpointCases bounds the checkpoint cache: snapshot sets
// for at most this many test cases are held at once, recycled
// least-recently-used. Snapshots are small (one uint16 per signal
// plus per-module hidden state), so the bound exists to keep memory
// independent of workload-grid size, not because entries are big.
const defaultCheckpointCases = 32

// caseCheckpoints is one test case's lazily built snapshot set.
type caseCheckpoints struct {
	once  sync.Once
	snaps map[sim.Millis]*sim.Snapshot
	err   error
}

// checkpointCache hands out per-(case, instant) snapshots, building
// each case's set on first request with one uninjected pass that
// pauses at every injection instant. Entries are shared read-only
// across workers: restoring copies values out of a snapshot, never
// into it.
type checkpointCache struct {
	cfg   Config
	times []sim.Millis // distinct injection instants, ascending

	mu      sync.Mutex
	entries map[int]*caseCheckpoints
	lru     []int // caseIdx order, most recently used last
	bound   int
}

func newCheckpointCache(cfg Config) *checkpointCache {
	seen := make(map[sim.Millis]bool, len(cfg.Times))
	times := make([]sim.Millis, 0, len(cfg.Times))
	for _, t := range cfg.Times {
		if !seen[t] {
			seen[t] = true
			times = append(times, t)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return &checkpointCache{
		cfg:     cfg,
		times:   times,
		entries: make(map[int]*caseCheckpoints),
		bound:   defaultCheckpointCases,
	}
}

// instants returns the distinct checkpointed injection instants in
// ascending order (read-only — shared slice). The convergence probe
// iterates it to find golden snapshots after a trap's firing point.
func (cc *checkpointCache) instants() []sim.Millis { return cc.times }

// get returns the snapshot for one (test case, injection instant),
// building the case's snapshot set on first request. A nil snapshot
// with nil error means the instant has no checkpoint (never the case
// for instants drawn from Config.Times); the caller then replays from
// t=0.
func (cc *checkpointCache) get(caseIdx int, at sim.Millis) (*sim.Snapshot, error) {
	cc.mu.Lock()
	e := cc.entries[caseIdx]
	if e == nil {
		e = &caseCheckpoints{}
		cc.entries[caseIdx] = e
		cc.lru = append(cc.lru, caseIdx)
		for len(cc.lru) > cc.bound {
			delete(cc.entries, cc.lru[0])
			cc.lru = cc.lru[1:]
		}
	} else {
		for i, c := range cc.lru {
			if c == caseIdx {
				cc.lru = append(append(cc.lru[:i:i], cc.lru[i+1:]...), caseIdx)
				break
			}
		}
	}
	cc.mu.Unlock()

	// Workers asking for an evicted or sibling case build outside the
	// lock; the per-entry once makes exactly one of them do the pass.
	e.once.Do(func() { e.snaps, e.err = cc.build(caseIdx) })
	if e.err != nil {
		return nil, e.err
	}
	return e.snaps[at], nil
}

// build records one test case's snapshot set: a fresh uninjected
// instance runs to each instant in ascending order, capturing at the
// tick boundary — the state just before tick `at` executes, which is
// exactly where a trap armed for `at` can first fire.
func (cc *checkpointCache) build(caseIdx int) (map[sim.Millis]*sim.Snapshot, error) {
	inst, err := cc.cfg.NewInstance(cc.cfg.TestCases[caseIdx], nil)
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint pass case %d: %w", caseIdx, err)
	}
	ck, ok := inst.(target.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("campaign: checkpoint pass case %d: target is not checkpointable", caseIdx)
	}
	inst.Kernel().SetBudget(cc.cfg.Budget)
	snaps := make(map[sim.Millis]*sim.Snapshot, len(cc.times))
	for _, at := range cc.times {
		// The pass is uninjected, so like a golden run it must neither
		// crash nor exhaust its budget; either means a broken target.
		if crashed, pv := runGuarded(inst, at); crashed {
			return nil, fmt.Errorf("campaign: checkpoint pass case %d crashed before t=%d: %v", caseIdx, at, pv)
		}
		if inst.Kernel().Exhausted() {
			return nil, fmt.Errorf("campaign: checkpoint pass case %d exceeded the run budget (%d steps used) before t=%d",
				caseIdx, inst.Kernel().BudgetUsed(), at)
		}
		snap, err := ck.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("campaign: checkpoint pass case %d at t=%d: %w", caseIdx, at, err)
		}
		snaps[at] = snap
	}
	return snaps, nil
}

// checkpointsEnabled decides whether this campaign fast-forwards.
// Unsupported topologies are detected by probing one instance, so the
// fallback to full replay is transparent to callers.
func (c Config) checkpointsEnabled() bool {
	switch c.Checkpoints {
	case CheckpointOff:
		return false
	case CheckpointAuto:
		if c.Instrument != nil {
			return false
		}
	}
	inst, err := c.NewInstance(c.TestCases[0], nil)
	if err != nil {
		return false // the campaign proper will surface the error
	}
	_, ok := inst.(target.Checkpointable)
	return ok
}
