package campaign

import (
	"fmt"
	"sync"
	"testing"

	"propane/internal/estimate"
	"propane/internal/stats"
)

// adaptiveReduced returns the reduced campaign forced into adaptive
// mode. Its per-location population (48 jobs) sits below the pilot
// batch, so the scheduler exhausts every fireable job — which makes the
// result exactly comparable to the full matrix.
func adaptiveReduced() Config {
	cfg := ReducedConfig()
	cfg.Adaptive = AdaptiveForce
	return cfg
}

// TestAdaptiveExhaustiveMatchesFullMatrix: when the population is
// smaller than the pilot batch the adaptive campaign runs every
// fireable job, and because provably-unfired jobs contribute nothing
// to any estimate, every pair statistic must equal the full matrix's.
func TestAdaptiveExhaustiveMatchesFullMatrix(t *testing.T) {
	full, err := Run(ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	adap, err := Run(adaptiveReduced())
	if err != nil {
		t.Fatal(err)
	}
	if adap.Adaptive == nil {
		t.Fatal("adaptive result carries no AdaptiveStats")
	}
	if adap.Predictions == nil || full.Predictions == nil {
		t.Fatal("results carry no analytical predictions")
	}
	if len(adap.Pairs) != len(full.Pairs) {
		t.Fatalf("pair count mismatch: %d vs %d", len(adap.Pairs), len(full.Pairs))
	}
	for i := range full.Pairs {
		fp, ap := full.Pairs[i], adap.Pairs[i]
		if fp.Pair != ap.Pair {
			t.Fatalf("pair order mismatch at %d: %v vs %v", i, fp.Pair, ap.Pair)
		}
		if fp.Injections != ap.Injections || fp.Errors != ap.Errors {
			t.Errorf("%v: full %d/%d vs adaptive %d/%d", fp.Pair,
				fp.Errors, fp.Injections, ap.Errors, ap.Injections)
		}
		if fp.Estimate != ap.Estimate {
			t.Errorf("%v: estimate %v vs %v", fp.Pair, fp.Estimate, ap.Estimate)
		}
	}
	for i := range full.Locations {
		fl, al := full.Locations[i], adap.Locations[i]
		if fl.Injections != al.Injections || fl.Propagated != al.Propagated {
			t.Errorf("location %s@%s: full %d/%d vs adaptive %d/%d",
				fl.Signal, fl.Module, fl.Propagated, fl.Injections, al.Propagated, al.Injections)
		}
	}
	// The only difference the full matrix should show is the unfired
	// runs the adaptive population excluded up front.
	if got, want := adap.Runs+full.Unfired, full.Runs; got != want {
		t.Errorf("adaptive runs %d + full unfired %d = %d, want full runs %d",
			adap.Runs, full.Unfired, got, want)
	}
	if adap.Unfired != 0 {
		t.Errorf("adaptive campaign executed %d unfired jobs the read log should have excluded", adap.Unfired)
	}
}

// TestAdaptiveJobSetDeterministic: the executed job set is a pure
// function of (config, ε) — worker count and dispatch interleaving
// must not change it.
func TestAdaptiveJobSetDeterministic(t *testing.T) {
	jobSet := func(workers int) map[string]int {
		cfg := adaptiveReduced()
		cfg.Workers = workers
		set := make(map[string]int)
		var mu sync.Mutex
		cfg.Observer = func(rec RunRecord) {
			mu.Lock()
			set[fmt.Sprintf("%v#%d", rec.Injection, rec.CaseIndex)] = rec.Round
			mu.Unlock()
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return set
	}
	one := jobSet(1)
	eight := jobSet(8)
	if len(one) == 0 {
		t.Fatal("no jobs observed")
	}
	if len(one) != len(eight) {
		t.Fatalf("job set size differs: %d at workers=1 vs %d at workers=8", len(one), len(eight))
	}
	for k, round := range one {
		r8, ok := eight[k]
		if !ok {
			t.Fatalf("job %s executed at workers=1 but not workers=8", k)
		}
		if round != r8 {
			t.Errorf("job %s: round %d at workers=1 vs %d at workers=8", k, round, r8)
		}
	}
}

// TestAdaptiveResumeReplaysStoppingDecisions: splitting a campaign at
// an arbitrary record boundary and replaying the first part must
// execute exactly the remaining jobs and converge to the same result.
func TestAdaptiveResumeReplaysStoppingDecisions(t *testing.T) {
	var records []RunRecord
	cfg := adaptiveReduced()
	cfg.Observer = func(rec RunRecord) {
		rec.Attachment = nil
		records = append(records, rec)
	}
	cfg.Workers = 1
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 4 {
		t.Fatalf("campaign too small to split: %d records", len(records))
	}
	cut := len(records) / 3
	resumed := adaptiveReduced()
	resumed.Replay = records[:cut]
	var fresh []RunRecord
	var mu sync.Mutex
	resumed.Observer = func(rec RunRecord) {
		mu.Lock()
		fresh = append(fresh, rec)
		mu.Unlock()
	}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(fresh)+cut, len(records); got != want {
		t.Errorf("resume executed %d fresh jobs after %d replayed; want total %d", len(fresh), cut, want)
	}
	replayed := make(map[string]bool, cut)
	for _, rec := range records[:cut] {
		replayed[fmt.Sprintf("%v#%d", rec.Injection, rec.CaseIndex)] = true
	}
	for _, rec := range fresh {
		if replayed[fmt.Sprintf("%v#%d", rec.Injection, rec.CaseIndex)] {
			t.Errorf("resume re-executed replayed job %v case %d", rec.Injection, rec.CaseIndex)
		}
	}
	for i := range base.Pairs {
		bp, rp := base.Pairs[i], res.Pairs[i]
		if bp.Injections != rp.Injections || bp.Errors != rp.Errors {
			t.Errorf("%v: base %d/%d vs resumed %d/%d", bp.Pair,
				bp.Errors, bp.Injections, rp.Errors, rp.Injections)
		}
	}
}

// TestAdaptiveStopsEarlyAndPinsEstimates: with a population well above
// the pilot batch, the stopping rule must close locations before
// exhausting them, and every reported pair estimate must carry a
// conservative interval of half-width ≤ ε at the corrected level.
func TestAdaptiveStopsEarlyAndPinsEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-run campaign")
	}
	cfg := PaperConfig()
	cfg.Adaptive = AdaptiveForce
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Adaptive
	if st == nil {
		t.Fatal("no adaptive stats")
	}
	if st.StoppedEarly == 0 {
		t.Error("no location stopped early on the paper campaign")
	}
	if st.Scheduled >= st.Population {
		t.Errorf("scheduled %d of %d fireable jobs: nothing saved", st.Scheduled, st.Population)
	}
	if st.Scheduled*3 > st.FullRuns {
		t.Errorf("scheduled %d runs; need < 1/3 of the %d-run full matrix for the 3x speedup", st.Scheduled, st.FullRuns)
	}
	for _, ps := range res.Pairs {
		if ps.Injections == 0 {
			continue
		}
		iv, err := stats.StoppingInterval(ps.Errors, ps.Injections, st.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		if hw := iv.HalfWidth(); hw > st.Epsilon+1e-9 {
			t.Errorf("%v: CI half-width %.4f > epsilon %.3f (%d/%d)",
				ps.Pair, hw, st.Epsilon, ps.Errors, ps.Injections)
		}
	}
	// The conclusions must survive sampling: predicted module ordering
	// is cross-validated elsewhere; here the measured ordering from the
	// sampled campaign must match the full matrix's.
	full, err := Run(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	tau, err := moduleOrderingTau(full, res)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.95 {
		t.Errorf("module ordering Kendall tau %.3f < 0.95", tau)
	}
}

// moduleOrderingTau compares two results' relative-permeability module
// orderings (Kendall tau, -1..1).
func moduleOrderingTau(a, b *Result) (float64, error) {
	am, bm := make(map[string]float64), make(map[string]float64)
	for _, name := range a.Topology.ModuleNames() {
		ra, err := a.Matrix.RelativePermeability(name)
		if err != nil {
			return 0, err
		}
		rb, err := b.Matrix.RelativePermeability(name)
		if err != nil {
			return 0, err
		}
		am[name], bm[name] = ra, rb
	}
	return stats.KendallTau(am, bm)
}

// TestAdaptiveAutoThreshold: Auto declines small campaigns and
// instrumented ones, and engages on the paper-scale grid.
func TestAdaptiveAutoThreshold(t *testing.T) {
	small := ReducedConfig()
	small.Adaptive = AdaptiveAuto
	if small.AdaptiveEnabled() {
		t.Error("Auto engaged on the reduced campaign (48 jobs per location)")
	}
	big := PaperConfig()
	big.Adaptive = AdaptiveAuto
	if !big.AdaptiveEnabled() {
		t.Error("Auto declined the paper campaign (4000 jobs per location)")
	}
	big.Instrument = func(inst Instance, caseIdx int) (any, error) { return nil, nil }
	if big.AdaptiveEnabled() {
		t.Error("Auto engaged despite an Instrument hook")
	}
	off := PaperConfig()
	if off.AdaptiveEnabled() {
		t.Error("Off engaged")
	}
	force := ReducedConfig()
	force.Adaptive = AdaptiveForce
	if !force.AdaptiveEnabled() {
		t.Error("Force declined")
	}
}

// TestAdaptiveValidate: mode and epsilon validation.
func TestAdaptiveValidate(t *testing.T) {
	cfg := ReducedConfig()
	cfg.Adaptive = AdaptiveMode(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown adaptive mode validated")
	}
	cfg = ReducedConfig()
	cfg.CIEpsilon = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("epsilon 0.5 validated")
	}
	cfg = ReducedConfig()
	cfg.CIEpsilon = -0.01
	if err := cfg.Validate(); err == nil {
		t.Error("negative epsilon validated")
	}
	cfg = ReducedConfig()
	cfg.CIEpsilon = 0.02
	if err := cfg.Validate(); err != nil {
		t.Errorf("epsilon 0.02 rejected: %v", err)
	}
	if cfg.ResolvedCIEpsilon() != 0.02 {
		t.Error("explicit epsilon not resolved")
	}
	if (Config{}).ResolvedCIEpsilon() != defaultCIEpsilon {
		t.Error("default epsilon not resolved")
	}
}

// TestAdaptivePlanner: the external-driver API claims exactly the
// schedule the in-process run executes, proves completion from the
// record stream, and rejects foreign records.
func TestAdaptivePlanner(t *testing.T) {
	cfg := adaptiveReduced()
	var records []RunRecord
	cfg.Observer = func(rec RunRecord) {
		rec.Attachment = nil
		records = append(records, rec)
	}
	cfg.Workers = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	p, err := NewAdaptivePlanner(adaptiveReduced())
	if err != nil {
		t.Fatal(err)
	}
	if p.Done() {
		t.Fatal("planner done before any sample settled")
	}
	if got, want := p.Population(), len(records); got != want {
		t.Fatalf("planner population %d, campaign executed %d", got, want)
	}
	claimed := p.Claim(1 << 20)
	if len(claimed) != len(records) {
		t.Fatalf("claimed %d jobs, campaign executed %d", len(claimed), len(records))
	}
	if p.Outstanding() != len(claimed) {
		t.Fatalf("outstanding %d, want %d", p.Outstanding(), len(claimed))
	}
	for _, rec := range records {
		if err := p.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Done() {
		t.Error("planner not done after observing the full journal")
	}
	if p.Outstanding() != 0 {
		t.Errorf("outstanding %d after full journal", p.Outstanding())
	}
	if p.Settled() != len(records) {
		t.Errorf("settled %d, want %d", p.Settled(), len(records))
	}
	// Strictness: duplicates and out-of-schedule records are errors.
	if err := p.Observe(records[0]); err == nil {
		t.Error("duplicate record accepted")
	}
	foreign := records[0]
	foreign.Injection.At += 1
	if err := p.Observe(foreign); err == nil {
		t.Error("out-of-schedule record accepted")
	}

	// NewAdaptivePlanner refuses non-adaptive configurations.
	if _, err := NewAdaptivePlanner(ReducedConfig()); err == nil {
		t.Error("planner built for a non-adaptive config")
	}
}

// TestAdaptivePredictionsOrdering: the analytical forecast must agree
// with the measured module ordering well enough to be a usable prior
// (the report prints the exact tau; here we only require positive
// rank correlation on the reduced target).
func TestAdaptivePredictionsOrdering(t *testing.T) {
	res, err := Run(ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictions == nil {
		t.Fatal("no predictions")
	}
	predicted, err := res.Predictions.ModuleScores()
	if err != nil {
		t.Fatal(err)
	}
	measured := make(map[string]float64)
	for _, name := range res.Topology.ModuleNames() {
		rel, err := res.Matrix.RelativePermeability(name)
		if err != nil {
			t.Fatal(err)
		}
		measured[name] = rel
	}
	tau, err := stats.KendallTau(predicted, measured)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Errorf("predicted vs measured module ordering tau %.3f <= 0", tau)
	}
	// Predictions expose per-pair impact bounds in matrix order.
	pairs := res.Predictions.Pairs()
	if len(pairs) != len(res.Pairs) {
		t.Fatalf("prediction pair count %d, measured %d", len(pairs), len(res.Pairs))
	}
	for i, pp := range pairs {
		if pp.Pair != res.Pairs[i].Pair {
			t.Fatalf("prediction pair order mismatch at %d", i)
		}
		if pp.Predicted < 0 || pp.Predicted > 1 || pp.ImpactBound < 0 || pp.ImpactBound > 1 {
			t.Errorf("%v: prediction out of [0,1]: %+v", pp.Pair, pp)
		}
		if pp.ImpactBound > pp.Predicted+1e-12 {
			t.Errorf("%v: impact bound %v exceeds predicted %v", pp.Pair, pp.ImpactBound, pp.Predicted)
		}
	}
	_ = estimate.Options{}
}
