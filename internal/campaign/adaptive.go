package campaign

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"propane/internal/estimate"
	"propane/internal/inject"
	"propane/internal/model"
	"propane/internal/sim"
	"propane/internal/stats"
	"propane/internal/trace"
)

// Adaptive sequential estimation. The fixed campaign matrix injects
// bits × instants × cases at every location whether the pair
// permeabilities there are obviously 0, obviously 1, or genuinely
// uncertain. Adaptive mode replaces the enumeration with sequential
// sampling: per injection location (module input), jobs are drawn in a
// deterministic pseudo-random order from the location's *fireable*
// population (the golden read log proves, per (case, instant), whether
// a trap can fire at all — provably unfired jobs contribute nothing to
// any estimate and are excluded up front), and sampling stops at the
// first batch checkpoint where every pair of the location — plus the
// location's system-propagation fraction — has a conservative
// confidence interval (Wilson ∪ Clopper-Pearson at a
// Bonferroni-corrected level, see internal/stats) with half-width
// ≤ ε. Locations whose population is empty are degenerate: the
// analytical read-log bound proves no sample can fire, so they stop
// with zero samples, exactly matching the full matrix's estimate of 0.
//
// Determinism of the stopping decision is the load-bearing property:
// the job set must be a pure function of (config, ε), never of worker
// count, dispatch interleaving or resume timing. It holds because
// (a) each location's sample order is a deterministic permutation,
// (b) dispatch never passes the location's current batch checkpoint,
// so a stopping decision at checkpoint C sees the settled outcomes of
// exactly the first C samples, and (c) each sample's outcome is
// deterministic (the simulator is; the documented caveats are the
// wall-clock budget backstop and worker-crash quarantines, which are
// environmental by design). Importance ordering — predicted
// permeability × remaining uncertainty — picks which live location
// dispatches next and therefore shapes wall-clock, but never the job
// set: per-location prefixes are independent.

// AdaptiveMode selects sequential (CI-driven) sampling instead of the
// fixed bits × instants × cases enumeration.
type AdaptiveMode int

const (
	// AdaptiveOff (the default) executes the full fixed matrix —
	// bit-identical to campaigns recorded before adaptive mode existed.
	AdaptiveOff AdaptiveMode = iota
	// AdaptiveAuto samples sequentially when the campaign is large
	// enough for stopping to pay (at least adaptiveAutoMin jobs per
	// location) and no Instrument hook is configured (instrumented runs
	// may carry recovery mechanisms that invalidate the golden-run
	// firing predictions the sampler's population is built from).
	AdaptiveAuto
	// AdaptiveForce samples sequentially unconditionally.
	AdaptiveForce
)

// String renders the mode in the spelling ParseAdaptiveMode accepts —
// the wire and flag vocabulary shared by the CLIs and the service.
func (m AdaptiveMode) String() string {
	switch m {
	case AdaptiveAuto:
		return "auto"
	case AdaptiveForce:
		return "force"
	}
	return "off"
}

// ParseAdaptiveMode reads the flag/wire spelling of an adaptive mode.
// The empty string is AdaptiveOff, so absent JSON fields and unset
// flags both mean "keep the fixed matrix".
func ParseAdaptiveMode(s string) (AdaptiveMode, error) {
	switch s {
	case "", "off":
		return AdaptiveOff, nil
	case "auto":
		return AdaptiveAuto, nil
	case "force":
		return AdaptiveForce, nil
	}
	return AdaptiveOff, fmt.Errorf("campaign: unknown adaptive mode %q (want off, auto or force)", s)
}

const (
	// defaultCIEpsilon is the stopping half-width when Config.CIEpsilon
	// is zero.
	defaultCIEpsilon = 0.05
	// adaptiveAlpha is the family-wise error rate split over the
	// monitored quantities (all pairs plus one propagation fraction per
	// location) by Bonferroni correction.
	adaptiveAlpha = 0.05
	// adaptivePilot is the first batch checkpoint per location; later
	// checkpoints double until the population is exhausted.
	adaptivePilot = 64
	// adaptiveAutoMin is the planned-jobs-per-location floor below
	// which AdaptiveAuto falls back to the full matrix.
	adaptiveAutoMin = 512
)

// adaptiveEnabled decides whether this campaign samples sequentially.
func (c Config) adaptiveEnabled() bool {
	switch c.Adaptive {
	case AdaptiveOff:
		return false
	case AdaptiveAuto:
		if c.Instrument != nil {
			return false
		}
		errors := len(c.Bits)
		if len(c.Models) > 0 {
			errors = len(c.Models)
		}
		return len(c.Times)*errors*len(c.TestCases) >= adaptiveAutoMin
	}
	return true
}

// AdaptiveEnabled reports whether this configuration resolves to
// sequential sampling — the effective state orchestration layers
// (internal/runner, internal/distrib) pin in config digests: an
// AdaptiveAuto campaign that declines (too small, instrumented) has
// exactly the full-matrix job set and must share its digest.
func (c Config) AdaptiveEnabled() bool { return c.adaptiveEnabled() }

// ResolvedCIEpsilon returns the stopping half-width in effect
// (Config.CIEpsilon, or the 0.05 default when zero).
func (c Config) ResolvedCIEpsilon() float64 {
	if c.CIEpsilon > 0 {
		return c.CIEpsilon
	}
	return defaultCIEpsilon
}

// AdaptiveStats documents how the sequential sampler spent (and saved)
// its budget; attached to Result.Adaptive for adaptive campaigns.
type AdaptiveStats struct {
	// Epsilon is the stopping half-width; Alpha the per-quantity
	// (Bonferroni-corrected) significance level behind the intervals.
	Epsilon, Alpha float64
	// FullRuns is the fixed-matrix job count this campaign replaces.
	FullRuns int
	// Population counts the fireable jobs (golden read log) across all
	// locations; Scheduled the jobs the stopping rule actually asked
	// for.
	Population, Scheduled int
	// StoppedEarly, Degenerate and Exhausted classify the locations:
	// closed by the CI rule, proven unable to fire (zero samples), or
	// sampled to the end of their population.
	StoppedEarly, Degenerate, Exhausted int
}

// schedJob identifies one (plan entry, test case) sample.
type schedJob struct {
	planIdx, caseIdx int
}

// schedKey addresses a sample by content, matching journal identity.
type schedKey struct {
	inj     string
	caseIdx int
}

// schedContrib is one settled sample's tally contribution.
type schedContrib struct {
	settled bool
	trial   bool // fired and completed: counts toward every denominator
	sysErr  bool // propagated to a system output
	errOut  []bool
}

// schedLocation is the sequential sampler's per-location state.
type schedLocation struct {
	module, signal string
	outputs        []string
	jobs           []schedJob
	contrib        []schedContrib
	// prefix: jobs [0, prefix) are settled and folded into the
	// tallies; checkpoint: the batch boundary the stopping rule
	// evaluates at next; next: the first undispatched position.
	prefix, checkpoint, next int
	trials, sysErrs          int
	errs                     []int
	stopped, exhausted       bool
	score, unc               float64
}

// roundOf returns the 1-based batch ordinal of a sample position under
// the pilot-then-doubling checkpoint schedule.
func (loc *schedLocation) roundOf(pos int) int {
	c := adaptivePilot
	if c > len(loc.jobs) {
		c = len(loc.jobs)
	}
	r := 1
	for pos >= c {
		c *= 2
		if c > len(loc.jobs) {
			c = len(loc.jobs)
		}
		r++
	}
	return r
}

// adaptiveScheduler is the sequential sampling state machine shared by
// the in-process campaign loop (Run) and, via AdaptivePlanner, the
// orchestration layers.
type adaptiveScheduler struct {
	window     sim.Millis
	eps, alpha float64

	mu    sync.Mutex
	locs  []*schedLocation
	byKey map[schedKey][2]int // -> (location, position)
	wake  chan struct{}

	population, dispatched, settled, fullRuns int
}

// newAdaptiveScheduler builds the deterministic sampling schedule: per
// location, the fireable jobs (per the golden read log) in
// hash-permuted order, seeded with importance priors from the
// analytical prediction.
func newAdaptiveScheduler(cfg Config, plan []inject.Injection, preds []casePredictions, pred *estimate.Prediction) (*adaptiveScheduler, error) {
	if preds == nil {
		return nil, invalidf("campaign: adaptive sampling needs golden-run predictions")
	}
	sys := cfg.topology()
	s := &adaptiveScheduler{
		window:   cfg.DirectWindowMs,
		eps:      cfg.ResolvedCIEpsilon(),
		byKey:    make(map[schedKey][2]int),
		wake:     make(chan struct{}, 1),
		fullRuns: len(plan) * len(cfg.TestCases),
	}
	persistent := cfg.FaultDurationMs > 0
	locIdx := make(map[[2]string]int)
	type orderedJob struct {
		key uint64
		tie string
		job schedJob
	}
	perLoc := make(map[int][]orderedJob)
	for pi, inj := range plan {
		lk := [2]string{inj.Module, inj.Signal}
		li, ok := locIdx[lk]
		if !ok {
			mod, err := sys.Module(inj.Module)
			if err != nil {
				return nil, err
			}
			loc := &schedLocation{module: inj.Module, signal: inj.Signal, unc: 0.5}
			for _, o := range mod.Outputs {
				loc.outputs = append(loc.outputs, o.Signal)
			}
			loc.errs = make([]int, len(loc.outputs))
			if pred != nil {
				loc.score = pred.LocationScore(inj.Module, inj.Signal)
			}
			li = len(s.locs)
			locIdx[lk] = li
			s.locs = append(s.locs, loc)
		}
		pk := portKey{module: inj.Module, signal: inj.Signal}
		for ci := range cfg.TestCases {
			fires := false
			if persistent {
				fires = preds[ci].persistent[pk][inj.At].fires
			} else {
				fires = preds[ci].transient[pk][inj.At].fires
			}
			if !fires {
				continue
			}
			tie := fmt.Sprintf("%s#%d", inj.String(), ci)
			h := fnv.New64a()
			h.Write([]byte(tie))
			perLoc[li] = append(perLoc[li], orderedJob{
				key: h.Sum64(),
				tie: tie,
				job: schedJob{planIdx: pi, caseIdx: ci},
			})
		}
	}
	for li, loc := range s.locs {
		jobs := perLoc[li]
		// The permutation de-correlates the sampled prefix from the
		// plan's enumeration order so a prefix is an unbiased sample of
		// the location's full (instant × error × case) grid; hashing
		// job identity keeps it a pure function of the config.
		sort.Slice(jobs, func(a, b int) bool {
			if jobs[a].key != jobs[b].key {
				return jobs[a].key < jobs[b].key
			}
			return jobs[a].tie < jobs[b].tie
		})
		for pos, oj := range jobs {
			s.byKey[schedKey{inj: plan[oj.job.planIdx].String(), caseIdx: oj.job.caseIdx}] = [2]int{li, pos}
			loc.jobs = append(loc.jobs, oj.job)
		}
		loc.contrib = make([]schedContrib, len(loc.jobs))
		loc.checkpoint = adaptivePilot
		if loc.checkpoint > len(loc.jobs) {
			loc.checkpoint = len(loc.jobs)
		}
		if len(loc.jobs) == 0 {
			// Degenerate: the read log proves no sample can fire —
			// every estimate of this location is exactly 0 with or
			// without sampling.
			loc.stopped = true
		}
		s.population += len(loc.jobs)
	}
	// Bonferroni share: one interval per pair plus one propagation
	// fraction per location, over the locations actually planned.
	m := len(s.locs)
	for _, loc := range s.locs {
		m += len(loc.outputs)
	}
	if m < 1 {
		m = 1
	}
	s.alpha = adaptiveAlpha / float64(m)
	return s, nil
}

// observe folds one settled sample into the tallies, advancing the
// location's settled prefix and evaluating any batch checkpoint the
// prefix reaches. It returns the sample's batch ordinal (1-based),
// recorded on the journal as RunRecord.Round.
func (s *adaptiveScheduler) observe(out runOutcome) (int, error) {
	key := schedKey{inj: out.injection.String(), caseIdx: out.caseIdx}
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}()
	ref, ok := s.byKey[key]
	if !ok {
		return 0, fmt.Errorf("campaign: adaptive scheduler got a record outside its schedule: %v case %d", out.injection, out.caseIdx)
	}
	loc, pos := s.locs[ref[0]], ref[1]
	if loc.contrib[pos].settled {
		return 0, fmt.Errorf("campaign: adaptive scheduler got %v case %d twice", out.injection, out.caseIdx)
	}
	c := schedContrib{settled: true, errOut: make([]bool, len(loc.outputs))}
	switch out.outcome {
	case OutcomeQuarantined, OutcomeCrash, OutcomeHang:
		// Excluded from every denominator, exactly as in aggregation.
	default:
		if out.fired {
			c.trial = true
			c.sysErr = out.systemDiff
			for o, sig := range loc.outputs {
				first, ok := out.outputFirst[sig]
				if !ok || first < 0 {
					continue
				}
				if s.window == 0 || first <= out.firedAt+s.window {
					c.errOut[o] = true
				}
			}
		}
	}
	loc.contrib[pos] = c
	s.settled++
	// Fold settled samples in position order, one at a time, so every
	// checkpoint evaluation sees the tallies of exactly its prefix —
	// replaying a journal whose records arrive out of order reproduces
	// the live run's decisions bit-identically.
	for !loc.stopped && loc.prefix < len(loc.jobs) && loc.contrib[loc.prefix].settled {
		f := loc.contrib[loc.prefix]
		if f.trial {
			loc.trials++
			if f.sysErr {
				loc.sysErrs++
			}
			for o, e := range f.errOut {
				if e {
					loc.errs[o]++
				}
			}
		}
		loc.prefix++
		if loc.prefix == loc.checkpoint {
			s.evaluateLocked(loc)
		}
	}
	return loc.roundOf(pos), nil
}

// evaluateLocked applies the stopping rule at a batch checkpoint: the
// location closes once every monitored quantity — each pair's
// permeability and the location's system-propagation fraction — has a
// conservative interval of half-width ≤ ε over the settled prefix.
func (s *adaptiveScheduler) evaluateLocked(loc *schedLocation) {
	maxHW := 0.5
	if loc.trials > 0 {
		maxHW = 0.0
		counts := append(append([]int(nil), loc.errs...), loc.sysErrs)
		for _, n := range counts {
			iv, err := stats.StoppingInterval(n, loc.trials, s.alpha)
			if err != nil {
				maxHW = 0.5
				break
			}
			if hw := iv.HalfWidth(); hw > maxHW {
				maxHW = hw
			}
		}
	}
	loc.unc = maxHW
	if loc.trials > 0 && maxHW <= s.eps {
		loc.stopped = true
		return
	}
	if loc.checkpoint >= len(loc.jobs) {
		loc.stopped = true
		loc.exhausted = true
		return
	}
	loc.checkpoint *= 2
	if loc.checkpoint > len(loc.jobs) {
		loc.checkpoint = len(loc.jobs)
	}
}

// claimLocked hands out the next sample of the most important live
// location — importance = analytical prior × remaining uncertainty.
// finished distinguishes "the schedule is complete" from "all live
// batches are fully in flight, wait for settles".
func (s *adaptiveScheduler) claimLocked() (j schedJob, ok, finished bool) {
	best := -1
	var bestPri float64
	finished = true
	for i, loc := range s.locs {
		if loc.stopped {
			continue
		}
		finished = false
		for loc.next < loc.checkpoint && loc.contrib[loc.next].settled {
			// Settled ahead of dispatch (journal replay): skip.
			loc.next++
		}
		if loc.next >= loc.checkpoint {
			continue
		}
		pri := loc.score * loc.unc
		if best == -1 || pri > bestPri {
			best, bestPri = i, pri
		}
	}
	if best == -1 {
		return schedJob{}, false, finished
	}
	loc := s.locs[best]
	j = loc.jobs[loc.next]
	loc.next++
	s.dispatched++
	return j, true, false
}

// next blocks until a sample is claimable, returning false when the
// schedule is complete (or done closes). Single-consumer.
func (s *adaptiveScheduler) next(done <-chan struct{}) (schedJob, bool) {
	for {
		s.mu.Lock()
		j, ok, finished := s.claimLocked()
		s.mu.Unlock()
		if ok {
			return j, true
		}
		if finished {
			return schedJob{}, false
		}
		select {
		case <-s.wake:
		case <-done:
			return schedJob{}, false
		}
	}
}

// done reports whether every location has stopped.
func (s *adaptiveScheduler) done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, loc := range s.locs {
		if !loc.stopped {
			return false
		}
	}
	return true
}

// stats snapshots the sampler's bookkeeping.
func (s *adaptiveScheduler) stats() AdaptiveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := AdaptiveStats{
		Epsilon:    s.eps,
		Alpha:      s.alpha,
		FullRuns:   s.fullRuns,
		Population: s.population,
	}
	for _, loc := range s.locs {
		for pos := range loc.contrib {
			if pos < loc.next || loc.contrib[pos].settled {
				st.Scheduled++
			}
		}
		switch {
		case len(loc.jobs) == 0:
			st.Degenerate++
		case loc.exhausted:
			st.Exhausted++
		case loc.stopped:
			st.StoppedEarly++
		}
	}
	return st
}

// goldenActivity measures, per signal, the mean fraction of golden-run
// ticks on which the signal changed value — the activity weights the
// analytical estimator (internal/estimate) sharpens its priors with.
func goldenActivity(goldens []*trace.Trace) map[string]float64 {
	if len(goldens) == 0 {
		return nil
	}
	acc := make(map[string]float64)
	for _, g := range goldens {
		if g == nil {
			continue
		}
		for _, sig := range g.Signals() {
			samples, err := g.Samples(sig)
			if err != nil || len(samples) < 2 {
				continue
			}
			changes := 0
			for i := 1; i < len(samples); i++ {
				if samples[i] != samples[i-1] {
					changes++
				}
			}
			acc[sig] += float64(changes) / float64(len(samples)-1)
		}
	}
	for k := range acc {
		acc[k] /= float64(len(goldens))
	}
	return acc
}

// AdaptivePlanner exposes the sequential sampling schedule to external
// execution drivers: internal/runner's Assemble proves journal
// coverage against it, and the distributed coordinator carves work
// units from its frontier and detects campaign completion with it.
// The planner is deterministic: two planners over the same Config
// claim the same schedule, and feeding the journal of a finished
// campaign back through Observe reproduces every stopping decision
// bit-identically.
type AdaptivePlanner struct {
	sched *adaptiveScheduler
	sys   *model.System
	cases int
}

// NewAdaptivePlanner builds the deterministic sampling schedule for an
// adaptive configuration. It records the golden runs (with read-log
// capture) to derive the fireable populations and the analytical
// priors; the cost is one uninjected pass per test case.
func NewAdaptivePlanner(cfg Config) (*AdaptivePlanner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.adaptiveEnabled() {
		return nil, invalidf("campaign: configuration is not adaptive")
	}
	goldens, preds, err := goldenRuns(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	sys := cfg.topology()
	pred := estimate.Predict(sys, estimate.Options{Activity: goldenActivity(goldens)})
	sched, err := newAdaptiveScheduler(cfg, plan, preds, pred)
	if err != nil {
		return nil, err
	}
	return &AdaptivePlanner{sched: sched, sys: sys, cases: len(cfg.TestCases)}, nil
}

// Observe feeds one settled record (journal replay or a freshly
// accepted upload) into the schedule. Records outside the schedule or
// observed twice are errors — coverage proofs rely on that strictness.
func (p *AdaptivePlanner) Observe(rec RunRecord) error {
	out, err := recordOutcome(p.sys, rec)
	if err != nil {
		return err
	}
	_, err = p.sched.observe(out)
	return err
}

// Claim hands out up to max unclaimed samples as global job indices
// (plan index × #cases + case index — the journal numbering), in
// importance order. Claimed samples are never handed out again; a
// crashed worker's unit keeps its job list and is re-leased, not
// re-claimed.
func (p *AdaptivePlanner) Claim(max int) []int {
	s := p.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for len(out) < max {
		j, ok, _ := s.claimLocked()
		if !ok {
			break
		}
		out = append(out, j.planIdx*p.cases+j.caseIdx)
	}
	return out
}

// Done reports whether the schedule is complete: every location
// stopped, which implies every claimed sample has settled.
func (p *AdaptivePlanner) Done() bool { return p.sched.done() }

// Settled returns how many samples have been observed.
func (p *AdaptivePlanner) Settled() int {
	p.sched.mu.Lock()
	defer p.sched.mu.Unlock()
	return p.sched.settled
}

// Outstanding returns how many claimed samples are not yet settled.
func (p *AdaptivePlanner) Outstanding() int {
	s := p.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, loc := range s.locs {
		for pos := 0; pos < loc.next; pos++ {
			if !loc.contrib[pos].settled {
				n++
			}
		}
	}
	return n
}

// Population returns the fireable sample count across all locations —
// the adaptive upper bound on executed jobs.
func (p *AdaptivePlanner) Population() int {
	p.sched.mu.Lock()
	defer p.sched.mu.Unlock()
	return p.sched.population
}

// Stats snapshots the sampler's bookkeeping.
func (p *AdaptivePlanner) Stats() AdaptiveStats { return p.sched.stats() }
