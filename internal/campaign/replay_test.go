package campaign_test

// External-package tests for the orchestration hooks added for
// internal/runner: the ErrInvalidConfig sentinel, the deterministic
// Plan enumeration, and the Skip/Replay pair that lets a journaled
// campaign resume without re-executing completed runs. They live in
// package campaign_test so they can render matrices via
// internal/report without an import cycle.

import (
	"errors"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/report"
	"propane/internal/sim"
)

// tinyConfig is a minimal but complete arrestor campaign: 1×2 grid,
// 2 instants, 2 bits — 13 input ports × 2 × 2 × 2 = 104 runs.
func tinyConfig(t *testing.T) campaign.Config {
	t.Helper()
	cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1500, 3500},
		Bits:           []uint{2, 14},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

func TestValidateWrapsErrInvalidConfig(t *testing.T) {
	valid := tinyConfig(t)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := map[string]func(*campaign.Config){
		"no cases":        func(c *campaign.Config) { c.TestCases = nil },
		"no times":        func(c *campaign.Config) { c.Times = nil },
		"no errors":       func(c *campaign.Config) { c.Bits = nil },
		"bad horizon":     func(c *campaign.Config) { c.HorizonMs = 0 },
		"time past end":   func(c *campaign.Config) { c.Times = []sim.Millis{9999} },
		"bad checkpoints": func(c *campaign.Config) { c.Checkpoints = campaign.CheckpointMode(99) },
		"neg window":      func(c *campaign.Config) { c.DirectWindowMs = -1 },
		"neg duration":    func(c *campaign.Config) { c.FaultDurationMs = -1 },
		"hollow custom":   func(c *campaign.Config) { c.Custom = &campaign.Target{} },
		"broken arrestor": func(c *campaign.Config) { c.Arrestor.TCNTTicksPerMs = 0 },
	}
	for name, mutate := range mutations {
		c := tinyConfig(t)
		mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
			continue
		}
		if !errors.Is(err, campaign.ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", name, err)
		}
	}
	// Run must surface the same sentinel so callers can tell config
	// mistakes from execution failures.
	bad := tinyConfig(t)
	bad.TestCases = nil
	if _, err := campaign.Run(bad); !errors.Is(err, campaign.ErrInvalidConfig) {
		t.Errorf("Run error %v does not wrap ErrInvalidConfig", err)
	}
}

func TestPlanMatchesRunEnumeration(t *testing.T) {
	cfg := tinyConfig(t)
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	// Deterministic: two computations agree element-wise.
	again, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan {
		if plan[i].String() != again[i].String() {
			t.Fatalf("plan not deterministic at %d: %v vs %v", i, plan[i], again[i])
		}
	}
	// Run visits exactly the planned jobs.
	seen := make(map[string]int)
	cfg.Observer = func(rec campaign.RunRecord) {
		seen[rec.Injection.String()]++
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(plan) * len(cfg.TestCases); res.Runs != want {
		t.Errorf("Runs = %d, want %d", res.Runs, want)
	}
	for _, inj := range plan {
		if seen[inj.String()] != len(cfg.TestCases) {
			t.Errorf("injection %v observed %d times, want %d", inj, seen[inj.String()], len(cfg.TestCases))
		}
	}
}

// TestSkipReplayConverges executes a campaign once uninterrupted,
// then re-runs it with half the jobs skipped and their recorded
// outcomes replayed instead; the resumed result must be bit-identical
// to the baseline.
func TestSkipReplayConverges(t *testing.T) {
	cfg := tinyConfig(t)

	var records []campaign.RunRecord
	cfg.Observer = func(rec campaign.RunRecord) { records = append(records, rec) }
	base, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = nil

	type key struct {
		inj     string
		caseIdx int
	}
	// Replay an arbitrary half of the recorded runs (every other
	// record) and skip exactly those jobs on the resumed run.
	done := make(map[key]bool)
	var replay []campaign.RunRecord
	for i, rec := range records {
		if i%2 == 0 {
			done[key{rec.Injection.String(), rec.CaseIndex}] = true
			replay = append(replay, rec)
		}
	}
	cfg.Replay = replay
	cfg.Skip = func(inj inject.Injection, caseIdx int) bool {
		return done[key{inj.String(), caseIdx}]
	}
	resumed, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if resumed.Runs != base.Runs || resumed.Unfired != base.Unfired {
		t.Errorf("runs/unfired = %d/%d, want %d/%d", resumed.Runs, resumed.Unfired, base.Runs, base.Unfired)
	}
	if got, want := report.MatrixCSV(resumed.Matrix), report.MatrixCSV(base.Matrix); got != want {
		t.Errorf("resumed matrix differs from baseline:\n%s\nvs\n%s", got, want)
	}
	for i := range base.Pairs {
		b, r := base.Pairs[i], resumed.Pairs[i]
		if b.Injections != r.Injections || b.Errors != r.Errors ||
			b.Transients != r.Transients || b.Permanents != r.Permanents ||
			b.MeanLatencyMs != r.MeanLatencyMs {
			t.Errorf("pair %v stats diverge: %+v vs %+v", b.Pair, r, b)
		}
	}
	for i := range base.Locations {
		if base.Locations[i] != resumed.Locations[i] {
			t.Errorf("location %d diverges: %+v vs %+v", i, resumed.Locations[i], base.Locations[i])
		}
	}
}
