package campaign

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"propane/internal/hostile"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/sim"
)

// hostileConfig is a small campaign over the adversarial target: bit
// 15 on MINE's input crashes the run, bit 15 on TARPIT's input hangs
// it, and everything else behaves like an ordinary data error.
func hostileConfig(t *testing.T) Config {
	t.Helper()
	cases, err := physics.Grid(1, 2, 12000, 12000, 50, 70)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Custom:    hostile.Target(),
		TestCases: cases,
		Times:     []sim.Millis{50, 150},
		Bits:      []uint{3, 15},
		HorizonMs: 300,
		Budget:    hostile.RunBudget(300),
	}
}

func TestHostileCampaignCompletesUnattended(t *testing.T) {
	res, err := Run(hostileConfig(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 5 input ports × 2 bits × 2 times × 2 cases.
	if got, want := res.Runs, 5*2*2*2; got != want {
		t.Errorf("Runs = %d, want %d", got, want)
	}
	// Bit-15 flips on MINE/hs_val crash; 2 times × 2 cases.
	if res.Crashes != 4 {
		t.Errorf("Crashes = %d, want 4", res.Crashes)
	}
	// Bit-15 flips on TARPIT/hs_tick hang; 2 times × 2 cases.
	if res.Hangs != 4 {
		t.Errorf("Hangs = %d, want 4", res.Hangs)
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("Quarantined = %v, want none", res.Quarantined)
	}

	locs := make(map[string]LocationPropagation, len(res.Locations))
	for _, loc := range res.Locations {
		locs[loc.Module+"/"+loc.Signal] = loc
	}
	if loc := locs[hostile.ModMine+"/"+hostile.SigVal]; loc.Crashes != 4 || loc.Injections != 4 {
		t.Errorf("MINE/hs_val: crashes=%d injections=%d, want 4/4 (crashes out of the denominator)", loc.Crashes, loc.Injections)
	}
	if loc := locs[hostile.ModTarpit+"/"+hostile.SigTick]; loc.Hangs != 4 || loc.Injections != 4 {
		t.Errorf("TARPIT/hs_tick: hangs=%d injections=%d, want 4/4 (hangs out of the denominator)", loc.Hangs, loc.Injections)
	}

	for _, ps := range res.Pairs {
		if ps.InputSignal == hostile.SigVal && ps.OutputSignal == hostile.SigOut {
			if ps.Crashes != 4 {
				t.Errorf("pair %s->%s: Crashes = %d, want 4", ps.InputSignal, ps.OutputSignal, ps.Crashes)
			}
			if ps.Injections != 4 {
				t.Errorf("pair %s->%s: n_inj = %d, want 4 (crashed runs must not inflate it)", ps.InputSignal, ps.OutputSignal, ps.Injections)
			}
		}
		if ps.InputSignal == hostile.SigTick && ps.OutputSignal == hostile.SigOut {
			if ps.Hangs != 4 {
				t.Errorf("pair %s->%s: Hangs = %d, want 4", ps.InputSignal, ps.OutputSignal, ps.Hangs)
			}
		}
	}
}

func TestHostileOutcomesObserved(t *testing.T) {
	cfg := hostileConfig(t)
	var mu sync.Mutex
	byOutcome := map[Outcome]int{}
	cfg.Observer = func(rec RunRecord) {
		mu.Lock()
		defer mu.Unlock()
		byOutcome[rec.Outcome]++
		if rec.Outcome == OutcomeCrash && !strings.Contains(rec.Detail, "mine tripped") {
			t.Errorf("crash record detail = %q, want the panic value", rec.Detail)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if byOutcome[OutcomeCrash] != 4 || byOutcome[OutcomeHang] != 4 {
		t.Errorf("observed outcomes %v, want 4 crashes and 4 hangs", byOutcome)
	}
	if byOutcome[OutcomeOK]+byOutcome[OutcomeDeviation] != 32 {
		t.Errorf("observed outcomes %v, want 32 completed benign runs", byOutcome)
	}
	if byOutcome[""] != 0 {
		t.Errorf("observed %d records without an outcome", byOutcome[""])
	}
}

// poisonInstrument panics on every run of the second test case —
// a worker fault outside the guarded target execution, the situation
// the retry/quarantine policy exists for.
func poisonInstrument(inst Instance, caseIdx int) (any, error) {
	if caseIdx == 1 {
		panic("instrument corrupted state")
	}
	return nil, nil
}

func TestQuarantineRetriesExactlyNThenExcludes(t *testing.T) {
	cfg := hostileConfig(t)
	cfg.Times = []sim.Millis{50}
	cfg.Bits = []uint{3}
	cfg.Workers = 1
	cfg.Instrument = poisonInstrument

	const after = 3
	var mu sync.Mutex
	attempts := map[string]int{}
	policy := QuarantinePolicy(after, nil)
	cfg.OnJobError = func(inj inject.Injection, caseIdx, attempt int, err error) JobErrorAction {
		mu.Lock()
		attempts[inj.String()] = attempt
		mu.Unlock()
		return policy(inj, caseIdx, attempt, err)
	}

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 5 ports × 1 bit × 1 time × 2 cases; the poisoned case's 5 jobs
	// are quarantined but still settled.
	if got, want := res.Runs, 10; got != want {
		t.Errorf("Runs = %d, want %d", got, want)
	}
	if len(res.Quarantined) != 5 {
		t.Fatalf("Quarantined = %d jobs, want 5", len(res.Quarantined))
	}
	for _, q := range res.Quarantined {
		if q.CaseIndex != 1 {
			t.Errorf("quarantined case %d, want 1", q.CaseIndex)
		}
		if q.Attempts != after {
			t.Errorf("job %v quarantined after %d attempts, want exactly %d", q.Injection, q.Attempts, after)
		}
		if !strings.Contains(q.Reason, "instrument corrupted state") {
			t.Errorf("quarantine reason %q does not carry the worker fault", q.Reason)
		}
		if got := attempts[q.Injection.String()]; got != after {
			t.Errorf("policy consulted %d times for %v, want %d", got, q.Injection, after)
		}
	}
	// Quarantined jobs must not appear in any permeability denominator.
	for _, loc := range res.Locations {
		if loc.Quarantined != 1 {
			t.Errorf("%s/%s: Quarantined = %d, want 1", loc.Module, loc.Signal, loc.Quarantined)
		}
		if loc.Injections != 1 {
			t.Errorf("%s/%s: Injections = %d, want 1 (only the healthy case)", loc.Module, loc.Signal, loc.Injections)
		}
	}
	for _, ps := range res.Pairs {
		if ps.Injections > 1 {
			t.Errorf("pair %s->%s: n_inj = %d, want <= 1", ps.InputSignal, ps.OutputSignal, ps.Injections)
		}
	}
}

func TestWorkerFaultAbortsWithoutPolicy(t *testing.T) {
	cfg := hostileConfig(t)
	cfg.Times = []sim.Millis{50}
	cfg.Bits = []uint{3}
	cfg.Instrument = poisonInstrument // no OnJobError: old fail-fast contract
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run succeeded despite an unhandled worker panic")
	} else if !strings.Contains(err.Error(), "worker panic") {
		t.Errorf("error %q does not name the worker panic", err)
	}
}

var errForTest = errors.New("synthetic worker fault")

func TestQuarantinePolicyDecisions(t *testing.T) {
	var logged []string
	policy := QuarantinePolicy(2, func(format string, args ...any) {
		logged = append(logged, format)
	})
	inj := inject.Injection{Module: "M", Signal: "s", At: 1, Model: inject.BitFlip{Bit: 0}}
	if got := policy(inj, 0, 1, errForTest); got != RetryJob {
		t.Errorf("attempt 1: %v, want RetryJob", got)
	}
	if got := policy(inj, 0, 2, errForTest); got != QuarantineJob {
		t.Errorf("attempt 2: %v, want QuarantineJob", got)
	}
	if len(logged) != 2 {
		t.Errorf("policy logged %d lines, want 2", len(logged))
	}
}

func TestBudgetValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budget = sim.Budget{Steps: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a negative step budget")
	}
	cfg = tinyConfig()
	cfg.Budget = sim.Budget{Wall: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a negative wall budget")
	}
}
