package campaign

import (
	"container/list"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"propane/internal/inject"
	"propane/internal/model"
	"propane/internal/sim"
	"propane/internal/trace"
)

// Equivalence pruning and run-result memoization. The simulator is
// fully deterministic, so many injection runs are decided before they
// execute:
//
//   - Unfired: the golden run's instrumented reads tell us, per
//     (module, input signal, instant), whether a trap armed there can
//     fire at all. Until a trap fires the injected run is bit-identical
//     to the golden run, so golden reads predict injected reads
//     exactly; a port the golden run never reads at or after the
//     instant yields an unfired run with an empty comparison.
//   - No-op: the same read log carries the value the trap would
//     mutate. When Mutate(v) == v the trap writes back the value that
//     was already there — the run completes as ok with no deviations,
//     without simulating.
//   - Memoized: two transient jobs whose restored snapshot state
//     (digested), firing read and corrupted value coincide are the
//     same experiment; the second is served from a bounded result
//     cache carrying the full outcome + deviation diffs, so the
//     synthesized record is bit-identical to the executed one.
//   - Converged: an executing transient run that, at a later
//     checkpoint instant, has returned to exactly the golden state
//     (signals, hidden state, and — under a step budget — the step
//     accounting) must follow the golden run for the rest of the
//     horizon: its diffs are final and it can neither crash nor hang
//     later, so simulation stops there.
//
// All four classifications preserve bit-identity with a full
// execution; the equivalence suite (prune_test.go) asserts it on
// every registry target, including crash/hang-heavy ones.

// PruneMode selects whether provably redundant injection runs are
// short-circuited (equivalence pruning) and repeated experiments are
// served from the result cache (memoization).
type PruneMode int

const (
	// PruneAuto (the default) prunes when no Instrument hook is
	// configured. A pruned run never builds a target instance, so
	// Instrument would not be invoked and its attachment would be
	// missing from the record; auto mode conservatively executes every
	// run for instrumented campaigns.
	PruneAuto PruneMode = iota
	// PruneOff executes every injection run.
	PruneOff
	// PruneForce prunes even with an Instrument hook configured — for
	// instrumentation that only wraps per-run bookkeeping (e.g.
	// internal/runner's timing wrapper) and tolerates a nil attachment
	// on synthesized records.
	PruneForce
)

// Pruned-kind labels recorded on RunRecord.Pruned (and on journal
// records) for runs whose outcome was obtained without a full
// execution. The empty string marks a fully executed run.
const (
	// PrunedUnfired: the golden read log proves the trap cannot fire.
	PrunedUnfired = "unfired"
	// PrunedNoOp: the corrupted value equals the golden value at the
	// firing read, so the injection changes nothing.
	PrunedNoOp = "noop"
	// PrunedMemoized: the outcome was served from the result cache of
	// an identical earlier experiment.
	PrunedMemoized = "memo"
	// PrunedMemoStore: the outcome was served from a persistent memo
	// backend (Config.Memo) — an identical experiment executed by an
	// earlier campaign, possibly in another process. Distinct from
	// PrunedMemoized so fleets can count cross-campaign reuse; like
	// every pruned label it is excluded from record equality and the
	// record-set digest, so mixed hot/cold journals interoperate.
	PrunedMemoStore = "memo-store"
	// PrunedConverged: the run executed, but stopped early at a
	// checkpoint instant where its state had returned to the golden
	// run's.
	PrunedConverged = "converged"
)

// MemoKey identifies one transient experiment up to determinism — the
// exported form of the memo cache key, for persistent backends. The
// digest alone does not pin the target's construction parameters or
// dynamics, so a backend must additionally scope keys by the campaign
// config digest (see runner.Options.Memo); within one scope the key
// is sound across processes and campaigns.
type MemoKey struct {
	Case     int        `json:"case"`
	Digest   string     `json:"digest"`
	Module   string     `json:"module"`
	Signal   string     `json:"signal"`
	FireTick sim.Millis `json:"fire_tick"`
	Value    uint16     `json:"value"`
	Budget   int64      `json:"budget,omitempty"`
}

// MemoEntry carries everything needed to synthesize a record
// bit-identical to the executed one.
type MemoEntry struct {
	Outcome Outcome               `json:"outcome"`
	Detail  string                `json:"detail,omitempty"`
	FiredAt sim.Millis            `json:"fired_at"`
	Diffs   map[string]trace.Diff `json:"diffs,omitempty"`
}

// MemoBackend is a second-level, typically persistent memo store
// consulted when the in-process result cache misses. Implementations
// must be safe for concurrent use and must not retain or mutate the
// Diffs map after PutMemo returns (clone or serialize it). A backend
// that errors internally should report a miss — the run then simply
// executes, so a wiped or corrupt store degrades to full execution.
type MemoBackend interface {
	GetMemo(MemoKey) (MemoEntry, bool)
	PutMemo(MemoKey, MemoEntry)
}

// PruneSignalCounts breaks the pruning counters down for one injection
// location ("signal@module"). Store counts memo hits served from the
// persistent backend (Config.Memo) rather than the in-process cache.
type PruneSignalCounts struct {
	NoOp, Unfired, Memoized, Store, Converged, Executed int
}

// PruneStats counts, over all settled non-quarantined injection jobs,
// how each outcome was obtained. Pruned runs keep their synthesized
// outcomes in every estimate denominator — the counters document how
// the estimates were computed, they do not change them.
type PruneStats struct {
	NoOp, Unfired, Memoized, Store, Converged, Executed int
	// PerSignal keys the same counters by injection location,
	// "signal@module".
	PerSignal map[string]PruneSignalCounts
}

// Total returns the number of runs settled without a full execution.
func (ps PruneStats) Total() int {
	return ps.NoOp + ps.Unfired + ps.Memoized + ps.Store + ps.Converged
}

// pruningEnabled decides whether this campaign prunes. Unlike
// checkpointsEnabled it needs no target capability probe: the read-log
// classifications are sound for any target, and the checkpoint-based
// convergence probe simply stays off when no checkpoint cache exists.
func (c Config) pruningEnabled() bool {
	switch c.Prune {
	case PruneOff:
		return false
	case PruneAuto:
		if c.Instrument != nil {
			return false
		}
	}
	return true
}

// portKey identifies one instrumented input port.
type portKey struct {
	module, signal string
}

// readEvent is one instrumented read observed on the golden run: the
// simulated tick and the pre-read signal value — exactly what a trap
// armed on this port would see and mutate.
type readEvent struct {
	tick  sim.Millis
	value uint16
}

// readLog records every instrumented read of one golden run. It is
// written from a single goroutine (the case's golden run) and only
// distilled afterwards, so it needs no locking.
type readLog struct {
	events map[portKey][]readEvent
}

func newReadLog() *readLog {
	return &readLog{events: make(map[portKey][]readEvent)}
}

// hook returns the recording sim.ReadHook. It observes only — the
// golden run with this hook installed is bit-identical to one without.
func (l *readLog) hook() sim.ReadHook {
	return func(module, signal string, sig *sim.Signal, now sim.Millis) {
		k := portKey{module: module, signal: signal}
		l.events[k] = append(l.events[k], readEvent{tick: now, value: sig.Read()})
	}
}

// transientPred predicts a one-shot trap armed at one (port, instant):
// whether it fires, the tick of the firing read, and the value the
// read would deliver uninjected. Sound because the injected run is
// bit-identical to the golden run until the trap fires.
type transientPred struct {
	fires    bool
	fireTick sim.Millis
	value    uint16
}

// persistentPred predicts a persistent trap's window [At, At+dur]:
// whether any read falls in it, the first one's tick, and the set of
// distinct values read. The set only supports the no-op check — if
// every value maps to itself the injected run never diverges, by
// induction over the (then still golden) reads.
type persistentPred struct {
	fires      bool
	fireTick   sim.Millis
	values     []uint16
	unprunable bool // too many distinct values to enumerate
}

// maxPersistentValues caps the distinct-value set of a persistent
// prediction; windows richer than this are executed unconditionally.
const maxPersistentValues = 64

// casePredictions is one test case's distilled read log: one
// prediction per (instrumented port, injection instant). Ports the
// golden run never reads have no entry; the zero-valued prediction a
// lookup then returns means "cannot fire", which is exactly right.
type casePredictions struct {
	transient  map[portKey]map[sim.Millis]transientPred
	persistent map[portKey]map[sim.Millis]persistentPred
}

// distill reduces the raw read log to per-instant predictions so the
// (potentially large) event slices can be garbage-collected.
func (l *readLog) distill(times []sim.Millis, faultDuration sim.Millis) casePredictions {
	cp := casePredictions{}
	if faultDuration <= 0 {
		cp.transient = make(map[portKey]map[sim.Millis]transientPred, len(l.events))
		for k, evs := range l.events {
			m := make(map[sim.Millis]transientPred, len(times))
			for _, at := range times {
				// Events are appended in tick order; the first one at or
				// after the arm time is the firing read.
				i := sort.Search(len(evs), func(i int) bool { return evs[i].tick >= at })
				p := transientPred{}
				if i < len(evs) {
					p = transientPred{fires: true, fireTick: evs[i].tick, value: evs[i].value}
				}
				m[at] = p
			}
			cp.transient[k] = m
		}
		return cp
	}
	cp.persistent = make(map[portKey]map[sim.Millis]persistentPred, len(l.events))
	for k, evs := range l.events {
		m := make(map[sim.Millis]persistentPred, len(times))
		for _, at := range times {
			i := sort.Search(len(evs), func(i int) bool { return evs[i].tick >= at })
			p := persistentPred{}
			seen := make(map[uint16]bool)
			for ; i < len(evs) && evs[i].tick <= at+faultDuration; i++ {
				if !p.fires {
					p.fires = true
					p.fireTick = evs[i].tick
				}
				if !seen[evs[i].value] {
					seen[evs[i].value] = true
					p.values = append(p.values, evs[i].value)
					if len(p.values) > maxPersistentValues {
						p.unprunable = true
						break
					}
				}
			}
			m[at] = p
		}
		cp.persistent[k] = m
	}
	return cp
}

// The MemoKey components: the test case (construction parameters are
// not part of the state digest), the digested pre-injection state,
// the port, the tick of the firing read, the corrupted value the trap
// writes there, and the step budget (it decides hang classification).
// The firing read's position inside its tick needs no key component:
// it is always the first matching read of tick FireTick, whatever the
// arm time was.

// defaultMemoBound bounds the result cache (entries, LRU-recycled).
const defaultMemoBound = 4096

// memoCache is a bounded, concurrency-safe LRU of run results. Diffs
// are cloned on both store and serve so a cached map is never aliased
// by records in flight.
type memoCache struct {
	mu    sync.Mutex
	bound int
	items map[MemoKey]*list.Element
	order *list.List // front = most recently used
}

type memoItem struct {
	key   MemoKey
	entry MemoEntry
}

func newMemoCache(bound int) *memoCache {
	if bound <= 0 {
		bound = defaultMemoBound
	}
	return &memoCache{bound: bound, items: make(map[MemoKey]*list.Element), order: list.New()}
}

func (mc *memoCache) get(k MemoKey) (MemoEntry, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	el, ok := mc.items[k]
	if !ok {
		return MemoEntry{}, false
	}
	mc.order.MoveToFront(el)
	e := el.Value.(*memoItem).entry
	e.Diffs = cloneDiffs(e.Diffs)
	return e, true
}

func (mc *memoCache) put(k MemoKey, e MemoEntry) {
	e.Diffs = cloneDiffs(e.Diffs)
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if el, ok := mc.items[k]; ok {
		mc.order.MoveToFront(el)
		el.Value.(*memoItem).entry = e
		return
	}
	mc.items[k] = mc.order.PushFront(&memoItem{key: k, entry: e})
	for mc.order.Len() > mc.bound {
		back := mc.order.Back()
		mc.order.Remove(back)
		delete(mc.items, back.Value.(*memoItem).key)
	}
}

func (mc *memoCache) len() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.order.Len()
}

func cloneDiffs(m map[string]trace.Diff) map[string]trace.Diff {
	if m == nil {
		return nil
	}
	out := make(map[string]trace.Diff, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// digestKey scopes a state digest to one (test case, instant).
type digestKey struct {
	caseIdx int
	at      sim.Millis
}

// pruner classifies injection jobs before execution and serves /
// collects memoized results. Shared across the campaign's workers.
type pruner struct {
	cfg     Config
	preds   []casePredictions // per test case
	memo    *memoCache
	backend MemoBackend // optional L2, consulted on L1 misses

	mu      sync.Mutex
	digests map[digestKey]string
}

func newPruner(cfg Config, preds []casePredictions) *pruner {
	return &pruner{
		cfg:     cfg,
		preds:   preds,
		memo:    newMemoCache(cfg.memoBound),
		backend: cfg.Memo,
		digests: make(map[digestKey]string),
	}
}

// digestFor returns the cached pre-injection state digest for one
// (test case, instant). With a checkpoint snapshot available that is
// Snapshot.Digest; without one, determinism still pins the state of a
// (case, instant) within this campaign, so a positional fallback key
// is equally sound — the digest is a guard, not the sole key.
func (p *pruner) digestFor(caseIdx int, at sim.Millis, snap *sim.Snapshot) string {
	key := digestKey{caseIdx: caseIdx, at: at}
	p.mu.Lock()
	d, ok := p.digests[key]
	p.mu.Unlock()
	if ok {
		return d
	}
	if snap != nil {
		d = snap.Digest()
	} else {
		d = fmt.Sprintf("t=%d", at)
	}
	p.mu.Lock()
	p.digests[key] = d
	p.mu.Unlock()
	return d
}

// classify decides one job before execution. It returns the
// synthesized outcome when the job is pruned; otherwise, for
// memoizable jobs, it returns the key under which the executed result
// should be stored (see store).
func (p *pruner) classify(sys *model.System, caseIdx int, inj inject.Injection, snap *sim.Snapshot) (runOutcome, bool, *MemoKey, error) {
	base := runOutcome{injection: inj, caseIdx: caseIdx, failureAt: -1}
	pk := portKey{module: inj.Module, signal: inj.Signal}
	if p.cfg.FaultDurationMs > 0 {
		pred := p.preds[caseIdx].persistent[pk][inj.At]
		if !pred.fires {
			base.outcome = OutcomeOK
			base.pruned = PrunedUnfired
			return base, true, nil, nil
		}
		if pred.unprunable {
			return runOutcome{}, false, nil, nil
		}
		for _, v := range pred.values {
			if inj.Model.Mutate(v) != v {
				// Persistent runs diverge from the golden run after the
				// first effective write, invalidating every later
				// prediction — they are never memoized either.
				return runOutcome{}, false, nil, nil
			}
		}
		base.fired = true
		base.firedAt = pred.fireTick
		base.outcome = OutcomeOK
		base.pruned = PrunedNoOp
		return base, true, nil, nil
	}
	pred := p.preds[caseIdx].transient[pk][inj.At]
	if !pred.fires {
		// firedAt stays 0, matching an executed run's Trap.Fired() zero
		// return; diffs stay nil — until a trap fires the run is the
		// golden run, and an unfired run never deviates.
		base.outcome = OutcomeOK
		base.pruned = PrunedUnfired
		return base, true, nil, nil
	}
	corrupted := inj.Model.Mutate(pred.value)
	if corrupted == pred.value {
		base.fired = true
		base.firedAt = pred.fireTick
		base.outcome = OutcomeOK
		base.pruned = PrunedNoOp
		return base, true, nil, nil
	}
	mk := &MemoKey{
		Case:     caseIdx,
		Digest:   p.digestFor(caseIdx, inj.At, snap),
		Module:   inj.Module,
		Signal:   inj.Signal,
		FireTick: pred.fireTick,
		Value:    corrupted,
		Budget:   p.cfg.Budget.Steps,
	}
	if e, ok := p.memo.get(*mk); ok {
		return p.serveMemo(sys, base, e, PrunedMemoized)
	}
	if p.backend != nil {
		if e, ok := p.backend.GetMemo(*mk); ok {
			// Promote to the in-process cache so repeats within this
			// campaign are served locally (and counted as "memo").
			p.memo.put(*mk, e)
			e.Diffs = cloneDiffs(e.Diffs)
			return p.serveMemo(sys, base, e, PrunedMemoStore)
		}
	}
	return runOutcome{}, false, mk, nil
}

// serveMemo synthesizes the outcome of a memoized experiment. e.Diffs
// must already be a private clone — the returned outcome aliases it.
func (p *pruner) serveMemo(sys *model.System, base runOutcome, e MemoEntry, label string) (runOutcome, bool, *MemoKey, error) {
	out := base
	out.fired = true
	out.firedAt = e.FiredAt
	out.diffs = e.Diffs
	out.outcome = e.Outcome
	out.detail = e.Detail
	out.pruned = label
	if e.Outcome == OutcomeCrash || e.Outcome == OutcomeHang {
		// Executed crash/hang records skip the output epilogue
		// (outputFirst nil, no system failure, failureAt -1); the
		// synthesized record must match them field for field.
		return out, true, nil, nil
	}
	if err := finishOutcome(sys, &out); err != nil {
		return runOutcome{}, false, nil, err
	}
	return out, true, nil, nil
}

// store caches one executed result under the key classify handed out.
// The fired sanity check guards the prediction: if the trap did not
// fire exactly as predicted the result is not cached (and the
// prediction machinery has a bug the equivalence suite will catch).
func (p *pruner) store(mk *MemoKey, out runOutcome) {
	if mk == nil || !out.fired || out.firedAt != mk.FireTick || out.outcome == OutcomeQuarantined {
		return
	}
	e := MemoEntry{
		Outcome: out.outcome,
		Detail:  out.detail,
		FiredAt: out.firedAt,
		Diffs:   out.diffs,
	}
	p.memo.put(*mk, e) // clones diffs
	if p.backend != nil {
		e.Diffs = cloneDiffs(e.Diffs)
		p.backend.PutMemo(*mk, e)
	}
}

// snapshotsEqual reports whether two snapshots capture identical
// dynamic state. The step accounting is compared only under a step
// budget: without one it cannot influence any outcome, and hostile
// targets charge data-dependent step counts that would otherwise
// forgo valid convergence prunes. Wall budgets are a non-deterministic
// backstop, excluded from outcomes by design (see sim.Snapshot).
func snapshotsEqual(a, b *sim.Snapshot, compareUsed bool) bool {
	if a.Now != b.Now || len(a.Signals) != len(b.Signals) || len(a.Hidden) != len(b.Hidden) {
		return false
	}
	if compareUsed && a.Used != b.Used {
		return false
	}
	for i := range a.Signals {
		if a.Signals[i] != b.Signals[i] {
			return false
		}
	}
	for i := range a.Hidden {
		if !reflect.DeepEqual(a.Hidden[i], b.Hidden[i]) {
			return false
		}
	}
	return true
}
