package campaign

import (
	"testing"

	"propane/internal/autobrake"
	"propane/internal/core"
	"propane/internal/sim"
)

func autobrakeConfig(t *testing.T) Config {
	t.Helper()
	cases, err := autobrake.Grid(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Custom:         autobrake.Target(autobrake.DefaultConfig()),
		TestCases:      cases,
		Times:          []sim.Millis{800, 2000},
		Bits:           []uint{2, 9, 14},
		HorizonMs:      3500,
		DirectWindowMs: 300,
	}
}

// TestCustomTargetCampaign runs the full pipeline against the second
// target system: the campaign engine, the permeability estimation and
// the core analyses are all target-agnostic.
func TestCustomTargetCampaign(t *testing.T) {
	cfg := autobrakeConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 9 input ports × 3 bits × 2 times × 2 cases.
	if got, want := res.Runs, 9*3*2*2; got != want {
		t.Errorf("Runs = %d, want %d", got, want)
	}
	if len(res.Pairs) != 14 {
		t.Errorf("pairs = %d, want 14", len(res.Pairs))
	}
	if res.Unfired != 0 {
		t.Errorf("Unfired = %d, want 0", res.Unfired)
	}

	// The `locked` output mirrors the arrestment system's `stopped`:
	// its persistence requirement makes it non-permeable to single
	// transients.
	for _, ps := range res.Pairs {
		if ps.OutputSignal == autobrake.SigLocked && ps.Estimate != 0 {
			t.Errorf("%v = %v, want 0 (persistence-latched output)", ps.Pair, ps.Estimate)
		}
	}
	// The valve driver is highly permeable, like PRES_A.
	pwm, err := res.PairBySignal(autobrake.ModPMod, autobrake.SigBrakeCmd, autobrake.SigPWM)
	if err != nil {
		t.Fatal(err)
	}
	if pwm.Estimate < 0.5 {
		t.Errorf("brake_cmd->PWM = %v, want high", pwm.Estimate)
	}
	// The slip computation propagates wheel-speed errors.
	slip, err := res.PairBySignal(autobrake.ModSlip, autobrake.SigWheelSpeed, autobrake.SigSlip)
	if err != nil {
		t.Fatal(err)
	}
	if slip.Estimate == 0 {
		t.Error("wheel_speed->slip never propagated")
	}

	// The core analyses run unchanged on the custom topology.
	tree, err := core.BacktrackTree(res.Matrix, autobrake.SigPWM)
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	if tree.Root.CountLeaves() == 0 {
		t.Error("empty backtrack tree")
	}
	adv, err := core.Advise(res.Matrix)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(adv.ERMModules) != 5 {
		t.Errorf("ERM candidates = %d, want 5", len(adv.ERMModules))
	}
}

func TestCustomTargetValidation(t *testing.T) {
	cfg := autobrakeConfig(t)
	cfg.Custom = &Target{Name: "broken"}
	if err := cfg.Validate(); err == nil {
		t.Error("custom target without constructors accepted")
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Run with broken custom target succeeded")
	}
}
