package campaign

// Equivalence suite for the checkpoint fast-forward path: for every
// target topology — including the adversarial one whose injections
// crash and hang the run — a campaign executed with checkpoints
// forced on must produce a Result bit-identical to the same campaign
// with checkpoints off (full replay from t=0). The suite runs under
// -race in CI, so it also stresses the shared snapshot cache.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// runKeyed executes the campaign and returns the Result together with
// every RunRecord keyed by (injection, case) — the per-run view the
// aggregate statistics are built from.
func runKeyed(t *testing.T, cfg Config) (*Result, map[string]RunRecord) {
	t.Helper()
	var mu sync.Mutex
	records := make(map[string]RunRecord)
	cfg.Observer = func(rec RunRecord) {
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%s#%d", rec.Injection.String(), rec.CaseIndex)
		if _, dup := records[key]; dup {
			t.Errorf("duplicate record for %s", key)
		}
		records[key] = rec
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, records
}

// assertEquivalent compares the full-replay baseline against the
// checkpointed run: every per-run record and every aggregate must
// match exactly.
func assertEquivalent(t *testing.T, base, ck *Result, baseRecs, ckRecs map[string]RunRecord) {
	t.Helper()
	if len(ckRecs) != len(baseRecs) {
		t.Fatalf("checkpointed run produced %d records, baseline %d", len(ckRecs), len(baseRecs))
	}
	for key, b := range baseRecs {
		c, ok := ckRecs[key]
		if !ok {
			t.Errorf("%s: missing from checkpointed run", key)
			continue
		}
		if b.Outcome != c.Outcome || b.Fired != c.Fired || b.FiredAt != c.FiredAt ||
			b.SystemFailure != c.SystemFailure || b.FailureAt != c.FailureAt ||
			b.Detail != c.Detail || b.Attempts != c.Attempts {
			t.Errorf("%s: record diverges:\nfull replay: %+v\ncheckpointed: %+v", key, b, c)
		}
		if !reflect.DeepEqual(b.Diffs, c.Diffs) {
			t.Errorf("%s: diffs diverge:\nfull replay: %v\ncheckpointed: %v", key, b.Diffs, c.Diffs)
		}
	}

	if base.Runs != ck.Runs || base.Unfired != ck.Unfired ||
		base.Crashes != ck.Crashes || base.Hangs != ck.Hangs ||
		len(base.Quarantined) != len(ck.Quarantined) {
		t.Errorf("totals diverge: runs %d/%d unfired %d/%d crashes %d/%d hangs %d/%d",
			base.Runs, ck.Runs, base.Unfired, ck.Unfired,
			base.Crashes, ck.Crashes, base.Hangs, ck.Hangs)
	}
	if len(base.Pairs) != len(ck.Pairs) {
		t.Fatalf("pair count diverges: %d vs %d", len(base.Pairs), len(ck.Pairs))
	}
	for i := range base.Pairs {
		b, c := base.Pairs[i], ck.Pairs[i]
		// Compare the exported statistics only: the unexported latency
		// accumulators depend on worker completion order, which the
		// checkpoint job reordering legitimately changes.
		if b.Pair != c.Pair || b.Injections != c.Injections || b.Errors != c.Errors ||
			b.Estimate != c.Estimate || b.CI != c.CI || b.MeanLatencyMs != c.MeanLatencyMs ||
			b.Transients != c.Transients || b.Permanents != c.Permanents ||
			b.Crashes != c.Crashes || b.Hangs != c.Hangs {
			t.Errorf("pair %v diverges:\nfull replay: %+v\ncheckpointed: %+v", b.Pair, b, c)
		}
	}
	if !reflect.DeepEqual(base.Locations, ck.Locations) {
		t.Errorf("location propagation diverges:\nfull replay: %+v\ncheckpointed: %+v",
			base.Locations, ck.Locations)
	}
}

// TestCheckpointEquivalence proves the tentpole contract on every
// target: fast-forwarding from a cached snapshot yields the same
// Result matrix, run for run, as replaying each injection from t=0.
func TestCheckpointEquivalence(t *testing.T) {
	configs := map[string]func(t *testing.T) Config{
		"arrestor": func(t *testing.T) Config { return tinyConfig() },
		"dual": func(t *testing.T) Config {
			cfg := tinyConfig()
			cfg.Dual = true
			return cfg
		},
		"autobrake": autobrakeConfig,
		// hostile covers the crash and hang outcomes: a snapshot taken
		// before the poison bit fires must still crash/hang identically.
		"hostile": hostileConfig,
		// reduced is the paper-shaped instance (full grid, 4 bits × 3
		// instants); skipped under -short to keep quick runs quick.
		"reduced": func(t *testing.T) Config {
			if testing.Short() {
				t.Skip("reduced equivalence skipped in -short mode")
			}
			return ReducedConfig()
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			off := mk(t)
			off.Checkpoints = CheckpointOff
			base, baseRecs := runKeyed(t, off)

			on := mk(t)
			on.Checkpoints = CheckpointForce
			ck, ckRecs := runKeyed(t, on)

			assertEquivalent(t, base, ck, baseRecs, ckRecs)
		})
	}
}

// TestCheckpointAutoFallsBackUnderInstrument: an Instrument hook may
// observe pre-injection state, so CheckpointAuto must silently take
// the full-replay path — and still produce the baseline Result.
func TestCheckpointAutoFallsBackUnderInstrument(t *testing.T) {
	attach := func(inst Instance, caseIdx int) (any, error) { return caseIdx, nil }

	off := tinyConfig()
	off.Checkpoints = CheckpointOff
	off.Instrument = attach
	base, baseRecs := runKeyed(t, off)

	auto := tinyConfig()
	auto.Checkpoints = CheckpointAuto
	auto.Instrument = attach
	ck, ckRecs := runKeyed(t, auto)

	assertEquivalent(t, base, ck, baseRecs, ckRecs)
	for key, rec := range ckRecs {
		if rec.Attachment != rec.CaseIndex {
			t.Errorf("%s: attachment %v, want case index %d", key, rec.Attachment, rec.CaseIndex)
		}
	}
}

// TestCheckpointSingleWorkerDeterminism pins Workers to 1 so both
// paths run fully sequentially: any divergence here is a checkpoint
// state bug, not a scheduling artifact.
func TestCheckpointSingleWorkerDeterminism(t *testing.T) {
	off := tinyConfig()
	off.Workers = 1
	off.Checkpoints = CheckpointOff
	base, baseRecs := runKeyed(t, off)

	on := tinyConfig()
	on.Workers = 1
	on.Checkpoints = CheckpointForce
	ck, ckRecs := runKeyed(t, on)

	assertEquivalent(t, base, ck, baseRecs, ckRecs)
}
