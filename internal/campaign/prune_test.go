package campaign

// Equivalence suite for the pruning/memoization path: for every
// target topology a campaign run with pruning forced on must produce
// a Result bit-identical to the same campaign with pruning off (every
// run fully executed). Runs under -race in CI alongside the
// checkpoint suite, stressing the shared memo cache.

import (
	"testing"

	"propane/internal/inject"
	"propane/internal/sim"
	"propane/internal/trace"
)

// modelsConfig guarantees work for every transient classification: at
// any fired (port, instant) one of the two StuckAt models is the
// identity on bit 3 (no-op prune) and the other corrupts the value to
// exactly what BitFlip{3} produces (a memo hit on the second of the
// pair in serial order — Workers is pinned to 1 for that guarantee).
func modelsConfig() Config {
	cfg := tinyConfig()
	cfg.Bits = nil
	cfg.Models = []inject.ErrorModel{
		inject.BitFlip{Bit: 3},
		inject.StuckAt{Bit: 3, One: false},
		inject.StuckAt{Bit: 3, One: true},
	}
	cfg.Workers = 1
	return cfg
}

// TestPruneEquivalence proves the tentpole contract on every target:
// pruned, memoized and converged runs yield the same Result matrix,
// run for run, as executing every injection in full.
func TestPruneEquivalence(t *testing.T) {
	configs := map[string]func(t *testing.T) Config{
		"arrestor": func(t *testing.T) Config { return tinyConfig() },
		"dual": func(t *testing.T) Config {
			cfg := tinyConfig()
			cfg.Dual = true
			return cfg
		},
		"autobrake": autobrakeConfig,
		// hostile covers crash and hang outcomes: a memoized crash must
		// synthesize the exact crash record of the executed one.
		"hostile": hostileConfig,
		// models guarantees no-op prunes and memo hits (see modelsConfig).
		"models": func(t *testing.T) Config { return modelsConfig() },
		// persistent exercises the window-value no-op rule.
		"persistent": func(t *testing.T) Config {
			cfg := tinyConfig()
			cfg.FaultDurationMs = 400
			return cfg
		},
		"reduced": func(t *testing.T) Config {
			if testing.Short() {
				t.Skip("reduced equivalence skipped in -short mode")
			}
			return ReducedConfig()
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			off := mk(t)
			off.Prune = PruneOff
			base, baseRecs := runKeyed(t, off)

			on := mk(t)
			on.Prune = PruneForce
			pr, prRecs := runKeyed(t, on)

			assertEquivalent(t, base, pr, baseRecs, prRecs)

			if base.Pruning.Total() != 0 {
				t.Errorf("PruneOff still pruned: %+v", base.Pruning)
			}
			// Every unfired record must have been predicted from the read
			// log — an unfired trap that slipped through to execution
			// means the predictions are incomplete.
			if pr.Pruning.Unfired != pr.Unfired {
				t.Errorf("pruned %d unfired runs, result counts %d unfired traps", pr.Pruning.Unfired, pr.Unfired)
			}
			if name == "models" {
				if pr.Pruning.NoOp == 0 {
					t.Errorf("models config produced no no-op prunes: %+v", pr.Pruning)
				}
				if pr.Pruning.Memoized == 0 {
					t.Errorf("models config produced no memo hits: %+v", pr.Pruning)
				}
			}
			// The per-record labels must agree with the aggregate counters.
			counts := PruneSignalCounts{}
			for _, rec := range prRecs {
				switch rec.Pruned {
				case PrunedNoOp:
					counts.NoOp++
				case PrunedUnfired:
					counts.Unfired++
				case PrunedMemoized:
					counts.Memoized++
				case PrunedConverged:
					counts.Converged++
				case "":
					counts.Executed++
				default:
					t.Errorf("unknown pruned label %q", rec.Pruned)
				}
			}
			got := PruneSignalCounts{
				NoOp: pr.Pruning.NoOp, Unfired: pr.Pruning.Unfired,
				Memoized: pr.Pruning.Memoized, Converged: pr.Pruning.Converged,
				Executed: pr.Pruning.Executed,
			}
			if counts != got {
				t.Errorf("record labels %+v disagree with Result.Pruning %+v", counts, got)
			}
		})
	}
}

// TestPruneAutoFallsBackUnderInstrument: a pruned run never builds a
// target instance, so an Instrument hook would be skipped; PruneAuto
// must execute everything for instrumented campaigns — and still
// produce the baseline Result with every attachment present.
func TestPruneAutoFallsBackUnderInstrument(t *testing.T) {
	attach := func(inst Instance, caseIdx int) (any, error) { return caseIdx, nil }

	off := tinyConfig()
	off.Prune = PruneOff
	off.Instrument = attach
	base, baseRecs := runKeyed(t, off)

	auto := tinyConfig()
	auto.Prune = PruneAuto
	auto.Instrument = attach
	pr, prRecs := runKeyed(t, auto)

	assertEquivalent(t, base, pr, baseRecs, prRecs)
	if pr.Pruning.Total() != 0 {
		t.Errorf("PruneAuto pruned under an Instrument hook: %+v", pr.Pruning)
	}
	for key, rec := range prRecs {
		if rec.Attachment != rec.CaseIndex {
			t.Errorf("%s: attachment %v, want case index %d", key, rec.Attachment, rec.CaseIndex)
		}
	}
}

// TestMemoCacheEviction pins the cache's LRU contract: the bound
// holds, eviction removes the least recently used key (gets refresh
// recency), and served diff maps are never aliased to stored ones.
func TestMemoCacheEviction(t *testing.T) {
	mc := newMemoCache(2)
	key := func(i int) MemoKey { return MemoKey{Case: i, Module: "m", Signal: "s"} }
	entry := func(i int) MemoEntry {
		return MemoEntry{
			Outcome: OutcomeDeviation,
			FiredAt: 10,
			Diffs:   map[string]trace.Diff{"sig": {Signal: "sig", First: sim.Millis(i), Last: 5}},
		}
	}

	mc.put(key(1), entry(1))
	mc.put(key(2), entry(2))
	if _, ok := mc.get(key(1)); !ok { // refresh 1 → 2 becomes LRU
		t.Fatal("key 1 missing before eviction")
	}
	mc.put(key(3), entry(3))
	if mc.len() != 2 {
		t.Fatalf("cache holds %d entries, bound is 2", mc.len())
	}
	if _, ok := mc.get(key(2)); ok {
		t.Error("key 2 survived eviction despite being least recently used")
	}
	if _, ok := mc.get(key(1)); !ok {
		t.Error("key 1 evicted despite a refreshing get")
	}
	if _, ok := mc.get(key(3)); !ok {
		t.Error("key 3 missing right after put")
	}

	// Clone-on-serve: corrupting a served map must not reach the cache.
	served, _ := mc.get(key(3))
	served.Diffs["sig"] = trace.Diff{Signal: "sig", First: -99}
	again, _ := mc.get(key(3))
	if again.Diffs["sig"].First != 3 {
		t.Errorf("cache entry corrupted through a served map: %+v", again.Diffs["sig"])
	}

	// Storing an existing key updates in place without growing.
	mc.put(key(3), entry(4))
	if mc.len() != 2 {
		t.Fatalf("update grew the cache to %d entries", mc.len())
	}
	if e, _ := mc.get(key(3)); e.Diffs["sig"].First != 4 {
		t.Errorf("update did not replace the entry: %+v", e.Diffs["sig"])
	}
}
