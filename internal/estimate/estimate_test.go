package estimate

import (
	"testing"

	"propane/internal/arrestor"
	"propane/internal/core"
)

func TestPredictTotalOverPaperSystem(t *testing.T) {
	sys := arrestor.Topology()
	p := Predict(sys, Options{})
	if got, want := len(p.Pairs()), sys.TotalPairs(); got != want {
		t.Fatalf("prediction covers %d pairs, system has %d", got, want)
	}
	for _, pp := range p.Pairs() {
		if pp.Predicted < 0 || pp.Predicted > 1 {
			t.Errorf("%v predicted %v outside [0,1]", pp.Pair, pp.Predicted)
		}
		if pp.ImpactBound < 0 || pp.ImpactBound > pp.Predicted {
			t.Errorf("%v impact bound %v outside [0, predicted=%v]", pp.Pair, pp.ImpactBound, pp.Predicted)
		}
		got, ok := p.Pair(pp.Pair)
		if !ok || got != pp {
			t.Errorf("Pair(%v) does not round-trip", pp.Pair)
		}
	}
}

func TestPredictSystemOutputImpact(t *testing.T) {
	sys := arrestor.Topology()
	p := Predict(sys, Options{})
	for _, out := range sys.SystemOutputs() {
		if got := p.SignalImpact(out); got != 1 {
			t.Errorf("system output %s has impact %v, want 1", out, got)
		}
	}
	if got := p.SignalImpact("no-such-signal"); got != 0 {
		t.Errorf("unknown signal has impact %v, want 0", got)
	}
}

// TestPredictFanInMasking pins the structural prior: with no activity
// or library priors, a pair in a wide module must predict no more
// than the same pair in a narrow one — each extra input halves the
// chance this one dominates the output.
func TestPredictFanInMasking(t *testing.T) {
	sys := arrestor.Topology()
	p := Predict(sys, Options{})
	for _, mod := range sys.Modules() {
		pp, ok := p.Pair(core.Pair{Module: mod.Name, In: 1, Out: 1})
		if !ok {
			t.Fatalf("no prediction for %s (1,1)", mod.Name)
		}
		want := 1.0
		for i := 1; i < mod.NumInputs(); i++ {
			want /= 2
		}
		if pp.Predicted != want {
			t.Errorf("%s (%d inputs): predicted %v, want structural prior %v",
				mod.Name, mod.NumInputs(), pp.Predicted, want)
		}
	}
}

// TestPredictActivityScaling: a dead output signal scales its pairs'
// predictions down but never to zero (the activity floor), and a
// fully active signal leaves the structural prior untouched.
func TestPredictActivityScaling(t *testing.T) {
	sys := arrestor.Topology()
	base := Predict(sys, Options{})
	pair := base.Pairs()[0]

	dead := Predict(sys, Options{Activity: map[string]float64{pair.OutputSignal: 0}})
	deadPP, _ := dead.Pair(pair.Pair)
	if deadPP.Predicted >= pair.Predicted {
		t.Errorf("dead output did not scale prediction down: %v >= %v", deadPP.Predicted, pair.Predicted)
	}
	if deadPP.Predicted <= 0 {
		t.Errorf("activity floor violated: dead output zeroed the prediction")
	}

	busy := Predict(sys, Options{Activity: map[string]float64{pair.OutputSignal: 1}})
	busyPP, _ := busy.Pair(pair.Pair)
	if busyPP.Predicted != pair.Predicted {
		t.Errorf("fully active output changed the prediction: %v != %v", busyPP.Predicted, pair.Predicted)
	}
}

func TestPredictModuleScoresAndMatrix(t *testing.T) {
	sys := arrestor.Topology()
	p := Predict(sys, Options{})
	m, err := p.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != sys.TotalPairs() {
		t.Fatalf("prediction matrix has %d pairs, want %d", m.Len(), sys.TotalPairs())
	}
	scores, err := p.ModuleScores()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sys.ModuleNames() {
		s, ok := scores[name]
		if !ok {
			t.Errorf("no score for module %s", name)
		}
		if s < 0 || s > 1 {
			t.Errorf("module %s score %v outside [0,1]", name, s)
		}
	}
}

func TestKindPriors(t *testing.T) {
	for _, kind := range Kinds() {
		v, ok := KindPrior(kind)
		if !ok {
			t.Fatalf("Kinds lists %q but KindPrior does not know it", kind)
		}
		if v < 0 || v > 1 {
			t.Errorf("kind %q prior %v outside [0,1]", kind, v)
		}
	}
	if _, ok := KindPrior("no-such-kind"); ok {
		t.Error("KindPrior claims to know an unknown kind")
	}
}
