// Package estimate predicts error permeability analytically, before a
// single fault is injected. It is the "predict first, then sample"
// half of the adaptive campaign (internal/campaign, AdaptiveMode):
// cheap structural predictions over the module topology — optionally
// sharpened with golden-run signal activity and block-library priors —
// give every (module, input, output) pair a predicted permeability and
// an impact bound, which the sequential sampling scheduler uses to
// importance-order its work and which the report cross-validates
// against the measured, CI-bounded estimates.
//
// The estimator follows the propagation-probability style of analysis
// (cf. Asadi & Tahoori's SER estimation and Bönninghoff & Schirmeier's
// maximum-error-impact bounds, PAPERS.md): per-module propagation
// probabilities are assigned from local structure, then composed along
// the topology into end-to-end impact by a monotone fixpoint. The
// predictions are heuristics — the campaign treats them strictly as
// priors for ordering and reporting, never as grounds to skip
// measurement of a live pair.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"propane/internal/core"
	"propane/internal/model"
)

// Options tunes a prediction.
type Options struct {
	// Activity supplies, per signal name, the fraction of golden-run
	// ticks on which the signal's value changed (in [0,1]). A signal
	// that barely moves masks incoming errors (its producer mostly
	// latches state), so output activity scales the structural prior
	// down. When nil, the structural prior is used unscaled.
	Activity map[string]float64
	// Priors overrides the per-module base permeability prior, keyed
	// by module name — e.g. derived from the synth block library via
	// KindPrior for generated targets. Values must lie in [0,1].
	Priors map[string]float64
}

// PairPrediction is the analytical forecast for one input/output pair.
type PairPrediction struct {
	Pair         core.Pair
	InputSignal  string
	OutputSignal string
	// Predicted is the forecast permeability P^M_{i,k} in [0,1].
	Predicted float64
	// ImpactBound is the forecast probability that an error injected
	// on this pair's input reaches any system output via this output —
	// Predicted composed with the downstream impact of the output
	// signal. Pairs whose bound is ~0 sit on dead-end paths.
	ImpactBound float64
}

// Prediction holds the analytical forecast for a whole system.
type Prediction struct {
	sys    *model.System
	pairs  []PairPrediction
	byPair map[core.Pair]PairPrediction
	impact map[string]float64
}

// Predict computes the analytical permeability forecast for a system.
// It never fails: the prediction is total over the topology's pairs,
// in the same order core.Matrix.Pairs reports them.
func Predict(sys *model.System, opts Options) *Prediction {
	p := &Prediction{
		sys:    sys,
		byPair: make(map[core.Pair]PairPrediction),
		impact: make(map[string]float64),
	}
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			for _, out := range mod.Outputs {
				pp := PairPrediction{
					Pair:         core.Pair{Module: mod.Name, In: in.Index, Out: out.Index},
					InputSignal:  in.Signal,
					OutputSignal: out.Signal,
					Predicted:    pairPrior(mod, out.Signal, opts),
				}
				p.pairs = append(p.pairs, pp)
				p.byPair[pp.Pair] = pp
			}
		}
	}
	p.propagateImpact()
	for i := range p.pairs {
		pp := &p.pairs[i]
		pp.ImpactBound = pp.Predicted * p.impact[pp.OutputSignal]
		p.byPair[pp.Pair] = *pp
	}
	return p
}

// pairPrior assigns the local (single-module) permeability prior for a
// pair: a fan-in masking term — each additional input halves the
// chance that this particular input dominates the output — scaled by
// the output signal's golden-run activity when available. A latched,
// rarely recomputed output re-emits stale state most ticks, masking
// corrupted inputs; a busy output recomputes from its inputs and lets
// errors through.
func pairPrior(mod *model.Module, outSignal string, opts Options) float64 {
	prior, ok := opts.Priors[mod.Name]
	if !ok {
		prior = 1 / math.Pow(2, float64(mod.NumInputs()-1))
	}
	if opts.Activity != nil {
		if act, ok := opts.Activity[outSignal]; ok {
			// Floor the activity factor: even a static-looking output
			// can deviate once corrupted, so activity sharpens the
			// ordering without zeroing any prediction.
			prior *= activityFloor + (1-activityFloor)*clamp01(act)
		}
	}
	return clamp01(prior)
}

// activityFloor bounds how far golden-run inactivity may scale a
// structural prior down (see pairPrior).
const activityFloor = 0.1

// propagateImpact computes, per signal, the predicted probability that
// an error on the signal reaches any system output, by monotone
// fixpoint over the topology: system outputs have impact 1; any other
// signal's error survives if at least one consuming pair lets it
// through to an output signal whose own error survives. Starting from
// zero and iterating keeps every intermediate value a lower bound;
// the iteration count covers any acyclic depth and converges
// geometrically on the feedback loops the paper's targets contain.
func (p *Prediction) propagateImpact() {
	signals := p.sys.Signals()
	for _, s := range signals {
		if p.sys.IsSystemOutput(s) {
			p.impact[s] = 1
		}
	}
	iterations := 2*len(p.sys.Modules()) + 8
	for it := 0; it < iterations; it++ {
		for _, s := range signals {
			if p.sys.IsSystemOutput(s) {
				continue
			}
			miss := 1.0
			for _, rx := range p.sys.Receivers(s) {
				mod, err := p.sys.Module(rx.Module)
				if err != nil {
					continue
				}
				through := 1.0
				for _, out := range mod.Outputs {
					pp := p.byPair[core.Pair{Module: mod.Name, In: rx.Index, Out: out.Index}]
					through *= 1 - pp.Predicted*p.impact[out.Signal]
				}
				miss *= through
			}
			p.impact[s] = 1 - miss
		}
	}
}

// Pairs returns every pair's prediction in topology order (module
// insertion order, then input, then output index) — the same order
// core.Matrix.Pairs uses, so reports can zip the two.
func (p *Prediction) Pairs() []PairPrediction {
	out := make([]PairPrediction, len(p.pairs))
	copy(out, p.pairs)
	return out
}

// Pair returns the prediction for one pair.
func (p *Prediction) Pair(pair core.Pair) (PairPrediction, bool) {
	pp, ok := p.byPair[pair]
	return pp, ok
}

// SignalImpact returns the predicted probability that an error on the
// named signal reaches any system output (1 for system outputs, 0 for
// signals the prediction does not know).
func (p *Prediction) SignalImpact(signal string) float64 {
	return p.impact[signal]
}

// LocationScore returns the importance prior of one injection location
// (module input): the largest predicted permeability over the
// location's pairs, weighted by downstream impact. The sequential
// scheduler multiplies it with remaining uncertainty to pick which
// location's samples to run next; it has no effect on which samples
// are run in total.
func (p *Prediction) LocationScore(module, inSignal string) float64 {
	mod, err := p.sys.Module(module)
	if err != nil {
		return 0
	}
	in := mod.InputIndex(inSignal)
	if in == 0 {
		return 0
	}
	score := 0.0
	for _, out := range mod.Outputs {
		pp := p.byPair[core.Pair{Module: module, In: in, Out: out.Index}]
		if v := math.Max(pp.Predicted, pp.ImpactBound); v > score {
			score = v
		}
	}
	return score
}

// Matrix renders the predictions as a core permeability matrix, so the
// predicted module measures (Table 2 style: relative permeability per
// module) can be computed with the exact code that processes measured
// matrices, and orderings can be compared.
func (p *Prediction) Matrix() (*core.Matrix, error) {
	m := core.NewMatrix(p.sys)
	for _, pp := range p.pairs {
		if err := m.Set(pp.Pair.Module, pp.Pair.In, pp.Pair.Out, pp.Predicted); err != nil {
			return nil, fmt.Errorf("estimate: %w", err)
		}
	}
	return m, nil
}

// ModuleScores returns the predicted relative permeability P^M per
// module — the quantity whose measured ordering is the paper's Table 2
// headline. Comparing the predicted against the measured ordering
// (stats.KendallTau) is the cross-validation the report prints.
func (p *Prediction) ModuleScores() (map[string]float64, error) {
	m, err := p.Matrix()
	if err != nil {
		return nil, err
	}
	scores := make(map[string]float64)
	for _, name := range p.sys.ModuleNames() {
		rel, err := m.RelativePermeability(name)
		if err != nil {
			return nil, err
		}
		scores[name] = rel
	}
	return scores, nil
}

// kindPriors is the block-library calibration table: per transfer
// function, the base probability that a corrupted input read surfaces
// on an output. Pure arithmetic blocks transmit nearly everything;
// saturating, latching and voting blocks mask. Values are coarse by
// design — they feed orderings, not estimates.
var kindPriors = map[string]float64{
	"passthrough":    1.0,
	"feed":           1.0,
	"gain":           0.95,
	"offset":         0.95,
	"sum":            0.9,
	"integrate":      0.9,
	"delay":          0.9,
	"lookup":         0.7,
	"pulse_counter":  0.6,
	"pi_regulator":   0.6,
	"slew_limiter":   0.5,
	"saturate":       0.5,
	"checkpoint_law": 0.4,
	"median3":        0.3,
	"clock":          0.1,
	"mine":           0.9,
	"tarpit":         0.9,
}

// KindPrior returns the block-library permeability prior for a
// transfer-function kind (see internal/synth's block library), and
// whether the kind is known. Callers building Options.Priors for
// generated targets map each module's block kind through this table.
func KindPrior(kind string) (float64, bool) {
	v, ok := kindPriors[kind]
	return v, ok
}

// Kinds returns the calibrated block kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(kindPriors))
	for k := range kindPriors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
