// Package profiling wires the runtime/pprof CPU and heap profilers
// into the command-line tools, so campaign hot spots can be captured
// with the standard `go tool pprof` workflow (-cpuprofile /
// -memprofile) instead of editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges
// a heap profile to be written to memPath (when non-empty). The
// returned stop function flushes both profiles; call it exactly once
// after the measured work. Empty paths make Start and stop no-ops, so
// callers can pass flag values through unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
