package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"propane/internal/campaign"
	"propane/internal/report"
)

func TestRetryIORecoversTransientFailure(t *testing.T) {
	var slept []time.Duration
	orig := ioSleep
	ioSleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { ioSleep = orig }()

	calls := 0
	err := retryIO(3, nil, "append", func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retryIO: %v", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	// Full jitter: each delay is drawn from [0, base<<attempt].
	if len(slept) != 2 || slept[0] < 0 || slept[0] > retryBaseDelay ||
		slept[1] < 0 || slept[1] > 2*retryBaseDelay {
		t.Errorf("backoff %v, want two draws within [0,%v] and [0,%v]",
			slept, retryBaseDelay, 2*retryBaseDelay)
	}
}

func TestRetryIOGivesUpAndCaps(t *testing.T) {
	var slept []time.Duration
	orig := ioSleep
	ioSleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { ioSleep = orig }()

	permanent := errors.New("disk on fire")
	err := retryIO(8, nil, "metrics write", func() error { return permanent })
	if !errors.Is(err, permanent) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
	if !strings.Contains(err.Error(), "after 9 attempts") {
		t.Errorf("error %q does not report the attempt count", err)
	}
	if len(slept) != 8 {
		t.Fatalf("slept %d times, want 8", len(slept))
	}
	ceiling := retryBaseDelay
	for i, d := range slept {
		if d < 0 || d > ceiling {
			t.Errorf("backoff %d drew %v, want within [0,%v]", i, d, ceiling)
		}
		if ceiling *= 2; ceiling > retryMaxDelay {
			ceiling = retryMaxDelay
		}
	}

	// Negative MaxRetries disables retrying entirely.
	calls := 0
	opts := Options{MaxRetries: -1}
	if err := retryIO(opts.maxRetries(), nil, "x", func() error { calls++; return permanent }); err == nil {
		t.Error("disabled retries still succeeded")
	}
	if calls != 1 {
		t.Errorf("op ran %d times with retries disabled, want 1", calls)
	}
}

// rewriteAsV1 rewrites a journal in the pre-supervision (version 1)
// schema: header version 1, no outcome/detail/attempts fields — the
// exact bytes a PR-1 binary would have produced for a benign target.
func rewriteAsV1(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for i, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("journal line %d: %v", i+1, err)
		}
		if obj["type"] == "header" {
			obj["version"] = 1
		}
		delete(obj, "outcome")
		delete(obj, "detail")
		delete(obj, "attempts")
		enc, err := json.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalV1Compat is the forward-compatibility guarantee: a
// journal written by the pre-supervision schema (version 1, no
// outcome fields) loads, resumes and converges to the bit-identical
// matrix under the current binary.
func TestJournalV1Compat(t *testing.T) {
	baseDir := t.TempDir()
	base, err := RunInstance("reduced", TierQuick, Options{Dir: baseDir})
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix, wantRuns, wantUnfired := fingerprintResult(t, base)

	journal := filepath.Join(baseDir, "journal.jsonl")
	rewriteAsV1(t, journal)
	hdr, recs, _, err := loadJournal(journal)
	if err != nil {
		t.Fatalf("loading v1 journal: %v", err)
	}
	if hdr.Version != 1 || len(recs) != wantRuns {
		t.Fatalf("v1 journal: version %d with %d records, want 1 with %d", hdr.Version, len(recs), wantRuns)
	}
	for _, r := range recs {
		if r.Outcome != "" || r.Detail != "" || r.Attempts != 0 {
			t.Fatal("v1 rewrite left supervision fields behind")
		}
	}

	// Truncate to a mid-campaign kill and resume under the v2 binary.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the finished artifacts so the resume provably rebuilds them.
	for _, name := range []string{"metrics.json", "report.md", "failures.md"} {
		if err := os.Remove(filepath.Join(baseDir, name)); err != nil {
			t.Fatal(err)
		}
	}
	rr, err := RunInstance("reduced", TierQuick, Options{Dir: baseDir, Resume: true})
	if err != nil {
		t.Fatalf("resuming v1 journal: %v", err)
	}
	matrix, runs, unfired := fingerprintResult(t, rr)
	if matrix != wantMatrix || runs != wantRuns || unfired != wantUnfired {
		t.Errorf("v1 resume diverged: runs/unfired %d/%d want %d/%d, matrix equal=%v",
			runs, unfired, wantRuns, wantUnfired, matrix == wantMatrix)
	}
	if rr.Metrics.ReplayedRuns == 0 || rr.Metrics.ExecutedRuns == 0 {
		t.Errorf("v1 resume replayed %d / executed %d, want both non-zero",
			rr.Metrics.ReplayedRuns, rr.Metrics.ExecutedRuns)
	}
}

func TestJournalRejectsFutureVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	hdr := `{"type":"header","version":99,"config_digest":"x"}` + "\n"
	if err := os.WriteFile(path, []byte(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadJournal(path); err == nil {
		t.Error("loadJournal accepted a future journal version")
	}
}

// TestHostileInstanceKillAndResume is the acceptance scenario: a
// campaign over a target with an always-panicking module and an
// infinite-looping module completes unattended with non-zero crash
// and hang counts, and a mid-flight kill resumes to the identical
// report.
func TestHostileInstanceKillAndResume(t *testing.T) {
	baseDir := t.TempDir()
	base, err := RunInstance("hostile", TierQuick, Options{Dir: baseDir})
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Crashes == 0 || base.Result.Hangs == 0 {
		t.Fatalf("hostile campaign saw %d crashes / %d hangs, want both non-zero",
			base.Result.Crashes, base.Result.Hangs)
	}
	if base.Metrics.Crashes != base.Result.Crashes || base.Metrics.Hangs != base.Result.Hangs {
		t.Errorf("metrics crashes/hangs %d/%d disagree with result %d/%d",
			base.Metrics.Crashes, base.Metrics.Hangs, base.Result.Crashes, base.Result.Hangs)
	}
	failuresMD, err := os.ReadFile(filepath.Join(baseDir, "failures.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crash", "hang", "mine tripped"} {
		if !strings.Contains(string(failuresMD), want) {
			t.Errorf("failures.md misses %q", want)
		}
	}
	reportMD, err := os.ReadFile(filepath.Join(baseDir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reportMD), "Supervised failure modes") {
		t.Error("report.md misses the supervised-failure summary")
	}

	// The journal must carry the outcome taxonomy.
	_, recs, _, err := loadJournal(filepath.Join(baseDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	byOutcome := map[string]int{}
	for _, r := range recs {
		byOutcome[r.Outcome]++
	}
	if byOutcome["crash"] != base.Result.Crashes || byOutcome["hang"] != base.Result.Hangs {
		t.Errorf("journaled outcomes %v disagree with result (%d crashes, %d hangs)",
			byOutcome, base.Result.Crashes, base.Result.Hangs)
	}
	if byOutcome[""] != 0 {
		t.Errorf("%d journal records lack an outcome", byOutcome[""])
	}

	wantMatrix, wantRuns, _ := fingerprintResult(t, base)
	pristine, err := os.ReadFile(filepath.Join(baseDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{len(pristine) / 3, len(pristine) - 5} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), pristine[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rr, err := RunInstance("hostile", TierQuick, Options{Dir: dir, Resume: true})
		if err != nil {
			t.Fatalf("resume after truncation at %d: %v", off, err)
		}
		matrix, runs, _ := fingerprintResult(t, rr)
		if matrix != wantMatrix || runs != wantRuns {
			t.Errorf("truncation at %d: resumed campaign diverged (runs %d want %d, matrix equal=%v)",
				off, runs, wantRuns, matrix == wantMatrix)
		}
		if rr.Result.Crashes != base.Result.Crashes || rr.Result.Hangs != base.Result.Hangs {
			t.Errorf("truncation at %d: crash/hang counts %d/%d, want %d/%d",
				off, rr.Result.Crashes, rr.Result.Hangs, base.Result.Crashes, base.Result.Hangs)
		}
	}
}

// TestQuarantineFlowsThroughArtifacts drives the full poison-job
// path at the orchestration layer: a worker fault outside the guarded
// target execution retries under the default policy, quarantines, is
// journaled (so resume never re-executes it), surfaces in failures.md
// and the report, and stays out of every denominator.
func TestQuarantineFlowsThroughArtifacts(t *testing.T) {
	def, err := Lookup("hostile")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	cfg.Instrument = func(inst campaign.Instance, caseIdx int) (any, error) {
		if caseIdx == 1 {
			panic("instrument corrupted state")
		}
		return nil, nil
	}

	dir := t.TempDir()
	rr, err := Run(cfg, Options{Name: "hostile", Tier: TierQuick, Dir: dir, QuarantineAfter: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rr.Result.Quarantined) == 0 {
		t.Fatal("no jobs quarantined")
	}
	for _, q := range rr.Result.Quarantined {
		if q.Attempts != 2 {
			t.Errorf("job %v quarantined after %d attempts, want 2", q.Injection, q.Attempts)
		}
	}
	if rr.Metrics.Quarantined != len(rr.Result.Quarantined) {
		t.Errorf("metrics quarantined %d != result %d", rr.Metrics.Quarantined, len(rr.Result.Quarantined))
	}
	failuresMD, err := os.ReadFile(filepath.Join(dir, "failures.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(failuresMD), "quarantined") {
		t.Error("failures.md misses the quarantined class")
	}
	reportMD, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reportMD), "Quarantined jobs") {
		t.Error("report.md misses the quarantined-jobs section")
	}

	// Quarantined jobs are settled in the journal: a resume replays
	// them and executes nothing.
	rr2, err := Run(cfg, Options{Name: "hostile", Tier: TierQuick, Dir: dir, Resume: true, QuarantineAfter: 2})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rr2.Metrics.ExecutedRuns != 0 {
		t.Errorf("resume re-executed %d runs (quarantined jobs not settled)", rr2.Metrics.ExecutedRuns)
	}
	if len(rr2.Result.Quarantined) != len(rr.Result.Quarantined) {
		t.Errorf("resume lost quarantined jobs: %d, want %d",
			len(rr2.Result.Quarantined), len(rr.Result.Quarantined))
	}
	if m1, m2 := report.MatrixCSV(rr.Result.Matrix), report.MatrixCSV(rr2.Result.Matrix); m1 != m2 {
		t.Error("resumed matrix differs despite identical journal")
	}
}

// TestQuarantineDisabledAborts pins the opt-out: QuarantineAfter < 0
// restores the fail-fast contract.
func TestQuarantineDisabledAborts(t *testing.T) {
	def, err := Lookup("hostile")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Instrument = func(inst campaign.Instance, caseIdx int) (any, error) {
		panic("instrument corrupted state")
	}
	_, err = Run(cfg, Options{Name: "hostile", Tier: TierQuick, Dir: t.TempDir(), QuarantineAfter: -1})
	if err == nil || !strings.Contains(err.Error(), "worker panic") {
		t.Errorf("Run with quarantine disabled: err = %v, want a worker panic abort", err)
	}
}

// TestRunBudgetStepsDigested pins the digest contract: the step
// budget changes run outcomes, so it must change the config digest;
// the wall backstop must not.
func TestRunBudgetStepsDigested(t *testing.T) {
	def, err := Lookup("reduced")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	s0, err := newSnapshot("reduced", TierQuick, cfg, len(plan), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Budget.Steps = 1 << 20
	s1, err := newSnapshot("reduced", TierQuick, cfg, len(plan), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Digest == s1.Digest {
		t.Error("step budget not part of the config digest")
	}
	cfg.Budget.Wall = time.Minute
	s2, err := newSnapshot("reduced", TierQuick, cfg, len(plan), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest != s2.Digest {
		t.Error("wall backstop leaked into the config digest")
	}
}
