package runner

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"propane/internal/campaign"
	"propane/internal/report"
)

// assembleFixture runs reduced/quick once and returns its directory,
// config and result — the substrate for the Assemble-hardening tests.
func assembleFixture(t *testing.T) (dir string, rr *RunResult) {
	t.Helper()
	dir = t.TempDir()
	rr, err := RunInstance("reduced", TierQuick, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return dir, rr
}

func reducedQuickConfig(t *testing.T) campaign.Config {
	t.Helper()
	def, err := Lookup("reduced")
	if err != nil {
		t.Fatal(err)
	}
	c, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAssembleDigestMismatch pins the sentinel: assembling journals
// under a drifted configuration (here a different run budget, which
// is part of the digest) fails with ErrDigestMismatch, not a generic
// error string.
func TestAssembleDigestMismatch(t *testing.T) {
	dir, _ := assembleFixture(t)
	cfg := reducedQuickConfig(t)
	_, err := Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir, RunBudgetSteps: 123456789})
	if err == nil {
		t.Fatal("Assemble accepted journals written under a different config digest")
	}
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want errors.Is(err, ErrDigestMismatch)", err)
	}
}

// TestAssembleIdempotentOverlap pins the distributed-overlap
// contract: a duplicate journal whose records are content-identical
// assembles cleanly (a reassigned lease may deliver the same work
// twice), while a duplicate that disagrees about a record's content
// fails with ErrConflictingRecords.
func TestAssembleIdempotentOverlap(t *testing.T) {
	dir, direct := assembleFixture(t)
	cfg := reducedQuickConfig(t)
	src := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	// Exact copy: every record arrives twice with identical content.
	dup := filepath.Join(dir, "journal-dup.jsonl")
	if err := os.WriteFile(dup, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir})
	if err != nil {
		t.Fatalf("Assemble rejected an idempotent duplicate journal: %v", err)
	}
	if m1, m2 := report.MatrixCSV(direct.Result.Matrix), report.MatrixCSV(rr.Result.Matrix); m1 != m2 {
		t.Error("matrix changed after assembling with a duplicate journal")
	}

	// Conflicting copy: flip one record's fired flag. The journals now
	// disagree about a simulation outcome, and merging must refuse.
	lines := bytes.Split(data, []byte("\n"))
	mutated := false
	for i, line := range lines {
		if !bytes.Contains(line, []byte(`"type":"run"`)) {
			continue
		}
		switch {
		case bytes.Contains(line, []byte(`"fired":true`)):
			lines[i] = bytes.Replace(line, []byte(`"fired":true`), []byte(`"fired":false`), 1)
		case bytes.Contains(line, []byte(`"fired":false`)):
			lines[i] = bytes.Replace(line, []byte(`"fired":false`), []byte(`"fired":true`), 1)
		default:
			continue
		}
		mutated = true
		break
	}
	if !mutated {
		t.Fatal("no run record found to mutate")
	}
	if err := os.WriteFile(dup, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir})
	if err == nil {
		t.Fatal("Assemble merged journals that disagree about a record's content")
	}
	if !errors.Is(err, ErrConflictingRecords) {
		t.Fatalf("err = %v, want errors.Is(err, ErrConflictingRecords)", err)
	}
}
