package runner

import (
	"context"
	"fmt"
	"time"

	"propane/internal/backoff"
)

// Transient-failure supervision for the runner's own I/O: a campaign
// that has been executing for hours must not die because one journal
// append or artifact write hit a transient filesystem error (NFS
// hiccup, disk-full window, antivirus lock). Such operations retry
// under the shared backoff.Policy — capped exponential with full
// jitter, so many workers limping through the same flaky filesystem
// don't hammer it in lockstep — before the failure is considered
// fatal.

const (
	// retryBaseDelay is the ceiling of the first backoff draw; each
	// retry doubles it up to retryMaxDelay.
	retryBaseDelay = 50 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

// ioSleep is the backoff sleeper, a variable so tests can run the
// retry loop without real delays.
var ioSleep = time.Sleep

// retryIO runs op, retrying a failure up to maxRetries times with
// full-jitter capped exponential backoff. Each retry is logged, so a
// campaign limping through a flaky filesystem leaves evidence. The
// final error wraps the last failure.
func retryIO(maxRetries int, logf func(format string, args ...any), what string, op func() error) error {
	pol := backoff.Policy{
		Base:     retryBaseDelay,
		Cap:      retryMaxDelay,
		Attempts: maxRetries + 1,
		Sleep: func(_ context.Context, d time.Duration) error {
			ioSleep(d)
			return nil
		},
	}
	if logf != nil {
		pol.OnRetry = func(attempt int, delay time.Duration, err error) {
			logf("runner: %s failed (attempt %d/%d), retrying in %v: %v",
				what, attempt+1, maxRetries, delay, err)
		}
	}
	if err := pol.Do(context.Background(), nil, op); err != nil {
		return fmt.Errorf("runner: %s failed after %d attempts: %w", what, maxRetries+1, err)
	}
	return nil
}
