package runner

import (
	"fmt"
	"time"
)

// Transient-failure supervision for the runner's own I/O: a campaign
// that has been executing for hours must not die because one journal
// append or artifact write hit a transient filesystem error (NFS
// hiccup, disk-full window, antivirus lock). Such operations retry
// with capped exponential backoff before the failure is considered
// fatal.

const (
	// retryBaseDelay is the first backoff step; each retry doubles it
	// up to retryMaxDelay.
	retryBaseDelay = 50 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

// ioSleep is the backoff sleeper, a variable so tests can run the
// retry loop without real delays.
var ioSleep = time.Sleep

// retryIO runs op, retrying a failure up to maxRetries times with
// capped exponential backoff. Each retry is logged, so a campaign
// limping through a flaky filesystem leaves evidence. The final error
// wraps the last failure.
func retryIO(maxRetries int, logf func(format string, args ...any), what string, op func() error) error {
	delay := retryBaseDelay
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= maxRetries {
			break
		}
		if logf != nil {
			logf("runner: %s failed (attempt %d/%d), retrying in %v: %v",
				what, attempt+1, maxRetries, delay, err)
		}
		ioSleep(delay)
		delay *= 2
		if delay > retryMaxDelay {
			delay = retryMaxDelay
		}
	}
	return fmt.Errorf("runner: %s failed after %d attempts: %w", what, maxRetries+1, err)
}
