package runner

import (
	"os"
	"path/filepath"
	"testing"

	"propane/internal/report"
)

// fingerprintResult reduces a RunResult to the strings the acceptance
// criterion cares about: the permeability matrix (bit-identical CSV)
// and the raw run counts.
func fingerprintResult(t *testing.T, rr *RunResult) (matrix string, runs, unfired int) {
	t.Helper()
	return report.MatrixCSV(rr.Result.Matrix), rr.Result.Runs, rr.Result.Unfired
}

// TestKillAndResume is the subsystem's core guarantee: a campaign
// killed mid-journal resumes from the checkpoint and converges to the
// bit-identical permeability matrix of an uninterrupted run. The kill
// is simulated by truncating the journal at several byte offsets —
// including mid-record (a torn line) and mid-header — exactly what a
// SIGKILL during an append leaves behind.
func TestKillAndResume(t *testing.T) {
	baseDir := t.TempDir()
	base, err := RunInstance("reduced", TierQuick, Options{Dir: baseDir})
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix, wantRuns, wantUnfired := fingerprintResult(t, base)

	pristine, err := os.ReadFile(filepath.Join(baseDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pristine) < 200 {
		t.Fatalf("journal implausibly small: %d bytes", len(pristine))
	}

	offsets := []int{
		10,                     // mid-header: everything re-runs
		len(pristine) * 1 / 10, // early kill
		len(pristine) * 3 / 5,  // late kill
		len(pristine) - 7,      // torn final record
		len(pristine),          // clean completion, resume is a no-op
	}
	for _, off := range offsets {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), pristine[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rr, err := RunInstance("reduced", TierQuick, Options{Dir: dir, Resume: true})
		if err != nil {
			t.Fatalf("resume after truncation at %d: %v", off, err)
		}
		matrix, runs, unfired := fingerprintResult(t, rr)
		if runs != wantRuns || unfired != wantUnfired {
			t.Errorf("truncation at %d: runs/unfired %d/%d, want %d/%d", off, runs, unfired, wantRuns, wantUnfired)
		}
		if matrix != wantMatrix {
			t.Errorf("truncation at %d: resumed matrix differs from uninterrupted run", off)
		}
		if rr.Metrics.ReplayedRuns+rr.Metrics.ExecutedRuns != wantRuns {
			t.Errorf("truncation at %d: replayed %d + executed %d != %d",
				off, rr.Metrics.ReplayedRuns, rr.Metrics.ExecutedRuns, wantRuns)
		}
		if off > len(pristine)/2 && rr.Metrics.ReplayedRuns == 0 {
			t.Errorf("truncation at %d: nothing replayed — journal ignored", off)
		}
		// The resumed artifact directory must be complete.
		for _, name := range []string{"config.json", "journal.jsonl", "metrics.json", "failures.md", "report.md"} {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("truncation at %d: missing artifact %s", off, name)
			}
		}
		// And the healed journal must now replay in full.
		_, recs, _, err := loadJournal(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != wantRuns {
			t.Errorf("truncation at %d: healed journal has %d records, want %d", off, len(recs), wantRuns)
		}
	}
}

// TestShardedRunAssembles splits the injection space over three
// shards, runs each independently, and checks Assemble merges their
// journals into the bit-identical unsharded result.
func TestShardedRunAssembles(t *testing.T) {
	baseDir := t.TempDir()
	base, err := RunInstance("reduced", TierQuick, Options{Dir: baseDir})
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix, wantRuns, wantUnfired := fingerprintResult(t, base)

	def, err := Lookup("reduced")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const shards = 3
	shardRuns := 0
	for s := 0; s < shards; s++ {
		rr, err := RunInstance("reduced", TierQuick, Options{Dir: dir, Shard: s, Shards: shards})
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		shardRuns += rr.Metrics.ExecutedRuns
		if rr.Metrics.PlannedRuns >= wantRuns {
			t.Errorf("shard %d planned %d runs, expected a strict share of %d", s, rr.Metrics.PlannedRuns, wantRuns)
		}
		// Shards must not claim the final report.
		if _, err := os.Stat(filepath.Join(dir, "report.md")); err == nil {
			t.Errorf("shard %d wrote report.md", s)
		}
	}
	if shardRuns != wantRuns {
		t.Fatalf("shards executed %d runs, want %d", shardRuns, wantRuns)
	}

	// Assembling with one shard missing must fail loudly.
	partial := filepath.Join(dir, "journal-3of3.jsonl")
	hidden := partial + ".hidden"
	if err := os.Rename(partial, hidden); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir}); err == nil {
		t.Error("Assemble accepted an incomplete shard set")
	}
	if err := os.Rename(hidden, partial); err != nil {
		t.Fatal(err)
	}

	rr, err := Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	matrix, runs, unfired := fingerprintResult(t, rr)
	if runs != wantRuns || unfired != wantUnfired {
		t.Errorf("assembled runs/unfired %d/%d, want %d/%d", runs, unfired, wantRuns, wantUnfired)
	}
	if matrix != wantMatrix {
		t.Error("assembled matrix differs from unsharded run")
	}
	if rr.Metrics.ExecutedRuns != 0 || rr.Metrics.ReplayedRuns != wantRuns {
		t.Errorf("Assemble executed %d / replayed %d, want 0/%d", rr.Metrics.ExecutedRuns, rr.Metrics.ReplayedRuns, wantRuns)
	}
	if _, err := os.Stat(filepath.Join(dir, "report.md")); err != nil {
		t.Error("Assemble did not write report.md")
	}

	// A killed shard resumes independently: truncate shard 2's
	// journal, resume it, re-assemble, same matrix.
	shard2 := filepath.Join(dir, "journal-2of3.jsonl")
	data, err := os.ReadFile(shard2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard2, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunInstance("reduced", TierQuick, Options{Dir: dir, Shard: 1, Shards: shards, Resume: true}); err != nil {
		t.Fatalf("resuming killed shard: %v", err)
	}
	rr, err = Assemble(cfg, Options{Name: "reduced", Tier: TierQuick, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if matrix, _, _ := fingerprintResult(t, rr); matrix != wantMatrix {
		t.Error("re-assembled matrix differs after shard resume")
	}
}
