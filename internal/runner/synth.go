package runner

// Declarative (DSL-compiled) campaign instances: a topology document
// loaded from disk becomes a registry Definition indistinguishable
// from the built-in ones — listable, tierable, journalable and
// shardable, with the campaign tiers taken from the document's own
// `campaign` section.

import (
	"fmt"
	"os"

	"propane/internal/campaign"
	"propane/internal/synth"
)

// Register adds a definition to the instance registry. It fails on an
// empty name, a nil Config, or a name collision with an existing
// instance (built-in or previously registered), so a loaded document
// cannot silently shadow "paper".
func Register(d Definition) error {
	if d.Name == "" {
		return fmt.Errorf("runner: cannot register a definition without a name")
	}
	if d.Config == nil {
		return fmt.Errorf("runner: definition %q has no Config constructor", d.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		return fmt.Errorf("runner: instance %q is already registered", d.Name)
	}
	registry[d.Name] = d
	return nil
}

// Unregister removes a runtime-registered instance, reporting whether
// it existed. It exists so long-lived processes (and tests) can
// retire loaded documents; nothing stops it from removing a built-in,
// so callers should pass names they registered themselves.
func Unregister(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; !ok {
		return false
	}
	delete(registry, name)
	return true
}

// LoadSynthFile parses and compiles a declarative topology document
// (YAML or JSON) into a registry Definition. The definition's tiers
// resolve against the document's campaign section, so a document
// without a "full" tier simply rejects -tier full with a clear error.
func LoadSynthFile(path string) (Definition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Definition{}, fmt.Errorf("runner: reading topology %s: %w", path, err)
	}
	d, err := LoadSynthBytes(data, "")
	if err != nil {
		return Definition{}, fmt.Errorf("runner: %s: %w", path, err)
	}
	if d.Description == "" {
		d.Description = fmt.Sprintf("declarative target compiled from %s", path)
	}
	return d, nil
}

// LoadSynthBytes compiles an in-memory topology document into a
// registry Definition. A non-empty name overrides the document's own
// spec name — the campaign service registers API-submitted documents
// under content-derived names, so two submissions of byte-identical
// documents resolve to the same instance (and therefore the same
// config digest and persistent-memo scope) regardless of what the
// documents call themselves.
func LoadSynthBytes(data []byte, name string) (Definition, error) {
	spec, err := synth.Parse(data)
	if err != nil {
		return Definition{}, err
	}
	compiled, err := synth.Compile(spec)
	if err != nil {
		return Definition{}, err
	}
	if len(spec.Campaign) == 0 {
		return Definition{}, fmt.Errorf("document declares no campaign tiers")
	}
	if name == "" {
		name = spec.Name
	}
	return Definition{
		Name:        name,
		Description: spec.Description,
		Config: func(tier Tier) (campaign.Config, error) {
			return compiled.Config(string(tier))
		},
	}, nil
}

// RegisterSynthFile loads a topology document and registers it.
func RegisterSynthFile(path string) (Definition, error) {
	d, err := LoadSynthFile(path)
	if err != nil {
		return Definition{}, err
	}
	if err := Register(d); err != nil {
		return Definition{}, err
	}
	return d, nil
}
