package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/trace"
)

func sampleRunRecord() campaign.RunRecord {
	return campaign.RunRecord{
		Injection: inject.Injection{
			Module: "CALC",
			Signal: "pulscnt",
			At:     2500,
			Model:  inject.BitFlip{Bit: 7},
		},
		CaseIndex:     3,
		Fired:         true,
		FiredAt:       2501,
		SystemFailure: true,
		FailureAt:     2710,
		Diffs: map[string]trace.Diff{
			"SetValue": {Signal: "SetValue", First: 2502, Last: 2900, Count: 41},
			"OutValue": {Signal: "OutValue", First: -1, Last: -1, Count: 0},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := sampleRunRecord()
	jr, err := newRecord(17, rec)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Job != 17 || jr.Type != "run" {
		t.Errorf("record header wrong: %+v", jr)
	}
	if _, ok := jr.Diffs["OutValue"]; ok {
		t.Error("non-deviating diff journaled")
	}
	back, err := jr.RunRecord()
	if err != nil {
		t.Fatal(err)
	}
	if back.Injection != rec.Injection {
		t.Errorf("injection %v != %v", back.Injection, rec.Injection)
	}
	if back.Fired != rec.Fired || back.FiredAt != rec.FiredAt ||
		back.SystemFailure != rec.SystemFailure || back.FailureAt != rec.FailureAt {
		t.Errorf("outcome fields diverge: %+v vs %+v", back, rec)
	}
	if d := back.Diffs["SetValue"]; d != rec.Diffs["SetValue"] {
		t.Errorf("diff %+v != %+v", d, rec.Diffs["SetValue"])
	}
}

func TestJournalAppendLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	hdr := header{Type: "header", Version: journalVersion, Instance: "x", Tier: "quick", Shards: 1, ConfigDigest: "abc"}
	w, err := openJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		jr, err := newRecord(i, sampleRunRecord())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(jr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, recs, _, err := loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigDigest != "abc" || len(recs) != 5 {
		t.Fatalf("loaded %d records, header %+v", len(recs), got)
	}

	// Re-opening with a matching digest appends; a different digest
	// refuses.
	w, err = openJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	bad := hdr
	bad.ConfigDigest = "different"
	if _, err := openJournal(path, bad); err == nil {
		t.Error("openJournal accepted a digest mismatch")
	}
	bad = hdr
	bad.Shard, bad.Shards = 1, 4
	if _, err := openJournal(path, bad); err == nil {
		t.Error("openJournal accepted a shard mismatch")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	hdr := header{Type: "header", Version: journalVersion, Shards: 1, ConfigDigest: "abc"}
	w, err := openJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		jr, _ := newRecord(i, sampleRunRecord())
		if err := w.Append(jr); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last record: the torn line must be discarded, the
	// complete prefix kept.
	torn := data[:len(data)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, validLen, err := loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("loaded %d records from torn journal, want 2", len(recs))
	}
	if validLen <= 0 || validLen >= int64(len(torn)) || torn[validLen-1] != '\n' {
		t.Errorf("validLen %d does not mark the end of the complete prefix (%d bytes total)", validLen, len(torn))
	}

	// Corruption mid-file is an error, not silently skipped.
	lines := strings.Split(string(data), "\n")
	lines[1] = lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadJournal(path); err == nil {
		t.Error("loadJournal accepted mid-file corruption")
	}
}

func TestJournalTornHeaderStartsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"head`), 0o644); err != nil {
		t.Fatal(err)
	}
	hdr, recs, _, err := loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != "" || len(recs) != 0 {
		t.Fatalf("torn header not treated as empty: %+v, %d records", hdr, len(recs))
	}
	w, err := openJournal(path, header{Type: "header", Version: journalVersion, Shards: 1, ConfigDigest: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	hdr, _, _, err = loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ConfigDigest != "abc" {
		t.Errorf("journal not restarted after torn header: %+v", hdr)
	}
}

func TestJournalMissingFile(t *testing.T) {
	hdr, recs, _, err := loadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || hdr.Type != "" || recs != nil {
		t.Errorf("missing journal: hdr=%+v recs=%v err=%v", hdr, recs, err)
	}
}
