package runner

import (
	"encoding/json"
	"fmt"
	"time"

	"propane/internal/campaign"
)

// ModuleCounter tracks the paper's raw counts for one module: n_inj
// (runs whose trap fired on one of the module's inputs) and n_err
// (those that deviated a system output).
type ModuleCounter struct {
	Injections int `json:"n_inj"`
	Errors     int `json:"n_err"`
	// Crashes and Hangs count the module's supervised failure modes;
	// they are excluded from Injections (the estimate denominator).
	Crashes int `json:"n_crash,omitempty"`
	Hangs   int `json:"n_hang,omitempty"`
}

// Metrics is the exportable observability snapshot of a campaign run
// (written to metrics.json and rendered as periodic log lines).
type Metrics struct {
	Instance string `json:"instance"`
	Tier     string `json:"tier"`
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`
	// TotalRuns is the whole campaign's job count; PlannedRuns is
	// this shard's share; ReplayedRuns were restored from the journal
	// and ExecutedRuns ran in this process.
	TotalRuns    int `json:"total_runs"`
	PlannedRuns  int `json:"planned_runs"`
	ReplayedRuns int `json:"replayed_runs"`
	ExecutedRuns int `json:"executed_runs"`
	// Unfired counts runs whose trap never fired; SystemFailures
	// counts runs that deviated a system output; UniqueFailures is
	// the deduplicated failure-class count.
	Unfired        int `json:"unfired"`
	SystemFailures int `json:"system_failures"`
	UniqueFailures int `json:"unique_failures"`
	// Crashes and Hangs count runs terminated by a target panic or by
	// the watchdog; Quarantined counts poison jobs abandoned by the
	// supervisor. None of them enter a permeability denominator.
	Crashes     int `json:"crashes,omitempty"`
	Hangs       int `json:"hangs,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// Equivalence-pruning counters. PrunedRuns counts runs whose
	// outcome was proven without simulating (unfired traps and no-op
	// corruptions); MemoizedRuns were served from the result cache;
	// ConvergedRuns executed but stopped early at a state that
	// reconverged with the golden run. All of them still carry full
	// outcomes and enter every n_inj/n_err counter as usual.
	PrunedRuns    int `json:"pruned_runs,omitempty"`
	MemoizedRuns  int `json:"memoized_runs,omitempty"`
	ConvergedRuns int `json:"converged_runs,omitempty"`
	// StoreMemoRuns counts the subset of memoized runs served from a
	// persistent memo store (Options.Memo) — results executed by an
	// earlier campaign, possibly in another process. Also included in
	// MemoizedRuns.
	StoreMemoRuns int `json:"store_memo_runs,omitempty"`
	// Throughput and worker economics. WorkerUtilization is
	// busy-time / (elapsed × workers); per-run busy time is measured
	// up to the serial observer, so queueing behind the observer can
	// push it slightly above 1.
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	RunsPerSecond     float64 `json:"runs_per_second"`
	ETASeconds        float64 `json:"eta_seconds"`
	MeanRunMs         float64 `json:"mean_run_ms"`
	WorkerUtilization float64 `json:"worker_utilization"`
	// Modules holds the per-module n_err/n_inj counters.
	Modules map[string]*ModuleCounter `json:"modules"`
}

// tracker folds per-run observations into Metrics. It runs on the
// campaign's serial observer path; no locking needed.
type tracker struct {
	m        Metrics
	start    time.Time
	busy     time.Duration
	interval time.Duration
	lastLog  time.Time
	logf     func(format string, args ...any)
}

func newTracker(m Metrics, interval time.Duration, logf func(string, ...any)) *tracker {
	now := time.Now()
	if m.Modules == nil {
		m.Modules = make(map[string]*ModuleCounter)
	}
	return &tracker{m: m, start: now, lastLog: now, interval: interval, logf: logf}
}

// counter returns the module's counter, creating it on first use.
func (t *tracker) counter(module string) *ModuleCounter {
	c, ok := t.m.Modules[module]
	if !ok {
		c = &ModuleCounter{}
		t.m.Modules[module] = c
	}
	return c
}

// absorb counts one run — replayed from the journal or executed live
// (dur > 0 only for live runs).
func (t *tracker) absorb(rec campaign.RunRecord, dur time.Duration, replayed bool) {
	if replayed {
		t.m.ReplayedRuns++
	} else {
		t.m.ExecutedRuns++
		t.busy += dur
	}
	switch rec.Pruned {
	case campaign.PrunedNoOp, campaign.PrunedUnfired:
		t.m.PrunedRuns++
	case campaign.PrunedMemoized:
		t.m.MemoizedRuns++
	case campaign.PrunedMemoStore:
		t.m.MemoizedRuns++
		t.m.StoreMemoRuns++
	case campaign.PrunedConverged:
		t.m.ConvergedRuns++
	}
	switch rec.Outcome {
	case campaign.OutcomeQuarantined:
		t.m.Quarantined++
		return
	case campaign.OutcomeCrash:
		t.m.Crashes++
		if rec.Fired {
			t.counter(rec.Injection.Module).Crashes++
		}
		return
	case campaign.OutcomeHang:
		t.m.Hangs++
		if rec.Fired {
			t.counter(rec.Injection.Module).Hangs++
		}
		return
	}
	if !rec.Fired {
		t.m.Unfired++
		return
	}
	c := t.counter(rec.Injection.Module)
	c.Injections++
	if rec.SystemFailure {
		c.Errors++
		t.m.SystemFailures++
	}
}

// snapshot computes the derived rates at a point in time.
func (t *tracker) snapshot(now time.Time) Metrics {
	m := t.m
	m.ElapsedSeconds = now.Sub(t.start).Seconds()
	if m.ElapsedSeconds > 0 {
		m.RunsPerSecond = float64(m.ExecutedRuns) / m.ElapsedSeconds
	}
	if m.ExecutedRuns > 0 {
		m.MeanRunMs = float64(t.busy.Milliseconds()) / float64(m.ExecutedRuns)
	}
	if remaining := m.PlannedRuns - m.ReplayedRuns - m.ExecutedRuns; remaining > 0 && m.RunsPerSecond > 0 {
		m.ETASeconds = float64(remaining) / m.RunsPerSecond
	}
	if m.Workers > 0 && m.ElapsedSeconds > 0 {
		m.WorkerUtilization = t.busy.Seconds() / (m.ElapsedSeconds * float64(m.Workers))
	}
	// Deep-copy the counters so the snapshot is stable.
	m.Modules = make(map[string]*ModuleCounter, len(t.m.Modules))
	for name, c := range t.m.Modules {
		cc := *c
		m.Modules[name] = &cc
	}
	return m
}

// maybeLog emits a progress line when the configured interval has
// elapsed since the last one.
func (t *tracker) maybeLog(uniqueFailures int) {
	if t.logf == nil || t.interval <= 0 {
		return
	}
	now := time.Now()
	if now.Sub(t.lastLog) < t.interval {
		return
	}
	t.lastLog = now
	t.m.UniqueFailures = uniqueFailures
	m := t.snapshot(now)
	done := m.ReplayedRuns + m.ExecutedRuns
	pct := 0.0
	if m.PlannedRuns > 0 {
		pct = 100 * float64(done) / float64(m.PlannedRuns)
	}
	supervised := ""
	if m.Crashes+m.Hangs+m.Quarantined > 0 {
		supervised = fmt.Sprintf(", %d crash/%d hang/%d quarantined", m.Crashes, m.Hangs, m.Quarantined)
	}
	pruned := ""
	if m.PrunedRuns+m.MemoizedRuns+m.ConvergedRuns > 0 {
		pruned = fmt.Sprintf(", %d pruned/%d memoized/%d converged", m.PrunedRuns, m.MemoizedRuns, m.ConvergedRuns)
	}
	t.logf("%s/%s shard %d/%d: %d/%d runs (%.1f%%), %.0f runs/s, ETA %.0fs, util %.0f%%, %d failures (%d unique)%s%s",
		m.Instance, m.Tier, m.Shard+1, m.Shards, done, m.PlannedRuns, pct,
		m.RunsPerSecond, m.ETASeconds, 100*m.WorkerUtilization,
		m.SystemFailures, uniqueFailures, supervised, pruned)
}

// writeMetrics exports the final snapshot as metrics.json.
func writeMetrics(path string, m Metrics) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}
