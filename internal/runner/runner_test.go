package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"propane/internal/campaign"
	"propane/internal/report"
)

func TestRegistryBuildsEveryInstance(t *testing.T) {
	defs := Instances()
	if len(defs) < 6 {
		t.Fatalf("registry has %d instances, want at least 6", len(defs))
	}
	for _, def := range defs {
		for _, tier := range Tiers() {
			cfg, err := def.Config(tier)
			if err != nil {
				t.Errorf("%s/%s: %v", def.Name, tier, err)
				continue
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s/%s invalid: %v", def.Name, tier, err)
			}
			// The digestable snapshot must build for every instance,
			// and identically twice (journals depend on it).
			plan, err := cfg.Plan()
			if err != nil {
				t.Errorf("%s/%s plan: %v", def.Name, tier, err)
				continue
			}
			s1, err := newSnapshot(def.Name, tier, cfg, len(plan), nil)
			if err != nil {
				t.Errorf("%s/%s snapshot: %v", def.Name, tier, err)
				continue
			}
			cfg2, _ := def.Config(tier)
			s2, _ := newSnapshot(def.Name, tier, cfg2, len(plan), nil)
			if s1.Digest != s2.Digest {
				t.Errorf("%s/%s: config digest not deterministic", def.Name, tier)
			}
		}
	}
	if _, err := Lookup("no-such-instance"); err == nil {
		t.Error("Lookup accepted an unknown instance")
	}
}

func TestRunWritesArtifactSet(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	rr, err := RunInstance("reduced", TierQuick, Options{
		Dir:  dir,
		Logf: func(format string, args ...any) { logged = append(logged, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Result == nil || rr.Result.Runs == 0 {
		t.Fatal("no runs executed")
	}
	for _, name := range []string{"config.json", "journal.jsonl", "metrics.json", "failures.md", "report.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}

	var snap snapshot
	data, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Instance != "reduced" || snap.Tier != "quick" || snap.Digest == "" {
		t.Errorf("snapshot incomplete: %+v", snap)
	}
	if len(snap.GoldenDigests) != len(snap.Cases) {
		t.Errorf("%d golden digests for %d cases", len(snap.GoldenDigests), len(snap.Cases))
	}
	if snap.TotalRuns != rr.Result.Runs {
		t.Errorf("snapshot plans %d runs, result has %d", snap.TotalRuns, rr.Result.Runs)
	}

	m := rr.Metrics
	if m.ExecutedRuns != rr.Result.Runs || m.ReplayedRuns != 0 {
		t.Errorf("metrics runs: executed %d replayed %d, want %d/0", m.ExecutedRuns, m.ReplayedRuns, rr.Result.Runs)
	}
	if m.Unfired != rr.Result.Unfired {
		t.Errorf("metrics unfired %d, result %d", m.Unfired, rr.Result.Unfired)
	}
	if m.RunsPerSecond <= 0 || m.Workers <= 0 {
		t.Errorf("throughput metrics missing: %+v", m)
	}
	totalInj := 0
	for _, c := range m.Modules {
		totalInj += c.Injections
	}
	if want := rr.Result.Runs - rr.Result.Unfired; totalInj != want {
		t.Errorf("module injection counters sum to %d, want %d", totalInj, want)
	}
	if m.UniqueFailures != len(rr.Failures) {
		t.Errorf("unique failures %d != catalog size %d", m.UniqueFailures, len(rr.Failures))
	}
	if len(rr.Failures) == 0 {
		t.Error("campaign produced no failure classes — dedupe broken or campaign inert")
	}
	dedupes := false
	for _, f := range rr.Failures {
		if f.Count > 1 {
			dedupes = true
			break
		}
	}
	if !dedupes {
		t.Error("no failure class has Count > 1 — fingerprinting too fine")
	}

	// A second run into the same directory without Resume must refuse.
	if _, err := RunInstance("reduced", TierQuick, Options{Dir: dir}); err == nil {
		t.Error("re-run without Resume accepted an existing journal")
	}
	// A different campaign must refuse the directory outright.
	if _, err := RunInstance("paper", TierQuick, Options{Dir: dir, Resume: true}); err == nil {
		t.Error("different campaign accepted a foreign artifact directory")
	}
}

func TestRunPropagatesConfigSentinel(t *testing.T) {
	var cfg campaign.Config // hollow: no cases, no times, no bits
	_, err := Run(cfg, Options{Dir: t.TempDir()})
	if !errors.Is(err, campaign.ErrInvalidConfig) {
		t.Errorf("error %v does not wrap campaign.ErrInvalidConfig", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := RunInstance("reduced", TierQuick, Options{}); err == nil {
		t.Error("accepted empty artifact dir")
	}
	if _, err := RunInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Shards: 2, Shard: 2}); err == nil {
		t.Error("accepted shard outside range")
	}
	if _, err := RunInstance("reduced", "nightly", Options{Dir: t.TempDir()}); err == nil {
		t.Error("accepted unknown tier")
	}
}

func TestFailureTableRenders(t *testing.T) {
	rr, err := RunInstance("reduced", TierQuick, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	table := report.FailureTable(rr.Failures)
	if !strings.Contains(table, "equivalence classes") {
		t.Errorf("unexpected failure table:\n%s", table)
	}
	for _, f := range rr.Failures[:1] {
		if !strings.Contains(table, f.Module) {
			t.Errorf("table misses module %s", f.Module)
		}
	}
}
