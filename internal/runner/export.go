package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"propane/internal/campaign"
)

// This file is the runner's contract with external orchestrators —
// today the distributed coordinator (internal/distrib), which plans
// work units from the same deterministic enumeration Run executes and
// appends worker-streamed records to the same journal files Assemble
// merges. Everything here is derived from the exact code paths Run
// itself uses, so an orchestrator can never disagree with a local run
// about job indices, config digests or journal layout.

// PlanInfo describes a campaign's deterministic execution space: the
// config digest that journals bind to and the job-index arithmetic
// that sharding and resume rely on. Two processes whose Describe
// results agree agree on everything journal-shaped.
type PlanInfo struct {
	// Name and Tier label the campaign as Options would.
	Name string
	Tier Tier
	// Digest is the config snapshot digest (includes the golden-run
	// trace digests, so it also pins the simulated target).
	Digest string
	// PlanSize is the injection-plan length; Cases the workload-grid
	// size; TotalRuns their product — the job space [0, TotalRuns)
	// enumerated plan-index major, case-index minor.
	PlanSize  int
	Cases     int
	TotalRuns int
	// Adaptive and CIEpsilon report the resolved adaptive sampling
	// mode pinned in the digest (false/0 for full-matrix campaigns).
	// When Adaptive is set, TotalRuns bounds the job space but the
	// executed subset is discovered at run time by the sequential
	// scheduler.
	Adaptive  bool
	CIEpsilon float64
}

// Describe computes the digestable identity of a campaign exactly as
// Run would: supervision options folded in, the config validated, the
// plan enumerated and the golden runs executed and hashed. It touches
// no files. The golden runs make it as expensive as Run's own startup
// — cache the result per configuration.
func Describe(cfg campaign.Config, opts Options) (PlanInfo, error) {
	opts.Shards = 1
	opts.Shard = 0
	if opts.Dir == "" {
		opts.Dir = "." // normalise demands one; Describe never uses it
	}
	if err := opts.normalise(); err != nil {
		return PlanInfo{}, err
	}
	opts.applySupervision(&cfg)
	opts.applyAdaptive(&cfg)
	if err := cfg.Validate(); err != nil {
		return PlanInfo{}, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return PlanInfo{}, err
	}
	digests, err := goldenDigests(cfg)
	if err != nil {
		return PlanInfo{}, err
	}
	snap, err := newSnapshot(opts.Name, opts.Tier, cfg, len(plan), digests)
	if err != nil {
		return PlanInfo{}, err
	}
	return PlanInfo{
		Name:      opts.Name,
		Tier:      opts.Tier,
		Digest:    snap.Digest,
		PlanSize:  len(plan),
		Cases:     len(cfg.TestCases),
		TotalRuns: snap.TotalRuns,
		Adaptive:  snap.Adaptive,
		CIEpsilon: snap.CIEpsilon,
	}, nil
}

// DescribeInstance resolves a named registry instance and describes
// it.
func DescribeInstance(name string, tier Tier, opts Options) (PlanInfo, error) {
	def, err := Lookup(name)
	if err != nil {
		return PlanInfo{}, err
	}
	cfg, err := def.Config(tier)
	if err != nil {
		return PlanInfo{}, fmt.Errorf("runner: building %s/%s: %w", name, tier, err)
	}
	opts.Name = name
	opts.Tier = tier
	return Describe(cfg, opts)
}

// RecordSetDigest computes a canonical SHA-256 over a set of records:
// sorted by job index, serialized with the Pruned and Round labels
// cleared — exactly the fields RecordsEqual compares. Two processes holding
// record sets that would merge without conflict produce the same
// digest, so a distributed worker can prove its locally journaled
// unit matches what the coordinator would have received without
// shipping a single record (digest-only completion). The input slice
// is not modified.
func RecordSetDigest(recs []Record) string {
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return recs[order[a]].Job < recs[order[b]].Job })
	h := sha256.New()
	for _, i := range order {
		rec := recs[i]
		rec.Pruned = "" // excluded from equality, so excluded here
		rec.Round = 0   // likewise: a schedule label, not an outcome
		line, err := json.Marshal(rec)
		if err != nil {
			// A Record is plain data; Marshal cannot fail on one. Keep
			// the signature error-free and make any future regression
			// loud instead of silent.
			panic(fmt.Sprintf("runner: encoding record for digest: %v", err))
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JournalVersionFor returns the journal header version a campaign
// stamps: version 4 when adaptive sampling decides the job set,
// version 3 otherwise. External orchestrators opening shard journals
// for an adaptive campaign pass it as JournalHeader.Version so their
// files match what Run itself would write.
func JournalVersionFor(adaptive bool) int { return journalVersionFor(adaptive) }

// JournalHeader is the exported view of a journal file's header line.
type JournalHeader struct {
	Version      int
	Instance     string
	Tier         string
	Shard        int
	Shards       int
	ConfigDigest string
}

// ShardJournalPath returns the journal path Run would use for one
// shard of a campaign under dir — the same file Assemble later globs.
func ShardJournalPath(dir string, shard, shards int) string {
	return layout{dir: dir}.journalPath(shard, shards)
}

// ReadJournal loads a shard journal, tolerating the torn trailing
// line a killed process leaves behind. A missing file yields a zero
// header and no records.
func ReadJournal(path string) (JournalHeader, []Record, error) {
	hdr, recs, _, err := loadJournal(path)
	if err != nil {
		return JournalHeader{}, nil, err
	}
	return JournalHeader{
		Version:      hdr.Version,
		Instance:     hdr.Instance,
		Tier:         hdr.Tier,
		Shard:        hdr.Shard,
		Shards:       hdr.Shards,
		ConfigDigest: hdr.ConfigDigest,
	}, recs, nil
}

// ShardJournal is an append-only shard journal opened by an external
// orchestrator (the distributed coordinator persisting records its
// workers stream back) instead of by Run itself. It shares Run's
// journal format, torn-tail healing and digest binding, so the
// resulting files assemble exactly like locally written shards.
type ShardJournal struct {
	w    *journalWriter
	path string
}

// OpenShardJournal opens (or reopens) the journal for one shard under
// dir, writing the header when the file is empty and verifying the
// config digest when it is not (ErrDigestMismatch otherwise).
func OpenShardJournal(dir string, hdr JournalHeader) (*ShardJournal, error) {
	if hdr.Version == 0 {
		hdr.Version = journalVersion
	}
	path := ShardJournalPath(dir, hdr.Shard, hdr.Shards)
	w, err := openJournal(path, header{
		Type:         "header",
		Version:      hdr.Version,
		Instance:     hdr.Instance,
		Tier:         hdr.Tier,
		Shard:        hdr.Shard,
		Shards:       hdr.Shards,
		ConfigDigest: hdr.ConfigDigest,
	})
	if err != nil {
		return nil, err
	}
	return &ShardJournal{w: w, path: path}, nil
}

// Path returns the journal's file path.
func (j *ShardJournal) Path() string { return j.path }

// Append journals one record.
func (j *ShardJournal) Append(rec Record) error { return j.w.Append(rec) }

// AppendBatch journals a whole batch of records with one write —
// the coordinator's bulk-ingest path for worker-uploaded units.
func (j *ShardJournal) AppendBatch(recs []Record) error { return j.w.AppendBatch(recs) }

// Sync flushes appended records to stable storage.
func (j *ShardJournal) Sync() error {
	if err := j.w.f.Sync(); err != nil {
		return fmt.Errorf("runner: syncing journal: %w", err)
	}
	j.w.pending = 0
	return nil
}

// Close syncs and closes the journal.
func (j *ShardJournal) Close() error { return j.w.Close() }
