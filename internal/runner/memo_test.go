package runner

import (
	"os"
	"testing"

	"propane/internal/report"
	"propane/internal/store"
)

// TestMemoStoreReuseAcrossRuns proves the persistent-store memo path
// end to end at the runner layer: a second run of the same instance
// into a FRESH working directory is served from the store the first
// run populated (StoreMemoRuns > 0) and assembles a bit-identical
// matrix; wiping the store between runs degrades transparently back
// to full execution with, again, an identical matrix.
func TestMemoStoreReuseAcrossRuns(t *testing.T) {
	storeDir := t.TempDir()
	st, err := store.Open(storeDir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	run := func(memo MemoStore) *RunResult {
		t.Helper()
		rr, err := RunInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Memo: memo, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}

	first := run(st)
	if first.Metrics.StoreMemoRuns != 0 {
		t.Fatalf("first run against an empty store claims %d store memo hits", first.Metrics.StoreMemoRuns)
	}
	wantCSV := report.MatrixCSV(first.Result.Matrix)

	second := run(st)
	if second.Metrics.StoreMemoRuns == 0 {
		t.Fatal("second run shows no store memo hits — persistent memo not reused")
	}
	if got := report.MatrixCSV(second.Result.Matrix); got != wantCSV {
		t.Error("store-memoized run produced a different permeability matrix")
	}
	if second.Result.Runs != first.Result.Runs || second.Result.Unfired != first.Result.Unfired {
		t.Errorf("counts diverged: first (%d, %d), second (%d, %d)",
			first.Result.Runs, first.Result.Unfired, second.Result.Runs, second.Result.Unfired)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Wipe the store. A fresh (empty) store at the same path must not
	// change the result — only the hit counter.
	if err := os.RemoveAll(storeDir); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(storeDir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	third := run(st2)
	if third.Metrics.StoreMemoRuns != 0 {
		t.Fatalf("run against a wiped store claims %d store memo hits", third.Metrics.StoreMemoRuns)
	}
	if got := report.MatrixCSV(third.Result.Matrix); got != wantCSV {
		t.Error("wiped-store run produced a different permeability matrix")
	}
}
