package runner

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"propane/internal/campaign"
)

// TestAdaptiveRunKillAndResume: the adaptive campaign's resume
// guarantee — a run killed mid-journal resumes with the scheduler
// re-deriving every stopping decision from the journaled prefix, so
// the healed journal holds the bit-identical record set (same jobs,
// same outcomes) an uninterrupted run produces.
func TestAdaptiveRunKillAndResume(t *testing.T) {
	opts := func(dir string) Options {
		return Options{Dir: dir, Adaptive: campaign.AdaptiveForce}
	}
	baseDir := t.TempDir()
	base, err := RunInstance("reduced", TierQuick, opts(baseDir))
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Adaptive == nil {
		t.Fatal("adaptive run carries no AdaptiveStats")
	}
	wantMatrix, wantRuns, _ := fingerprintResult(t, base)

	hdr, baseRecs, _, err := loadJournal(filepath.Join(baseDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != journalVersionAdaptive {
		t.Errorf("adaptive journal stamped version %d, want %d", hdr.Version, journalVersionAdaptive)
	}
	rounds := 0
	for _, r := range baseRecs {
		if r.Round > 0 {
			rounds++
		}
	}
	if rounds != len(baseRecs) {
		t.Errorf("%d of %d records carry a round label, want all", rounds, len(baseRecs))
	}
	wantDigest := RecordSetDigest(baseRecs)

	pristine, err := os.ReadFile(filepath.Join(baseDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{
		10,                     // mid-header: everything re-runs
		len(pristine) * 1 / 10, // early kill, inside the pilot batches
		len(pristine) * 3 / 5,  // late kill
		len(pristine) - 7,      // torn final record
		len(pristine),          // clean completion, resume is a no-op
	}
	for _, off := range offsets {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), pristine[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		o := opts(dir)
		o.Resume = true
		rr, err := RunInstance("reduced", TierQuick, o)
		if err != nil {
			t.Fatalf("resume after truncation at %d: %v", off, err)
		}
		matrix, runs, _ := fingerprintResult(t, rr)
		if runs != wantRuns || matrix != wantMatrix {
			t.Errorf("truncation at %d: resumed result differs from uninterrupted adaptive run", off)
		}
		_, recs, _, err := loadJournal(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if got := RecordSetDigest(recs); got != wantDigest {
			t.Errorf("truncation at %d: healed journal's record set diverged — the resumed scheduler made different decisions", off)
		}
	}
}

// TestAdaptiveDigestPinsMode: the adaptive mode and ε are part of the
// config digest exactly when they decide the job set — AdaptiveOff and
// a declining AdaptiveAuto digest identically to a pre-adaptive build,
// while Force and different ε values each get their own digest.
func TestAdaptiveDigestPinsMode(t *testing.T) {
	plain, err := DescribeInstance("reduced", TierQuick, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Adaptive {
		t.Error("default description claims adaptive")
	}
	// The quick tier sits below AdaptiveAuto's size threshold, so Auto
	// resolves to Off and must not perturb the digest.
	auto, err := DescribeInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Adaptive: campaign.AdaptiveAuto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Digest != plain.Digest {
		t.Error("declined AdaptiveAuto changed the config digest")
	}
	force, err := DescribeInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Adaptive: campaign.AdaptiveForce})
	if err != nil {
		t.Fatal(err)
	}
	if !force.Adaptive || force.CIEpsilon <= 0 {
		t.Errorf("forced description = %+v, want adaptive with a resolved ε", force)
	}
	if force.Digest == plain.Digest {
		t.Error("AdaptiveForce did not change the config digest")
	}
	tight, err := DescribeInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Adaptive: campaign.AdaptiveForce, CIEpsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Digest == force.Digest {
		t.Error("changing ε did not change the config digest")
	}
}

// TestAdaptiveShardsRejected: static sharding divides a job space that
// an adaptive campaign only discovers at run time.
func TestAdaptiveShardsRejected(t *testing.T) {
	_, err := RunInstance("reduced", TierQuick, Options{
		Dir: t.TempDir(), Shards: 2, Shard: 0, Adaptive: campaign.AdaptiveForce,
	})
	if err == nil {
		t.Fatal("adaptive run accepted static shards")
	}
}

// TestAdaptiveAssemble: assembling an adaptive campaign proves
// completeness against the schedule (re-derived deterministically from
// the config), not against the matrix size — and refuses journals
// whose records leave the schedule open.
func TestAdaptiveAssemble(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "reduced", Tier: TierQuick, Dir: dir, Adaptive: campaign.AdaptiveForce}
	base, err := RunInstance("reduced", TierQuick, Options{Dir: dir, Adaptive: campaign.AdaptiveForce})
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix, wantRuns, _ := fingerprintResult(t, base)

	def, err := Lookup("reduced")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(TierQuick)
	if err != nil {
		t.Fatal(err)
	}

	rr, err := Assemble(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	matrix, runs, _ := fingerprintResult(t, rr)
	if runs != wantRuns || matrix != wantMatrix {
		t.Error("assembled adaptive result differs from the live run")
	}
	if rr.Metrics.ExecutedRuns != 0 {
		t.Errorf("Assemble executed %d runs, want 0", rr.Metrics.ExecutedRuns)
	}
	if rr.Result.Adaptive == nil {
		t.Error("assembled result carries no AdaptiveStats")
	}

	// A journal that stops short of closing the schedule must fail
	// assembly with the dedicated sentinel.
	journal := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(cfg, opts); !errors.Is(err, ErrScheduleIncomplete) {
		t.Errorf("Assemble over a half journal: %v, want ErrScheduleIncomplete", err)
	}
}

// TestAdaptiveEquivalenceAcrossRegistry runs every registry instance's
// quick tier both ways — full matrix and forced-adaptive — and checks
// the contract the speedup rests on: every pair estimate agrees within
// the stopping half-width ε, and the module ordering (the paper's
// Table 2 product) is preserved (Kendall tau ≥ 0.95).
func TestAdaptiveEquivalenceAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registry instance twice")
	}
	for _, def := range Instances() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			full, err := RunInstance(def.Name, TierQuick, Options{Dir: t.TempDir(), SkipReport: true})
			if err != nil {
				t.Fatal(err)
			}
			adap, err := RunInstance(def.Name, TierQuick, Options{
				Dir: t.TempDir(), SkipReport: true, Adaptive: campaign.AdaptiveForce,
			})
			if err != nil {
				t.Fatal(err)
			}
			if adap.Result.Adaptive == nil {
				t.Fatal("adaptive run carries no AdaptiveStats")
			}
			eps := adap.Result.Adaptive.Epsilon
			if len(full.Result.Pairs) != len(adap.Result.Pairs) {
				t.Fatalf("pair count %d vs %d", len(full.Result.Pairs), len(adap.Result.Pairs))
			}
			for i := range full.Result.Pairs {
				fp, ap := full.Result.Pairs[i], adap.Result.Pairs[i]
				if fp.Pair != ap.Pair {
					t.Fatalf("pair order mismatch at %d", i)
				}
				if diff := fp.Estimate - ap.Estimate; diff > eps || diff < -eps {
					t.Errorf("%v: full %v vs adaptive %v differs beyond ε=%v",
						fp.Pair, fp.Estimate, ap.Estimate, eps)
				}
			}
			// Module ordering (the Table 2 product): over the module
			// pairs the full matrix strictly orders, at least 95% must
			// keep their order under adaptive sampling — Kendall
			// concordance restricted to untied pairs, since tau-a
			// charges ties against identical orderings.
			names := full.Result.Matrix.System().ModuleNames()
			fm := make([]float64, len(names))
			am := make([]float64, len(names))
			for i, name := range names {
				if fm[i], err = full.Result.Matrix.RelativePermeability(name); err != nil {
					t.Fatal(err)
				}
				if am[i], err = adap.Result.Matrix.RelativePermeability(name); err != nil {
					t.Fatal(err)
				}
			}
			strict, discordant := 0, 0
			for i := 0; i < len(names); i++ {
				for j := i + 1; j < len(names); j++ {
					da := fm[i] - fm[j]
					if da == 0 {
						continue
					}
					strict++
					if da*(am[i]-am[j]) < 0 {
						discordant++
					}
				}
			}
			if strict > 0 {
				if tau := float64(strict-discordant) / float64(strict); tau < 0.95 {
					t.Errorf("module ordering concordance %v < 0.95 (%d of %d ordered pairs inverted)",
						tau, discordant, strict)
				}
			}
		})
	}
}
