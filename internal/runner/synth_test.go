package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSynthFile: a declarative document loads into a Definition
// whose tiers resolve against the document's own campaign section.
func TestLoadSynthFile(t *testing.T) {
	def, err := LoadSynthFile(filepath.Join("..", "..", "examples", "synth", "arrestor.yaml"))
	if err != nil {
		t.Fatalf("LoadSynthFile: %v", err)
	}
	if def.Name != "synth-arrestor" {
		t.Errorf("name = %q, want synth-arrestor", def.Name)
	}
	for _, tier := range []Tier{TierQuick, TierFull} {
		cfg, err := def.Config(tier)
		if err != nil {
			t.Fatalf("Config(%s): %v", tier, err)
		}
		if cfg.Custom == nil {
			t.Fatalf("Config(%s): no custom target", tier)
		}
		if got := cfg.System().Name(); got != "synth-arrestor" {
			t.Errorf("Config(%s): system name = %q", tier, got)
		}
	}
	if _, err := def.Config(Tier("nightly")); err == nil {
		t.Error("undeclared tier accepted")
	}
}

// TestRegisterSynthFile: registration makes the instance visible to
// Lookup and Instances, and name collisions are rejected — a loaded
// document cannot shadow a built-in instance.
func TestRegisterSynthFile(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "synth", "hostile.yaml")
	def, err := RegisterSynthFile(path)
	if err != nil {
		t.Fatalf("RegisterSynthFile: %v", err)
	}
	t.Cleanup(func() {
		if !Unregister(def.Name) {
			t.Errorf("Unregister(%s) found nothing to remove", def.Name)
		}
	})

	got, err := Lookup(def.Name)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", def.Name, err)
	}
	if got.Name != def.Name {
		t.Errorf("Lookup returned %q", got.Name)
	}
	found := false
	for _, d := range Instances() {
		if d.Name == def.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("Instances() does not list %s", def.Name)
	}

	if _, err := RegisterSynthFile(path); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(Definition{Name: "paper", Config: def.Config}); err == nil {
		t.Error("shadowing a built-in instance accepted")
	}
}

// TestLoadSynthFileErrors: unreadable and invalid documents are
// rejected with named-path errors, and a document without campaign
// tiers cannot become an instance.
func TestLoadSynthFileErrors(t *testing.T) {
	if _, err := LoadSynthFile(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Error("missing file accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSynthFile(bad); err == nil {
		t.Error("invalid document accepted")
	} else if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %v does not name the file", err)
	}
}
