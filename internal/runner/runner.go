// Package runner is the production orchestration layer around the
// campaign engine (internal/campaign). Where campaign.Run executes
// one monolithic in-memory campaign, the runner provides the
// machinery a large SWIFI campaign needs to survive contact with real
// infrastructure:
//
//   - named instances: a registry of campaign configurations (the
//     paper grid, the dual-node deployment, the autobrake target, the
//     error-model and tolerance ablations) selectable by name and
//     tier (quick/full);
//   - journaled execution: every injection run's outcome is appended
//     to a JSONL journal under a per-run artifact directory (config
//     snapshot, golden-run digests, journal, metrics, final report),
//     so a killed campaign resumes from its checkpoint and converges
//     to the bit-identical permeability matrix;
//   - deterministic sharding: the injection space splits over N
//     shards by job index, each journaling independently, with
//     Assemble merging shard journals into the final result;
//   - observability: runs/sec, ETA, per-module n_err/n_inj counters
//     and worker utilisation as periodic log lines and an exportable
//     metrics.json;
//   - failure dedupe: deviating runs are fingerprinted so repeated
//     identical propagations don't bury novel ones.
package runner

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/report"
)

// defaultWorkers mirrors the campaign engine's zero-Workers choice.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options parameterises one orchestrated campaign run.
type Options struct {
	// Name labels the campaign in artifacts and logs (an instance
	// name from the registry, or any label for ad-hoc configs).
	Name string
	// Tier records which intensity tier the config came from.
	Tier Tier
	// Dir is the artifact directory. It is created if missing; it
	// must not contain a different campaign's artifacts.
	Dir string
	// Shard/Shards select this process's slice of the injection
	// space: only jobs with index ≡ Shard (mod Shards) execute.
	// Zero Shards means unsharded.
	Shard, Shards int
	// Resume loads the journal and skips already-completed jobs
	// instead of refusing to touch a non-empty journal.
	Resume bool
	// Workers overrides campaign.Config.Workers when positive.
	Workers int
	// LogInterval throttles progress lines (0 disables them).
	LogInterval time.Duration
	// Logf receives progress and lifecycle lines (nil discards).
	Logf func(format string, args ...any)
	// RunBudgetSteps arms the per-run watchdog: each injection run is
	// terminated and classified as a hang once it has charged this
	// many deterministic work units (campaign.Config.Budget.Steps).
	// 0 leaves the config's own budget in force. The value is part of
	// the config digest — a hang is a run outcome, so two processes
	// must agree on the budget to share a journal.
	RunBudgetSteps int64
	// RunWallBudget adds a non-deterministic wall-clock backstop per
	// run. It is excluded from the config digest: it should only trip
	// for code that hangs without charging the step budget.
	RunWallBudget time.Duration
	// MaxRetries bounds the retries of a transient journal or
	// artifact I/O failure (capped exponential backoff). 0 means the
	// default (3); negative disables retrying.
	MaxRetries int
	// QuarantineAfter abandons a job as poison after this many
	// consecutive worker crashes, journaling it as quarantined instead
	// of aborting the campaign. 0 means the default (3); negative
	// disables quarantine, restoring the fail-fast contract. Ignored
	// when the config already sets OnJobError.
	QuarantineAfter int
	// OnRecord, when non-nil, receives every journaled record on the
	// serial observer path: records restored from the journal during
	// resume (replayed true) and records appended as runs complete
	// (replayed false). The distributed worker (internal/distrib)
	// streams these to its coordinator — replayed delivery is what
	// lets a restarted worker forward records it journaled locally but
	// never managed to flush. A returned error aborts the run.
	OnRecord func(rec Record, replayed bool) error
	// ExcludeJobs, when non-nil, removes jobs from this process's
	// share of the injection space entirely: excluded jobs are neither
	// executed nor replayed from the journal, and they do not count
	// toward PlannedRuns. The distributed worker excludes jobs its
	// coordinator already holds, so a reassigned work unit
	// fast-forwards past everything the dead worker streamed back.
	ExcludeJobs func(job int) bool
	// Abort, when non-nil, is polled between job dispatches; once it
	// returns true no further jobs start, in-flight runs finish and
	// journal, and Run returns the partial shard without error. It is
	// called concurrently with OnRecord — use an atomic flag. The
	// distributed worker aborts when its lease is lost.
	Abort func() bool
	// Prune overrides the config's equivalence-pruning mode when not
	// PruneAuto. It is excluded from the config digest: pruned and
	// executed records carry bit-identical outcomes, so journals
	// written with different prune settings interoperate.
	Prune campaign.PruneMode
	// Adaptive overrides the config's adaptive sequential-sampling
	// mode when not AdaptiveOff (the zero value leaves the config's
	// own mode in force). Unlike Prune it IS part of the config
	// digest: an adaptive campaign executes a different job set, so
	// journals written under different adaptive settings must never
	// mix. AdaptiveAuto is resolved to a definite mode before the
	// config is digested (see applyAdaptive), so the digest pins the
	// decision.
	Adaptive campaign.AdaptiveMode
	// CIEpsilon overrides the config's adaptive stopping half-width
	// when positive (campaign.Config.CIEpsilon). Part of the config
	// digest, like Adaptive, and meaningless without it.
	CIEpsilon float64
	// SkipReport suppresses rendering report.md even for an unsharded
	// run. The distributed worker sets it: a work unit's scratch
	// directory is an intermediate artifact whose records upload to the
	// coordinator, and rendering a full analysis report per unit would
	// charge every unit the cost of the final assembly.
	SkipReport bool
	// Memo, when non-nil, plugs a persistent memo store behind the
	// campaign's in-process result cache, so identical experiments are
	// reused across campaigns and process restarts. The runner scopes
	// every key by the campaign's config digest before it reaches the
	// store — the digest pins plan, golden behaviour and budget, so
	// within one scope the memo keys are sound across processes. It is
	// excluded from the config digest itself: store-served and executed
	// records carry bit-identical outcomes (only the journal's pruned
	// label differs, which record equality ignores).
	Memo MemoStore
}

// MemoStore is a digest-scoped persistent memo store (see
// Options.Memo). internal/store implements it; implementations must
// be safe for concurrent use, must not retain the entry's Diffs map,
// and should report misses on internal errors so a degraded store
// falls back to execution.
type MemoStore interface {
	GetMemo(scope string, k campaign.MemoKey) (campaign.MemoEntry, bool)
	PutMemo(scope string, k campaign.MemoKey, e campaign.MemoEntry)
}

// scopedMemo adapts a MemoStore into the campaign engine's
// un-scoped MemoBackend by pinning the scope.
type scopedMemo struct {
	store MemoStore
	scope string
}

func (s scopedMemo) GetMemo(k campaign.MemoKey) (campaign.MemoEntry, bool) {
	return s.store.GetMemo(s.scope, k)
}

func (s scopedMemo) PutMemo(k campaign.MemoKey, e campaign.MemoEntry) {
	s.store.PutMemo(s.scope, k, e)
}

// Defaults for the zero values of the supervision knobs.
const (
	defaultMaxRetries      = 3
	defaultQuarantineAfter = 3
)

// maxRetries resolves the I/O retry count (0 → default, negative →
// disabled).
func (o *Options) maxRetries() int {
	switch {
	case o.MaxRetries == 0:
		return defaultMaxRetries
	case o.MaxRetries < 0:
		return 0
	}
	return o.MaxRetries
}

// quarantineAfter resolves the quarantine threshold (0 → default,
// negative → disabled).
func (o *Options) quarantineAfter() int {
	switch {
	case o.QuarantineAfter == 0:
		return defaultQuarantineAfter
	case o.QuarantineAfter < 0:
		return 0
	}
	return o.QuarantineAfter
}

// applySupervision folds the supervision knobs into the campaign
// configuration. It must run before the config is validated, digested
// or planned, so journals record the effective budget.
func (o *Options) applySupervision(cfg *campaign.Config) {
	if o.RunBudgetSteps > 0 {
		cfg.Budget.Steps = o.RunBudgetSteps
	}
	if o.RunWallBudget > 0 {
		cfg.Budget.Wall = o.RunWallBudget
	}
	if cfg.OnJobError == nil {
		if after := o.quarantineAfter(); after > 0 {
			cfg.OnJobError = campaign.QuarantinePolicy(after, o.Logf)
		}
	}
}

// applyAdaptive folds the adaptive overrides into the configuration
// and resolves AdaptiveAuto to a definite mode. Resolution must
// happen before the config is digested or planned — the adaptive job
// set depends on it — and before the runner's timing wrapper installs
// its Instrument hook, which would otherwise flip an Auto decision
// between digest time and execution time.
func (o *Options) applyAdaptive(cfg *campaign.Config) {
	if o.Adaptive != campaign.AdaptiveOff {
		cfg.Adaptive = o.Adaptive
	}
	if o.CIEpsilon > 0 {
		cfg.CIEpsilon = o.CIEpsilon
	}
	if cfg.Adaptive == campaign.AdaptiveAuto {
		if cfg.AdaptiveEnabled() {
			cfg.Adaptive = campaign.AdaptiveForce
		} else {
			cfg.Adaptive = campaign.AdaptiveOff
		}
	}
}

func (o *Options) normalise() error {
	if o.Name == "" {
		o.Name = "custom"
	}
	if o.Tier == "" {
		o.Tier = "custom"
	}
	if o.Shards <= 0 {
		o.Shards = 1
		o.Shard = 0
	}
	if o.Shard < 0 || o.Shard >= o.Shards {
		return fmt.Errorf("runner: shard %d outside [0,%d)", o.Shard, o.Shards)
	}
	if o.Dir == "" {
		return errors.New("runner: no artifact directory")
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// RunResult is the outcome of an orchestrated run.
type RunResult struct {
	// Result is the aggregated campaign result. For a sharded run it
	// covers only this shard's jobs (plus replayed ones); Assemble
	// merges shards into the complete result.
	Result *campaign.Result
	// Metrics is the final observability snapshot.
	Metrics Metrics
	// Failures is the deduplicated failure catalog.
	Failures []report.FailureCase
	// Dir is the artifact directory.
	Dir string
}

// jobKey identifies one (injection, test case) job independently of
// process lifetime; inject.Injection.String() is unique within a
// plan.
type jobKey struct {
	inj     string
	caseIdx int
}

// jobIndexer maps jobs to their position in the campaign's
// deterministic enumeration (plan-index major, case-index minor).
type jobIndexer struct {
	idx   map[jobKey]int
	cases int
}

func newJobIndexer(plan []inject.Injection, cases int) *jobIndexer {
	ji := &jobIndexer{idx: make(map[jobKey]int, len(plan)*cases), cases: cases}
	for pi, inj := range plan {
		s := inj.String()
		for ci := 0; ci < cases; ci++ {
			ji.idx[jobKey{s, ci}] = pi*cases + ci
		}
	}
	return ji
}

func (ji *jobIndexer) index(inj inject.Injection, caseIdx int) (int, bool) {
	i, ok := ji.idx[jobKey{inj.String(), caseIdx}]
	return i, ok
}

// RunInstance resolves a named instance from the registry and runs
// it.
func RunInstance(name string, tier Tier, opts Options) (*RunResult, error) {
	def, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	cfg, err := def.Config(tier)
	if err != nil {
		return nil, fmt.Errorf("runner: building %s/%s: %w", name, tier, err)
	}
	opts.Name = name
	opts.Tier = tier
	return Run(cfg, opts)
}

// Run executes one campaign (or one shard of it) with journaling,
// progress tracking and failure dedupe, writing the artifact set
// under opts.Dir. A run interrupted by a kill is resumed by calling
// Run again with opts.Resume: completed jobs replay from the journal
// and only the remainder executes, converging to the bit-identical
// result of an uninterrupted run.
func Run(cfg campaign.Config, opts Options) (*RunResult, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	opts.applySupervision(&cfg)
	if opts.Prune != campaign.PruneAuto {
		cfg.Prune = opts.Prune
	}
	opts.applyAdaptive(&cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	adaptive := cfg.AdaptiveEnabled()
	if adaptive && opts.Shards > 1 {
		return nil, fmt.Errorf("runner: adaptive campaigns cannot be statically sharded — the job set is discovered at run time; use one shard or the distributed coordinator")
	}

	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	sys := cfg.System()
	ji := newJobIndexer(plan, len(cfg.TestCases))

	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating artifact dir: %w", err)
	}
	l := layout{dir: opts.Dir}

	digests, err := goldenDigests(cfg)
	if err != nil {
		return nil, err
	}
	snap, err := newSnapshot(opts.Name, opts.Tier, cfg, len(plan), digests)
	if err != nil {
		return nil, err
	}
	if err := writeSnapshot(l.configPath(), snap, opts.Resume); err != nil {
		return nil, err
	}
	if opts.Memo != nil {
		cfg.Memo = scopedMemo{store: opts.Memo, scope: snap.Digest}
	}
	// A process handed an explicit job set (a distributed worker
	// running a coordinator-carved unit, signalled by ExcludeJobs)
	// executes it as a fixed matrix slice: the coordinator owns the
	// adaptive schedule and decided these jobs already. The snapshot
	// above keeps the adaptive fields, so the worker's journal still
	// binds to the adaptive campaign's digest.
	if adaptive && opts.ExcludeJobs != nil {
		cfg.Adaptive = campaign.AdaptiveOff
	}

	journalPath := l.journalPath(opts.Shard, opts.Shards)

	// Restore completed jobs from the journal.
	done := make(map[int]bool)
	var replay []campaign.RunRecord
	if opts.Resume {
		hdr, recs, _, err := loadJournal(journalPath)
		if err != nil {
			return nil, err
		}
		if hdr.Type != "" && hdr.ConfigDigest != snap.Digest {
			return nil, fmt.Errorf("runner: journal %s belongs to config %s, not %s — refusing to mix campaigns: %w",
				journalPath, hdr.ConfigDigest, snap.Digest, ErrDigestMismatch)
		}
		for _, r := range recs {
			rec, err := r.RunRecord()
			if err != nil {
				return nil, err
			}
			job, ok := ji.index(rec.Injection, rec.CaseIndex)
			if !ok {
				return nil, fmt.Errorf("runner: journal %s contains foreign job %v case %d",
					journalPath, rec.Injection, rec.CaseIndex)
			}
			if opts.ExcludeJobs != nil && opts.ExcludeJobs(job) {
				continue // another process owns this job's record
			}
			if done[job] {
				continue // duplicate append from a racy predecessor
			}
			done[job] = true
			replay = append(replay, rec)
			if opts.OnRecord != nil {
				if err := opts.OnRecord(r, true); err != nil {
					return nil, err
				}
			}
		}
	} else if st, err := os.Stat(journalPath); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("runner: %s already exists — pass Resume to continue it or use a fresh artifact directory", journalPath)
	}

	jw, err := openJournal(journalPath, header{
		Type: "header", Version: journalVersionFor(adaptive),
		Instance: opts.Name, Tier: string(opts.Tier),
		Shard: opts.Shard, Shards: opts.Shards,
		ConfigDigest: snap.Digest,
	})
	if err != nil {
		return nil, err
	}
	defer jw.Close()

	// This shard's share of the job space (minus excluded jobs). For
	// an adaptive campaign this is an upper bound — the scheduler
	// discovers the executed subset at run time and typically stops
	// far short of it, so the tracker's ETA is conservative.
	planned := 0
	for job := 0; job < snap.TotalRuns; job++ {
		if job%opts.Shards != opts.Shard {
			continue
		}
		if opts.ExcludeJobs != nil && opts.ExcludeJobs(job) {
			continue
		}
		planned++
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = defaultWorkers()
	}
	trk := newTracker(Metrics{
		Instance: opts.Name, Tier: string(opts.Tier),
		Shard: opts.Shard, Shards: opts.Shards,
		Workers:     workers,
		TotalRuns:   snap.TotalRuns,
		PlannedRuns: planned,
	}, opts.LogInterval, opts.Logf)
	ddp := newDeduper(sys)
	for _, rec := range replay {
		trk.absorb(rec, 0, true)
		ddp.add(rec)
	}
	if len(replay) > 0 {
		opts.Logf("%s/%s shard %d/%d: resumed %d/%d runs from %s",
			opts.Name, opts.Tier, opts.Shard+1, opts.Shards, len(replay), planned, journalPath)
	}

	cfg.Replay = replay
	cfg.Skip = func(inj inject.Injection, caseIdx int) bool {
		job, ok := ji.index(inj, caseIdx)
		if !ok {
			return true
		}
		if job%opts.Shards != opts.Shard || done[job] {
			return true
		}
		return opts.ExcludeJobs != nil && opts.ExcludeJobs(job)
	}
	cfg.Abort = opts.Abort

	// Wrap Instrument to stamp each run's start time (for worker
	// utilisation), preserving any caller instrumentation.
	userInstrument := cfg.Instrument
	cfg.Instrument = func(inst campaign.Instance, caseIdx int) (any, error) {
		att := &timedAttachment{start: time.Now()}
		if userInstrument != nil {
			user, err := userInstrument(inst, caseIdx)
			if err != nil {
				return nil, err
			}
			att.user = user
		}
		return att, nil
	}
	// The timing wrapper observes nothing before the injection
	// instant, so it must not disable checkpoint fast-forward the way
	// genuine caller instrumentation (monitors, recovery hooks) does
	// under CheckpointAuto. Force checkpoints when the wrapper is the
	// only instrumentation; unsupported targets still fall back to
	// full replay inside the campaign engine.
	if userInstrument == nil && cfg.Checkpoints == campaign.CheckpointAuto {
		cfg.Checkpoints = campaign.CheckpointForce
	}
	// Same reasoning for pruning: PruneAuto backs off under an
	// Instrument hook because pruned runs never build an instance, so
	// the hook would be skipped — but the timing wrapper tolerates
	// that (a pruned run has no meaningful duration to time).
	if userInstrument == nil && cfg.Prune == campaign.PruneAuto {
		cfg.Prune = campaign.PruneForce
	}

	// The serial observer path: journal, dedupe, metrics, then any
	// caller observer (with its own attachment restored).
	var observeErr error
	userObserver := cfg.Observer
	cfg.Observer = func(rec campaign.RunRecord) {
		var dur time.Duration
		if att, ok := rec.Attachment.(*timedAttachment); ok {
			dur = time.Since(att.start)
			rec.Attachment = att.user
		}
		if observeErr == nil {
			job, ok := ji.index(rec.Injection, rec.CaseIndex)
			if !ok {
				observeErr = fmt.Errorf("runner: observed unplanned job %v case %d", rec.Injection, rec.CaseIndex)
			} else if jrec, err := newRecord(job, rec); err != nil {
				observeErr = err
			} else if err := retryIO(opts.maxRetries(), opts.Logf, "journal append", func() error {
				return jw.Append(jrec)
			}); err != nil {
				observeErr = err
			} else if opts.OnRecord != nil {
				if err := opts.OnRecord(jrec, false); err != nil {
					observeErr = err
				}
			}
		}
		trk.absorb(rec, dur, false)
		ddp.add(rec)
		trk.maybeLog(ddp.unique())
		if userObserver != nil {
			userObserver(rec)
		}
	}

	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	if observeErr != nil {
		return nil, observeErr
	}
	if err := jw.Close(); err != nil {
		return nil, err
	}

	return finalise(res, l, trk, ddp, opts)
}

// finalise writes the closing artifacts (metrics.json, failures.md
// and — for unsharded or assembled runs — report.md) and packages the
// RunResult.
func finalise(res *campaign.Result, l layout, trk *tracker, ddp *deduper, opts Options) (*RunResult, error) {
	trk.m.UniqueFailures = ddp.unique()
	metrics := trk.snapshot(time.Now())
	retries := opts.maxRetries()
	if err := retryIO(retries, opts.Logf, "writing metrics.json", func() error {
		return writeMetrics(l.metricsPath(), metrics)
	}); err != nil {
		return nil, err
	}
	failures := ddp.failures()
	if err := retryIO(retries, opts.Logf, "writing failures.md", func() error {
		return writeFileAtomic(l.failuresPath(), []byte(report.FailureTable(failures)))
	}); err != nil {
		return nil, err
	}
	if opts.Shards == 1 && !opts.SkipReport {
		md, err := report.Markdown(res, report.MarkdownOptions{
			Title:   fmt.Sprintf("Campaign %s/%s", opts.Name, opts.Tier),
			Latency: true, Uniform: true,
		})
		if err != nil {
			return nil, err
		}
		if err := retryIO(retries, opts.Logf, "writing report.md", func() error {
			return writeFileAtomic(l.reportPath(), []byte(md))
		}); err != nil {
			return nil, err
		}
	} else {
		opts.Logf("%s/%s: shard %d/%d journaled; run Assemble over %s for the final report",
			opts.Name, opts.Tier, opts.Shard+1, opts.Shards, opts.Dir)
	}
	return &RunResult{Result: res, Metrics: metrics, Failures: failures, Dir: opts.Dir}, nil
}

// Assemble merges every shard journal under opts.Dir into the
// complete campaign result: all records replay into the aggregates,
// nothing re-executes, and the final report renders from the
// journals alone. It fails if any job of the injection space is
// missing, so a partial shard set cannot masquerade as a finished
// campaign.
func Assemble(cfg campaign.Config, opts Options) (*RunResult, error) {
	opts.Shards = 1 // the assembled view is unsharded
	opts.Shard = 0
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	// Apply the same supervision and adaptive overrides as Run so the
	// config digest matches the shard journals being assembled.
	opts.applySupervision(&cfg)
	opts.applyAdaptive(&cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	sys := cfg.System()
	ji := newJobIndexer(plan, len(cfg.TestCases))
	l := layout{dir: opts.Dir}

	paths, err := l.journalPaths()
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("runner: no journals under %s", opts.Dir)
	}

	digests, err := goldenDigests(cfg)
	if err != nil {
		return nil, err
	}
	snap, err := newSnapshot(opts.Name, opts.Tier, cfg, len(plan), digests)
	if err != nil {
		return nil, err
	}
	if err := writeSnapshot(l.configPath(), snap, true); err != nil {
		return nil, err
	}

	// seen maps each job to the first record claiming it. Overlapping
	// records across shard journals are legal — a resumed shard or a
	// reassigned distributed lease appends the same content twice —
	// but only when the content is identical: a conflicting duplicate
	// means two processes disagreed about the simulation, and merging
	// would silently produce a bad matrix.
	seen := make(map[int]Record)
	var replay []campaign.RunRecord
	for _, path := range paths {
		hdr, recs, _, err := loadJournal(path)
		if err != nil {
			return nil, err
		}
		if hdr.Type != "" && hdr.ConfigDigest != snap.Digest {
			return nil, fmt.Errorf("runner: journal %s belongs to config %s, not %s: %w",
				path, hdr.ConfigDigest, snap.Digest, ErrDigestMismatch)
		}
		for _, r := range recs {
			rec, err := r.RunRecord()
			if err != nil {
				return nil, err
			}
			job, ok := ji.index(rec.Injection, rec.CaseIndex)
			if !ok {
				return nil, fmt.Errorf("runner: journal %s contains foreign job %v case %d", path, rec.Injection, rec.CaseIndex)
			}
			if prev, dup := seen[job]; dup {
				// Journals disagree about the job index ↔ injection
				// mapping exactly when the record content differs, so
				// compare against the first claimant keyed by the
				// replayed job index, not the raw r.Job field (which a
				// differently-sharded journal numbers identically).
				r.Job = job
				prev.Job = job
				if !RecordsEqual(prev, r) {
					return nil, fmt.Errorf("runner: journal %s: job %d (%v case %d) recorded with different content elsewhere: %w",
						path, job, rec.Injection, rec.CaseIndex, ErrConflictingRecords)
				}
				continue
			}
			r.Job = job
			seen[job] = r
			replay = append(replay, rec)
		}
	}
	if cfg.AdaptiveEnabled() {
		// An adaptive campaign's job set is decided by its sequential
		// scheduler, not by the matrix size, so "every job present" is
		// the wrong completeness test. Instead, rebuild the schedule —
		// it is a deterministic function of the config — feed it every
		// journaled record, and require that it declares itself done:
		// every confidence interval closed (or its population
		// exhausted) with no scheduled sample outstanding.
		planner, err := campaign.NewAdaptivePlanner(cfg)
		if err != nil {
			return nil, err
		}
		for _, rec := range replay {
			if err := planner.Observe(rec); err != nil {
				return nil, fmt.Errorf("runner: assembling adaptive campaign: %w", err)
			}
		}
		if !planner.Done() {
			return nil, fmt.Errorf("runner: journals cover %d settled runs but %d scheduled jobs are outstanding; resume the campaign first: %w",
				planner.Settled(), planner.Outstanding(), ErrScheduleIncomplete)
		}
	} else if len(seen) != snap.TotalRuns {
		return nil, fmt.Errorf("runner: journals cover %d of %d runs — %d missing; run the remaining shards (or resume the killed ones) first",
			len(seen), snap.TotalRuns, snap.TotalRuns-len(seen))
	}

	trk := newTracker(Metrics{
		Instance: opts.Name, Tier: string(opts.Tier),
		Shards: 1, TotalRuns: snap.TotalRuns, PlannedRuns: snap.TotalRuns,
	}, 0, nil)
	ddp := newDeduper(sys)
	for _, rec := range replay {
		trk.absorb(rec, 0, true)
		ddp.add(rec)
	}

	cfg.Replay = replay
	cfg.Skip = func(inject.Injection, int) bool { return true }
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	return finalise(res, l, trk, ddp, opts)
}

// timedAttachment threads the run start time through the campaign's
// attachment channel alongside any caller attachment.
type timedAttachment struct {
	start time.Time
	user  any
}
