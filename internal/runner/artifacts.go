package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/sim"
	"propane/internal/trace"
)

// Artifact directory layout, per campaign run:
//
//	<dir>/
//	    config.json     frozen configuration snapshot + digest
//	    journal.jsonl   per-run outcomes (journal-KofN.jsonl when sharded)
//	    metrics.json    final throughput/coverage metrics
//	    failures.md     deduplicated propagation-failure catalog
//	    report.md       full analysis report (unsharded or assembled)

// layout resolves the artifact paths of one campaign directory.
type layout struct{ dir string }

func (l layout) configPath() string   { return filepath.Join(l.dir, "config.json") }
func (l layout) metricsPath() string  { return filepath.Join(l.dir, "metrics.json") }
func (l layout) failuresPath() string { return filepath.Join(l.dir, "failures.md") }
func (l layout) reportPath() string   { return filepath.Join(l.dir, "report.md") }

func (l layout) journalPath(shard, shards int) string {
	if shards <= 1 {
		return filepath.Join(l.dir, "journal.jsonl")
	}
	return filepath.Join(l.dir, fmt.Sprintf("journal-%dof%d.jsonl", shard+1, shards))
}

// journalPaths globs every journal in the directory (all shards).
func (l layout) journalPaths() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(l.dir, "journal*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("runner: listing journals: %w", err)
	}
	return paths, nil
}

// snapshot is the frozen, digestable form of a campaign
// configuration. It pins everything the injection plan and the run
// outcomes depend on — including per-case golden-run digests, so two
// processes disagreeing about the simulated target cannot silently
// share a journal.
type snapshot struct {
	Instance        string            `json:"instance"`
	Tier            string            `json:"tier"`
	Target          string            `json:"target"`
	Dual            bool              `json:"dual,omitempty"`
	Cases           [][2]float64      `json:"cases"` // [mass_kg, velocity_ms]
	TimesMs         []int64           `json:"times_ms"`
	Bits            []uint            `json:"bits,omitempty"`
	Models          []string          `json:"models,omitempty"`
	HorizonMs       int64             `json:"horizon_ms"`
	DirectWindowMs  int64             `json:"direct_window_ms"`
	FaultDurationMs int64             `json:"fault_duration_ms,omitempty"`
	OnlyModule      string            `json:"only_module,omitempty"`
	Tolerances      map[string]uint16 `json:"tolerances,omitempty"`
	// RunBudgetSteps pins the deterministic per-run watchdog: it
	// decides which runs are classified as hangs, so it is part of the
	// digest. The wall-clock backstop is deliberately excluded — it is
	// non-deterministic and must never change a journaled outcome on a
	// healthy run. omitempty keeps pre-supervision digests valid.
	RunBudgetSteps int64 `json:"run_budget_steps,omitempty"`
	// Adaptive and CIEpsilon pin adaptive sequential sampling
	// (campaign.AdaptiveMode): they decide which jobs execute at all,
	// so two processes must agree on them to share a journal. Both are
	// omitted for full-matrix campaigns, keeping pre-adaptive digests
	// valid, and record the RESOLVED state — an AdaptiveAuto config
	// that declines digests identically to AdaptiveOff.
	Adaptive      bool     `json:"adaptive,omitempty"`
	CIEpsilon     float64  `json:"ci_epsilon,omitempty"`
	PlanSize      int      `json:"plan_size"`
	TotalRuns     int      `json:"total_runs"`
	GoldenDigests []string `json:"golden_digests"`
	Digest        string   `json:"digest,omitempty"`
}

// newSnapshot freezes a campaign configuration. goldens may be nil
// when golden digests are supplied separately.
func newSnapshot(name string, tier Tier, cfg campaign.Config, planSize int, goldenDigests []string) (snapshot, error) {
	s := snapshot{
		Instance:        name,
		Tier:            string(tier),
		Target:          "arrestor",
		Dual:            cfg.Dual,
		TimesMs:         make([]int64, 0, len(cfg.Times)),
		Bits:            cfg.Bits,
		HorizonMs:       int64(cfg.HorizonMs),
		DirectWindowMs:  int64(cfg.DirectWindowMs),
		FaultDurationMs: int64(cfg.FaultDurationMs),
		OnlyModule:      cfg.OnlyModule,
		RunBudgetSteps:  cfg.Budget.Steps,
		PlanSize:        planSize,
		TotalRuns:       planSize * len(cfg.TestCases),
		GoldenDigests:   goldenDigests,
	}
	if cfg.AdaptiveEnabled() {
		s.Adaptive = true
		s.CIEpsilon = cfg.ResolvedCIEpsilon()
	}
	switch {
	case cfg.Custom != nil:
		s.Target = cfg.Custom.Name
	case cfg.Dual:
		s.Target = "arrestor-dual"
	}
	for _, tc := range cfg.TestCases {
		s.Cases = append(s.Cases, [2]float64{tc.MassKg, tc.VelocityMS})
	}
	for _, at := range cfg.Times {
		s.TimesMs = append(s.TimesMs, int64(at))
	}
	for _, m := range cfg.Models {
		spec, err := inject.Spec(m)
		if err != nil {
			return snapshot{}, err
		}
		s.Models = append(s.Models, spec)
	}
	if len(cfg.Tolerances) > 0 {
		s.Tolerances = map[string]uint16(cfg.Tolerances)
	}
	d, err := s.digest()
	if err != nil {
		return snapshot{}, err
	}
	s.Digest = d
	return s, nil
}

// digest hashes the snapshot's canonical JSON form (Digest itself
// excluded). encoding/json renders map keys sorted, so the rendering
// is deterministic.
func (s snapshot) digest() (string, error) {
	s.Digest = ""
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("runner: hashing config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// goldenDigests records one golden run per test case and hashes each
// trace. The digests pin the target's deterministic behaviour: a
// resumed process recomputes them and refuses to extend a journal
// recorded against a different simulation.
func goldenDigests(cfg campaign.Config) ([]string, error) {
	digests := make([]string, len(cfg.TestCases))
	for i, tc := range cfg.TestCases {
		inst, err := cfg.NewInstance(tc, nil)
		if err != nil {
			return nil, fmt.Errorf("runner: golden run %d: %w", i, err)
		}
		// The trace is hashed and discarded, so the recorder's buffers
		// are safe to recycle (see the aliasing hazard on
		// AcquireRecorder).
		rec, err := trace.AcquireRecorder(inst.Bus(), int(cfg.HorizonMs))
		if err != nil {
			return nil, fmt.Errorf("runner: golden run %d: %w", i, err)
		}
		inst.Kernel().AddPostHook(rec.Hook())
		// The golden run executes under the same watchdog as the
		// injection runs: an uninjected target that crashes or hangs is
		// a broken config, reported before any journal is touched.
		inst.Kernel().SetBudget(cfg.Budget)
		if err := goldenGuard(inst, cfg.HorizonMs); err != nil {
			return nil, fmt.Errorf("runner: golden run %d: %w", i, err)
		}
		if inst.Kernel().Exhausted() {
			return nil, fmt.Errorf("runner: golden run %d exceeded the run budget (%d steps used) — raise the budget or fix the target",
				i, inst.Kernel().BudgetUsed())
		}
		h := sha256.New()
		if _, err := rec.Trace().WriteTo(h); err != nil {
			return nil, fmt.Errorf("runner: hashing golden run %d: %w", i, err)
		}
		digests[i] = hex.EncodeToString(h.Sum(nil))
		trace.ReleaseRecorder(rec)
	}
	return digests, nil
}

// goldenGuard drives the golden run, converting a target panic into
// an error instead of taking the orchestrator down.
func goldenGuard(inst campaign.RunnableInstance, horizon sim.Millis) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("uninjected target crashed: %v", r)
		}
	}()
	inst.Run(horizon)
	return nil
}

// writeSnapshot persists the config snapshot, or — when one already
// exists — verifies it matches, so an artifact directory can never
// mix campaigns.
func writeSnapshot(path string, s snapshot, resume bool) error {
	if data, err := os.ReadFile(path); err == nil {
		var existing snapshot
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("runner: %s is corrupt: %w", path, err)
		}
		if existing.Digest != s.Digest {
			return fmt.Errorf("runner: %s was recorded for config %s, current config is %s — use a fresh artifact directory: %w",
				path, existing.Digest, s.Digest, ErrDigestMismatch)
		}
		return nil
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("runner: reading %s: %w", path, err)
	} else if resume {
		// Resuming without a snapshot is suspicious but recoverable:
		// fall through and write it.
		_ = err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding config snapshot: %w", err)
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// writeFileAtomic writes via a temp file + rename so a kill cannot
// leave a half-written artifact behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("runner: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("runner: installing %s: %w", path, err)
	}
	return nil
}
