package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"propane/internal/campaign"
	"propane/internal/inject"
	"propane/internal/sim"
	"propane/internal/trace"
)

// The journal is the campaign's write-ahead record: one JSON object
// per line, appended as each injection run completes on the serial
// observer path. The first line is a header binding the journal to a
// config digest, so a resumed process refuses to mix records from a
// different campaign. A process killed mid-write leaves at most one
// torn trailing line, which loading tolerates; everything before it
// replays losslessly into the campaign aggregates (campaign.Replay),
// so an interrupted campaign converges to the uninterrupted result.

// journalVersion guards the record schema. Version 2 added the
// outcome/detail/attempts fields; version 3 added the pruned label.
// Both are additive and omitted when empty, so older journals load
// unchanged (records without an outcome are classified from their
// diffs on replay; records without a pruned label count as executed).
const journalVersion = 3

// journalVersionAdaptive labels journals written by adaptive
// campaigns (campaign.AdaptiveMode), whose records carry the
// additive round label. Non-adaptive campaigns keep stamping
// journalVersion, so an AdaptiveOff run's journal stays byte-
// identical to earlier builds'. Loading accepts either.
const journalVersionAdaptive = 4

// journalVersionFor returns the header version a campaign stamps on
// its journals: version 4 when adaptive sampling decides the job set,
// version 3 otherwise.
func journalVersionFor(adaptive bool) int {
	if adaptive {
		return journalVersionAdaptive
	}
	return journalVersion
}

// Sentinel errors for journal and assembly integrity failures, so
// orchestration layers (and operators' scripts) can distinguish "the
// journals describe a different campaign" from ordinary I/O trouble.
var (
	// ErrDigestMismatch reports a journal or config snapshot recorded
	// against a different campaign configuration than the one being
	// run, resumed or assembled.
	ErrDigestMismatch = errors.New("config digest mismatch")
	// ErrConflictingRecords reports two journal records claiming the
	// same job with different content — two processes disagreed about
	// the simulation, and merging them would silently produce a bad
	// matrix.
	ErrConflictingRecords = errors.New("conflicting journal records")
	// ErrScheduleIncomplete reports an assembly over journals whose
	// records do not close the adaptive sampling schedule: the
	// confidence intervals the records imply still demand more
	// samples, so the campaign must be resumed, not assembled.
	ErrScheduleIncomplete = errors.New("adaptive schedule incomplete")
)

// RecordsEqual reports whether two journaled records describe the
// identical run outcome. Journal records are content-keyed by their
// job index; equality of the full content is what makes overlapping
// appends (a reassigned lease, a duplicated shard journal) idempotent
// rather than corrupting. Pruned is deliberately NOT compared: a
// pruned and an executed record of the same job carry bit-identical
// outcomes by construction, and overlapping journals from processes
// with different prune settings must stay idempotent. Round is
// excluded for the same reason: it labels when the adaptive scheduler
// dispatched the run, not what the run observed — a distributed
// worker executing a coordinator-carved unit journals round 0 for the
// exact outcome the coordinator's schedule labels with a round.
func RecordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.Job != b.Job ||
		a.Module != b.Module || a.Signal != b.Signal ||
		a.AtMs != b.AtMs || a.Model != b.Model || a.Case != b.Case ||
		a.Fired != b.Fired || a.FiredAtMs != b.FiredAtMs ||
		a.SystemFailure != b.SystemFailure || a.FailureAtMs != b.FailureAtMs ||
		a.Outcome != b.Outcome || a.Detail != b.Detail || a.Attempts != b.Attempts {
		return false
	}
	if len(a.Diffs) != len(b.Diffs) {
		return false
	}
	for sig, d := range a.Diffs {
		if bd, ok := b.Diffs[sig]; !ok || bd != d {
			return false
		}
	}
	return true
}

// header is the journal's first line.
type header struct {
	Type         string `json:"type"` // "header"
	Version      int    `json:"version"`
	Instance     string `json:"instance"`
	Tier         string `json:"tier"`
	Shard        int    `json:"shard"`
	Shards       int    `json:"shards"`
	ConfigDigest string `json:"config_digest"`
}

// DiffRecord is the journaled form of one signal's Golden Run
// Comparison result; only deviating signals are stored.
type DiffRecord struct {
	FirstMs int64 `json:"first_ms"`
	LastMs  int64 `json:"last_ms"`
	Count   int   `json:"count"`
}

// Record is the journaled outcome of one injection run.
type Record struct {
	Type string `json:"type"` // "run"
	// Job is the run's position in the campaign's deterministic job
	// enumeration (plan-index major, case-index minor).
	Job int `json:"job"`
	// Module, Signal, AtMs and Model identify the injection; Model is
	// the inject.Spec rendering, so records round-trip.
	Module string `json:"module"`
	Signal string `json:"signal"`
	AtMs   int64  `json:"at_ms"`
	Model  string `json:"model"`
	// Case is the workload point index.
	Case int `json:"case"`
	// Fired and FiredAtMs report whether and when the trap fired.
	Fired     bool  `json:"fired"`
	FiredAtMs int64 `json:"fired_at_ms,omitempty"`
	// SystemFailure and FailureAtMs report system-output deviation.
	SystemFailure bool  `json:"system_failure,omitempty"`
	FailureAtMs   int64 `json:"failure_at_ms,omitempty"`
	// Diffs holds the deviating signals only.
	Diffs map[string]DiffRecord `json:"diffs,omitempty"`
	// Outcome classifies the run (ok/deviation/crash/hang/
	// quarantined). Empty in version-1 journals; replay then derives
	// ok-or-deviation from the diffs.
	Outcome string `json:"outcome,omitempty"`
	// Detail carries the crash's panic value or the quarantined job's
	// last worker error.
	Detail string `json:"detail,omitempty"`
	// Attempts is the consecutive-failure count behind a quarantine.
	Attempts int `json:"attempts,omitempty"`
	// Pruned labels how a pruned run's outcome was obtained (see the
	// campaign.Pruned* constants); empty for executed runs. Excluded
	// from RecordsEqual — see there.
	Pruned string `json:"pruned,omitempty"`
	// Round is the 1-based adaptive sampling round that scheduled the
	// run (campaign.RunRecord.Round); 0 for full-matrix campaigns and
	// for externally assigned job lists. Excluded from RecordsEqual —
	// see there.
	Round int `json:"round,omitempty"`
}

// newRecord converts a live campaign observation into its journaled
// form.
func newRecord(job int, rec campaign.RunRecord) (Record, error) {
	spec, err := inject.Spec(rec.Injection.Model)
	if err != nil {
		return Record{}, fmt.Errorf("runner: journaling %v: %w", rec.Injection, err)
	}
	r := Record{
		Type:          "run",
		Job:           job,
		Module:        rec.Injection.Module,
		Signal:        rec.Injection.Signal,
		AtMs:          int64(rec.Injection.At),
		Model:         spec,
		Case:          rec.CaseIndex,
		Fired:         rec.Fired,
		FiredAtMs:     int64(rec.FiredAt),
		SystemFailure: rec.SystemFailure,
		FailureAtMs:   int64(rec.FailureAt),
		Outcome:       string(rec.Outcome),
		Detail:        rec.Detail,
		Attempts:      rec.Attempts,
		Pruned:        rec.Pruned,
		Round:         rec.Round,
	}
	for sig, d := range rec.Diffs {
		if !d.Differs() {
			continue
		}
		if r.Diffs == nil {
			r.Diffs = make(map[string]DiffRecord)
		}
		r.Diffs[sig] = DiffRecord{FirstMs: int64(d.First), LastMs: int64(d.Last), Count: d.Count}
	}
	return r, nil
}

// RunRecord converts a journaled record back into the campaign form
// consumed by Config.Replay.
func (r Record) RunRecord() (campaign.RunRecord, error) {
	model, err := inject.ParseSpec(r.Model)
	if err != nil {
		return campaign.RunRecord{}, fmt.Errorf("runner: journal record job %d: %w", r.Job, err)
	}
	rec := campaign.RunRecord{
		Injection: inject.Injection{
			Module: r.Module,
			Signal: r.Signal,
			At:     sim.Millis(r.AtMs),
			Model:  model,
		},
		CaseIndex:     r.Case,
		Fired:         r.Fired,
		FiredAt:       sim.Millis(r.FiredAtMs),
		SystemFailure: r.SystemFailure,
		FailureAt:     sim.Millis(r.FailureAtMs),
		Outcome:       campaign.Outcome(r.Outcome),
		Detail:        r.Detail,
		Attempts:      r.Attempts,
		Pruned:        r.Pruned,
		Round:         r.Round,
	}
	if len(r.Diffs) > 0 {
		rec.Diffs = make(map[string]trace.Diff, len(r.Diffs))
		for sig, d := range r.Diffs {
			rec.Diffs[sig] = trace.Diff{
				Signal: sig,
				First:  sim.Millis(d.FirstMs),
				Last:   sim.Millis(d.LastMs),
				Count:  d.Count,
			}
		}
	}
	return rec, nil
}

// syncEvery bounds the data a crash can lose to this many records
// (the torn tail beyond the last sync is recovered line-by-line
// anyway on most filesystems; the sync is for power loss).
const syncEvery = 256

// journalWriter appends records to a journal file.
type journalWriter struct {
	f       *os.File
	pending int
}

// openJournal opens (or creates) the journal for appending and writes
// the header when the file holds no valid content. A torn tail left
// by a killed process is truncated away before appending, so the
// journal never grows a merged corrupt line. An existing header must
// match the expected one — most importantly its config digest — so a
// resume against a drifted configuration fails loudly instead of
// corrupting the artifact set.
func openJournal(path string, hdr header) (*journalWriter, error) {
	existing, _, validLen, err := loadJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	if st.Size() > validLen {
		// Cut the torn tail (or, when no valid header survived, the
		// whole file) so appends start on a clean line boundary.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: truncating torn journal tail: %w", err)
		}
	}
	if validLen == 0 {
		line, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: encoding journal header: %w", err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: syncing journal header: %w", err)
		}
		return &journalWriter{f: f}, nil
	}
	if existing.ConfigDigest != hdr.ConfigDigest {
		f.Close()
		return nil, fmt.Errorf("runner: journal %s belongs to config %s, not %s — refusing to mix campaigns: %w",
			path, existing.ConfigDigest, hdr.ConfigDigest, ErrDigestMismatch)
	}
	if existing.Shard != hdr.Shard || existing.Shards != hdr.Shards {
		f.Close()
		return nil, fmt.Errorf("runner: journal %s covers shard %d/%d, not %d/%d",
			path, existing.Shard, existing.Shards, hdr.Shard, hdr.Shards)
	}
	return &journalWriter{f: f}, nil
}

// Append journals one record. Each record is written with a single
// Write call so concurrent readers never see a torn line except at a
// genuine crash point.
func (w *journalWriter) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: encoding journal record: %w", err)
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: appending journal record: %w", err)
	}
	w.pending++
	if w.pending >= syncEvery {
		w.pending = 0
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("runner: syncing journal: %w", err)
		}
	}
	return nil
}

// AppendBatch journals a batch of records with a single Write call —
// the bulk-ingest path of the distributed coordinator, where one
// worker uploads a whole completed unit at once. The one-Write
// contract means a crash tears at most the final line of the batch,
// exactly like Append's per-record guarantee.
func (w *journalWriter) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	buf.Grow(len(recs) * 192)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("runner: encoding journal record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("runner: appending journal batch: %w", err)
	}
	w.pending += len(recs)
	if w.pending >= syncEvery {
		w.pending = 0
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("runner: syncing journal: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the journal.
func (w *journalWriter) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("runner: syncing journal: %w", err)
	}
	return w.f.Close()
}

// loadJournal reads a journal back. A torn final line — the
// signature of a killed process — is discarded; corruption anywhere
// else is an error. A missing file yields a zero header and no
// records. validLen is the byte length of the parseable prefix, so a
// resuming writer can truncate the torn tail before appending.
func loadJournal(path string) (hdr header, recs []Record, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return header{}, nil, 0, nil
	}
	if err != nil {
		return header{}, nil, 0, fmt.Errorf("runner: reading journal: %w", err)
	}
	pos, lineNo := 0, 0
	for pos < len(data) {
		var line []byte
		lineEnd := bytes.IndexByte(data[pos:], '\n')
		complete := lineEnd >= 0
		if complete {
			line = data[pos : pos+lineEnd]
			lineEnd = pos + lineEnd + 1
		} else {
			// No trailing newline: a record append was cut short.
			line = data[pos:]
			lineEnd = len(data)
		}
		lineNo++
		if len(bytes.TrimSpace(line)) == 0 {
			pos = lineEnd
			validLen = int64(lineEnd)
			continue
		}
		if lineNo == 1 {
			if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Type != "header" {
				if !complete {
					// Killed mid-header-write: an empty journal.
					return header{}, nil, 0, nil
				}
				return header{}, nil, 0, fmt.Errorf("runner: journal %s has no valid header", path)
			}
			if hdr.Version < 1 || hdr.Version > journalVersionAdaptive {
				return header{}, nil, 0, fmt.Errorf("runner: journal %s is version %d, want 1..%d", path, hdr.Version, journalVersionAdaptive)
			}
			pos = lineEnd
			validLen = int64(lineEnd)
			continue
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Type != "run" {
			if !complete {
				break // torn tail from a kill — resume re-runs it
			}
			return header{}, nil, 0, fmt.Errorf("runner: journal %s corrupt at line %d", path, lineNo)
		}
		recs = append(recs, rec)
		pos = lineEnd
		validLen = int64(lineEnd)
	}
	return hdr, recs, validLen, nil
}
