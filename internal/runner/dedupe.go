package runner

import (
	"fmt"
	"sort"
	"strings"

	"propane/internal/campaign"
	"propane/internal/model"
	"propane/internal/report"
	"propane/internal/sim"
)

// Failure dedupe: a large campaign produces thousands of deviating
// runs, but most repeat the same propagation over and over. Runs are
// fingerprinted by (injected module, input signal, set of deviating
// module outputs, bucketed system-failure latency); the first run of
// each class is kept as the exemplar and the rest only increment a
// counter, so novel propagations stay visible in the artifact
// listing.

// latencyBucketMs quantises propagation latencies: two runs whose
// system failures appear within the same 100 ms window after the trap
// fired are considered the same failure mode.
const latencyBucketMs = 100

// deduper accumulates failure equivalence classes. It is driven from
// the campaign's serial observer path, so it needs no locking.
type deduper struct {
	sys     *model.System
	classes map[string]*report.FailureCase
}

func newDeduper(sys *model.System) *deduper {
	return &deduper{sys: sys, classes: make(map[string]*report.FailureCase)}
}

// add folds one run into the catalog and reports whether it opened a
// new equivalence class. Non-deviating completed runs are ignored;
// crashes, hangs and quarantined jobs are always catalogued, classed
// by injection location so a panicking module surfaces as one line,
// not thousands.
func (d *deduper) add(rec campaign.RunRecord) (novel bool) {
	switch rec.Outcome {
	case campaign.OutcomeCrash, campaign.OutcomeHang, campaign.OutcomeQuarantined:
		fp := fmt.Sprintf("%s %s/%s", rec.Outcome, rec.Injection.Module, rec.Injection.Signal)
		if c, ok := d.classes[fp]; ok {
			c.Count++
			return false
		}
		example := fmt.Sprintf("%v case %d", rec.Injection, rec.CaseIndex)
		if rec.Detail != "" {
			example += ": " + rec.Detail
		}
		d.classes[fp] = &report.FailureCase{
			Fingerprint:     fp,
			Kind:            string(rec.Outcome),
			Module:          rec.Injection.Module,
			Signal:          rec.Injection.Signal,
			LatencyBucketMs: -1,
			Count:           1,
			Example:         example,
		}
		return true
	}
	if !rec.Fired {
		return false
	}
	mod, err := d.sys.Module(rec.Injection.Module)
	if err != nil {
		return false
	}
	var outputs []string
	for _, o := range mod.Outputs {
		if diff, ok := rec.Diffs[o.Signal]; ok && diff.Differs() {
			outputs = append(outputs, o.Signal)
		}
	}
	if len(outputs) == 0 && !rec.SystemFailure {
		return false // the error never escaped the module
	}
	sort.Strings(outputs)

	bucket := sim.Millis(-1)
	if rec.SystemFailure {
		bucket = (rec.FailureAt - rec.FiredAt) / latencyBucketMs * latencyBucketMs
	}
	fp := fmt.Sprintf("%s/%s->{%s}@%d",
		rec.Injection.Module, rec.Injection.Signal, strings.Join(outputs, ","), bucket)

	if c, ok := d.classes[fp]; ok {
		c.Count++
		return false
	}
	d.classes[fp] = &report.FailureCase{
		Fingerprint:     fp,
		Kind:            "deviation",
		Module:          rec.Injection.Module,
		Signal:          rec.Injection.Signal,
		Outputs:         outputs,
		LatencyBucketMs: int64(bucket),
		Count:           1,
		Example:         fmt.Sprintf("%v case %d", rec.Injection, rec.CaseIndex),
	}
	return true
}

// unique returns the number of equivalence classes seen so far.
func (d *deduper) unique() int { return len(d.classes) }

// failures snapshots the catalog.
func (d *deduper) failures() []report.FailureCase {
	out := make([]report.FailureCase, 0, len(d.classes))
	for _, c := range d.classes {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
