package runner

import (
	"fmt"
	"sort"
	"sync"

	"propane/internal/arrestor"
	"propane/internal/autobrake"
	"propane/internal/campaign"
	"propane/internal/hostile"
	"propane/internal/inject"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/trace"
)

// Tier selects the campaign intensity of a named instance.
type Tier string

const (
	// TierQuick is a scaled-down matrix that finishes in seconds —
	// for smoke tests, CI and orchestration development.
	TierQuick Tier = "quick"
	// TierFull is the production-scale matrix (the paper's grid where
	// the instance reproduces the paper).
	TierFull Tier = "full"
)

// Tiers lists the supported tiers.
func Tiers() []Tier { return []Tier{TierQuick, TierFull} }

// Definition is one named campaign instance: a stable configuration
// selectable by name and tier, replacing ad-hoc "run01" loops with a
// fixed, resumable experiment matrix.
type Definition struct {
	// Name selects the instance (e.g. "paper", "autobrake").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Config builds the campaign configuration for a tier.
	Config func(tier Tier) (campaign.Config, error)
}

// quickGrid is the reduced workload grid shared by the quick tiers.
func quickGrid() ([]physics.TestCase, error) {
	return physics.Grid(2, 2, 8000, 20000, 40, 80)
}

// scaled assembles an arrestor campaign for a tier: the quick tier
// trims the grid, instants and bit positions; the full tier is the
// paper's 4000-injections-per-signal matrix.
func scaled(tier Tier, mutate func(*campaign.Config) error) (campaign.Config, error) {
	var cfg campaign.Config
	switch tier {
	case TierQuick:
		cases, err := quickGrid()
		if err != nil {
			return campaign.Config{}, err
		}
		cfg = campaign.Config{
			Arrestor:       arrestor.DefaultConfig(),
			TestCases:      cases,
			Times:          []sim.Millis{1000, 2500, 4000},
			Bits:           []uint{0, 5, 10, 15},
			HorizonMs:      6000,
			DirectWindowMs: 500,
		}
	case TierFull:
		cfg = campaign.PaperConfig()
	default:
		return campaign.Config{}, fmt.Errorf("runner: unknown tier %q (want %s or %s)", tier, TierQuick, TierFull)
	}
	if mutate != nil {
		if err := mutate(&cfg); err != nil {
			return campaign.Config{}, err
		}
	}
	return cfg, nil
}

// ablationModels is the error-model ablation list: the paper's
// bit-flips plus stuck-ats, a gross replacement and an arithmetic
// offset (Section 6 argues relative orderings should survive the
// model choice; this instance measures whether they do).
func ablationModels() []inject.ErrorModel {
	return []inject.ErrorModel{
		inject.BitFlip{Bit: 3},
		inject.BitFlip{Bit: 12},
		inject.StuckAt{Bit: 3},
		inject.StuckAt{Bit: 3, One: true},
		inject.Replace{Value: 0x5555},
		inject.Offset{Delta: 129},
	}
}

// registry holds the named instances. Keep definitions deterministic:
// the config a (name, tier) pair produces must be stable across
// processes, because journals and shards key on its digest. regMu
// guards it because Register can add DSL-compiled instances at
// runtime while workers call Lookup.
var regMu sync.RWMutex

var registry = map[string]Definition{
	"paper": {
		Name:        "paper",
		Description: "the paper's Section 7 campaign on the single-node arrestment system",
		Config: func(tier Tier) (campaign.Config, error) {
			return scaled(tier, nil)
		},
	},
	"reduced": {
		Name:        "reduced",
		Description: "scaled-down campaign preserving the qualitative structure of the results",
		Config: func(tier Tier) (campaign.Config, error) {
			switch tier {
			case TierQuick:
				cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
				if err != nil {
					return campaign.Config{}, err
				}
				return campaign.Config{
					Arrestor:       arrestor.DefaultConfig(),
					TestCases:      cases,
					Times:          []sim.Millis{1500, 3500},
					Bits:           []uint{2, 14},
					HorizonMs:      6000,
					DirectWindowMs: 500,
				}, nil
			case TierFull:
				return campaign.ReducedConfig(), nil
			default:
				return campaign.Config{}, fmt.Errorf("runner: unknown tier %q", tier)
			}
		},
	},
	"dual": {
		Name:        "dual",
		Description: "master/slave two-node deployment (Section 7.1): 11 modules, 31 pairs",
		Config: func(tier Tier) (campaign.Config, error) {
			return scaled(tier, func(c *campaign.Config) error {
				c.Dual = true
				return nil
			})
		},
	},
	"autobrake": {
		Name:        "autobrake",
		Description: "wheel-slip brake controller target (panic-stop scenarios)",
		Config: func(tier Tier) (campaign.Config, error) {
			cfg := campaign.Config{
				Custom:         autobrake.Target(autobrake.DefaultConfig()),
				HorizonMs:      6000,
				DirectWindowMs: 500,
			}
			switch tier {
			case TierQuick:
				cases, err := physics.Grid(2, 2, 900, 2100, 18, 38)
				if err != nil {
					return campaign.Config{}, err
				}
				cfg.TestCases = cases
				cfg.Times = []sim.Millis{1000, 2500, 4000}
				cfg.Bits = []uint{0, 5, 10, 15}
			case TierFull:
				cases, err := physics.Grid(5, 5, 900, 2100, 18, 38)
				if err != nil {
					return campaign.Config{}, err
				}
				cfg.TestCases = cases
				cfg.Times = inject.PaperTimes()
				cfg.Bits = inject.AllBits()
			default:
				return campaign.Config{}, fmt.Errorf("runner: unknown tier %q", tier)
			}
			return cfg, nil
		},
	},
	"hostile": {
		Name:        "hostile",
		Description: "adversarial crash/hang target exercising the supervised execution layer",
		Config: func(tier Tier) (campaign.Config, error) {
			cfg := campaign.Config{
				Custom: hostile.Target(),
			}
			switch tier {
			case TierQuick:
				cases, err := physics.Grid(1, 2, 12000, 12000, 50, 70)
				if err != nil {
					return campaign.Config{}, err
				}
				cfg.TestCases = cases
				cfg.Times = []sim.Millis{50, 150}
				cfg.Bits = []uint{3, 15}
				cfg.HorizonMs = 300
			case TierFull:
				cases, err := physics.Grid(2, 2, 8000, 20000, 40, 80)
				if err != nil {
					return campaign.Config{}, err
				}
				cfg.TestCases = cases
				cfg.Times = []sim.Millis{50, 250, 450}
				cfg.Bits = []uint{0, 3, 7, 11, 15}
				cfg.HorizonMs = 600
			default:
				return campaign.Config{}, fmt.Errorf("runner: unknown tier %q", tier)
			}
			cfg.Budget = hostile.RunBudget(cfg.HorizonMs)
			return cfg, nil
		},
	},
	"error-models": {
		Name:        "error-models",
		Description: "error-model ablation: stuck-ats, replacements and offsets besides bit-flips",
		Config: func(tier Tier) (campaign.Config, error) {
			return scaled(tier, func(c *campaign.Config) error {
				c.Bits = nil
				c.Models = ablationModels()
				return nil
			})
		},
	},
	"tolerance": {
		Name:        "tolerance",
		Description: "tolerance ablation: Golden Run Comparison with per-signal bands (Section 7.3)",
		Config: func(tier Tier) (campaign.Config, error) {
			return scaled(tier, func(c *campaign.Config) error {
				tol := make(trace.Tolerances)
				for _, sig := range c.System().Signals() {
					tol[sig] = 2
				}
				c.Tolerances = tol
				return nil
			})
		},
	},
}

// Instances lists the registered instance definitions, sorted by
// name.
func Instances() []Definition {
	regMu.RLock()
	defer regMu.RUnlock()
	defs := make([]Definition, 0, len(registry))
	for _, d := range registry {
		defs = append(defs, d)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}

// Lookup resolves an instance by name.
func Lookup(name string) (Definition, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return Definition{}, fmt.Errorf("runner: unknown instance %q (have %v)", name, names)
	}
	return d, nil
}
