package runner

import (
	"path/filepath"
	"sync/atomic"
	"testing"

	"propane/internal/campaign"
)

// TestPrunedKillAndResume proves pruning composes with the journal
// lifecycle: a pruned campaign aborted mid-flight resumes (pruned
// records replay like executed ones) and converges to the
// bit-identical matrix of an unpruned, uninterrupted run — and the
// pruned labels survive the journal round trip into the metrics.
func TestPrunedKillAndResume(t *testing.T) {
	base, err := RunInstance("reduced", TierQuick, Options{Dir: t.TempDir(), Prune: campaign.PruneOff})
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix, wantRuns, wantUnfired := fingerprintResult(t, base)
	if base.Metrics.PrunedRuns+base.Metrics.MemoizedRuns+base.Metrics.ConvergedRuns != 0 {
		t.Fatalf("PruneOff run still counted pruning: %+v", base.Metrics)
	}

	// Abort the pruned run (pruning defaults on through the runner)
	// partway through — the moral equivalent of a kill, with the
	// journal left at whatever the workers had flushed.
	dir := t.TempDir()
	var seen atomic.Int32
	aborted, err := RunInstance("reduced", TierQuick, Options{
		Dir:      dir,
		OnRecord: func(rec Record, replayed bool) error { seen.Add(1); return nil },
		Abort:    func() bool { return seen.Load() >= 40 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if aborted.Metrics.ExecutedRuns >= wantRuns {
		t.Fatalf("abort did not interrupt the campaign: %d/%d runs executed", aborted.Metrics.ExecutedRuns, wantRuns)
	}

	rr, err := RunInstance("reduced", TierQuick, Options{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	matrix, runs, unfired := fingerprintResult(t, rr)
	if runs != wantRuns || unfired != wantUnfired {
		t.Errorf("resumed pruned run counts %d/%d, want %d/%d", runs, unfired, wantRuns, wantUnfired)
	}
	if matrix != wantMatrix {
		t.Error("resumed pruned matrix differs from the unpruned uninterrupted run")
	}
	if rr.Metrics.ReplayedRuns == 0 {
		t.Error("nothing replayed — the aborted journal was ignored")
	}

	// Every journaled pruned label must be reflected in the metrics,
	// whether its record was replayed or executed this process.
	_, recs, _, err := loadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, r := range recs {
		switch r.Pruned {
		case "", campaign.PrunedNoOp, campaign.PrunedUnfired, campaign.PrunedMemoized, campaign.PrunedConverged:
		default:
			t.Errorf("job %d journaled with unknown pruned label %q", r.Job, r.Pruned)
		}
		if r.Pruned != "" {
			labeled++
		}
	}
	m := rr.Metrics
	if got := m.PrunedRuns + m.MemoizedRuns + m.ConvergedRuns; got != labeled {
		t.Errorf("metrics count %d pruned runs, journal carries %d labels", got, labeled)
	}
	if wantUnfired > 0 && m.PrunedRuns < wantUnfired {
		t.Errorf("%d unfired traps but only %d pruned runs — unfired prediction incomplete", wantUnfired, m.PrunedRuns)
	}
}
