package sim

import (
	"errors"
	"fmt"
	"time"
)

// Task is a schedulable unit of software: one of the target system's
// modules. Step is called with the current simulated time.
type Task interface {
	Name() string
	Step(now Millis)
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc struct {
	TaskName string
	Fn       func(now Millis)
}

// Name implements Task.
func (t TaskFunc) Name() string { return t.TaskName }

// Step implements Task.
func (t TaskFunc) Step(now Millis) { t.Fn(now) }

// Hook is an environment or instrumentation callback run by the kernel
// around each tick (physics updates before the software, trace
// sampling after it).
type Hook func(now Millis)

// Budget bounds one run of the kernel — the per-run watchdog of the
// supervised execution layer. An injected error can drive a target
// module into a non-terminating state; the budget lets the campaign
// terminate such a run deterministically and classify it as a hang
// instead of stalling forever.
type Budget struct {
	// Steps caps the number of work units charged during one run: the
	// kernel charges one unit per task Step invocation, and
	// instrumented module code may charge additional units from inner
	// loops via Kernel.Charge (the simulated analogue of an executed
	// instruction budget). 0 means unlimited. Step accounting is fully
	// deterministic: the same run trips at the same point in every
	// process.
	Steps int64
	// Wall caps the wall-clock duration of one Run call, as a coarse
	// backstop for non-terminating code that never charges the step
	// budget. 0 means unlimited. Wall-clock checks are inherently
	// non-deterministic; prefer Steps wherever reproducibility
	// matters.
	Wall time.Duration
}

// errBudgetExhausted is the sentinel panic Charge raises to unwind
// out of a non-terminating task; Run recovers exactly this value and
// records the exhaustion, so genuine target panics still propagate to
// the campaign's crash classification.
var errBudgetExhausted = errors.New("sim: run budget exhausted")

// Kernel is the slot-based, non-preemptive scheduler of the target
// system (Section 7.1): time advances in 1-ms ticks; the system
// operates in a fixed number of 1-ms slots; in each slot the
// every-tick tasks and the tasks registered for that slot are invoked;
// the background task (CALC in the paper) runs when the other modules
// are dormant, i.e. at the end of every tick.
type Kernel struct {
	numSlots   int
	slotSignal *Signal // current slot read from this signal (ms_slot_nbr)

	pre        []Hook
	everyTick  []Task
	slotted    [][]Task
	background []Task
	post       []Hook

	now Millis

	budget    Budget
	used      int64
	deadline  time.Time
	exhausted bool
}

// NewKernel creates a kernel with the given number of execution slots
// (7 in the paper's target system).
func NewKernel(numSlots int) (*Kernel, error) {
	if numSlots < 1 {
		return nil, fmt.Errorf("sim: numSlots must be >= 1, got %d", numSlots)
	}
	return &Kernel{
		numSlots: numSlots,
		slotted:  make([][]Task, numSlots),
	}, nil
}

// UseSlotSignal makes the kernel read the current execution slot from
// the given signal (the paper's ms_slot_nbr, produced by CLOCK) rather
// than deriving it from the tick counter. Values are taken modulo the
// slot count, so a corrupted slot signal shifts the schedule rather
// than crashing it — matching the behaviour of the real slot table.
func (k *Kernel) UseSlotSignal(s *Signal) { k.slotSignal = s }

// AddPreHook registers an environment hook run at the start of every
// tick, before any software task (hardware register refresh, physics).
func (k *Kernel) AddPreHook(h Hook) { k.pre = append(k.pre, h) }

// AddPostHook registers a hook run at the end of every tick (trace
// sampling, injection traps).
func (k *Kernel) AddPostHook(h Hook) { k.post = append(k.post, h) }

// AddEveryTick schedules a task to run on every tick, before slotted
// tasks (the paper's CLOCK and DIST_S have period 1 ms).
func (k *Kernel) AddEveryTick(t Task) { k.everyTick = append(k.everyTick, t) }

// AddSlotted schedules a task in the given slot (0-based); it then
// runs once per full slot cycle (period 7 ms in the target system).
func (k *Kernel) AddSlotted(slot int, t Task) error {
	if slot < 0 || slot >= k.numSlots {
		return fmt.Errorf("sim: slot %d out of range [0,%d)", slot, k.numSlots)
	}
	k.slotted[slot] = append(k.slotted[slot], t)
	return nil
}

// AddBackground schedules a task to run at the end of every tick, when
// the slotted modules are dormant (the paper's CALC).
func (k *Kernel) AddBackground(t Task) { k.background = append(k.background, t) }

// Now returns the current simulated time.
func (k *Kernel) Now() Millis { return k.now }

// SetBudget arms the per-run watchdog and resets its accounting. Call
// it before Run; the zero Budget disables supervision.
func (k *Kernel) SetBudget(b Budget) {
	k.budget = b
	k.used = 0
	k.exhausted = false
	k.deadline = time.Time{}
}

// Charge consumes n work units of the step budget. Module code calls
// it from loops whose trip count depends on (possibly corrupted)
// signal values, so a run driven into a non-terminating state unwinds
// deterministically instead of hanging the worker. When the budget is
// exhausted, Charge panics with a sentinel that Run recovers and
// converts into the exhausted state; without an armed budget it only
// accumulates usage.
func (k *Kernel) Charge(n int64) {
	k.used += n
	if k.budget.Steps > 0 && k.used > k.budget.Steps {
		k.exhausted = true
		panic(errBudgetExhausted)
	}
}

// Exhausted reports whether the last Run was terminated by the
// watchdog — the kernel-level signature of a hung run.
func (k *Kernel) Exhausted() bool { return k.exhausted }

// BudgetUsed returns the work units consumed since the budget was
// last armed.
func (k *Kernel) BudgetUsed() int64 { return k.used }

// Tick advances simulated time by one millisecond, running pre-hooks,
// every-tick tasks, the current slot's tasks, background tasks and
// post-hooks, in that order.
func (k *Kernel) Tick() {
	now := k.now
	for _, h := range k.pre {
		h(now)
	}
	for _, t := range k.everyTick {
		k.used++
		t.Step(now)
	}
	slot := int(now) % k.numSlots
	if k.slotSignal != nil {
		slot = int(k.slotSignal.Read()) % k.numSlots
	}
	for _, t := range k.slotted[slot] {
		k.used++
		t.Step(now)
	}
	for _, t := range k.background {
		k.used++
		t.Step(now)
	}
	for _, h := range k.post {
		h(now)
	}
	k.now++
}

// Run executes ticks until the given simulated time (exclusive) is
// reached or the stop predicate returns true after a tick. It returns
// the time at which it stopped.
//
// With a budget armed (SetBudget), Run additionally stops — and marks
// the kernel Exhausted — when the charged work units exceed
// Budget.Steps (checked at tick boundaries and, mid-task, by Charge)
// or when Budget.Wall elapses. Budget exhaustion raised by Charge is
// recovered here; any other panic from task code propagates to the
// caller untouched, so crashes stay distinguishable from hangs.
func (k *Kernel) Run(until Millis, stop func() bool) (stopped Millis) {
	if k.budget.Wall > 0 {
		k.deadline = time.Now().Add(k.budget.Wall)
	}
	defer func() {
		stopped = k.now
		if r := recover(); r != nil {
			if r == errBudgetExhausted { //nolint:errorlint // sentinel identity, never wrapped
				return
			}
			panic(r)
		}
	}()
	for k.now < until {
		k.Tick()
		if k.budget.Steps > 0 && k.used > k.budget.Steps {
			k.exhausted = true
			break
		}
		if k.budget.Wall > 0 && time.Now().After(k.deadline) {
			k.exhausted = true
			break
		}
		if stop != nil && stop() {
			break
		}
	}
	return k.now
}
