package sim

import "fmt"

// Snapshot is a capture of one simulation instance's dynamic state at
// a tick boundary: the kernel's simulated time and step-budget
// accounting, every bus signal value, and the opaque hidden state of
// the instance's stateful components (modules, hardware glue, the
// physical world). A snapshot taken from one instance can be restored
// into a *fresh*, identically constructed instance, which then
// continues bit-identically to the original — the primitive behind
// the campaign engine's checkpoint fast-forward.
//
// The wall-clock budget deadline is deliberately NOT part of a
// snapshot: wall time is non-deterministic by nature, and Kernel.Run
// re-arms the deadline from Budget.Wall on every call, so a restored
// run gets a full fresh wall allowance while the deterministic step
// accounting (Used) continues exactly where the captured run left
// off.
type Snapshot struct {
	// Now is the simulated time at capture; the next executed tick is
	// tick Now.
	Now Millis
	// Used is the step-budget accounting at capture (Kernel.BudgetUsed).
	// Restoring it keeps hang classification bit-identical: a
	// fast-forwarded run exhausts its budget at exactly the same tick a
	// full replay would.
	Used int64
	// Signals holds every bus signal value in registration order.
	Signals []uint16
	// Hidden holds the opaque states of the instance's stateful
	// components in registration order (see model.Stateful); the
	// instance that captures a snapshot defines the order.
	Hidden []any
}

// Snapshotter captures and restores the sim-layer state of one
// instance: kernel time, step accounting, the (signal-derived) slot
// state and every bus signal value. Hidden module state is layered on
// top by the instance (the Snapshot.Hidden field); the Snapshotter
// itself is complete for targets whose tasks keep no state outside
// the bus.
type Snapshotter struct {
	kernel *Kernel
	bus    *Bus
}

// NewSnapshotter binds a snapshotter to one instance's kernel and bus.
func NewSnapshotter(k *Kernel, b *Bus) *Snapshotter {
	return &Snapshotter{kernel: k, bus: b}
}

// Capture records the sim-layer state. It must be called at a tick
// boundary (between Run calls), never from inside a hook or task.
func (s *Snapshotter) Capture() *Snapshot {
	snap := &Snapshot{
		Now:     s.kernel.now,
		Used:    s.kernel.used,
		Signals: make([]uint16, len(s.bus.order)),
	}
	for i, name := range s.bus.order {
		snap.Signals[i] = s.bus.signals[name].value
	}
	return snap
}

// Restore overwrites the sim-layer state from a snapshot captured on
// an identically constructed instance. The kernel's exhausted flag is
// cleared and its wall deadline left to the next Run call; the armed
// Budget itself is not touched, so arm it (SetBudget) before
// restoring.
func (s *Snapshotter) Restore(snap *Snapshot) error {
	if len(snap.Signals) != len(s.bus.order) {
		return fmt.Errorf("sim: snapshot covers %d signals, bus has %d — not the same topology",
			len(snap.Signals), len(s.bus.order))
	}
	s.kernel.now = snap.Now
	s.kernel.used = snap.Used
	s.kernel.exhausted = false
	for i, name := range s.bus.order {
		s.bus.signals[name].value = snap.Signals[i]
	}
	return nil
}
