// Package sim provides the discrete-time execution substrate used to
// run the target software on a desktop, as the paper's experimental
// setup does (Section 7.3): real software running in simulated time,
// in a simulated environment, on simulated hardware. It contains a
// signal bus holding 16-bit signal values (the paper's input signals
// are all 16 bits wide), simulated hardware registers expressed as bus
// signals, and a slot-based non-preemptive kernel with a background
// task, mirroring the target system's scheduler.
package sim

import (
	"fmt"
	"sort"
)

// Millis is a simulated time instant or duration in milliseconds.
// The kernel advances in 1-ms ticks; traces have millisecond
// resolution, like PROPANE's.
type Millis int64

// Signal is one named 16-bit signal variable. Software modules hold
// *Signal handles and read/write values through them; the
// fault-injection traps flip bits in the same storage, so an injected
// error is visible to whoever reads the signal next and persists until
// the producer overwrites it — the SWIFI memory-corruption semantics.
type Signal struct {
	name  string
	value uint16
}

// Name returns the signal's name.
func (s *Signal) Name() string { return s.name }

// Read returns the current value.
func (s *Signal) Read() uint16 { return s.value }

// Write stores a new value.
func (s *Signal) Write(v uint16) { s.value = v }

// ReadBool interprets the signal as a boolean flag: any non-zero value
// is true (the common C idiom the target software uses).
func (s *Signal) ReadBool() bool { return s.value != 0 }

// WriteBool stores 1 for true and 0 for false.
func (s *Signal) WriteBool(b bool) {
	if b {
		s.value = 1
	} else {
		s.value = 0
	}
}

// FlipBit inverts bit (0..15) of the current value — the paper's
// bit-flip error model.
func (s *Signal) FlipBit(bit uint) error {
	if bit > 15 {
		return fmt.Errorf("sim: bit %d out of range for 16-bit signal %s", bit, s.name)
	}
	s.value ^= 1 << bit
	return nil
}

// Bus is a registry of named signals. One Bus underlies one simulation
// run; golden runs and injection runs each get a fresh Bus so runs are
// fully independent.
type Bus struct {
	signals map[string]*Signal
	order   []string
}

// NewBus returns an empty signal bus.
func NewBus() *Bus {
	return &Bus{signals: make(map[string]*Signal)}
}

// Register creates a signal with initial value zero and returns its
// handle. Registering a name twice returns the existing handle, so
// producer and consumer modules can both "declare" the signal.
func (b *Bus) Register(name string) *Signal {
	if s, ok := b.signals[name]; ok {
		return s
	}
	s := &Signal{name: name}
	b.signals[name] = s
	b.order = append(b.order, name)
	return s
}

// Lookup returns the handle of an already-registered signal.
func (b *Bus) Lookup(name string) (*Signal, error) {
	s, ok := b.signals[name]
	if !ok {
		return nil, fmt.Errorf("sim: bus has no signal %q", name)
	}
	return s, nil
}

// Names returns all registered signal names, sorted.
func (b *Bus) Names() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	sort.Strings(out)
	return out
}

// Snapshot returns the current value of every signal, keyed by name.
func (b *Bus) Snapshot() map[string]uint16 {
	out := make(map[string]uint16, len(b.signals))
	for n, s := range b.signals {
		out[n] = s.value
	}
	return out
}

// FlipBit flips one bit of the named signal — the injection entry
// point used by the campaign driver.
func (b *Bus) FlipBit(name string, bit uint) error {
	s, err := b.Lookup(name)
	if err != nil {
		return err
	}
	return s.FlipBit(bit)
}
