package sim

// ReadHook observes (and may corrupt) a module's read of an input
// signal. The fault-injection traps of internal/inject implement this:
// PROPANE-style high-level software traps that fire when the
// instrumented read is reached during execution (paper Section 7.3).
// The hook runs before the module reads the signal value, so a flip
// applied here is seen by the module on this very read and persists in
// the signal variable until the producer overwrites it.
type ReadHook func(module, signal string, sig *Signal, now Millis)
