package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Digest returns a content hash of the snapshot: simulated time, step
// accounting, every bus signal value and the %#v rendering of every
// hidden component state. Two snapshots of identical dynamic state
// digest equally, so the digest can key caches of "what happens from
// this state onward" (the campaign engine's run-result memoization).
//
// The hidden states are hashed through their Go-syntax representation.
// That is exact for the value-typed states the built-in targets return
// from model.Stateful.State(); a state carrying pointers would render
// its addresses, making equal states digest unequally. For a cache key
// that failure mode is safe — it can only cost hits, never fabricate
// one — and the campaign engine additionally scopes every digest to
// one (test case, instant), where determinism pins the state anyway.
func (s *Snapshot) Digest() string {
	h := sha256.New()
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(s.Now))
	h.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(s.Used))
	h.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(len(s.Signals)))
	h.Write(b8[:])
	var b2 [2]byte
	for _, v := range s.Signals {
		binary.LittleEndian.PutUint16(b2[:], v)
		h.Write(b2[:])
	}
	for _, hs := range s.Hidden {
		fmt.Fprintf(h, "/%#v", hs)
	}
	return hex.EncodeToString(h.Sum(nil))
}
