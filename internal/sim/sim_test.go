package sim

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSignalReadWrite(t *testing.T) {
	b := NewBus()
	s := b.Register("pulscnt")
	if s.Name() != "pulscnt" {
		t.Errorf("Name() = %q, want pulscnt", s.Name())
	}
	if s.Read() != 0 {
		t.Errorf("fresh signal = %d, want 0", s.Read())
	}
	s.Write(0xBEEF)
	if s.Read() != 0xBEEF {
		t.Errorf("Read() = %#x, want 0xBEEF", s.Read())
	}
}

func TestSignalBool(t *testing.T) {
	b := NewBus()
	s := b.Register("stopped")
	s.WriteBool(true)
	if s.Read() != 1 || !s.ReadBool() {
		t.Errorf("WriteBool(true): value=%d bool=%v", s.Read(), s.ReadBool())
	}
	s.WriteBool(false)
	if s.Read() != 0 || s.ReadBool() {
		t.Errorf("WriteBool(false): value=%d bool=%v", s.Read(), s.ReadBool())
	}
	// Non-canonical non-zero values still read as true (C semantics) —
	// this is what makes bit-flips in boolean signals interesting.
	s.Write(0x8000)
	if !s.ReadBool() {
		t.Error("ReadBool() of 0x8000 = false, want true")
	}
}

func TestFlipBit(t *testing.T) {
	b := NewBus()
	s := b.Register("x")
	if err := s.FlipBit(0); err != nil {
		t.Fatalf("FlipBit(0): %v", err)
	}
	if s.Read() != 1 {
		t.Errorf("after flip bit 0: %d, want 1", s.Read())
	}
	if err := s.FlipBit(15); err != nil {
		t.Fatalf("FlipBit(15): %v", err)
	}
	if s.Read() != 0x8001 {
		t.Errorf("after flip bit 15: %#x, want 0x8001", s.Read())
	}
	if err := s.FlipBit(16); err == nil {
		t.Error("FlipBit(16) succeeded, want error")
	}
	if err := b.FlipBit("x", 0); err != nil {
		t.Fatalf("Bus.FlipBit: %v", err)
	}
	if s.Read() != 0x8000 {
		t.Errorf("after bus flip bit 0: %#x, want 0x8000", s.Read())
	}
	if err := b.FlipBit("nope", 0); err == nil {
		t.Error("Bus.FlipBit(nope) succeeded, want error")
	}
}

// TestFlipBitInvolution is the property that flipping the same bit
// twice restores the value, for any value and any valid bit.
func TestFlipBitInvolution(t *testing.T) {
	prop := func(v uint16, bit uint8) bool {
		b := NewBus()
		s := b.Register("p")
		s.Write(v)
		bt := uint(bit % 16)
		if err := s.FlipBit(bt); err != nil {
			return false
		}
		if s.Read() == v {
			return false // one flip must change the value
		}
		if err := s.FlipBit(bt); err != nil {
			return false
		}
		return s.Read() == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBusRegisterIdempotent(t *testing.T) {
	b := NewBus()
	s1 := b.Register("sig")
	s2 := b.Register("sig")
	if s1 != s2 {
		t.Error("Register returned different handles for same name")
	}
	if got := b.Names(); !reflect.DeepEqual(got, []string{"sig"}) {
		t.Errorf("Names() = %v, want [sig]", got)
	}
}

func TestBusLookupAndSnapshot(t *testing.T) {
	b := NewBus()
	b.Register("a").Write(1)
	b.Register("b").Write(2)
	if _, err := b.Lookup("a"); err != nil {
		t.Errorf("Lookup(a): %v", err)
	}
	if _, err := b.Lookup("z"); err == nil {
		t.Error("Lookup(z) succeeded, want error")
	}
	snap := b.Snapshot()
	want := map[string]uint16{"a": 1, "b": 2}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("Snapshot() = %v, want %v", snap, want)
	}
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(0); err == nil {
		t.Error("NewKernel(0) succeeded, want error")
	}
	k, err := NewKernel(7)
	if err != nil {
		t.Fatalf("NewKernel(7): %v", err)
	}
	if err := k.AddSlotted(7, TaskFunc{TaskName: "x", Fn: func(Millis) {}}); err == nil {
		t.Error("AddSlotted(7) succeeded, want error")
	}
	if err := k.AddSlotted(-1, TaskFunc{TaskName: "x", Fn: func(Millis) {}}); err == nil {
		t.Error("AddSlotted(-1) succeeded, want error")
	}
}

func TestKernelSchedulingOrder(t *testing.T) {
	k, err := NewKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	rec := func(name string) TaskFunc {
		return TaskFunc{TaskName: name, Fn: func(Millis) { log = append(log, name) }}
	}
	k.AddPreHook(func(Millis) { log = append(log, "pre") })
	k.AddEveryTick(rec("every"))
	if err := k.AddSlotted(0, rec("slot0")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddSlotted(1, rec("slot1")); err != nil {
		t.Fatal(err)
	}
	k.AddBackground(rec("bg"))
	k.AddPostHook(func(Millis) { log = append(log, "post") })

	k.Tick() // t=0: slot 0
	k.Tick() // t=1: slot 1
	want := []string{
		"pre", "every", "slot0", "bg", "post",
		"pre", "every", "slot1", "bg", "post",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("execution order = %v, want %v", log, want)
	}
	if k.Now() != 2 {
		t.Errorf("Now() = %d, want 2", k.Now())
	}
}

func TestKernelSlotSignal(t *testing.T) {
	k, err := NewKernel(7)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	slotSig := bus.Register("ms_slot_nbr")
	k.UseSlotSignal(slotSig)

	var ran []int
	for s := 0; s < 7; s++ {
		s := s
		if err := k.AddSlotted(s, TaskFunc{TaskName: "t", Fn: func(Millis) { ran = append(ran, s) }}); err != nil {
			t.Fatal(err)
		}
	}
	// Force slot 3 regardless of tick count; values wrap modulo 7.
	slotSig.Write(3)
	k.Tick()
	slotSig.Write(10) // 10 % 7 = 3
	k.Tick()
	if !reflect.DeepEqual(ran, []int{3, 3}) {
		t.Errorf("slots run = %v, want [3 3]", ran)
	}
}

func TestKernelRunWithStop(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	k.AddEveryTick(TaskFunc{TaskName: "c", Fn: func(Millis) { count++ }})
	end := k.Run(100, func() bool { return count >= 10 })
	if count != 10 || end != 10 {
		t.Errorf("Run stopped at count=%d t=%d, want 10/10", count, end)
	}
	// Without a stop predicate, runs to the deadline.
	end = k.Run(20, nil)
	if end != 20 || count != 20 {
		t.Errorf("Run to deadline: t=%d count=%d, want 20/20", end, count)
	}
}

func TestBudgetStepExhaustionAtTickBoundary(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	k.AddEveryTick(TaskFunc{TaskName: "c", Fn: func(Millis) { count++ }})
	// One work unit per tick: a 10-step budget stops after tick 11
	// trips the check (used=11 > 10), deterministically.
	k.SetBudget(Budget{Steps: 10})
	end := k.Run(1000, nil)
	if !k.Exhausted() {
		t.Fatal("kernel not exhausted after exceeding step budget")
	}
	if end != 11 || count != 11 {
		t.Errorf("stopped at t=%d count=%d, want 11/11", end, count)
	}
	// Re-arming resets the accounting.
	k.SetBudget(Budget{Steps: 5})
	if k.Exhausted() || k.BudgetUsed() != 0 {
		t.Errorf("SetBudget did not reset: exhausted=%v used=%d", k.Exhausted(), k.BudgetUsed())
	}
}

func TestChargeUnwindsNonTerminatingTask(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	// A task spinning forever, as an injected error can cause: only
	// the in-loop Charge lets the watchdog break it.
	k.AddEveryTick(TaskFunc{TaskName: "spin", Fn: func(Millis) {
		for {
			k.Charge(1)
		}
	}})
	k.SetBudget(Budget{Steps: 1000})
	end := k.Run(100, nil)
	if !k.Exhausted() {
		t.Fatal("kernel not exhausted by non-terminating task")
	}
	if end != 0 {
		t.Errorf("stopped at t=%d, want 0 (first tick never completed)", end)
	}
	if k.BudgetUsed() <= 1000 {
		t.Errorf("BudgetUsed() = %d, want > 1000", k.BudgetUsed())
	}
}

func TestBudgetZeroValueIsUnlimited(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	k.AddEveryTick(TaskFunc{TaskName: "n", Fn: func(Millis) {}})
	k.SetBudget(Budget{})
	if end := k.Run(500, nil); end != 500 || k.Exhausted() {
		t.Errorf("zero budget: t=%d exhausted=%v, want 500/false", end, k.Exhausted())
	}
}

func TestTaskPanicPropagatesThroughRun(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	k.AddEveryTick(TaskFunc{TaskName: "boom", Fn: func(Millis) { panic("target crash") }})
	k.SetBudget(Budget{Steps: 100})
	defer func() {
		r := recover()
		if r != "target crash" {
			t.Errorf("recovered %v, want the task's own panic", r)
		}
		if k.Exhausted() {
			t.Error("crash misclassified as budget exhaustion")
		}
	}()
	k.Run(10, nil)
	t.Fatal("Run returned despite panicking task")
}

func TestBudgetWallClockBackstop(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	k.AddEveryTick(TaskFunc{TaskName: "slow", Fn: func(Millis) { time.Sleep(time.Millisecond) }})
	k.SetBudget(Budget{Wall: 5 * time.Millisecond})
	k.Run(1_000_000, nil)
	if !k.Exhausted() {
		t.Fatal("wall-clock budget did not trip")
	}
}
