package sim

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSignalReadWrite(t *testing.T) {
	b := NewBus()
	s := b.Register("pulscnt")
	if s.Name() != "pulscnt" {
		t.Errorf("Name() = %q, want pulscnt", s.Name())
	}
	if s.Read() != 0 {
		t.Errorf("fresh signal = %d, want 0", s.Read())
	}
	s.Write(0xBEEF)
	if s.Read() != 0xBEEF {
		t.Errorf("Read() = %#x, want 0xBEEF", s.Read())
	}
}

func TestSignalBool(t *testing.T) {
	b := NewBus()
	s := b.Register("stopped")
	s.WriteBool(true)
	if s.Read() != 1 || !s.ReadBool() {
		t.Errorf("WriteBool(true): value=%d bool=%v", s.Read(), s.ReadBool())
	}
	s.WriteBool(false)
	if s.Read() != 0 || s.ReadBool() {
		t.Errorf("WriteBool(false): value=%d bool=%v", s.Read(), s.ReadBool())
	}
	// Non-canonical non-zero values still read as true (C semantics) —
	// this is what makes bit-flips in boolean signals interesting.
	s.Write(0x8000)
	if !s.ReadBool() {
		t.Error("ReadBool() of 0x8000 = false, want true")
	}
}

func TestFlipBit(t *testing.T) {
	b := NewBus()
	s := b.Register("x")
	if err := s.FlipBit(0); err != nil {
		t.Fatalf("FlipBit(0): %v", err)
	}
	if s.Read() != 1 {
		t.Errorf("after flip bit 0: %d, want 1", s.Read())
	}
	if err := s.FlipBit(15); err != nil {
		t.Fatalf("FlipBit(15): %v", err)
	}
	if s.Read() != 0x8001 {
		t.Errorf("after flip bit 15: %#x, want 0x8001", s.Read())
	}
	if err := s.FlipBit(16); err == nil {
		t.Error("FlipBit(16) succeeded, want error")
	}
	if err := b.FlipBit("x", 0); err != nil {
		t.Fatalf("Bus.FlipBit: %v", err)
	}
	if s.Read() != 0x8000 {
		t.Errorf("after bus flip bit 0: %#x, want 0x8000", s.Read())
	}
	if err := b.FlipBit("nope", 0); err == nil {
		t.Error("Bus.FlipBit(nope) succeeded, want error")
	}
}

// TestFlipBitInvolution is the property that flipping the same bit
// twice restores the value, for any value and any valid bit.
func TestFlipBitInvolution(t *testing.T) {
	prop := func(v uint16, bit uint8) bool {
		b := NewBus()
		s := b.Register("p")
		s.Write(v)
		bt := uint(bit % 16)
		if err := s.FlipBit(bt); err != nil {
			return false
		}
		if s.Read() == v {
			return false // one flip must change the value
		}
		if err := s.FlipBit(bt); err != nil {
			return false
		}
		return s.Read() == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBusRegisterIdempotent(t *testing.T) {
	b := NewBus()
	s1 := b.Register("sig")
	s2 := b.Register("sig")
	if s1 != s2 {
		t.Error("Register returned different handles for same name")
	}
	if got := b.Names(); !reflect.DeepEqual(got, []string{"sig"}) {
		t.Errorf("Names() = %v, want [sig]", got)
	}
}

func TestBusLookupAndSnapshot(t *testing.T) {
	b := NewBus()
	b.Register("a").Write(1)
	b.Register("b").Write(2)
	if _, err := b.Lookup("a"); err != nil {
		t.Errorf("Lookup(a): %v", err)
	}
	if _, err := b.Lookup("z"); err == nil {
		t.Error("Lookup(z) succeeded, want error")
	}
	snap := b.Snapshot()
	want := map[string]uint16{"a": 1, "b": 2}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("Snapshot() = %v, want %v", snap, want)
	}
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(0); err == nil {
		t.Error("NewKernel(0) succeeded, want error")
	}
	k, err := NewKernel(7)
	if err != nil {
		t.Fatalf("NewKernel(7): %v", err)
	}
	if err := k.AddSlotted(7, TaskFunc{TaskName: "x", Fn: func(Millis) {}}); err == nil {
		t.Error("AddSlotted(7) succeeded, want error")
	}
	if err := k.AddSlotted(-1, TaskFunc{TaskName: "x", Fn: func(Millis) {}}); err == nil {
		t.Error("AddSlotted(-1) succeeded, want error")
	}
}

func TestKernelSchedulingOrder(t *testing.T) {
	k, err := NewKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	rec := func(name string) TaskFunc {
		return TaskFunc{TaskName: name, Fn: func(Millis) { log = append(log, name) }}
	}
	k.AddPreHook(func(Millis) { log = append(log, "pre") })
	k.AddEveryTick(rec("every"))
	if err := k.AddSlotted(0, rec("slot0")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddSlotted(1, rec("slot1")); err != nil {
		t.Fatal(err)
	}
	k.AddBackground(rec("bg"))
	k.AddPostHook(func(Millis) { log = append(log, "post") })

	k.Tick() // t=0: slot 0
	k.Tick() // t=1: slot 1
	want := []string{
		"pre", "every", "slot0", "bg", "post",
		"pre", "every", "slot1", "bg", "post",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("execution order = %v, want %v", log, want)
	}
	if k.Now() != 2 {
		t.Errorf("Now() = %d, want 2", k.Now())
	}
}

func TestKernelSlotSignal(t *testing.T) {
	k, err := NewKernel(7)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	slotSig := bus.Register("ms_slot_nbr")
	k.UseSlotSignal(slotSig)

	var ran []int
	for s := 0; s < 7; s++ {
		s := s
		if err := k.AddSlotted(s, TaskFunc{TaskName: "t", Fn: func(Millis) { ran = append(ran, s) }}); err != nil {
			t.Fatal(err)
		}
	}
	// Force slot 3 regardless of tick count; values wrap modulo 7.
	slotSig.Write(3)
	k.Tick()
	slotSig.Write(10) // 10 % 7 = 3
	k.Tick()
	if !reflect.DeepEqual(ran, []int{3, 3}) {
		t.Errorf("slots run = %v, want [3 3]", ran)
	}
}

func TestKernelRunWithStop(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	k.AddEveryTick(TaskFunc{TaskName: "c", Fn: func(Millis) { count++ }})
	end := k.Run(100, func() bool { return count >= 10 })
	if count != 10 || end != 10 {
		t.Errorf("Run stopped at count=%d t=%d, want 10/10", count, end)
	}
	// Without a stop predicate, runs to the deadline.
	end = k.Run(20, nil)
	if end != 20 || count != 20 {
		t.Errorf("Run to deadline: t=%d count=%d, want 20/20", end, count)
	}
}
