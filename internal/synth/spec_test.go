package synth

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"propane/internal/synth/workload"
)

// minimalSpec returns a small valid spec tests can mutate into
// specific invalid shapes.
func minimalSpec() *Spec {
	return &Spec{
		Name:  "mini",
		Slots: 1,
		Signals: []SignalSpec{
			{Name: "in", Width: 16},
			{Name: "out", Width: 16},
		},
		Environment: EnvSpec{
			Kind: "waveform",
			Bind: map[string]string{"drive": "in"},
		},
		Modules: []ModuleSpec{
			{Name: "M", Schedule: "every-tick", Fn: "passthrough",
				Inputs: []string{"in"}, Outputs: []string{"out"}},
		},
		SystemOutputs: []string{"out"},
	}
}

func TestMinimalSpecValid(t *testing.T) {
	if err := minimalSpec().Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

func TestValidationRejections(t *testing.T) {
	cases := map[string]func(*Spec){
		"no name":          func(s *Spec) { s.Name = "" },
		"negative slots":   func(s *Spec) { s.Slots = -1 },
		"duplicate signal": func(s *Spec) { s.Signals = append(s.Signals, SignalSpec{Name: "in", Width: 16}) },
		"zero-width signal": func(s *Spec) {
			s.Signals = append(s.Signals, SignalSpec{Name: "z", Width: 0})
		},
		"over-wide signal": func(s *Spec) {
			s.Signals = append(s.Signals, SignalSpec{Name: "w", Width: 17})
		},
		"empty signal name": func(s *Spec) {
			s.Signals = append(s.Signals, SignalSpec{Name: "", Width: 16})
		},
		"no modules":       func(s *Spec) { s.Modules = nil },
		"duplicate module": func(s *Spec) { s.Modules = append(s.Modules, s.Modules[0]) },
		"empty module name": func(s *Spec) {
			s.Modules[0].Name = ""
		},
		"unknown schedule": func(s *Spec) { s.Modules[0].Schedule = "sometimes" },
		"slot out of range": func(s *Spec) {
			s.Modules[0].Schedule = "slot:5" // only 1 slot
		},
		"unknown fn": func(s *Spec) { s.Modules[0].Fn = "wormhole" },
		"arity mismatch": func(s *Spec) {
			s.Modules[0].Fn = "gain" // 1→1, give it 2 inputs
			s.Modules[0].Inputs = []string{"in", "out"}
		},
		"unknown param": func(s *Spec) {
			s.Modules[0].Params = map[string]any{"frobnicate": 1.0}
		},
		"missing required param": func(s *Spec) {
			s.Modules[0].Fn = "slew_limiter"
		},
		"bad param shape": func(s *Spec) {
			s.Modules[0].Fn = "slew_limiter"
			s.Modules[0].Params = map[string]any{"max_slew": "fast"}
		},
		"bad list param": func(s *Spec) {
			s.Modules[0].Fn = "lookup"
			s.Modules[0].Params = map[string]any{"table": []any{}}
		},
		"input listed twice": func(s *Spec) {
			s.Modules[0].Fn = "sum"
			s.Modules[0].Inputs = []string{"in", "in"}
		},
		"dangling input wire": func(s *Spec) {
			s.Modules[0].Inputs = []string{"ghost"}
		},
		"dangling output wire": func(s *Spec) {
			s.Modules[0].Outputs = []string{"ghost"}
		},
		"dangling slot signal": func(s *Spec) { s.SlotSignal = "ghost" },
		"no system outputs":    func(s *Spec) { s.SystemOutputs = nil },
		"dangling system output": func(s *Spec) {
			s.SystemOutputs = []string{"ghost"}
		},
		"unknown env kind": func(s *Spec) { s.Environment.Kind = "vacuum" },
		"unknown env param": func(s *Spec) {
			s.Environment.Params = map[string]float64{"gravity": 9.8}
		},
		"missing env binding": func(s *Spec) {
			s.Environment = EnvSpec{Kind: "ramp"} // needs command
		},
		"dangling env binding": func(s *Spec) {
			s.Environment.Bind = map[string]string{"drive": "ghost"}
		},
		"tier bad workload": func(s *Spec) {
			s.Campaign = map[string]TierSpec{"quick": {
				Workload: workload.Spec{Kind: "zipf"},
				TimesMs:  []int64{1}, Bits: []uint{0}, HorizonMs: 10,
			}}
		},
		"tier no times": func(s *Spec) {
			s.Campaign = map[string]TierSpec{"quick": {
				Workload: workload.Spec{Kind: "grid", NMass: 1, NVel: 1, MassLo: 1, MassHi: 1, VelLo: 1, VelHi: 1},
				Bits:     []uint{0}, HorizonMs: 10,
			}}
		},
		"tier bit out of range": func(s *Spec) {
			s.Campaign = map[string]TierSpec{"quick": {
				Workload: workload.Spec{Kind: "grid", NMass: 1, NVel: 1, MassLo: 1, MassHi: 1, VelLo: 1, VelHi: 1},
				TimesMs:  []int64{1}, Bits: []uint{16}, HorizonMs: 10,
			}}
		},
		"tier no horizon": func(s *Spec) {
			s.Campaign = map[string]TierSpec{"quick": {
				Workload: workload.Spec{Kind: "grid", NMass: 1, NVel: 1, MassLo: 1, MassHi: 1, VelLo: 1, VelHi: 1},
				TimesMs:  []int64{1}, Bits: []uint{0},
			}}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := minimalSpec()
			mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidSpec", err)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name": "x", "warp_factor": 9}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}

func TestParseYAMLErrorsNameLines(t *testing.T) {
	bad := "name: x\nmodules:\n\t- name: M\n"
	_, err := Parse([]byte(bad))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("tab error should name line 3, got: %v", err)
	}
}

func TestExampleSpecsParse(t *testing.T) {
	for _, name := range []string{"arrestor.yaml", "hostile.yaml"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "examples", "synth", name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		s, err := Parse(data)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		if _, err := Compile(s); err != nil {
			t.Fatalf("compiling %s: %v", name, err)
		}
	}
}
