package synth

// A minimal YAML-subset decoder. The repository deliberately carries
// no third-party dependencies, and the topology format needs only a
// small, predictable slice of YAML: block mappings, block sequences,
// inline ("flow") lists, scalars (ints incl. 0x-hex, floats, bools,
// quoted strings) and '#' comments. The decoder converts a document
// into the same generic value tree encoding/json produces
// (map[string]any / []any / float64 / int64 / bool / string), which
// Parse then feeds through the JSON decoding path — so the YAML and
// JSON forms of a spec are exact synonyms by construction.
//
// Unsupported YAML (anchors, multi-line strings, tabs, nested flow
// maps, multi-document streams) is rejected with an error naming the
// offending line, never mis-parsed silently.

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlLine is one significant (non-blank, non-comment) source line.
type yamlLine struct {
	num    int // 1-based source line number
	indent int // leading spaces
	text   string
}

// decodeYAML parses the subset into a generic value tree.
func decodeYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("synth: yaml line %d: tabs are not allowed, indent with spaces", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if trimmed == "---" {
			if len(lines) > 0 {
				return nil, fmt.Errorf("synth: yaml line %d: multi-document streams are not supported", i+1)
			}
			continue
		}
		lines = append(lines, yamlLine{
			num:    i + 1,
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("synth: yaml document is empty")
	}
	v, next, err := parseYAMLBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("synth: yaml line %d: unexpected dedent/content after document", lines[next].num)
	}
	return v, nil
}

// stripComment removes a trailing '#'-comment, honouring quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble {
				// YAML requires a preceding space (or line start) for
				// a comment; "a#b" is a plain scalar.
				if i == 0 || s[i-1] == ' ' {
					return s[:i]
				}
			}
		}
	}
	return s
}

// parseYAMLBlock parses the block starting at lines[i], whose items
// all sit at exactly the given indent. It returns the value and the
// index of the first line not consumed.
func parseYAMLBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseYAMLSequence(lines, i, indent)
	}
	return parseYAMLMapping(lines, i, indent)
}

func parseYAMLMapping(lines []yamlLine, i, indent int) (any, int, error) {
	m := make(map[string]any)
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, i, fmt.Errorf("synth: yaml line %d: sequence item inside a mapping", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("synth: yaml line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			v, err := parseYAMLScalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i++
			continue
		}
		// Nested block (or an empty value at end of block).
		i++
		if i >= len(lines) || lines[i].indent <= indent {
			m[key] = nil
			continue
		}
		v, next, err := parseYAMLBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, i, err
		}
		m[key] = v
		i = next
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("synth: yaml line %d: unexpected indent", lines[i].num)
	}
	return m, i, nil
}

func parseYAMLSequence(lines []yamlLine, i, indent int) (any, int, error) {
	list := []any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break
		}
		content := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if content == "" {
			// "-" alone: the item is the nested block below.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				list = append(list, nil)
				continue
			}
			v, next, err := parseYAMLBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			list = append(list, v)
			i = next
			continue
		}
		if isMappingStart(content) {
			// "- key: value" starts an inline map item; its remaining
			// keys sit at the content column on the following lines.
			itemIndent := ln.indent + (len(ln.text) - len(content))
			rewritten := append([]yamlLine{{num: ln.num, indent: itemIndent, text: content}}, nil...)
			j := i + 1
			for j < len(lines) && lines[j].indent >= itemIndent &&
				!(lines[j].indent == indent && (strings.HasPrefix(lines[j].text, "- ") || lines[j].text == "-")) {
				rewritten = append(rewritten, lines[j])
				j++
			}
			v, next, err := parseYAMLMapping(rewritten, 0, itemIndent)
			if err != nil {
				return nil, i, err
			}
			if next != len(rewritten) {
				return nil, i, fmt.Errorf("synth: yaml line %d: bad indentation inside sequence item", rewritten[next].num)
			}
			list = append(list, v)
			i = j
			continue
		}
		v, err := parseYAMLScalarOrFlow(content, ln.num)
		if err != nil {
			return nil, i, err
		}
		list = append(list, v)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("synth: yaml line %d: unexpected indent", lines[i].num)
	}
	return list, i, nil
}

// splitKey splits "key: value" / "key:" and validates the key.
func splitKey(ln yamlLine) (key, rest string, err error) {
	idx := -1
	if strings.HasSuffix(ln.text, ":") {
		idx = len(ln.text) - 1
	}
	if j := strings.Index(ln.text, ": "); j >= 0 && (idx < 0 || j < idx) {
		idx = j
	}
	if idx < 0 {
		return "", "", fmt.Errorf("synth: yaml line %d: expected \"key: value\", got %q", ln.num, ln.text)
	}
	key = strings.TrimSpace(ln.text[:idx])
	key = strings.Trim(key, `"'`)
	if key == "" {
		return "", "", fmt.Errorf("synth: yaml line %d: empty mapping key", ln.num)
	}
	return key, strings.TrimSpace(ln.text[idx+1:]), nil
}

// isMappingStart reports whether a sequence-item payload begins a
// mapping ("name: CLOCK ...") rather than being a plain scalar.
func isMappingStart(s string) bool {
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") ||
		strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		return false
	}
	return strings.HasSuffix(s, ":") || strings.Contains(s, ": ")
}

// parseYAMLScalarOrFlow parses an inline value: a flow list, a flow
// map, or a scalar.
func parseYAMLScalarOrFlow(s string, line int) (any, error) {
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("synth: yaml line %d: unterminated flow list %q", line, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		list := []any{}
		if inner == "" {
			return list, nil
		}
		for _, part := range splitFlow(inner) {
			v, err := parseYAMLScalarOrFlow(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
		return list, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("synth: yaml line %d: unterminated flow map %q", line, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		m := make(map[string]any)
		if inner == "" {
			return m, nil
		}
		for _, part := range splitFlow(inner) {
			kv := strings.SplitN(part, ":", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("synth: yaml line %d: bad flow-map entry %q", line, part)
			}
			key := strings.Trim(strings.TrimSpace(kv[0]), `"'`)
			v, err := parseYAMLScalarOrFlow(strings.TrimSpace(kv[1]), line)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		return m, nil
	default:
		return parseYAMLScalar(s), nil
	}
}

// splitFlow splits a flow body on top-level commas (no nested flow
// collections inside flow collections beyond one bracket depth).
func splitFlow(s string) []string {
	var parts []string
	depth, start := 0, 0
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '[', '{':
			if !inSingle && !inDouble {
				depth++
			}
		case ']', '}':
			if !inSingle && !inDouble {
				depth--
			}
		case ',':
			if depth == 0 && !inSingle && !inDouble {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// parseYAMLScalar interprets a bare scalar: bool, null, int (decimal
// or 0x-hex), float, quoted or plain string.
func parseYAMLScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true", "True":
		return true
	case "false", "False":
		return false
	case "null", "~", "Null":
		return nil
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
