package synth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRoundTrip pins the topology format's self-consistency: loading
// a document, compiling it, re-serializing the spec and loading the
// serialization again must yield an identical spec digest AND an
// identical compiled model — for both the YAML and JSON forms, which
// are synonyms by construction.
func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"arrestor.yaml", "hostile.yaml"} {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("..", "..", "examples", "synth", name))
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			s1, err := Parse(data)
			if err != nil {
				t.Fatalf("parse (yaml): %v", err)
			}
			c1, err := Compile(s1)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}

			// Re-serialize (canonical JSON) and load again.
			ser, err := s1.Serialize()
			if err != nil {
				t.Fatalf("serialize: %v", err)
			}
			s2, err := Parse(ser)
			if err != nil {
				t.Fatalf("parse (re-serialized JSON): %v", err)
			}
			c2, err := Compile(s2)
			if err != nil {
				t.Fatalf("compile (round-tripped): %v", err)
			}

			d1, err := s1.Digest()
			if err != nil {
				t.Fatalf("digest: %v", err)
			}
			d2, err := s2.Digest()
			if err != nil {
				t.Fatalf("digest (round-tripped): %v", err)
			}
			if d1 != d2 {
				ser2, _ := s2.Serialize()
				t.Errorf("spec digest changed across round trip:\n%s\nvs\n%s", ser, ser2)
			}

			// The compiled topology must be identical too: compare the
			// model's canonical JSON serialization.
			m1, err := c1.System.MarshalJSON()
			if err != nil {
				t.Fatalf("marshal system: %v", err)
			}
			m2, err := c2.System.MarshalJSON()
			if err != nil {
				t.Fatalf("marshal system (round-tripped): %v", err)
			}
			if !bytes.Equal(m1, m2) {
				t.Errorf("model digest changed across round trip:\n%s\nvs\n%s", m1, m2)
			}
		})
	}
}

// TestYAMLAndJSONFormsAgree feeds the same document through both
// decoders and requires identical digests — YAML ints and JSON floats
// must not produce distinguishable specs.
func TestYAMLAndJSONFormsAgree(t *testing.T) {
	yamlDoc := []byte(`
name: agree
slots: 2
signals:
  - {name: a, width: 16}
  - {name: b, width: 12}
environment:
  kind: waveform
  params:
    seed: 7
  bind:
    d0: a
modules:
  - name: M
    schedule: slot:1
    fn: gain
    inputs: [a]
    outputs: [b]
    params:
      mul: 3
      div: 2
system_outputs: [b]
`)
	jsonDoc := []byte(`{
  "name": "agree",
  "slots": 2,
  "signals": [{"name": "a", "width": 16}, {"name": "b", "width": 12}],
  "environment": {"kind": "waveform", "params": {"seed": 7.0}, "bind": {"d0": "a"}},
  "modules": [{
    "name": "M", "schedule": "slot:1", "fn": "gain",
    "inputs": ["a"], "outputs": ["b"],
    "params": {"mul": 3.0, "div": 2.0}
  }],
  "system_outputs": ["b"]
}`)
	sy, err := Parse(yamlDoc)
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	sj, err := Parse(jsonDoc)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	dy, err := sy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dj, err := sj.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if dy != dj {
		y, _ := sy.Serialize()
		j, _ := sj.Serialize()
		t.Errorf("YAML and JSON forms digest differently:\n%s\nvs\n%s", y, j)
	}
}
