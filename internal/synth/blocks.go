package synth

// The transfer-function library: the composable per-module behaviours
// a declarative topology can reference by name. Each block is a pure
// step function over its input ports plus (for the stateful ones) a
// small hidden state that participates in checkpointing via
// model.Stateful — exactly the contract the hand-written targets
// implement, so a compiled module is indistinguishable from a
// hand-written one to the scheduler, the snapshotter and the
// injection traps.
//
// The domain-specific blocks (clock, pulse_counter, median3,
// checkpoint_law, pi_regulator, slew_limiter) replicate the arrestor
// modules' integer arithmetic to the bit, which is what lets
// examples/synth/arrestor.yaml reproduce the hand-written target's
// permeability matrix exactly. The hazard blocks (feed, mine, tarpit)
// replicate internal/hostile for crash/hang parity testing and
// fuzzing of the supervised execution layer.

import (
	"fmt"
	"sort"

	"propane/internal/model"
	"propane/internal/sim"
)

// blockInstance is one instantiated transfer function. Step reads the
// latched input-port values and must write every output port.
type blockInstance interface {
	Step(now sim.Millis, in, out []uint16)
	model.Stateful
}

// buildCtx carries per-instance construction context into block
// factories.
type buildCtx struct {
	kernel *sim.Kernel
	slots  int
}

// paramKind classifies a block parameter's value shape.
type paramKind int

const (
	scalarParam paramKind = iota // one number
	listParam                    // a list of numbers
)

type paramDef struct {
	kind     paramKind
	required bool
}

// blockDef describes one library entry: its arity, parameter schema
// and factory. inputs < 0 means variadic (>= 1); outputs < 0 means
// "one output per input".
type blockDef struct {
	inputs, outputs int
	params          map[string]paramDef
	// check, if non-nil, enforces cross-parameter constraints at
	// validation time (after the per-key kind checks).
	check func(p blockParams) error
	build func(p blockParams, ctx *buildCtx) (blockInstance, error)
}

// checkParams validates a module's raw parameter map against the
// schema. Every error wraps ErrInvalidSpec (via the caller's fail).
func (d blockDef) checkParams(raw map[string]any) error {
	for key, v := range raw {
		pd, ok := d.params[key]
		if !ok {
			known := make([]string, 0, len(d.params))
			for k := range d.params {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown param %q (known: %v)", key, known)
		}
		switch pd.kind {
		case scalarParam:
			if _, err := toNumber(v); err != nil {
				return fmt.Errorf("param %q: %v", key, err)
			}
		case listParam:
			if _, err := toNumberList(v); err != nil {
				return fmt.Errorf("param %q: %v", key, err)
			}
		}
	}
	for key, pd := range d.params {
		if pd.required {
			if _, ok := raw[key]; !ok {
				return fmt.Errorf("missing required param %q", key)
			}
		}
	}
	if d.check != nil {
		return d.check(blockParams(raw))
	}
	return nil
}

// toNumber accepts the numeric shapes a param can arrive in: float64
// from the JSON decoding path, or native Go ints when a Spec is built
// programmatically (the topology fuzzer does this).
func toNumber(v any) (float64, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	case uint16:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("want a number, got %T", v)
	}
}

func toNumberList(v any) ([]float64, error) {
	switch l := v.(type) {
	case []any:
		out := make([]float64, len(l))
		for i, e := range l {
			n, err := toNumber(e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %v", i, err)
			}
			out[i] = n
		}
		return out, nil
	case []float64:
		return append([]float64(nil), l...), nil
	default:
		return nil, fmt.Errorf("want a list of numbers, got %T", v)
	}
}

// blockParams wraps a validated raw parameter map with typed,
// defaulting accessors. The accessors assume checkParams passed.
type blockParams map[string]any

func (p blockParams) num(key string, def float64) float64 {
	v, ok := p[key]
	if !ok {
		return def
	}
	n, err := toNumber(v)
	if err != nil {
		return def
	}
	return n
}

func (p blockParams) u16(key string, def uint16) uint16 { return uint16(p.num(key, float64(def))) }
func (p blockParams) i64(key string, def int64) int64   { return int64(p.num(key, float64(def))) }
func (p blockParams) i32(key string, def int32) int32   { return int32(p.num(key, float64(def))) }
func (p blockParams) uint(key string, def uint) uint    { return uint(p.num(key, float64(def))) }

func (p blockParams) list16(key string) []uint16 {
	v, ok := p[key]
	if !ok {
		return nil
	}
	l, err := toNumberList(v)
	if err != nil {
		return nil
	}
	out := make([]uint16, len(l))
	for i, n := range l {
		out[i] = uint16(n)
	}
	return out
}

// stateless is embedded by blocks with no hidden state.
type stateless struct{}

func (stateless) State() any { return nil }
func (stateless) Restore(state any) error {
	if state != nil {
		return fmt.Errorf("synth: state is %T, want nil (stateless block)", state)
	}
	return nil
}

// ---- domain blocks (arrestor semantics, bit-exact) ----

// clockBlock mirrors arrestor.clock: in [slot(feedback)],
// out [mscnt, slot].
type clockBlock struct {
	period uint16
	mscnt  uint16
}

func (b *clockBlock) Step(now sim.Millis, in, out []uint16) {
	slot := (in[0] + 1) % b.period
	b.mscnt++
	out[0] = b.mscnt
	out[1] = slot
}

type clockState struct{ Mscnt uint16 }

func (b *clockBlock) State() any { return clockState{Mscnt: b.mscnt} }
func (b *clockBlock) Restore(state any) error {
	var s clockState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.mscnt = s.Mscnt
	return nil
}

// pulseCounterBlock mirrors arrestor.distS: in [pacnt, tic1, tcnt],
// out [pulscnt, slow, stopped].
type pulseCounterBlock struct {
	slowGapTicks  uint16
	stopPersistMs uint16

	initialized bool
	lastPACNT   uint16
	pulscnt     uint16
	noPulseMs   uint16
	stopped     bool
}

func (b *pulseCounterBlock) Step(now sim.Millis, in, out []uint16) {
	pacnt, tic1, tcnt := in[0], in[1], in[2]

	if !b.initialized {
		b.lastPACNT = pacnt
		b.initialized = true
	}
	delta := pacnt - b.lastPACNT // uint16 arithmetic: wrap-safe
	b.lastPACNT = pacnt
	b.pulscnt += delta

	gap := tcnt - tic1
	slow := gap > b.slowGapTicks

	if delta == 0 {
		if b.noPulseMs < ^uint16(0) {
			b.noPulseMs++
		}
	} else {
		b.noPulseMs = 0
	}
	if b.noPulseMs >= b.stopPersistMs {
		b.stopped = true
	}

	out[0] = b.pulscnt
	out[1] = boolVal(slow)
	out[2] = boolVal(b.stopped)
}

func boolVal(v bool) uint16 {
	if v {
		return 1
	}
	return 0
}

type pulseCounterState struct {
	Initialized bool
	LastPACNT   uint16
	Pulscnt     uint16
	NoPulseMs   uint16
	Stopped     bool
}

func (b *pulseCounterBlock) State() any {
	return pulseCounterState{
		Initialized: b.initialized, LastPACNT: b.lastPACNT,
		Pulscnt: b.pulscnt, NoPulseMs: b.noPulseMs, Stopped: b.stopped,
	}
}
func (b *pulseCounterBlock) Restore(state any) error {
	var s pulseCounterState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.initialized, b.lastPACNT = s.Initialized, s.LastPACNT
	b.pulscnt, b.noPulseMs, b.stopped = s.Pulscnt, s.NoPulseMs, s.Stopped
	return nil
}

// median3Block mirrors arrestor.presS: a shift then a priming
// median-of-3 filter. in [raw], out [filtered].
type median3Block struct {
	shift uint

	hist [3]uint16
	n    int
}

func (b *median3Block) Step(now sim.Millis, in, out []uint16) {
	raw := in[0] >> b.shift
	if b.n < len(b.hist) {
		b.hist[b.n] = raw
		b.n++
	} else {
		b.hist[0], b.hist[1], b.hist[2] = b.hist[1], b.hist[2], raw
	}
	out[0] = b.median()
}

func (b *median3Block) median() uint16 {
	switch b.n {
	case 0:
		return 0
	case 1:
		return b.hist[0]
	case 2:
		// With two samples, take the newer (filter still priming).
		return b.hist[1]
	}
	a, m, c := b.hist[0], b.hist[1], b.hist[2]
	if a > m {
		a, m = m, a
	}
	if m > c {
		m = c
	}
	if a > m {
		m = a
	}
	return m
}

type median3State struct {
	Hist [3]uint16
	N    int
}

func (b *median3Block) State() any { return median3State{Hist: b.hist, N: b.n} }
func (b *median3Block) Restore(state any) error {
	var s median3State
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.hist, b.n = s.Hist, s.N
	return nil
}

// checkpointLawBlock mirrors arrestor.calc: the checkpoint-table
// control law. in [pulscnt, mscnt, slow, stopped, i(feedback)],
// out [i, setValue].
type checkpointLawBlock struct {
	checkpoints []uint16
	profile     []uint16 // len(checkpoints)+1
	windowMs    uint16
	vRefPulses  uint16
	slowTarget  uint16

	lastMs, lastPc uint16
	windowPulses   uint16
}

func (b *checkpointLawBlock) Step(now sim.Millis, in, out []uint16) {
	pc, ms := in[0], in[1]
	slow, stopped := in[2] != 0, in[3] != 0
	i := in[4]

	n := uint16(len(b.checkpoints))
	if i > n {
		i = n // defensive clamp of the checkpoint index
	}
	for i < n && pc >= b.checkpoints[i] {
		i++
	}

	if ms-b.lastMs >= b.windowMs {
		b.windowPulses = pc - b.lastPc
		b.lastMs = ms
		b.lastPc = pc
	}

	target := uint32(b.profile[i]) * uint32(b.windowPulses) / uint32(b.vRefPulses)
	if target > 65535 {
		target = 65535
	}
	if slow {
		target = uint32(b.slowTarget)
	}
	if stopped {
		target = 0
	}

	out[0] = i
	out[1] = uint16(target)
}

type checkpointLawState struct {
	LastMs, LastPc uint16
	WindowPulses   uint16
}

func (b *checkpointLawBlock) State() any {
	return checkpointLawState{LastMs: b.lastMs, LastPc: b.lastPc, WindowPulses: b.windowPulses}
}
func (b *checkpointLawBlock) Restore(state any) error {
	var s checkpointLawState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.lastMs, b.lastPc, b.windowPulses = s.LastMs, s.LastPc, s.WindowPulses
	return nil
}

// piRegulatorBlock mirrors arrestor.vReg: feedforward plus clamped
// integral trim. in [setValue, measured], out [command].
type piRegulatorBlock struct {
	integShift   uint
	integLimit   int32
	trimShift    uint
	measureShift uint

	integ int32
}

func (b *piRegulatorBlock) Step(now sim.Millis, in, out []uint16) {
	sv := int32(in[0])
	iv := int32(in[1]) << b.measureShift

	err := sv - iv
	b.integ += err >> b.integShift
	if b.integ > b.integLimit {
		b.integ = b.integLimit
	}
	if b.integ < -b.integLimit {
		b.integ = -b.integLimit
	}

	o := sv + b.integ>>b.trimShift
	if o < 0 {
		o = 0
	}
	if o > 65535 {
		o = 65535
	}
	out[0] = uint16(o)
}

type piRegulatorState struct{ Integ int32 }

func (b *piRegulatorBlock) State() any { return piRegulatorState{Integ: b.integ} }
func (b *piRegulatorBlock) Restore(state any) error {
	var s piRegulatorState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.integ = s.Integ
	return nil
}

// slewLimiterBlock mirrors arrestor.presA: moves its output toward
// the input by at most maxSlew per step. in [target], out [current].
type slewLimiterBlock struct {
	maxSlew uint16
	current uint16
}

func (b *slewLimiterBlock) Step(now sim.Millis, in, out []uint16) {
	target := in[0]
	switch {
	case target > b.current:
		step := target - b.current
		if step > b.maxSlew {
			step = b.maxSlew
		}
		b.current += step
	case target < b.current:
		step := b.current - target
		if step > b.maxSlew {
			step = b.maxSlew
		}
		b.current -= step
	}
	out[0] = b.current
}

type slewLimiterState struct{ Current uint16 }

func (b *slewLimiterBlock) State() any { return slewLimiterState{Current: b.current} }
func (b *slewLimiterBlock) Restore(state any) error {
	var s slewLimiterState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.current = s.Current
	return nil
}

// ---- generic composable blocks ----

// gainBlock: out = clamp(in * mul / div, 65535) in integer arithmetic.
type gainBlock struct {
	stateless
	mul, div uint32
}

func (b *gainBlock) Step(now sim.Millis, in, out []uint16) {
	v := uint32(in[0]) * b.mul / b.div
	if v > 65535 {
		v = 65535
	}
	out[0] = uint16(v)
}

// saturateBlock clamps to [lo, hi].
type saturateBlock struct {
	stateless
	lo, hi uint16
}

func (b *saturateBlock) Step(now sim.Millis, in, out []uint16) {
	v := in[0]
	if v < b.lo {
		v = b.lo
	}
	if v > b.hi {
		v = b.hi
	}
	out[0] = v
}

// integrateBlock accumulates in>>shift with 16-bit wraparound.
type integrateBlock struct {
	shift uint
	acc   uint16
}

func (b *integrateBlock) Step(now sim.Millis, in, out []uint16) {
	b.acc += in[0] >> b.shift
	out[0] = b.acc
}

type integrateState struct{ Acc uint16 }

func (b *integrateBlock) State() any { return integrateState{Acc: b.acc} }
func (b *integrateBlock) Restore(state any) error {
	var s integrateState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	b.acc = s.Acc
	return nil
}

// delayBlock emits its input delayed by N steps (zeros until primed).
type delayBlock struct {
	fifo []uint16
}

func (b *delayBlock) Step(now sim.Millis, in, out []uint16) {
	out[0] = b.fifo[0]
	copy(b.fifo, b.fifo[1:])
	b.fifo[len(b.fifo)-1] = in[0]
}

type delayState struct{ Fifo []uint16 }

func (b *delayBlock) State() any {
	return delayState{Fifo: append([]uint16(nil), b.fifo...)}
}
func (b *delayBlock) Restore(state any) error {
	var s delayState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	if len(s.Fifo) != len(b.fifo) {
		return fmt.Errorf("synth: delay state has %d slots, block has %d", len(s.Fifo), len(b.fifo))
	}
	copy(b.fifo, s.Fifo)
	return nil
}

// lookupBlockFn maps the input through a table, clamping the index to
// the last entry.
type lookupTableBlock struct {
	stateless
	table []uint16
}

func (b *lookupTableBlock) Step(now sim.Millis, in, out []uint16) {
	idx := int(in[0])
	if idx >= len(b.table) {
		idx = len(b.table) - 1
	}
	out[0] = b.table[idx]
}

// offsetBlock adds a constant with 16-bit wraparound.
type offsetBlock struct {
	stateless
	add uint16
}

func (b *offsetBlock) Step(now sim.Millis, in, out []uint16) { out[0] = in[0] + b.add }

// sumBlock folds all inputs into one output with 16-bit wraparound.
type sumBlock struct{ stateless }

func (b *sumBlock) Step(now sim.Millis, in, out []uint16) {
	var acc uint16
	for _, v := range in {
		acc += v
	}
	out[0] = acc
}

// passthroughBlock copies each input to the matching output.
type passthroughBlock struct{ stateless }

func (b *passthroughBlock) Step(now sim.Millis, in, out []uint16) { copy(out, in) }

// ---- hazard blocks (hostile semantics) ----

// feedBlock mirrors hostile.feed: derives two working values from the
// command input and the tick, masked below the poison bit.
type feedBlock struct {
	stateless
	mask uint16
}

func (b *feedBlock) Step(now sim.Millis, in, out []uint16) {
	out[0] = (in[0] + uint16(now)) & b.mask
	out[1] = (in[0] ^ uint16(now*3)) & b.mask
}

// mineBlock mirrors hostile.mine: passes its input through unless it
// carries a poison bit, in which case it panics like target code
// dereferencing a corrupted pointer.
type mineBlock struct {
	stateless
	poison uint16
}

func (b *mineBlock) Step(now sim.Millis, in, out []uint16) {
	v := in[0]
	if v&b.poison != 0 {
		panic(fmt.Sprintf("synth: mine tripped by %#04x at t=%dms", v, now))
	}
	out[0] = v
}

// tarpitBlock mirrors hostile.tarpit: spins forever on a poisoned
// input, charging the kernel's step budget each iteration so only the
// watchdog can end the run.
type tarpitBlock struct {
	stateless
	kernel *sim.Kernel
	poison uint16
}

func (b *tarpitBlock) Step(now sim.Millis, in, out []uint16) {
	v := in[0]
	for v&b.poison != 0 {
		b.kernel.Charge(1)
	}
	out[0] = v
}

// ---- the library ----

var blockLibrary = map[string]blockDef{
	"clock": {
		inputs: 1, outputs: 2,
		params: map[string]paramDef{"slot_period": {kind: scalarParam}},
		check: func(p blockParams) error {
			if v, ok := p["slot_period"]; ok {
				if n, _ := toNumber(v); n < 1 {
					return fmt.Errorf("slot_period must be >= 1")
				}
			}
			return nil
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &clockBlock{period: p.u16("slot_period", uint16(ctx.slots))}, nil
		},
	},
	"pulse_counter": {
		inputs: 3, outputs: 3,
		params: map[string]paramDef{
			"slow_gap_ticks":  {kind: scalarParam, required: true},
			"stop_persist_ms": {kind: scalarParam, required: true},
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &pulseCounterBlock{
				slowGapTicks:  p.u16("slow_gap_ticks", 0),
				stopPersistMs: p.u16("stop_persist_ms", 0),
			}, nil
		},
	},
	"median3": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"shift": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &median3Block{shift: p.uint("shift", 0)}, nil
		},
	},
	"checkpoint_law": {
		inputs: 5, outputs: 2,
		params: map[string]paramDef{
			"checkpoints":  {kind: listParam, required: true},
			"profile":      {kind: listParam, required: true},
			"window_ms":    {kind: scalarParam, required: true},
			"v_ref_pulses": {kind: scalarParam, required: true},
			"slow_target":  {kind: scalarParam, required: true},
		},
		check: func(p blockParams) error {
			ck, _ := toNumberList(p["checkpoints"])
			pf, _ := toNumberList(p["profile"])
			if len(ck) == 0 {
				return fmt.Errorf("checkpoints must be non-empty")
			}
			if len(pf) != len(ck)+1 {
				return fmt.Errorf("profile needs len(checkpoints)+1 = %d entries, got %d", len(ck)+1, len(pf))
			}
			if n, _ := toNumber(p["v_ref_pulses"]); n < 1 {
				return fmt.Errorf("v_ref_pulses must be >= 1")
			}
			return nil
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &checkpointLawBlock{
				checkpoints: p.list16("checkpoints"),
				profile:     p.list16("profile"),
				windowMs:    p.u16("window_ms", 0),
				vRefPulses:  p.u16("v_ref_pulses", 1),
				slowTarget:  p.u16("slow_target", 0),
			}, nil
		},
	},
	"pi_regulator": {
		inputs: 2, outputs: 1,
		params: map[string]paramDef{
			"integ_shift":   {kind: scalarParam},
			"integ_limit":   {kind: scalarParam},
			"trim_shift":    {kind: scalarParam},
			"measure_shift": {kind: scalarParam},
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &piRegulatorBlock{
				integShift:   p.uint("integ_shift", 4),
				integLimit:   p.i32("integ_limit", 16384),
				trimShift:    p.uint("trim_shift", 2),
				measureShift: p.uint("measure_shift", 8),
			}, nil
		},
	},
	"slew_limiter": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"max_slew": {kind: scalarParam, required: true}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &slewLimiterBlock{maxSlew: p.u16("max_slew", 0)}, nil
		},
	},
	"gain": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{
			"mul": {kind: scalarParam},
			"div": {kind: scalarParam},
		},
		check: func(p blockParams) error {
			if v, ok := p["div"]; ok {
				if n, _ := toNumber(v); n < 1 {
					return fmt.Errorf("div must be >= 1")
				}
			}
			return nil
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &gainBlock{mul: uint32(p.i64("mul", 1)), div: uint32(p.i64("div", 1))}, nil
		},
	},
	"saturate": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{
			"lo": {kind: scalarParam},
			"hi": {kind: scalarParam},
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &saturateBlock{lo: p.u16("lo", 0), hi: p.u16("hi", 65535)}, nil
		},
	},
	"integrate": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"shift": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &integrateBlock{shift: p.uint("shift", 0)}, nil
		},
	},
	"delay": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"ticks": {kind: scalarParam}},
		check: func(p blockParams) error {
			if v, ok := p["ticks"]; ok {
				if n, _ := toNumber(v); n < 1 || n > 1024 {
					return fmt.Errorf("ticks must be in [1, 1024]")
				}
			}
			return nil
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &delayBlock{fifo: make([]uint16, p.i64("ticks", 1))}, nil
		},
	},
	"lookup": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"table": {kind: listParam, required: true}},
		check: func(p blockParams) error {
			if l, _ := toNumberList(p["table"]); len(l) == 0 {
				return fmt.Errorf("table must be non-empty")
			}
			return nil
		},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &lookupTableBlock{table: p.list16("table")}, nil
		},
	},
	"offset": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"add": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &offsetBlock{add: p.u16("add", 0)}, nil
		},
	},
	"sum": {
		inputs: -1, outputs: 1,
		params: map[string]paramDef{},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &sumBlock{}, nil
		},
	},
	"passthrough": {
		inputs: -1, outputs: -1,
		params: map[string]paramDef{},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &passthroughBlock{}, nil
		},
	},
	"feed": {
		inputs: 1, outputs: 2,
		params: map[string]paramDef{"mask": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &feedBlock{mask: p.u16("mask", 0x7FFF)}, nil
		},
	},
	"mine": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"poison_mask": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &mineBlock{poison: p.u16("poison_mask", 0x8000)}, nil
		},
	},
	"tarpit": {
		inputs: 1, outputs: 1,
		params: map[string]paramDef{"poison_mask": {kind: scalarParam}},
		build: func(p blockParams, ctx *buildCtx) (blockInstance, error) {
			return &tarpitBlock{kernel: ctx.kernel, poison: p.u16("poison_mask", 0x8000)}, nil
		},
	},
}

// lookupBlock returns the library entry for a transfer-function name.
func lookupBlock(name string) (blockDef, bool) {
	d, ok := blockLibrary[name]
	return d, ok
}

// blockNames returns the library's names, sorted.
func blockNames() []string {
	names := make([]string, 0, len(blockLibrary))
	for n := range blockLibrary {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
