package synth

// Topology fuzzing: GenerateTopology derives a random-but-valid spec
// from a seed and CheckTopology compiles it and runs its quick-tier
// campaign twice, requiring determinism. The generator keeps one
// invariant: every signal is 15 bits wide and every environment
// waveform is masked below bit 15, so a golden run can never trip a
// mine or tarpit — crashes and hangs only ever come from injections,
// which the supervised execution layer must classify, never escalate
// into an engine failure.

import (
	"fmt"
	"math/rand"
	"reflect"

	"propane/internal/campaign"
	"propane/internal/synth/workload"
)

// fuzzKinds lists the block types the generator draws from, with the
// parameter choices it can make for each. Multi-input blocks are only
// eligible once the signal pool is deep enough.
var fuzzKinds = []string{
	"passthrough", "gain", "saturate", "offset", "integrate", "delay",
	"lookup", "sum", "median3", "feed", "slew_limiter",
	"pi_regulator", "mine", "tarpit",
}

// GenerateTopology deterministically derives a random topology from a
// seed: 1-3 waveform-driven boundary signals, 3-8 modules wired
// feed-forward from the growing signal pool (possibly including mines
// and tarpits), a sink collecting into the system output, and a tiny
// quick campaign tier. The same seed always yields the same spec.
func GenerateTopology(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	slots := 1 + rng.Intn(4)

	var signals []SignalSpec
	var pool []string
	declare := func(name string) string {
		signals = append(signals, SignalSpec{Name: name, Width: 15})
		return name
	}

	bind := make(map[string]string)
	nBoundary := 1 + rng.Intn(3)
	for i := 0; i < nBoundary; i++ {
		name := declare(fmt.Sprintf("env%d", i))
		pool = append(pool, name)
		bind[fmt.Sprintf("w%d", i)] = name
	}
	env := EnvSpec{
		Kind:   "waveform",
		Params: map[string]float64{"seed": float64(1 + rng.Intn(1<<20))},
		Bind:   bind,
	}

	// pick samples k distinct signals from the pool.
	pick := func(k int) []string {
		idx := rng.Perm(len(pool))[:k]
		out := make([]string, k)
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}
	schedule := func() string {
		switch rng.Intn(3) {
		case 0:
			return "every-tick"
		case 1:
			return "background"
		default:
			return fmt.Sprintf("slot:%d", rng.Intn(slots))
		}
	}

	nMods := 3 + rng.Intn(6)
	var modules []ModuleSpec
	next := 0
	fresh := func() string {
		next++
		name := declare(fmt.Sprintf("s%d", next))
		return name
	}
	for m := 0; m < nMods; m++ {
		kind := fuzzKinds[rng.Intn(len(fuzzKinds))]
		if kind == "pi_regulator" && len(pool) < 2 {
			kind = "gain"
		}
		mod := ModuleSpec{
			Name:     fmt.Sprintf("M%d", m),
			Schedule: schedule(),
			Fn:       kind,
		}
		switch kind {
		case "passthrough":
			mod.Inputs = pick(1 + rng.Intn(min(2, len(pool))))
			for range mod.Inputs {
				mod.Outputs = append(mod.Outputs, fresh())
			}
		case "sum":
			mod.Inputs = pick(1 + rng.Intn(min(2, len(pool))))
			mod.Outputs = []string{fresh()}
		case "pi_regulator":
			mod.Inputs = pick(2)
			mod.Outputs = []string{fresh()}
		case "feed":
			mod.Inputs = pick(1)
			mod.Outputs = []string{fresh(), fresh()}
			mod.Params = map[string]any{"mask": float64(0x7FFF)}
		default:
			mod.Inputs = pick(1)
			mod.Outputs = []string{fresh()}
			switch kind {
			case "gain":
				mod.Params = map[string]any{
					"mul": float64(1 + rng.Intn(8)),
					"div": float64(1 + rng.Intn(4)),
				}
			case "saturate":
				lo := rng.Intn(1024)
				mod.Params = map[string]any{
					"lo": float64(lo),
					"hi": float64(lo + rng.Intn(0x4000)),
				}
			case "offset":
				mod.Params = map[string]any{"add": float64(rng.Intn(4096))}
			case "integrate":
				mod.Params = map[string]any{"shift": float64(rng.Intn(5))}
			case "delay":
				mod.Params = map[string]any{"ticks": float64(1 + rng.Intn(8))}
			case "lookup":
				table := make([]any, 1+rng.Intn(6))
				for i := range table {
					table[i] = float64(rng.Intn(0x8000))
				}
				mod.Params = map[string]any{"table": table}
			case "median3":
				mod.Params = map[string]any{"shift": float64(rng.Intn(9))}
			case "slew_limiter":
				mod.Params = map[string]any{"max_slew": float64(1 + rng.Intn(4096))}
			case "mine", "tarpit":
				mod.Params = map[string]any{"poison_mask": float64(0x8000)}
			}
		}
		modules = append(modules, mod)
		pool = append(pool, mod.Outputs...)
	}

	// A sink guarantees at least one driven, unconsumed system output
	// regardless of how the random wiring worked out.
	sink := ModuleSpec{
		Name:     "SINK",
		Schedule: "every-tick",
		Fn:       "sum",
		Inputs:   pick(1 + rng.Intn(min(2, len(pool)))),
		Outputs:  []string{declare("out")},
	}
	modules = append(modules, sink)

	horizon := int64(40 + rng.Intn(20))
	return &Spec{
		Name:        fmt.Sprintf("fuzz-%d", seed),
		Description: "generated topology (fuzzer)",
		Slots:       slots,
		Signals:     signals,
		Environment: env,
		Modules:     modules,
		SystemOutputs: []string{
			"out",
		},
		Campaign: map[string]TierSpec{
			"quick": {
				Workload: func() workload.Spec {
					mass := 9000 + 100*float64(rng.Intn(50))
					return workload.Spec{
						Kind: "grid", NMass: 1, NVel: 2,
						MassLo: mass, MassHi: mass,
						VelLo: 45, VelHi: 65,
					}
				}(),
				TimesMs:        []int64{int64(5 + rng.Intn(10)), int64(20 + rng.Intn(15))},
				Bits:           []uint{uint(rng.Intn(15)), 15},
				HorizonMs:      horizon,
				DirectWindowMs: 10,
				// Generous for honest execution, tight enough that a
				// poisoned tarpit trips it well before the wall clock.
				BudgetSteps: horizon*int64(len(modules)+4) + 2048,
			},
		},
	}
}

// campaignSummary is a deterministic, comparable digest of a campaign
// Result: per-run records plus the exported aggregate statistics.
type campaignSummary struct {
	Records   map[string]string
	Pairs     []string
	Totals    string
	Locations string
}

func runSummary(cfg campaign.Config) (*campaignSummary, error) {
	cfg.Workers = 1
	sum := &campaignSummary{Records: make(map[string]string)}
	cfg.Observer = func(rec campaign.RunRecord) {
		key := fmt.Sprintf("%s#%d", rec.Injection.String(), rec.CaseIndex)
		sum.Records[key] = fmt.Sprintf("%v|%v|%v|%v|%v|%q|%d|%v",
			rec.Outcome, rec.Fired, rec.FiredAt, rec.SystemFailure,
			rec.FailureAt, rec.Detail, rec.Attempts, rec.Diffs)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range res.Pairs {
		sum.Pairs = append(sum.Pairs, fmt.Sprintf("%v|%d|%d|%v|%v|%v|%d|%d|%d|%d",
			p.Pair, p.Injections, p.Errors, p.Estimate, p.CI, p.MeanLatencyMs,
			p.Transients, p.Permanents, p.Crashes, p.Hangs))
	}
	sum.Totals = fmt.Sprintf("runs=%d unfired=%d crashes=%d hangs=%d quarantined=%d",
		res.Runs, res.Unfired, res.Crashes, res.Hangs, len(res.Quarantined))
	sum.Locations = fmt.Sprintf("%v", res.Locations)
	return sum, nil
}

// CheckTopology validates, compiles and campaigns a topology, then
// repeats the campaign and requires a bit-identical summary. Any
// validation error, compile error, campaign error or divergence is
// returned; an engine panic propagates to the caller (that is the
// fuzzing oracle: compiled targets may crash and hang, the engine may
// not).
func CheckTopology(s *Spec) error {
	compiled, err := Compile(s)
	if err != nil {
		return err
	}
	cfg, err := compiled.Config("quick")
	if err != nil {
		return err
	}
	first, err := runSummary(cfg)
	if err != nil {
		return fmt.Errorf("synth: campaign on %s: %w", s.Name, err)
	}
	cfg2, err := compiled.Config("quick")
	if err != nil {
		return err
	}
	second, err := runSummary(cfg2)
	if err != nil {
		return fmt.Errorf("synth: re-run campaign on %s: %w", s.Name, err)
	}
	if !reflect.DeepEqual(first, second) {
		return fmt.Errorf("synth: topology %s is non-deterministic across identical campaigns", s.Name)
	}
	return nil
}
