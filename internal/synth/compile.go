package synth

// The compilation pipeline: Spec → model.System (the static topology
// the permeability analysis runs over) + target.Target (the dynamic
// instance factory the campaign engine drives). A compiled instance
// is Checkpointable — kernel time, budget accounting, bus signals and
// every block's and the environment's hidden state are captured and
// restored — so checkpoint fast-forward and run-result memoization
// apply to DSL targets unchanged.

import (
	"fmt"
	"sort"

	"propane/internal/campaign"
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/synth/workload"
	"propane/internal/target"
)

// Compiled is the result of compiling a spec: the static topology and
// the runnable target.
type Compiled struct {
	Spec   *Spec
	System *model.System
	Target *target.Target
}

// Compile validates a spec and compiles it. The returned target's New
// constructor builds fresh, fully wired, Checkpointable instances.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sys, err := buildSystem(s)
	if err != nil {
		return nil, err
	}
	t := &target.Target{
		Name:     s.Name,
		Topology: func() *model.System { return sys },
		New: func(tc physics.TestCase, hook sim.ReadHook) (target.RunnableInstance, error) {
			return newInstance(s, tc, hook)
		},
	}
	return &Compiled{Spec: s, System: sys, Target: t}, nil
}

// buildSystem lowers the spec's module list onto model.Builder, which
// enforces the topology-level invariants (single driver per signal,
// driven system outputs, non-empty boundary).
func buildSystem(s *Spec) (*model.System, error) {
	b := model.NewBuilder(s.Name)
	for _, m := range s.Modules {
		b.AddModule(m.Name, m.Inputs, m.Outputs)
	}
	for _, out := range s.SystemOutputs {
		b.DeclareSystemOutput(out)
	}
	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: compiling topology %q: %w", s.Name, err)
	}
	return sys, nil
}

// moduleTask adapts a block instance to the kernel's Task interface
// with instrumented input reads: every read of an input signal passes
// through the injection/logging hook before the value is latched, in
// port order — the same read discipline every hand-written module
// follows, so traps fire at identical points in the execution.
type moduleTask struct {
	name   string
	onRead sim.ReadHook

	in, out       []*sim.Signal
	inBuf, outBuf []uint16
	outMask       []uint16
	block         blockInstance
}

// Name implements sim.Task.
func (m *moduleTask) Name() string { return m.name }

// Step implements sim.Task: latch all inputs (through the trap, in
// port order), run the transfer function, write all outputs (in port
// order, masked to each signal's declared width).
func (m *moduleTask) Step(now sim.Millis) {
	for i, s := range m.in {
		if m.onRead != nil {
			m.onRead(m.name, s.Name(), s, now)
		}
		m.inBuf[i] = s.Read()
	}
	m.block.Step(now, m.inBuf, m.outBuf)
	for i, s := range m.out {
		s.Write(m.outBuf[i] & m.outMask[i])
	}
}

// instance is one wired simulation of a compiled topology.
type instance struct {
	kernel *sim.Kernel
	bus    *sim.Bus

	snap     *sim.Snapshotter
	stateful []model.Stateful
}

// Bus implements target.Instance.
func (in *instance) Bus() *sim.Bus { return in.bus }

// Kernel implements target.Instance.
func (in *instance) Kernel() *sim.Kernel { return in.kernel }

// Run implements target.RunnableInstance.
func (in *instance) Run(horizon sim.Millis) { in.kernel.Run(horizon, nil) }

// Checkpoint implements target.Checkpointable.
func (in *instance) Checkpoint() (*sim.Snapshot, error) {
	snap := in.snap.Capture()
	snap.Hidden = model.CaptureStates(in.stateful)
	return snap, nil
}

// Restore implements target.Checkpointable.
func (in *instance) Restore(snap *sim.Snapshot) error {
	if err := in.snap.Restore(snap); err != nil {
		return err
	}
	return model.RestoreStates(in.stateful, snap.Hidden)
}

// newInstance wires one fresh instance for a test case.
func newInstance(s *Spec, tc physics.TestCase, hook sim.ReadHook) (target.RunnableInstance, error) {
	slots := s.Slots
	if slots == 0 {
		slots = 1
	}
	kernel, err := sim.NewKernel(slots)
	if err != nil {
		return nil, err
	}
	bus := sim.NewBus()

	// Register declared signals first, in declaration order, then any
	// referenced-but-undeclared signals as modules mention them
	// (Register deduplicates; registration order does not influence
	// traces, which sample in sorted-name order).
	widths := make(map[string]int)
	for _, sig := range s.Signals {
		bus.Register(sig.Name)
		widths[sig.Name] = sig.Width
	}
	sig := func(name string) *sim.Signal { return bus.Register(name) }

	env, err := buildEnv(s.Environment, tc, sig)
	if err != nil {
		return nil, err
	}
	kernel.AddPreHook(env.pre)

	if s.SlotSignal != "" {
		kernel.UseSlotSignal(sig(s.SlotSignal))
	}

	ctx := &buildCtx{kernel: kernel, slots: slots}
	in := &instance{kernel: kernel, bus: bus}
	in.stateful = append(in.stateful, env.stateful...)

	for _, m := range s.Modules {
		def, ok := lookupBlock(m.Fn)
		if !ok {
			return nil, invalidf("synth: module %q: unknown transfer function %q", m.Name, m.Fn)
		}
		block, err := def.build(blockParams(m.Params), ctx)
		if err != nil {
			return nil, fmt.Errorf("synth: building module %q: %w", m.Name, err)
		}
		task := &moduleTask{
			name:    m.Name,
			onRead:  hook,
			inBuf:   make([]uint16, len(m.Inputs)),
			outBuf:  make([]uint16, len(m.Outputs)),
			outMask: make([]uint16, len(m.Outputs)),
			block:   block,
		}
		for _, name := range m.Inputs {
			task.in = append(task.in, sig(name))
		}
		for i, name := range m.Outputs {
			task.out = append(task.out, sig(name))
			w, ok := widths[name]
			if !ok || w >= MaxSignalWidth {
				task.outMask[i] = 0xFFFF
			} else {
				task.outMask[i] = uint16(1)<<w - 1
			}
		}
		switch m.Schedule {
		case "every-tick":
			kernel.AddEveryTick(task)
		case "background":
			kernel.AddBackground(task)
		default:
			slot, ok := parseSlot(m.Schedule)
			if !ok {
				return nil, invalidf("synth: module %q: unknown schedule %q", m.Name, m.Schedule)
			}
			if err := kernel.AddSlotted(slot, task); err != nil {
				return nil, fmt.Errorf("synth: scheduling module %q: %w", m.Name, err)
			}
		}
		in.stateful = append(in.stateful, block)
	}
	// Make sure every system output exists on the bus even if no
	// module mentions it (the builder already guarantees it is driven,
	// so this is belt and braces for direct instance users).
	for _, name := range s.SystemOutputs {
		sig(name)
	}

	in.snap = sim.NewSnapshotter(kernel, bus)
	return in, nil
}

// Tiers returns the spec's campaign tier names, sorted.
func (c *Compiled) Tiers() []string {
	tiers := make([]string, 0, len(c.Spec.Campaign))
	for t := range c.Spec.Campaign {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	return tiers
}

// Config materialises one campaign tier of the document into a
// runnable campaign configuration: workload generation expands the
// tier's workload spec into concrete test cases, and the compiled
// target plugs in as campaign.Config.Custom.
func (c *Compiled) Config(tier string) (campaign.Config, error) {
	ts, ok := c.Spec.Campaign[tier]
	if !ok {
		return campaign.Config{}, fmt.Errorf("synth: spec %q has no campaign tier %q (have %v)",
			c.Spec.Name, tier, c.Tiers())
	}
	cases, err := workload.Generate(ts.Workload)
	if err != nil {
		return campaign.Config{}, fmt.Errorf("synth: tier %q workload: %w", tier, err)
	}
	times := make([]sim.Millis, len(ts.TimesMs))
	for i, t := range ts.TimesMs {
		times[i] = sim.Millis(t)
	}
	// Validate already vetted the spelling; a failure here means the
	// spec bypassed Parse.
	mode, err := campaign.ParseAdaptiveMode(ts.Adaptive)
	if err != nil {
		return campaign.Config{}, fmt.Errorf("synth: tier %q: %w", tier, err)
	}
	return campaign.Config{
		Custom:         c.Target,
		TestCases:      cases,
		Times:          times,
		Bits:           append([]uint(nil), ts.Bits...),
		HorizonMs:      sim.Millis(ts.HorizonMs),
		DirectWindowMs: sim.Millis(ts.DirectWindowMs),
		Budget:         sim.Budget{Steps: ts.BudgetSteps},
		Adaptive:       mode,
		CIEpsilon:      ts.CIEpsilon,
	}, nil
}
