package synth_test

// Equivalence suite for the declarative target DSL: compiling
// examples/synth/arrestor.yaml must produce a campaign matrix that is
// bit-identical to the hand-written registry "paper" instance — every
// per-run record, every permeability pair, every location row. The
// hostile document proves crash/hang outcome parity: the supervised
// execution layer classifies a compiled mine/tarpit exactly as it
// classifies the hand-written one. The suite runs under -race in CI.
//
// The tests live in an external package because they compare against
// the runner registry, and runner imports synth.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"propane/internal/campaign"
	"propane/internal/runner"
	"propane/internal/synth"
)

// synthQuickConfig compiles an example document and builds its quick
// tier campaign configuration.
func synthQuickConfig(t *testing.T, file string) campaign.Config {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "synth", file))
	if err != nil {
		t.Fatalf("reading %s: %v", file, err)
	}
	spec, err := synth.Parse(data)
	if err != nil {
		t.Fatalf("parsing %s: %v", file, err)
	}
	compiled, err := synth.Compile(spec)
	if err != nil {
		t.Fatalf("compiling %s: %v", file, err)
	}
	cfg, err := compiled.Config("quick")
	if err != nil {
		t.Fatalf("quick tier of %s: %v", file, err)
	}
	return cfg
}

// registryQuickConfig builds the quick tier of a hand-written
// registry instance.
func registryQuickConfig(t *testing.T, name string) campaign.Config {
	t.Helper()
	def, err := runner.Lookup(name)
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	cfg, err := def.Config(runner.TierQuick)
	if err != nil {
		t.Fatalf("quick config of %s: %v", name, err)
	}
	return cfg
}

// runKeyed executes the campaign and returns the Result plus every
// RunRecord keyed by (injection, case).
func runKeyed(t *testing.T, cfg campaign.Config) (*campaign.Result, map[string]campaign.RunRecord) {
	t.Helper()
	var mu sync.Mutex
	records := make(map[string]campaign.RunRecord)
	cfg.Observer = func(rec campaign.RunRecord) {
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%s#%d", rec.Injection.String(), rec.CaseIndex)
		if _, dup := records[key]; dup {
			t.Errorf("duplicate record for %s", key)
		}
		records[key] = rec
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, records
}

// assertMatricesEqual compares the hand-written baseline against the
// DSL-compiled run. With exactDetail the Detail strings must match
// byte for byte; without it only the outcome classification is
// compared (panic messages legitimately carry different package
// prefixes).
func assertMatricesEqual(t *testing.T, hand, dsl *campaign.Result,
	handRecs, dslRecs map[string]campaign.RunRecord, exactDetail bool) {
	t.Helper()
	if len(dslRecs) != len(handRecs) {
		t.Fatalf("DSL run produced %d records, hand-written %d", len(dslRecs), len(handRecs))
	}
	for key, h := range handRecs {
		d, ok := dslRecs[key]
		if !ok {
			t.Errorf("%s: missing from DSL run", key)
			continue
		}
		if h.Outcome != d.Outcome || h.Fired != d.Fired || h.FiredAt != d.FiredAt ||
			h.SystemFailure != d.SystemFailure || h.FailureAt != d.FailureAt ||
			h.Attempts != d.Attempts {
			t.Errorf("%s: record diverges:\nhand-written: %+v\nDSL: %+v", key, h, d)
		}
		if exactDetail && h.Detail != d.Detail {
			t.Errorf("%s: detail diverges:\nhand-written: %q\nDSL: %q", key, h.Detail, d.Detail)
		}
		if !reflect.DeepEqual(h.Diffs, d.Diffs) {
			t.Errorf("%s: diffs diverge:\nhand-written: %v\nDSL: %v", key, h.Diffs, d.Diffs)
		}
	}

	if hand.Runs != dsl.Runs || hand.Unfired != dsl.Unfired ||
		hand.Crashes != dsl.Crashes || hand.Hangs != dsl.Hangs ||
		len(hand.Quarantined) != len(dsl.Quarantined) {
		t.Errorf("totals diverge: runs %d/%d unfired %d/%d crashes %d/%d hangs %d/%d",
			hand.Runs, dsl.Runs, hand.Unfired, dsl.Unfired,
			hand.Crashes, dsl.Crashes, hand.Hangs, dsl.Hangs)
	}
	if len(hand.Pairs) != len(dsl.Pairs) {
		t.Fatalf("pair count diverges: %d vs %d", len(hand.Pairs), len(dsl.Pairs))
	}
	for i := range hand.Pairs {
		h, d := hand.Pairs[i], dsl.Pairs[i]
		if h.Pair != d.Pair || h.Injections != d.Injections || h.Errors != d.Errors ||
			h.Estimate != d.Estimate || h.CI != d.CI || h.MeanLatencyMs != d.MeanLatencyMs ||
			h.Transients != d.Transients || h.Permanents != d.Permanents ||
			h.Crashes != d.Crashes || h.Hangs != d.Hangs {
			t.Errorf("pair %v diverges:\nhand-written: %+v\nDSL: %+v", h.Pair, h, d)
		}
	}
	if !reflect.DeepEqual(hand.Locations, dsl.Locations) {
		t.Errorf("location propagation diverges:\nhand-written: %+v\nDSL: %+v",
			hand.Locations, dsl.Locations)
	}
}

// TestSynthArrestorBitIdentical pins the headline acceptance: the
// DSL-compiled arrestor's quick-tier campaign matrix equals the
// hand-written "paper" instance's, run for run and digit for digit —
// including golden-run diffs, latencies and Detail strings.
func TestSynthArrestorBitIdentical(t *testing.T) {
	hand, handRecs := runKeyed(t, registryQuickConfig(t, "paper"))
	dsl, dslRecs := runKeyed(t, synthQuickConfig(t, "arrestor.yaml"))
	assertMatricesEqual(t, hand, dsl, handRecs, dslRecs, true)
}

// TestSynthHostileOutcomeParity proves crash/hang parity: the
// DSL-compiled adversarial pipeline produces the same outcome for
// every (injection, case) as the hand-written hostile instance.
// Detail strings are excluded (the panic messages carry different
// package prefixes), but crash records on both sides must blame the
// mine.
func TestSynthHostileOutcomeParity(t *testing.T) {
	hand, handRecs := runKeyed(t, registryQuickConfig(t, "hostile"))
	dsl, dslRecs := runKeyed(t, synthQuickConfig(t, "hostile.yaml"))
	assertMatricesEqual(t, hand, dsl, handRecs, dslRecs, false)

	crashes := 0
	for key, h := range handRecs {
		d := dslRecs[key]
		if h.Outcome != campaign.OutcomeCrash {
			continue
		}
		crashes++
		if !strings.Contains(h.Detail, "mine tripped") {
			t.Errorf("%s: hand-written crash detail %q does not blame the mine", key, h.Detail)
		}
		if !strings.Contains(d.Detail, "mine tripped") {
			t.Errorf("%s: DSL crash detail %q does not blame the mine", key, d.Detail)
		}
	}
	if crashes == 0 {
		t.Error("quick tier produced no crashes; the parity check is vacuous")
	}
}
