package synth

// Environment models for compiled targets. An environment is the
// pre-tick hook that refreshes the topology's boundary input signals
// (simulated hardware registers) and consumes its boundary outputs —
// the role the hand-written targets implement as "glue" code. Three
// kinds are provided:
//
//   - "arrestor": the cable-physics world of internal/physics with a
//     register glue layer replicating internal/arrestor's to the bit,
//     so a DSL re-expression of the paper's target sees exactly the
//     same sensor values the hand-written one does;
//   - "ramp": the deterministic command ramp of internal/hostile,
//     folding the workload point into a base command value;
//   - "waveform": a seeded pseudo-random stimulus for arbitrary
//     (e.g. fuzz-generated) topologies, driving any number of bound
//     signals with workload-dependent, reproducible waveforms.

import (
	"fmt"
	"math"
	"sort"

	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
)

// envRuntime is one instantiated environment: its per-tick hook and
// the hidden state it contributes to checkpoints.
type envRuntime struct {
	pre      sim.Hook
	stateful []model.Stateful
}

// envDef describes one environment kind's parameter and binding
// schema for validation.
type envDef struct {
	params map[string]bool // known parameter names
	// binds maps required role names; when openBinds is true any role
	// name is accepted (waveform) but at least one must be given.
	binds     []string
	openBinds bool
}

var envLibrary = map[string]envDef{
	"arrestor": {
		params: map[string]bool{
			"ticks_per_ms": true, "pulses_per_meter": true,
			"max_brake_force_n": true, "valve_tau_s": true,
			"drag_ns_per_m": true, "stop_velocity_ms": true,
			"num_brakes": true,
		},
		binds: []string{"command", "pacnt", "tic1", "tcnt", "adc"},
	},
	"ramp": {
		params: map[string]bool{"mass_div": true, "now_div": true, "mask": true},
		binds:  []string{"command"},
	},
	"waveform": {
		params:    map[string]bool{"seed": true, "mask": true},
		openBinds: true,
	},
}

// validateEnv checks an environment spec against the schema; declared
// (when non-empty) is the signals section for dangling-bind checks.
func validateEnv(e EnvSpec, declared map[string]int) error {
	def, ok := envLibrary[e.Kind]
	if !ok {
		kinds := make([]string, 0, len(envLibrary))
		for k := range envLibrary {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		return invalidf("synth: unknown environment kind %q (want one of %v)", e.Kind, kinds)
	}
	for k := range e.Params {
		if !def.params[k] {
			return invalidf("synth: environment %q: unknown param %q", e.Kind, k)
		}
	}
	for _, role := range def.binds {
		if e.Bind[role] == "" {
			return invalidf("synth: environment %q: missing binding for role %q", e.Kind, role)
		}
	}
	if !def.openBinds {
		for role := range e.Bind {
			known := false
			for _, r := range def.binds {
				if r == role {
					known = true
				}
			}
			if !known {
				return invalidf("synth: environment %q: unknown binding role %q", e.Kind, role)
			}
		}
	} else if len(e.Bind) == 0 {
		return invalidf("synth: environment %q: needs at least one bound signal", e.Kind)
	}
	if len(declared) > 0 {
		for role, name := range e.Bind {
			if _, ok := declared[name]; !ok {
				return invalidf("synth: environment binding %q → %q is a dangling wire: not in the signals section", role, name)
			}
		}
	}
	return nil
}

// buildEnv instantiates the environment for one test case. sig
// resolves a bound signal name to its bus handle.
func buildEnv(e EnvSpec, tc physics.TestCase, sig func(string) *sim.Signal) (*envRuntime, error) {
	p := blockParams{}
	for k, v := range e.Params {
		p[k] = v
	}
	switch e.Kind {
	case "arrestor":
		return buildArrestorEnv(p, e.Bind, tc, sig)
	case "ramp":
		base := uint16(int64(tc.MassKg/float64(p.num("mass_div", 10)))+int64(tc.VelocityMS)) & p.u16("mask", 0x3FFF)
		nowDiv := p.i64("now_div", 16)
		mask := p.u16("mask", 0x3FFF)
		cmd := sig(e.Bind["command"])
		return &envRuntime{
			pre: func(now sim.Millis) {
				cmd.Write((base + uint16(int64(now)/nowDiv)) & mask)
			},
		}, nil
	case "waveform":
		return buildWaveformEnv(p, e.Bind, tc, sig)
	}
	return nil, invalidf("synth: unknown environment kind %q", e.Kind)
}

// arrestorEnv replicates internal/arrestor's glue layer bit for bit:
// it advances the physics world one millisecond per tick, refreshes
// the timer/pulse/ADC registers and applies the command signal to the
// valve.
type arrestorEnv struct {
	world *physics.World

	command, pacnt, tic1, tcnt, adc *sim.Signal

	ticksPerMs uint16
	tcntVal    uint16
	pacntVal   uint16
}

func buildArrestorEnv(p blockParams, bind map[string]string, tc physics.TestCase, sig func(string) *sim.Signal) (*envRuntime, error) {
	cfg := physics.DefaultConfig()
	if v, ok := p["pulses_per_meter"]; ok {
		cfg.PulsesPerMeter, _ = toNumber(v)
	}
	if v, ok := p["max_brake_force_n"]; ok {
		cfg.MaxBrakeForceN, _ = toNumber(v)
	}
	if v, ok := p["valve_tau_s"]; ok {
		cfg.ValveTauS, _ = toNumber(v)
	}
	if v, ok := p["drag_ns_per_m"]; ok {
		cfg.DragNsPerM, _ = toNumber(v)
	}
	if v, ok := p["stop_velocity_ms"]; ok {
		cfg.StopVelocityMS, _ = toNumber(v)
	}
	if _, ok := p["num_brakes"]; ok {
		cfg.NumBrakes = int(p.i64("num_brakes", 0))
	}
	world, err := physics.NewWorld(cfg, tc)
	if err != nil {
		return nil, fmt.Errorf("synth: building physics world: %w", err)
	}
	env := &arrestorEnv{
		world:      world,
		command:    sig(bind["command"]),
		pacnt:      sig(bind["pacnt"]),
		tic1:       sig(bind["tic1"]),
		tcnt:       sig(bind["tcnt"]),
		adc:        sig(bind["adc"]),
		ticksPerMs: p.u16("ticks_per_ms", 250),
	}
	return &envRuntime{pre: env.preTick, stateful: []model.Stateful{world, env}}, nil
}

// preTick mirrors arrestor.glue.preTick exactly.
func (g *arrestorEnv) preTick(now sim.Millis) {
	// Valve command: the command register as written by the actuator
	// module on its last invocation.
	g.world.SetCommand(float64(g.command.Read()) / 65535)

	pulses := g.world.Step(0.001)

	// Free-running 16-bit timer counter: wraps naturally.
	g.tcntVal += g.ticksPerMs
	g.tcnt.Write(g.tcntVal)

	// Pulse accumulator and input capture: on pulses, bump the
	// accumulator and latch the capture register to "now".
	if pulses > 0 {
		g.pacntVal += uint16(pulses)
		g.pacnt.Write(g.pacntVal)
		g.tic1.Write(g.tcntVal)
	}

	// A/D conversion of applied pressure: 8-bit result left-justified
	// in the 16-bit register.
	sample := uint16(g.world.PressureFrac()*255 + 0.5)
	if sample > 255 {
		sample = 255
	}
	g.adc.Write(sample << 8)
}

type arrestorEnvState struct {
	TcntVal  uint16
	PacntVal uint16
}

func (g *arrestorEnv) State() any {
	return arrestorEnvState{TcntVal: g.tcntVal, PacntVal: g.pacntVal}
}

func (g *arrestorEnv) Restore(state any) error {
	var s arrestorEnvState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	g.tcntVal, g.pacntVal = s.TcntVal, s.PacntVal
	return nil
}

// waveformEnv drives each bound signal with a seeded pseudo-random
// waveform. The generator state is hidden state (checkpointable), the
// seed folds in the workload point so distinct cases produce distinct
// golden traces, and the default mask keeps values below bit 15 so
// hazard blocks stay dormant in golden runs.
type waveformEnv struct {
	sigs  []*sim.Signal
	mask  uint16
	state uint64
}

func buildWaveformEnv(p blockParams, bind map[string]string, tc physics.TestCase, sig func(string) *sim.Signal) (*envRuntime, error) {
	roles := make([]string, 0, len(bind))
	for r := range bind {
		roles = append(roles, r)
	}
	sort.Strings(roles) // deterministic drive order
	env := &waveformEnv{mask: p.u16("mask", 0x7FFF)}
	for _, r := range roles {
		env.sigs = append(env.sigs, sig(bind[r]))
	}
	seed := uint64(p.i64("seed", 1))
	seed ^= math.Float64bits(tc.MassKg) * 0x9E3779B97F4A7C15
	seed ^= math.Float64bits(tc.VelocityMS) << 17
	if seed == 0 {
		seed = 0x9E3779B9
	}
	env.state = seed
	return &envRuntime{pre: env.preTick, stateful: []model.Stateful{env}}, nil
}

func (w *waveformEnv) preTick(now sim.Millis) {
	for _, s := range w.sigs {
		w.state = w.state*6364136223846793005 + 1442695040888963407
		s.Write(uint16(w.state>>48) & w.mask)
	}
}

type waveformEnvState struct{ State uint64 }

func (w *waveformEnv) State() any { return waveformEnvState{State: w.state} }
func (w *waveformEnv) Restore(state any) error {
	var s waveformEnvState
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	w.state = s.State
	return nil
}
