package synth

import (
	"errors"
	"testing"
)

// FuzzTopology is the native fuzz target: any int64 must yield a
// valid spec whose campaign runs deterministically with zero engine
// panics — injected crashes and hangs are classified outcomes, never
// escalations.
func FuzzTopology(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		spec := GenerateTopology(seed)
		if err := CheckTopology(spec); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// TestFuzzTopologies sweeps a fixed band of seeds — the acceptance
// floor is 200 random topologies with zero engine panics. -short
// trims the band so the package test stays quick in CI's default
// lane; the synth-fuzz-smoke job runs the full sweep.
func TestFuzzTopologies(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 25
	}
	for seed := int64(1); seed <= n; seed++ {
		spec := GenerateTopology(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}
		if err := CheckTopology(spec); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzSpecsRoundTrip: generated specs must survive the canonical
// serialization cycle like hand-written ones.
func TestFuzzSpecsRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s1 := GenerateTopology(seed)
		ser, err := s1.Serialize()
		if err != nil {
			t.Fatalf("seed %d: serialize: %v", seed, err)
		}
		s2, err := Parse(ser)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		d1, err := s1.Digest()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := s2.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Errorf("seed %d: digest changed across round trip", seed)
		}
	}
}

// TestCheckTopologyRejectsInvalid: the checker must refuse a broken
// spec with ErrInvalidSpec rather than running it.
func TestCheckTopologyRejectsInvalid(t *testing.T) {
	s := GenerateTopology(1)
	s.SystemOutputs = nil
	if err := CheckTopology(s); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("want ErrInvalidSpec, got %v", err)
	}
}
