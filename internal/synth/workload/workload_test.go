package workload

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"propane/internal/physics"
)

func TestGridMatchesPhysicsGrid(t *testing.T) {
	got, err := Generate(Spec{Kind: "grid", NMass: 2, NVel: 2,
		MassLo: 8000, MassHi: 20000, VelLo: 40, VelHi: 80})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want, err := physics.Grid(2, 2, 8000, 20000, 40, 80)
	if err != nil {
		t.Fatalf("physics.Grid: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grid workload diverges from physics.Grid:\n got %v\nwant %v", got, want)
	}
}

func TestSeededKindsAreDeterministic(t *testing.T) {
	specs := []Spec{
		{Kind: "uniform", Seed: 7, N: 16, MassLo: 8000, MassHi: 20000, VelLo: 40, VelHi: 80},
		{Kind: "normal", Seed: 99, N: 16, MassMean: 14000, MassStd: 3000,
			VelMean: 60, VelStd: 10, MassLo: 8000, MassHi: 20000, VelLo: 40, VelHi: 80},
	}
	for _, s := range specs {
		a, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		b, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations of the same spec diverge", s.Kind)
		}
		if len(a) != s.N {
			t.Errorf("%s: got %d cases, want %d", s.Kind, len(a), s.N)
		}
		for i, tc := range a {
			if tc.MassKg < s.MassLo || tc.MassKg > s.MassHi ||
				tc.VelocityMS < s.VelLo || tc.VelocityMS > s.VelHi {
				t.Errorf("%s case %d out of bounds: %v", s.Kind, i, tc)
			}
		}
	}
	// Distinct seeds must draw distinct workloads.
	a, _ := Generate(specs[0])
	shifted := specs[0]
	shifted.Seed = 8
	b, _ := Generate(shifted)
	if reflect.DeepEqual(a, b) {
		t.Error("uniform: distinct seeds produced identical workloads")
	}
}

func TestPhasesConcatenate(t *testing.T) {
	s := Spec{Kind: "phases", Phases: []Spec{
		{Kind: "grid", NMass: 1, NVel: 2, MassLo: 9000, MassHi: 9000, VelLo: 40, VelHi: 80},
		{Kind: "uniform", Seed: 3, N: 3, MassLo: 15000, MassHi: 20000, VelLo: 50, VelHi: 60},
	}}
	cases, err := Generate(s)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(cases) != 5 {
		t.Fatalf("got %d cases, want 5", len(cases))
	}
	if cases[0].MassKg != 9000 || cases[2].MassKg < 15000 {
		t.Errorf("phase boundary wrong: %v", cases)
	}
}

func TestTraceReplay(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "cases.csv")
	if err := os.WriteFile(csv, []byte("# recorded arrestments\n12000, 55\n18000,72\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases, err := Generate(Spec{Kind: "trace", Path: csv})
	if err != nil {
		t.Fatalf("csv trace: %v", err)
	}
	want := []physics.TestCase{{MassKg: 12000, VelocityMS: 55}, {MassKg: 18000, VelocityMS: 72}}
	if !reflect.DeepEqual(cases, want) {
		t.Errorf("csv trace: got %v, want %v", cases, want)
	}

	jsonPath := filepath.Join(dir, "cases.json")
	if err := os.WriteFile(jsonPath,
		[]byte(`[{"mass_kg": 9000, "velocity_ms": 44}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases, err = Generate(Spec{Kind: "trace", Path: jsonPath})
	if err != nil {
		t.Fatalf("json trace: %v", err)
	}
	if len(cases) != 1 || cases[0].MassKg != 9000 {
		t.Errorf("json trace: got %v", cases)
	}
}

func TestValidationRejections(t *testing.T) {
	bad := map[string]Spec{
		"no kind":        {},
		"unknown kind":   {Kind: "zipf"},
		"grid dims":      {Kind: "grid", NMass: 0, NVel: 2},
		"grid bounds":    {Kind: "grid", NMass: 2, NVel: 2, MassLo: 2, MassHi: 1},
		"uniform n":      {Kind: "uniform", MassLo: 1, MassHi: 2, VelLo: 1, VelHi: 2},
		"uniform bounds": {Kind: "uniform", N: 4, MassLo: 0, MassHi: 2, VelLo: 1, VelHi: 2},
		"normal mean":    {Kind: "normal", N: 4, MassMean: 0, VelMean: 60},
		"normal std":     {Kind: "normal", N: 4, MassMean: 1, VelMean: 60, VelStd: -1},
		"phases empty":   {Kind: "phases"},
		"phases nested":  {Kind: "phases", Phases: []Spec{{Kind: "phases", Phases: []Spec{{Kind: "trace", Path: "x"}}}}},
		"trace no path":  {Kind: "trace"},
		"phase invalid":  {Kind: "phases", Phases: []Spec{{Kind: "grid"}}},
	}
	for name, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("%s: Generate accepted invalid spec %+v", name, s)
		} else if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: error %v does not wrap ErrInvalidSpec", name, err)
		}
	}
	if _, err := Generate(Spec{Kind: "trace", Path: "/nonexistent/really"}); err == nil {
		t.Error("trace with missing file accepted")
	}
}
