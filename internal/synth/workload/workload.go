// Package workload provides parameterized workload generation for
// campaign targets: deterministic, seeded distributions over the
// physical profile parameters (mass, velocity) that drive a target's
// environment. The paper's Section 6 makes permeability estimates
// explicitly workload-driven — "the profile of the usage of the
// system" selects which propagation paths are exercised — so workload
// generation *is* scenario generation: one declarative target plus a
// family of workload specs yields a family of campaigns.
//
// Every generator is deterministic: the same Spec always produces the
// same test-case list, byte for byte, so journals, shards and
// distributed workers agree on the campaign enumeration (the same
// property the hand-written physics.Grid workloads have).
package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"propane/internal/physics"
)

// ErrInvalidSpec is wrapped by every validation error of this package,
// so callers can distinguish a malformed workload description from an
// execution failure with errors.Is.
var ErrInvalidSpec = errors.New("workload: invalid spec")

func invalidf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInvalidSpec)...)
}

// Spec describes one workload generator. Kind selects the generator;
// the other fields parameterise it (unused fields are ignored by
// kinds that do not read them, but Validate rejects obviously
// inconsistent combinations).
type Spec struct {
	// Kind selects the generator: "grid", "uniform", "normal",
	// "phases" or "trace".
	Kind string `json:"kind"`
	// Seed drives the pseudo-random kinds (uniform, normal). The same
	// seed always yields the same cases.
	Seed int64 `json:"seed,omitempty"`
	// N is the number of cases drawn by the random kinds.
	N int `json:"n,omitempty"`
	// NMass and NVel are the grid dimensions of kind "grid".
	NMass int `json:"n_mass,omitempty"`
	NVel  int `json:"n_vel,omitempty"`
	// MassLo/MassHi and VelLo/VelHi bound the mass (kg) and velocity
	// (m/s) ranges for "grid" and "uniform", and clamp "normal".
	MassLo float64 `json:"mass_lo,omitempty"`
	MassHi float64 `json:"mass_hi,omitempty"`
	VelLo  float64 `json:"vel_lo,omitempty"`
	VelHi  float64 `json:"vel_hi,omitempty"`
	// MassMean/MassStd and VelMean/VelStd parameterise kind "normal".
	MassMean float64 `json:"mass_mean,omitempty"`
	MassStd  float64 `json:"mass_std,omitempty"`
	VelMean  float64 `json:"vel_mean,omitempty"`
	VelStd   float64 `json:"vel_std,omitempty"`
	// Phases concatenates sub-workloads for kind "phases" (multi-phase
	// profiles: e.g. a block of light/fast engagements followed by a
	// block of heavy/slow ones).
	Phases []Spec `json:"phases,omitempty"`
	// Path names the recorded-trace file for kind "trace": one case
	// per line, "massKg,velocityMS" (CSV, '#' comments allowed) or a
	// JSON array of {"mass_kg":..,"velocity_ms":..} objects.
	Path string `json:"path,omitempty"`
}

// Validate reports spec errors; every returned error wraps
// ErrInvalidSpec.
func (s Spec) Validate() error {
	switch s.Kind {
	case "grid":
		if s.NMass < 1 || s.NVel < 1 {
			return invalidf("workload: grid needs n_mass and n_vel >= 1 (got %d×%d)", s.NMass, s.NVel)
		}
		if s.MassLo > s.MassHi || s.VelLo > s.VelHi {
			return invalidf("workload: grid bounds out of order")
		}
	case "uniform":
		if s.N < 1 {
			return invalidf("workload: uniform needs n >= 1")
		}
		if s.MassLo <= 0 || s.MassHi < s.MassLo || s.VelLo <= 0 || s.VelHi < s.VelLo {
			return invalidf("workload: uniform needs 0 < mass_lo <= mass_hi and 0 < vel_lo <= vel_hi")
		}
	case "normal":
		if s.N < 1 {
			return invalidf("workload: normal needs n >= 1")
		}
		if s.MassMean <= 0 || s.VelMean <= 0 {
			return invalidf("workload: normal needs positive mass_mean and vel_mean")
		}
		if s.MassStd < 0 || s.VelStd < 0 {
			return invalidf("workload: normal needs non-negative deviations")
		}
	case "phases":
		if len(s.Phases) == 0 {
			return invalidf("workload: phases needs at least one sub-workload")
		}
		for i, p := range s.Phases {
			if p.Kind == "phases" {
				return invalidf("workload: phase %d nests another phases spec", i)
			}
			if err := p.Validate(); err != nil {
				return fmt.Errorf("workload: phase %d: %w", i, err)
			}
		}
	case "trace":
		if s.Path == "" {
			return invalidf("workload: trace needs a path")
		}
	case "":
		return invalidf("workload: no kind given")
	default:
		return invalidf("workload: unknown kind %q (want grid, uniform, normal, phases or trace)", s.Kind)
	}
	return nil
}

// Generate produces the test-case list. The result is deterministic:
// equal specs always generate equal lists.
func Generate(s Spec) ([]physics.TestCase, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "grid":
		return physics.Grid(s.NMass, s.NVel, s.MassLo, s.MassHi, s.VelLo, s.VelHi)
	case "uniform":
		return uniform(s), nil
	case "normal":
		return normal(s), nil
	case "phases":
		var cases []physics.TestCase
		for i, p := range s.Phases {
			sub, err := Generate(p)
			if err != nil {
				return nil, fmt.Errorf("workload: phase %d: %w", i, err)
			}
			cases = append(cases, sub...)
		}
		return cases, nil
	case "trace":
		return readTrace(s.Path)
	}
	return nil, invalidf("workload: unknown kind %q", s.Kind)
}

// round1 quantises to 0.1 so generated cases serialise compactly and
// digest identically across float formatting choices.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

// uniform draws N cases uniformly from the mass/velocity box using
// the seeded generator (math/rand's Go-1-stable source, so the draw
// sequence never changes under toolchain upgrades).
func uniform(s Spec) []physics.TestCase {
	rng := rand.New(rand.NewSource(s.Seed))
	cases := make([]physics.TestCase, s.N)
	for i := range cases {
		cases[i] = physics.TestCase{
			MassKg:     round1(s.MassLo + (s.MassHi-s.MassLo)*rng.Float64()),
			VelocityMS: round1(s.VelLo + (s.VelHi-s.VelLo)*rng.Float64()),
		}
	}
	return cases
}

// normal draws N cases from independent normal distributions over
// mass and velocity, clamped to the [lo, hi] box when bounds are
// given (a zero bound leaves that side open, except that results are
// always kept strictly positive so physics.NewWorld accepts them).
func normal(s Spec) []physics.TestCase {
	rng := rand.New(rand.NewSource(s.Seed))
	clamp := func(v, lo, hi, fallback float64) float64 {
		if lo > 0 && v < lo {
			v = lo
		}
		if hi > 0 && v > hi {
			v = hi
		}
		if v <= 0 {
			v = fallback
		}
		return round1(v)
	}
	cases := make([]physics.TestCase, s.N)
	for i := range cases {
		m := s.MassMean + s.MassStd*rng.NormFloat64()
		v := s.VelMean + s.VelStd*rng.NormFloat64()
		cases[i] = physics.TestCase{
			MassKg:     clamp(m, s.MassLo, s.MassHi, s.MassMean),
			VelocityMS: clamp(v, s.VelLo, s.VelHi, s.VelMean),
		}
	}
	return cases
}

// readTrace replays a recorded workload trace: CSV lines
// "massKg,velocityMS" (blank lines and '#' comments skipped) or a
// JSON array of {"mass_kg":..,"velocity_ms":..} objects.
func readTrace(path string) ([]physics.TestCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var rows []struct {
			MassKg     float64 `json:"mass_kg"`
			VelocityMS float64 `json:"velocity_ms"`
		}
		if err := json.Unmarshal([]byte(trimmed), &rows); err != nil {
			return nil, invalidf("workload: trace %s: %v", path, err)
		}
		cases := make([]physics.TestCase, 0, len(rows))
		for i, r := range rows {
			if r.MassKg <= 0 || r.VelocityMS <= 0 {
				return nil, invalidf("workload: trace %s row %d: non-positive mass or velocity", path, i)
			}
			cases = append(cases, physics.TestCase{MassKg: r.MassKg, VelocityMS: r.VelocityMS})
		}
		if len(cases) == 0 {
			return nil, invalidf("workload: trace %s holds no cases", path)
		}
		return cases, nil
	}
	var cases []physics.TestCase
	for ln, line := range strings.Split(trimmed, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, invalidf("workload: trace %s line %d: want massKg,velocityMS", path, ln+1)
		}
		m, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil || m <= 0 || v <= 0 {
			return nil, invalidf("workload: trace %s line %d: bad case %q", path, ln+1, line)
		}
		cases = append(cases, physics.TestCase{MassKg: m, VelocityMS: v})
	}
	if len(cases) == 0 {
		return nil, invalidf("workload: trace %s holds no cases", path)
	}
	return cases, nil
}
