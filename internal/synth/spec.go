// Package synth compiles declarative target descriptions — YAML or
// JSON documents naming modules, 16-bit signals, wiring, per-module
// transfer functions, a slot schedule and an environment binding —
// onto the existing internal/model + internal/sim machinery. The
// compiled result is a *target.Target: runnable, Checkpointable, and
// indistinguishable from a hand-written target, so checkpoint
// fast-forward and run-result memoization apply unchanged.
//
// The paper's framework (permeability, exposure, propagation trees)
// is topology-generic; this package makes topology a config artifact
// instead of a Go package, so scenario diversity no longer requires
// writing new engine code.
package synth

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"propane/internal/campaign"
	"propane/internal/synth/workload"
)

// ErrInvalidSpec is wrapped by every spec validation error, so
// callers can distinguish a malformed topology description from an
// execution failure with errors.Is.
var ErrInvalidSpec = errors.New("synth: invalid spec")

func invalidf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInvalidSpec)...)
}

// MaxSignalWidth is the widest signal the engine models; the sim
// layer carries uint16 values, so wider declarations are rejected.
const MaxSignalWidth = 16

// Spec is the root of a declarative target description.
type Spec struct {
	// Name becomes the target/registry instance name.
	Name string `json:"name"`
	// Description is shown by campaignrunner -list.
	Description string `json:"description,omitempty"`
	// Slots is the kernel slot count (default 1).
	Slots int `json:"slots,omitempty"`
	// SlotSignal optionally names the signal whose value selects the
	// active slot (kernel.UseSlotSignal); empty means now % Slots.
	SlotSignal string `json:"slot_signal,omitempty"`
	// Signals optionally declares signals with explicit widths. Any
	// signal referenced by a module but not declared here defaults to
	// the full 16 bits. When the section is present, every wire must
	// resolve to a declared signal (dangling-wire detection).
	Signals []SignalSpec `json:"signals,omitempty"`
	// Environment drives the target's inputs and consumes its outputs.
	Environment EnvSpec `json:"environment"`
	// Modules lists the software modules in schedule-declaration order.
	Modules []ModuleSpec `json:"modules"`
	// SystemOutputs names the signals observed at the system boundary.
	SystemOutputs []string `json:"system_outputs"`
	// Campaign maps tier names ("quick", "full", ...) to campaign
	// parameterisations, making the document a self-contained
	// registry instance.
	Campaign map[string]TierSpec `json:"campaign,omitempty"`
}

// SignalSpec declares one named signal and its bit width.
type SignalSpec struct {
	Name string `json:"name"`
	// Width in bits, 1..16. Zero means "not given" and is rejected —
	// a declared signal must carry at least one bit.
	Width int `json:"width"`
}

// EnvSpec selects and parameterises the environment model.
type EnvSpec struct {
	// Kind selects the environment: "arrestor" (cable-physics world
	// with sensor/actuator glue), "ramp" (deterministic mass/velocity
	// ramp stimulus) or "waveform" (seeded pseudo-random stimulus for
	// fuzzed topologies).
	Kind string `json:"kind"`
	// Params are numeric environment parameters (e.g. ticks_per_ms,
	// pulses_per_meter). Unknown keys are rejected.
	Params map[string]float64 `json:"params,omitempty"`
	// Bind maps environment roles (e.g. "command", "adc") to signal
	// names in the topology.
	Bind map[string]string `json:"bind,omitempty"`
}

// ModuleSpec declares one software module.
type ModuleSpec struct {
	Name string `json:"name"`
	// Schedule is "every-tick", "background" or "slot:N".
	Schedule string `json:"schedule"`
	// Fn names the transfer function from the block library.
	Fn string `json:"fn"`
	// Inputs and Outputs are signal names in port order. A signal may
	// appear in both lists (local feedback).
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	// Params parameterise the block (numbers, bools, or lists of
	// numbers, depending on the block).
	Params map[string]any `json:"params,omitempty"`
}

// TierSpec parameterises one campaign tier of the document.
type TierSpec struct {
	Workload       workload.Spec `json:"workload"`
	TimesMs        []int64       `json:"times_ms"`
	Bits           []uint        `json:"bits"`
	HorizonMs      int64         `json:"horizon_ms"`
	DirectWindowMs int64         `json:"direct_window_ms,omitempty"`
	// BudgetSteps bounds kernel work per run (hang detection); zero
	// means unbounded.
	BudgetSteps int64 `json:"budget_steps,omitempty"`
	// Adaptive selects sequential CI-driven sampling for this tier:
	// "off" (or absent), "auto", "force". CIEpsilon is the stopping
	// half-width ε (0 keeps the 0.05 default).
	Adaptive  string  `json:"adaptive,omitempty"`
	CIEpsilon float64 `json:"ci_epsilon,omitempty"`
}

// Parse decodes a topology document. Documents starting with '{' are
// JSON; everything else goes through the YAML-subset decoder (which
// normalises to the same generic tree, so both forms are synonyms).
// The returned spec is validated.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var jsonBytes []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		jsonBytes = trimmed
	} else {
		tree, err := decodeYAML(data)
		if err != nil {
			return nil, err
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("synth: re-encoding yaml tree: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, invalidf("synth: decoding spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Serialize renders the spec as canonical JSON: encoding/json sorts
// map keys and both int64(8) and float64(8) render as "8", so a spec
// parsed from YAML and the same spec parsed from its own JSON
// serialisation produce identical bytes.
func (s *Spec) Serialize() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("synth: serializing spec: %w", err)
	}
	return buf.Bytes(), nil
}

// Digest is the sha256 of the canonical serialisation — the spec's
// identity across load → compile → re-serialize → load round trips.
func (s *Spec) Digest() (string, error) {
	data, err := s.Serialize()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// parseSlot extracts N from a "slot:N" schedule string.
func parseSlot(schedule string) (int, bool) {
	rest, ok := strings.CutPrefix(schedule, "slot:")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Validate checks the document's internal consistency. Every
// returned error wraps ErrInvalidSpec. Topology-level constraints
// (single driver per signal, boundary existence) are additionally
// enforced by model.Builder at compile time; Validate catches what
// the builder cannot see — widths, schedules, block names/arities,
// environment bindings and tier parameters.
func (s *Spec) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, invalidf(format, args...))
	}

	if s.Name == "" {
		fail("synth: spec needs a name")
	}
	slots := s.Slots
	if slots == 0 {
		slots = 1
	}
	if slots < 1 {
		fail("synth: slots must be >= 1 (got %d)", s.Slots)
	}

	declared := make(map[string]int) // name → width
	for i, sig := range s.Signals {
		if sig.Name == "" {
			fail("synth: signal %d has an empty name", i)
			continue
		}
		if _, dup := declared[sig.Name]; dup {
			fail("synth: duplicate signal declaration %q", sig.Name)
			continue
		}
		if sig.Width < 1 {
			fail("synth: signal %q declares width %d; a signal must carry at least 1 bit", sig.Name, sig.Width)
			continue
		}
		if sig.Width > MaxSignalWidth {
			fail("synth: signal %q declares width %d; the engine models at most %d bits", sig.Name, sig.Width, MaxSignalWidth)
			continue
		}
		declared[sig.Name] = sig.Width
	}
	checkWire := func(mod, role, name string) {
		if name == "" {
			fail("synth: module %q has an empty %s signal name", mod, role)
			return
		}
		if len(declared) > 0 {
			if _, ok := declared[name]; !ok {
				fail("synth: module %q %s %q is a dangling wire: not in the signals section", mod, role, name)
			}
		}
	}

	if len(s.Modules) == 0 {
		fail("synth: spec declares no modules")
	}
	seenMod := make(map[string]bool)
	for _, m := range s.Modules {
		if m.Name == "" {
			fail("synth: a module has an empty name")
			continue
		}
		if seenMod[m.Name] {
			fail("synth: duplicate module name %q", m.Name)
			continue
		}
		seenMod[m.Name] = true

		switch m.Schedule {
		case "every-tick", "background":
		default:
			if n, ok := parseSlot(m.Schedule); !ok {
				fail("synth: module %q: unknown schedule %q (want every-tick, background or slot:N)", m.Name, m.Schedule)
			} else if n < 0 || n >= slots {
				fail("synth: module %q: slot %d out of range [0, %d)", m.Name, n, slots)
			}
		}

		def, ok := lookupBlock(m.Fn)
		if !ok {
			fail("synth: module %q: unknown transfer function %q (have %s)", m.Name, m.Fn, strings.Join(blockNames(), ", "))
		} else {
			if def.inputs >= 0 && len(m.Inputs) != def.inputs {
				fail("synth: module %q: fn %q takes %d input(s), got %d", m.Name, m.Fn, def.inputs, len(m.Inputs))
			}
			if def.inputs < 0 && len(m.Inputs) < 1 {
				fail("synth: module %q: fn %q needs at least one input", m.Name, m.Fn)
			}
			wantOut := def.outputs
			if wantOut < 0 { // variadic: outputs mirror inputs
				wantOut = len(m.Inputs)
			}
			if len(m.Outputs) != wantOut {
				fail("synth: module %q: fn %q yields %d output(s), got %d", m.Name, m.Fn, wantOut, len(m.Outputs))
			}
			if err := def.checkParams(m.Params); err != nil {
				fail("synth: module %q: %v", m.Name, err)
			}
		}
		seenIn := make(map[string]bool)
		for _, in := range m.Inputs {
			if seenIn[in] {
				fail("synth: module %q lists input %q twice", m.Name, in)
			}
			seenIn[in] = true
			checkWire(m.Name, "input", in)
		}
		seenOut := make(map[string]bool)
		for _, out := range m.Outputs {
			if seenOut[out] {
				fail("synth: module %q lists output %q twice", m.Name, out)
			}
			seenOut[out] = true
			checkWire(m.Name, "output", out)
		}
	}

	if s.SlotSignal != "" && len(declared) > 0 {
		if _, ok := declared[s.SlotSignal]; !ok {
			fail("synth: slot_signal %q is not in the signals section", s.SlotSignal)
		}
	}
	if len(s.SystemOutputs) == 0 {
		fail("synth: spec declares no system_outputs")
	}
	for _, out := range s.SystemOutputs {
		checkWire("(system)", "system output", out)
	}

	if err := validateEnv(s.Environment, declared); err != nil {
		errs = append(errs, err)
	}

	for tier, ts := range s.Campaign {
		if err := ts.Workload.Validate(); err != nil {
			fail("synth: campaign tier %q: %v", tier, err)
		}
		if len(ts.TimesMs) == 0 {
			fail("synth: campaign tier %q: no injection times", tier)
		}
		for _, t := range ts.TimesMs {
			if t < 0 {
				fail("synth: campaign tier %q: negative injection time %d", tier, t)
			}
		}
		if len(ts.Bits) == 0 {
			fail("synth: campaign tier %q: no bits", tier)
		}
		for _, b := range ts.Bits {
			if b >= MaxSignalWidth {
				fail("synth: campaign tier %q: bit %d out of range [0, %d)", tier, b, MaxSignalWidth)
			}
		}
		if ts.HorizonMs < 1 {
			fail("synth: campaign tier %q: horizon_ms must be >= 1", tier)
		}
		if ts.DirectWindowMs < 0 {
			fail("synth: campaign tier %q: negative direct_window_ms", tier)
		}
		if ts.BudgetSteps < 0 {
			fail("synth: campaign tier %q: negative budget_steps", tier)
		}
		if _, err := campaign.ParseAdaptiveMode(ts.Adaptive); err != nil {
			fail("synth: campaign tier %q: adaptive must be off, auto or force (got %q)", tier, ts.Adaptive)
		}
		if ts.CIEpsilon < 0 || ts.CIEpsilon >= 0.5 {
			fail("synth: campaign tier %q: ci_epsilon %v outside [0, 0.5)", tier, ts.CIEpsilon)
		}
	}

	return errors.Join(errs...)
}
