// Package distrib turns the single-process campaign runner into a
// horizontally scalable service. An HTTP coordinator carves a registry
// instance (instance × tier, via internal/runner planning) into
// contiguous job-range work units — sized by the measured per-run cost
// once the first units complete — and hands them to worker agents
// under time-bounded leases. Workers execute their unit through the
// existing supervised, checkpointed, journaled runner path locally,
// heartbeat progress while simulating, and finish with a digest-only
// completion: the unit's record-set digest plus outcome/prune
// counters. The coordinator pulls the full records lazily — when it
// does not already hold them (the steady state: one bulk upload per
// unit, binary-framed and journaled with batched writes), on a digest
// mismatch, or always under Config.Pull — so the coordinator is off
// the hot path while units execute. When the record set covers the
// whole job space, the journal reassembles — via runner.Assemble —
// into a result bit-identical to a single-node run.
//
// Protocol v2 endpoints:
//
//	POST /v1/lease      LeaseRequest  → LeaseResponse       (JSON)
//	POST /v1/records    RecordBatch   → BatchResponse       (JSON or binary frame)
//	POST /v1/heartbeat  HeartbeatRequest → HeartbeatResponse (JSON)
//	POST /v1/complete   CompleteRequest  → CompleteResponse  (JSON)
//	GET  /status        → Status
//	GET  /metrics       → Metrics
//
// /v1/records negotiates its body encoding by Content-Type: the
// length-prefixed, gzip-compressed binary frame (ContentTypeBinary,
// see codec.go) is the default for v2 workers — the coordinator
// advertises support in LeaseResponse.Binary — and per-record JSON
// (ContentTypeJSON) remains fully supported, so version-skewed
// workers, mixed fleets and hand-rolled tooling interoperate batch by
// batch. Mid-run streaming of JSON batches (the v1 worker behavior)
// is still accepted and journaled; v2 workers simply have no reason
// to use it.
//
// A request against an unknown or expired lease fails with HTTP 409;
// the worker abandons the unit (another worker owns it now) and asks
// for new work.
//
// The protocol is hardened against the fault model internal/chaos
// injects (the fabric's own SWIFI campaign):
//
//   - every POST body — JSON or binary — carries a SHA-256 content
//     digest in X-Propane-Body-Digest; a body corrupted or truncated
//     in flight is rejected with 400/"body_digest_mismatch" before any
//     handler state changes, and the client treats that code as
//     retryable (transport damage, not a client bug);
//   - /records and /complete carry an idempotency key in
//     X-Propane-Idempotency-Key (the body digest); a duplicated
//     delivery replays the stored response verbatim instead of
//     re-executing the handler;
//   - a record batch is validated atomically — any invalid or
//     conflicting record (and any undecodable frame) rejects the whole
//     batch with nothing journaled, so a hostile or damaged batch can
//     never partially journal.
package distrib

import "propane/internal/runner"

// Endpoint paths served by Coordinator.Handler.
const (
	PathLease     = "/v1/lease"
	PathRecords   = "/v1/records"
	PathHeartbeat = "/v1/heartbeat"
	PathComplete  = "/v1/complete"
	PathStatus    = "/status"
	PathMetrics   = "/metrics"
)

// Protocol headers.
const (
	// HeaderBodyDigest carries the hex SHA-256 of the request body.
	// The coordinator verifies it before decoding; a mismatch means
	// the body was damaged in flight and the request is rejected with
	// CodeBodyDigest (retryable — the sender's copy is intact).
	HeaderBodyDigest = "X-Propane-Body-Digest"
	// HeaderIdempotencyKey makes a POST replayable: the coordinator
	// stores the response under this key and answers a duplicated
	// delivery from the store without re-executing the handler.
	HeaderIdempotencyKey = "X-Propane-Idempotency-Key"
	// HeaderIdempotentReplay marks a response served from the
	// idempotency store.
	HeaderIdempotentReplay = "X-Propane-Idempotent-Replay"
	// HeaderCampaign routes a unit-scoped request (/v1/records,
	// /v1/heartbeat, /v1/complete) to the owning campaign when one
	// endpoint multiplexes several (internal/service). The worker
	// echoes LeaseResponse.Campaign verbatim; routing reads only this
	// header, so the body — and with it the digest and idempotency
	// keys — is untouched. Absent against a single-campaign
	// coordinator (propaned -instance), which ignores it.
	HeaderCampaign = "X-Propane-Campaign"
	// HeaderTenant names the submitting tenant on the service's
	// campaign API (admission control quotas are per tenant). Absent
	// means the "default" tenant.
	HeaderTenant = "X-Propane-Tenant"
)

// Machine-readable error codes carried in errorResponse.Code.
const (
	// CodeBodyDigest: the body did not match its digest header —
	// damaged in flight; retry with the intact copy.
	CodeBodyDigest = "body_digest_mismatch"
	// CodeCrashed: a chaos crash point fired and the coordinator is
	// "dead" pending restart; retryable.
	CodeCrashed = "coordinator_crashed"
	// CodeTimeout: the per-handler deadline elapsed; retryable.
	CodeTimeout = "handler_timeout"
)

// LeaseRequest asks the coordinator for a work unit.
type LeaseRequest struct {
	// Worker names the requesting agent (stable across its restarts,
	// unique within the fleet).
	Worker string `json:"worker"`
}

// Lease-response statuses.
const (
	// StatusUnit: a work unit is attached — run it.
	StatusUnit = "unit"
	// StatusWait: every unit is leased or done but the campaign is not
	// complete — poll again after RetryMs.
	StatusWait = "wait"
	// StatusDone: the campaign is complete — the worker may exit.
	StatusDone = "done"
)

// WorkUnit is one lease-bounded slice of the campaign: the contiguous
// job range [JobLo, JobHi) of the registry instance's deterministic
// job enumeration. Ranges are carved on demand from the unassigned
// frontier, sized by the measured per-run cost once the first units
// complete, so a crash/hang-heavy campaign gets small units (no
// straggler serialises the tail) while a cheap one keeps the overhead
// of unit bookkeeping low.
type WorkUnit struct {
	Instance string `json:"instance"`
	Tier     string `json:"tier"`
	// ConfigDigest is the coordinator's runner.PlanInfo digest. The
	// worker recomputes it from the registry before executing and
	// refuses the unit on mismatch — a version-skewed worker must not
	// contribute records.
	ConfigDigest string `json:"config_digest"`
	// Unit is the unit's index in carve order (stable across
	// coordinator restarts: carve events replay from the assignment
	// journal).
	Unit int `json:"unit"`
	// JobLo and JobHi bound the unit's job range, lo inclusive, hi
	// exclusive.
	JobLo int `json:"job_lo"`
	JobHi int `json:"job_hi"`
	// JobList enumerates the unit's job indices explicitly when the
	// campaign samples adaptively: units are then claimed from the
	// sequential scheduler's importance-ordered frontier, not carved as
	// contiguous ranges, so membership is the list (JobLo/JobHi still
	// bound it for logging). Nil for full-matrix campaigns.
	JobList []int `json:"job_list,omitempty"`
	// TotalRuns is the whole campaign's job count.
	TotalRuns int `json:"total_runs"`
	// Adaptive and CIEpsilon mirror the coordinator's resolved adaptive
	// sampling options. The worker folds them into its own
	// DescribeInstance call so both sides digest the same snapshot —
	// the campaign.AdaptiveMode and stopping half-width are part of the
	// config digest exactly when they decide the job set.
	Adaptive  bool    `json:"adaptive,omitempty"`
	CIEpsilon float64 `json:"ci_epsilon,omitempty"`
	// RunBudgetSteps is the per-run watchdog budget the coordinator
	// folded into its digest; the worker must apply the same value.
	RunBudgetSteps int64 `json:"run_budget_steps,omitempty"`
	// DoneJobs lists the unit's job indices the coordinator already
	// holds (uploaded or streamed by a previous lease holder). The
	// worker neither executes nor uploads them, so a reassigned unit
	// fast-forwards.
	DoneJobs []int `json:"done_jobs,omitempty"`
	// Document carries the declarative topology source when Instance
	// is not a built-in registry entry but an API-submitted document
	// (internal/service): a worker that cannot resolve Instance locally
	// compiles and registers the document under that name before
	// executing. The config-digest check then guards the result exactly
	// as for built-ins — a worker whose compilation diverges refuses
	// the unit.
	Document string `json:"document,omitempty"`
}

// Jobs is the number of jobs the unit spans.
func (u *WorkUnit) Jobs() int {
	if u.JobList != nil {
		return len(u.JobList)
	}
	return u.JobHi - u.JobLo
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status  string    `json:"status"` // unit | wait | done
	LeaseID string    `json:"lease_id,omitempty"`
	TTLMs   int64     `json:"ttl_ms,omitempty"`
	RetryMs int64     `json:"retry_ms,omitempty"`
	Unit    *WorkUnit `json:"unit,omitempty"`
	// Binary advertises that this coordinator decodes the binary
	// record-batch frame on /v1/records. A worker facing an older
	// coordinator (field absent → false) sticks to JSON — content
	// negotiation without an extra round-trip.
	Binary bool `json:"binary,omitempty"`
	// Campaign identifies the campaign this lease belongs to when the
	// coordinator side multiplexes several over one fleet
	// (internal/service). The worker echoes it in HeaderCampaign on
	// every unit-scoped request. Empty from a single-campaign
	// coordinator — v2 workers and coordinators interoperate in both
	// directions.
	Campaign string `json:"campaign,omitempty"`
}

// RecordBatch uploads completed runs to the coordinator — the bulk
// upload after a digest-only completion answered NeedRecords, or a
// v1-style mid-run stream. Batches may overlap previous deliveries
// (worker restart, reassigned lease): records are content-keyed by
// job index, so duplicates are verified idempotent and conflicting
// content is rejected.
type RecordBatch struct {
	LeaseID string          `json:"lease_id"`
	Records []runner.Record `json:"records"`
}

// BatchResponse acknowledges a record batch.
type BatchResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// UnitDone is true once every job of the unit is journaled (the
	// coordinator settles the unit itself — a worker dying between its
	// last upload and its complete call costs nothing).
	UnitDone bool `json:"unit_done"`
}

// HeartbeatRequest renews a lease while the worker is simulating.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	// Done reports the worker's local progress (records journaled so
	// far for this unit). Purely observational — /status, /metrics and
	// ETA estimates — since the records themselves stay on the worker
	// until the unit completes.
	Done int `json:"done,omitempty"`
}

// HeartbeatResponse confirms the renewal.
type HeartbeatResponse struct {
	TTLMs int64 `json:"ttl_ms"`
}

// CompleteRequest reports a unit finished from the worker's side. A
// v2 worker fills the digest-only completion fields: the coordinator
// settles the unit without any record transfer when it already holds
// the records (reassignment races, resume), and answers NeedRecords
// to pull the full set otherwise. A bare {LeaseID} is the v1 form:
// valid only once the unit's records are fully journaled
// coordinator-side (mid-run streaming), rejected with a revoked lease
// otherwise.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
	// Runs is how many records the worker holds locally for the unit.
	Runs int `json:"runs,omitempty"`
	// Digest is runner.RecordSetDigest over those records. Empty when
	// the worker's set is partial (the unit carried DoneJobs, so the
	// full set is split between worker and coordinator) — the
	// coordinator then relies on per-record content keying alone.
	Digest string `json:"digest,omitempty"`
	// WallMs is the unit's wall-clock execution time — the
	// coordinator's cost model divides it by Runs to size future
	// units.
	WallMs int64 `json:"wall_ms,omitempty"`
	// Outcome and prune counters, aggregated worker-side so the
	// coordinator's dashboards stay live without the records.
	Outcomes map[string]int `json:"outcomes,omitempty"`
	Pruned   int            `json:"pruned,omitempty"`
	Memoized int            `json:"memoized,omitempty"`
	// StoreMemo is the subset of Memoized served from a persistent
	// memo store (cross-campaign reuse); also counted in Memoized.
	StoreMemo int `json:"store_memo,omitempty"`
	Converged int `json:"converged,omitempty"`
	// Uploaded marks the retry after a NeedRecords round-trip. It also
	// changes the request body, and with it the idempotency key — the
	// pre-upload completion's stored NeedRecords reply must not replay
	// for the post-upload completion.
	Uploaded bool `json:"uploaded,omitempty"`
}

// CompleteResponse acknowledges completion.
type CompleteResponse struct {
	// CampaignDone is true when the whole job space is journaled — the
	// worker's next lease request would answer StatusDone.
	CampaignDone bool `json:"campaign_done"`
	// NeedRecords asks the worker to upload the unit's full record set
	// (via /v1/records) and then complete again: the lazy pull. Set
	// when the coordinator is missing records for the unit, when the
	// offered digest does not match the coordinator's own, and always
	// under Config.Pull.
	NeedRecords bool `json:"need_records,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply. Code, when
// present, lets clients distinguish transport damage (retryable) from
// genuine protocol errors without parsing prose.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
