// Package distrib turns the single-process campaign runner into a
// horizontally scalable service. An HTTP coordinator decomposes a
// registry instance (instance × tier, via internal/runner planning)
// into work units — shard ranges of the deterministic job enumeration
// — and hands them to worker agents under time-bounded leases.
// Workers execute their unit through the existing supervised,
// checkpointed, journaled runner path locally, stream the journal
// records back in batches (each flush renews the lease), and
// heartbeat while simulating. The coordinator persists every record
// into ordinary shard journals plus its own assignment journal, so
// either side can crash and resume; it expires dead workers' leases
// and reassigns their units, relying on content-keyed journal records
// for idempotent overlap. When every unit is complete, the journals
// reassemble — via runner.Assemble — into a result bit-identical to a
// single-node run.
//
// Protocol (all bodies JSON):
//
//	POST /v1/lease      LeaseRequest  → LeaseResponse
//	POST /v1/records    RecordBatch   → BatchResponse
//	POST /v1/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /v1/complete   CompleteRequest  → CompleteResponse
//	GET  /status        → Status
//	GET  /metrics       → Metrics
//
// A request against an unknown or expired lease fails with HTTP 409;
// the worker abandons the unit (another worker owns it now) and asks
// for new work.
//
// The protocol is hardened against the fault model internal/chaos
// injects (the fabric's own SWIFI campaign):
//
//   - every POST body carries a SHA-256 content digest in
//     X-Propane-Body-Digest; a body corrupted or truncated in flight
//     is rejected with 400/"body_digest_mismatch" before any handler
//     state changes, and the client treats that code as retryable
//     (transport damage, not a client bug);
//   - /records and /complete carry an idempotency key in
//     X-Propane-Idempotency-Key (the body digest); a duplicated
//     delivery replays the stored response verbatim instead of
//     re-executing the handler;
//   - a record batch is validated atomically — any invalid or
//     conflicting record rejects the whole batch with nothing
//     journaled, so a hostile or damaged batch can never partially
//     journal.
package distrib

import "propane/internal/runner"

// Endpoint paths served by Coordinator.Handler.
const (
	PathLease     = "/v1/lease"
	PathRecords   = "/v1/records"
	PathHeartbeat = "/v1/heartbeat"
	PathComplete  = "/v1/complete"
	PathStatus    = "/status"
	PathMetrics   = "/metrics"
)

// Protocol headers.
const (
	// HeaderBodyDigest carries the hex SHA-256 of the request body.
	// The coordinator verifies it before decoding; a mismatch means
	// the body was damaged in flight and the request is rejected with
	// CodeBodyDigest (retryable — the sender's copy is intact).
	HeaderBodyDigest = "X-Propane-Body-Digest"
	// HeaderIdempotencyKey makes a POST replayable: the coordinator
	// stores the response under this key and answers a duplicated
	// delivery from the store without re-executing the handler.
	HeaderIdempotencyKey = "X-Propane-Idempotency-Key"
	// HeaderIdempotentReplay marks a response served from the
	// idempotency store.
	HeaderIdempotentReplay = "X-Propane-Idempotent-Replay"
)

// Machine-readable error codes carried in errorResponse.Code.
const (
	// CodeBodyDigest: the body did not match its digest header —
	// damaged in flight; retry with the intact copy.
	CodeBodyDigest = "body_digest_mismatch"
	// CodeCrashed: a chaos crash point fired and the coordinator is
	// "dead" pending restart; retryable.
	CodeCrashed = "coordinator_crashed"
	// CodeTimeout: the per-handler deadline elapsed; retryable.
	CodeTimeout = "handler_timeout"
)

// LeaseRequest asks the coordinator for a work unit.
type LeaseRequest struct {
	// Worker names the requesting agent (stable across its restarts,
	// unique within the fleet).
	Worker string `json:"worker"`
}

// Lease-response statuses.
const (
	// StatusUnit: a work unit is attached — run it.
	StatusUnit = "unit"
	// StatusWait: every unit is leased or done but the campaign is not
	// complete — poll again after RetryMs.
	StatusWait = "wait"
	// StatusDone: the campaign is complete — the worker may exit.
	StatusDone = "done"
)

// WorkUnit is one lease-bounded slice of the campaign: shard Shard of
// Shards over the registry instance's deterministic job enumeration.
type WorkUnit struct {
	Instance string `json:"instance"`
	Tier     string `json:"tier"`
	// ConfigDigest is the coordinator's runner.PlanInfo digest. The
	// worker recomputes it from the registry before executing and
	// refuses the unit on mismatch — a version-skewed worker must not
	// contribute records.
	ConfigDigest string `json:"config_digest"`
	Shard        int    `json:"shard"`
	Shards       int    `json:"shards"`
	// TotalRuns is the whole campaign's job count (the worker's share
	// is the jobs ≡ Shard mod Shards).
	TotalRuns int `json:"total_runs"`
	// RunBudgetSteps is the per-run watchdog budget the coordinator
	// folded into its digest; the worker must apply the same value.
	RunBudgetSteps int64 `json:"run_budget_steps,omitempty"`
	// DoneJobs lists the unit's job indices the coordinator already
	// holds (streamed by a previous lease holder). The worker neither
	// executes nor streams them, so a reassigned unit fast-forwards.
	DoneJobs []int `json:"done_jobs,omitempty"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status  string    `json:"status"` // unit | wait | done
	LeaseID string    `json:"lease_id,omitempty"`
	TTLMs   int64     `json:"ttl_ms,omitempty"`
	RetryMs int64     `json:"retry_ms,omitempty"`
	Unit    *WorkUnit `json:"unit,omitempty"`
}

// RecordBatch streams completed runs back to the coordinator. Batches
// may overlap previous deliveries (worker restart, reassigned lease):
// records are content-keyed by job index, so duplicates are verified
// idempotent and conflicting content is rejected.
type RecordBatch struct {
	LeaseID string          `json:"lease_id"`
	Records []runner.Record `json:"records"`
}

// BatchResponse acknowledges a record batch.
type BatchResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// UnitDone is true once every job of the unit is journaled (the
	// coordinator settles the unit itself — a worker dying between its
	// last flush and its complete call costs nothing).
	UnitDone bool `json:"unit_done"`
}

// HeartbeatRequest renews a lease while the worker is simulating.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse confirms the renewal.
type HeartbeatResponse struct {
	TTLMs int64 `json:"ttl_ms"`
}

// CompleteRequest reports a unit finished from the worker's side.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteResponse acknowledges completion.
type CompleteResponse struct {
	// CampaignDone is true when every unit of the campaign is
	// journaled — the worker's next lease request would answer
	// StatusDone.
	CampaignDone bool `json:"campaign_done"`
}

// errorResponse is the JSON body of every non-2xx reply. Code, when
// present, lets clients distinguish transport damage (retryable) from
// genuine protocol errors without parsing prose.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
