package distrib

// Chaos-harness tests: the fabric's own SWIFI campaign. The
// internal/chaos transport injects seeded faults into every worker ↔
// coordinator RPC while a coordinator crash point kills and resumes
// the coordinator mid-campaign; the acceptance oracle is the same as
// ever — the assembled result must be bit-identical to a single-node
// run.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"propane/internal/chaos"
	"propane/internal/runner"
)

// logCapture collects Logf lines for assertions about degraded-mode
// transitions.
type logCapture struct {
	t  *testing.T
	mu sync.Mutex
	ln []string
}

func (l *logCapture) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	l.mu.Lock()
	l.ln = append(l.ln, line)
	l.mu.Unlock()
	if l.t != nil {
		l.t.Log(line)
	}
}

func (l *logCapture) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.ln {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

// TestChaosSoakBitIdentical is the capstone: a 3-worker loopback
// fleet under sustained seeded faults on every RPC class (rate 0.25:
// drops, dropped responses, 5xx, duplicates, truncations,
// corruptions, delays), plus a deterministic coordinator crash
// mid-batch-append followed by a resume from the journals. The
// campaign must complete with no worker giving up, and assemble
// bit-identical to the single-node baseline.
func TestChaosSoakBitIdentical(t *testing.T) {
	dir := t.TempDir()
	logs := &logCapture{t: t}

	crashed := make(chan struct{})
	var crashOnce sync.Once
	crash := chaos.NewCrashpoints(func(label string) {
		crashOnce.Do(func() { close(crashed) })
	})
	crash.Arm(CrashMidBatchAppend, 3) // die inside the third journal append

	cc := Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    4,
		LeaseTTL: 2 * time.Second,
		Crash:    crash,
		Logf:     logs.logf,
	}
	coord1, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}

	// One long-lived listener whose handler is swappable: the chaos
	// "kill" leaves the address up (503ing) while the supervisor
	// builds the resumed coordinator, exactly like a process manager
	// restarting a crashed daemon behind a stable endpoint.
	var handler atomic.Value
	handler.Store(coord1.Handler())
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	url := "http://" + l.Addr().String()

	// Supervisor: when the crash point fires, close the dead
	// coordinator's files and resume a new one from the journals.
	var coord2 *Coordinator
	restartErr := make(chan error, 1)
	go func() {
		<-crashed
		_ = coord1.Close()
		cc2 := cc
		cc2.Resume = true
		cc2.Crash = nil
		c2, err := NewCoordinator(cc2)
		if err != nil {
			restartErr <- err
			return
		}
		coord2 = c2
		handler.Store(c2.Handler())
		logs.logf("soak: coordinator resumed from journals")
		restartErr <- nil
	}()

	const fleet = 3
	transports := make([]*chaos.Transport, fleet)
	workerErrs := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("soak-w%d", i+1)
		spec := chaos.Spec{
			Seed:     chaos.DeriveSeed(42, name),
			Rate:     0.25,
			MaxDelay: 2 * time.Millisecond,
		}
		tr := chaos.NewTransport(spec, nil, logs.logf)
		transports[i] = tr
		wo := WorkerOptions{
			Name:         name,
			Dir:          filepath.Join(dir, "scratch"),
			PollInterval: 50 * time.Millisecond,
			BatchSize:    4,
			MaxErrors:    20,
			Logf:         logs.logf,
			transport:    tr,
		}
		go func() { workerErrs <- RunWorker(url, wo) }()
	}

	deadline := time.After(120 * time.Second)
	select {
	case err := <-restartErr:
		if err != nil {
			t.Fatalf("resuming coordinator after chaos crash: %v", err)
		}
	case <-deadline:
		t.Fatal("armed crash point never fired — the soak exercised no coordinator crash")
	}
	for i := 0; i < fleet; i++ {
		select {
		case err := <-workerErrs:
			if err != nil {
				t.Fatalf("worker gave up under chaos: %v", err)
			}
		case <-deadline:
			t.Fatal("fleet did not finish the chaos soak in time")
		}
	}

	if fired := crash.Fired(); len(fired) == 0 {
		t.Fatal("no coordinator crash point fired")
	} else {
		t.Logf("crash points fired: %v (hits %v)", fired, crash.Hits())
	}
	injected := 0
	for i, tr := range transports {
		injected += tr.Injected()
		t.Logf("worker %d chaos: %s", i+1, tr.Summary())
	}
	if injected == 0 {
		t.Fatal("chaos transports injected no faults — the soak proved nothing")
	}

	select {
	case <-coord2.Done():
	default:
		t.Fatal("workers exited but resumed coordinator reports the campaign incomplete")
	}
	rr, err := coord2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// postRaw sends one hardened-protocol POST by hand, returning the
// response and its body.
func postRaw(t *testing.T, url string, body []byte, digest string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if digest != "" {
		req.Header.Set(HeaderBodyDigest, digest)
		req.Header.Set(HeaderIdempotencyKey, digest)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func bodyDigest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// leaseAndCollect leases one unit by hand and runs its jobs through
// the local runner, collecting (without streaming) every record the
// unit owes the coordinator.
func leaseAndCollect(t *testing.T, url, scratch string) (LeaseResponse, []runner.Record) {
	t.Helper()
	w := &worker{
		base:          url,
		opts:          WorkerOptions{Name: "manual", Dir: scratch, Logf: t.Logf},
		ctx:           context.Background(),
		client:        &http.Client{Timeout: 10 * time.Second},
		describeCache: make(map[string]runner.PlanInfo),
	}
	if err := w.opts.normalise(); err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := w.post(PathLease, LeaseRequest{Worker: w.opts.Name}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Status != StatusUnit {
		t.Fatalf("lease status %q, want %q", lr.Status, StatusUnit)
	}
	u := lr.Unit
	def, err := runner.Lookup(u.Instance)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(runner.Tier(u.Tier))
	if err != nil {
		t.Fatal(err)
	}
	var recs []runner.Record
	_, err = runner.Run(cfg, runner.Options{
		Name:        u.Instance,
		Tier:        runner.Tier(u.Tier),
		Dir:         w.scratchDir(u),
		Workers:     1,
		SkipReport:  true,
		ExcludeJobs: func(job int) bool { return job < u.JobLo || job >= u.JobHi },
		OnRecord: func(rec runner.Record, replayed bool) error {
			recs = append(recs, rec)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("unit produced no records")
	}
	return lr, recs
}

// TestDuplicateDeliveryIdempotent proves the /records and /complete
// idempotency the chaos duplicate/drop-response faults rely on: a
// byte-identical redelivery replays the stored response verbatim
// (marked by HeaderIdempotentReplay) and changes nothing — no record
// is double-counted, no journal grows.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	lr, recs := leaseAndCollect(t, url, filepath.Join(dir, "scratch"))

	// First record delivered twice, byte-identically.
	body, err := json.Marshal(RecordBatch{LeaseID: lr.LeaseID, Records: recs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	resp1, data1 := postRaw(t, url+PathRecords, body, bodyDigest(body))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first delivery: %d %s", resp1.StatusCode, data1)
	}
	if resp1.Header.Get(HeaderIdempotentReplay) != "" {
		t.Error("first delivery claims to be a replay")
	}
	resp2, data2 := postRaw(t, url+PathRecords, body, bodyDigest(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicated delivery: %d %s", resp2.StatusCode, data2)
	}
	if resp2.Header.Get(HeaderIdempotentReplay) != "1" {
		t.Error("duplicated delivery was not served from the idempotency store")
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("replayed response differs:\n first: %s\nsecond: %s", data1, data2)
	}
	var br BatchResponse
	if err := json.Unmarshal(data2, &br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 1 {
		t.Errorf("replayed response accepted=%d, want the original 1", br.Accepted)
	}
	if got := coord.Metrics().ReceivedRuns; got != 1 {
		t.Errorf("coordinator counted %d received runs after a duplicated delivery of one record, want 1", got)
	}

	// The rest of the unit, then /complete twice.
	body, err = json.Marshal(RecordBatch{LeaseID: lr.LeaseID, Records: recs[1:]})
	if err != nil {
		t.Fatal(err)
	}
	if resp, data := postRaw(t, url+PathRecords, body, bodyDigest(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("remainder delivery: %d %s", resp.StatusCode, data)
	}
	cbody, err := json.Marshal(CompleteRequest{LeaseID: lr.LeaseID})
	if err != nil {
		t.Fatal(err)
	}
	cresp1, cdata1 := postRaw(t, url+PathComplete, cbody, bodyDigest(cbody))
	if cresp1.StatusCode != http.StatusOK {
		t.Fatalf("complete: %d %s", cresp1.StatusCode, cdata1)
	}
	cresp2, cdata2 := postRaw(t, url+PathComplete, cbody, bodyDigest(cbody))
	if cresp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicated complete: %d %s", cresp2.StatusCode, cdata2)
	}
	if cresp2.Header.Get(HeaderIdempotentReplay) != "1" {
		t.Error("duplicated complete was not served from the idempotency store")
	}
	if !bytes.Equal(cdata1, cdata2) {
		t.Errorf("replayed complete differs:\n first: %s\nsecond: %s", cdata1, cdata2)
	}
	if got := coord.Metrics().ReceivedRuns; got != len(recs) {
		t.Errorf("coordinator counted %d received runs, want %d", got, len(recs))
	}
}

// TestWireDamagedBodyRejected proves the digest gate: a body that
// does not match its digest header — what the chaos truncate/corrupt
// faults produce — is rejected with the retryable CodeBodyDigest
// before any handler state changes.
func TestWireDamagedBodyRejected(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	lr, recs := leaseAndCollect(t, url, filepath.Join(dir, "scratch"))
	body, err := json.Marshal(RecordBatch{LeaseID: lr.LeaseID, Records: recs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	// The digest of the intact body, sent with a truncated copy: the
	// exact signature of in-flight damage.
	resp, data := postRaw(t, url+PathRecords, body[:len(body)-2], bodyDigest(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("damaged body answered %d %s, want 400", resp.StatusCode, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("error reply is not JSON: %s", data)
	}
	if er.Code != CodeBodyDigest {
		t.Errorf("error code %q, want %q", er.Code, CodeBodyDigest)
	}
	if got := coord.Metrics().ReceivedRuns; got != 0 {
		t.Errorf("damaged delivery journaled %d records", got)
	}
	// The client must classify this as wire damage worth retrying,
	// not a fatal protocol error.
	statusErr := &httpStatusError{status: resp.StatusCode, code: er.Code, msg: er.Error}
	if !retryableError(statusErr) {
		t.Error("digest-mismatch rejection classified as non-retryable")
	}
	if fatalStatus(statusErr) {
		t.Error("digest-mismatch rejection classified as fatal")
	}
	// The intact copy must then succeed — same lease, same key
	// semantics, nothing poisoned by the failed attempt.
	resp, data = postRaw(t, url+PathRecords, body, bodyDigest(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("intact retry answered %d %s", resp.StatusCode, data)
	}
}

// TestWorkerDegradesAndRecovers takes the coordinator away mid-upload:
// the worker must keep its records safe in the local journal, degrade
// to patient retries, resume the upload when the coordinator returns,
// and finish the campaign bit-identical — graceful degradation, not
// abort.
func TestWorkerDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	logs := &logCapture{t: t}
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		LeaseTTL: 30 * time.Second, // outlive the outage: same lease on reconnect
		Logf:     logs.logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The outage: after the first record chunk of a unit's bulk upload
	// lands, every request 503s for a fixed window mid-upload.
	var down atomic.Bool
	var batches atomic.Int32
	inner := coord.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			httpError(w, http.StatusServiceUnavailable, "coordinator offline (test outage)")
			return
		}
		inner.ServeHTTP(w, r)
		if r.URL.Path == PathRecords && batches.Add(1) == 1 {
			down.Store(true)
			time.AfterFunc(1500*time.Millisecond, func() { down.Store(false) })
			logs.logf("outage: coordinator offline for 1.5s")
		}
	})
	srv := NewServer(h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	err = RunWorker("http://"+l.Addr().String(), WorkerOptions{
		Name:         "degrader",
		Dir:          filepath.Join(dir, "scratch"),
		PollInterval: 50 * time.Millisecond,
		BatchSize:    2,
		Logf:         logs.logf,
	})
	if err != nil {
		t.Fatalf("worker gave up during the outage: %v", err)
	}
	if !logs.contains("degrading") {
		t.Error("worker never entered degraded mode — the outage was not exercised")
	}
	if !logs.contains("reachable again") {
		t.Error("worker never recovered from degraded mode")
	}

	select {
	case <-coord.Done():
	default:
		t.Fatal("worker exited but the campaign is incomplete")
	}
	rr, err := coord.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)

	// The local journal is the only durability mechanism — protocol v2
	// removed the delivery spool, so none may reappear.
	spools := 0
	filepath.WalkDir(filepath.Join(dir, "scratch"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && d.Name() == "spool.jsonl" {
			spools++
		}
		return nil
	})
	if spools != 0 {
		t.Errorf("%d spool files found after a completed campaign — the local journal is the durability story", spools)
	}
}
