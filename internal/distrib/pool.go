package distrib

// Pooled encode/decode machinery for the binary batch codec,
// extending the internal/trace/pool.go idiom to the fabric: the hot
// path of a scaled-out campaign is one encode on the worker and one
// decode on the coordinator per batch, and none of the buffers, gzip
// state or record slices involved need to outlive the request that
// used them. Recycling them keeps fleet-wide allocations flat in the
// worker count instead of growing with it.
//
// HAZARD: a released record slice may be handed to another decode —
// callers must copy any runner.Record they retain (the coordinator's
// seen map stores records by value, which is exactly that copy) before
// releasing the batch.

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"

	"propane/internal/runner"
)

// pooledBufferCap bounds the capacity a buffer may retain in the
// pool; a once-huge upload must not pin its worst case forever.
const pooledBufferCap = 4 << 20

var bufferPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func acquireBuffer() *bytes.Buffer { return bufferPool.Get().(*bytes.Buffer) }

func releaseBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > pooledBufferCap {
		return
	}
	b.Reset()
	bufferPool.Put(b)
}

// gzip writers carry ~1.4 MB of deflate state each; resetting one is
// far cheaper than building it, and the level never varies (BestSpeed:
// the payload is already entropy-reduced by the string table, and the
// fabric is usually loopback- or LAN-bound, not WAN-bound).
var gzipWriterPool = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	},
}

func acquireGzipWriter(w io.Writer) *gzip.Writer {
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(w)
	return zw
}

func releaseGzipWriter(zw *gzip.Writer) {
	zw.Reset(io.Discard)
	gzipWriterPool.Put(zw)
}

// A zero gzip.Reader initialises itself on Reset, so the pool can
// start from zero values.
var gzipReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

func acquireGzipReader(r io.Reader) (*gzip.Reader, error) {
	zr := gzipReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(r); err != nil {
		gzipReaderPool.Put(zr)
		return nil, err
	}
	return zr, nil
}

func releaseGzipReader(zr *gzip.Reader) {
	_ = zr.Close()
	gzipReaderPool.Put(zr)
}

// pooledRecordsCap bounds the record-slice capacity retained by the
// pool, mirroring pooledBufferCap.
const pooledRecordsCap = 1 << 16

var recordsPool = sync.Pool{New: func() any { return []runner.Record(nil) }}

// acquireRecords returns an empty record slice with capacity for n
// records (append-ready).
func acquireRecords(n int) []runner.Record {
	s := recordsPool.Get().([]runner.Record)
	if cap(s) < n {
		return make([]runner.Record, 0, n)
	}
	return s[:0]
}

// releaseRecords recycles a batch's record slice once every retained
// record has been copied out.
func releaseRecords(s []runner.Record) {
	if s == nil || cap(s) > pooledRecordsCap {
		return
	}
	recordsPool.Put(s[:0])
}
