package distrib

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"propane/internal/campaign"
	"propane/internal/runner"
)

// adaptiveBaseline runs the single-node adaptive reference campaign
// once per test binary: the result and journal record set every
// distributed adaptive run must reproduce exactly — the stopping
// decisions are a pure function of (config, ε), never of fleet size
// or dispatch interleaving.
var (
	adaptiveOnce    sync.Once
	adaptiveMatrix  string
	adaptiveRuns    int
	adaptiveUnfired int
	adaptiveDigest  string
	adaptiveErr     error
)

func adaptiveBaseline(t *testing.T) (string, int, int, string) {
	t.Helper()
	adaptiveOnce.Do(func() {
		dir, err := os.MkdirTemp("", "propane-adaptive-direct-*")
		if err != nil {
			adaptiveErr = err
			return
		}
		defer os.RemoveAll(dir)
		rr, err := runner.RunInstance("reduced", runner.TierQuick, runner.Options{
			Dir: dir, Adaptive: campaign.AdaptiveForce,
		})
		if err != nil {
			adaptiveErr = err
			return
		}
		if rr.Result.Adaptive == nil {
			adaptiveErr = errors.New("single-node adaptive run carries no AdaptiveStats")
			return
		}
		adaptiveMatrix, adaptiveRuns, adaptiveUnfired = fingerprint(rr)
		_, recs, err := runner.ReadJournal(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			adaptiveErr = err
			return
		}
		adaptiveDigest = runner.RecordSetDigest(recs)
	})
	if adaptiveErr != nil {
		t.Fatal(adaptiveErr)
	}
	return adaptiveMatrix, adaptiveRuns, adaptiveUnfired, adaptiveDigest
}

// assertMatchesAdaptiveBaseline fails unless rr — and the record set
// journaled under dir — is bit-identical to the single-node adaptive
// run.
func assertMatchesAdaptiveBaseline(t *testing.T, rr *runner.RunResult, dir string) {
	t.Helper()
	wantM, wantR, wantU, wantDigest := adaptiveBaseline(t)
	if rr.Result.Adaptive == nil {
		t.Fatal("distributed adaptive result carries no AdaptiveStats")
	}
	gotM, gotR, gotU := fingerprint(rr)
	if gotR != wantR || gotU != wantU {
		t.Errorf("assembled counts = (%d runs, %d unfired), single-node adaptive = (%d, %d)",
			gotR, gotU, wantR, wantU)
	}
	if gotM != wantM {
		t.Errorf("assembled adaptive matrix differs from the single-node adaptive run:\n--- single-node ---\n%s\n--- assembled ---\n%s", wantM, gotM)
	}
	hdr, recs, err := runner.ReadJournal(runner.ShardJournalPath(dir, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if want := runner.JournalVersionFor(true); hdr.Version != want {
		t.Errorf("coordinator journal stamped version %d, want %d", hdr.Version, want)
	}
	if got := runner.RecordSetDigest(recs); got != wantDigest {
		t.Error("coordinator journal's record set diverged from the single-node adaptive run — the fleet made different scheduling decisions")
	}
}

// TestAdaptiveLoopbackMatchesSingleNode is the distributed-adaptive
// core guarantee: an adaptive campaign carved into job-list units,
// executed by a fleet over real HTTP with the coordinator owning the
// sequential scheduler, journals the bit-identical record set — and
// assembles the bit-identical result — of a single-node adaptive run.
func TestAdaptiveLoopbackMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	rr, err := Loopback(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Adaptive: campaign.AdaptiveForce,
		Logf:     t.Logf,
	}, 3, WorkerOptions{BatchSize: 8, PollInterval: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesAdaptiveBaseline(t, rr, dir)
}

// TestAdaptiveCoordinatorResume kills both sides of an adaptive
// campaign mid-flight: a worker streams part of its unit and dies,
// then the coordinator restarts with Resume — re-deriving the
// sequential schedule from the config and replaying the journaled
// records through it, with carve events deliberately ignored — and a
// fresh fleet finishes the campaign. The reassembled result and
// record set are bit-identical to the single-node adaptive run.
func TestAdaptiveCoordinatorResume(t *testing.T) {
	dir := t.TempDir()
	cc := Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Adaptive: campaign.AdaptiveForce,
		LeaseTTL: 2 * time.Second,
		Logf:     t.Logf,
	}
	coord, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}

	// Adaptive units are explicit job lists claimed from the planner,
	// and every unit advertises the resolved adaptive options so the
	// worker digests identically.
	probe, ok := coord.TryLease("probe")
	if !ok || probe.Unit == nil {
		t.Fatal("adaptive coordinator granted no unit")
	}
	if probe.Unit.JobList == nil {
		t.Fatal("adaptive work unit carries no job list")
	}
	if !probe.Unit.Adaptive || probe.Unit.CIEpsilon <= 0 {
		t.Fatalf("adaptive work unit advertises Adaptive=%t CIEpsilon=%v, want the resolved adaptive options",
			probe.Unit.Adaptive, probe.Unit.CIEpsilon)
	}
	// The probe never heartbeats; its unit reassigns after the TTL.

	url, srv := serveCoordinator(t, coord)
	streamed, _ := runPartialWorker(t, url, filepath.Join(dir, "scratch"), 2)
	srv.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	cc.Resume = true
	coord2, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	st := coord2.Status()
	if !st.Adaptive {
		t.Error("resumed adaptive coordinator does not report adaptive status")
	}
	if st.DoneRuns != streamed {
		t.Fatalf("restarted coordinator restored %d runs, want %d", st.DoneRuns, streamed)
	}
	url2, srv2 := serveCoordinator(t, coord2)
	defer srv2.Close()

	const fleet = 2
	errs := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		name := "aw" + string(rune('0'+i))
		go func() {
			errs <- RunWorker(url2, WorkerOptions{
				Name:         name,
				Dir:          filepath.Join(dir, "scratch"),
				BatchSize:    8,
				PollInterval: 50 * time.Millisecond,
				Logf:         t.Logf,
			})
		}()
	}
	select {
	case <-coord2.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("resumed adaptive campaign did not complete")
	}
	for i := 0; i < fleet; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	m := coord2.Metrics()
	if !m.Adaptive || m.PopulationRuns <= 0 {
		t.Errorf("adaptive metrics = (adaptive=%t, population=%d), want adaptive with a population",
			m.Adaptive, m.PopulationRuns)
	}
	if m.ResumedRuns != streamed {
		t.Errorf("metrics count %d resumed runs, want %d", m.ResumedRuns, streamed)
	}

	rr, err := coord2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesAdaptiveBaseline(t, rr, dir)
}
