package distrib

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"

	"propane/internal/runner"
)

// Loopback runs a complete distributed campaign inside one process: a
// coordinator on an ephemeral 127.0.0.1 listener and `workers`
// RunWorker goroutines speaking real HTTP to it. It is the offline
// test and benchmark harness for the subsystem — the wire protocol,
// lease machinery and journal flow are exactly what a multi-machine
// fleet exercises — and returns the assembled result, bit-identical
// to a single-node run.
//
// wo is the template for every worker: each one gets wo.Name (or
// "loopback") suffixed with "-wN" and its own scratch subdirectory;
// an empty wo.Dir defaults to <cc.Dir>/worker-scratch.
func Loopback(cc Config, workers int, wo WorkerOptions) (*runner.RunResult, error) {
	if workers <= 0 {
		workers = 1
	}
	coord, err := NewCoordinator(cc)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return nil, fmt.Errorf("distrib: loopback listener: %w", err)
	}
	srv := NewServer(coord.Handler())
	go srv.Serve(l)
	url := "http://" + l.Addr().String()

	if wo.Dir == "" {
		wo.Dir = filepath.Join(cc.Dir, "worker-scratch")
	}
	if wo.Name == "" {
		wo.Name = "loopback"
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		o := wo
		o.Name = fmt.Sprintf("%s-w%d", wo.Name, i+1)
		wg.Add(1)
		go func(i int, o WorkerOptions) {
			defer wg.Done()
			errs[i] = RunWorker(url, o)
		}(i, o)
	}
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()

	select {
	case <-coord.Done():
		// Workers observe StatusDone on their next lease request and
		// exit cleanly.
		<-workersDone
	case <-workersDone:
		_ = srv.Close()
		coord.Close()
		return nil, fmt.Errorf("distrib: loopback fleet exited before campaign completion: %w", errors.Join(errs...))
	}
	_ = srv.Close()
	rr, err := coord.Assemble()
	if err != nil {
		return nil, err
	}
	return rr, errors.Join(errs...)
}
