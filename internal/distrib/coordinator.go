package distrib

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/runner"
)

// Config parameterises one coordinated campaign.
type Config struct {
	// Instance and Tier select the campaign from the registry. Both
	// sides resolve the name through their own registry; the config
	// digest guards against version skew.
	Instance string
	Tier     runner.Tier
	// Dir is the coordinator's artifact directory: the record journal,
	// the assignment journal, and — after completion — the assembled
	// config.json, metrics.json, failures.md and report.md.
	Dir string
	// Units sets the initial carve granularity: before any unit has
	// completed (no cost measurements yet), work units are carved as
	// ranges of ceil(TotalRuns/Units) jobs. Once per-run cost is
	// measured, later units shrink to fit the lease TTL, so Units is a
	// floor on the unit count, not a fixed decomposition. <= 0 sizes
	// the count from the plan itself — one unit per 2*minCarveJobs
	// jobs, capped at 8 — so a small campaign is never shattered into
	// units whose per-unit fixed costs (scratch setup, golden-run
	// replay) exceed their useful work.
	Units int
	// LeaseTTL bounds how long a silent worker keeps a unit. Uploads
	// and heartbeats renew the lease; a worker silent for a full TTL is
	// presumed dead and its unit is reassigned. <= 0 selects 30 s.
	LeaseTTL time.Duration
	// Resume restores coordinator state from the journals under Dir
	// (records already received, carved units) instead of refusing to
	// touch a non-empty directory.
	Resume bool
	// Pull forces a full record upload for every unit, even when the
	// coordinator already holds the unit's records and the offered
	// digest matches — cross-verification at transfer cost. The
	// default pulls lazily: records upload once per unit, after the
	// digest-only completion.
	Pull bool
	// RunBudgetSteps arms the per-run watchdog fleet-wide; it is part
	// of the config digest, so workers apply the value carried in
	// their work unit.
	RunBudgetSteps int64
	// Adaptive selects sequential (CI-driven) sampling for the fleet:
	// the coordinator owns the campaign.AdaptivePlanner and claims work
	// units from its importance-ordered frontier instead of carving
	// contiguous ranges. Like RunBudgetSteps it is part of the config
	// digest, and every WorkUnit carries the resolved mode so workers
	// digest identically.
	Adaptive campaign.AdaptiveMode
	// CIEpsilon is the adaptive stopping half-width (0 selects the
	// campaign default).
	CIEpsilon float64
	// Crash, when non-nil, arms deterministic crash points at the
	// labeled protocol sites (CrashPreLeaseGrant, CrashMidBatchAppend,
	// CrashPreCompleteAck). A fired site aborts its in-flight request
	// without a reply and flips the coordinator into a "crashed" state
	// where every request answers 503/"coordinator_crashed" until a
	// new coordinator resumes from the journals — the chaos harness's
	// stand-in for a SIGKILL, with the kill site pinned instead of
	// raced.
	Crash *chaos.Crashpoints
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)
	// Campaign identifies this coordinator's campaign when a service
	// multiplexes several over one worker fleet (internal/service). It
	// is carried in LeaseResponse.Campaign (workers echo it as
	// HeaderCampaign for routing) and prefixes lease IDs, so two
	// campaigns can never mint colliding leases. Empty for a
	// single-campaign coordinator.
	Campaign string
	// Document is the declarative topology source behind Instance when
	// the instance was registered from an API-submitted document rather
	// than compiled in. It rides along in every WorkUnit so workers
	// that have never seen the document can compile and register it
	// themselves.
	Document string
	// OnWake, when non-nil, is invoked whenever parked lease requests
	// are released — a unit returned to the pending pool, or the
	// campaign completed. It is called with the coordinator's lock
	// held: it must not call back into the coordinator (typically it
	// just signals a channel). The service layer uses it to release
	// its own fleet-wide lease long-poll.
	OnWake func()
}

// Coordinator crash-point labels (see chaos.Crashpoints). Each marks
// the instant just before a state transition becomes externally
// visible, where a real crash is most likely to strand a client:
const (
	// CrashPreLeaseGrant fires after a unit is chosen but before the
	// lease is recorded or granted — the requester gets no reply and
	// the unit stays pending for the resumed coordinator.
	CrashPreLeaseGrant = "pre-lease-grant"
	// CrashMidBatchAppend fires inside a record batch after at least
	// one record hit the journal — the batch is half-durable and the
	// worker never learns which half.
	CrashMidBatchAppend = "mid-batch-append"
	// CrashPreCompleteAck fires after a unit settles but before the
	// completion is acknowledged — the worker retries a completion
	// the journals already contain.
	CrashPreCompleteAck = "pre-complete-ack"
)

const (
	defaultUnits    = 8
	defaultLeaseTTL = 30 * time.Second
	// leaseWaitMax bounds how long a lease request with no pending
	// unit parks inside the coordinator (long-poll). It must stay
	// comfortably under the worker HTTP client's 30 s timeout.
	leaseWaitMax = 10 * time.Second
	// leaseRetryMs is the retry hint returned when a long-poll times
	// out without work. One millisecond: the worker bounces straight
	// back into another long-poll — leasing is event-driven, the hint
	// only breaks a pathological tight loop against a broken client.
	leaseRetryMs = 1
	// minCarveJobs floors the cost-sized units, so a crash/hang-heavy
	// campaign (huge per-run cost) still amortises the per-unit fixed
	// costs (scratch setup, golden-run replay) over a meaningful
	// range.
	minCarveJobs = 16
	// carveTargetFloorMs floors the unit-duration target derived from
	// the lease TTL. Sub-second TTLs are test configurations; honoring
	// them literally would shatter the job space.
	carveTargetFloorMs = 1000
)

func (c *Config) normalise() error {
	if c.Instance == "" {
		return errors.New("distrib: no instance")
	}
	if c.Dir == "" {
		return errors.New("distrib: no artifact directory")
	}
	if c.Tier == "" {
		c.Tier = runner.TierQuick
	}
	if c.Units < 0 {
		c.Units = 0 // auto: sized from the plan in NewCoordinator
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = defaultLeaseTTL
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// unitState is the lease state machine: pending → leased → done, with
// leased → pending on expiry (the received records stay, so the next
// holder fast-forwards).
type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
)

func (s unitState) String() string {
	switch s {
	case unitPending:
		return "pending"
	case unitLeased:
		return "leased"
	case unitDone:
		return "done"
	}
	return fmt.Sprintf("unitState(%d)", int(s))
}

// unit is one carved work unit: a contiguous job range for full-matrix
// campaigns, an explicit job list claimed from the adaptive planner's
// frontier otherwise (lo/hi then bound the list for logging).
type unit struct {
	id       int
	lo, hi   int // job range [lo, hi)
	jobList  []int
	jobSet   map[int]bool
	state    unitState
	leaseID  string
	worker   string
	expires  time.Time
	attempts int // times leased
	done     int // jobs of the unit present in the record set
	reported int // worker-reported local progress (heartbeats)
}

func (u *unit) jobs() int {
	if u.jobList != nil {
		return len(u.jobList)
	}
	return u.hi - u.lo
}

// has reports whether job belongs to the unit.
func (u *unit) has(job int) bool {
	if u.jobList != nil {
		return u.jobSet[job]
	}
	return job >= u.lo && job < u.hi
}

// eachJob visits the unit's job indices (claim order for lists,
// ascending for ranges — callers needing a canonical order sort).
func (u *unit) eachJob(fn func(job int)) {
	if u.jobList != nil {
		for _, job := range u.jobList {
			fn(job)
		}
		return
	}
	for job := u.lo; job < u.hi; job++ {
		fn(job)
	}
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	name     string
	lastSeen time.Time
	unit     int // leased unit's id, -1 when idle
	records  int
	outcomes map[string]int
}

// Coordinator carves a campaign into lease-bounded work units,
// collects the units' record sets (bulk-uploaded after digest-only
// completions, or streamed), and reassembles the result. All HTTP
// handlers and accessors are safe for concurrent use.
type Coordinator struct {
	cfg      Config
	campaign campaign.Config
	info     runner.PlanInfo
	// planner owns the sequential sampling schedule for adaptive
	// campaigns (nil otherwise): units are claimed from its frontier,
	// accepted records feed Observe, and completion is planner.Done()
	// instead of full job-space coverage. Guarded by mu.
	planner *campaign.AdaptivePlanner

	mu      sync.Mutex
	units   []*unit
	nextJob int // carve frontier: jobs below it belong to some unit
	byLease map[string]*unit
	workers map[string]*workerState
	// seen is the global record set, keyed by job index. The journal
	// mirrors it durably; on resume it is rebuilt from the journal.
	seen     map[int]runner.Record
	journal  *runner.ShardJournal // lazily opened on first record
	leaseSeq int
	resumed  int // records restored from journals at startup
	received int // live records accepted from workers
	// msPerJob is the cost model: an EWMA of wall-milliseconds per
	// journaled run, fed by workers' completion reports. Pruned and
	// memoized runs take microseconds while crash/hang runs burn a
	// full watchdog budget; the measured average captures the mix
	// without modeling it.
	msPerJob float64
	start    time.Time
	assign   *os.File
	complete bool
	// wake is closed (and replaced) whenever a unit returns to the
	// pending pool or the campaign completes, releasing lease requests
	// parked in handleLease's long-poll.
	wake chan struct{}
	// Equivalence-pruning counters aggregated across the fleet from
	// the received records' pruned labels.
	prunedRuns    int
	memoizedRuns  int
	storeMemoRuns int
	convergedRuns int

	// crashed flips when an armed crash point fires: every subsequent
	// request answers 503 until a resumed coordinator takes over.
	crashed bool
	// idem replays stored responses for duplicated /records and
	// /complete deliveries.
	idem idemStore

	done chan struct{}
}

// idemStore is a bounded FIFO map of idempotency key → stored
// response. Duplicated deliveries (retries after a lost reply,
// chaos-duplicated requests) replay the original response verbatim,
// making them true no-ops even for replies that carry counters.
type idemStore struct {
	mu      sync.Mutex
	entries map[string]idemEntry
	order   []string
}

type idemEntry struct {
	status int
	body   []byte
}

// idemStoreCap bounds the store; at one entry per in-flight batch the
// working set is tiny, so the cap only guards pathological clients.
const idemStoreCap = 1024

func (s *idemStore) get(key string) (idemEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

func (s *idemStore) put(key string, e idemEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]idemEntry)
	}
	if _, dup := s.entries[key]; dup {
		return
	}
	for len(s.order) >= idemStoreCap {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
	s.entries[key] = e
	s.order = append(s.order, key)
}

// NewCoordinator plans the campaign (running the golden runs to pin
// the config digest) and — with cfg.Resume — restores received
// records and carved units from the journals under cfg.Dir. Work
// units are carved lazily as workers ask for them.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	info, err := runner.DescribeInstance(cfg.Instance, cfg.Tier, runner.Options{
		Dir:            cfg.Dir,
		RunBudgetSteps: cfg.RunBudgetSteps,
		Adaptive:       cfg.Adaptive,
		CIEpsilon:      cfg.CIEpsilon,
	})
	if err != nil {
		return nil, err
	}
	def, err := runner.Lookup(cfg.Instance)
	if err != nil {
		return nil, err
	}
	ccfg, err := def.Config(cfg.Tier)
	if err != nil {
		return nil, err
	}
	if info.Adaptive {
		// Pin the resolved adaptive state from the described plan, so
		// the planner below and every worker agree with the digest.
		ccfg.Adaptive = campaign.AdaptiveForce
		ccfg.CIEpsilon = info.CIEpsilon
	}
	if cfg.Units <= 0 {
		// Auto-size the initial carve from the plan: one unit per
		// 2*minCarveJobs jobs, capped at the classic default. A quick
		// campaign of a hundred-odd jobs gets ~3 units instead of 8 —
		// per-unit fixed costs (scratch setup, golden-run replay) made
		// a 4-worker fleet slower than one worker on such plans.
		cfg.Units = info.TotalRuns / (2 * minCarveJobs)
		if cfg.Units > defaultUnits {
			cfg.Units = defaultUnits
		}
		if cfg.Units < 1 {
			cfg.Units = 1
		}
	}
	if cfg.Units > info.TotalRuns {
		cfg.Units = info.TotalRuns // no empty units
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("distrib: creating artifact dir: %w", err)
	}

	c := &Coordinator{
		cfg:      cfg,
		campaign: ccfg,
		info:     info,
		byLease:  make(map[string]*unit),
		workers:  make(map[string]*workerState),
		seen:     make(map[int]runner.Record),
		start:    time.Now(),
		wake:     make(chan struct{}),
		done:     make(chan struct{}),
	}

	if err := c.openAssignmentLog(); err != nil {
		return nil, err
	}
	if err := c.restoreJournals(); err != nil {
		c.Close()
		return nil, err
	}
	if info.Adaptive {
		// The planner is a pure function of the config: a resumed
		// coordinator rebuilds the identical schedule and replays the
		// journaled records through it, reproducing every stopping
		// decision bit-identically. Carve events are not replayed for
		// adaptive campaigns (see openAssignmentLog) — fresh units are
		// claimed from wherever the replayed schedule's frontier sits.
		planner, err := campaign.NewAdaptivePlanner(c.campaign)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("distrib: building adaptive schedule: %w", err)
		}
		jobs := make([]int, 0, len(c.seen))
		for job := range c.seen {
			jobs = append(jobs, job)
		}
		sort.Ints(jobs)
		for _, job := range jobs {
			rr, err := c.seen[job].RunRecord()
			if err == nil {
				err = planner.Observe(rr)
			}
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("distrib: replaying journal into adaptive schedule: %w", err)
			}
		}
		c.planner = planner
	}
	for _, u := range c.units {
		u.done = c.coveredLocked(u)
		if u.done == u.jobs() {
			u.state = unitDone
		}
	}
	c.maybeCompleteLocked()
	return c, nil
}

// initialCarve is the pre-cost-model unit size. Adaptive campaigns
// size against the fireable population (the realistic upper bound on
// executed jobs), not the full matrix the planner prunes.
func (c *Coordinator) initialCarve() int {
	total := c.info.TotalRuns
	if c.planner != nil {
		total = c.planner.Population()
	}
	size := (total + c.cfg.Units - 1) / c.cfg.Units
	if size < 1 {
		size = 1
	}
	return size
}

// coveredLocked counts the unit's jobs present in the record set.
func (c *Coordinator) coveredLocked(u *unit) int {
	n := 0
	u.eachJob(func(job int) {
		if _, ok := c.seen[job]; ok {
			n++
		}
	})
	return n
}

// journalPath is the coordinator's single record journal. Protocol v1
// bucketed records into per-unit shard journals; v2 appends every
// accepted batch to one file — the batch is already grouped by unit,
// and Assemble merges by content, not by file arithmetic.
func (c *Coordinator) journalPath() string {
	return runner.ShardJournalPath(c.cfg.Dir, 0, 1)
}

// restoreJournals rebuilds the record set from the journals — the
// journals, not the assignment log, are the source of truth for which
// work is done, so a coordinator crash between the two can never
// invent or lose records.
func (c *Coordinator) restoreJournals() error {
	paths, err := filepath.Glob(filepath.Join(c.cfg.Dir, "journal*.jsonl"))
	if err != nil {
		return fmt.Errorf("distrib: listing journals: %w", err)
	}
	if !c.cfg.Resume {
		for _, path := range paths {
			if st, err := os.Stat(path); err == nil && st.Size() > 0 {
				return fmt.Errorf("distrib: %s already exists — pass Resume to continue the campaign or use a fresh directory", path)
			}
		}
		return nil
	}
	for _, path := range paths {
		hdr, recs, err := runner.ReadJournal(path)
		if err != nil {
			return err
		}
		if hdr.ConfigDigest != "" && hdr.ConfigDigest != c.info.Digest {
			return fmt.Errorf("distrib: journal %s belongs to config %s, not %s: %w",
				path, hdr.ConfigDigest, c.info.Digest, runner.ErrDigestMismatch)
		}
		for _, rec := range recs {
			if rec.Job < 0 || rec.Job >= c.info.TotalRuns {
				return fmt.Errorf("distrib: journal %s: job %d outside [0,%d)", path, rec.Job, c.info.TotalRuns)
			}
			if prev, dup := c.seen[rec.Job]; dup {
				if !runner.RecordsEqual(prev, rec) {
					return fmt.Errorf("distrib: journal %s: job %d recorded twice with different content: %w",
						path, rec.Job, runner.ErrConflictingRecords)
				}
				continue
			}
			c.seen[rec.Job] = rec
			c.resumed++
			c.countPruneLocked(rec)
		}
	}
	if c.resumed > 0 {
		c.cfg.Logf("distrib: resumed %d/%d runs from journals under %s", c.resumed, c.info.TotalRuns, c.cfg.Dir)
	}
	return nil
}

// assignEvent is one line of the assignment journal — the
// coordinator's own write-ahead record of the carve and lease state
// machines. Carve events pin unit boundaries across coordinator
// restarts (a resumed coordinator re-grants the same ranges, so a
// restarted worker's scratch directories keep matching); assign
// events restore the lease sequence and per-unit attempt counters.
type assignEvent struct {
	Type   string `json:"type"` // carve | assign | expire | complete | campaign_complete
	TimeMs int64  `json:"time_ms"`
	Unit   int    `json:"unit,omitempty"`
	Lo     int    `json:"lo,omitempty"`
	Hi     int    `json:"hi,omitempty"`
	Worker string `json:"worker,omitempty"`
	Lease  string `json:"lease,omitempty"`
}

func (c *Coordinator) assignmentLogPath() string {
	return filepath.Join(c.cfg.Dir, "assignments.jsonl")
}

// openAssignmentLog opens the assignment journal for appending,
// replaying any existing events to restore the carved units, the
// lease sequence and the per-unit attempt counters.
func (c *Coordinator) openAssignmentLog() error {
	path := c.assignmentLogPath()
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range splitLines(data) {
			var ev assignEvent
			if json.Unmarshal(line, &ev) != nil {
				continue // torn tail from a killed coordinator
			}
			switch ev.Type {
			case "carve":
				// Carves replay in order; a gap or overlap means a lost
				// append, and the remaining job space re-carves fresh
				// behind whatever replayed cleanly. Adaptive campaigns
				// skip the replay entirely: their units are claimed from
				// the planner's frontier, which a resumed coordinator
				// re-derives from the record journals instead.
				if c.info.Adaptive {
					continue
				}
				if ev.Unit == len(c.units) && ev.Lo == c.nextJob && ev.Hi > ev.Lo && ev.Hi <= c.info.TotalRuns {
					c.units = append(c.units, &unit{id: ev.Unit, lo: ev.Lo, hi: ev.Hi})
					c.nextJob = ev.Hi
				}
			case "assign":
				c.leaseSeq++
				if ev.Unit >= 0 && ev.Unit < len(c.units) {
					c.units[ev.Unit].attempts++
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("distrib: reading assignment journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("distrib: opening assignment journal: %w", err)
	}
	c.assign = f
	return nil
}

// splitLines splits a byte slice into its newline-terminated lines
// (final unterminated fragment included).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := 0
		for i < len(data) && data[i] != '\n' {
			i++
		}
		if i > 0 {
			lines = append(lines, data[:i])
		}
		if i == len(data) {
			break
		}
		data = data[i+1:]
	}
	return lines
}

// logAssignLocked appends one event to the assignment journal. The
// record journal is authoritative, so an append failure here is
// logged, not fatal (a lost carve line only costs re-carving that
// range on resume).
func (c *Coordinator) logAssignLocked(ev assignEvent) {
	ev.TimeMs = time.Now().UnixMilli()
	line, err := json.Marshal(ev)
	if err == nil {
		_, err = c.assign.Write(append(line, '\n'))
	}
	if err != nil {
		c.cfg.Logf("distrib: assignment journal append failed: %v", err)
	}
}

// Info returns the planned campaign's identity.
func (c *Coordinator) Info() runner.PlanInfo { return c.info }

// Done is closed once the whole job space is journaled.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// maybeCompleteLocked closes the done channel when the record set
// covers the whole job space — or, for adaptive campaigns, when the
// planner's schedule is complete (every location's stopping rule
// satisfied, which implies every claimed sample has settled).
func (c *Coordinator) maybeCompleteLocked() {
	if c.complete {
		return
	}
	if c.planner != nil {
		if !c.planner.Done() {
			return
		}
	} else if len(c.seen) != c.info.TotalRuns {
		return
	}
	c.complete = true
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			c.cfg.Logf("distrib: closing record journal: %v", err)
		}
		c.journal = nil
	}
	c.logAssignLocked(assignEvent{Type: "campaign_complete"})
	if c.assign != nil {
		_ = c.assign.Sync()
	}
	c.cfg.Logf("distrib: campaign %s/%s complete — %d runs journaled in %d units",
		c.cfg.Instance, c.cfg.Tier, len(c.seen), len(c.units))
	c.wakeLocked() // parked lease requests answer StatusDone immediately
	close(c.done)
}

// wakeLocked releases every lease request parked in handleLease's
// long-poll; they re-examine the pool under the lock.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
	if c.cfg.OnWake != nil {
		c.cfg.OnWake()
	}
}

// deadLocked answers 503/CodeCrashed when a crash point has fired.
// The post middleware gates new requests, but a request already past
// the gate (or parked in the lease long-poll) when the crash fires
// must not mutate state either — a dead process appends nothing.
// Handlers call this immediately after taking c.mu (the caller keeps
// responsibility for unlocking); crashed is only written under c.mu,
// so the check is exact.
func (c *Coordinator) deadLocked(w http.ResponseWriter) bool {
	if !c.crashed {
		return false
	}
	httpErrorCode(w, http.StatusServiceUnavailable, CodeCrashed,
		"coordinator crashed at a chaos crash point; awaiting resume")
	return true
}

// hitCrashLocked checks an armed chaos crash point. When the site
// fires, the coordinator flips into the crashed state — every later
// request answers 503/CodeCrashed — and the in-flight handler aborts
// via http.ErrAbortHandler, so the client sees a reset connection and
// no reply: exactly the signature of a process killed at this
// instruction. Whatever was already journaled stays journaled; a new
// coordinator resuming from the directory is the only way forward.
func (c *Coordinator) hitCrashLocked(label string) {
	if c.cfg.Crash == nil {
		return
	}
	if c.cfg.Crash.Hit(label) {
		c.crashed = true
		c.cfg.Logf("distrib: chaos crash point %q fired — coordinator dead until resumed", label)
		panic(http.ErrAbortHandler)
	}
}

// sweepLocked expires overdue leases, returning their units to the
// pending pool with all received records retained.
func (c *Coordinator) sweepLocked(now time.Time) {
	expired := false
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.expires) {
			continue
		}
		c.cfg.Logf("distrib: lease %s (unit %d [%d,%d), worker %s) expired — reassigning with %d/%d runs already journaled",
			u.leaseID, u.id, u.lo, u.hi, u.worker, u.done, u.jobs())
		delete(c.byLease, u.leaseID)
		c.logAssignLocked(assignEvent{Type: "expire", Unit: u.id, Worker: u.worker, Lease: u.leaseID})
		if ws := c.workers[u.worker]; ws != nil && ws.unit == u.id {
			ws.unit = -1
		}
		u.state = unitPending
		u.leaseID = ""
		u.worker = ""
		u.reported = 0
		expired = true
	}
	if expired {
		c.wakeLocked()
	}
}

// nextExpiryLocked returns the earliest live-lease expiry, so an idle
// long-poll wakes in time to claim a unit its holder abandoned.
func (c *Coordinator) nextExpiryLocked() (time.Time, bool) {
	var next time.Time
	found := false
	for _, u := range c.units {
		if u.state != unitLeased {
			continue
		}
		if !found || u.expires.Before(next) {
			next = u.expires
			found = true
		}
	}
	return next, found
}

// touchWorkerLocked records fleet-member liveness.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{name: name, unit: -1, outcomes: make(map[string]int)}
		c.workers[name] = ws
	}
	ws.lastSeen = now
	return ws
}

// carveSizeLocked sizes the next unit. Before any completion report,
// the initial granularity (Config.Units) applies; afterwards the
// measured per-run cost shrinks units toward half the lease TTL, so a
// unit full of watchdog-budget hangs cannot become the straggler that
// serialises the tail.
func (c *Coordinator) carveSizeLocked() int {
	size := c.initialCarve()
	if c.msPerJob > 0 {
		target := float64(c.cfg.LeaseTTL.Milliseconds()) / 2
		if target < carveTargetFloorMs {
			target = carveTargetFloorMs
		}
		byCost := int(target/c.msPerJob + 0.5)
		if byCost < minCarveJobs {
			byCost = minCarveJobs
		}
		if byCost < size {
			size = byCost
		}
	}
	return size
}

// carveLocked cuts the next unit from the unassigned frontier,
// fast-forwarded past records already in the set. Returns nil when
// the frontier is exhausted — for adaptive campaigns "exhausted" is a
// statement about the planner's current checkpoints, not the job
// space: settling in-flight records can double a location's
// checkpoint and open new claims, so accepting a batch wakes parked
// lease requests to re-try the carve.
func (c *Coordinator) carveLocked() *unit {
	if c.planner != nil {
		jobs := c.planner.Claim(c.carveSizeLocked())
		if len(jobs) == 0 {
			return nil
		}
		u := &unit{id: len(c.units), jobList: jobs, jobSet: make(map[int]bool, len(jobs))}
		u.lo, u.hi = jobs[0], jobs[0]+1
		for _, job := range jobs {
			u.jobSet[job] = true
			if job < u.lo {
				u.lo = job
			}
			if job >= u.hi {
				u.hi = job + 1
			}
		}
		c.units = append(c.units, u)
		// No carve event: the planner re-derives the schedule from the
		// record journals on resume, and a claimed-but-unsettled job
		// belongs to the frontier again in the resumed process.
		return u
	}
	if c.nextJob >= c.info.TotalRuns {
		return nil
	}
	lo := c.nextJob
	hi := lo + c.carveSizeLocked()
	if hi > c.info.TotalRuns {
		hi = c.info.TotalRuns
	}
	u := &unit{id: len(c.units), lo: lo, hi: hi}
	c.nextJob = hi
	c.units = append(c.units, u)
	c.logAssignLocked(assignEvent{Type: "carve", Unit: u.id, Lo: lo, Hi: hi})
	u.done = c.coveredLocked(u)
	if u.done == u.jobs() {
		u.state = unitDone // fully restored range: nothing to lease
	}
	return u
}

// observeCostLocked feeds one completed unit's measured cost into the
// EWMA (a report without wall time or runs carries no signal).
func (c *Coordinator) observeCostLocked(wallMs int64, runs int) {
	if wallMs <= 0 || runs <= 0 {
		return
	}
	sample := float64(wallMs) / float64(runs)
	if c.msPerJob == 0 {
		c.msPerJob = sample
		return
	}
	c.msPerJob = 0.5*c.msPerJob + 0.5*sample
}

// settleLocked marks a unit done. The lease stays resolvable so the
// worker's trailing complete call succeeds instead of 409ing.
func (c *Coordinator) settleLocked(u *unit) {
	u.state = unitDone
	c.logAssignLocked(assignEvent{Type: "complete", Unit: u.id, Worker: u.worker, Lease: u.leaseID})
	if ws := c.workers[u.worker]; ws != nil && ws.unit == u.id {
		ws.unit = -1
	}
	c.cfg.Logf("distrib: unit %d [%d,%d) complete (%d runs, worker %s)", u.id, u.lo, u.hi, u.jobs(), u.worker)
	c.maybeCompleteLocked()
}

// countPruneLocked aggregates a record's pruned label into the fleet
// counters (empty for executed runs and journals predating pruning).
func (c *Coordinator) countPruneLocked(rec runner.Record) {
	switch rec.Pruned {
	case campaign.PrunedNoOp, campaign.PrunedUnfired:
		c.prunedRuns++
	case campaign.PrunedMemoized:
		c.memoizedRuns++
	case campaign.PrunedMemoStore:
		c.memoizedRuns++
		c.storeMemoRuns++
	case campaign.PrunedConverged:
		c.convergedRuns++
	}
}

// outcomeKey normalises a record's outcome for per-worker counters
// (version-1 records carry no outcome field).
func outcomeKey(rec runner.Record) string {
	if rec.Outcome != "" {
		return rec.Outcome
	}
	if rec.SystemFailure || len(rec.Diffs) > 0 {
		return string(campaign.OutcomeDeviation)
	}
	return string(campaign.OutcomeOK)
}

// handleLease assigns the lowest pending unit to the requester,
// carving a fresh one from the frontier when none is pending. With no
// pending unit and an exhausted frontier it long-polls: the request
// parks (up to leaseWaitMax, well under the worker client's timeout)
// until a unit returns to the pool or the campaign completes, instead
// of bouncing the worker into a sleep/retry loop. A worker therefore
// never sleeps while work is available — leasing is entirely
// event-driven.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	now := time.Now()
	deadline := now.Add(leaseWaitMax)
	c.mu.Lock()
	var pick *unit
	for {
		if c.deadLocked(w) {
			c.mu.Unlock()
			return
		}
		now = time.Now()
		c.sweepLocked(now)
		c.touchWorkerLocked(req.Worker, now)

		if c.complete {
			c.mu.Unlock()
			writeJSON(w, LeaseResponse{Status: StatusDone, Binary: true, Campaign: c.cfg.Campaign})
			return
		}
		for _, u := range c.units {
			if u.state == unitPending {
				pick = u
				break
			}
		}
		for pick == nil {
			u := c.carveLocked()
			if u == nil {
				break
			}
			if u.state == unitDone {
				c.maybeCompleteLocked()
				continue // fully restored range; carve the next one
			}
			pick = u
		}
		if pick != nil {
			break
		}
		// Nothing pending and nothing left to carve: park until a
		// wake, the next lease expiry (plus a sweep margin), or the
		// long-poll deadline.
		wait := time.Until(deadline)
		if next, ok := c.nextExpiryLocked(); ok {
			if d := time.Until(next) + 10*time.Millisecond; d < wait {
				wait = d
			}
		}
		if wait <= 0 {
			c.mu.Unlock()
			writeJSON(w, LeaseResponse{Status: StatusWait, RetryMs: leaseRetryMs, Binary: true, Campaign: c.cfg.Campaign})
			return
		}
		wake := c.wake
		c.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-wake:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return // client gone; nothing was leased
		}
		t.Stop()
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	writeJSON(w, c.grantLocked(pick, req.Worker, now))
}

// grantLocked leases pick to worker and builds the unit response —
// the single grant path shared by handleLease and TryLease, so lease
// IDs, journaling and the crash point behave identically however the
// unit was dispatched. When Config.Campaign is set the lease ID is
// prefixed with it: two coordinators multiplexed behind one service
// can never mint colliding leases.
func (c *Coordinator) grantLocked(pick *unit, worker string, now time.Time) LeaseResponse {
	c.hitCrashLocked(CrashPreLeaseGrant)
	c.leaseSeq++
	prefix := ""
	if c.cfg.Campaign != "" {
		prefix = c.cfg.Campaign + "-"
	}
	pick.state = unitLeased
	pick.leaseID = fmt.Sprintf("%sL%04d-u%d", prefix, c.leaseSeq, pick.id)
	pick.worker = worker
	pick.expires = now.Add(c.cfg.LeaseTTL)
	pick.attempts++
	pick.reported = 0
	c.byLease[pick.leaseID] = pick
	ws := c.workers[worker]
	ws.unit = pick.id
	c.logAssignLocked(assignEvent{Type: "assign", Unit: pick.id, Worker: worker, Lease: pick.leaseID})
	c.cfg.Logf("distrib: leased unit %d [%d,%d) to %s (%s, attempt %d, %d/%d runs pre-journaled)",
		pick.id, pick.lo, pick.hi, worker, pick.leaseID, pick.attempts, pick.done, pick.jobs())

	doneJobs := make([]int, 0, pick.done)
	pick.eachJob(func(job int) {
		if _, ok := c.seen[job]; ok {
			doneJobs = append(doneJobs, job)
		}
	})
	sort.Ints(doneJobs)
	return LeaseResponse{
		Status:   StatusUnit,
		LeaseID:  pick.leaseID,
		TTLMs:    c.cfg.LeaseTTL.Milliseconds(),
		Binary:   true,
		Campaign: c.cfg.Campaign,
		Unit: &WorkUnit{
			Instance:       c.cfg.Instance,
			Tier:           string(c.cfg.Tier),
			ConfigDigest:   c.info.Digest,
			Unit:           pick.id,
			JobLo:          pick.lo,
			JobHi:          pick.hi,
			JobList:        pick.jobList,
			TotalRuns:      c.info.TotalRuns,
			RunBudgetSteps: c.cfg.RunBudgetSteps,
			Adaptive:       c.info.Adaptive,
			CIEpsilon:      c.info.CIEpsilon,
			DoneJobs:       doneJobs,
			Document:       c.cfg.Document,
		},
	}
}

// TryLease is the non-blocking form of the lease endpoint, for a
// service multiplexing several coordinators over one worker fleet: it
// either grants a unit immediately or reports that none is grantable
// right now — campaign complete (watch Done for that), coordinator
// crashed at a chaos point, frontier exhausted with every unit leased
// out. The caller parks fleet-wide across campaigns using NextExpiry
// and Config.OnWake instead of this coordinator's own long-poll.
func (c *Coordinator) TryLease(worker string) (LeaseResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.complete {
		return LeaseResponse{}, false
	}
	now := time.Now()
	c.sweepLocked(now)
	c.touchWorkerLocked(worker, now)
	var pick *unit
	for _, u := range c.units {
		if u.state == unitPending {
			pick = u
			break
		}
	}
	for pick == nil {
		u := c.carveLocked()
		if u == nil {
			break
		}
		if u.state == unitDone {
			c.maybeCompleteLocked()
			continue // fully restored range; carve the next one
		}
		pick = u
	}
	if pick == nil {
		return LeaseResponse{}, false
	}
	return c.grantLocked(pick, worker, now), true
}

// NextExpiry returns the earliest live-lease expiry, if any — the
// service's fleet-wide park wakes then to re-try a lease a worker may
// have abandoned.
func (c *Coordinator) NextExpiry() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextExpiryLocked()
}

// leaseLocked resolves a live lease, sweeping expiries first.
func (c *Coordinator) leaseLocked(id string, now time.Time) (*unit, error) {
	c.sweepLocked(now)
	u := c.byLease[id]
	if u == nil || u.leaseID != id {
		return nil, fmt.Errorf("unknown or expired lease %q", id)
	}
	return u, nil
}

// decodeBatch negotiates the request's record-batch encoding by
// Content-Type. pooled reports whether the returned records came from
// the decode pool (the caller releases them after copying what it
// keeps).
func decodeBatch(r *http.Request) (batch RecordBatch, pooled bool, err error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary) {
		data, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			return RecordBatch{}, false, rerr
		}
		batch, err = decodeRecordBatch(data)
		return batch, err == nil, err
	}
	err = json.NewDecoder(r.Body).Decode(&batch)
	return batch, false, err
}

// handleRecords ingests one record batch — the bulk upload after a
// digest-only completion, or a v1-style mid-run stream — renewing the
// lease. Validation is two-pass: the whole batch is checked before
// anything is journaled, so a hostile or wire-damaged batch can never
// partially journal (the all-or-nothing guarantee FuzzProtocol
// asserts). The happy path appends the whole batch with a single
// journal write.
func (c *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	batch, pooled, err := decodeBatch(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding record batch: %v", err)
		return
	}
	if pooled {
		defer releaseRecords(batch.Records)
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(batch.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if u.state == unitLeased {
		u.expires = now.Add(c.cfg.LeaseTTL)
	}
	ws := c.touchWorkerLocked(u.worker, now)

	resp := BatchResponse{}
	fresh := make([]runner.Record, 0, len(batch.Records))
	inBatch := make(map[int]runner.Record, len(batch.Records))
	for _, rec := range batch.Records {
		if !u.has(rec.Job) {
			httpError(w, http.StatusBadRequest, "record rejected: job %d outside unit %d (range [%d,%d))",
				rec.Job, u.id, u.lo, u.hi)
			return
		}
		if c.planner != nil {
			// The adaptive schedule folds every accepted record into its
			// stopping decisions; a record it cannot parse must be
			// rejected before anything journals, or the owning
			// location's settled prefix would wedge forever.
			if _, err := rec.RunRecord(); err != nil {
				httpError(w, http.StatusBadRequest, "record rejected: %v", err)
				return
			}
		}
		prev, dup := c.seen[rec.Job]
		if !dup {
			prev, dup = inBatch[rec.Job]
		}
		if dup {
			if !runner.RecordsEqual(prev, rec) {
				httpError(w, http.StatusConflict, "job %d already journaled with different content: %v",
					rec.Job, runner.ErrConflictingRecords)
				return
			}
			resp.Duplicates++
			continue
		}
		inBatch[rec.Job] = rec
		fresh = append(fresh, rec)
	}
	if len(fresh) > 0 {
		if c.journal == nil {
			j, err := runner.OpenShardJournal(c.cfg.Dir, runner.JournalHeader{
				Version:      runner.JournalVersionFor(c.planner != nil),
				Instance:     c.cfg.Instance,
				Tier:         string(c.cfg.Tier),
				Shard:        0,
				Shards:       1,
				ConfigDigest: c.info.Digest,
			})
			if err != nil {
				httpError(w, http.StatusInternalServerError, "opening record journal: %v", err)
				return
			}
			c.journal = j
		}
		if c.cfg.Crash == nil {
			// Steady state: one write for the whole batch.
			if err := c.journal.AppendBatch(fresh); err != nil {
				httpError(w, http.StatusInternalServerError, "journaling batch: %v", err)
				return
			}
			for _, rec := range fresh {
				c.acceptLocked(u, ws, rec)
				resp.Accepted++
			}
		} else {
			// Chaos-armed: append record by record so the
			// mid-batch-append crash point can fire with the batch
			// half-durable — the exact torn state the harness exists to
			// reproduce.
			for _, rec := range fresh {
				if err := c.journal.Append(rec); err != nil {
					httpError(w, http.StatusInternalServerError, "journaling record: %v", err)
					return
				}
				c.acceptLocked(u, ws, rec)
				resp.Accepted++
				c.hitCrashLocked(CrashMidBatchAppend)
			}
		}
	}
	if u.state == unitLeased && u.done == u.jobs() {
		c.settleLocked(u)
	}
	if c.planner != nil && resp.Accepted > 0 && !c.complete {
		// Settled samples may have doubled a location's checkpoint:
		// claims that were empty a moment ago can be live now, so parked
		// lease requests must re-try the carve.
		c.wakeLocked()
	}
	resp.UnitDone = u.state == unitDone
	writeJSON(w, resp)
}

// acceptLocked folds one freshly journaled record into the in-memory
// state — and, for adaptive campaigns, into the planner, where it
// advances the owning location's settled prefix and may trigger a
// checkpoint evaluation (stop, or double the checkpoint and open new
// claims).
func (c *Coordinator) acceptLocked(u *unit, ws *workerState, rec runner.Record) {
	c.seen[rec.Job] = rec
	c.received++
	u.done++
	c.countPruneLocked(rec)
	ws.records++
	ws.outcomes[outcomeKey(rec)]++
	if c.planner != nil {
		// The job passed the unit-membership gate, the unit's list came
		// from Claim, and duplicates were filtered — Observe can only
		// fail on a coordinator logic error, which must be loud.
		rr, err := rec.RunRecord()
		if err == nil {
			err = c.planner.Observe(rr)
		}
		if err != nil {
			c.cfg.Logf("distrib: BUG: accepted record rejected by adaptive schedule: %v", err)
		}
	}
}

// handleHeartbeat renews a lease and records the worker's local
// progress.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(req.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if u.state == unitLeased {
		u.expires = now.Add(c.cfg.LeaseTTL)
		if req.Done > u.reported {
			u.reported = req.Done
		}
	}
	c.touchWorkerLocked(u.worker, now)
	writeJSON(w, HeartbeatResponse{TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

// handleComplete finishes a unit from the worker's side. Units settle
// coordinator-side the moment their last record is journaled (ingest
// or resume), so completion is about what the coordinator does NOT
// yet hold: a v2 completion against an unsettled unit is answered
// NeedRecords — the lazy pull — and against a settled unit it
// cross-checks the offered record-set digest (and, under Config.Pull,
// demands the upload anyway for per-record cross-verification). A v1
// completion (bare lease ID) is only valid for a unit whose records
// were streamed in full; it otherwise revokes the lease so the gap
// re-executes elsewhere.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding complete: %v", err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(req.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	c.touchWorkerLocked(u.worker, now)
	v2 := req.Runs > 0 || req.Digest != "" || req.Uploaded
	if v2 && !req.Uploaded {
		// The first (pre-upload) completion carries the unit's
		// measured cost; the post-upload retry would double-count it.
		c.observeCostLocked(req.WallMs, req.Runs)
		if len(req.Outcomes) > 0 {
			c.cfg.Logf("distrib: worker %s reports unit %d done: %d runs, outcomes %v, pruned %d, memoized %d, converged %d (%d ms)",
				u.worker, u.id, req.Runs, req.Outcomes, req.Pruned, req.Memoized, req.Converged, req.WallMs)
		}
	}
	switch {
	case u.state == unitDone:
		if v2 && !req.Uploaded {
			// Under Config.Pull the records upload even though the
			// unit is settled: every record arrives as a duplicate and
			// is verified against the journaled copy — per-record
			// cross-verification at transfer cost, for when digests
			// are not trusted.
			if c.cfg.Pull {
				writeJSON(w, CompleteResponse{NeedRecords: true})
				return
			}
			// Cross-check the offered digest: a mismatch means the
			// worker simulated different outcomes than the set already
			// journaled — nondeterminism or version skew that
			// per-record content keys never got to compare, because
			// this worker's records never transferred.
			if req.Digest != "" {
				if own := c.recordSetDigestLocked(u); own != req.Digest {
					httpError(w, http.StatusConflict,
						"unit %d record-set digest %s does not match the journaled set's %s: %v",
						u.id, req.Digest, own, runner.ErrConflictingRecords)
					return
				}
			}
		}
	case v2 && !req.Uploaded:
		// The lazy pull: the worker holds records the coordinator
		// lacks — ask for the upload, keep the lease alive. (The
		// upload's last batch settles the unit at ingest; the
		// post-upload completion lands in the settled case above.)
		u.expires = now.Add(c.cfg.LeaseTTL)
		writeJSON(w, CompleteResponse{NeedRecords: true})
		return
	default:
		// v1 completion with gaps, or a post-upload completion that
		// still left gaps (the worker's set was partial): the worker
		// cannot help further — revoke so the gap re-executes
		// elsewhere.
		c.cfg.Logf("distrib: worker %s reported unit %d complete with %d/%d runs journaled — revoking lease",
			u.worker, u.id, u.done, u.jobs())
		delete(c.byLease, u.leaseID)
		c.logAssignLocked(assignEvent{Type: "expire", Unit: u.id, Worker: u.worker, Lease: u.leaseID})
		u.state = unitPending
		u.leaseID = ""
		u.worker = ""
		u.reported = 0
		c.wakeLocked()
		httpError(w, http.StatusConflict, "unit %d has %d of %d runs journaled — lease revoked", u.id, u.done, u.jobs())
		return
	}
	c.hitCrashLocked(CrashPreCompleteAck)
	writeJSON(w, CompleteResponse{CampaignDone: c.complete})
}

// recordSetDigestLocked computes the canonical digest of a unit's
// journaled record set (only called with the unit fully covered; the
// no-transfer settle path).
func (c *Coordinator) recordSetDigestLocked(u *unit) string {
	recs := make([]runner.Record, 0, u.jobs())
	u.eachJob(func(job int) {
		recs = append(recs, c.seen[job])
	})
	return runner.RecordSetDigest(recs)
}

// UnitStatus is the /status view of one work unit.
type UnitStatus struct {
	Unit     int    `json:"unit"`
	JobLo    int    `json:"job_lo"`
	JobHi    int    `json:"job_hi"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Lease    string `json:"lease,omitempty"`
	DoneRuns int    `json:"done_runs"`
	// Reported is the lease holder's own progress claim (heartbeats);
	// DoneRuns counts records the coordinator actually holds.
	Reported int `json:"reported,omitempty"`
	Jobs     int `json:"jobs"`
	Attempts int `json:"attempts"`
}

// WorkerStatus is the /status and /metrics view of one fleet member.
type WorkerStatus struct {
	Name          string         `json:"name"`
	Unit          int            `json:"unit"` // -1 when idle
	Records       int            `json:"records"`
	Outcomes      map[string]int `json:"outcomes,omitempty"`
	LastSeenMsAgo int64          `json:"last_seen_ms_ago"`
	Live          bool           `json:"live"`
}

// Status is the /status JSON document.
type Status struct {
	Instance     string `json:"instance"`
	Tier         string `json:"tier"`
	ConfigDigest string `json:"config_digest"`
	// Units counts the units carved so far; UncarvedJobs is the
	// remaining frontier (0 for adaptive campaigns, whose frontier is
	// discovered checkpoint by checkpoint — see ScheduledRuns).
	Units        int  `json:"units"`
	UncarvedJobs int  `json:"uncarved_jobs"`
	Pending      int  `json:"pending"`
	Leased       int  `json:"leased"`
	Done         int  `json:"done"`
	TotalRuns    int  `json:"total_runs"`
	DoneRuns     int  `json:"done_runs"`
	Complete     bool `json:"complete"`
	// Adaptive campaigns: PopulationRuns is the fireable sample count
	// (the upper bound on executed jobs), ScheduledRuns the samples the
	// stopping rule has asked for so far.
	Adaptive       bool           `json:"adaptive,omitempty"`
	PopulationRuns int            `json:"population_runs,omitempty"`
	ScheduledRuns  int            `json:"scheduled_runs,omitempty"`
	UnitsDetail    []UnitStatus   `json:"units_detail"`
	Workers        []WorkerStatus `json:"workers"`
}

// Metrics is the /metrics JSON document: fleet throughput and
// utilisation for dashboards and the scale-out benchmarks.
type Metrics struct {
	Instance       string  `json:"instance"`
	Tier           string  `json:"tier"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TotalRuns      int     `json:"total_runs"`
	DoneRuns       int     `json:"done_runs"`
	ResumedRuns    int     `json:"resumed_runs"`
	ReceivedRuns   int     `json:"received_runs"`
	// ReportedRuns sums the live leases' worker-reported progress —
	// work done but not yet uploaded (digest-only completion keeps
	// records worker-side until the unit finishes).
	ReportedRuns int `json:"reported_runs,omitempty"`
	// MsPerRun is the cost model's current estimate (0 until the
	// first unit completes).
	MsPerRun float64 `json:"ms_per_run,omitempty"`
	// Fleet-wide equivalence-pruning counters (from the records'
	// pruned labels): proven without simulating, served from a
	// worker's memo cache, and stopped early on golden reconvergence.
	PrunedRuns   int `json:"pruned_runs,omitempty"`
	MemoizedRuns int `json:"memoized_runs,omitempty"`
	// StoreMemoRuns is the subset of MemoizedRuns served from a
	// persistent memo store — results executed by an earlier
	// campaign, possibly in another process or for another tenant.
	StoreMemoRuns int     `json:"store_memo_runs,omitempty"`
	ConvergedRuns int     `json:"converged_runs,omitempty"`
	RunsPerSecond float64 `json:"runs_per_second"`
	ETASeconds    float64 `json:"eta_seconds"`
	UnitsPending  int     `json:"units_pending"`
	UnitsLeased   int     `json:"units_leased"`
	UnitsDone     int     `json:"units_done"`
	LiveWorkers   int     `json:"live_workers"`
	// FleetUtilization is the fraction of live workers currently
	// holding a lease.
	FleetUtilization float64 `json:"fleet_utilization"`
	// Adaptive campaigns: the fireable population and the samples the
	// stopping rule has asked for so far (see Status).
	Adaptive       bool           `json:"adaptive,omitempty"`
	PopulationRuns int            `json:"population_runs,omitempty"`
	ScheduledRuns  int            `json:"scheduled_runs,omitempty"`
	Complete       bool           `json:"complete"`
	Workers        []WorkerStatus `json:"workers"`
}

// workerLiveWindow is how long after its last contact a worker still
// counts as part of the fleet.
func (c *Coordinator) workerLiveWindow() time.Duration { return 3 * c.cfg.LeaseTTL }

func (c *Coordinator) workersLocked(now time.Time) []WorkerStatus {
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]WorkerStatus, 0, len(names))
	for _, name := range names {
		ws := c.workers[name]
		outcomes := make(map[string]int, len(ws.outcomes))
		for k, v := range ws.outcomes {
			outcomes[k] = v
		}
		out = append(out, WorkerStatus{
			Name:          ws.name,
			Unit:          ws.unit,
			Records:       ws.records,
			Outcomes:      outcomes,
			LastSeenMsAgo: now.Sub(ws.lastSeen).Milliseconds(),
			Live:          now.Sub(ws.lastSeen) <= c.workerLiveWindow(),
		})
	}
	return out
}

// Status snapshots the fleet (also served at /status).
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	s := Status{
		Instance:     c.cfg.Instance,
		Tier:         string(c.cfg.Tier),
		ConfigDigest: c.info.Digest,
		Units:        len(c.units),
		UncarvedJobs: c.info.TotalRuns - c.nextJob,
		TotalRuns:    c.info.TotalRuns,
		DoneRuns:     len(c.seen),
		Complete:     c.complete,
		Workers:      c.workersLocked(now),
	}
	if c.planner != nil {
		st := c.planner.Stats()
		s.Adaptive = true
		s.UncarvedJobs = 0
		s.PopulationRuns = st.Population
		s.ScheduledRuns = st.Scheduled
	}
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			s.Pending++
		case unitLeased:
			s.Leased++
		case unitDone:
			s.Done++
		}
		s.UnitsDetail = append(s.UnitsDetail, UnitStatus{
			Unit:     u.id,
			JobLo:    u.lo,
			JobHi:    u.hi,
			State:    u.state.String(),
			Worker:   u.worker,
			Lease:    u.leaseID,
			DoneRuns: u.done,
			Reported: u.reported,
			Jobs:     u.jobs(),
			Attempts: u.attempts,
		})
	}
	return s
}

// Metrics snapshots fleet throughput (also served at /metrics).
func (c *Coordinator) Metrics() Metrics {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	m := Metrics{
		Instance:       c.cfg.Instance,
		Tier:           string(c.cfg.Tier),
		ElapsedSeconds: now.Sub(c.start).Seconds(),
		TotalRuns:      c.info.TotalRuns,
		DoneRuns:       len(c.seen),
		ResumedRuns:    c.resumed,
		ReceivedRuns:   c.received,
		MsPerRun:       c.msPerJob,
		PrunedRuns:     c.prunedRuns,
		MemoizedRuns:   c.memoizedRuns,
		StoreMemoRuns:  c.storeMemoRuns,
		ConvergedRuns:  c.convergedRuns,
		Complete:       c.complete,
		Workers:        c.workersLocked(now),
	}
	if c.planner != nil {
		st := c.planner.Stats()
		m.Adaptive = true
		m.PopulationRuns = st.Population
		m.ScheduledRuns = st.Scheduled
	}
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			m.UnitsPending++
		case unitLeased:
			m.UnitsLeased++
			if extra := u.reported - u.done; extra > 0 {
				m.ReportedRuns += extra
			}
		case unitDone:
			m.UnitsDone++
		}
	}
	for _, ws := range m.Workers {
		if ws.Live {
			m.LiveWorkers++
		}
	}
	if m.ElapsedSeconds > 0 {
		m.RunsPerSecond = float64(m.ReceivedRuns) / m.ElapsedSeconds
	}
	remaining := m.TotalRuns - m.DoneRuns
	if c.planner != nil {
		// The adaptive frontier is discovered checkpoint by checkpoint;
		// the in-flight claims are the only honest remaining-work figure.
		remaining = c.planner.Outstanding()
	}
	if remaining > 0 && m.RunsPerSecond > 0 {
		m.ETASeconds = float64(remaining) / m.RunsPerSecond
	}
	if m.LiveWorkers > 0 {
		m.FleetUtilization = float64(m.UnitsLeased) / float64(m.LiveWorkers)
		if m.FleetUtilization > 1 {
			m.FleetUtilization = 1
		}
	}
	return m
}

// maxRequestBody bounds a POST body. The largest legitimate request
// is a whole unit's record upload (gzip-framed); 64 MiB is an order
// of magnitude above anything the fleet produces and still refuses a
// hostile unbounded stream.
const maxRequestBody = 64 << 20

// responseRecorder tees a handler's reply into a buffer so the
// idempotency store can replay it for duplicated deliveries.
type responseRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (r *responseRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	r.buf.Write(b)
	return r.ResponseWriter.Write(b)
}

// post hardens one POST handler: method gate, crashed-state gate,
// bounded body read, content-digest verification (a body damaged in
// flight — chaos truncate/corrupt, or any real middlebox mangling —
// is rejected with the retryable CodeBodyDigest before the handler
// sees it), and, when idempotent, duplicate-delivery replay from the
// idempotency store. The digest covers the raw body regardless of
// encoding, so binary frames are wire-protected exactly like JSON.
func (c *Coordinator) post(idempotent bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		c.mu.Lock()
		dead := c.crashed
		c.mu.Unlock()
		if dead {
			httpErrorCode(w, http.StatusServiceUnavailable, CodeCrashed,
				"coordinator crashed at a chaos crash point; awaiting resume")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil {
			// A short or broken read is wire damage, not a client
			// bug: the sender's copy is intact, so mark it retryable.
			httpErrorCode(w, http.StatusBadRequest, CodeBodyDigest, "reading request body: %v", err)
			return
		}
		if len(body) > maxRequestBody {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxRequestBody)
			return
		}
		if want := r.Header.Get(HeaderBodyDigest); want != "" {
			sum := sha256.Sum256(body)
			if got := hex.EncodeToString(sum[:]); got != want {
				httpErrorCode(w, http.StatusBadRequest, CodeBodyDigest,
					"request body digest %s does not match header %s — body damaged in flight", got, want)
				return
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(body))

		key := r.Header.Get(HeaderIdempotencyKey)
		if !idempotent || key == "" {
			h(w, r)
			return
		}
		key = r.URL.Path + "|" + key
		if e, ok := c.idem.get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(HeaderIdempotentReplay, "1")
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		// Store every terminal answer (including deterministic 4xx);
		// 5xx replies are transient server trouble and must re-execute.
		if rec.status < 500 {
			c.idem.put(key, idemEntry{status: rec.status, body: bytes.Clone(rec.buf.Bytes())})
		}
	}
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, c.post(false, c.handleLease))
	mux.HandleFunc(PathRecords, c.post(true, c.handleRecords))
	mux.HandleFunc(PathHeartbeat, c.post(false, c.handleHeartbeat))
	mux.HandleFunc(PathComplete, c.post(true, c.handleComplete))
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc(PathMetrics, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Metrics())
	})
	return mux
}

// handlerDeadline bounds one request's service time. It must exceed
// leaseWaitMax (the lease long-poll parks up to that long by design)
// while still unsticking a handler wedged on pathological input.
const handlerDeadline = 30 * time.Second

// NewServer wraps h in an http.Server hardened for a bad network:
// ReadHeaderTimeout defeats slow-header connection squatting,
// IdleTimeout reaps abandoned keep-alives, and every handler runs
// under handlerDeadline (expiry answers 503/CodeTimeout, which
// clients treat as retryable). Every server the fabric starts —
// coordinator Serve, the loopback harness, propaned — goes through
// here.
func NewServer(h http.Handler) *http.Server {
	timeoutBody, _ := json.Marshal(errorResponse{
		Error: fmt.Sprintf("handler deadline (%s) exceeded", handlerDeadline),
		Code:  CodeTimeout,
	})
	return &http.Server{
		Handler:           http.TimeoutHandler(h, handlerDeadline, string(timeoutBody)),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Close releases the coordinator's files without assembling — for a
// coordinator abandoned (or crashed in a test) mid-campaign. The
// journals on disk remain resumable.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	if c.journal != nil {
		errs = append(errs, c.journal.Close())
		c.journal = nil
	}
	if c.assign != nil {
		errs = append(errs, c.assign.Close())
		c.assign = nil
	}
	return errors.Join(errs...)
}

// Assemble merges the record journal into the final campaign result —
// bit-identical to a single-node run — and writes the closing
// artifacts (config.json, metrics.json, failures.md, report.md).
func (c *Coordinator) Assemble() (*runner.RunResult, error) {
	c.mu.Lock()
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.journal = nil
	}
	c.mu.Unlock()
	opts := runner.Options{
		Name:           c.cfg.Instance,
		Tier:           c.cfg.Tier,
		Dir:            c.cfg.Dir,
		RunBudgetSteps: c.cfg.RunBudgetSteps,
		Logf:           c.cfg.Logf,
	}
	if c.info.Adaptive {
		opts.Adaptive = campaign.AdaptiveForce
		opts.CIEpsilon = c.info.CIEpsilon
	}
	return runner.Assemble(c.campaign, opts)
}

// Serve runs the coordinator's HTTP API on l until the campaign
// completes, then assembles the final result. The server keeps
// answering (with StatusDone leases) while assembly runs, so workers
// drain cleanly, and shuts down afterwards.
func (c *Coordinator) Serve(l net.Listener) (*runner.RunResult, error) {
	srv := NewServer(c.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case <-c.Done():
	case err := <-errCh:
		return nil, fmt.Errorf("distrib: coordinator server: %w", err)
	}
	rr, err := c.Assemble()
	_ = srv.Close()
	return rr, err
}

// writeJSON writes a 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes an errorResponse with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpErrorCode(w, status, "", format, args...)
}

// httpErrorCode writes an errorResponse carrying a machine-readable
// code alongside the prose.
func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}
