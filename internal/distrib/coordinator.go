package distrib

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/runner"
)

// Config parameterises one coordinated campaign.
type Config struct {
	// Instance and Tier select the campaign from the registry. Both
	// sides resolve the name through their own registry; the config
	// digest guards against version skew.
	Instance string
	Tier     runner.Tier
	// Dir is the coordinator's artifact directory: shard journals,
	// the assignment journal, and — after completion — the assembled
	// config.json, metrics.json, failures.md and report.md.
	Dir string
	// Units is the number of work units the job space is decomposed
	// into (the shard count). More units than workers lets the fleet
	// rebalance around slow or dying members. <= 0 selects 8.
	Units int
	// LeaseTTL bounds how long a silent worker keeps a unit. Record
	// flushes and heartbeats renew the lease; a worker silent for a
	// full TTL is presumed dead and its unit is reassigned. <= 0
	// selects 30 s.
	LeaseTTL time.Duration
	// Resume restores coordinator state from the journals under Dir
	// (records already streamed, completed units) instead of refusing
	// to touch a non-empty directory.
	Resume bool
	// RunBudgetSteps arms the per-run watchdog fleet-wide; it is part
	// of the config digest, so workers apply the value carried in
	// their work unit.
	RunBudgetSteps int64
	// Crash, when non-nil, arms deterministic crash points at the
	// labeled protocol sites (CrashPreLeaseGrant, CrashMidBatchAppend,
	// CrashPreCompleteAck). A fired site aborts its in-flight request
	// without a reply and flips the coordinator into a "crashed" state
	// where every request answers 503/"coordinator_crashed" until a
	// new coordinator resumes from the journals — the chaos harness's
	// stand-in for a SIGKILL, with the kill site pinned instead of
	// raced.
	Crash *chaos.Crashpoints
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)
}

// Coordinator crash-point labels (see chaos.Crashpoints). Each marks
// the instant just before a state transition becomes externally
// visible, where a real crash is most likely to strand a client:
const (
	// CrashPreLeaseGrant fires after a unit is chosen but before the
	// lease is recorded or granted — the requester gets no reply and
	// the unit stays pending for the resumed coordinator.
	CrashPreLeaseGrant = "pre-lease-grant"
	// CrashMidBatchAppend fires inside a record batch after at least
	// one record hit the journal — the batch is half-durable and the
	// worker never learns which half.
	CrashMidBatchAppend = "mid-batch-append"
	// CrashPreCompleteAck fires after a unit settles but before the
	// completion is acknowledged — the worker retries a completion
	// the journals already contain.
	CrashPreCompleteAck = "pre-complete-ack"
)

const (
	defaultUnits    = 8
	defaultLeaseTTL = 30 * time.Second
	// leaseWaitMax bounds how long a lease request with no pending
	// unit parks inside the coordinator (long-poll). It must stay
	// comfortably under the worker HTTP client's 30 s timeout.
	leaseWaitMax = 10 * time.Second
	// leaseRetryMs is the retry hint returned when a long-poll times
	// out without work — short, because the worker comes straight back
	// into another long-poll rather than busy-waiting.
	leaseRetryMs = 25
)

func (c *Config) normalise() error {
	if c.Instance == "" {
		return errors.New("distrib: no instance")
	}
	if c.Dir == "" {
		return errors.New("distrib: no artifact directory")
	}
	if c.Tier == "" {
		c.Tier = runner.TierQuick
	}
	if c.Units <= 0 {
		c.Units = defaultUnits
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = defaultLeaseTTL
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// unitState is the lease state machine: pending → leased → done, with
// leased → pending on expiry (the unit keeps its received records, so
// the next holder fast-forwards).
type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
)

func (s unitState) String() string {
	switch s {
	case unitPending:
		return "pending"
	case unitLeased:
		return "leased"
	case unitDone:
		return "done"
	}
	return fmt.Sprintf("unitState(%d)", int(s))
}

// unit is one shard-range work unit.
type unit struct {
	shard    int
	jobs     int // total job count of this unit
	state    unitState
	leaseID  string
	worker   string
	expires  time.Time
	attempts int                   // times leased
	seen     map[int]runner.Record // job → received record (content-keyed)
	journal  *runner.ShardJournal  // lazily opened on first record
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	name     string
	lastSeen time.Time
	unit     int // leased unit's shard, -1 when idle
	records  int
	outcomes map[string]int
}

// Coordinator decomposes a campaign into lease-bounded work units,
// collects worker-streamed journal records, and reassembles the
// result. All HTTP handlers and accessors are safe for concurrent
// use.
type Coordinator struct {
	cfg      Config
	campaign campaign.Config
	info     runner.PlanInfo

	mu       sync.Mutex
	units    []*unit
	byLease  map[string]*unit
	workers  map[string]*workerState
	leaseSeq int
	resumed  int // records restored from journals at startup
	received int // live records accepted from workers
	start    time.Time
	assign   *os.File
	complete bool
	// wake is closed (and replaced) whenever a unit returns to the
	// pending pool or the campaign completes, releasing lease requests
	// parked in handleLease's long-poll.
	wake chan struct{}
	// Equivalence-pruning counters aggregated across the fleet from
	// the streamed records' pruned labels.
	prunedRuns    int
	memoizedRuns  int
	convergedRuns int

	// crashed flips when an armed crash point fires: every subsequent
	// request answers 503 until a resumed coordinator takes over.
	crashed bool
	// idem replays stored responses for duplicated /records and
	// /complete deliveries.
	idem idemStore

	done chan struct{}
}

// idemStore is a bounded FIFO map of idempotency key → stored
// response. Duplicated deliveries (retries after a lost reply,
// chaos-duplicated requests) replay the original response verbatim,
// making them true no-ops even for replies that carry counters.
type idemStore struct {
	mu      sync.Mutex
	entries map[string]idemEntry
	order   []string
}

type idemEntry struct {
	status int
	body   []byte
}

// idemStoreCap bounds the store; at one entry per in-flight batch the
// working set is tiny, so the cap only guards pathological clients.
const idemStoreCap = 1024

func (s *idemStore) get(key string) (idemEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

func (s *idemStore) put(key string, e idemEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]idemEntry)
	}
	if _, dup := s.entries[key]; dup {
		return
	}
	for len(s.order) >= idemStoreCap {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
	s.entries[key] = e
	s.order = append(s.order, key)
}

// NewCoordinator plans the campaign (running the golden runs to pin
// the config digest), decomposes it into cfg.Units work units, and —
// with cfg.Resume — restores received records and completed units
// from the journals under cfg.Dir.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	info, err := runner.DescribeInstance(cfg.Instance, cfg.Tier, runner.Options{
		Dir:            cfg.Dir,
		RunBudgetSteps: cfg.RunBudgetSteps,
	})
	if err != nil {
		return nil, err
	}
	def, err := runner.Lookup(cfg.Instance)
	if err != nil {
		return nil, err
	}
	ccfg, err := def.Config(cfg.Tier)
	if err != nil {
		return nil, err
	}
	if cfg.Units > info.TotalRuns {
		cfg.Units = info.TotalRuns // no empty units
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("distrib: creating artifact dir: %w", err)
	}

	c := &Coordinator{
		cfg:      cfg,
		campaign: ccfg,
		info:     info,
		byLease:  make(map[string]*unit),
		workers:  make(map[string]*workerState),
		start:    time.Now(),
		wake:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := 0; i < cfg.Units; i++ {
		jobs := info.TotalRuns / cfg.Units
		if i < info.TotalRuns%cfg.Units {
			jobs++
		}
		c.units = append(c.units, &unit{
			shard: i,
			jobs:  jobs,
			seen:  make(map[int]runner.Record),
		})
	}

	if err := c.restoreJournals(); err != nil {
		return nil, err
	}
	if err := c.openAssignmentLog(); err != nil {
		return nil, err
	}
	c.maybeCompleteLocked()
	return c, nil
}

// restoreJournals rebuilds unit state from the shard journals — the
// journals, not the assignment log, are the source of truth for which
// work is done, so a coordinator crash between the two can never
// invent or lose records.
func (c *Coordinator) restoreJournals() error {
	for _, u := range c.units {
		path := runner.ShardJournalPath(c.cfg.Dir, u.shard, c.cfg.Units)
		if !c.cfg.Resume {
			if st, err := os.Stat(path); err == nil && st.Size() > 0 {
				return fmt.Errorf("distrib: %s already exists — pass Resume to continue the campaign or use a fresh directory", path)
			}
			continue
		}
		hdr, recs, err := runner.ReadJournal(path)
		if err != nil {
			return err
		}
		if hdr.ConfigDigest != "" && hdr.ConfigDigest != c.info.Digest {
			return fmt.Errorf("distrib: journal %s belongs to config %s, not %s: %w",
				path, hdr.ConfigDigest, c.info.Digest, runner.ErrDigestMismatch)
		}
		for _, rec := range recs {
			if err := c.checkRecordLocked(u, rec); err != nil {
				return fmt.Errorf("distrib: journal %s: %w", path, err)
			}
			if prev, dup := u.seen[rec.Job]; dup {
				if !runner.RecordsEqual(prev, rec) {
					return fmt.Errorf("distrib: journal %s: job %d recorded twice with different content: %w",
						path, rec.Job, runner.ErrConflictingRecords)
				}
				continue
			}
			u.seen[rec.Job] = rec
			c.resumed++
			c.countPruneLocked(rec)
		}
		if len(u.seen) == u.jobs {
			u.state = unitDone
		}
	}
	if c.resumed > 0 {
		c.cfg.Logf("distrib: resumed %d/%d runs from journals under %s", c.resumed, c.info.TotalRuns, c.cfg.Dir)
	}
	return nil
}

// assignEvent is one line of the assignment journal — the
// coordinator's own write-ahead record of the lease state machine,
// kept for crash-resumable bookkeeping (attempt counts, lease
// sequence) and operator forensics.
type assignEvent struct {
	Type   string `json:"type"` // assign | expire | complete | campaign_complete
	TimeMs int64  `json:"time_ms"`
	Unit   int    `json:"unit,omitempty"`
	Worker string `json:"worker,omitempty"`
	Lease  string `json:"lease,omitempty"`
}

func (c *Coordinator) assignmentLogPath() string {
	return filepath.Join(c.cfg.Dir, "assignments.jsonl")
}

// openAssignmentLog opens the assignment journal for appending,
// replaying any existing events to restore the lease sequence and
// per-unit attempt counters.
func (c *Coordinator) openAssignmentLog() error {
	path := c.assignmentLogPath()
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range splitLines(data) {
			var ev assignEvent
			if json.Unmarshal(line, &ev) != nil {
				continue // torn tail from a killed coordinator
			}
			if ev.Type == "assign" {
				c.leaseSeq++
				if ev.Unit >= 0 && ev.Unit < len(c.units) {
					c.units[ev.Unit].attempts++
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("distrib: reading assignment journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("distrib: opening assignment journal: %w", err)
	}
	c.assign = f
	return nil
}

// splitLines splits a byte slice into its newline-terminated lines
// (final unterminated fragment included).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := 0
		for i < len(data) && data[i] != '\n' {
			i++
		}
		if i > 0 {
			lines = append(lines, data[:i])
		}
		if i == len(data) {
			break
		}
		data = data[i+1:]
	}
	return lines
}

// logAssignLocked appends one event to the assignment journal. The
// shard journals are authoritative, so an append failure here is
// logged, not fatal.
func (c *Coordinator) logAssignLocked(ev assignEvent) {
	ev.TimeMs = time.Now().UnixMilli()
	line, err := json.Marshal(ev)
	if err == nil {
		_, err = c.assign.Write(append(line, '\n'))
	}
	if err != nil {
		c.cfg.Logf("distrib: assignment journal append failed: %v", err)
	}
}

// Info returns the planned campaign's identity.
func (c *Coordinator) Info() runner.PlanInfo { return c.info }

// Done is closed once every work unit is journaled in full.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// maybeCompleteLocked closes the done channel when the last unit
// settles.
func (c *Coordinator) maybeCompleteLocked() {
	if c.complete {
		return
	}
	for _, u := range c.units {
		if u.state != unitDone {
			return
		}
	}
	c.complete = true
	c.logAssignLocked(assignEvent{Type: "campaign_complete"})
	if c.assign != nil {
		_ = c.assign.Sync()
	}
	c.cfg.Logf("distrib: campaign %s/%s complete — all %d units journaled",
		c.cfg.Instance, c.cfg.Tier, len(c.units))
	c.wakeLocked() // parked lease requests answer StatusDone immediately
	close(c.done)
}

// wakeLocked releases every lease request parked in handleLease's
// long-poll; they re-examine the pool under the lock.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// deadLocked answers 503/CodeCrashed when a crash point has fired.
// The post middleware gates new requests, but a request already past
// the gate (or parked in the lease long-poll) when the crash fires
// must not mutate state either — a dead process appends nothing.
// Handlers call this immediately after taking c.mu (the caller keeps
// responsibility for unlocking); crashed is only written under c.mu,
// so the check is exact.
func (c *Coordinator) deadLocked(w http.ResponseWriter) bool {
	if !c.crashed {
		return false
	}
	httpErrorCode(w, http.StatusServiceUnavailable, CodeCrashed,
		"coordinator crashed at a chaos crash point; awaiting resume")
	return true
}

// hitCrashLocked checks an armed chaos crash point. When the site
// fires, the coordinator flips into the crashed state — every later
// request answers 503/CodeCrashed — and the in-flight handler aborts
// via http.ErrAbortHandler, so the client sees a reset connection and
// no reply: exactly the signature of a process killed at this
// instruction. Whatever was already journaled stays journaled; a new
// coordinator resuming from the directory is the only way forward.
func (c *Coordinator) hitCrashLocked(label string) {
	if c.cfg.Crash == nil {
		return
	}
	if c.cfg.Crash.Hit(label) {
		c.crashed = true
		c.cfg.Logf("distrib: chaos crash point %q fired — coordinator dead until resumed", label)
		panic(http.ErrAbortHandler)
	}
}

// sweepLocked expires overdue leases, returning their units to the
// pending pool with all received records retained.
func (c *Coordinator) sweepLocked(now time.Time) {
	expired := false
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.expires) {
			continue
		}
		c.cfg.Logf("distrib: lease %s (unit %d/%d, worker %s) expired — reassigning with %d/%d runs already journaled",
			u.leaseID, u.shard+1, c.cfg.Units, u.worker, len(u.seen), u.jobs)
		delete(c.byLease, u.leaseID)
		c.logAssignLocked(assignEvent{Type: "expire", Unit: u.shard, Worker: u.worker, Lease: u.leaseID})
		if ws := c.workers[u.worker]; ws != nil && ws.unit == u.shard {
			ws.unit = -1
		}
		u.state = unitPending
		u.leaseID = ""
		u.worker = ""
		expired = true
	}
	if expired {
		c.wakeLocked()
	}
}

// nextExpiryLocked returns the earliest live-lease expiry, so an idle
// long-poll wakes in time to claim a unit its holder abandoned.
func (c *Coordinator) nextExpiryLocked() (time.Time, bool) {
	var next time.Time
	found := false
	for _, u := range c.units {
		if u.state != unitLeased {
			continue
		}
		if !found || u.expires.Before(next) {
			next = u.expires
			found = true
		}
	}
	return next, found
}

// touchWorkerLocked records fleet-member liveness.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{name: name, unit: -1, outcomes: make(map[string]int)}
		c.workers[name] = ws
	}
	ws.lastSeen = now
	return ws
}

// checkRecordLocked validates that a record belongs to the unit.
func (c *Coordinator) checkRecordLocked(u *unit, rec runner.Record) error {
	if rec.Job < 0 || rec.Job >= c.info.TotalRuns {
		return fmt.Errorf("job %d outside [0,%d)", rec.Job, c.info.TotalRuns)
	}
	if rec.Job%c.cfg.Units != u.shard {
		return fmt.Errorf("job %d does not belong to unit %d of %d", rec.Job, u.shard, c.cfg.Units)
	}
	return nil
}

// settleLocked marks a unit done. The lease stays resolvable so the
// worker's trailing complete call succeeds instead of 409ing.
func (c *Coordinator) settleLocked(u *unit) {
	u.state = unitDone
	if u.journal != nil {
		if err := u.journal.Close(); err != nil {
			c.cfg.Logf("distrib: closing unit %d journal: %v", u.shard, err)
		}
		u.journal = nil
	}
	c.logAssignLocked(assignEvent{Type: "complete", Unit: u.shard, Worker: u.worker, Lease: u.leaseID})
	if ws := c.workers[u.worker]; ws != nil && ws.unit == u.shard {
		ws.unit = -1
	}
	c.cfg.Logf("distrib: unit %d/%d complete (%d runs, worker %s)", u.shard+1, c.cfg.Units, u.jobs, u.worker)
	c.maybeCompleteLocked()
}

// countPruneLocked aggregates a record's pruned label into the fleet
// counters (empty for executed runs and journals predating pruning).
func (c *Coordinator) countPruneLocked(rec runner.Record) {
	switch rec.Pruned {
	case campaign.PrunedNoOp, campaign.PrunedUnfired:
		c.prunedRuns++
	case campaign.PrunedMemoized:
		c.memoizedRuns++
	case campaign.PrunedConverged:
		c.convergedRuns++
	}
}

// outcomeKey normalises a record's outcome for per-worker counters
// (version-1 records carry no outcome field).
func outcomeKey(rec runner.Record) string {
	if rec.Outcome != "" {
		return rec.Outcome
	}
	if rec.SystemFailure || len(rec.Diffs) > 0 {
		return string(campaign.OutcomeDeviation)
	}
	return string(campaign.OutcomeOK)
}

// handleLease assigns the lowest pending unit to the requester. With
// nothing pending it long-polls: the request parks (up to leaseWaitMax,
// well under the worker client's timeout) until a unit returns to the
// pool or the campaign completes, instead of bouncing the worker into
// a sleep/retry loop. An idle fleet member therefore observes
// completion within one round-trip rather than one poll interval —
// the difference between a loopback fleet finishing in ~100 ms and
// idling for seconds.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	now := time.Now()
	deadline := now.Add(leaseWaitMax)
	c.mu.Lock()
	var pick *unit
	for {
		if c.deadLocked(w) {
			c.mu.Unlock()
			return
		}
		now = time.Now()
		c.sweepLocked(now)
		c.touchWorkerLocked(req.Worker, now)

		if c.complete {
			c.mu.Unlock()
			writeJSON(w, LeaseResponse{Status: StatusDone})
			return
		}
		for _, u := range c.units {
			if u.state == unitPending {
				pick = u
				break
			}
		}
		if pick != nil {
			break
		}
		// Nothing pending: park until a wake, the next lease expiry
		// (plus a sweep margin), or the long-poll deadline.
		wait := time.Until(deadline)
		if next, ok := c.nextExpiryLocked(); ok {
			if d := time.Until(next) + 10*time.Millisecond; d < wait {
				wait = d
			}
		}
		if wait <= 0 {
			c.mu.Unlock()
			writeJSON(w, LeaseResponse{Status: StatusWait, RetryMs: leaseRetryMs})
			return
		}
		wake := c.wake
		c.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-wake:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return // client gone; nothing was leased
		}
		t.Stop()
		c.mu.Lock()
	}
	defer c.mu.Unlock()

	c.hitCrashLocked(CrashPreLeaseGrant)
	c.leaseSeq++
	pick.state = unitLeased
	pick.leaseID = fmt.Sprintf("L%04d-u%d", c.leaseSeq, pick.shard)
	pick.worker = req.Worker
	pick.expires = now.Add(c.cfg.LeaseTTL)
	pick.attempts++
	c.byLease[pick.leaseID] = pick
	ws := c.workers[req.Worker]
	ws.unit = pick.shard
	c.logAssignLocked(assignEvent{Type: "assign", Unit: pick.shard, Worker: req.Worker, Lease: pick.leaseID})
	c.cfg.Logf("distrib: leased unit %d/%d to %s (%s, attempt %d, %d/%d runs pre-journaled)",
		pick.shard+1, c.cfg.Units, req.Worker, pick.leaseID, pick.attempts, len(pick.seen), pick.jobs)

	doneJobs := make([]int, 0, len(pick.seen))
	for job := range pick.seen {
		doneJobs = append(doneJobs, job)
	}
	sort.Ints(doneJobs)
	writeJSON(w, LeaseResponse{
		Status:  StatusUnit,
		LeaseID: pick.leaseID,
		TTLMs:   c.cfg.LeaseTTL.Milliseconds(),
		Unit: &WorkUnit{
			Instance:       c.cfg.Instance,
			Tier:           string(c.cfg.Tier),
			ConfigDigest:   c.info.Digest,
			Shard:          pick.shard,
			Shards:         c.cfg.Units,
			TotalRuns:      c.info.TotalRuns,
			RunBudgetSteps: c.cfg.RunBudgetSteps,
			DoneJobs:       doneJobs,
		},
	})
}

// leaseLocked resolves a live lease, sweeping expiries first.
func (c *Coordinator) leaseLocked(id string, now time.Time) (*unit, error) {
	c.sweepLocked(now)
	u := c.byLease[id]
	if u == nil || u.leaseID != id {
		return nil, fmt.Errorf("unknown or expired lease %q", id)
	}
	return u, nil
}

// handleRecords persists one streamed batch, renewing the lease.
func (c *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	var batch RecordBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, "decoding record batch: %v", err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(batch.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if u.state == unitLeased {
		u.expires = now.Add(c.cfg.LeaseTTL)
	}
	ws := c.touchWorkerLocked(u.worker, now)

	// Two passes: validate the whole batch first, then journal. Any
	// invalid or conflicting record rejects the batch with nothing
	// appended, so a hostile or wire-damaged batch can never
	// partially journal — the all-or-nothing guarantee FuzzProtocol
	// asserts.
	resp := BatchResponse{}
	fresh := make([]runner.Record, 0, len(batch.Records))
	inBatch := make(map[int]runner.Record, len(batch.Records))
	for _, rec := range batch.Records {
		if err := c.checkRecordLocked(u, rec); err != nil {
			httpError(w, http.StatusBadRequest, "record rejected: %v", err)
			return
		}
		prev, dup := u.seen[rec.Job]
		if !dup {
			prev, dup = inBatch[rec.Job]
		}
		if dup {
			if !runner.RecordsEqual(prev, rec) {
				httpError(w, http.StatusConflict, "job %d already journaled with different content: %v",
					rec.Job, runner.ErrConflictingRecords)
				return
			}
			resp.Duplicates++
			continue
		}
		inBatch[rec.Job] = rec
		fresh = append(fresh, rec)
	}
	for _, rec := range fresh {
		if u.journal == nil {
			j, err := runner.OpenShardJournal(c.cfg.Dir, runner.JournalHeader{
				Instance:     c.cfg.Instance,
				Tier:         string(c.cfg.Tier),
				Shard:        u.shard,
				Shards:       c.cfg.Units,
				ConfigDigest: c.info.Digest,
			})
			if err != nil {
				httpError(w, http.StatusInternalServerError, "opening unit journal: %v", err)
				return
			}
			u.journal = j
		}
		if err := u.journal.Append(rec); err != nil {
			httpError(w, http.StatusInternalServerError, "journaling record: %v", err)
			return
		}
		u.seen[rec.Job] = rec
		c.received++
		c.countPruneLocked(rec)
		ws.records++
		ws.outcomes[outcomeKey(rec)]++
		resp.Accepted++
		c.hitCrashLocked(CrashMidBatchAppend)
	}
	if u.state == unitLeased && len(u.seen) == u.jobs {
		c.settleLocked(u)
	}
	resp.UnitDone = u.state == unitDone
	writeJSON(w, resp)
}

// handleHeartbeat renews a lease.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(req.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if u.state == unitLeased {
		u.expires = now.Add(c.cfg.LeaseTTL)
	}
	c.touchWorkerLocked(u.worker, now)
	writeJSON(w, HeartbeatResponse{TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

// handleComplete settles a unit from the worker's side. The
// coordinator has usually settled it already (units auto-complete on
// their last record); a complete call for a unit with missing records
// revokes the lease so the gap re-executes elsewhere.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding complete: %v", err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadLocked(w) {
		return
	}
	u, err := c.leaseLocked(req.LeaseID, now)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	c.touchWorkerLocked(u.worker, now)
	if u.state == unitLeased {
		if len(u.seen) != u.jobs {
			c.cfg.Logf("distrib: worker %s reported unit %d complete with %d/%d runs journaled — revoking lease",
				u.worker, u.shard+1, len(u.seen), u.jobs)
			delete(c.byLease, u.leaseID)
			c.logAssignLocked(assignEvent{Type: "expire", Unit: u.shard, Worker: u.worker, Lease: u.leaseID})
			u.state = unitPending
			u.leaseID = ""
			u.worker = ""
			c.wakeLocked()
			httpError(w, http.StatusConflict, "unit %d has %d of %d runs journaled — lease revoked", u.shard, len(u.seen), u.jobs)
			return
		}
		c.settleLocked(u)
	}
	c.hitCrashLocked(CrashPreCompleteAck)
	writeJSON(w, CompleteResponse{CampaignDone: c.complete})
}

// UnitStatus is the /status view of one work unit.
type UnitStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Lease    string `json:"lease,omitempty"`
	DoneRuns int    `json:"done_runs"`
	Jobs     int    `json:"jobs"`
	Attempts int    `json:"attempts"`
}

// WorkerStatus is the /status and /metrics view of one fleet member.
type WorkerStatus struct {
	Name          string         `json:"name"`
	Unit          int            `json:"unit"` // -1 when idle
	Records       int            `json:"records"`
	Outcomes      map[string]int `json:"outcomes,omitempty"`
	LastSeenMsAgo int64          `json:"last_seen_ms_ago"`
	Live          bool           `json:"live"`
}

// Status is the /status JSON document.
type Status struct {
	Instance     string         `json:"instance"`
	Tier         string         `json:"tier"`
	ConfigDigest string         `json:"config_digest"`
	Units        int            `json:"units"`
	Pending      int            `json:"pending"`
	Leased       int            `json:"leased"`
	Done         int            `json:"done"`
	TotalRuns    int            `json:"total_runs"`
	DoneRuns     int            `json:"done_runs"`
	Complete     bool           `json:"complete"`
	UnitsDetail  []UnitStatus   `json:"units_detail"`
	Workers      []WorkerStatus `json:"workers"`
}

// Metrics is the /metrics JSON document: fleet throughput and
// utilisation for dashboards and the scale-out benchmarks.
type Metrics struct {
	Instance       string  `json:"instance"`
	Tier           string  `json:"tier"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TotalRuns      int     `json:"total_runs"`
	DoneRuns       int     `json:"done_runs"`
	ResumedRuns    int     `json:"resumed_runs"`
	ReceivedRuns   int     `json:"received_runs"`
	// Fleet-wide equivalence-pruning counters (from the records'
	// pruned labels): proven without simulating, served from a
	// worker's memo cache, and stopped early on golden reconvergence.
	PrunedRuns    int     `json:"pruned_runs,omitempty"`
	MemoizedRuns  int     `json:"memoized_runs,omitempty"`
	ConvergedRuns int     `json:"converged_runs,omitempty"`
	RunsPerSecond float64 `json:"runs_per_second"`
	ETASeconds     float64 `json:"eta_seconds"`
	UnitsPending   int     `json:"units_pending"`
	UnitsLeased    int     `json:"units_leased"`
	UnitsDone      int     `json:"units_done"`
	LiveWorkers    int     `json:"live_workers"`
	// FleetUtilization is the fraction of live workers currently
	// holding a lease.
	FleetUtilization float64        `json:"fleet_utilization"`
	Complete         bool           `json:"complete"`
	Workers          []WorkerStatus `json:"workers"`
}

// workerLiveWindow is how long after its last contact a worker still
// counts as part of the fleet.
func (c *Coordinator) workerLiveWindow() time.Duration { return 3 * c.cfg.LeaseTTL }

func (c *Coordinator) workersLocked(now time.Time) []WorkerStatus {
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]WorkerStatus, 0, len(names))
	for _, name := range names {
		ws := c.workers[name]
		outcomes := make(map[string]int, len(ws.outcomes))
		for k, v := range ws.outcomes {
			outcomes[k] = v
		}
		out = append(out, WorkerStatus{
			Name:          ws.name,
			Unit:          ws.unit,
			Records:       ws.records,
			Outcomes:      outcomes,
			LastSeenMsAgo: now.Sub(ws.lastSeen).Milliseconds(),
			Live:          now.Sub(ws.lastSeen) <= c.workerLiveWindow(),
		})
	}
	return out
}

// Status snapshots the fleet (also served at /status).
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	s := Status{
		Instance:     c.cfg.Instance,
		Tier:         string(c.cfg.Tier),
		ConfigDigest: c.info.Digest,
		Units:        len(c.units),
		TotalRuns:    c.info.TotalRuns,
		Complete:     c.complete,
		Workers:      c.workersLocked(now),
	}
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			s.Pending++
		case unitLeased:
			s.Leased++
		case unitDone:
			s.Done++
		}
		s.DoneRuns += len(u.seen)
		s.UnitsDetail = append(s.UnitsDetail, UnitStatus{
			Shard:    u.shard,
			State:    u.state.String(),
			Worker:   u.worker,
			Lease:    u.leaseID,
			DoneRuns: len(u.seen),
			Jobs:     u.jobs,
			Attempts: u.attempts,
		})
	}
	return s
}

// Metrics snapshots fleet throughput (also served at /metrics).
func (c *Coordinator) Metrics() Metrics {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	m := Metrics{
		Instance:       c.cfg.Instance,
		Tier:           string(c.cfg.Tier),
		ElapsedSeconds: now.Sub(c.start).Seconds(),
		TotalRuns:      c.info.TotalRuns,
		ResumedRuns:    c.resumed,
		ReceivedRuns:   c.received,
		PrunedRuns:     c.prunedRuns,
		MemoizedRuns:   c.memoizedRuns,
		ConvergedRuns:  c.convergedRuns,
		Complete:       c.complete,
		Workers:        c.workersLocked(now),
	}
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			m.UnitsPending++
		case unitLeased:
			m.UnitsLeased++
		case unitDone:
			m.UnitsDone++
		}
		m.DoneRuns += len(u.seen)
	}
	for _, ws := range m.Workers {
		if ws.Live {
			m.LiveWorkers++
		}
	}
	if m.ElapsedSeconds > 0 {
		m.RunsPerSecond = float64(m.ReceivedRuns) / m.ElapsedSeconds
	}
	if remaining := m.TotalRuns - m.DoneRuns; remaining > 0 && m.RunsPerSecond > 0 {
		m.ETASeconds = float64(remaining) / m.RunsPerSecond
	}
	if m.LiveWorkers > 0 {
		m.FleetUtilization = float64(m.UnitsLeased) / float64(m.LiveWorkers)
		if m.FleetUtilization > 1 {
			m.FleetUtilization = 1
		}
	}
	return m
}

// maxRequestBody bounds a POST body. The largest legitimate request
// is a record batch with per-bit diff lists; 64 MiB is an order of
// magnitude above anything the fleet produces and still refuses a
// hostile unbounded stream.
const maxRequestBody = 64 << 20

// responseRecorder tees a handler's reply into a buffer so the
// idempotency store can replay it for duplicated deliveries.
type responseRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (r *responseRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	r.buf.Write(b)
	return r.ResponseWriter.Write(b)
}

// post hardens one POST handler: method gate, crashed-state gate,
// bounded body read, content-digest verification (a body damaged in
// flight — chaos truncate/corrupt, or any real middlebox mangling —
// is rejected with the retryable CodeBodyDigest before the handler
// sees it), and, when idempotent, duplicate-delivery replay from the
// idempotency store.
func (c *Coordinator) post(idempotent bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		c.mu.Lock()
		dead := c.crashed
		c.mu.Unlock()
		if dead {
			httpErrorCode(w, http.StatusServiceUnavailable, CodeCrashed,
				"coordinator crashed at a chaos crash point; awaiting resume")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil {
			// A short or broken read is wire damage, not a client
			// bug: the sender's copy is intact, so mark it retryable.
			httpErrorCode(w, http.StatusBadRequest, CodeBodyDigest, "reading request body: %v", err)
			return
		}
		if len(body) > maxRequestBody {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxRequestBody)
			return
		}
		if want := r.Header.Get(HeaderBodyDigest); want != "" {
			sum := sha256.Sum256(body)
			if got := hex.EncodeToString(sum[:]); got != want {
				httpErrorCode(w, http.StatusBadRequest, CodeBodyDigest,
					"request body digest %s does not match header %s — body damaged in flight", got, want)
				return
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(body))

		key := r.Header.Get(HeaderIdempotencyKey)
		if !idempotent || key == "" {
			h(w, r)
			return
		}
		key = r.URL.Path + "|" + key
		if e, ok := c.idem.get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(HeaderIdempotentReplay, "1")
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		// Store every terminal answer (including deterministic 4xx);
		// 5xx replies are transient server trouble and must re-execute.
		if rec.status < 500 {
			c.idem.put(key, idemEntry{status: rec.status, body: bytes.Clone(rec.buf.Bytes())})
		}
	}
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, c.post(false, c.handleLease))
	mux.HandleFunc(PathRecords, c.post(true, c.handleRecords))
	mux.HandleFunc(PathHeartbeat, c.post(false, c.handleHeartbeat))
	mux.HandleFunc(PathComplete, c.post(true, c.handleComplete))
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc(PathMetrics, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Metrics())
	})
	return mux
}

// handlerDeadline bounds one request's service time. It must exceed
// leaseWaitMax (the lease long-poll parks up to that long by design)
// while still unsticking a handler wedged on pathological input.
const handlerDeadline = 30 * time.Second

// NewServer wraps h in an http.Server hardened for a bad network:
// ReadHeaderTimeout defeats slow-header connection squatting,
// IdleTimeout reaps abandoned keep-alives, and every handler runs
// under handlerDeadline (expiry answers 503/CodeTimeout, which
// clients treat as retryable). Every server the fabric starts —
// coordinator Serve, the loopback harness, propaned — goes through
// here.
func NewServer(h http.Handler) *http.Server {
	timeoutBody, _ := json.Marshal(errorResponse{
		Error: fmt.Sprintf("handler deadline (%s) exceeded", handlerDeadline),
		Code:  CodeTimeout,
	})
	return &http.Server{
		Handler:           http.TimeoutHandler(h, handlerDeadline, string(timeoutBody)),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Close releases the coordinator's files without assembling — for a
// coordinator abandoned (or crashed in a test) mid-campaign. The
// journals on disk remain resumable.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, u := range c.units {
		if u.journal != nil {
			errs = append(errs, u.journal.Close())
			u.journal = nil
		}
	}
	if c.assign != nil {
		errs = append(errs, c.assign.Close())
		c.assign = nil
	}
	return errors.Join(errs...)
}

// Assemble merges the shard journals into the final campaign result —
// bit-identical to a single-node run — and writes the closing
// artifacts (config.json, metrics.json, failures.md, report.md).
func (c *Coordinator) Assemble() (*runner.RunResult, error) {
	c.mu.Lock()
	for _, u := range c.units {
		if u.journal != nil {
			if err := u.journal.Close(); err != nil {
				c.mu.Unlock()
				return nil, err
			}
			u.journal = nil
		}
	}
	c.mu.Unlock()
	return runner.Assemble(c.campaign, runner.Options{
		Name:           c.cfg.Instance,
		Tier:           c.cfg.Tier,
		Dir:            c.cfg.Dir,
		RunBudgetSteps: c.cfg.RunBudgetSteps,
		Logf:           c.cfg.Logf,
	})
}

// Serve runs the coordinator's HTTP API on l until the campaign
// completes, then assembles the final result. The server keeps
// answering (with StatusDone leases) while assembly runs, so workers
// drain cleanly, and shuts down afterwards.
func (c *Coordinator) Serve(l net.Listener) (*runner.RunResult, error) {
	srv := NewServer(c.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case <-c.Done():
	case err := <-errCh:
		return nil, fmt.Errorf("distrib: coordinator server: %w", err)
	}
	rr, err := c.Assemble()
	_ = srv.Close()
	return rr, err
}

// writeJSON writes a 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes an errorResponse with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpErrorCode(w, status, "", format, args...)
}

// httpErrorCode writes an errorResponse carrying a machine-readable
// code alongside the prose.
func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}
