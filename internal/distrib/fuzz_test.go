package distrib

// FuzzProtocol throws arbitrary bytes at the coordinator's four POST
// endpoints — in both negotiated encodings for /v1/records — and
// asserts the hardened-protocol invariants: the coordinator never
// panics, never answers 5xx to malformed input, and a 4xx reply
// implies nothing was journaled by that request — the all-or-nothing
// batch guarantee, for damaged JSON and damaged binary frames alike.
// Run it natively:
//
//	go test ./internal/distrib/ -fuzz FuzzProtocol -fuzztime 30s
//
// Under plain `go test` only the seed corpus executes, keeping tier-1
// fast.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"propane/internal/runner"
)

var fuzzPaths = []string{PathLease, PathRecords, PathHeartbeat, PathComplete}

// fuzzFrame encodes one binary record-batch frame for the seed
// corpus.
func fuzzFrame(f *testing.F, batch RecordBatch) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := encodeRecordBatch(&buf, batch); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzProtocol(f *testing.F) {
	dir, err := os.MkdirTemp("", "propane-fuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		// Tiny TTL: fuzz-granted leases return to the pool almost
		// immediately, so a later lease request never parks the full
		// long-poll window waiting for an expiry.
		LeaseTTL: 50 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { coord.Close() })
	h := coord.Handler()

	// Seeds: one well-formed body per endpoint, plus shapes that have
	// historically been dangerous — a batch whose *second* record is
	// invalid (partial-journal bait), out-of-range jobs, conflicting
	// rewrites, junk, and truncated JSON.
	f.Add(0, false, []byte(`{"worker":"w1"}`))
	f.Add(1, false, []byte(`{"lease_id":"L0001-u0","records":[{"job":0}]}`))
	f.Add(1, false, []byte(`{"lease_id":"L0001-u0","records":[{"job":0},{"job":-1}]}`))
	f.Add(1, false, []byte(`{"lease_id":"L0001-u0","records":[{"job":0},{"job":1}]}`))
	f.Add(1, false, []byte(`{"lease_id":"L0001-u0","records":[{"job":99999}]}`))
	f.Add(1, false, []byte(`{"lease_id":"L0001-u0","records":[{"job":0,"outcome":"ok"},{"job":0,"outcome":"crash"}]}`))
	f.Add(2, false, []byte(`{"lease_id":"L0001-u0"}`))
	f.Add(3, false, []byte(`{"lease_id":"L0001-u0","runs":3,"digest":"abc","wall_ms":12}`))
	f.Add(1, false, []byte(`{"lease_id":`))
	f.Add(2, false, []byte(`not json at all`))
	f.Add(0, false, []byte(``))
	f.Add(3, false, []byte(`[1,2,3]`))

	// Binary-frame seeds: a well-formed frame, the same frame with a
	// record that is out of range, a truncated frame (mid-gzip), a
	// frame with damaged magic, and raw garbage behind a valid magic.
	good := fuzzFrame(f, RecordBatch{
		LeaseID: "L0001-u0",
		Records: []runner.Record{
			{Type: "run", Job: 0, Module: "m1", Signal: "s1", Outcome: "ok"},
			{Type: "run", Job: 1, Module: "m1", Signal: "s2", Outcome: "deviation",
				Fired: true, FiredAtMs: 12, Diffs: map[string]runner.DiffRecord{
					"sig": {FirstMs: 1, LastMs: 9, Count: 4},
				}},
		},
	})
	f.Add(1, true, good)
	f.Add(1, true, fuzzFrame(f, RecordBatch{
		LeaseID: "L0001-u0",
		Records: []runner.Record{{Type: "run", Job: 99999}},
	}))
	f.Add(1, true, good[:len(good)/2])
	bad := bytes.Clone(good)
	bad[0] ^= 0xff
	f.Add(1, true, bad)
	f.Add(1, true, append([]byte("PRB1"), []byte("definitely not gzip")...))
	// JSON posted with the binary content type (and vice versa) must
	// fail cleanly, not confuse the decoder.
	f.Add(1, true, []byte(`{"lease_id":"L0001-u0","records":[{"job":0}]}`))
	f.Add(1, false, good)

	f.Fuzz(func(t *testing.T, which int, binary bool, body []byte) {
		if which < 0 {
			which = -which
		}
		path := fuzzPaths[which%len(fuzzPaths)]
		before := coord.Metrics().ReceivedRuns

		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		if binary && path == PathRecords {
			req.Header.Set("Content-Type", ContentTypeBinary)
		} else {
			req.Header.Set("Content-Type", ContentTypeJSON)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here is the fuzz failure

		if rec.Code >= 500 {
			t.Fatalf("%s answered %d to fuzzed input %q: %s", path, rec.Code, body, rec.Body.Bytes())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s answered non-JSON %q to input %q", path, rec.Body.Bytes(), body)
		}
		if rec.Code >= 400 {
			if after := coord.Metrics().ReceivedRuns; after != before {
				t.Fatalf("%s answered %d yet journaled %d records (%d → %d): partial journal on rejected input %q",
					path, rec.Code, after-before, before, after, body)
			}
		}
	})
}
