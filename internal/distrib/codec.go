package distrib

// Binary batch framing — protocol v2's wire format for /v1/records.
//
// A frame is a 4-byte magic ("PRB1") followed by a gzip stream whose
// decompressed payload is a length-prefixed binary encoding of one
// RecordBatch: the lease ID, a string table, and the records with
// every string field replaced by a table index. Campaign records
// repeat the same module/signal/model/outcome strings thousands of
// times per batch, so the table plus varint integers typically shrinks
// a batch an order of magnitude before gzip even runs — and the
// decoder materialises each distinct string exactly once, so a
// 10 000-record upload costs dozens of string allocations, not tens of
// thousands.
//
// The decoder is strict: every length and count is bounds-checked
// against the remaining payload before any allocation, the
// decompressed size is capped, and malformed input of any shape
// returns an error — never a panic, never a partial result. That is
// the contract FuzzProtocol asserts: a 4xx on a damaged frame journals
// nothing.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"propane/internal/runner"
)

// Content types negotiated on /v1/records. The worker announces its
// encoding per request via Content-Type; the coordinator accepts both,
// so mixed fleets (version skew, explicit -json-records) interoperate
// batch by batch.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-propane-record-batch"
)

// frameMagic distinguishes a binary frame before any decompression
// happens; a JSON body posted with the binary content type (or vice
// versa) fails immediately and deterministically.
var frameMagic = []byte("PRB1")

// maxDecodedPayload caps the decompressed payload, so a gzip bomb
// inside an otherwise size-legal request body cannot balloon in
// memory. The largest legitimate unit upload is far below this.
const maxDecodedPayload = 256 << 20

// errFrame wraps every decode failure, so callers can classify
// malformed frames separately from I/O trouble.
var errFrame = errors.New("malformed record-batch frame")

// stringTable interns the distinct strings of a batch during
// encoding.
type stringTable struct {
	index map[string]uint64
	list  []string
}

func (t *stringTable) intern(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

// zigzag maps signed to unsigned for varint encoding (small negatives
// stay small).
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeRecordBatch appends a complete binary frame for batch to buf.
// The buffer is typically pooled (acquireBuffer/releaseBuffer).
func encodeRecordBatch(buf *bytes.Buffer, batch RecordBatch) error {
	payload := acquireBuffer()
	defer releaseBuffer(payload)

	table := stringTable{index: make(map[string]uint64, 64)}
	body := acquireBuffer()
	defer releaseBuffer(body)

	// First pass: encode the records against the table into body; the
	// table itself is only complete afterwards, so it is written first
	// to payload and body appended behind it.
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(w *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		w.Write(scratch[:n])
	}
	diffNames := make([]string, 0, 8)
	putUvarint(body, uint64(len(batch.Records)))
	for _, rec := range batch.Records {
		putUvarint(body, table.intern(rec.Type))
		putUvarint(body, zigzag(int64(rec.Job)))
		putUvarint(body, table.intern(rec.Module))
		putUvarint(body, table.intern(rec.Signal))
		putUvarint(body, zigzag(rec.AtMs))
		putUvarint(body, table.intern(rec.Model))
		putUvarint(body, zigzag(int64(rec.Case)))
		var flags uint64
		if rec.Fired {
			flags |= 1
		}
		if rec.SystemFailure {
			flags |= 2
		}
		putUvarint(body, flags)
		putUvarint(body, zigzag(rec.FiredAtMs))
		putUvarint(body, zigzag(rec.FailureAtMs))
		putUvarint(body, table.intern(rec.Outcome))
		putUvarint(body, table.intern(rec.Detail))
		putUvarint(body, zigzag(int64(rec.Attempts)))
		putUvarint(body, table.intern(rec.Pruned))
		diffNames = diffNames[:0]
		for sig := range rec.Diffs {
			diffNames = append(diffNames, sig)
		}
		sort.Strings(diffNames) // deterministic frames for identical batches
		putUvarint(body, uint64(len(diffNames)))
		for _, sig := range diffNames {
			d := rec.Diffs[sig]
			putUvarint(body, table.intern(sig))
			putUvarint(body, zigzag(d.FirstMs))
			putUvarint(body, zigzag(d.LastMs))
			putUvarint(body, zigzag(int64(d.Count)))
		}
	}

	putUvarint(payload, uint64(len(batch.LeaseID)))
	payload.WriteString(batch.LeaseID)
	putUvarint(payload, uint64(len(table.list)))
	for _, s := range table.list {
		putUvarint(payload, uint64(len(s)))
		payload.WriteString(s)
	}
	payload.Write(body.Bytes())

	buf.Write(frameMagic)
	zw := acquireGzipWriter(buf)
	defer releaseGzipWriter(zw)
	if _, err := zw.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("distrib: compressing record batch: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("distrib: compressing record batch: %w", err)
	}
	return nil
}

// frameReader is a bounds-checked cursor over a decompressed payload.
// Every accessor records the first error and returns zero values
// afterwards, so decoding runs straight-line and checks once.
type frameReader struct {
	data []byte
	off  int
	err  error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", errFrame, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) varint() int64 { return unzigzag(r.uvarint()) }

// count reads a collection length and sanity-checks it against the
// remaining bytes (every element costs at least one byte), so a
// hostile frame cannot demand a giant allocation up front.
func (r *frameReader) count(what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.data)-r.off) {
		r.fail("%s count %d exceeds remaining payload %d", what, v, len(r.data)-r.off)
		return 0
	}
	return int(v)
}

func (r *frameReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail("string length %d exceeds remaining payload %d", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// intFrom narrows a zigzag varint into an int, rejecting values that
// do not round-trip (a 32-bit build must not silently truncate a
// hostile 64-bit job index).
func (r *frameReader) intFrom(v int64, what string) int {
	if int64(int(v)) != v {
		r.fail("%s %d overflows int", what, v)
		return 0
	}
	return int(v)
}

// decodeRecordBatch parses a binary frame produced by
// encodeRecordBatch. All errors wrap errFrame.
func decodeRecordBatch(data []byte) (RecordBatch, error) {
	if !bytes.HasPrefix(data, frameMagic) {
		return RecordBatch{}, fmt.Errorf("%w: bad magic", errFrame)
	}
	zr, err := acquireGzipReader(bytes.NewReader(data[len(frameMagic):]))
	if err != nil {
		return RecordBatch{}, fmt.Errorf("%w: %v", errFrame, err)
	}
	defer releaseGzipReader(zr)
	payload := acquireBuffer()
	defer releaseBuffer(payload)
	if _, err := io.Copy(payload, io.LimitReader(zr, maxDecodedPayload+1)); err != nil {
		return RecordBatch{}, fmt.Errorf("%w: %v", errFrame, err)
	}
	if payload.Len() > maxDecodedPayload {
		return RecordBatch{}, fmt.Errorf("%w: decompressed payload exceeds %d bytes", errFrame, maxDecodedPayload)
	}

	r := &frameReader{data: payload.Bytes()}
	var batch RecordBatch
	batch.LeaseID = string(r.bytes(r.count("lease id")))

	nStrings := r.count("string table")
	table := make([]string, 0, nStrings)
	for i := 0; i < nStrings && r.err == nil; i++ {
		table = append(table, string(r.bytes(r.count("string"))))
	}
	str := func(what string) string {
		i := r.uvarint()
		if r.err != nil {
			return ""
		}
		if i >= uint64(len(table)) {
			r.fail("%s string index %d outside table of %d", what, i, len(table))
			return ""
		}
		return table[i]
	}

	nRecords := r.count("record")
	if r.err == nil {
		batch.Records = acquireRecords(nRecords)
	}
	for i := 0; i < nRecords && r.err == nil; i++ {
		var rec runner.Record
		rec.Type = str("type")
		rec.Job = r.intFrom(r.varint(), "job")
		rec.Module = str("module")
		rec.Signal = str("signal")
		rec.AtMs = r.varint()
		rec.Model = str("model")
		rec.Case = r.intFrom(r.varint(), "case")
		flags := r.uvarint()
		if flags > 3 {
			r.fail("unknown record flags %#x", flags)
		}
		rec.Fired = flags&1 != 0
		rec.SystemFailure = flags&2 != 0
		rec.FiredAtMs = r.varint()
		rec.FailureAtMs = r.varint()
		rec.Outcome = str("outcome")
		rec.Detail = str("detail")
		rec.Attempts = r.intFrom(r.varint(), "attempts")
		rec.Pruned = str("pruned")
		nDiffs := r.count("diff")
		for j := 0; j < nDiffs && r.err == nil; j++ {
			sig := str("diff signal")
			d := runner.DiffRecord{
				FirstMs: r.varint(),
				LastMs:  r.varint(),
				Count:   r.intFrom(r.varint(), "diff count"),
			}
			if r.err != nil {
				break
			}
			if rec.Diffs == nil {
				rec.Diffs = make(map[string]runner.DiffRecord, nDiffs)
			}
			rec.Diffs[sig] = d
		}
		if r.err == nil {
			batch.Records = append(batch.Records, rec)
		}
	}
	if r.err == nil && r.off != len(r.data) {
		r.fail("%d trailing bytes after last record", len(r.data)-r.off)
	}
	if r.err != nil {
		releaseRecords(batch.Records)
		return RecordBatch{}, r.err
	}
	return batch, nil
}
