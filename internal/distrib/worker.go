package distrib

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"propane/internal/runner"
)

// WorkerOptions parameterises one worker agent.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator. It must be
	// unique within the fleet and stable across this worker's
	// restarts (a restarted worker with the same name and Dir replays
	// its local journal and re-streams anything the coordinator never
	// received). Empty selects hostname-pid.
	Name string
	// Dir is the worker's scratch root: each work unit runs in its
	// own subdirectory with the full local journal/checkpoint
	// machinery. Required.
	Dir string
	// Workers is the local campaign parallelism per unit (0 lets the
	// campaign default apply).
	Workers int
	// PollInterval paces lease retries when the coordinator is
	// unreachable, and is the fallback pause after a StatusWait reply
	// carrying no RetryMs hint. A reachable coordinator long-polls
	// lease requests itself and hints a short retry, so this interval
	// rarely governs. <= 0 selects 1 s.
	PollInterval time.Duration
	// BatchSize is how many records accumulate before a flush to the
	// coordinator (each flush renews the lease). <= 0 selects 64.
	BatchSize int
	// MaxErrors bounds consecutive failed coordinator round-trips
	// before the worker gives up. <= 0 selects 10.
	MaxErrors int
	// LogInterval throttles local campaign progress lines (0
	// disables them).
	LogInterval time.Duration
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) normalise() error {
	if o.Dir == "" {
		return errors.New("distrib: worker needs a scratch directory")
	}
	if o.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxErrors <= 0 {
		o.MaxErrors = 10
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// httpStatusError is a non-2xx coordinator reply.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.status, e.msg)
}

// leaseLost reports whether an error is the coordinator disowning the
// lease (409) — the unit belongs to someone else now.
func leaseLost(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status == http.StatusConflict
}

// fatalStatus reports a reply that retrying cannot fix (4xx other
// than 409).
func fatalStatus(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status >= 400 && se.status < 500 && se.status != http.StatusConflict
}

// worker is one agent's connection to a coordinator.
type worker struct {
	base   string
	opts   WorkerOptions
	client *http.Client
	// describeCache memoises runner.DescribeInstance per work-unit
	// identity — the golden runs behind it are the expensive part.
	describeCache map[string]runner.PlanInfo
}

// post sends one JSON request and decodes the JSON reply. Non-2xx
// replies come back as *httpStatusError.
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("distrib: encoding %s request: %w", path, err)
	}
	r, err := w.client.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("distrib: %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = string(data)
		}
		return &httpStatusError{status: r.StatusCode, msg: er.Error}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("distrib: decoding %s reply: %w", path, err)
	}
	return nil
}

// postRetry retries transient failures (network errors, 5xx) with
// capped exponential backoff; 4xx errors return immediately.
func (w *worker) postRetry(path string, req, resp any) error {
	backoff := 100 * time.Millisecond
	var err error
	for attempt := 0; attempt < w.opts.MaxErrors; attempt++ {
		err = w.post(path, req, resp)
		var se *httpStatusError
		if err == nil || (errors.As(err, &se) && se.status < 500) {
			return err
		}
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return err
}

// RunWorker joins the fleet of the coordinator at coordinatorURL and
// processes work units until the campaign completes (returns nil) or
// the worker fails fatally: coordinator unreachable past
// MaxErrors consecutive attempts, config-digest mismatch (version
// skew), or a local execution error. A lost lease is not fatal — the
// worker abandons the unit and asks for new work.
func RunWorker(coordinatorURL string, opts WorkerOptions) error {
	if err := opts.normalise(); err != nil {
		return err
	}
	w := &worker{
		base:          coordinatorURL,
		opts:          opts,
		client:        &http.Client{Timeout: 30 * time.Second},
		describeCache: make(map[string]runner.PlanInfo),
	}
	consecutive := 0
	for {
		var lr LeaseResponse
		if err := w.post(PathLease, LeaseRequest{Worker: opts.Name}, &lr); err != nil {
			consecutive++
			if consecutive >= opts.MaxErrors {
				return fmt.Errorf("distrib: worker %s: %d consecutive lease failures, last: %w",
					opts.Name, consecutive, err)
			}
			time.Sleep(opts.PollInterval)
			continue
		}
		consecutive = 0
		switch lr.Status {
		case StatusDone:
			opts.Logf("distrib: worker %s: campaign complete", opts.Name)
			return nil
		case StatusWait:
			// The coordinator already parked this request in its
			// long-poll; trust its hint — it is deliberately short so
			// the worker re-parks promptly instead of sleeping through
			// a unit becoming available.
			wait := time.Duration(lr.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = opts.PollInterval
			}
			time.Sleep(wait)
		case StatusUnit:
			if lr.Unit == nil {
				return fmt.Errorf("distrib: worker %s: unit lease %s carried no unit", opts.Name, lr.LeaseID)
			}
			if err := w.runUnit(lr); err != nil {
				return fmt.Errorf("distrib: worker %s: %w", opts.Name, err)
			}
		default:
			return fmt.Errorf("distrib: worker %s: unknown lease status %q", opts.Name, lr.Status)
		}
	}
}

// describe resolves and digests the unit's campaign through this
// worker's own registry, memoised per identity.
func (w *worker) describe(u *WorkUnit) (runner.PlanInfo, error) {
	key := fmt.Sprintf("%s|%s|%d", u.Instance, u.Tier, u.RunBudgetSteps)
	if info, ok := w.describeCache[key]; ok {
		return info, nil
	}
	info, err := runner.DescribeInstance(u.Instance, runner.Tier(u.Tier), runner.Options{
		RunBudgetSteps: u.RunBudgetSteps,
	})
	if err != nil {
		return runner.PlanInfo{}, err
	}
	w.describeCache[key] = info
	return info, nil
}

// scratchDir is the unit's local artifact directory. The worker name
// is part of the path so two fleet members sharing a filesystem (or
// one process hosting a loopback fleet) never append the same local
// journal; the unit identity is part of the path so a restarted
// worker resumes exactly its own prior work.
func (w *worker) scratchDir(u *WorkUnit) string {
	digest8 := u.ConfigDigest
	if len(digest8) > 8 {
		digest8 = digest8[:8]
	}
	return filepath.Join(w.opts.Dir, w.opts.Name,
		fmt.Sprintf("%s-%s-%s", u.Instance, u.Tier, digest8),
		fmt.Sprintf("unit-%dof%d", u.Shard+1, u.Shards))
}

// runUnit executes one leased work unit through the local supervised
// runner, streaming records back and heartbeating until the unit is
// done or the lease is lost.
func (w *worker) runUnit(lr LeaseResponse) error {
	u := lr.Unit
	info, err := w.describe(u)
	if err != nil {
		return err
	}
	if info.Digest != u.ConfigDigest {
		return fmt.Errorf("local config digest %s does not match coordinator's %s for %s/%s — version skew: %w",
			info.Digest, u.ConfigDigest, u.Instance, u.Tier, runner.ErrDigestMismatch)
	}
	def, err := runner.Lookup(u.Instance)
	if err != nil {
		return err
	}
	cfg, err := def.Config(runner.Tier(u.Tier))
	if err != nil {
		return err
	}

	w.opts.Logf("distrib: worker %s: running unit %d/%d (%s, %d jobs pre-done)",
		w.opts.Name, u.Shard+1, u.Shards, lr.LeaseID, len(u.DoneJobs))
	excluded := make(map[int]bool, len(u.DoneJobs))
	for _, job := range u.DoneJobs {
		excluded[job] = true
	}

	// lost flips once the coordinator disowns the lease; the Abort
	// hook then drains the local campaign without error.
	var lost atomic.Bool
	batch := make([]runner.Record, 0, w.opts.BatchSize)
	flush := func() error {
		if len(batch) == 0 || lost.Load() {
			return nil
		}
		var br BatchResponse
		err := w.postRetry(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: batch}, &br)
		if err != nil {
			if leaseLost(err) {
				lost.Store(true)
				return nil
			}
			return err
		}
		batch = batch[:0]
		return nil
	}

	// Heartbeat at a third of the TTL while the campaign runs, so a
	// long simulation between record flushes keeps the lease alive.
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	hbEvery := ttl / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				var hr HeartbeatResponse
				if err := w.post(PathHeartbeat, HeartbeatRequest{LeaseID: lr.LeaseID}, &hr); err != nil {
					if leaseLost(err) || fatalStatus(err) {
						lost.Store(true)
						return
					}
					// Transient: the next tick, or the next record
					// flush, renews the lease.
				}
			}
		}
	}()

	_, runErr := runner.Run(cfg, runner.Options{
		Name:           u.Instance,
		Tier:           runner.Tier(u.Tier),
		Dir:            w.scratchDir(u),
		Shard:          u.Shard,
		Shards:         u.Shards,
		Resume:         true,
		Workers:        w.opts.Workers,
		RunBudgetSteps: u.RunBudgetSteps,
		LogInterval:    w.opts.LogInterval,
		Logf:           w.opts.Logf,
		ExcludeJobs:    func(job int) bool { return excluded[job] },
		Abort:          func() bool { return lost.Load() },
		// OnRecord runs on the serial observer path: replayed
		// delivery re-streams records a previous incarnation of this
		// worker journaled locally but never flushed (the coordinator
		// deduplicates by content).
		OnRecord: func(rec runner.Record, replayed bool) error {
			if lost.Load() {
				return nil
			}
			batch = append(batch, rec)
			if len(batch) >= w.opts.BatchSize {
				return flush()
			}
			return nil
		},
	})
	close(stopHB)
	<-hbDone
	if runErr != nil {
		return runErr
	}
	if err := flush(); err != nil {
		return err
	}
	if lost.Load() {
		w.opts.Logf("distrib: worker %s: lease %s lost — abandoning unit %d/%d",
			w.opts.Name, lr.LeaseID, u.Shard+1, u.Shards)
		return nil
	}
	var cr CompleteResponse
	if err := w.postRetry(PathComplete, CompleteRequest{LeaseID: lr.LeaseID}, &cr); err != nil {
		if leaseLost(err) {
			// The coordinator revoked the lease (or expired it during
			// the final flush): someone else finishes the gap.
			w.opts.Logf("distrib: worker %s: complete for %s rejected — unit reassigned", w.opts.Name, lr.LeaseID)
			return nil
		}
		return err
	}
	w.opts.Logf("distrib: worker %s: unit %d/%d complete", w.opts.Name, u.Shard+1, u.Shards)
	return nil
}
