package distrib

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"propane/internal/backoff"
	"propane/internal/chaos"
	"propane/internal/runner"
)

// WorkerOptions parameterises one worker agent.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator. It must be
	// unique within the fleet and stable across this worker's
	// restarts (a restarted worker with the same name and Dir replays
	// its local journal and re-streams anything the coordinator never
	// received). Empty selects hostname-pid.
	Name string
	// Dir is the worker's scratch root: each work unit runs in its
	// own subdirectory with the full local journal/checkpoint
	// machinery. Required.
	Dir string
	// Workers is the local campaign parallelism per unit (0 lets the
	// campaign default apply).
	Workers int
	// PollInterval paces lease retries when the coordinator is
	// unreachable, and is the fallback pause after a StatusWait reply
	// carrying no RetryMs hint. A reachable coordinator long-polls
	// lease requests itself and hints a short retry, so this interval
	// rarely governs. <= 0 selects 1 s.
	PollInterval time.Duration
	// BatchSize is how many records accumulate before a flush to the
	// coordinator (each flush renews the lease). <= 0 selects 64.
	BatchSize int
	// MaxErrors bounds consecutive failed coordinator round-trips
	// before the worker gives up. While a leased unit is executing
	// the worker never gives up — an unreachable coordinator flips it
	// into degraded mode (records spool locally and replay on
	// reconnect); MaxErrors governs the lease loop and the final
	// drain. <= 0 selects 10.
	MaxErrors int
	// Chaos, when non-nil and enabled, wraps this worker's HTTP
	// client in a fault-injecting chaos.Transport. The worker derives
	// its own seed from Spec.Seed and its name, so one campaign-level
	// seed gives every fleet member an independent, reproducible
	// fault sequence.
	Chaos *chaos.Spec
	// LogInterval throttles local campaign progress lines (0
	// disables them).
	LogInterval time.Duration
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)

	// transport overrides the HTTP transport outright (Chaos is then
	// ignored) — tests inject a chaos.Transport they can interrogate
	// after the run.
	transport http.RoundTripper
}

func (o *WorkerOptions) normalise() error {
	if o.Dir == "" {
		return errors.New("distrib: worker needs a scratch directory")
	}
	if o.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxErrors <= 0 {
		o.MaxErrors = 10
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// httpStatusError is a non-2xx coordinator reply.
type httpStatusError struct {
	status int
	code   string
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.status, e.msg)
}

// leaseLost reports whether an error is the coordinator disowning the
// lease (409) — the unit belongs to someone else now.
func leaseLost(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status == http.StatusConflict
}

// retryableError reports an error worth retrying: transport failures
// (the request may never have arrived), 5xx (the coordinator is
// restarting or overloaded), and digest-mismatch 4xx (the body was
// damaged in flight — our copy is intact).
func retryableError(err error) bool {
	var se *httpStatusError
	if !errors.As(err, &se) {
		return true // transport-level: connection refused/reset/dropped
	}
	return se.status >= 500 || se.code == CodeBodyDigest
}

// fatalStatus reports a reply that retrying cannot fix: a 4xx other
// than lease-conflict (409) and wire damage (CodeBodyDigest).
func fatalStatus(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status >= 400 && se.status < 500 &&
		se.status != http.StatusConflict && se.code != CodeBodyDigest
}

// worker is one agent's connection to a coordinator.
type worker struct {
	base   string
	opts   WorkerOptions
	ctx    context.Context
	client *http.Client
	policy backoff.Policy
	// describeCache memoises runner.DescribeInstance per work-unit
	// identity — the golden runs behind it are the expensive part.
	describeCache map[string]runner.PlanInfo
}

func newWorker(ctx context.Context, coordinatorURL string, opts WorkerOptions) *worker {
	transport := opts.transport
	if transport == nil && opts.Chaos != nil && opts.Chaos.Enabled() {
		spec := *opts.Chaos
		spec.Seed = chaos.DeriveSeed(spec.Seed, opts.Name)
		transport = chaos.NewTransport(spec, nil, opts.Logf)
		opts.Logf("distrib: worker %s: chaos enabled (%s)", opts.Name, spec.String())
	}
	return &worker{
		base: coordinatorURL,
		opts: opts,
		ctx:  ctx,
		client: &http.Client{
			Timeout:   30 * time.Second,
			Transport: transport,
		},
		policy: backoff.Policy{
			Base:     100 * time.Millisecond,
			Cap:      2 * time.Second,
			Attempts: opts.MaxErrors,
		},
		describeCache: make(map[string]runner.PlanInfo),
	}
}

// post sends one JSON request and decodes the JSON reply. The body
// carries its SHA-256 in HeaderBodyDigest so the coordinator can
// reject wire-damaged deliveries, and — for the mutating endpoints —
// the same digest as HeaderIdempotencyKey so duplicated deliveries
// replay instead of re-executing. Non-2xx replies come back as
// *httpStatusError.
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("distrib: encoding %s request: %w", path, err)
	}
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	hreq, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("distrib: building %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(HeaderBodyDigest, digest)
	if path == PathRecords || path == PathComplete {
		hreq.Header.Set(HeaderIdempotencyKey, digest)
	}
	r, err := w.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("distrib: %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = string(data)
		}
		return &httpStatusError{status: r.StatusCode, code: er.Code, msg: er.Error}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("distrib: decoding %s reply: %w", path, err)
	}
	return nil
}

// postRetry retries transient failures — network errors, 5xx,
// wire-damage 4xx — under the shared full-jitter backoff policy,
// bounded to the given number of attempts (<= 0 selects MaxErrors).
// Non-retryable statuses return immediately, and a cancelled context
// aborts the wait mid-backoff.
func (w *worker) postRetry(path string, req, resp any, attempts int) error {
	pol := w.policy
	if attempts > 0 {
		pol.Attempts = attempts
	}
	pol.OnRetry = func(attempt int, delay time.Duration, err error) {
		w.opts.Logf("distrib: worker %s: %s attempt %d failed (%v), retrying in %v",
			w.opts.Name, path, attempt+1, err, delay)
	}
	return pol.Do(w.ctx, retryableError, func() error { return w.post(path, req, resp) })
}

// sleep pauses for d unless the context ends first, reporting whether
// the full pause elapsed.
func (w *worker) sleep(d time.Duration) bool {
	if d <= 0 {
		return w.ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.ctx.Done():
		return false
	}
}

// RunWorker joins the fleet of the coordinator at coordinatorURL with
// a background context; see RunWorkerContext.
func RunWorker(coordinatorURL string, opts WorkerOptions) error {
	return RunWorkerContext(context.Background(), coordinatorURL, opts)
}

// RunWorkerContext joins the fleet of the coordinator at
// coordinatorURL and processes work units until the campaign
// completes (returns nil), ctx is cancelled (returns ctx.Err()), or
// the worker fails fatally: coordinator unreachable past MaxErrors
// consecutive lease attempts, config-digest mismatch (version skew),
// or a local execution error. A lost lease is not fatal — the worker
// abandons the unit and asks for new work. A coordinator that
// becomes unreachable while a unit is executing is not fatal either:
// the worker degrades gracefully, spooling records durably and
// replaying them when the coordinator returns.
func RunWorkerContext(ctx context.Context, coordinatorURL string, opts WorkerOptions) error {
	if err := opts.normalise(); err != nil {
		return err
	}
	w := newWorker(ctx, coordinatorURL, opts)
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := w.post(PathLease, LeaseRequest{Worker: opts.Name}, &lr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			consecutive++
			if consecutive >= opts.MaxErrors {
				return fmt.Errorf("distrib: worker %s: %d consecutive lease failures, last: %w",
					opts.Name, consecutive, err)
			}
			if !w.sleep(w.policy.Delay(consecutive - 1)) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch lr.Status {
		case StatusDone:
			opts.Logf("distrib: worker %s: campaign complete", opts.Name)
			return nil
		case StatusWait:
			// The coordinator already parked this request in its
			// long-poll; trust its hint — it is deliberately short so
			// the worker re-parks promptly instead of sleeping through
			// a unit becoming available.
			wait := time.Duration(lr.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = opts.PollInterval
			}
			if !w.sleep(wait) {
				return ctx.Err()
			}
		case StatusUnit:
			if lr.Unit == nil {
				return fmt.Errorf("distrib: worker %s: unit lease %s carried no unit", opts.Name, lr.LeaseID)
			}
			if err := w.runUnit(lr); err != nil {
				return fmt.Errorf("distrib: worker %s: %w", opts.Name, err)
			}
		default:
			return fmt.Errorf("distrib: worker %s: unknown lease status %q", opts.Name, lr.Status)
		}
	}
}

// describe resolves and digests the unit's campaign through this
// worker's own registry, memoised per identity.
func (w *worker) describe(u *WorkUnit) (runner.PlanInfo, error) {
	key := fmt.Sprintf("%s|%s|%d", u.Instance, u.Tier, u.RunBudgetSteps)
	if info, ok := w.describeCache[key]; ok {
		return info, nil
	}
	info, err := runner.DescribeInstance(u.Instance, runner.Tier(u.Tier), runner.Options{
		RunBudgetSteps: u.RunBudgetSteps,
	})
	if err != nil {
		return runner.PlanInfo{}, err
	}
	w.describeCache[key] = info
	return info, nil
}

// scratchDir is the unit's local artifact directory. The worker name
// is part of the path so two fleet members sharing a filesystem (or
// one process hosting a loopback fleet) never append the same local
// journal; the unit identity is part of the path so a restarted
// worker resumes exactly its own prior work.
func (w *worker) scratchDir(u *WorkUnit) string {
	digest8 := u.ConfigDigest
	if len(digest8) > 8 {
		digest8 = digest8[:8]
	}
	return filepath.Join(w.opts.Dir, w.opts.Name,
		fmt.Sprintf("%s-%s-%s", u.Instance, u.Tier, digest8),
		fmt.Sprintf("unit-%dof%d", u.Shard+1, u.Shards))
}

// degradedAttempts bounds one delivery try while the coordinator is
// already known-unreachable: probe once per flush, spool on failure,
// keep simulating.
const (
	degradedAttempts = 1
	liveAttempts     = 3
)

// runUnit executes one leased work unit through the local supervised
// runner, streaming records back and heartbeating until the unit is
// done or the lease is lost. An unreachable coordinator degrades the
// unit instead of aborting it: records spool durably under the
// unit's scratch directory, execution continues, and the spool
// replays (idempotently — the coordinator content-keys every record)
// once a delivery succeeds.
func (w *worker) runUnit(lr LeaseResponse) error {
	u := lr.Unit
	info, err := w.describe(u)
	if err != nil {
		return err
	}
	if info.Digest != u.ConfigDigest {
		return fmt.Errorf("local config digest %s does not match coordinator's %s for %s/%s — version skew: %w",
			info.Digest, u.ConfigDigest, u.Instance, u.Tier, runner.ErrDigestMismatch)
	}
	def, err := runner.Lookup(u.Instance)
	if err != nil {
		return err
	}
	cfg, err := def.Config(runner.Tier(u.Tier))
	if err != nil {
		return err
	}

	w.opts.Logf("distrib: worker %s: running unit %d/%d (%s, %d jobs pre-done)",
		w.opts.Name, u.Shard+1, u.Shards, lr.LeaseID, len(u.DoneJobs))
	excluded := make(map[int]bool, len(u.DoneJobs))
	for _, job := range u.DoneJobs {
		excluded[job] = true
	}

	scratch := w.scratchDir(u)
	// A leftover spool from a previous incarnation is discarded: the
	// local journal under scratch replays every record through
	// OnRecord anyway, so the spool only ever needs to carry this
	// incarnation's undelivered batches.
	sp, err := openSpool(filepath.Join(scratch, "spool.jsonl"))
	if err != nil {
		return err
	}
	defer sp.close()

	// lost flips once the coordinator disowns the lease; the Abort
	// hook then drains the local campaign without error. degraded
	// remembers that the last delivery failed, so flushes stop
	// burning retry ladders and go straight to one probe + spool.
	var lost atomic.Bool
	degraded := false
	batch := make([]runner.Record, 0, w.opts.BatchSize)

	deliver := func(recs []runner.Record, attempts int) error {
		var br BatchResponse
		return w.postRetry(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: recs}, &br, attempts)
	}
	// flush pushes the spool, then the live batch. final demands
	// delivery (full retry budget, error surfaced); otherwise a
	// failed delivery spools the batch and execution continues.
	flush := func(final bool) error {
		if lost.Load() || (len(batch) == 0 && sp.len() == 0) {
			return nil
		}
		attempts := liveAttempts
		if final {
			attempts = w.opts.MaxErrors // the unit is done: be patient
		} else if degraded {
			attempts = degradedAttempts
		}
		if sp.len() > 0 {
			err := sp.drain(w.opts.BatchSize, func(recs []runner.Record) error {
				return deliver(recs, attempts)
			})
			if err != nil {
				if leaseLost(err) {
					lost.Store(true)
					return nil
				}
				if fatalStatus(err) || w.ctx.Err() != nil {
					return err
				}
				degraded = true
				if final {
					return err
				}
				// Coordinator still down; the spool keeps its
				// records and the live batch joins it below.
			} else if degraded {
				degraded = false
				w.opts.Logf("distrib: worker %s: coordinator reachable again — spool drained", w.opts.Name)
			}
		}
		if len(batch) == 0 {
			return nil
		}
		if !degraded || final {
			err := deliver(batch, attempts)
			if err == nil {
				if degraded {
					degraded = false
					w.opts.Logf("distrib: worker %s: coordinator reachable again", w.opts.Name)
				}
				batch = batch[:0]
				return nil
			}
			if leaseLost(err) {
				lost.Store(true)
				return nil
			}
			if fatalStatus(err) || w.ctx.Err() != nil {
				return err
			}
			if final {
				return err
			}
			if !degraded {
				w.opts.Logf("distrib: worker %s: coordinator unreachable (%v) — degrading: records spool to %s and execution continues",
					w.opts.Name, err, sp.path)
			}
			degraded = true
		}
		if err := sp.append(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}

	// Heartbeat at a third of the TTL while the campaign runs, so a
	// long simulation between record flushes keeps the lease alive.
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	hbEvery := ttl / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				var hr HeartbeatResponse
				if err := w.post(PathHeartbeat, HeartbeatRequest{LeaseID: lr.LeaseID}, &hr); err != nil {
					if leaseLost(err) || fatalStatus(err) {
						lost.Store(true)
						return
					}
					// Transient: the next tick, or the next record
					// flush, renews the lease.
				}
			}
		}
	}()

	_, runErr := runner.Run(cfg, runner.Options{
		Name:           u.Instance,
		Tier:           runner.Tier(u.Tier),
		Dir:            scratch,
		Shard:          u.Shard,
		Shards:         u.Shards,
		Resume:         true,
		Workers:        w.opts.Workers,
		RunBudgetSteps: u.RunBudgetSteps,
		LogInterval:    w.opts.LogInterval,
		Logf:           w.opts.Logf,
		ExcludeJobs:    func(job int) bool { return excluded[job] },
		Abort:          func() bool { return lost.Load() || w.ctx.Err() != nil },
		// OnRecord runs on the serial observer path: replayed
		// delivery re-streams records a previous incarnation of this
		// worker journaled locally but never flushed (the coordinator
		// deduplicates by content).
		OnRecord: func(rec runner.Record, replayed bool) error {
			if lost.Load() {
				return nil
			}
			batch = append(batch, rec)
			if len(batch) >= w.opts.BatchSize {
				return flush(false)
			}
			return nil
		},
	})
	close(stopHB)
	<-hbDone
	if runErr != nil {
		return runErr
	}
	if err := w.ctx.Err(); err != nil {
		return err
	}
	if err := flush(true); err != nil {
		if lost.Load() {
			return nil
		}
		w.opts.Logf("distrib: worker %s: final drain for unit %d/%d failed (%v) — abandoning lease; local journal retains the work",
			w.opts.Name, u.Shard+1, u.Shards, err)
		return nil
	}
	if lost.Load() {
		w.opts.Logf("distrib: worker %s: lease %s lost — abandoning unit %d/%d",
			w.opts.Name, lr.LeaseID, u.Shard+1, u.Shards)
		return nil
	}
	sp.remove()
	var cr CompleteResponse
	if err := w.postRetry(PathComplete, CompleteRequest{LeaseID: lr.LeaseID}, &cr, 0); err != nil {
		if leaseLost(err) {
			// The coordinator revoked the lease (or expired it during
			// the final flush): someone else finishes the gap.
			w.opts.Logf("distrib: worker %s: complete for %s rejected — unit reassigned", w.opts.Name, lr.LeaseID)
			return nil
		}
		if fatalStatus(err) || w.ctx.Err() != nil {
			return err
		}
		// Unreachable on the final ack: the coordinator settles the
		// unit itself on its last record, so this costs nothing.
		w.opts.Logf("distrib: worker %s: complete for %s undeliverable (%v) — coordinator settles the unit from its journal",
			w.opts.Name, lr.LeaseID, err)
		return nil
	}
	w.opts.Logf("distrib: worker %s: unit %d/%d complete", w.opts.Name, u.Shard+1, u.Shards)
	return nil
}
